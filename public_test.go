package her

import (
	"testing"
)

func TestPublicBuilders(t *testing.T) {
	schema, err := NewSchema("r", []string{"a", "b"}, "a")
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(schema)
	db.Relation("r").MustInsert("x", "y")
	if db.NumTuples() != 1 {
		t.Error("insert through public builder failed")
	}
	if _, err := NewSchema("bad", []string{"a", "a"}, ""); err == nil {
		t.Error("duplicate attrs should fail")
	}
	g := NewGraph()
	v := g.AddVertex("hello")
	if g.Label(v) != "hello" {
		t.Error("graph builder broken")
	}
}

func TestDatasetNamesAndGenerate(t *testing.T) {
	names := DatasetNames()
	if len(names) != 6 {
		t.Fatalf("DatasetNames = %v", names)
	}
	// Mutating the returned slice must not affect the package state.
	names[0] = "corrupted"
	if DatasetNames()[0] == "corrupted" {
		t.Error("DatasetNames leaks internal state")
	}
	d, err := GenerateDataset("IMDB", 30)
	if err != nil {
		t.Fatal(err)
	}
	if d.DB.NumTuples() == 0 || d.G.NumVertices() == 0 {
		t.Error("generated dataset empty")
	}
	if _, err := GenerateDataset("NoSuch", 0); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestGenerateCustomDataset(t *testing.T) {
	cfg := DatasetConfig{
		Name: "custom", Seed: 1, NumEntities: 10,
		MainRelation: "thing", GraphLabel: "thing",
		Attrs: []AttrSpec{
			{Name: "label", Predicates: []string{"hasLabel"}, Identity: true},
			{Name: "kind", Predicates: []string{"isOf", "kindName"}, Pool: []string{"x", "y"}},
		},
		NoiseLevel: 0.1,
	}
	d, err := GenerateCustomDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.DB.NumTuples() != 10 {
		t.Errorf("tuples = %d", d.DB.NumTuples())
	}
	bad := cfg
	bad.NumEntities = 0
	if _, err := GenerateCustomDataset(bad); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestBuildExample1Public(t *testing.T) {
	d, err := BuildExample1()
	if err != nil {
		t.Fatal(err)
	}
	if d.DB.NumTuples() != 5 {
		t.Errorf("tuples = %d", d.DB.NumTuples())
	}
	sys, err := New(d.DB, d.G, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sys.GD.NumVertices() == 0 {
		t.Error("canonical graph empty")
	}
}

func TestSplitAnnotationsAndAnnotators(t *testing.T) {
	d, err := GenerateDataset("Synthetic", 40)
	if err != nil {
		t.Fatal(err)
	}
	train, val, test, err := SplitAnnotations(d.Truth, 0.5, 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(train)+len(val)+len(test) != len(d.Truth) {
		t.Error("split lost annotations")
	}
	users, err := NewAnnotators(5, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	fb := users.Inspect(d.Truth[:4])
	if len(fb) != 4 {
		t.Errorf("Inspect returned %d", len(fb))
	}
	batch := SelectFeedbackRound(func(Pair) bool { return false }, d.Truth, 10, 2)
	if len(batch) != 10 {
		t.Errorf("feedback round = %d", len(batch))
	}
	if sp := DefaultSearchSpace(); sp.KMax <= sp.KMin {
		t.Error("default search space degenerate")
	}
}

func TestNullConstant(t *testing.T) {
	schema, _ := NewSchema("r", []string{"a", "b"}, "a")
	db := NewDatabase(schema)
	db.Relation("r").MustInsert("key", Null)
	if _, ok := db.Relation("r").Get(db.Relation("r").Tuples[0], "b"); ok {
		t.Error("Null sentinel not honored")
	}
}
