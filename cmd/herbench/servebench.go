package main

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"her"
	"her/internal/dataset"
	"her/internal/server"
)

// serveRecord is the machine-readable serving benchmark written by
// -serve-json (tracked as BENCH_serve.json): concurrent /vpair
// throughput of the single sequential matcher versus the sharded
// serving engine (internal/shard) across shard counts. The requests
// round-robin over every tuple in the catalog, so each variant pays the
// full cold-matching cost once before the generation-stamped result
// cache can help it — the single-System variant has no cache and
// serializes all matching on the system mutex, which is exactly the
// bottleneck sharded serving removes.
type serveRecord struct {
	Dataset       string         `json:"dataset"`
	Entities      int            `json:"entities"`
	Tuples        int            `json:"tuples"`
	GraphVerts    int            `json:"graphVertices"`
	GoVersion     string         `json:"goVersion"`
	NumCPU        int            `json:"numCPU"`
	GeneratedAt   string         `json:"generatedAt"`
	TrainMillis   float64        `json:"trainMillis"`
	Clients       int            `json:"clients"`
	SecondsPerRun float64        `json:"secondsPerRun"`
	SpeedupAt4    float64        `json:"speedupAt4Shards"` // sharded(4) rps / single rps
	Variants      []serveVariant `json:"variants"`
}

type serveVariant struct {
	Mode       string  `json:"mode"`           // "single" or "sharded" (plus "-rw" for the mixed phase)
	View       string  `json:"view,omitempty"` // non-direct rule view the requests addressed (empty = direct)
	Shards     int     `json:"shards"`
	HaloRadius int     `json:"haloRadius,omitempty"`
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	WallMillis float64 `json:"wallMillis"`
	RPS        float64 `json:"requestsPerSecond"`
	P50Millis  float64 `json:"p50Millis"`
	P95Millis  float64 `json:"p95Millis"`
	P99Millis  float64 `json:"p99Millis"`
	// Stages attributes the variant's serving time across the pipeline
	// stages the engine instruments (sharded: queueWait, compute,
	// gather; single: candgen, paramatch), read as the delta of the
	// shared metrics registry over the variant's window.
	Stages      map[string]stageStat `json:"stages,omitempty"`
	CacheHits   int64                `json:"cacheHits"`
	CacheMisses int64                `json:"cacheMisses"`
	// Mixed read+write phase only ("single-rw" / "sharded-rw" modes): a
	// writer applies AddTuple mutations while the readers keep hammering
	// /vpair. CacheSurvivalRate is survived/(survived+evicted) across the
	// write sweeps — with generation-wipe invalidation it is 0; delta
	// maintenance keeps VPair entries alive across unrelated writes.
	Writes            int     `json:"writes,omitempty"`
	WritesPerSecond   float64 `json:"writesPerSecond,omitempty"`
	WriteErrors       int     `json:"writeErrors,omitempty"`
	DeltasApplied     uint64  `json:"deltasApplied,omitempty"`
	FullRebuilds      uint64  `json:"fullRebuilds,omitempty"`
	FragmentRebuilds  uint64  `json:"fragmentRebuilds,omitempty"`
	CacheSurvivalRate float64 `json:"cacheSurvivalRate,omitempty"`
}

// stageStat is one attributed stage: how many times it ran during the
// window and its mean duration.
type stageStat struct {
	Count      int64   `json:"count"`
	MeanMicros float64 `json:"meanMicros"`
}

// stageSnap is a point-in-time read of the stage histograms and cache
// counters; two snapshots bracket one variant's drive window.
type stageSnap struct {
	count map[string]int64
	sum   map[string]float64
	hits  int64
	miss  int64
}

// snapStages reads the stage histograms relevant to a variant: the
// per-shard queue-wait/compute series summed across shards plus the
// vpair gather for sharded mode, the core ParaMatch phases for the
// single sequential matcher.
func snapStages(reg *her.MetricsRegistry, shards int) stageSnap {
	s := stageSnap{count: map[string]int64{}, sum: map[string]float64{}}
	add := func(stage string, names ...string) {
		for _, n := range names {
			h := reg.Histogram(n, nil)
			s.count[stage] += h.Count()
			s.sum[stage] += h.Sum()
		}
	}
	if shards > 0 {
		var waits, computes []string
		for i := 0; i < shards; i++ {
			waits = append(waits, fmt.Sprintf(`her_shard_queue_wait_seconds{shard="%d"}`, i))
			computes = append(computes, fmt.Sprintf(`her_shard_compute_seconds{shard="%d"}`, i))
		}
		add("queueWait", waits...)
		add("compute", computes...)
		add("gather", `her_shard_gather_seconds{op="vpair"}`)
	} else {
		add("candgen", `her_core_candgen_seconds`)
		add("paramatch", `her_core_paramatch_seconds`)
	}
	s.hits = reg.Counter(`her_shard_cache_hits_total`).Value()
	s.miss = reg.Counter(`her_shard_cache_misses_total`).Value()
	return s
}

// stageDelta turns two bracketing snapshots into the per-stage means.
func stageDelta(before, after stageSnap) (map[string]stageStat, int64, int64) {
	out := make(map[string]stageStat, len(after.count))
	for stage, c := range after.count {
		n := c - before.count[stage]
		st := stageStat{Count: n}
		if n > 0 {
			st.MeanMicros = (after.sum[stage] - before.sum[stage]) / float64(n) * 1e6
		}
		out[stage] = st
	}
	return out, after.hits - before.hits, after.miss - before.miss
}

// runServeBench trains one system, then measures concurrent /vpair
// throughput against a single-System server and sharded servers at
// shard counts 1, 2, 4 and 8, writing the record as JSON.
func runServeBench(path, dsName string, entities, clients int, seed int64) error {
	if entities <= 0 {
		entities = 100
	}
	if seed == 0 {
		seed = 7
	}
	if clients <= 0 {
		clients = runtime.NumCPU()
		if clients < 4 {
			clients = 4
		}
	}
	cfg, ok := dataset.ByName(dsName, entities)
	if !ok {
		return fmt.Errorf("unknown dataset %q", dsName)
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		return err
	}
	// The registry feeds the per-stage attribution: each variant's
	// Stages block is the delta of these histograms over its window.
	reg := her.NewMetrics()
	sys, err := her.New(d.DB, d.G, her.Options{Seed: seed, Metrics: reg})
	if err != nil {
		return err
	}
	trainStart := time.Now()
	var training []her.PathPair
	for i := 0; i < 20; i++ {
		training = append(training, d.PathPairs...)
	}
	if err := sys.TrainPathModel(training, 0); err != nil {
		return err
	}
	if err := sys.TrainRanker(120, 10); err != nil {
		return err
	}
	if err := sys.SetThresholds(her.Thresholds{Sigma: 0.8, Delta: 1.6, K: 15}); err != nil {
		return err
	}

	// Host a non-direct rule view on the same system: direct-shaped
	// rules under a distinct name, so requests addressed to it exercise
	// the full per-view path (own extraction, matcher, delta log and —
	// sharded — its own engine) over the same matching workload, making
	// the view variants' throughput directly comparable to the direct
	// ones.
	if err := sys.AddViewDef(mirrorViewDef(d.DB)); err != nil {
		return err
	}

	// The query mix: every tuple of every relation, round-robin; the
	// view mix is the same tuples addressed through ?view=.
	var urls, viewURLs []string
	for _, relName := range d.DB.RelationNames() {
		for _, tp := range d.DB.Relation(relName).Tuples {
			urls = append(urls, fmt.Sprintf("/vpair?rel=%s&tuple=%d", relName, tp.ID))
			viewURLs = append(viewURLs, fmt.Sprintf("/vpair?view=mirror&rel=%s&tuple=%d", relName, tp.ID))
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("dataset %q has no tuples to query", dsName)
	}

	const runFor = 2 * time.Second
	rec := serveRecord{
		Dataset:       cfg.Name,
		Entities:      entities,
		Tuples:        d.DB.NumTuples(),
		GraphVerts:    d.G.NumVertices(),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		TrainMillis:   millis(time.Since(trainStart)),
		Clients:       clients,
		SecondsPerRun: runFor.Seconds(),
	}

	singleSrv := server.New(sys)
	// The bench measures matcher throughput, not load shedding: admit
	// every client even on machines with more CPUs than the default
	// sequential-path admission bound.
	singleSrv.MaxInflight = clients
	before := snapStages(reg, 0)
	single := driveServer(singleSrv, urls, clients, runFor)
	single.Mode, single.Shards = "single", 0
	single.Stages, single.CacheHits, single.CacheMisses = stageDelta(before, snapStages(reg, 0))
	rec.Variants = append(rec.Variants, single)

	for _, shards := range []int{1, 2, 4, 8} {
		srv, err := server.NewSharded(sys, shards)
		if err != nil {
			return err
		}
		before := snapStages(reg, shards)
		v := driveServer(srv, urls, clients, runFor)
		v.Mode, v.Shards = "sharded", shards
		v.HaloRadius = srv.Engine().Snapshot().HaloRadius
		v.Stages, v.CacheHits, v.CacheMisses = stageDelta(before, snapStages(reg, shards))
		srv.Close()
		rec.Variants = append(rec.Variants, v)
		if shards == 4 && single.RPS > 0 {
			rec.SpeedupAt4 = v.RPS / single.RPS
		}
	}

	// Per-view serving: the same mix addressed to the hosted "mirror"
	// view, sequentially and through its dedicated sharded engine. The
	// deltas are the cost of first-class view serving relative to the
	// direct variants above.
	viewSingle := server.New(sys)
	viewSingle.MaxInflight = clients
	before = snapStages(reg, 0)
	vv := driveServer(viewSingle, viewURLs, clients, runFor)
	vv.Mode, vv.View, vv.Shards = "single", "mirror", 0
	vv.Stages, vv.CacheHits, vv.CacheMisses = stageDelta(before, snapStages(reg, 0))
	rec.Variants = append(rec.Variants, vv)

	viewSharded, err := server.NewSharded(sys, 4)
	if err != nil {
		return err
	}
	beforeV := snapStages(reg, 4)
	vv = driveServer(viewSharded, viewURLs, clients, runFor)
	vv.Mode, vv.View, vv.Shards = "sharded", "mirror", 4
	vv.Stages, vv.CacheHits, vv.CacheMisses = stageDelta(beforeV, snapStages(reg, 4))
	viewSharded.Close()
	rec.Variants = append(rec.Variants, vv)

	// Mixed read+write phase: the same read mix with a concurrent writer
	// applying AddTuple at a steady cadence. Runs after the read-only
	// variants so their numbers stay comparable across revisions. The
	// single sequential server is the contrast (no result cache, every
	// query pays matching); the sharded(4) variant shows what delta
	// maintenance buys — sustained writes/sec while serving, with cache
	// entries surviving unrelated writes instead of a wipe per write.
	relName := d.DB.RelationNames()[0]
	rel := d.DB.Relation(relName)
	keyIdx := 0
	for i, a := range rel.Schema.Attrs {
		if a == rel.Schema.Key {
			keyIdx = i
		}
	}
	baseVals := append([]string(nil), rel.Tuples[0].Values...)

	singleRW := server.New(sys)
	singleRW.MaxInflight = clients
	beforeRW := snapStages(reg, 0)
	vrw := driveServerRW(singleRW, sys, relName, keyIdx, baseVals, "bench-single", urls, clients, runFor)
	vrw.Mode, vrw.Shards = "single-rw", 0
	vrw.Stages, vrw.CacheHits, vrw.CacheMisses = stageDelta(beforeRW, snapStages(reg, 0))
	rec.Variants = append(rec.Variants, vrw)

	shardedRW, err := server.NewSharded(sys, 4)
	if err != nil {
		return err
	}
	preInfo := shardedRW.Engine().Snapshot()
	beforeRW = snapStages(reg, 4)
	vrw = driveServerRW(shardedRW, sys, relName, keyIdx, baseVals, "bench-sharded", urls, clients, runFor)
	vrw.Mode, vrw.Shards = "sharded-rw", 4
	vrw.HaloRadius = shardedRW.Engine().Snapshot().HaloRadius
	vrw.Stages, vrw.CacheHits, vrw.CacheMisses = stageDelta(beforeRW, snapStages(reg, 4))
	info := shardedRW.Engine().Snapshot()
	vrw.DeltasApplied = info.DeltasApplied - preInfo.DeltasApplied
	vrw.FullRebuilds = info.FullRebuilds - preInfo.FullRebuilds
	vrw.FragmentRebuilds = info.FragmentRebuilds - preInfo.FragmentRebuilds
	if swept := (info.CacheSurvived - preInfo.CacheSurvived) + (info.CacheEvicted - preInfo.CacheEvicted); swept > 0 {
		vrw.CacheSurvivalRate = float64(info.CacheSurvived-preInfo.CacheSurvived) / float64(swept)
	}
	shardedRW.Close()
	rec.Variants = append(rec.Variants, vrw)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: single %.0f req/s, sharded(4) speedup %.1fx, rw %.0f writes/s at %.0f%% cache survival\n",
		path, single.RPS, rec.SpeedupAt4, vrw.WritesPerSecond, vrw.CacheSurvivalRate*100)
	return nil
}

// mirrorViewDef builds the benchmark's non-direct view: direct-shaped
// rules (every relation a vertex rule with all attributes projected,
// every foreign key a single-step edge) under the name "mirror", so the
// per-view serving path does the same matching work as the canonical
// mapping and the throughput delta isolates the view machinery itself.
func mirrorViewDef(db *her.Database) *her.ViewDef {
	d := her.NewViewDef("mirror")
	for _, relName := range db.RelationNames() {
		d.Vertex(relName).ProjectAll()
	}
	for _, relName := range db.RelationNames() {
		for _, fk := range db.Relation(relName).Schema.ForeignKeys {
			d.Edge(fk.Attr, relName, fk.Attr)
		}
	}
	return d
}

// driveServerRW runs driveServer's read mix while one writer goroutine
// applies AddTuple mutations every 2ms — fast enough that the serving
// layer crosses many generations per window, slow enough that reads
// actually interleave between consecutive writes (the cache-survival
// measurement needs live entries at sweep time). Each write clones a
// real tuple (foreign keys stay valid) under a fresh unique key
// (keyPrefix keeps phases from colliding on the shared system).
func driveServerRW(srv *server.Server, sys *her.System, relName string, keyIdx int, baseVals []string, keyPrefix string, urls []string, clients int, runFor time.Duration) serveVariant {
	stop := make(chan struct{})
	done := make(chan struct{})
	var writes, werrs atomic.Int64
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			vals := append([]string(nil), baseVals...)
			vals[keyIdx] = fmt.Sprintf("%s write %d", keyPrefix, i)
			if _, err := sys.AddTuple(relName, vals...); err != nil {
				werrs.Add(1)
			} else {
				writes.Add(1)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	v := driveServer(srv, urls, clients, runFor)
	close(stop)
	<-done
	v.Writes = int(writes.Load())
	v.WriteErrors = int(werrs.Load())
	if v.WallMillis > 0 {
		v.WritesPerSecond = float64(v.Writes) / (v.WallMillis / 1000)
	}
	return v
}

// driveServer hammers srv with clients concurrent goroutines issuing
// the url mix round-robin (shared atomic cursor) for the given
// duration, and reports throughput and latency percentiles. The flight
// recorder is disabled for the drive: the record measures matcher and
// engine throughput comparably across revisions, while the tracing
// overhead has its own benchmark (BenchmarkMiddlewareTracing in
// internal/server).
func driveServer(srv *server.Server, urls []string, clients int, runFor time.Duration) serveVariant {
	srv.Recorder = nil
	var (
		cursor  atomic.Int64
		errs    atomic.Int64
		wg      sync.WaitGroup
		perGoro = make([][]time.Duration, clients)
	)
	start := time.Now()
	deadline := start.Add(runFor)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var lats []time.Duration
			for time.Now().Before(deadline) {
				url := urls[int(cursor.Add(1)-1)%len(urls)]
				req := httptest.NewRequest("GET", url, nil)
				w := httptest.NewRecorder()
				t0 := time.Now()
				srv.ServeHTTP(w, req)
				lats = append(lats, time.Since(t0))
				if w.Code != 200 {
					errs.Add(1)
				}
			}
			perGoro[c] = lats
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	for _, lats := range perGoro {
		all = append(all, lats...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(q * float64(len(all)))
		if i >= len(all) {
			i = len(all) - 1
		}
		return millis(all[i])
	}
	return serveVariant{
		Requests:   len(all),
		Errors:     int(errs.Load()),
		WallMillis: millis(wall),
		RPS:        float64(len(all)) / wall.Seconds(),
		P50Millis:  pct(0.50),
		P95Millis:  pct(0.95),
		P99Millis:  pct(0.99),
	}
}
