package main

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"her"
	"her/internal/dataset"
	"her/internal/server"
)

// serveRecord is the machine-readable serving benchmark written by
// -serve-json (tracked as BENCH_serve.json): concurrent /vpair
// throughput of the single sequential matcher versus the sharded
// serving engine (internal/shard) across shard counts. The requests
// round-robin over every tuple in the catalog, so each variant pays the
// full cold-matching cost once before the generation-stamped result
// cache can help it — the single-System variant has no cache and
// serializes all matching on the system mutex, which is exactly the
// bottleneck sharded serving removes.
type serveRecord struct {
	Dataset       string         `json:"dataset"`
	Entities      int            `json:"entities"`
	Tuples        int            `json:"tuples"`
	GraphVerts    int            `json:"graphVertices"`
	GoVersion     string         `json:"goVersion"`
	NumCPU        int            `json:"numCPU"`
	GeneratedAt   string         `json:"generatedAt"`
	TrainMillis   float64        `json:"trainMillis"`
	Clients       int            `json:"clients"`
	SecondsPerRun float64        `json:"secondsPerRun"`
	SpeedupAt4    float64        `json:"speedupAt4Shards"` // sharded(4) rps / single rps
	Variants      []serveVariant `json:"variants"`
}

type serveVariant struct {
	Mode       string  `json:"mode"` // "single" or "sharded"
	Shards     int     `json:"shards"`
	HaloRadius int     `json:"haloRadius,omitempty"`
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	WallMillis float64 `json:"wallMillis"`
	RPS        float64 `json:"requestsPerSecond"`
	P50Millis  float64 `json:"p50Millis"`
	P95Millis  float64 `json:"p95Millis"`
	P99Millis  float64 `json:"p99Millis"`
}

// runServeBench trains one system, then measures concurrent /vpair
// throughput against a single-System server and sharded servers at
// shard counts 1, 2, 4 and 8, writing the record as JSON.
func runServeBench(path, dsName string, entities, clients int, seed int64) error {
	if entities <= 0 {
		entities = 100
	}
	if seed == 0 {
		seed = 7
	}
	if clients <= 0 {
		clients = runtime.NumCPU()
		if clients < 4 {
			clients = 4
		}
	}
	cfg, ok := dataset.ByName(dsName, entities)
	if !ok {
		return fmt.Errorf("unknown dataset %q", dsName)
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		return err
	}
	sys, err := her.New(d.DB, d.G, her.Options{Seed: seed})
	if err != nil {
		return err
	}
	trainStart := time.Now()
	var training []her.PathPair
	for i := 0; i < 20; i++ {
		training = append(training, d.PathPairs...)
	}
	if err := sys.TrainPathModel(training, 0); err != nil {
		return err
	}
	if err := sys.TrainRanker(120, 10); err != nil {
		return err
	}
	if err := sys.SetThresholds(her.Thresholds{Sigma: 0.8, Delta: 1.6, K: 15}); err != nil {
		return err
	}

	// The query mix: every tuple of every relation, round-robin.
	var urls []string
	for _, relName := range d.DB.RelationNames() {
		for _, tp := range d.DB.Relation(relName).Tuples {
			urls = append(urls, fmt.Sprintf("/vpair?rel=%s&tuple=%d", relName, tp.ID))
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("dataset %q has no tuples to query", dsName)
	}

	const runFor = 2 * time.Second
	rec := serveRecord{
		Dataset:       cfg.Name,
		Entities:      entities,
		Tuples:        d.DB.NumTuples(),
		GraphVerts:    d.G.NumVertices(),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		TrainMillis:   millis(time.Since(trainStart)),
		Clients:       clients,
		SecondsPerRun: runFor.Seconds(),
	}

	singleSrv := server.New(sys)
	// The bench measures matcher throughput, not load shedding: admit
	// every client even on machines with more CPUs than the default
	// sequential-path admission bound.
	singleSrv.MaxInflight = clients
	single := driveServer(singleSrv, urls, clients, runFor)
	single.Mode, single.Shards = "single", 0
	rec.Variants = append(rec.Variants, single)

	for _, shards := range []int{1, 2, 4, 8} {
		srv, err := server.NewSharded(sys, shards)
		if err != nil {
			return err
		}
		v := driveServer(srv, urls, clients, runFor)
		v.Mode, v.Shards = "sharded", shards
		v.HaloRadius = srv.Engine().Snapshot().HaloRadius
		srv.Close()
		rec.Variants = append(rec.Variants, v)
		if shards == 4 && single.RPS > 0 {
			rec.SpeedupAt4 = v.RPS / single.RPS
		}
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: single %.0f req/s, sharded(4) speedup %.1fx\n",
		path, single.RPS, rec.SpeedupAt4)
	return nil
}

// driveServer hammers srv with clients concurrent goroutines issuing
// the url mix round-robin (shared atomic cursor) for the given
// duration, and reports throughput and latency percentiles.
func driveServer(srv *server.Server, urls []string, clients int, runFor time.Duration) serveVariant {
	var (
		cursor  atomic.Int64
		errs    atomic.Int64
		wg      sync.WaitGroup
		perGoro = make([][]time.Duration, clients)
	)
	start := time.Now()
	deadline := start.Add(runFor)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var lats []time.Duration
			for time.Now().Before(deadline) {
				url := urls[int(cursor.Add(1)-1)%len(urls)]
				req := httptest.NewRequest("GET", url, nil)
				w := httptest.NewRecorder()
				t0 := time.Now()
				srv.ServeHTTP(w, req)
				lats = append(lats, time.Since(t0))
				if w.Code != 200 {
					errs.Add(1)
				}
			}
			perGoro[c] = lats
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	for _, lats := range perGoro {
		all = append(all, lats...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(q * float64(len(all)))
		if i >= len(all) {
			i = len(all) - 1
		}
		return millis(all[i])
	}
	return serveVariant{
		Requests:   len(all),
		Errors:     int(errs.Load()),
		WallMillis: millis(wall),
		RPS:        float64(len(all)) / wall.Seconds(),
		P50Millis:  pct(0.50),
		P95Millis:  pct(0.95),
		P99Millis:  pct(0.99),
	}
}
