package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"her"
	"her/internal/dataset"
)

// benchRecord is the machine-readable benchmark trajectory entry
// written by -json: one sequential APair measurement plus one parallel
// measurement per worker count, for both BSP and async engines.
type benchRecord struct {
	Dataset     string  `json:"dataset"`
	Entities    int     `json:"entities"`
	Tuples      int     `json:"tuples"`
	GraphVerts  int     `json:"graphVertices"`
	GoVersion   string  `json:"goVersion"`
	NumCPU      int     `json:"numCPU"`
	GeneratedAt string  `json:"generatedAt"`
	TrainMillis float64 `json:"trainMillis"`

	Sequential seqResult      `json:"sequential"`
	Parallel   []parResult    `json:"parallel"`
	Counters   map[string]int `json:"matcherCounters"`
}

type seqResult struct {
	WallMillis float64 `json:"wallMillis"`
	Matches    int     `json:"matches"`
}

type parResult struct {
	Mode            string    `json:"mode"` // "bsp" or "async"
	Workers         int       `json:"workers"`
	WallMillis      float64   `json:"wallMillis"`
	Matches         int       `json:"matches"`
	Supersteps      int       `json:"supersteps"`
	Requests        int       `json:"requests"`
	Invalidations   int       `json:"invalidations"`
	CandidatePairs  int       `json:"candidatePairs"`
	PerWorkerPairs  []int     `json:"perWorkerPairs"`
	PerWorkerCalls  []int     `json:"perWorkerCalls"`
	SuperstepMillis []float64 `json:"superstepMillis"`
}

func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// runBenchJSON trains a system over the dataset and records wall times
// for sequential and parallel APair, writing the result as JSON.
func runBenchJSON(path, dsName string, entities int, workers []int, seed int64) error {
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	if entities <= 0 {
		entities = 100
	}
	if seed == 0 {
		seed = 7
	}
	cfg, ok := dataset.ByName(dsName, entities)
	if !ok {
		return fmt.Errorf("unknown dataset %q", dsName)
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		return err
	}
	sys, err := her.New(d.DB, d.G, her.Options{Seed: seed})
	if err != nil {
		return err
	}
	trainStart := time.Now()
	var training []her.PathPair
	for i := 0; i < 20; i++ {
		training = append(training, d.PathPairs...)
	}
	if err := sys.TrainPathModel(training, 0); err != nil {
		return err
	}
	if err := sys.TrainRanker(120, 10); err != nil {
		return err
	}
	if err := sys.SetThresholds(her.Thresholds{Sigma: 0.8, Delta: 1.6, K: 15}); err != nil {
		return err
	}
	rec := benchRecord{
		Dataset:     cfg.Name,
		Entities:    entities,
		Tuples:      d.DB.NumTuples(),
		GraphVerts:  d.G.NumVertices(),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		TrainMillis: millis(time.Since(trainStart)),
	}

	seqStart := time.Now()
	seqMatches := sys.APair()
	rec.Sequential = seqResult{WallMillis: millis(time.Since(seqStart)), Matches: len(seqMatches)}
	rec.Counters = counterMap(sys.Stats())

	for _, n := range workers {
		matches, st, err := sys.APairParallel(n)
		if err != nil {
			return err
		}
		rec.Parallel = append(rec.Parallel, toParResult("bsp", st, len(matches)))
		matches, st, err = sys.APairParallelAsync(n)
		if err != nil {
			return err
		}
		rec.Parallel = append(rec.Parallel, toParResult("async", st, len(matches)))
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: seq %.1fms, %d worker configs\n", path, rec.Sequential.WallMillis, len(rec.Parallel))
	return nil
}

func toParResult(mode string, st her.ParallelStats, matches int) parResult {
	steps := make([]float64, len(st.SuperstepDurations))
	for i, d := range st.SuperstepDurations {
		steps[i] = millis(d)
	}
	return parResult{
		Mode:            mode,
		Workers:         st.Workers,
		WallMillis:      millis(st.WallTime),
		Matches:         matches,
		Supersteps:      st.Supersteps,
		Requests:        st.Requests,
		Invalidations:   st.Invalidations,
		CandidatePairs:  st.CandidatePairs,
		PerWorkerPairs:  st.PerWorkerPairs,
		PerWorkerCalls:  st.PerWorkerCalls,
		SuperstepMillis: steps,
	}
}

func counterMap(c her.Counters) map[string]int {
	return map[string]int{
		"calls":     c.Calls,
		"cacheHits": c.CacheHits,
		"cleanups":  c.Cleanups,
		"rechecks":  c.Rechecks,
	}
}
