// Command herbench regenerates the paper's tables and figures (see
// DESIGN.md's per-experiment index and EXPERIMENTS.md for the recorded
// results). Examples:
//
//	herbench -exp tableV
//	herbench -exp fig6d -entities 150 -workers 1,2,4,8
//	herbench -exp all -entities 100
//
// With -json the command instead records a machine-readable benchmark
// trajectory entry (dataset, worker counts, wall-times, matcher
// counters) — the file the repository tracks as BENCH_results.json:
//
//	herbench -json BENCH_results.json -dataset Synthetic -entities 100 -workers 1,2,4,8
//
// With -serve-json the command benchmarks the HTTP serving path
// instead: concurrent /vpair throughput of a single sequential matcher
// versus the sharded serving engine at 1, 2, 4 and 8 shards (see
// internal/shard) — the file the repository tracks as BENCH_serve.json:
//
//	herbench -serve-json BENCH_serve.json -dataset Synthetic -entities 100 -clients 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"her/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id: "+strings.Join(experiments.ExperimentIDs(), ", ")+", or all")
	entities := flag.Int("entities", 0, "override matchable-entity count per dataset (0 = dataset default)")
	workers := flag.String("workers", "", "comma-separated worker counts for parallel experiments, e.g. 1,2,4,8,16")
	trials := flag.Int("trials", 0, "random-search trials for threshold selection (0 = default)")
	seed := flag.Int64("seed", 0, "model seed (0 = default)")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := flag.String("json", "", "write a machine-readable benchmark record to this path instead of running -exp")
	serveOut := flag.String("serve-json", "", "write a concurrent serving benchmark record (single vs sharded) to this path instead of running -exp")
	clients := flag.Int("clients", 0, "concurrent client goroutines for -serve-json (0 = NumCPU, min 4)")
	dsName := flag.String("dataset", "Synthetic", "dataset for the -json and -serve-json benchmark records")
	flag.Parse()

	if *exp == "" && *jsonOut == "" && *serveOut == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg := experiments.Config{
		Entities:     *entities,
		SearchTrials: *trials,
		Seed:         *seed,
		CSV:          *csvOut,
	}
	if *workers != "" {
		for _, part := range strings.Split(*workers, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "herbench: bad worker count %q\n", part)
				os.Exit(2)
			}
			cfg.Workers = append(cfg.Workers, n)
		}
	}

	if *serveOut != "" {
		if err := runServeBench(*serveOut, *dsName, *entities, *clients, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "herbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *jsonOut != "" {
		if err := runBenchJSON(*jsonOut, *dsName, *entities, cfg.Workers, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "herbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	if err := experiments.Run(*exp, cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "herbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n[%s completed in %s]\n", *exp, time.Since(start).Round(time.Millisecond))
}
