package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

// TestRunAPair smokes the full hercli pipeline once (generate, train,
// learn thresholds, answer) in apair mode — the mode that exercises the
// parallel engine end to end. One run only: training dominates the cost.
func TestRunAPair(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline training takes ~15s")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dataset", "Synthetic", "-entities", "10", "-mode", "apair", "-workers", "2"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, re := range []string{
		`(?m)^dataset Synthetic: \d+ tuples, graph \|V\|=\d+ \|E\|=\d+$`,
		`(?m)^learned parameters in .*: sigma=\d+\.\d\d delta=\d+\.\d\d k=\d+`,
		`(?m)^APair: \d+ matches with 2 workers in .* \(\d+ supersteps, \d+ candidate pairs\)$`,
	} {
		if !regexp.MustCompile(re).MatchString(out) {
			t.Errorf("output missing %s:\n%s", re, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
		msg  string
	}{
		{"unknown dataset", []string{"-dataset", "Nope"}, 2, `unknown dataset "Nope"`},
		{"bad flag", []string{"-no-such-flag"}, 2, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.code {
				t.Fatalf("run = %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.msg) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.msg)
			}
		})
	}
}
