// Command hercli runs HER's three query modes over a generated dataset:
//
//	hercli -dataset DBLP -mode spair -tuple 3 -vertex 1200
//	hercli -dataset DBLP -mode vpair -tuple 3
//	hercli -dataset DBLP -mode apair -workers 4
//	hercli -dataset DBLP -mode explain -tuple 3 -vertex 1200
//
// It builds the system, trains the parameter functions (Learn module),
// selects thresholds on the annotated validation split, then answers the
// request and reports timing — a miniature of Fig. 2's architecture.
//
// Two subcommands work with graph views (rule-defined extractions over
// D, see internal/view) without training:
//
//	hercli views -dataset DBLP -views rules.view
//	hercli extract -dataset DBLP -views rules.view -view slim > slim.tsv
//
// The -views flag (also accepted by the query modes) loads view
// definition files — comma-separated — into the system.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"her"
	"her/internal/dataset"
	"her/internal/learn"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// loadViewFiles parses every comma-separated view definition file into
// the system.
func loadViewFiles(sys *her.System, files string) error {
	if files == "" {
		return nil
	}
	for _, path := range strings.Split(files, ",") {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = sys.LoadViewFile(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return nil
}

// buildSystem generates the dataset and assembles an untrained system
// with its view files loaded — all the view subcommands need.
func buildSystem(name string, entities int, viewFiles string) (*her.System, error) {
	cfg, ok := dataset.ByName(name, entities)
	if !ok {
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		return nil, err
	}
	sys, err := her.New(d.DB, d.G, her.Options{Seed: 7})
	if err != nil {
		return nil, err
	}
	if err := loadViewFiles(sys, viewFiles); err != nil {
		return nil, err
	}
	return sys, nil
}

// runViews lists the hosted views: name, rule count, graph size and
// generation — the CLI twin of GET /views.
func runViews(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hercli views", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("dataset", "Synthetic", "dataset name")
	entities := fs.Int("entities", 150, "matchable entity count")
	viewFiles := fs.String("views", "", "comma-separated view definition files")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	sys, err := buildSystem(*name, *entities, *viewFiles)
	if err != nil {
		fmt.Fprintf(stderr, "hercli: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "%-16s %6s %8s %8s %6s\n", "VIEW", "RULES", "|V|", "|E|", "GEN")
	for _, vn := range sys.ViewNames() {
		vh, err := sys.View(vn)
		if err != nil {
			continue
		}
		info := vh.Info()
		fmt.Fprintf(stdout, "%-16s %6d %8d %8d %6d\n",
			info.Name, info.Rules, info.Vertices, info.Edges, info.Generation)
	}
	return 0
}

// runExtract dumps one view's materialized graph as TSV on stdout —
// the CLI twin of GET /extract.
func runExtract(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hercli extract", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("dataset", "Synthetic", "dataset name")
	entities := fs.Int("entities", 150, "matchable entity count")
	viewFiles := fs.String("views", "", "comma-separated view definition files")
	viewName := fs.String("view", her.DirectViewName, "view to extract")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	sys, err := buildSystem(*name, *entities, *viewFiles)
	if err != nil {
		fmt.Fprintf(stderr, "hercli: %v\n", err)
		return 1
	}
	vh, err := sys.View(*viewName)
	if err != nil {
		fmt.Fprintf(stderr, "hercli: %v\n", err)
		return 1
	}
	if err := vh.WriteTSV(stdout); err != nil {
		fmt.Fprintf(stderr, "hercli: %v\n", err)
		return 1
	}
	return 0
}

// run is main with testable plumbing: explicit args, writers and exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 {
		switch args[0] {
		case "views":
			return runViews(args[1:], stdout, stderr)
		case "extract":
			return runExtract(args[1:], stdout, stderr)
		}
	}
	fs := flag.NewFlagSet("hercli", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("dataset", "Synthetic", "dataset name")
	entities := fs.Int("entities", 150, "matchable entity count")
	mode := fs.String("mode", "apair", "spair | vpair | apair | explain")
	tuple := fs.Int("tuple", 0, "tuple id within the main relation (spair/vpair/explain)")
	vertex := fs.Int("vertex", -1, "graph vertex id (spair/explain)")
	workers := fs.Int("workers", 1, "workers for apair")
	viewFiles := fs.String("views", "", "comma-separated view definition files to load")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "hercli: %v\n", err)
		return 1
	}

	cfg, ok := dataset.ByName(*name, *entities)
	if !ok {
		fmt.Fprintf(stderr, "hercli: unknown dataset %q\n", *name)
		return 2
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "dataset %s: %d tuples, graph |V|=%d |E|=%d\n",
		cfg.Name, d.DB.NumTuples(), d.G.NumVertices(), d.G.NumEdges())

	sys, err := her.New(d.DB, d.G, her.Options{Seed: 7})
	if err != nil {
		return fail(err)
	}
	if err := loadViewFiles(sys, *viewFiles); err != nil {
		return fail(err)
	}
	start := time.Now()
	pairs := d.PathPairs
	var training []her.PathPair
	for i := 0; i < 20; i++ {
		training = append(training, pairs...)
	}
	if err := sys.TrainPathModel(training, 0); err != nil {
		return fail(err)
	}
	if err := sys.TrainRanker(150, 10); err != nil {
		return fail(err)
	}
	train, val, _, err := learn.Split(d.Truth, 0.5, 0.15, 7)
	if err != nil {
		return fail(err)
	}
	th, f, err := sys.LearnThresholds(append(train, val...), learn.SearchSpace{
		SigmaMin: 0.5, SigmaMax: 0.95, DeltaMin: 0.4, DeltaMax: 3.2, KMin: 8, KMax: 20,
	}, 30)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "learned parameters in %s: sigma=%.2f delta=%.2f k=%d (val F=%.3f)\n",
		time.Since(start).Round(time.Millisecond), th.Sigma, th.Delta, th.K, f)

	rel := cfg.MainRelation
	switch *mode {
	case "spair":
		if *vertex < 0 {
			fmt.Fprintln(stderr, "hercli: spair needs -vertex")
			return 2
		}
		t0 := time.Now()
		okMatch, err := sys.SPair(rel, *tuple, her.VertexID(*vertex))
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "SPair(%s/%d, v%d) = %v  [%s]\n", rel, *tuple, *vertex, okMatch, time.Since(t0))
	case "vpair":
		t0 := time.Now()
		matches, err := sys.VPair(rel, *tuple)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "VPair(%s/%d): %d matches  [%s]\n", rel, *tuple, len(matches), time.Since(t0))
		for _, m := range matches {
			fmt.Fprintf(stdout, "  v%d (%s)\n", m.V, d.G.Label(m.V))
		}
	case "apair":
		t0 := time.Now()
		matches, stats, err := sys.APairParallel(*workers)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "APair: %d matches with %d workers in %s (%d supersteps, %d candidate pairs)\n",
			len(matches), *workers, time.Since(t0).Round(time.Millisecond),
			stats.Supersteps, stats.CandidatePairs)
	case "explain":
		if *vertex < 0 {
			fmt.Fprintln(stderr, "hercli: explain needs -vertex")
			return 2
		}
		u, found := sys.Mapping.VertexOf(rel, *tuple)
		if !found {
			return fail(fmt.Errorf("unknown tuple %s/%d", rel, *tuple))
		}
		ex, e2 := sys.Explain(u, her.VertexID(*vertex))
		if e2 != nil {
			return fail(e2)
		}
		fmt.Fprintf(stdout, "witness Pi has %d pairs; lineage:\n", len(ex.Witness))
		for _, p := range ex.Lineage {
			fmt.Fprintf(stdout, "  (%q, %q)\n", d.GD.Label(p.U), d.G.Label(p.V))
		}
		fmt.Fprintln(stdout, "schema matches Gamma:")
		for _, sm := range ex.SchemaMatches {
			fmt.Fprintf(stdout, "  %s -> %s\n", sm.Attr, sm.Rho.LabelString())
		}
	default:
		fmt.Fprintf(stderr, "hercli: unknown mode %q\n", *mode)
		return 2
	}
	return 0
}
