// Command herserve trains a HER system over a generated dataset and
// serves the query modes over HTTP (see internal/server for the
// endpoint reference):
//
//	herserve -dataset DBLP -entities 200 -addr :8080
//	curl 'localhost:8080/vpair?rel=paper&tuple=3'
//
// With -models the learned parameters are loaded from (or, with
// -save-models, written to) a model file, so training happens once.
//
// With -shards N the server runs in sharded serving mode: G is
// partitioned into N halo-replicated fragments matched by per-shard
// workers behind a generation-stamped result cache, and overloaded
// queues shed requests with 429 (see internal/shard). -deadline-ms
// bounds per-request matching work (503 on expiry; requests can tighten
// it further with timeout_ms).
//
// The serving path is instrumented: GET /metrics exposes Prometheus
// counters and histograms for HTTP requests, ParaMatch phases, shard
// queue waits and BSP supersteps. Request tracing is always on: every
// request gets an X-Request-ID and a span tree, the flight recorder
// retains the slowest and all recent errored traces per endpoint, and
// GET /debug/requests serves them (-trace-slow/-trace-errors size the
// retention, -no-trace disables it, -log-requests adds one structured
// log line per request). With -debug-addr a second listener serves
// net/http/pprof profiles and expvar (including the live matcher
// counters) for debugging without exposing them on the public address.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"her"
	"her/internal/dataset"
	"her/internal/learn"
	"her/internal/server"
)

func main() {
	name := flag.String("dataset", "Synthetic", "dataset name")
	entities := flag.Int("entities", 150, "matchable entity count")
	addr := flag.String("addr", ":8080", "listen address")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address (empty = disabled)")
	noMetrics := flag.Bool("no-metrics", false, "disable the metrics registry (drops /metrics content)")
	models := flag.String("models", "", "load learned parameters from this file instead of training")
	saveModels := flag.String("save-models", "", "write learned parameters to this file after training")
	views := flag.String("views", "", "comma-separated view definition files; each view becomes a linking target addressable with ?view=")
	shards := flag.Int("shards", 0, "serve /vpair and /apair from this many halo-replicated shards (0 = single sequential matcher)")
	deadlineMS := flag.Int("deadline-ms", 0, "per-request matching deadline in milliseconds (0 = unbounded; expired requests answer 503)")
	maxInflight := flag.Int("max-inflight", 0, "bound on concurrent sequential matches, abandoned ones included (0 = default 64; saturation answers 429)")
	noTrace := flag.Bool("no-trace", false, "disable request tracing and the flight recorder (/debug/requests answers 404)")
	traceSlow := flag.Int("trace-slow", 0, "slowest traces retained per endpoint by the flight recorder (0 = default 16)")
	traceErrors := flag.Int("trace-errors", 0, "recent errored traces retained per endpoint (0 = default 64)")
	logRequests := flag.Bool("log-requests", false, "emit one structured log line per request (request_id, op, gen, status, duration)")
	flag.Parse()

	cfg, ok := dataset.ByName(*name, *entities)
	if !ok {
		log.Fatalf("herserve: unknown dataset %q", *name)
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	opts := her.Options{Seed: 7}
	if !*noMetrics {
		opts.Metrics = her.NewMetrics()
	}
	sys, err := her.New(d.DB, d.G, opts)
	if err != nil {
		log.Fatal(err)
	}
	if *views != "" {
		// Load views before NewSharded so every view gets its own shard
		// engine in sharded mode.
		for _, path := range strings.Split(*views, ",") {
			f, err := os.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			err = sys.LoadViewFile(f)
			f.Close()
			if err != nil {
				log.Fatalf("%s: %v", path, err)
			}
		}
		log.Printf("hosting views: %s", strings.Join(sys.ViewNames(), ", "))
	}

	if *models != "" {
		f, err := os.Open(*models)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.LoadModels(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		log.Printf("loaded models from %s", *models)
	} else {
		var training []her.PathPair
		for i := 0; i < 20; i++ {
			training = append(training, d.PathPairs...)
		}
		if err := sys.TrainPathModel(training, 0); err != nil {
			log.Fatal(err)
		}
		if err := sys.TrainRanker(150, 10); err != nil {
			log.Fatal(err)
		}
		train, val, _, err := learn.Split(d.Truth, 0.5, 0.15, 7)
		if err != nil {
			log.Fatal(err)
		}
		th, f, err := sys.LearnThresholds(append(train, val...), learn.SearchSpace{
			SigmaMin: 0.5, SigmaMax: 0.95, DeltaMin: 0.4, DeltaMax: 3.2, KMin: 8, KMax: 20,
		}, 30)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("trained: sigma=%.2f delta=%.2f k=%d (F=%.3f)", th.Sigma, th.Delta, th.K, f)
		if *saveModels != "" {
			f, err := os.Create(*saveModels)
			if err != nil {
				log.Fatal(err)
			}
			if err := sys.SaveModels(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			log.Printf("saved models to %s", *saveModels)
		}
	}

	if *debugAddr != "" {
		// The pprof and expvar packages register on DefaultServeMux;
		// publish the live matcher counters alongside the memstats and
		// cmdline defaults.
		expvar.Publish("her_matcher_counters", expvar.Func(func() interface{} {
			return sys.Stats()
		}))
		go func() {
			log.Printf("debug listener (pprof, expvar) on %s", *debugAddr)
			log.Println(http.ListenAndServe(*debugAddr, nil))
		}()
	}

	var srv *server.Server
	if *shards > 0 {
		srv, err = server.NewSharded(sys, *shards)
		if err != nil {
			log.Fatal(err)
		}
		info := srv.Engine().Snapshot()
		log.Printf("sharded serving: %d shards, halo radius %d", info.Shards, info.HaloRadius)
	} else {
		srv = server.New(sys)
	}
	if *deadlineMS > 0 {
		srv.Deadline = time.Duration(*deadlineMS) * time.Millisecond
	}
	if *maxInflight > 0 {
		srv.MaxInflight = *maxInflight
	}
	if *noTrace {
		srv.Recorder = nil
	} else if *traceSlow > 0 || *traceErrors > 0 {
		srv.Recorder = her.NewFlightRecorder(*traceSlow, *traceErrors)
	}
	if *logRequests {
		srv.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	fmt.Printf("serving %s (%d tuples, |V|=%d) on %s\n",
		cfg.Name, d.DB.NumTuples(), d.G.NumVertices(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
