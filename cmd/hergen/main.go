// Command hergen materializes a generated dataset to disk: one CSV per
// relation of D, the graph G in TSV form, and the ground-truth
// annotations — so external tools (or hercli) can consume them.
//
//	hergen -dataset DBLP -entities 300 -out ./data/dblp
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"her/internal/dataset"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with testable plumbing: explicit args, writers and exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hergen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("dataset", "Synthetic", "dataset name: UKGOV, DBpediaP, DBLP, IMDB, FBWIKI, 2T, Synthetic")
	entities := fs.Int("entities", 0, "matchable entity count (0 = dataset default)")
	out := fs.String("out", "", "output directory (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "hergen: %v\n", err)
		return 1
	}

	if *out == "" {
		fmt.Fprintln(stderr, "hergen: -out directory is required")
		return 2
	}
	cfg, ok := dataset.ByName(*name, *entities)
	if !ok {
		fmt.Fprintf(stderr, "hergen: unknown dataset %q\n", *name)
		return 2
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		return fail(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return fail(err)
	}

	if err := d.DB.DumpDir(*out); err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "wrote %s (schemas for %d relations)\n",
		filepath.Join(*out, "schema.txt"), len(d.DB.Relations))
	for _, relName := range d.DB.RelationNames() {
		path := filepath.Join(*out, relName+".csv")
		f, err := os.Create(path)
		if err != nil {
			return fail(err)
		}
		if err := d.DB.Relation(relName).WriteCSV(f); err != nil {
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "wrote %s (%d tuples)\n", path, len(d.DB.Relation(relName).Tuples))
	}

	gpath := filepath.Join(*out, "graph.tsv")
	gf, err := os.Create(gpath)
	if err != nil {
		return fail(err)
	}
	if err := d.G.WriteTSV(gf); err != nil {
		return fail(err)
	}
	if err := gf.Close(); err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "wrote %s (%d vertices, %d edges)\n", gpath, d.G.NumVertices(), d.G.NumEdges())

	tpath := filepath.Join(*out, "truth.tsv")
	tf, err := os.Create(tpath)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintln(tf, "# relation\ttuple_id\tgraph_vertex\tmatch")
	for _, a := range d.Truth {
		ref, _ := d.Mapping.TupleOf(a.Pair.U)
		fmt.Fprintf(tf, "%s\t%d\t%d\t%v\n", ref.Relation, ref.TupleID, a.Pair.V, a.Match)
	}
	if err := tf.Close(); err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "wrote %s (%d annotations)\n", tpath, len(d.Truth))

	vd, ed, v, e := d.Sizes()
	fmt.Fprintf(stdout, "dataset %s: |V_D|=%d |E_D|=%d |V|=%d |E|=%d\n", cfg.Name, vd, ed, v, e)
	return 0
}
