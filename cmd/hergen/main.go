// Command hergen materializes a generated dataset to disk: one CSV per
// relation of D, the graph G in TSV form, and the ground-truth
// annotations — so external tools (or hercli) can consume them.
//
//	hergen -dataset DBLP -entities 300 -out ./data/dblp
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"her/internal/dataset"
)

func main() {
	name := flag.String("dataset", "Synthetic", "dataset name: UKGOV, DBpediaP, DBLP, IMDB, FBWIKI, 2T, Synthetic")
	entities := flag.Int("entities", 0, "matchable entity count (0 = dataset default)")
	out := flag.String("out", "", "output directory (required)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "hergen: -out directory is required")
		os.Exit(2)
	}
	cfg, ok := dataset.ByName(*name, *entities)
	if !ok {
		fmt.Fprintf(os.Stderr, "hergen: unknown dataset %q\n", *name)
		os.Exit(2)
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		fail(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}

	if err := d.DB.DumpDir(*out); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (schemas for %d relations)\n",
		filepath.Join(*out, "schema.txt"), len(d.DB.Relations))
	for _, relName := range d.DB.RelationNames() {
		path := filepath.Join(*out, relName+".csv")
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		if err := d.DB.Relation(relName).WriteCSV(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d tuples)\n", path, len(d.DB.Relation(relName).Tuples))
	}

	gpath := filepath.Join(*out, "graph.tsv")
	gf, err := os.Create(gpath)
	if err != nil {
		fail(err)
	}
	if err := d.G.WriteTSV(gf); err != nil {
		fail(err)
	}
	if err := gf.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (%d vertices, %d edges)\n", gpath, d.G.NumVertices(), d.G.NumEdges())

	tpath := filepath.Join(*out, "truth.tsv")
	tf, err := os.Create(tpath)
	if err != nil {
		fail(err)
	}
	fmt.Fprintln(tf, "# relation\ttuple_id\tgraph_vertex\tmatch")
	for _, a := range d.Truth {
		ref, _ := d.Mapping.TupleOf(a.Pair.U)
		fmt.Fprintf(tf, "%s\t%d\t%d\t%v\n", ref.Relation, ref.TupleID, a.Pair.V, a.Match)
	}
	if err := tf.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (%d annotations)\n", tpath, len(d.Truth))

	vd, ed, v, e := d.Sizes()
	fmt.Printf("dataset %s: |V_D|=%d |E_D|=%d |V|=%d |E|=%d\n", cfg.Name, vd, ed, v, e)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "hergen: %v\n", err)
	os.Exit(1)
}
