package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"her/internal/graph"
)

// TestRunWritesDataset smokes the full hergen path: generate a small
// synthetic dataset, materialize it into a temp dir, and check the
// artifacts parse back.
func TestRunWritesDataset(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dataset", "Synthetic", "-entities", "10", "-out", dir}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, stderr:\n%s", code, stderr.String())
	}
	for _, name := range []string{"schema.txt", "graph.tsv", "truth.tsv"} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
		if info.Size() == 0 {
			t.Errorf("artifact %s is empty", name)
		}
	}
	csvs, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil || len(csvs) == 0 {
		t.Fatalf("no relation CSVs written (err=%v)", err)
	}
	gf, err := os.Open(filepath.Join(dir, "graph.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	defer gf.Close()
	g, err := graph.ReadTSV(gf)
	if err != nil {
		t.Fatalf("written graph.tsv does not parse back: %v", err)
	}
	if g.NumVertices() == 0 || g.NumEdges() == 0 {
		t.Errorf("parsed graph is empty: |V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	}
	truth, err := os.ReadFile(filepath.Join(dir, "truth.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(truth)), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "#") {
		t.Fatalf("truth.tsv shape unexpected:\n%s", truth)
	}
	for _, l := range lines[1:] {
		if len(strings.Split(l, "\t")) != 4 {
			t.Errorf("truth.tsv row %q does not have 4 fields", l)
		}
	}
	if !strings.Contains(stdout.String(), "wrote "+filepath.Join(dir, "graph.tsv")) {
		t.Errorf("stdout does not report the graph artifact:\n%s", stdout.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
		msg  string
	}{
		{"missing out", []string{"-dataset", "Synthetic"}, 2, "-out directory is required"},
		{"unknown dataset", []string{"-dataset", "Nope", "-out", t.TempDir()}, 2, `unknown dataset "Nope"`},
		{"bad flag", []string{"-no-such-flag"}, 2, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.code {
				t.Fatalf("run = %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.msg) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.msg)
			}
		})
	}
}
