package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"mapiter", "floateq", "nilrecv", "globalrand", "errdrop"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestRunCleanPackage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"../../internal/feq"}, &out, &errb); code != 0 {
		t.Fatalf("internal/feq should be clean; exit %d\n%s%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output: %s", out.String())
	}
}

func TestRunFindingsAndJSON(t *testing.T) {
	// The floateq fixture is a known-dirty package.
	target := "../../internal/lint/testdata/src/floateq"

	var out, errb bytes.Buffer
	if code := run([]string{target}, &out, &errb); code != 1 {
		t.Fatalf("dirty package should exit 1, got %d\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[floateq]") {
		t.Errorf("text output missing analyzer tag:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-json", target}, &out, &errb); code != 1 {
		t.Fatalf("-json dirty run should exit 1, got %d\n%s", code, errb.String())
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json reported no findings for a dirty package")
	}
	for _, d := range diags {
		if d.Analyzer != "floateq" || d.Line == 0 || d.File == "" || d.Message == "" {
			t.Errorf("incomplete JSON diagnostic: %+v", d)
		}
	}
}

func TestRunOnlySelection(t *testing.T) {
	target := "../../internal/lint/testdata/src/floateq"
	var out, errb bytes.Buffer
	// With only mapiter selected, the floateq fixture is clean.
	if code := run([]string{"-only", "mapiter", target}, &out, &errb); code != 0 {
		t.Fatalf("-only mapiter over floateq fixture should be clean, got %d\n%s", code, out.String())
	}
	if code := run([]string{"-only", "bogus", target}, &out, &errb); code != 2 {
		t.Fatalf("unknown analyzer should exit 2, got %d", code)
	}
}

func TestRunBadDir(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./does-not-exist"}, &out, &errb); code != 2 {
		t.Fatalf("missing dir should exit 2, got %d", code)
	}
}

// TestRunTypeCheckErrorExitsTwo pins the exit-code contract's third
// band: a package that fails to compile is a load error (2), not a
// finding (1).
func TestRunTypeCheckErrorExitsTwo(t *testing.T) {
	dir := t.TempDir()
	src := "package broken\n\nfunc f() { return undefinedIdent }\n"
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{dir}, &out, &errb); code != 2 {
		t.Fatalf("type-check error should exit 2, got %d\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "type-checking") {
		t.Errorf("stderr should mention type-checking:\n%s", errb.String())
	}
}

// TestRunBaselineLifecycle walks the committed-baseline mechanism end
// to end over the known-dirty floateq fixture: -write-baseline emits a
// TODO skeleton, -baseline rejects it until the reasons are written,
// accepts it afterwards (exit 0, findings suppressed), and flags a
// stale entry once its finding disappears.
func TestRunBaselineLifecycle(t *testing.T) {
	target := "../../internal/lint/testdata/src/floateq"
	blPath := filepath.Join(t.TempDir(), "baseline.json")

	var out, errb bytes.Buffer
	if code := run([]string{"-write-baseline", blPath, target}, &out, &errb); code != 0 {
		t.Fatalf("-write-baseline should exit 0, got %d\n%s", code, errb.String())
	}

	// The skeleton's TODO reasons are not justifications.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", blPath, target}, &out, &errb); code != 2 {
		t.Fatalf("TODO-reason baseline should exit 2, got %d\n%s", code, errb.String())
	}

	data, err := os.ReadFile(blPath)
	if err != nil {
		t.Fatal(err)
	}
	justified := strings.ReplaceAll(string(data),
		"TODO: justify why this finding is accepted",
		"fixture: accepted for the baseline lifecycle test")
	if justified == string(data) {
		t.Fatalf("skeleton has no TODO reasons to fill in:\n%s", data)
	}
	if err := os.WriteFile(blPath, []byte(justified), 0o644); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", blPath, target}, &out, &errb); code != 0 {
		t.Fatalf("justified baseline should exit 0, got %d\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "suppressed by baseline") {
		t.Errorf("stderr should report the suppressed count:\n%s", errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("suppressed findings must not reach stdout:\n%s", out.String())
	}

	// An entry whose finding no longer exists is itself a failure: the
	// baseline must not rot. Point the same baseline at a clean package.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", blPath, "../../internal/feq"}, &out, &errb); code != 1 {
		t.Fatalf("stale baseline entries should exit 1, got %d\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "stale baseline entry") {
		t.Errorf("stderr should flag stale entries:\n%s", errb.String())
	}
}

// TestRunSARIFOutput asserts the -sarif report is well-formed 2.1.0:
// findings become results, baseline-suppressed findings carry
// suppressions with the written justification.
func TestRunSARIFOutput(t *testing.T) {
	target := "../../internal/lint/testdata/src/floateq"
	dir := t.TempDir()
	sarifPath := filepath.Join(dir, "report.sarif")
	blPath := filepath.Join(dir, "baseline.json")

	var out, errb bytes.Buffer
	if code := run([]string{"-sarif", sarifPath, target}, &out, &errb); code != 1 {
		t.Fatalf("dirty package should still exit 1 with -sarif, got %d\n%s", code, errb.String())
	}
	var report struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID       string `json:"ruleId"`
				Suppressions []struct {
					Justification string `json:"justification"`
				} `json:"suppressions"`
			} `json:"results"`
		} `json:"runs"`
	}
	readReport := func() {
		t.Helper()
		data, err := os.ReadFile(sarifPath)
		if err != nil {
			t.Fatal(err)
		}
		report.Runs = nil
		if err := json.Unmarshal(data, &report); err != nil {
			t.Fatalf("SARIF output is not valid JSON: %v", err)
		}
	}
	readReport()
	if report.Version != "2.1.0" || len(report.Runs) != 1 {
		t.Fatalf("unexpected SARIF shape: version %q, %d runs", report.Version, len(report.Runs))
	}
	if len(report.Runs[0].Results) == 0 {
		t.Fatal("SARIF report has no results for a dirty package")
	}
	found := false
	for _, r := range report.Runs[0].Tool.Driver.Rules {
		if r.ID == "floateq" {
			found = true
		}
	}
	if !found {
		t.Error("SARIF rules missing floateq")
	}

	// Baseline the findings: they must stay in the SARIF report, marked
	// suppressed with the baseline's justification.
	if code := run([]string{"-write-baseline", blPath, target}, &out, &errb); code != 0 {
		t.Fatalf("-write-baseline exit %d\n%s", code, errb.String())
	}
	data, err := os.ReadFile(blPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(blPath, []byte(strings.ReplaceAll(string(data),
		"TODO: justify why this finding is accepted",
		"fixture: accepted for the SARIF suppression test")), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-sarif", sarifPath, "-baseline", blPath, target}, &out, &errb); code != 0 {
		t.Fatalf("baselined -sarif run should exit 0, got %d\n%s", code, errb.String())
	}
	readReport()
	suppressed := 0
	for _, r := range report.Runs[0].Results {
		for _, s := range r.Suppressions {
			if s.Justification == "" {
				t.Error("suppression without justification in SARIF output")
			}
			suppressed++
		}
	}
	if suppressed == 0 {
		t.Error("baselined findings missing from SARIF suppressions")
	}
}
