package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"mapiter", "floateq", "nilrecv", "globalrand", "errdrop"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestRunCleanPackage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"../../internal/feq"}, &out, &errb); code != 0 {
		t.Fatalf("internal/feq should be clean; exit %d\n%s%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output: %s", out.String())
	}
}

func TestRunFindingsAndJSON(t *testing.T) {
	// The floateq fixture is a known-dirty package.
	target := "../../internal/lint/testdata/src/floateq"

	var out, errb bytes.Buffer
	if code := run([]string{target}, &out, &errb); code != 1 {
		t.Fatalf("dirty package should exit 1, got %d\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[floateq]") {
		t.Errorf("text output missing analyzer tag:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-json", target}, &out, &errb); code != 1 {
		t.Fatalf("-json dirty run should exit 1, got %d\n%s", code, errb.String())
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json reported no findings for a dirty package")
	}
	for _, d := range diags {
		if d.Analyzer != "floateq" || d.Line == 0 || d.File == "" || d.Message == "" {
			t.Errorf("incomplete JSON diagnostic: %+v", d)
		}
	}
}

func TestRunOnlySelection(t *testing.T) {
	target := "../../internal/lint/testdata/src/floateq"
	var out, errb bytes.Buffer
	// With only mapiter selected, the floateq fixture is clean.
	if code := run([]string{"-only", "mapiter", target}, &out, &errb); code != 0 {
		t.Fatalf("-only mapiter over floateq fixture should be clean, got %d\n%s", code, out.String())
	}
	if code := run([]string{"-only", "bogus", target}, &out, &errb); code != 2 {
		t.Fatalf("unknown analyzer should exit 2, got %d", code)
	}
}

func TestRunBadDir(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./does-not-exist"}, &out, &errb); code != 2 {
		t.Fatalf("missing dir should exit 2, got %d", code)
	}
}
