package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"mapiter", "floateq", "nilrecv", "globalrand", "errdrop"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestRunCleanPackage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"../../internal/feq"}, &out, &errb); code != 0 {
		t.Fatalf("internal/feq should be clean; exit %d\n%s%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output: %s", out.String())
	}
}

func TestRunFindingsAndJSON(t *testing.T) {
	// The floateq fixture is a known-dirty package.
	target := "../../internal/lint/testdata/src/floateq"

	var out, errb bytes.Buffer
	if code := run([]string{target}, &out, &errb); code != 1 {
		t.Fatalf("dirty package should exit 1, got %d\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[floateq]") {
		t.Errorf("text output missing analyzer tag:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-json", target}, &out, &errb); code != 1 {
		t.Fatalf("-json dirty run should exit 1, got %d\n%s", code, errb.String())
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json reported no findings for a dirty package")
	}
	for _, d := range diags {
		if d.Analyzer != "floateq" || d.Line == 0 || d.File == "" || d.Message == "" {
			t.Errorf("incomplete JSON diagnostic: %+v", d)
		}
	}
}

func TestRunOnlySelection(t *testing.T) {
	target := "../../internal/lint/testdata/src/floateq"
	var out, errb bytes.Buffer
	// With only mapiter selected, the floateq fixture is clean.
	if code := run([]string{"-only", "mapiter", target}, &out, &errb); code != 0 {
		t.Fatalf("-only mapiter over floateq fixture should be clean, got %d\n%s", code, out.String())
	}
	if code := run([]string{"-only", "bogus", target}, &out, &errb); code != 2 {
		t.Fatalf("unknown analyzer should exit 2, got %d", code)
	}
}

func TestRunBadDir(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./does-not-exist"}, &out, &errb); code != 2 {
		t.Fatalf("missing dir should exit 2, got %d", code)
	}
}

// TestRunTypeCheckErrorExitsTwo pins the exit-code contract's third
// band: a package that fails to compile is a load error (2), not a
// finding (1).
func TestRunTypeCheckErrorExitsTwo(t *testing.T) {
	dir := t.TempDir()
	src := "package broken\n\nfunc f() { return undefinedIdent }\n"
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{dir}, &out, &errb); code != 2 {
		t.Fatalf("type-check error should exit 2, got %d\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "type-checking") {
		t.Errorf("stderr should mention type-checking:\n%s", errb.String())
	}
}

// TestRunBaselineLifecycle walks the committed-baseline mechanism end
// to end over the known-dirty floateq fixture: -write-baseline emits a
// TODO skeleton, -baseline rejects it until the reasons are written,
// accepts it afterwards (exit 0, findings suppressed), and flags a
// stale entry once its finding disappears.
func TestRunBaselineLifecycle(t *testing.T) {
	target := "../../internal/lint/testdata/src/floateq"
	blPath := filepath.Join(t.TempDir(), "baseline.json")

	var out, errb bytes.Buffer
	if code := run([]string{"-write-baseline", blPath, target}, &out, &errb); code != 0 {
		t.Fatalf("-write-baseline should exit 0, got %d\n%s", code, errb.String())
	}

	// The skeleton's TODO reasons are not justifications.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", blPath, target}, &out, &errb); code != 2 {
		t.Fatalf("TODO-reason baseline should exit 2, got %d\n%s", code, errb.String())
	}

	data, err := os.ReadFile(blPath)
	if err != nil {
		t.Fatal(err)
	}
	justified := strings.ReplaceAll(string(data),
		"TODO: justify why this finding is accepted",
		"fixture: accepted for the baseline lifecycle test")
	if justified == string(data) {
		t.Fatalf("skeleton has no TODO reasons to fill in:\n%s", data)
	}
	if err := os.WriteFile(blPath, []byte(justified), 0o644); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", blPath, target}, &out, &errb); code != 0 {
		t.Fatalf("justified baseline should exit 0, got %d\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "suppressed by baseline") {
		t.Errorf("stderr should report the suppressed count:\n%s", errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("suppressed findings must not reach stdout:\n%s", out.String())
	}

	// An entry whose finding no longer exists is itself a failure: the
	// baseline must not rot. Point the same baseline at a clean package.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", blPath, "../../internal/feq"}, &out, &errb); code != 1 {
		t.Fatalf("stale baseline entries should exit 1, got %d\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "stale baseline entry") {
		t.Errorf("stderr should flag stale entries:\n%s", errb.String())
	}
}

// TestRunSARIFOutput asserts the -sarif report is well-formed 2.1.0:
// findings become results, baseline-suppressed findings carry
// suppressions with the written justification.
func TestRunSARIFOutput(t *testing.T) {
	target := "../../internal/lint/testdata/src/floateq"
	dir := t.TempDir()
	sarifPath := filepath.Join(dir, "report.sarif")
	blPath := filepath.Join(dir, "baseline.json")

	var out, errb bytes.Buffer
	if code := run([]string{"-sarif", sarifPath, target}, &out, &errb); code != 1 {
		t.Fatalf("dirty package should still exit 1 with -sarif, got %d\n%s", code, errb.String())
	}
	var report struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID       string `json:"ruleId"`
				Suppressions []struct {
					Justification string `json:"justification"`
				} `json:"suppressions"`
			} `json:"results"`
		} `json:"runs"`
	}
	readReport := func() {
		t.Helper()
		data, err := os.ReadFile(sarifPath)
		if err != nil {
			t.Fatal(err)
		}
		report.Runs = nil
		if err := json.Unmarshal(data, &report); err != nil {
			t.Fatalf("SARIF output is not valid JSON: %v", err)
		}
	}
	readReport()
	if report.Version != "2.1.0" || len(report.Runs) != 1 {
		t.Fatalf("unexpected SARIF shape: version %q, %d runs", report.Version, len(report.Runs))
	}
	if len(report.Runs[0].Results) == 0 {
		t.Fatal("SARIF report has no results for a dirty package")
	}
	found := false
	for _, r := range report.Runs[0].Tool.Driver.Rules {
		if r.ID == "floateq" {
			found = true
		}
	}
	if !found {
		t.Error("SARIF rules missing floateq")
	}

	// Baseline the findings: they must stay in the SARIF report, marked
	// suppressed with the baseline's justification.
	if code := run([]string{"-write-baseline", blPath, target}, &out, &errb); code != 0 {
		t.Fatalf("-write-baseline exit %d\n%s", code, errb.String())
	}
	data, err := os.ReadFile(blPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(blPath, []byte(strings.ReplaceAll(string(data),
		"TODO: justify why this finding is accepted",
		"fixture: accepted for the SARIF suppression test")), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-sarif", sarifPath, "-baseline", blPath, target}, &out, &errb); code != 0 {
		t.Fatalf("baselined -sarif run should exit 0, got %d\n%s", code, errb.String())
	}
	readReport()
	suppressed := 0
	for _, r := range report.Runs[0].Results {
		for _, s := range r.Suppressions {
			if s.Justification == "" {
				t.Error("suppression without justification in SARIF output")
			}
			suppressed++
		}
	}
	if suppressed == 0 {
		t.Error("baselined findings missing from SARIF suppressions")
	}
}

// sinceRepo builds a temp git repo (its own module) with two packages:
// clean/ is committed and untouched, dirty/ gains an uncommitted
// floateq violation after the initial commit.
func sinceRepo(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	git := func(args ...string) {
		t.Helper()
		cmd := exec.Command("git", args...)
		cmd.Dir = dir
		cmd.Env = append(os.Environ(),
			"GIT_AUTHOR_NAME=t", "GIT_AUTHOR_EMAIL=t@t",
			"GIT_COMMITTER_NAME=t", "GIT_COMMITTER_EMAIL=t@t")
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("git %v: %v\n%s", args, err, out)
		}
	}
	write := func(rel, src string) {
		t.Helper()
		p := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module sincemod\n\ngo 1.22\n")
	write("clean/clean.go", "package clean\n\nfunc Ok() int { return 1 }\n")
	write("dirty/dirty.go", "package dirty\n\nfunc Ok() int { return 1 }\n")
	git("init", "-q")
	git("add", ".")
	git("commit", "-q", "-m", "seed")
	write("dirty/dirty.go", "package dirty\n\nfunc Eq(a, b float64) bool { return a == b }\n")
	return dir
}

func TestRunSinceRestrictsPackages(t *testing.T) {
	repo := sinceRepo(t)
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(repo); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)

	// Only dirty/ changed since HEAD: the finding is reported and
	// clean/ is never loaded.
	var out, errb bytes.Buffer
	if code := run([]string{"-since", "HEAD", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("-since with a dirty package should exit 1, got %d\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "dirty.go") || strings.Contains(out.String(), "clean.go") {
		t.Errorf("-since output should mention only dirty/: %s", out.String())
	}

	// A single-package argument that was NOT touched filters to nothing
	// and exits 0 without analysis.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-since", "HEAD", "./clean"}, &out, &errb); code != 0 {
		t.Fatalf("-since on an untouched package should exit 0, got %d\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "no packages touched since HEAD") {
		t.Errorf("missing empty-set notice: %s", errb.String())
	}

	// A bad ref is a usage error (exit 2).
	out.Reset()
	errb.Reset()
	if code := run([]string{"-since", "no-such-ref", "./..."}, &out, &errb); code != 2 {
		t.Fatalf("-since with a bad ref should exit 2, got %d\n%s", code, errb.String())
	}
}

// TestRunSinceSeesUntrackedFiles: a brand-new (untracked) file counts
// as changed — pre-commit runs must not skip new packages.
func TestRunSinceSeesUntrackedFiles(t *testing.T) {
	repo := sinceRepo(t)
	if err := os.WriteFile(filepath.Join(repo, "fresh.go"),
		[]byte("package fresh\n\nfunc Eq(a, b float64) bool { return a == b }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(repo, "fresh"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(repo, "fresh.go"), filepath.Join(repo, "fresh", "fresh.go")); err != nil {
		t.Fatal(err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(repo); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)

	var out, errb bytes.Buffer
	if code := run([]string{"-since", "HEAD", "./fresh"}, &out, &errb); code != 1 {
		t.Fatalf("untracked package should be analyzed and exit 1, got %d\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[floateq]") {
		t.Errorf("expected floateq finding in fresh/: %s", out.String())
	}
}

// TestRunSinceSkipsBaselineStaleness: with -since only a subset of
// packages is analyzed, so baseline entries whose packages were
// filtered out must not be reported as stale.
func TestRunSinceSkipsBaselineStaleness(t *testing.T) {
	repo := sinceRepo(t)
	// Baseline the dirty finding plus an entry for clean/ — the latter
	// matches nothing in a -since run because clean/ is never loaded.
	baseline := `{"entries":[
	  {"analyzer":"floateq","file":"dirty/dirty.go",
	   "message":"== between computed float values is evaluation-order dependent; use feq.Eq or feq.EqTol (her/internal/feq)",
	   "reason":"test fixture"},
	  {"analyzer":"floateq","file":"clean/clean.go",
	   "message":"would be stale on a full run",
	   "reason":"test fixture"}]}`
	if err := os.WriteFile(filepath.Join(repo, "b.json"), []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(repo); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)

	var out, errb bytes.Buffer
	code := run([]string{"-since", "HEAD", "-baseline", "b.json", "./..."}, &out, &errb)
	if strings.Contains(errb.String(), "stale baseline entry") {
		t.Errorf("-since run reported staleness for an unloaded package: %s", errb.String())
	}
	if code != 0 {
		t.Fatalf("exit %d, want 0 (finding baselined, staleness skipped)\n%s%s", code, out.String(), errb.String())
	}
}
