// Command herlint runs the project's static-analysis suite
// (internal/lint) over the given package patterns and reports every
// violation of the determinism, nil-metrics, seed-reproducibility, and
// concurrency contracts (lockguard, atomicmix, snapleak, ctxflow).
//
// Usage:
//
//	herlint [-json] [-sarif file] [-baseline file] [-write-baseline file]
//	        [-only names] [-workers n] [-list] [packages]
//
// Packages default to ./... relative to the current directory; "dir/..."
// patterns and plain directories are accepted. Loading and analysis run
// on up to -workers concurrent workers (default runtime.GOMAXPROCS);
// output order is deterministic (sorted by file, line, column,
// analyzer) regardless of worker count.
//
// Exit status:
//
//	0 — clean: no findings, or every finding matched by the -baseline
//	1 — findings were reported (including stale baseline entries that
//	    no longer match any finding)
//	2 — usage, package-load, or type-check errors
//
// With -json, findings are emitted as a JSON array (empty array when
// clean), one object per finding:
//
//	[
//	  {
//	    "analyzer": "lockguard",          // Analyzer name (-list)
//	    "file": "/abs/path/to/file.go",   // absolute file path
//	    "line": 42,                       // 1-based line
//	    "col": 7,                         // 1-based column
//	    "message": "read of \"cur\" ..."  // human-readable finding
//	  }
//	]
//
// Baseline-suppressed findings are excluded from both text and JSON
// output (their count goes to stderr); -sarif writes a SARIF 2.1.0
// report that includes them with `suppressions` entries carrying the
// baseline's written justification. -write-baseline snapshots the
// current findings as a baseline skeleton whose TODO reasons must be
// filled in before -baseline will accept the file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"her/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("herlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	sarifPath := fs.String("sarif", "", "write a SARIF 2.1.0 report to this file")
	baselinePath := fs.String("baseline", "", "subtract the accepted findings in this baseline file")
	writeBaseline := fs.String("write-baseline", "", "snapshot current findings as a baseline skeleton and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "max concurrent package loads/analyses")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: herlint [-json] [-sarif file] [-baseline file] [-write-baseline file] [-only names] [-workers n] [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := lint.ByName(*only)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var baseline *lint.Baseline
	if *baselinePath != "" {
		baseline, err = lint.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	dirs, err := lint.ExpandPatterns(cwd, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, loadErrs := loader.LoadDirs(dirs, *workers)
	for _, lerr := range loadErrs {
		if lerr != nil {
			fmt.Fprintln(stderr, lerr)
			return 2
		}
	}

	diags := lint.RunParallel(pkgs, analyzers, loader.Fset, *workers)

	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, diags, loader.ModuleRoot()); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stderr, "herlint: wrote %d finding(s) to %s; fill in the TODO reasons before using it with -baseline\n", len(diags), *writeBaseline)
		return 0
	}

	var suppressed []lint.SuppressedDiagnostic
	if baseline != nil {
		var unused []lint.BaselineEntry
		diags, suppressed, unused = baseline.Apply(diags, loader.ModuleRoot())
		for _, e := range unused {
			// A stale entry is a finding: the accepted debt it documented
			// is gone and the baseline must be updated to match.
			fmt.Fprintf(stderr, "herlint: stale baseline entry: [%s] %s: %s\n", e.Analyzer, e.File, e.Message)
		}
		if len(suppressed) > 0 {
			fmt.Fprintf(stderr, "herlint: %d finding(s) suppressed by baseline %s\n", len(suppressed), *baselinePath)
		}
		if len(unused) > 0 && len(diags) == 0 {
			return 1
		}
	}

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		werr := lint.WriteSARIF(f, analyzers, diags, suppressed, loader.ModuleRoot())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, werr)
			return 2
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "herlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
