// Command herlint runs the project's static-analysis suite
// (internal/lint) over the given package patterns and reports every
// violation of the determinism, nil-metrics, and seed-reproducibility
// contracts.
//
// Usage:
//
//	herlint [-json] [-only mapiter,floateq,...] [-list] [packages]
//
// Packages default to ./... relative to the current directory; "dir/..."
// patterns and plain directories are accepted. Exit status is 0 when
// clean, 1 when findings were reported, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"her/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("herlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: herlint [-json] [-only names] [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := lint.ByName(*only)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	dirs, err := lint.ExpandPatterns(cwd, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}

	diags := lint.Run(pkgs, analyzers, loader.Fset)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "herlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
