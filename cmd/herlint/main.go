// Command herlint runs the project's static-analysis suite
// (internal/lint) over the given package patterns and reports every
// violation of the determinism, nil-metrics, seed-reproducibility, and
// concurrency contracts (lockguard, atomicmix, snapleak, ctxflow).
//
// Usage:
//
//	herlint [-json] [-sarif file] [-baseline file] [-write-baseline file]
//	        [-only names] [-since ref] [-workers n] [-list] [packages]
//
// Packages default to ./... relative to the current directory; "dir/..."
// patterns and plain directories are accepted. Loading and analysis run
// on up to -workers concurrent workers (default runtime.GOMAXPROCS);
// output order is deterministic (sorted by file, line, column,
// analyzer) regardless of worker count.
//
// -since ref further restricts the expanded package set to directories
// containing a .go file changed since the git ref (working-tree diff
// plus untracked files). This trades precision for speed: the
// interprocedural analyzers only see loaded packages, so -since is a
// fast local pre-push check while the full run remains authoritative.
//
// Exit status:
//
//	0 — clean: no findings, or every finding matched by the -baseline
//	1 — findings were reported (including stale baseline entries that
//	    no longer match any finding)
//	2 — usage, package-load, or type-check errors
//
// With -json, findings are emitted as a JSON array (empty array when
// clean), one object per finding:
//
//	[
//	  {
//	    "analyzer": "lockguard",          // Analyzer name (-list)
//	    "file": "/abs/path/to/file.go",   // absolute file path
//	    "line": 42,                       // 1-based line
//	    "col": 7,                         // 1-based column
//	    "message": "read of \"cur\" ..."  // human-readable finding
//	  }
//	]
//
// Baseline-suppressed findings are excluded from both text and JSON
// output (their count goes to stderr); -sarif writes a SARIF 2.1.0
// report that includes them with `suppressions` entries carrying the
// baseline's written justification. -write-baseline snapshots the
// current findings as a baseline skeleton whose TODO reasons must be
// filled in before -baseline will accept the file.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"her/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// filterSince keeps only the directories that contain a .go file
// changed since ref: working-tree modifications relative to the ref
// (git diff --name-only) plus untracked files. Precision caveat: the
// interprocedural analyzers (lockguard, ctxflow, lockorder, hotalloc,
// keycomplete) only see the packages that are loaded, so a -since run
// can miss findings whose cause lives in a filtered-out package — it
// is a fast pre-push check, not a substitute for the full CI run.
func filterSince(modRoot, ref string, dirs []string) ([]string, error) {
	changed, err := gitLines(modRoot, "diff", "--name-only", ref, "--", "*.go")
	if err != nil {
		return nil, fmt.Errorf("herlint: -since %s: %s", ref, err)
	}
	untracked, err := gitLines(modRoot, "ls-files", "--others", "--exclude-standard", "--", "*.go")
	if err != nil {
		return nil, fmt.Errorf("herlint: -since %s: %s", ref, err)
	}
	touched := make(map[string]bool)
	for _, rel := range append(changed, untracked...) {
		touched[filepath.Join(modRoot, filepath.Dir(filepath.FromSlash(rel)))] = true
	}
	kept := dirs[:0]
	for _, d := range dirs {
		if touched[d] {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

// gitLines runs git in dir and returns stdout split into non-empty
// lines; on failure the error carries git's stderr.
func gitLines(dir string, args ...string) ([]string, error) {
	cmd := exec.Command("git", args...)
	cmd.Dir = dir
	var errBuf bytes.Buffer
	cmd.Stderr = &errBuf
	out, err := cmd.Output()
	if err != nil {
		if msg := strings.TrimSpace(errBuf.String()); msg != "" {
			return nil, errors.New(msg)
		}
		return nil, err
	}
	var lines []string
	for _, ln := range strings.Split(string(out), "\n") {
		if ln = strings.TrimSpace(ln); ln != "" {
			lines = append(lines, ln)
		}
	}
	return lines, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("herlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	sarifPath := fs.String("sarif", "", "write a SARIF 2.1.0 report to this file")
	baselinePath := fs.String("baseline", "", "subtract the accepted findings in this baseline file")
	writeBaseline := fs.String("write-baseline", "", "snapshot current findings as a baseline skeleton and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	since := fs.String("since", "", "restrict analysis to packages with .go files changed since this git ref")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "max concurrent package loads/analyses")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: herlint [-json] [-sarif file] [-baseline file] [-write-baseline file] [-only names] [-since ref] [-workers n] [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := lint.ByName(*only)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var baseline *lint.Baseline
	if *baselinePath != "" {
		baseline, err = lint.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	dirs, err := lint.ExpandPatterns(cwd, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *since != "" {
		dirs, err = filterSince(loader.ModuleRoot(), *since, dirs)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if len(dirs) == 0 {
			fmt.Fprintf(stderr, "herlint: no packages touched since %s\n", *since)
			return 0
		}
	}
	pkgs, loadErrs := loader.LoadDirs(dirs, *workers)
	for _, lerr := range loadErrs {
		if lerr != nil {
			fmt.Fprintln(stderr, lerr)
			return 2
		}
	}

	diags := lint.RunParallel(pkgs, analyzers, loader.Fset, *workers)

	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, diags, loader.ModuleRoot()); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stderr, "herlint: wrote %d finding(s) to %s; fill in the TODO reasons before using it with -baseline\n", len(diags), *writeBaseline)
		return 0
	}

	var suppressed []lint.SuppressedDiagnostic
	if baseline != nil {
		var unused []lint.BaselineEntry
		diags, suppressed, unused = baseline.Apply(diags, loader.ModuleRoot())
		// Under -since only a subset of packages is analyzed, so a
		// baseline entry matching no finding proves nothing — the
		// staleness check only runs on full analyses.
		if *since == "" {
			for _, e := range unused {
				// A stale entry is a finding: the accepted debt it documented
				// is gone and the baseline must be updated to match.
				fmt.Fprintf(stderr, "herlint: stale baseline entry: [%s] %s: %s\n", e.Analyzer, e.File, e.Message)
			}
		}
		if len(suppressed) > 0 {
			fmt.Fprintf(stderr, "herlint: %d finding(s) suppressed by baseline %s\n", len(suppressed), *baselinePath)
		}
		if len(unused) > 0 && len(diags) == 0 && *since == "" {
			return 1
		}
	}

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		werr := lint.WriteSARIF(f, analyzers, diags, suppressed, loader.ModuleRoot())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, werr)
			return 2
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "herlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
