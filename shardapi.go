package her

import (
	"her/internal/core"
	"her/internal/graph"
	"her/internal/shard"
)

// NoVertex is the invalid vertex id; pass it as the ApplyOverrides scope
// for APair-style (unscoped) match sets.
const NoVertex = graph.NoVertex

// ShardConfig assembles the configuration of a sharded serving engine
// (internal/shard) over this system:
//
//   - the Snapshot hook re-reads the graphs, rankers, language model and
//     thresholds under the system lock at every (re)build, so a rebuild
//     after retraining never reuses stale captures;
//   - Generation ties the engine's result cache and rebuild trigger to
//     the system's mutation counter — AddTuple, AddGraphVertex,
//     AddGraphEdge, Refine, retraining and threshold changes all bump it;
//   - Overrides routes every merged match set through the system's
//     user-verified verdicts, exactly like the sequential query paths.
//
// The shared components (rankers, scorers, G_D) are safe for the
// engine's concurrent reads; the system's own query paths serialize
// writes behind its lock and publish them via the generation bump.
func (s *System) ShardConfig(shards int) shard.Config {
	cfg := shard.Config{
		Shards:     shards,
		Generation: s.Generation,
		Overrides: func(matches []core.Pair, scope graph.VID) []core.Pair {
			return s.ApplyOverrides(matches, scope)
		},
		Metrics: s.opts.Metrics,
	}
	cfg.Snapshot = func(c shard.Config) shard.Config {
		s.mu.Lock()
		defer s.mu.Unlock()
		c.GD, c.G = s.GD, s.G
		c.RankerD, c.LM = s.rankerD, s.lm
		c.Params = s.params()
		c.MaxPathLen = s.opts.MaxPathLen
		c.MinSharedTokens = s.opts.MinSharedTokens
		return c
	}
	return cfg.Snapshot(cfg)
}
