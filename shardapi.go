package her

import (
	"her/internal/core"
	"her/internal/graph"
	"her/internal/ranking"
	"her/internal/shard"
)

// NoVertex is the invalid vertex id; pass it as the ApplyOverrides scope
// for APair-style (unscoped) match sets.
const NoVertex = graph.NoVertex

// ShardConfig assembles the configuration of a sharded serving engine
// (internal/shard) over this system:
//
//   - the Snapshot hook clones the graphs and re-reads the language
//     model and thresholds under the system lock at every (re)build:
//     the engine reads its graphs at request time without taking the
//     system lock, so it must never share them with the live G_D/G that
//     AddTuple/AddGraphVertex/AddGraphEdge mutate under that lock.
//     Each build therefore serves from private copies, with the ranker
//     rebound to the cloned G_D; a mutation publishes itself through
//     the generation bump, which retires the snapshot on the next
//     request;
//   - Generation ties the engine's result cache and maintenance trigger
//     to the system's mutation counter — AddTuple, AddGraphVertex,
//     AddGraphEdge, Refine, retraining and threshold changes all bump it;
//   - Deltas exposes the system's typed delta log: incremental updates
//     are applied to the engine's private snapshots in place (halo-scoped
//     fragment updates, vertex-scoped cache invalidation) instead of
//     re-cloning; resets (feedback, retraining, threshold changes)
//     poison the log and force the full rebuild they require;
//   - Overrides routes every merged match set through the system's
//     user-verified verdicts, exactly like the sequential query paths.
//
// The remaining shared components (scorers, language model) are safe for
// the engine's concurrent reads: scorers memoize behind RWMutexes and a
// retrained model is built aside and swapped in whole.
func (s *System) ShardConfig(shards int) shard.Config {
	cfg := shard.Config{
		Shards:     shards,
		Generation: s.Generation,
		Deltas:     s.deltas.Since,
		Overrides: func(matches []core.Pair, scope graph.VID) []core.Pair {
			return s.ApplyOverrides(matches, scope)
		},
		Metrics: s.Metrics(),
	}
	cfg.Snapshot = func(c shard.Config) shard.Config {
		s.mu.Lock()
		defer s.mu.Unlock()
		c.GD, c.G = s.GD.Clone(), s.G.Clone()
		c.LM = s.lm
		c.RankerD = ranking.NewRanker(c.GD, s.lm, s.opts.MaxPathLen)
		c.Params = s.paramsLocked()
		c.MaxPathLen = s.opts.MaxPathLen
		c.MinSharedTokens = s.opts.MinSharedTokens
		// SnapGen anchors delta replay: it is read under the same lock
		// that serializes mutations, so the clones are exactly the graphs
		// of this generation — never a mid-request mix.
		c.SnapGen = s.generation.Load()
		return c
	}
	return cfg.Snapshot(cfg)
}
