package her

import (
	"sync"
	"testing"
)

// concurrencyFixture builds a small untrained system with a tuple
// mapping — enough structure for queries, cheap enough to race-test.
func concurrencyFixture(t *testing.T) (*System, VertexID, VertexID) {
	t.Helper()
	schema, err := NewSchema("product", []string{"name", "color"}, "name")
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(schema)
	db.Relation("product").MustInsert("Aurora Trail Runner 7", "red")

	g := NewGraph()
	p1 := g.AddVertex("product")
	g.MustAddEdge(p1, g.AddVertex("Aurora Trail Runner"), "productName")
	g.MustAddEdge(p1, g.AddVertex("red"), "hasColor")

	sys, err := New(db, g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	srcs := sys.SourceVertices()
	if len(srcs) == 0 {
		t.Fatal("no source vertices")
	}
	return sys, srcs[0], p1
}

// TestCandidatesRaceWithAddGraphEdge pins the lock discipline of
// System.Candidates: the candidate generator is swapped whole by
// AddGraphEdge's index rebuild (under s.mu), so Candidates must fetch
// it under the same lock. Before the fix, this read raced with the
// rebuild; run with -race to regress it.
func TestCandidatesRaceWithAddGraphEdge(t *testing.T) {
	sys, src, p1 := concurrencyFixture(t)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					sys.Candidates(src)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		v := sys.AddGraphVertex("accessory")
		if err := sys.AddGraphEdge(p1, v, "relatedTo"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestThresholdsRaceWithParallelAPair pins the snapshot discipline of
// APairParallel: the run parameters (σ, δ, k, metrics, generator,
// sources) must be read under s.mu before the engine starts, because
// SetThresholds mutates s.opts under that lock. Before the fix, the
// unlocked params read raced with the threshold write; run with -race
// to regress it. Readers of Options/Thresholds/CoreParams take the
// lock too, so they join the stampede here.
func TestThresholdsRaceWithParallelAPair(t *testing.T) {
	sys, _, _ := concurrencyFixture(t)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		ths := []Thresholds{
			{Sigma: 0.4, Delta: 1, K: 2},
			{Sigma: 0.6, Delta: 2, K: 3},
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				if err := sys.SetThresholds(ths[i%len(ths)]); err != nil {
					t.Error(err)
					return
				}
				sys.Thresholds()
				sys.Options()
				sys.CoreParams()
			}
		}
	}()
	for i := 0; i < 20; i++ {
		if _, _, err := sys.APairParallel(2); err != nil {
			t.Fatal(err)
		}
		if _, _, err := sys.APairParallelAsync(2); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
