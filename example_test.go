package her_test

import (
	"fmt"
	"log"

	"her"
)

// Example links a one-product database against a small catalog graph:
// the complete New → Train → SetThresholds → SPair/Explain flow.
func Example() {
	schema, err := her.NewSchema("product", []string{"name", "color"}, "name")
	if err != nil {
		log.Fatal(err)
	}
	db := her.NewDatabase(schema)
	db.Relation("product").MustInsert("Aurora Trail Runner 7", "red")

	g := her.NewGraph()
	p := g.AddVertex("product")
	g.MustAddEdge(p, g.AddVertex("Aurora Trail Runner"), "productName")
	g.MustAddEdge(p, g.AddVertex("red"), "hasColor")

	sys, err := her.New(db, g, her.Options{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	pairs := []her.PathPair{
		{A: []string{"name"}, B: []string{"productName"}, Match: true},
		{A: []string{"color"}, B: []string{"hasColor"}, Match: true},
		{A: []string{"name"}, B: []string{"hasColor"}, Match: false},
		{A: []string{"color"}, B: []string{"productName"}, Match: false},
	}
	var training []her.PathPair
	for i := 0; i < 30; i++ {
		training = append(training, pairs...)
	}
	if err := sys.TrainPathModel(training, 0); err != nil {
		log.Fatal(err)
	}
	if err := sys.TrainRanker(50, 120); err != nil {
		log.Fatal(err)
	}
	if err := sys.SetThresholds(her.Thresholds{Sigma: 0.75, Delta: 0.9, K: 5}); err != nil {
		log.Fatal(err)
	}

	match, err := sys.SPair("product", 0, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("match:", match)

	u, _ := sys.Mapping.VertexOf("product", 0)
	ex, err := sys.Explain(u, p)
	if err != nil {
		log.Fatal(err)
	}
	for _, sm := range ex.SchemaMatches {
		fmt.Printf("%s -> %s\n", sm.Attr, sm.Rho.LabelString())
	}
	// Output:
	// match: true
	// color -> hasColor
	// name -> productName
}
