package her

import (
	"testing"

	"her/internal/dataset"
	"her/internal/learn"
)

// buildTrained assembles a trained System over a small synthetic
// dataset: the full pipeline of Fig. 2 (RDB2RDF → Learn → query modes).
func buildTrained(t *testing.T, name string, entities int) (*System, *dataset.Generated) {
	t.Helper()
	if testing.Short() {
		// Each caller trains the metric network and ranker from scratch
		// (~8s, 10-20x that under -race). The fast tier of the root
		// package — incremental, override, persistence and JSON tests —
		// still runs in -short.
		t.Skip("trains the full pipeline; skipped in -short")
	}
	cfg, ok := dataset.ByName(name, entities)
	if !ok {
		t.Fatalf("unknown dataset %s", name)
	}
	cfg.Annotations = cfg.NumEntities // small sets need dense annotation
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(d.DB, d.G, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainPathModel(upsample(d.PathPairs, 20), 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainRanker(100, 10); err != nil {
		t.Fatal(err)
	}
	return sys, d
}

// upsample repeats the per-schema path annotations so the metric network
// sees enough gradient steps.
func upsample(pairs []PathPair, times int) []PathPair {
	out := make([]PathPair, 0, len(pairs)*times)
	for i := 0; i < times; i++ {
		out = append(out, pairs...)
	}
	return out
}

func TestEndToEndAccuracy(t *testing.T) {
	sys, d := buildTrained(t, "Synthetic", 80)
	train, val, test, err := learn.Split(d.Truth, 0.5, 0.15, 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = train // M_ρ is trained from the schema-level path pairs
	space := learn.SearchSpace{SigmaMin: 0.6, SigmaMax: 0.95, DeltaMin: 0.4, DeltaMax: 2.5, KMin: 5, KMax: 20}
	th, valF, err := sys.LearnThresholds(val, space, 30)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("thresholds: σ=%.2f δ=%.2f k=%d (val F=%.3f)", th.Sigma, th.Delta, th.K, valF)
	ev := sys.Evaluate(test)
	t.Logf("test: %v", ev)
	if ev.F1() < 0.8 {
		t.Errorf("end-to-end F-measure too low: %v", ev)
	}
}

func TestMetricModelLearnsPathPairs(t *testing.T) {
	sys, d := buildTrained(t, "DBLP", 50)
	if acc := sys.MetricAccuracy(d.PathPairs); acc < 0.9 {
		t.Errorf("metric accuracy on its own annotations = %f", acc)
	}
}

func TestVPairFindsGroundTruth(t *testing.T) {
	sys, d := buildTrained(t, "Synthetic", 60)
	nVal := len(d.Truth) / 2
	if _, _, err := sys.LearnThresholds(d.Truth[:nVal], learn.SearchSpace{
		SigmaMin: 0.6, SigmaMax: 0.9, DeltaMin: 0.4, DeltaMax: 2, KMin: 5, KMax: 15,
	}, 15); err != nil {
		t.Fatal(err)
	}
	found, total := 0, 0
	for _, a := range d.Truth {
		if !a.Match {
			continue
		}
		total++
		for _, m := range sys.VPairVertex(a.Pair.U) {
			if m.V == a.Pair.V {
				found++
				break
			}
		}
		if total >= 20 {
			break
		}
	}
	if found < total*7/10 {
		t.Errorf("VPair recall %d/%d", found, total)
	}
}

func TestSPairTupleAPI(t *testing.T) {
	sys, d := buildTrained(t, "Synthetic", 50)
	// Truth pairs reference tuple vertices; translate one back to
	// (relation, id) through the mapping.
	var matched bool
	for _, a := range d.Truth {
		if !a.Match {
			continue
		}
		ref, ok := sys.Mapping.TupleOf(a.Pair.U)
		if !ok {
			t.Fatal("truth pair is not a tuple vertex")
		}
		got, err := sys.SPair(ref.Relation, ref.TupleID, a.Pair.V)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			matched = true
			break
		}
	}
	if !matched {
		t.Error("no ground-truth pair confirmed via the tuple API")
	}
	if _, err := sys.SPair("nonexistent", 0, 0); err == nil {
		t.Error("unknown relation should error")
	}
}

func TestParallelAPairMatchesSequential(t *testing.T) {
	sys, _ := buildTrained(t, "UKGOV", 40)
	seq := sys.APair()
	for _, n := range []int{1, 3} {
		par, stats, err := sys.APairParallel(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(seq) {
			t.Fatalf("n=%d: parallel %d matches, sequential %d (stats %+v)",
				n, len(par), len(seq), stats)
		}
		for i := range par {
			if par[i] != seq[i] {
				t.Fatalf("n=%d: mismatch at %d: %v vs %v", n, i, par[i], seq[i])
			}
		}
	}
}

func TestExplainMatch(t *testing.T) {
	sys, d := buildTrained(t, "Synthetic", 50)
	var explained bool
	for _, a := range d.Truth {
		if !a.Match || !sys.SPairVertices(a.Pair.U, a.Pair.V) {
			continue
		}
		ex, err := sys.Explain(a.Pair.U, a.Pair.V)
		if err != nil {
			t.Fatal(err)
		}
		if len(ex.Witness) == 0 || len(ex.Lineage) == 0 {
			t.Errorf("empty explanation: %+v", ex)
		}
		explained = true
		break
	}
	if !explained {
		t.Skip("no confirmed pair to explain at default thresholds")
	}
}

func TestRefinementReachesPerfect(t *testing.T) {
	sys, d := buildTrained(t, "Synthetic", 60)
	pool := d.Truth
	users, err := learn.NewAnnotators(5, 0.1, 11)
	if err != nil {
		t.Fatal(err)
	}
	before := sys.Evaluate(pool).F1()
	var after float64
	for round := 1; round <= 5; round++ {
		batch := learn.RefinementRound(sys.Predictor(), pool, 50, int64(round))
		sys.Refine(users.Inspect(batch))
		after = sys.Evaluate(pool).F1()
		if after == 1 {
			break
		}
	}
	t.Logf("refinement: %.3f → %.3f", before, after)
	if after < before {
		t.Errorf("refinement decreased F: %.3f → %.3f", before, after)
	}
	if after < 0.99 {
		t.Errorf("five rounds should approach perfect F, got %.3f", after)
	}
	if sys.Overrides() == 0 {
		t.Error("no overrides recorded")
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.Normalize()
	if o.EmbeddingDim != 128 || o.K != 20 || o.Workers != 1 {
		t.Errorf("defaults wrong: %+v", o)
	}
	custom := Options{EmbeddingDim: 64, Sigma: 0.9}.Normalize()
	if custom.EmbeddingDim != 64 || custom.Sigma != 0.9 {
		t.Error("explicit options overridden")
	}
}

func TestSetThresholdsValidation(t *testing.T) {
	sys, _ := buildTrained(t, "Synthetic", 30)
	if err := sys.SetThresholds(Thresholds{Sigma: 2, Delta: 1, K: 5}); err == nil {
		t.Error("sigma > 1 accepted")
	}
	if err := sys.SetThresholds(Thresholds{Sigma: 0.5, Delta: 1, K: 0}); err == nil {
		t.Error("k = 0 accepted")
	}
	if err := sys.SetThresholds(Thresholds{Sigma: 0.7, Delta: 1.1, K: 8}); err != nil {
		t.Error(err)
	}
	th := sys.Thresholds()
	if th.Sigma != 0.7 || th.Delta != 1.1 || th.K != 8 {
		t.Errorf("thresholds not installed: %+v", th)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, Options{}); err == nil {
		t.Error("nil inputs accepted")
	}
	if _, err := NewFromGraphs(nil, nil, Options{}); err == nil {
		t.Error("nil graphs accepted")
	}
}

// TestBlockingRecall: the candidate inverted index must cover nearly all
// ground-truth matches — blocking that drops true pairs silently caps
// recall (the paper notes blocking "may miss matches" and compensates
// with data-partitioned parallelism; our neighborhood index must stay
// sound on the generated data).
func TestBlockingRecall(t *testing.T) {
	cfg, _ := dataset.ByName("Synthetic", 80)
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(d.DB, d.G, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	covered, total := 0, 0
	for _, a := range d.Truth {
		if !a.Match {
			continue
		}
		total++
		for _, v := range sys.Candidates(a.Pair.U) {
			if v == a.Pair.V {
				covered++
				break
			}
		}
	}
	if total == 0 {
		t.Fatal("no truth matches")
	}
	if float64(covered)/float64(total) < 0.95 {
		t.Errorf("blocking covers only %d/%d true matches", covered, total)
	}
}
