package her

// Options configures a System. The zero value is usable; Normalize fills
// in the defaults below.
type Options struct {
	// EmbeddingDim is the dimension of the hashed label embeddings used
	// by M_v and as input features of M_ρ (default 128; the appendix-I
	// experiment sweeps {100, 200, 300}).
	EmbeddingDim int

	// Sigma, Delta and K are the thresholds of parametric simulation.
	// They can be set directly or learned with LearnThresholds. Defaults
	// follow the paper's defaults scaled to this repository's data:
	// σ = 0.8, δ = 1.2, k = 20.
	Sigma float64
	Delta float64
	K     int

	// MaxPathLen caps the length of property paths selected by h_r
	// (default 4 edges, the paper's training-path cap).
	MaxPathLen int

	// MetricHidden is the hidden width of the M_ρ metric network
	// (default 64; the paper uses a 3-layer net of widths 1536/256/1,
	// scaled here with the embeddings).
	MetricHidden int

	// LSTMEmbed and LSTMHidden size the path language model M_r
	// (defaults 16 and 32; the paper uses 650 hidden units for a 195K
	// label vocabulary).
	LSTMEmbed  int
	LSTMHidden int

	// Workers is the default worker count for parallel APair (default 1).
	Workers int

	// Seed drives all model initialization and training shuffles.
	Seed int64

	// MinSharedTokens is the blocking selectivity of the candidate
	// inverted index (default 2: a candidate entity must share at least
	// two tokens of "critical information" with the tuple).
	MinSharedTokens int

	// Metrics, when non-nil, instruments the system: the sequential
	// matcher, the BSP engine's workers and supersteps, the sharded
	// serving engine (per-shard queue-wait/compute and gather
	// histograms, cache and singleflight counters), and (through
	// internal/server) the HTTP serving path all record into this
	// registry, exposable in Prometheus text format. Nil (the default)
	// disables instrumentation at effectively zero cost — every
	// recording site degrades to a single nil check. Request-scoped
	// tracing is independent of this registry: spans propagate through
	// context (WithSpan/SpanFrom) and land in the server's
	// FlightRecorder, traced or not.
	Metrics *MetricsRegistry
}

// Normalize returns a copy with defaults filled in.
func (o Options) Normalize() Options {
	if o.EmbeddingDim <= 0 {
		o.EmbeddingDim = 128
	}
	if o.Sigma <= 0 {
		o.Sigma = 0.8
	}
	if o.Delta <= 0 {
		o.Delta = 1.2
	}
	if o.K <= 0 {
		o.K = 20
	}
	if o.MaxPathLen <= 0 {
		o.MaxPathLen = 4
	}
	if o.MetricHidden <= 0 {
		o.MetricHidden = 64
	}
	if o.LSTMEmbed <= 0 {
		o.LSTMEmbed = 16
	}
	if o.LSTMHidden <= 0 {
		o.LSTMHidden = 32
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MinSharedTokens <= 0 {
		o.MinSharedTokens = 2
	}
	return o
}
