package her

import (
	"testing"
)

// TestNewFromJSON links JSON procurement documents against the catalog
// graph — the paper's future-work JSON extension, end to end.
func TestNewFromJSON(t *testing.T) {
	docs := [][]byte{
		[]byte(`{"name":"Aurora Trail Runner 7","color":"red","made_in":"Portugal"}`),
		[]byte(`{"name":"Comet Road Cruiser 2","color":"blue","made_in":"Vietnam"}`),
	}
	g := NewGraph()
	mk := func(name, color, country string) VertexID {
		p := g.AddVertex("product")
		g.MustAddEdge(p, g.AddVertex(name), "productName")
		g.MustAddEdge(p, g.AddVertex(color), "hasColor")
		factory := g.AddVertex("Plant")
		g.MustAddEdge(p, factory, "assembledAt")
		g.MustAddEdge(factory, g.AddVertex(country), "locatedIn")
		return p
	}
	p1 := mk("Aurora Trail Runner", "red", "Portugal")
	p2 := mk("Comet Road Cruiser", "blue", "Vietnam")

	sys, roots, err := NewFromJSON(docs, "product", g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 2 {
		t.Fatalf("roots = %v", roots)
	}
	pairs := []PathPair{
		{A: []string{"name"}, B: []string{"productName"}, Match: true},
		{A: []string{"color"}, B: []string{"hasColor"}, Match: true},
		{A: []string{"made_in"}, B: []string{"assembledAt", "locatedIn"}, Match: true},
		{A: []string{"name"}, B: []string{"hasColor"}, Match: false},
		{A: []string{"color"}, B: []string{"assembledAt", "locatedIn"}, Match: false},
		{A: []string{"made_in"}, B: []string{"productName"}, Match: false},
	}
	var training []PathPair
	for i := 0; i < 30; i++ {
		training = append(training, pairs...)
	}
	if err := sys.TrainPathModel(training, 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainRanker(50, 120); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetThresholds(Thresholds{Sigma: 0.75, Delta: 1.0, K: 5}); err != nil {
		t.Fatal(err)
	}

	if !sys.SPairVertices(roots[0], p1) {
		t.Error("doc 0 should match p1")
	}
	if sys.SPairVertices(roots[0], p2) {
		t.Error("doc 0 should not match p2")
	}
	all := sys.APairOf(roots)
	want := map[Pair]bool{{U: roots[0], V: p1}: true, {U: roots[1], V: p2}: true}
	if len(all) != 2 {
		t.Fatalf("APairOf = %v", all)
	}
	for _, m := range all {
		if !want[m] {
			t.Errorf("unexpected match %v", m)
		}
	}
	// Tuple-level API is unavailable in JSON mode.
	if _, err := sys.SPair("product", 0, p1); err == nil {
		t.Error("tuple API should fail without a mapping")
	}

	// Bad documents propagate errors.
	if _, _, err := NewFromJSON([][]byte{[]byte(`{`)}, "t", g, Options{}); err == nil {
		t.Error("invalid JSON should fail")
	}
}
