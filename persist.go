package her

import (
	"encoding/gob"
	"fmt"
	"io"

	"her/internal/core"
	"her/internal/embed"
	"her/internal/lstm"
	"her/internal/nn"
	"her/internal/ranking"
)

// modelFile is the gob envelope for a System's learned state: the
// trained M_ρ metric network, the M_r path language model, the selected
// thresholds, the options they were trained under, and the refinement
// state (verified pairs and fine-tuned label-pair verdicts). The graphs
// and database are NOT persisted — they are the inputs; SaveModels
// answers "train once, serve many" for the learned parameters.
type modelFile struct {
	Version   int
	Options   Options
	HasMetric bool
	Metric    nn.Snapshot
	HasLM     bool
	LM        lstm.Snapshot
	Overrides map[core.Pair]bool
	MvTable   map[[2]string]float64
}

const modelFileVersion = 1

// SaveModels serializes the learned parameters to w.
func (s *System) SaveModels(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := modelFile{
		Version:   modelFileVersion,
		Options:   s.opts,
		Overrides: make(map[core.Pair]bool, len(s.overrides)),
		MvTable:   make(map[[2]string]float64),
	}
	// The metrics registry is runtime state, not a learned parameter.
	f.Options.Metrics = nil
	for k, v := range s.overrides {
		f.Overrides[k] = v
	}
	s.sc.mu.RLock()
	for k, v := range s.sc.mvTable {
		f.MvTable[k] = v
	}
	s.sc.mu.RUnlock()
	if s.sc.metric != nil {
		f.HasMetric = true
		f.Metric = s.sc.metric.Snapshot()
	}
	if s.lm != nil {
		f.HasLM = true
		f.LM = s.lm.Snapshot()
	}
	return gob.NewEncoder(w).Encode(f)
}

// LoadModels restores learned parameters previously written with
// SaveModels into this System (which must be built over the same —
// or compatibly shaped — database and graph), then resets cached match
// decisions.
func (s *System) LoadModels(r io.Reader) error {
	var f modelFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return fmt.Errorf("her: decoding models: %w", err)
	}
	if f.Version != modelFileVersion {
		return fmt.Errorf("her: unsupported model file version %d", f.Version)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	met := s.opts.Metrics // registry stays with the live System, not the file
	s.opts = f.Options.Normalize()
	s.opts.Metrics = met
	if s.sc.enc.Dim() != s.opts.EmbeddingDim {
		// The metric network's features are tied to the embedding
		// dimension it was trained with; rebuild the scorers around a
		// matching encoder.
		s.sc = newScorers(embed.NewEncoder(s.opts.EmbeddingDim))
	}
	if f.HasMetric {
		m, err := nn.FromSnapshot(f.Metric)
		if err != nil {
			return err
		}
		if m.InputSize() != 4*s.opts.EmbeddingDim {
			return fmt.Errorf("her: metric input %d does not fit embedding dim %d",
				m.InputSize(), s.opts.EmbeddingDim)
		}
		s.sc.metric = m
	} else {
		s.sc.metric = nil
	}
	if f.HasLM {
		lm, err := lstm.FromSnapshot(f.LM)
		if err != nil {
			return err
		}
		s.lm = lm
		s.rankerD = ranking.NewRanker(s.GD, lm, s.opts.MaxPathLen)
		s.rankerG = ranking.NewRanker(s.G, lm, s.opts.MaxPathLen)
	}
	s.overrides = make(map[core.Pair]bool, len(f.Overrides))
	for k, v := range f.Overrides {
		s.overrides[k] = v
	}
	s.sc.mu.Lock()
	s.sc.mvTable = make(map[[2]string]float64, len(f.MvTable))
	for k, v := range f.MvTable {
		s.sc.mvTable[k] = v
	}
	s.sc.mu.Unlock()
	s.sc.invalidateRho()
	return s.resetMatcherLocked()
}
