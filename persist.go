package her

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"her/internal/core"
	"her/internal/embed"
	"her/internal/lstm"
	"her/internal/nn"
	"her/internal/ranking"
)

// modelFile is the gob envelope for a System's learned state: the
// trained M_ρ metric network, the M_r path language model, the selected
// thresholds, the options they were trained under, and the refinement
// state (verified pairs and fine-tuned label-pair verdicts). The graphs
// and database are NOT persisted — they are the inputs; SaveModels
// answers "train once, serve many" for the learned parameters.
//
// The refinement maps are persisted as sorted slices, not maps: gob
// writes map entries in Go's randomized iteration order, so a map field
// would make two saves of identical state byte-different — breaking
// artifact diffing, content-addressed storage, and the reproducibility
// contract herlint enforces elsewhere. Version 2 switched to slices.
type modelFile struct {
	Version   int
	Options   Options
	HasMetric bool
	Metric    nn.Snapshot
	HasLM     bool
	LM        lstm.Snapshot
	Overrides []overrideEntry
	MvTable   []mvEntry
}

// overrideEntry is one user-verified pair verdict, ordered by (U, V).
type overrideEntry struct {
	Pair    core.Pair
	Verdict bool
}

// mvEntry is one fine-tuned label-pair similarity, ordered by (A, B).
type mvEntry struct {
	A, B  string
	Score float64
}

const modelFileVersion = 2

// SaveModels serializes the learned parameters to w. Output is
// byte-deterministic: saving the same state twice yields identical
// bytes.
func (s *System) SaveModels(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := modelFile{
		Version: modelFileVersion,
		Options: s.opts,
	}
	// The metrics registry is runtime state, not a learned parameter.
	f.Options.Metrics = nil
	for k, v := range s.overrides {
		f.Overrides = append(f.Overrides, overrideEntry{Pair: k, Verdict: v})
	}
	sort.Slice(f.Overrides, func(i, j int) bool {
		a, b := f.Overrides[i].Pair, f.Overrides[j].Pair
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	s.sc.mu.RLock()
	for k, v := range s.sc.mvTable {
		f.MvTable = append(f.MvTable, mvEntry{A: k[0], B: k[1], Score: v})
	}
	s.sc.mu.RUnlock()
	sort.Slice(f.MvTable, func(i, j int) bool {
		if f.MvTable[i].A != f.MvTable[j].A {
			return f.MvTable[i].A < f.MvTable[j].A
		}
		return f.MvTable[i].B < f.MvTable[j].B
	})
	if s.sc.metric != nil {
		f.HasMetric = true
		f.Metric = s.sc.metric.Snapshot()
	}
	if s.lm != nil {
		f.HasLM = true
		f.LM = s.lm.Snapshot()
	}
	return gob.NewEncoder(w).Encode(f)
}

// LoadModels restores learned parameters previously written with
// SaveModels into this System (which must be built over the same —
// or compatibly shaped — database and graph), then resets cached match
// decisions.
func (s *System) LoadModels(r io.Reader) error {
	var f modelFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return fmt.Errorf("her: decoding models: %w", err)
	}
	if f.Version != modelFileVersion {
		return fmt.Errorf("her: unsupported model file version %d", f.Version)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	met := s.opts.Metrics // registry stays with the live System, not the file
	s.opts = f.Options.Normalize()
	s.opts.Metrics = met
	if s.sc.enc.Dim() != s.opts.EmbeddingDim {
		// The metric network's features are tied to the embedding
		// dimension it was trained with; rebuild the scorers around a
		// matching encoder.
		s.sc = newScorers(embed.NewEncoder(s.opts.EmbeddingDim))
	}
	if f.HasMetric {
		m, err := nn.FromSnapshot(f.Metric)
		if err != nil {
			return err
		}
		if m.InputSize() != 4*s.opts.EmbeddingDim {
			return fmt.Errorf("her: metric input %d does not fit embedding dim %d",
				m.InputSize(), s.opts.EmbeddingDim)
		}
		s.sc.metric = m
	} else {
		s.sc.metric = nil
	}
	if f.HasLM {
		lm, err := lstm.FromSnapshot(f.LM)
		if err != nil {
			return err
		}
		s.lm = lm
		s.rankerD = ranking.NewRanker(s.GD, lm, s.opts.MaxPathLen)
		s.rankerG = ranking.NewRanker(s.G, lm, s.opts.MaxPathLen)
		s.rebuildViewRankersLocked()
	}
	s.overrides = make(map[core.Pair]bool, len(f.Overrides))
	for _, e := range f.Overrides {
		s.overrides[e.Pair] = e.Verdict
	}
	s.sc.mu.Lock()
	s.sc.mvTable = make(map[[2]string]float64, len(f.MvTable))
	for _, e := range f.MvTable {
		s.sc.mvTable[[2]string{e.A, e.B}] = e.Score
	}
	s.sc.mu.Unlock()
	s.sc.invalidateRho()
	return s.resetMatcherLocked()
}
