package her

import (
	"strings"
	"testing"
)

func TestSemanticJoin(t *testing.T) {
	sys, _ := incrementalFixture(t)
	rows, err := sys.SemanticJoin("product")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("join rows = %d", len(rows))
	}
	row := rows[0]
	if row.Tuple.Relation != "product" || row.Tuple.TupleID != 0 {
		t.Errorf("tuple ref = %+v", row.Tuple)
	}
	if row.Attrs["name"] != "Aurora Trail Runner 7" || row.Attrs["color"] != "red" {
		t.Errorf("attrs = %v", row.Attrs)
	}
	if row.Props["productName"] != "Aurora Trail Runner" {
		t.Errorf("props = %v", row.Props)
	}
	if row.Aligned["name"] != "productName" || row.Aligned["color"] != "hasColor" {
		t.Errorf("aligned = %v", row.Aligned)
	}
	if _, err := sys.SemanticJoin("nonexistent"); err == nil {
		t.Error("unknown relation should fail")
	}
}

func TestSemanticJoinNeedsMapping(t *testing.T) {
	g := NewGraph()
	g.AddVertex("a")
	sys, err := NewFromGraphs(g, g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SemanticJoin("r"); err == nil {
		t.Error("graph-only system should refuse semantic join")
	}
}

func TestExplanationRender(t *testing.T) {
	sys, _ := incrementalFixture(t)
	u, _ := sys.Mapping.VertexOf("product", 0)
	matches := sys.VPairVertex(u)
	if len(matches) != 1 {
		t.Fatal("setup")
	}
	ex, err := sys.Explain(u, matches[0].V)
	if err != nil {
		t.Fatal(err)
	}
	out := ex.Render(sys)
	if !strings.Contains(out, "lineage S:") || !strings.Contains(out, "productName") {
		t.Errorf("render output:\n%s", out)
	}
}
