package her

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"her/internal/shard"
)

// TestShardConfigSnapshotClones: the Snapshot hook must hand the engine
// private graph copies, with the ranker rebound to the cloned G_D — the
// engine reads its graphs at request time without the system lock,
// while AddTuple/AddGraphVertex/AddGraphEdge mutate the live graphs
// under it.
func TestShardConfigSnapshotClones(t *testing.T) {
	sys, _ := incrementalFixture(t)
	cfg := sys.ShardConfig(2)
	if cfg.GD == sys.GD || cfg.G == sys.G {
		t.Fatal("ShardConfig handed the engine the live graphs")
	}
	if cfg.RankerD.G != cfg.GD {
		t.Fatal("RankerD not bound to the engine's G_D clone")
	}
	if cfg.GD.NumVertices() != sys.GD.NumVertices() || cfg.G.NumEdges() != sys.G.NumEdges() {
		t.Fatal("snapshot diverges from the live graphs at capture time")
	}
	again := cfg.Snapshot(cfg)
	if again.GD == cfg.GD || again.G == cfg.G {
		t.Fatal("rebuild snapshot reused a previous clone")
	}
}

// TestConcurrentMutateWhileServing is the mutate-while-serving race
// regression (meaningful under -race): shard requests hammer the engine
// while incremental updates extend G_D and G through the system lock.
// Before the engine served from cloned snapshots, workers and rebuilds
// read the live graphs' adjacency slices mid-append.
func TestConcurrentMutateWhileServing(t *testing.T) {
	sys, _ := incrementalFixture(t)
	eng, err := shard.NewEngine(sys.ShardConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	u0, err := sys.TupleVertex("product", 0)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are expected transients here (e.g. a request
				// racing a rebuild); the race detector is the oracle.
				if (n+i)%2 == 0 {
					_, _ = eng.VPair(ctx, u0)
				} else {
					_, _ = eng.APair(ctx, sys.SourceVertices())
				}
			}
		}(i)
	}
	lastID := -1
	for i := 0; i < 6; i++ {
		p := sys.AddGraphVertex("product")
		n := sys.AddGraphVertex(fmt.Sprintf("Nimbus Peak Boot %d", i))
		c := sys.AddGraphVertex("green")
		if err := sys.AddGraphEdge(p, n, "productName"); err != nil {
			t.Fatal(err)
		}
		if err := sys.AddGraphEdge(p, c, "hasColor"); err != nil {
			t.Fatal(err)
		}
		id, err := sys.AddTuple("product",
			fmt.Sprintf("Nimbus Peak Boot %d GTX", i), "green")
		if err != nil {
			t.Fatal(err)
		}
		lastID = id
	}
	close(stop)
	wg.Wait()

	// Quiesced: the engine must converge on the final generation and
	// agree with the sequential matcher, including for a vertex that
	// only exists in the freshest snapshot.
	uNew, err := sys.TupleVertex("product", lastID)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.VPair(context.Background(), uNew)
	if err != nil {
		t.Fatal(err)
	}
	want := sys.VPairVertex(uNew)
	if len(got) != len(want) {
		t.Fatalf("sharded VPair after mutations = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sharded VPair diverges at %d: %v != %v", i, got[i], want[i])
		}
	}

	// Surviving cache entries must never be stale: populate the cache
	// for every source, apply one more write — whose delta sweep
	// re-stamps the surviving VPair entries instead of wiping them —
	// and re-ask. Every post-write answer, whether served from a
	// survivor or recomputed, must equal the fresh sequential verdict.
	ctx := context.Background()
	sources := sys.SourceVertices()
	for _, u := range sources {
		if _, err := eng.VPair(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.AddTuple("product", "Cloudrunner Final GTX", "green"); err != nil {
		t.Fatal(err)
	}
	before := eng.Snapshot()
	for _, u := range sources {
		got, err := eng.VPair(ctx, u)
		if err != nil {
			t.Fatal(err)
		}
		want := sys.VPairVertex(u)
		if len(got) != len(want) {
			t.Fatalf("post-write VPair(%d) = %v, want %v (stale cache survivor?)", u, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("post-write VPair(%d) diverges at %d: %v != %v", u, i, got[i], want[i])
			}
		}
	}
	after := eng.Snapshot()
	if after.DeltasApplied == 0 {
		t.Fatal("no delta was ever applied in place; the incremental serving path is dead")
	}
	if after.CacheSurvived <= before.CacheSurvived {
		t.Fatalf("no cache entry survived the AddTuple sweep (survived %d → %d): vertex-scoped invalidation is not scoping",
			before.CacheSurvived, after.CacheSurvived)
	}
}

// TestSystemDeltaDifferential drives the REAL emission path — System's
// AddTuple/AddGraphVertex/AddGraphEdge recording into the delta log the
// engine replays — and asserts after every single write that the
// delta-maintained engine answers exactly like the sequential system,
// for every source vertex. This is the end-to-end version of the
// testkit mutation-sequence differential.
func TestSystemDeltaDifferential(t *testing.T) {
	sys, _ := incrementalFixture(t)
	eng, err := shard.NewEngine(sys.ShardConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()

	checkAll := func(stage string) {
		t.Helper()
		for _, u := range sys.SourceVertices() {
			got, err := eng.VPair(ctx, u)
			if err != nil {
				t.Fatalf("%s: engine VPair(%d): %v", stage, u, err)
			}
			want := sys.VPairVertex(u)
			if len(got) != len(want) {
				t.Fatalf("%s: VPair(%d) = %v, want %v", stage, u, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: VPair(%d) diverges at %d: %v != %v", stage, u, i, got[i], want[i])
				}
			}
		}
	}

	checkAll("initial")
	p := sys.AddGraphVertex("product")
	checkAll("after AddGraphVertex(product)")
	n := sys.AddGraphVertex("Aurora Trail Runner 7")
	c := sys.AddGraphVertex("red")
	if err := sys.AddGraphEdge(p, n, "productName"); err != nil {
		t.Fatal(err)
	}
	checkAll("after AddGraphEdge(productName)")
	if err := sys.AddGraphEdge(p, c, "hasColor"); err != nil {
		t.Fatal(err)
	}
	checkAll("after AddGraphEdge(hasColor)")
	if _, err := sys.AddTuple("product", "Celeste Dune Sandal", "teal"); err != nil {
		t.Fatal(err)
	}
	checkAll("after AddTuple")
	if eng.Snapshot().DeltasApplied == 0 {
		t.Fatal("every write fell back to a full rebuild; the delta path was never taken")
	}
}
