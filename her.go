// Package her implements HER (Heterogeneous Entity Resolution), the
// system of "Linking Entities across Relations and Graphs" (ICDE 2022):
// it links tuples of a relational database D to vertices of a graph G
// that refer to the same real-world entity, via parametric simulation.
//
// A System is assembled from a database and a graph (Fig. 2): the
// RDB2RDF module converts D to a canonical graph G_D; the Learn module
// trains the parameter functions (M_v, M_ρ, M_r) and selects the
// thresholds (σ, δ, k); and three query modes answer requests:
//
//   - SPair: does tuple t match vertex v?
//   - VPair: all vertices of G matching tuple t.
//   - APair: all matches across D and G, sequentially or in parallel on
//     the BSP engine.
//
// Matches are explainable: Explain returns the witness relation Π, the
// lineage set and the schema matches Γ of a confirmed pair.
package her

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"her/internal/bsp"
	"her/internal/core"
	"her/internal/dataset"
	"her/internal/embed"
	"her/internal/graph"
	"her/internal/index"
	"her/internal/learn"
	"her/internal/lstm"
	"her/internal/obs"
	"her/internal/ranking"
	"her/internal/rdb2rdf"
	"her/internal/relational"
	"her/internal/shard"
)

// Public aliases so downstream users can name the library's types
// without importing internal packages.
type (
	// VertexID identifies a vertex of G_D or G.
	VertexID = graph.VID
	// Pair is a candidate or confirmed match (U in G_D, V in G).
	Pair = core.Pair
	// TupleRef identifies a tuple of the database.
	TupleRef = rdb2rdf.TupleRef
	// Annotation is a ground-truth labeled pair.
	Annotation = learn.Annotation
	// Feedback is a user-annotated pair from the interaction loop.
	Feedback = learn.Feedback
	// Thresholds bundles (σ, δ, k).
	Thresholds = learn.Thresholds
	// PathPair is an annotated edge-label-sequence pair for training M_ρ.
	PathPair = dataset.PathPair
	// SchemaMatch maps an attribute to the G path encoding it.
	SchemaMatch = core.SchemaMatch
	// ParallelStats reports a parallel APair run.
	ParallelStats = bsp.Stats
	// Counters reports matcher work.
	Counters = core.Counters
	// MetricsRegistry is the observability registry of internal/obs:
	// named counters, gauges and latency histograms with Prometheus
	// text exposition. Install one via Options.Metrics.
	MetricsRegistry = obs.Registry
	// Span is a traced region of work (obs span tracing).
	Span = obs.Span
	// SpanNode is the immutable exported form of a finished span tree.
	SpanNode = obs.SpanNode
	// FlightRecorder retains the slowest and all errored request traces
	// per operation in bounded memory; see internal/obs.
	FlightRecorder = obs.FlightRecorder
	// Trace is one retained request trace: id, op, error and span tree.
	Trace = obs.Trace
)

// NewMetrics creates an empty metrics registry to pass in
// Options.Metrics and to serve at GET /metrics.
func NewMetrics() *MetricsRegistry { return obs.NewRegistry() }

// StartSpan opens a root tracing span; see internal/obs.
func StartSpan(name string) *Span { return obs.StartSpan(name) }

// NewFlightRecorder creates a flight recorder retaining, per operation,
// the slowPerOp slowest successful traces and a ring of the errsPerOp
// most recent errored ones (0 picks the defaults of 16 and 64).
func NewFlightRecorder(slowPerOp, errsPerOp int) *FlightRecorder {
	return obs.NewFlightRecorder(slowPerOp, errsPerOp)
}

// WithSpan installs a span on a context for propagation through the
// serving stack; a nil span leaves the context unchanged.
func WithSpan(ctx context.Context, sp *Span) context.Context { return obs.WithSpan(ctx, sp) }

// SpanFrom returns the span installed on ctx, or nil.
func SpanFrom(ctx context.Context) *Span { return obs.SpanFrom(ctx) }

// System is one HER instance over a database D and a graph G.
type System struct {
	opts Options // guarded by mu — SetThresholds and LoadModels mutate it while queries read it

	DB      *relational.Database
	GD      *graph.Graph
	Mapping *rdb2rdf.Mapping
	G       *graph.Graph

	sc      *scorers
	lm      *lstm.Model
	rankerD *ranking.Ranker
	rankerG *ranking.Ranker

	mu        sync.Mutex         // serializes matching and mutation
	matcher   *core.Matcher      // guarded by mu
	ix        *index.Inverted    // guarded by mu — the G-side blocking index, shared by all views
	gen       core.CandidateGen  // guarded by mu — swapped whole on index rebuilds
	overrides map[core.Pair]bool // guarded by mu — user-verified pairs (Section IV refinement)
	lastPar   *bsp.Stats         // guarded by mu — stats of the most recent parallel APair run

	// views hosts the named graph views (viewapi.go); each carries its
	// own G_D-side graph, mapping, matcher, generation and delta log.
	// Guarded by mu.
	views map[string]*viewState

	// generation counts semantic mutations: incremental updates to D or
	// G, feedback, retraining, threshold changes — anything that can
	// change a match verdict. Each bump records exactly one typed delta
	// in the delta log, so external engines (internal/shard) can tell
	// incremental updates — maintainable in place, with vertex-scoped
	// cache invalidation — from resets that force a full rebuild.
	generation atomic.Uint64
	deltas     *shard.DeltaLog
}

// New builds a System from a relational database and a graph, converting
// the database with the RDB2RDF canonical mapping.
func New(db *relational.Database, g *graph.Graph, opts Options) (*System, error) {
	if db == nil || g == nil {
		return nil, fmt.Errorf("her: database and graph must be non-nil")
	}
	gd, mapping, err := rdb2rdf.Map(db)
	if err != nil {
		return nil, err
	}
	s, err := NewFromGraphs(gd, g, opts)
	if err != nil {
		return nil, err
	}
	s.DB = db
	s.Mapping = mapping
	return s, nil
}

// NewFromGraphs builds a System directly over a pre-converted canonical
// graph G_D and a graph G (no tuple-level API in this mode).
func NewFromGraphs(gd, g *graph.Graph, opts Options) (*System, error) {
	if gd == nil || g == nil {
		return nil, fmt.Errorf("her: graphs must be non-nil")
	}
	o := opts.Normalize()
	s := &System{
		opts:      o,
		GD:        gd,
		G:         g,
		sc:        newScorers(embed.NewEncoder(o.EmbeddingDim)),
		rankerD:   ranking.NewRanker(gd, nil, o.MaxPathLen),
		rankerG:   ranking.NewRanker(g, nil, o.MaxPathLen),
		overrides: make(map[core.Pair]bool),
		deltas:    shard.NewDeltaLog(0),
	}
	s.buildCandidateGenLocked()
	if err := s.resetMatcherLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// Options returns the normalized options in effect, under the system
// lock — SetThresholds and LoadModels mutate them.
func (s *System) Options() Options {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opts
}

// paramsLocked assembles the core parameters from the current scorers
// and thresholds. Callers hold s.mu (the thresholds live in s.opts).
func (s *System) paramsLocked() core.Params {
	return core.Params{
		Mv:    s.sc.Mv,
		Mrho:  s.sc.Mrho,
		Sigma: s.opts.Sigma,
		Delta: s.opts.Delta,
		K:     s.opts.K,
	}
}

// buildCandidateGenLocked constructs the blocking inverted index:
// non-leaf vertices of G indexed by their own label plus 1-hop neighbor
// labels ("critical information"), queried with the tuple vertex's
// label plus its attribute values. The index is over G only, so every
// hosted view shares it — each view pairs it with neighborhood docs
// over its own G_D-side graph. Callers hold s.mu (construction-time
// calls own the System exclusively).
func (s *System) buildCandidateGenLocked() {
	ix := index.BuildDocs(s.G,
		func(v graph.VID) bool { return !s.G.IsLeaf(v) },
		index.NeighborhoodDoc(s.G))
	s.ix = ix
	docD := index.NeighborhoodDoc(s.GD)
	min := s.opts.MinSharedTokens
	s.gen = func(u graph.VID) []graph.VID {
		return ix.Lookup(docD(u), min)
	}
	for _, vs := range s.views {
		vs.rebuildGenFrom(ix, min)
	}
}

func (s *System) resetMatcherLocked() error {
	m, err := core.NewMatcher(s.GD, s.G, s.rankerD, s.rankerG, s.paramsLocked())
	if err != nil {
		return err
	}
	m.SetMetrics(s.opts.Metrics)
	s.matcher = m
	// Every matcher reset is a semantic change (new scorers, thresholds
	// or feedback) that can flip verdicts anywhere: record it as a reset
	// delta, which poisons incremental maintenance and forces external
	// engines into a full rebuild with total cache invalidation. The
	// hosted views share the scorers and thresholds, so each gets the
	// same treatment: a rebuilt matcher and a reset delta in its own log.
	s.recordDelta(shard.Delta{Kind: shard.DeltaReset})
	return s.resetViewsLocked()
}

// recordDelta stamps d with the next generation, records it in the
// delta log, and only then publishes the generation bump — so any
// engine that observes the new generation is guaranteed to find its
// delta in the log. Callers hold s.mu (all mutation paths do), which
// serializes the stamp-record-bump sequence.
func (s *System) recordDelta(d shard.Delta) {
	d.Gen = s.generation.Load() + 1
	s.deltas.Record(d)
	s.generation.Add(1)
}

// Generation reports the system's mutation generation. It changes
// whenever a match verdict could: incremental updates (AddTuple,
// AddGraphVertex, AddGraphEdge), feedback (Refine), retraining and
// threshold changes all bump it. Safe for concurrent use.
func (s *System) Generation() uint64 { return s.generation.Load() }

// Metrics returns the registry the system was built with (nil when
// instrumentation is disabled).
func (s *System) Metrics() *MetricsRegistry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opts.Metrics
}

// ResetMatchState drops all cached match decisions (e.g. after the
// underlying scorers changed).
func (s *System) ResetMatchState() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.resetMatcherLocked()
}

// Thresholds returns the current (σ, δ, k), under the system lock —
// SetThresholds installs new ones concurrently.
func (s *System) Thresholds() Thresholds {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Thresholds{Sigma: s.opts.Sigma, Delta: s.opts.Delta, K: s.opts.K}
}

// SetThresholds installs new thresholds and resets cached decisions.
func (s *System) SetThresholds(th Thresholds) error {
	if th.Sigma < 0 || th.Sigma > 1 || th.Delta < 0 || th.K <= 0 {
		return fmt.Errorf("her: invalid thresholds %+v", th)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.opts.Sigma, s.opts.Delta, s.opts.K = th.Sigma, th.Delta, th.K
	return s.resetMatcherLocked()
}

// tupleVertex resolves a tuple to its canonical-graph vertex via f_D.
// The lookup takes the system lock: AddTuple extends the mapping's
// tables while serving paths resolve concurrently.
func (s *System) tupleVertex(rel string, tupleID int) (graph.VID, error) {
	if s.Mapping == nil {
		return graph.NoVertex, fmt.Errorf("her: no tuple mapping (built with NewFromGraphs)")
	}
	s.mu.Lock()
	u, ok := s.Mapping.VertexOf(rel, tupleID)
	s.mu.Unlock()
	if !ok {
		return graph.NoVertex, fmt.Errorf("her: unknown tuple %s/%d", rel, tupleID)
	}
	return u, nil
}

// TupleOf reports which tuple a G_D vertex canonicalizes (the inverse of
// TupleVertex), under the system lock — safe against concurrent AddTuple.
func (s *System) TupleOf(u VertexID) (TupleRef, bool) {
	if s.Mapping == nil {
		return TupleRef{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Mapping.TupleOf(u)
}

// GraphValid reports whether v is a vertex of G, under the system lock —
// safe against a concurrent AddGraphVertex growing the vertex table.
func (s *System) GraphValid(v VertexID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.G.Valid(v)
}

// GraphLabel returns the label of G vertex v ("" when v is not a vertex
// of G), under the system lock — the serving path's render-time reads
// run concurrently with incremental updates appending to G.
func (s *System) GraphLabel(v VertexID) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.G.Valid(v) {
		return ""
	}
	return s.G.Label(v)
}

// GDLabel returns the label of G_D vertex u ("" when u is not a vertex
// of G_D), under the system lock — AddTuple extends G_D while serving.
func (s *System) GDLabel(u VertexID) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.GD.Valid(u) {
		return ""
	}
	return s.GD.Label(u)
}

// TupleVertex resolves a tuple to its canonical-graph vertex via f_D —
// the public form of the resolution every tuple-addressed query runs.
func (s *System) TupleVertex(rel string, tupleID int) (VertexID, error) {
	return s.tupleVertex(rel, tupleID)
}

// SPair checks whether tuple (rel, tupleID) and vertex v refer to the
// same entity (mode SPair of Fig. 2).
func (s *System) SPair(rel string, tupleID int, v VertexID) (bool, error) {
	u, err := s.tupleVertex(rel, tupleID)
	if err != nil {
		return false, err
	}
	return s.SPairVertices(u, v), nil
}

// SPairVertices is SPair addressed by vertex ids.
func (s *System) SPairVertices(u, v VertexID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if verdict, ok := s.overrides[core.Pair{U: u, V: v}]; ok {
		return verdict
	}
	return s.matcher.Match(u, v)
}

// VPair finds all vertices of G matching tuple (rel, tupleID).
func (s *System) VPair(rel string, tupleID int) ([]Pair, error) {
	u, err := s.tupleVertex(rel, tupleID)
	if err != nil {
		return nil, err
	}
	return s.VPairVertex(u), nil
}

// VPairVertex is VPair addressed by the tuple's canonical vertex.
func (s *System) VPairVertex(u VertexID) []Pair {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyOverridesLocked(s.matcher.VPair(u, s.gen), u)
}

// VPairTraced is VPair with request tracing: sp, when non-nil, receives
// a "resolve" child for the tuple lookup and — through the matcher —
// the per-phase children of the sequential ParaMatch run (candgen,
// simulate). The span is installed on the matcher under the system
// lock, the same lock that serializes matching, and detached before
// the lock is released, so concurrent requests never share it. A nil
// sp makes this identical to VPair.
func (s *System) VPairTraced(rel string, tupleID int, sp *Span) ([]Pair, error) {
	rsp := sp.Child("resolve")
	u, err := s.tupleVertex(rel, tupleID)
	rsp.End()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.matcher.SetSpan(sp)
	defer s.matcher.SetSpan(nil)
	return s.applyOverridesLocked(s.matcher.VPair(u, s.gen), u), nil
}

// sources returns the G_D vertices APair ranges over: the tuple vertices
// when a mapping exists, every vertex otherwise.
func (s *System) sources() []graph.VID {
	if s.Mapping == nil {
		return nil
	}
	names := s.DB.RelationNames()
	total := 0
	for _, relName := range names {
		total += len(s.DB.Relation(relName).Tuples)
	}
	out := make([]graph.VID, 0, total)
	for _, relName := range names {
		rel := s.DB.Relation(relName)
		out = append(out, s.Mapping.TupleVertices(relName, len(rel.Tuples))...)
	}
	return out
}

// APair computes all matches across D and G sequentially.
func (s *System) APair() []Pair {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyOverridesLocked(s.matcher.APair(s.sources(), s.gen), graph.NoVertex)
}

// APairOf computes all matches for an explicit set of G_D source
// vertices — the entry point for data formats without a tuple mapping,
// such as JSON documents converted with NewFromJSON.
func (s *System) APairOf(sources []VertexID) []Pair {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyOverridesLocked(s.matcher.APair(sources, s.gen), graph.NoVertex)
}

// APairParallel computes all matches with the BSP engine on n workers.
// The run parameters (thresholds, metrics registry, candidate generator,
// source set) are snapshotted under the system lock before the engine
// starts, so a concurrent SetThresholds or index rebuild cannot tear
// them mid-run; the engine itself runs without the lock.
func (s *System) APairParallel(workers int) ([]Pair, ParallelStats, error) {
	s.mu.Lock()
	p := s.paramsLocked()
	met := s.opts.Metrics
	gen := s.gen
	sources := s.sources()
	s.mu.Unlock()
	eng, err := bsp.NewEngine(s.GD, s.G, s.rankerD, s.rankerG, p)
	if err != nil {
		return nil, ParallelStats{}, err
	}
	eng.Metrics = met
	matches, stats, err := eng.Run(sources, gen, bsp.Config{Workers: workers})
	if err != nil {
		return nil, stats, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastPar = &stats
	return s.applyOverridesLocked(matches, graph.NoVertex), stats, nil
}

// APairParallelAsync computes all matches with the asynchronous engine
// (Section VI-B remark 1): no superstep barriers; workers exchange
// messages as they arrive until quiescence.
func (s *System) APairParallelAsync(workers int) ([]Pair, ParallelStats, error) {
	s.mu.Lock()
	p := s.paramsLocked()
	met := s.opts.Metrics
	gen := s.gen
	sources := s.sources()
	s.mu.Unlock()
	eng, err := bsp.NewEngine(s.GD, s.G, s.rankerD, s.rankerG, p)
	if err != nil {
		return nil, ParallelStats{}, err
	}
	eng.Metrics = met
	matches, stats, err := eng.RunAsync(sources, gen, bsp.Config{Workers: workers})
	if err != nil {
		return nil, stats, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastPar = &stats
	return s.applyOverridesLocked(matches, graph.NoVertex), stats, nil
}

// applyOverridesLocked reconciles algorithmic matches with user-verified
// verdicts: refuted pairs are removed; confirmed pairs for the scoped
// vertex (or any vertex when scope is NoVertex) are added. Callers hold
// s.mu (the overrides map mutates under it).
func (s *System) applyOverridesLocked(matches []Pair, scope graph.VID) []Pair {
	if len(s.overrides) == 0 {
		return matches
	}
	out := matches[:0]
	have := make(map[core.Pair]bool, len(matches))
	for _, p := range matches {
		if verdict, ok := s.overrides[p]; ok && !verdict {
			continue
		}
		out = append(out, p)
		have[p] = true
	}
	// Collect the confirmed additions and sort them: s.overrides is a
	// map, and letting its iteration order reach the returned match list
	// would make VPair/APair responses differ run to run.
	added := make([]Pair, 0, len(s.overrides))
	for p, verdict := range s.overrides {
		if verdict && !have[p] && (scope == graph.NoVertex || p.U == scope) {
			added = append(added, p)
		}
	}
	return append(out, core.SortPairs(added)...)
}

// ApplyOverrides reconciles an externally computed match set with the
// user-verified overrides — the hook engines outside the System's own
// matcher (internal/shard's scatter-gather) run their merged results
// through. scope restricts confirmed additions to one G_D vertex
// (VPair); pass NoVertex for APair-style results. The input slice is
// reused, matching the internal call sites.
func (s *System) ApplyOverrides(matches []Pair, scope VertexID) []Pair {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyOverridesLocked(matches, scope)
}

// SourceVertices returns the G_D source vertices APair ranges over: the
// tuple vertices when a relational mapping exists, nil (= every vertex)
// otherwise.
func (s *System) SourceVertices() []VertexID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sources()
}

// Candidates exposes the blocking candidate generator: the G vertices
// considered for a G_D vertex before the σ filter. Baselines reuse it so
// efficiency comparisons share the same blocking. The generator is
// fetched under the system lock (AddGraphEdge swaps it on index
// rebuilds) and invoked outside it — generators are immutable closures.
func (s *System) Candidates(u VertexID) []VertexID {
	s.mu.Lock()
	gen := s.gen
	s.mu.Unlock()
	return gen(u)
}

// RankerD exposes the G_D-side ranking function h_r (for harnesses that
// assemble custom matchers over this system's learned parameters).
func (s *System) RankerD() *ranking.Ranker { return s.rankerD }

// RankerG exposes the G-side ranking function h_r.
func (s *System) RankerG() *ranking.Ranker { return s.rankerG }

// CoreParams exposes the assembled parametric-simulation parameters.
func (s *System) CoreParams() core.Params {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.paramsLocked()
}

// Stats reports the sequential matcher's work counters.
func (s *System) Stats() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.matcher.Stats()
}

// LastParallelStats reports the statistics of the most recent parallel
// APair run (synchronous or asynchronous); ok is false when no parallel
// run has happened yet.
func (s *System) LastParallelStats() (st ParallelStats, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lastPar == nil {
		return ParallelStats{}, false
	}
	return *s.lastPar, true
}

// Explanation explains why a pair matches.
type Explanation struct {
	Witness       []Pair        // the match relation Π(u, v)
	Lineage       []Pair        // the lineage set S(u, v)
	SchemaMatches []SchemaMatch // Γ(u, v): attribute → path
}

// Render writes a human-readable explanation, resolving vertex ids to
// labels through the system's graphs — the paper's "showing why two
// vertices match based on matching vertex pairs and the accumulated
// score".
func (e *Explanation) Render(sys *System) string {
	var b strings.Builder
	fmt.Fprintf(&b, "witness Pi: %d pairs\nlineage S:\n", len(e.Witness))
	for _, p := range e.Lineage {
		fmt.Fprintf(&b, "  (%q, %q)\n", sys.GD.Label(p.U), sys.G.Label(p.V))
	}
	b.WriteString("schema matches Gamma:\n")
	for _, sm := range e.SchemaMatches {
		fmt.Fprintf(&b, "  %s -> %s\n", sm.Attr, sm.Rho.LabelString())
	}
	return b.String()
}

// Explain returns the explanation of a confirmed match (running the
// match first if needed).
func (s *System) Explain(u, v VertexID) (*Explanation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.matcher.Match(u, v) {
		return nil, fmt.Errorf("her: (%d, %d) is not a match", u, v)
	}
	sm, err := s.matcher.SchemaMatches(u, v)
	if err != nil {
		return nil, err
	}
	return &Explanation{
		Witness:       s.matcher.Witness(u, v),
		Lineage:       s.matcher.Lineage(u, v),
		SchemaMatches: sm,
	}, nil
}

// Predictor returns a learn.Predictor over the current system state,
// including overrides — the function the evaluation harness scores.
func (s *System) Predictor() learn.Predictor {
	return func(p core.Pair) bool { return s.SPairVertices(p.U, p.V) }
}
