package her

import (
	"bytes"
	"sync"
	"testing"
)

// incrementalFixture builds a small trained system plus its parallel
// from-scratch twin for equivalence checks.
// incrementalModels caches the trained model snapshot for
// incrementalFixture: training dominates fixture cost (especially under
// -race), and LoadModels restores identical decisions (pinned by
// TestSaveLoadModels), so after the first fixture every call restores
// the snapshot into a fresh system instead of retraining.
var incrementalModels struct {
	once sync.Once
	blob []byte
	err  error
}

func incrementalFixture(t *testing.T) (*System, []PathPair) {
	t.Helper()
	build := func() (*System, error) {
		schema, err := NewSchema("product", []string{"name", "color"}, "name")
		if err != nil {
			return nil, err
		}
		db := NewDatabase(schema)
		db.Relation("product").MustInsert("Aurora Trail Runner 7", "red")

		g := NewGraph()
		p1 := g.AddVertex("product")
		g.MustAddEdge(p1, g.AddVertex("Aurora Trail Runner"), "productName")
		g.MustAddEdge(p1, g.AddVertex("red"), "hasColor")

		return New(db, g, Options{Seed: 2})
	}
	pairs := []PathPair{
		{A: []string{"name"}, B: []string{"productName"}, Match: true},
		{A: []string{"color"}, B: []string{"hasColor"}, Match: true},
		{A: []string{"name"}, B: []string{"hasColor"}, Match: false},
		{A: []string{"color"}, B: []string{"productName"}, Match: false},
	}

	incrementalModels.once.Do(func() {
		ref, err := build()
		if err != nil {
			incrementalModels.err = err
			return
		}
		var training []PathPair
		for i := 0; i < 30; i++ {
			training = append(training, pairs...)
		}
		if err := ref.TrainPathModel(training, 0); err != nil {
			incrementalModels.err = err
			return
		}
		if err := ref.TrainRanker(50, 120); err != nil {
			incrementalModels.err = err
			return
		}
		if err := ref.SetThresholds(Thresholds{Sigma: 0.75, Delta: 0.9, K: 5}); err != nil {
			incrementalModels.err = err
			return
		}
		var buf bytes.Buffer
		if err := ref.SaveModels(&buf); err != nil {
			incrementalModels.err = err
			return
		}
		incrementalModels.blob = buf.Bytes()
	})
	if incrementalModels.err != nil {
		t.Fatal(incrementalModels.err)
	}

	sys, err := build()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadModels(bytes.NewReader(incrementalModels.blob)); err != nil {
		t.Fatal(err)
	}
	return sys, pairs
}

func TestAddTupleIncrementally(t *testing.T) {
	sys, _ := incrementalFixture(t)
	// Baseline decision for the original tuple.
	m0, err := sys.VPair("product", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m0) != 1 {
		t.Fatalf("original tuple should match once, got %v", m0)
	}

	// New graph entity plus a new tuple denoting it.
	p2 := sys.AddGraphVertex("product")
	n2 := sys.AddGraphVertex("Comet Road Cruiser")
	c2 := sys.AddGraphVertex("blue")
	if err := sys.AddGraphEdge(p2, n2, "productName"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddGraphEdge(p2, c2, "hasColor"); err != nil {
		t.Fatal(err)
	}
	id, err := sys.AddTuple("product", "Comet Road Cruiser 2", "blue")
	if err != nil {
		t.Fatal(err)
	}
	matches, err := sys.VPair("product", id)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].V != p2 {
		t.Fatalf("new tuple should match the new entity: %v", matches)
	}
	// The old decision survives.
	m1, err := sys.VPair("product", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1) != 1 || m1[0].V != m0[0].V {
		t.Errorf("old decision changed: %v vs %v", m1, m0)
	}
	// Errors.
	if _, err := sys.AddTuple("nonexistent", "x"); err == nil {
		t.Error("unknown relation should fail")
	}
	if _, err := sys.AddTuple("product", "only-one-value"); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := sys.AddTuple("product", "Aurora Trail Runner 7", "red"); err == nil {
		t.Error("duplicate key should fail")
	}
}

// TestAddGraphEdgeFlipsDecision: a tuple whose match previously failed
// for lack of a color property starts matching after the graph gains
// the missing edge — incremental maintenance must notice.
func TestAddGraphEdgeFlipsDecision(t *testing.T) {
	sys, _ := incrementalFixture(t)
	// A second entity with only a name: δ = 0.9 needs both properties.
	p2 := sys.AddGraphVertex("product")
	n2 := sys.AddGraphVertex("Comet Road Cruiser")
	if err := sys.AddGraphEdge(p2, n2, "productName"); err != nil {
		t.Fatal(err)
	}
	id, err := sys.AddTuple("product", "Comet Road Cruiser 2", "blue")
	if err != nil {
		t.Fatal(err)
	}
	before, err := sys.SPair("product", id, p2)
	if err != nil {
		t.Fatal(err)
	}
	if before {
		t.Fatal("pair should not match with the color property missing")
	}
	// Add the missing property; the cached negative must be forgotten.
	c2 := sys.AddGraphVertex("blue")
	if err := sys.AddGraphEdge(p2, c2, "hasColor"); err != nil {
		t.Fatal(err)
	}
	after, err := sys.SPair("product", id, p2)
	if err != nil {
		t.Fatal(err)
	}
	if !after {
		t.Error("pair should match after the edge update")
	}
}

func TestAddGraphEdgeValidation(t *testing.T) {
	sys, _ := incrementalFixture(t)
	if err := sys.AddGraphEdge(0, VertexID(10_000), "x"); err == nil {
		t.Error("edge to invalid vertex should fail")
	}
}
