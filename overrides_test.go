package her

import (
	"testing"
)

// TestOverridesReconciliation: refuted pairs disappear from VPair/APair
// results and confirmed pairs appear, exactly as the verified-match
// semantics of the refinement loop requires.
func TestOverridesReconciliation(t *testing.T) {
	sys, _ := incrementalFixture(t)
	u, _ := sys.Mapping.VertexOf("product", 0)
	matches := sys.VPairVertex(u)
	if len(matches) != 1 {
		t.Fatalf("setup: %v", matches)
	}
	target := matches[0].V

	// Refute the algorithmic match: it must vanish everywhere.
	sys.Refine([]Feedback{{Pair: Pair{U: u, V: target}, IsMatch: false}})
	if got := sys.VPairVertex(u); len(got) != 0 {
		t.Errorf("refuted pair still returned: %v", got)
	}
	if sys.SPairVertices(u, target) {
		t.Error("refuted pair still matches via SPair")
	}
	if got := sys.APair(); len(got) != 0 {
		t.Errorf("refuted pair still in APair: %v", got)
	}

	// Confirm a pair the algorithm rejects: it must appear.
	other := sys.AddGraphVertex("product")
	sys.Refine([]Feedback{{Pair: Pair{U: u, V: other}, IsMatch: true}})
	foundV, foundA := false, false
	for _, m := range sys.VPairVertex(u) {
		if m.V == other {
			foundV = true
		}
	}
	for _, m := range sys.APair() {
		if m.U == u && m.V == other {
			foundA = true
		}
	}
	if !foundV || !foundA {
		t.Errorf("confirmed pair missing: vpair=%v apair=%v", foundV, foundA)
	}
	if !sys.SPairVertices(u, other) {
		t.Error("confirmed pair rejected via SPair")
	}
	if sys.Overrides() != 2 {
		t.Errorf("overrides = %d", sys.Overrides())
	}
}

// TestOverrideOrderDeterministic: confirmed overrides are collected
// from a map; the reconciliation must sort them so repeated identical
// queries return matches in an identical order (the order reaches
// serialized /vpair and /apair responses).
func TestOverrideOrderDeterministic(t *testing.T) {
	sys, _ := incrementalFixture(t)
	u, _ := sys.Mapping.VertexOf("product", 0)
	// Confirm many pairs so map iteration order would visibly scramble
	// the result if it leaked.
	var fb []Feedback
	for i := 0; i < 8; i++ {
		v := sys.AddGraphVertex("product")
		fb = append(fb, Feedback{Pair: Pair{U: u, V: v}, IsMatch: true})
	}
	sys.Refine(fb)

	first := sys.VPairVertex(u)
	if len(first) < 8 {
		t.Fatalf("setup: expected ≥8 matches, got %v", first)
	}
	for i := 0; i < 10; i++ {
		again := sys.VPairVertex(u)
		if len(again) != len(first) {
			t.Fatalf("run %d: %d matches vs %d", i+2, len(again), len(first))
		}
		for j := range again {
			if again[j] != first[j] {
				t.Fatalf("run %d: match order changed at %d: %v vs %v", i+2, j, again[j], first[j])
			}
		}
	}

	apFirst := sys.APair()
	for i := 0; i < 5; i++ {
		apAgain := sys.APair()
		if len(apAgain) != len(apFirst) {
			t.Fatalf("APair run %d: %d vs %d", i+2, len(apAgain), len(apFirst))
		}
		for j := range apAgain {
			if apAgain[j] != apFirst[j] {
				t.Fatalf("APair run %d: order changed at %d", i+2, j)
			}
		}
	}
}

// TestOverrideScope: a confirmed pair for tuple A must not leak into
// VPair results of tuple B.
func TestOverrideScope(t *testing.T) {
	sys, _ := incrementalFixture(t)
	id, err := sys.AddTuple("product", "Other Product 9", "green")
	if err != nil {
		t.Fatal(err)
	}
	uA, _ := sys.Mapping.VertexOf("product", 0)
	uB, _ := sys.Mapping.VertexOf("product", id)
	v := sys.AddGraphVertex("product")
	sys.Refine([]Feedback{{Pair: Pair{U: uA, V: v}, IsMatch: true}})
	for _, m := range sys.VPairVertex(uB) {
		if m.V == v {
			t.Error("override for tuple A leaked into tuple B's VPair")
		}
	}
}
