package her

import (
	"testing"
)

// TestOverridesReconciliation: refuted pairs disappear from VPair/APair
// results and confirmed pairs appear, exactly as the verified-match
// semantics of the refinement loop requires.
func TestOverridesReconciliation(t *testing.T) {
	sys, _ := incrementalFixture(t)
	u, _ := sys.Mapping.VertexOf("product", 0)
	matches := sys.VPairVertex(u)
	if len(matches) != 1 {
		t.Fatalf("setup: %v", matches)
	}
	target := matches[0].V

	// Refute the algorithmic match: it must vanish everywhere.
	sys.Refine([]Feedback{{Pair: Pair{U: u, V: target}, IsMatch: false}})
	if got := sys.VPairVertex(u); len(got) != 0 {
		t.Errorf("refuted pair still returned: %v", got)
	}
	if sys.SPairVertices(u, target) {
		t.Error("refuted pair still matches via SPair")
	}
	if got := sys.APair(); len(got) != 0 {
		t.Errorf("refuted pair still in APair: %v", got)
	}

	// Confirm a pair the algorithm rejects: it must appear.
	other := sys.AddGraphVertex("product")
	sys.Refine([]Feedback{{Pair: Pair{U: u, V: other}, IsMatch: true}})
	foundV, foundA := false, false
	for _, m := range sys.VPairVertex(u) {
		if m.V == other {
			foundV = true
		}
	}
	for _, m := range sys.APair() {
		if m.U == u && m.V == other {
			foundA = true
		}
	}
	if !foundV || !foundA {
		t.Errorf("confirmed pair missing: vpair=%v apair=%v", foundV, foundA)
	}
	if !sys.SPairVertices(u, other) {
		t.Error("confirmed pair rejected via SPair")
	}
	if sys.Overrides() != 2 {
		t.Errorf("overrides = %d", sys.Overrides())
	}
}

// TestOverrideScope: a confirmed pair for tuple A must not leak into
// VPair results of tuple B.
func TestOverrideScope(t *testing.T) {
	sys, _ := incrementalFixture(t)
	id, err := sys.AddTuple("product", "Other Product 9", "green")
	if err != nil {
		t.Fatal(err)
	}
	uA, _ := sys.Mapping.VertexOf("product", 0)
	uB, _ := sys.Mapping.VertexOf("product", id)
	v := sys.AddGraphVertex("product")
	sys.Refine([]Feedback{{Pair: Pair{U: uA, V: v}, IsMatch: true}})
	for _, m := range sys.VPairVertex(uB) {
		if m.V == v {
			t.Error("override for tuple A leaked into tuple B's VPair")
		}
	}
}
