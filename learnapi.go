package her

import (
	"fmt"

	"her/internal/core"
	"her/internal/embed"
	"her/internal/graph"
	"her/internal/learn"
	"her/internal/lstm"
	"her/internal/nn"
	"her/internal/ranking"
)

// TrainPathModel trains the M_ρ metric network (the paper's 3-layer
// similarity model over BERT embeddings, here over hashed sequence
// embeddings) on annotated path pairs, then resets cached decisions.
func (s *System) TrainPathModel(pairs []PathPair, epochs int) error {
	if len(pairs) == 0 {
		return fmt.Errorf("her: no path pairs to train on")
	}
	if epochs <= 0 {
		epochs = 60
	}
	o := s.Options() // snapshot: SetThresholds may mutate s.opts concurrently
	in := 4 * o.EmbeddingDim
	model := nn.MustMLP([]int{in, o.MetricHidden, 1}, nn.ReLU, o.Seed)
	samples := make([]nn.Sample, 0, len(pairs))
	for _, p := range pairs {
		y := 0.0
		if p.Match {
			y = 1
		}
		samples = append(samples, nn.Sample{X: s.sc.pathFeatures(p.A, p.B), Y: y})
	}
	model.TrainBCE(samples, nn.TrainConfig{
		Epochs: epochs, LearnRate: 0.005, BatchSize: 8, Seed: o.Seed,
	})
	s.sc.metric = model
	s.sc.invalidateRho()
	s.ResetMatchState()
	return nil
}

// MetricAccuracy evaluates the trained M_ρ on annotated path pairs at a
// 0.5 decision threshold.
func (s *System) MetricAccuracy(pairs []PathPair) float64 {
	if s.sc.metric == nil || len(pairs) == 0 {
		return 0
	}
	var samples []nn.Sample
	for _, p := range pairs {
		y := 0.0
		if p.Match {
			y = 1
		}
		samples = append(samples, nn.Sample{X: s.sc.pathFeatures(p.A, p.B), Y: y})
	}
	return s.sc.metric.Accuracy(samples)
}

// TrainRanker trains the LSTM path language model M_r on max-PRA paths
// collected from sampled vertices of both graphs (Section IV's training
// preparation), then rebuilds the rankers around it.
func (s *System) TrainRanker(sampleVertices, epochs int) error {
	if sampleVertices <= 0 {
		sampleVertices = 200
	}
	if epochs <= 0 {
		epochs = 15
	}
	starts := func(g *graph.Graph) []graph.VID {
		var out []graph.VID
		step := g.NumVertices()/sampleVertices + 1
		for i := 0; i < g.NumVertices(); i += step {
			v := graph.VID(i)
			if !g.IsLeaf(v) {
				out = append(out, v)
			}
		}
		return out
	}
	o := s.Options() // snapshot: SetThresholds may mutate s.opts concurrently
	corpus := ranking.TrainingPaths(s.GD, starts(s.GD), o.MaxPathLen, ranking.RejectPassThrough(s.GD))
	corpus = append(corpus, ranking.TrainingPaths(s.G, starts(s.G), o.MaxPathLen, ranking.RejectPassThrough(s.G))...)
	if len(corpus) == 0 {
		return fmt.Errorf("her: empty ranker training corpus")
	}
	vocab := lstm.NewVocab(append(embed.LabelVocabulary(s.GD), embed.LabelVocabulary(s.G)...))
	lm := lstm.New(vocab, o.LSTMEmbed, o.LSTMHidden, o.Seed)
	lm.Train(corpus, lstm.TrainConfig{
		Epochs: epochs, LearnRate: 0.05, Clip: 5, Seed: o.Seed,
	})
	s.lm = lm
	s.rankerD = ranking.NewRanker(s.GD, lm, o.MaxPathLen)
	s.rankerG = ranking.NewRanker(s.G, lm, o.MaxPathLen)
	s.mu.Lock()
	s.rebuildViewRankersLocked()
	s.mu.Unlock()
	s.ResetMatchState()
	return nil
}

// LearnThresholds runs the paper's random search over (σ, δ, k) against
// a validation set, installs the best thresholds and returns them.
func (s *System) LearnThresholds(val []Annotation, space learn.SearchSpace, trials int) (Thresholds, float64, error) {
	if len(val) == 0 {
		return Thresholds{}, 0, fmt.Errorf("her: empty validation set")
	}
	if trials <= 0 {
		trials = 30
	}
	best, score, err := learn.RandomSearch(space, trials, s.Options().Seed, func(th Thresholds) float64 {
		return s.EvaluateWith(th, val).F1()
	})
	if err != nil {
		return Thresholds{}, 0, err
	}
	if err := s.SetThresholds(best); err != nil {
		return Thresholds{}, 0, err
	}
	return best, score, nil
}

// EvaluateWith scores annotations under trial thresholds using a fresh
// matcher (shared rankers and scorers), without touching system state.
func (s *System) EvaluateWith(th Thresholds, anns []Annotation) learn.Eval {
	p := core.Params{Mv: s.sc.Mv, Mrho: s.sc.Mrho, Sigma: th.Sigma, Delta: th.Delta, K: th.K}
	m, err := core.NewMatcher(s.GD, s.G, s.rankerD, s.rankerG, p)
	if err != nil {
		return learn.Eval{}
	}
	return learn.Evaluate(func(pair core.Pair) bool {
		return m.Match(pair.U, pair.V)
	}, anns)
}

// Evaluate scores annotations under the current system state (including
// overrides).
func (s *System) Evaluate(anns []Annotation) learn.Eval {
	return learn.Evaluate(s.Predictor(), anns)
}

// Refine applies one round of user feedback (Section IV, Exp-4): voted
// verdicts become verified overrides, and the M_ρ metric network is
// fine-tuned with a triplet (margin ranking) loss built from the
// feedback pairs' aligned path features.
func (s *System) Refine(fb []Feedback) {
	if len(fb) == 0 {
		return
	}
	var pos, neg [][]float64 // path features from FN / FP pairs
	s.mu.Lock()
	seed := s.opts.Seed // captured here: the fine-tune below runs unlocked
	for _, f := range fb {
		s.overrides[f.Pair] = f.IsMatch
		feats := s.alignedPathFeaturesLocked(f.Pair)
		if f.IsMatch {
			pos = append(pos, feats...)
		} else {
			neg = append(neg, feats...)
		}
	}
	s.mu.Unlock()

	if s.sc.metric != nil && len(pos) > 0 && len(neg) > 0 {
		var triplets []nn.Triplet
		for i, p := range pos {
			triplets = append(triplets, nn.Triplet{Pos: p, Neg: neg[i%len(neg)]})
		}
		s.sc.metric.TrainTriplet(triplets, 0.5, nn.TrainConfig{
			Epochs: 5, LearnRate: 0.001, BatchSize: 8, Seed: seed,
		})
		s.sc.invalidateRho()
	}
	s.ResetMatchState()
}

// alignedPathFeaturesLocked pairs the top-k selected paths of a
// feedback pair's two sides by rank and returns their metric features —
// the "path-path matches" the paper marks as similar or dissimilar.
// Callers hold s.mu (k lives in s.opts).
func (s *System) alignedPathFeaturesLocked(p Pair) [][]float64 {
	du := s.rankerD.TopK(p.U, s.opts.K)
	dv := s.rankerG.TopK(p.V, s.opts.K)
	n := len(du)
	if len(dv) < n {
		n = len(dv)
	}
	var out [][]float64
	for i := 0; i < n; i++ {
		out = append(out, s.sc.pathFeatures(du[i].Path.EdgeLabels, dv[i].Path.EdgeLabels))
	}
	return out
}

// Overrides reports how many user-verified pairs are installed.
func (s *System) Overrides() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.overrides)
}

// MrhoScore exposes the raw M_ρ score for diagnostics and examples.
func (s *System) MrhoScore(a, b []string) float64 { return s.sc.Mrho(a, b) }
