package her

import (
	"io"

	"her/internal/dataset"
	"her/internal/graph"
	"her/internal/json2graph"
	"her/internal/learn"
	"her/internal/relational"
)

// This file re-exports the substrate types and constructors a downstream
// user needs to assemble inputs for a System — relational databases,
// graphs, generated benchmark datasets and annotation utilities — so
// that everything is reachable from the her package alone.

type (
	// Database is a relational database D of schema R.
	Database = relational.Database
	// RelationSchema describes one relation schema (attributes, key,
	// foreign keys).
	RelationSchema = relational.Schema
	// ForeignKey declares a foreign-key attribute.
	ForeignKey = relational.ForeignKey
	// Relation is a set of tuples of one schema.
	Relation = relational.Relation
	// Graph is a directed labeled graph G = (V, E, L).
	Graph = graph.Graph
	// Dataset is a generated benchmark dataset: a database, a graph,
	// ground-truth annotations and M_ρ training pairs.
	Dataset = dataset.Generated
	// DatasetConfig parameterizes the dataset generator.
	DatasetConfig = dataset.Config
	// AttrSpec describes one generated attribute and its graph encoding.
	AttrSpec = dataset.AttrSpec
	// DimSpec describes a generated foreign-key dimension.
	DimSpec = dataset.DimSpec
	// Annotators simulates a user panel with majority voting.
	Annotators = learn.Annotators
	// SearchSpace bounds the random threshold search.
	SearchSpace = learn.SearchSpace
	// Eval is a precision/recall/F-measure confusion matrix.
	Eval = learn.Eval
)

// Null is the relational NULL sentinel.
const Null = relational.Null

// NewSchema creates a relation schema; key must be one of attrs when
// non-empty.
func NewSchema(name string, attrs []string, key string, fks ...ForeignKey) (*RelationSchema, error) {
	return relational.NewSchema(name, attrs, key, fks...)
}

// NewDatabase creates an empty database over the given schemas.
func NewDatabase(schemas ...*RelationSchema) *Database {
	return relational.NewDatabase(schemas...)
}

// NewGraph creates an empty graph.
func NewGraph() *Graph { return graph.New() }

// DatasetNames lists the built-in benchmark dataset generators
// (Table IV of the paper): UKGOV, DBpediaP, DBLP, IMDB, FBWIKI, 2T.
func DatasetNames() []string {
	return append([]string{}, dataset.Names...)
}

// GenerateDataset builds one of the named benchmark datasets (plus
// "Synthetic") with the given matchable-entity count (0 = default).
func GenerateDataset(name string, entities int) (*Dataset, error) {
	cfg, ok := dataset.ByName(name, entities)
	if !ok {
		return nil, errUnknownDataset(name)
	}
	return dataset.Generate(cfg)
}

type errUnknownDataset string

func (e errUnknownDataset) Error() string {
	return "her: unknown dataset " + string(e)
}

// GenerateCustomDataset builds a dataset from an explicit configuration.
func GenerateCustomDataset(cfg DatasetConfig) (*Dataset, error) {
	return dataset.Generate(cfg)
}

// BuildExample1 constructs the paper's running example: the procurement
// database of Tables I and II and the product knowledge graph of Fig. 1.
func BuildExample1() (*Dataset, error) {
	ex, err := dataset.BuildExample1()
	if err != nil {
		return nil, err
	}
	return &Dataset{DB: ex.DB, GD: ex.GD, Mapping: ex.Mapping, G: ex.G}, nil
}

// SplitAnnotations partitions annotations into train/validation/test
// fractions (the paper uses 50% / 15% / 35%).
func SplitAnnotations(anns []Annotation, trainFrac, valFrac float64, seed int64) (train, val, test []Annotation, err error) {
	return learn.Split(anns, trainFrac, valFrac, seed)
}

// NewAnnotators creates a simulated user panel of the given size and
// per-user error rate, with majority voting (Exp-4).
func NewAnnotators(users int, errorRate float64, seed int64) (*Annotators, error) {
	return learn.NewAnnotators(users, errorRate, seed)
}

// SelectFeedbackRound picks the most informative pairs for one
// user-interaction round: current errors first, then random fill.
func SelectFeedbackRound(pred func(Pair) bool, pool []Annotation, batch int, seed int64) []Annotation {
	return learn.RefinementRound(pred, pool, batch, seed)
}

// DefaultSearchSpace returns the threshold ranges the paper sweeps.
func DefaultSearchSpace() SearchSpace { return learn.DefaultSearchSpace() }

// DumpDatabaseDir writes db to dir as schema.txt plus one CSV per
// relation (the CSV future-work format).
func DumpDatabaseDir(db *Database, dir string) error { return db.DumpDir(dir) }

// LoadDatabaseDir reads a database dumped with DumpDatabaseDir and
// validates its referential integrity.
func LoadDatabaseDir(dir string) (*Database, error) { return relational.LoadDir(dir) }

// DumpGraphTSV serializes a graph in the repository's TSV format.
func DumpGraphTSV(g *Graph, w io.Writer) error { return g.WriteTSV(w) }

// LoadGraphTSV parses a graph written by DumpGraphTSV.
func LoadGraphTSV(r io.Reader) (*Graph, error) { return graph.ReadTSV(r) }

// NewFromJSON builds a System whose left side is a set of JSON documents
// instead of a relational database — the paper's first future-work item.
// Each document becomes a rooted subgraph labeled typeLabel; the
// returned roots are the entities to link (use VPairVertex or APairOf
// with them).
func NewFromJSON(docs [][]byte, typeLabel string, g *Graph, opts Options) (*System, []VertexID, error) {
	gd := graph.New()
	roots, err := json2graph.ConvertAll(gd, typeLabel, docs)
	if err != nil {
		return nil, nil, err
	}
	sys, err := NewFromGraphs(gd, g, opts)
	if err != nil {
		return nil, nil, err
	}
	return sys, roots, nil
}
