package her

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"her/internal/core"
	"her/internal/graph"
	"her/internal/index"
	"her/internal/ranking"
	"her/internal/shard"
	"her/internal/view"
)

// This file hosts named graph views (internal/view) as first-class
// linking targets: every view carries its own G_D-side graph, mapping,
// matcher, candidate generator, generation counter and delta log, all
// maintained by the same write paths that maintain the direct mapping.
// The reserved view "direct" is the System's own canonical state — the
// rdb2rdf machinery stays exactly as it was, and a ViewHandle for it
// just delegates — so existing callers pay nothing for the view layer.
//
// Maintenance rides PR 7's delta machinery per view: AddTuple
// re-extracts each view's fresh region and records a DeltaTuple in that
// view's log; G mutations fan out as graph deltas; and any change
// append-only extraction cannot express — a new tuple resolving a
// reference that dangled at extraction time — recompiles the view and
// records a DeltaReset, which forces that view's serving engines into
// the full rebuild they need.

// ViewDef re-exports the view definition type for the builder API.
type ViewDef = view.Def

// DirectViewName is the reserved name of the built-in direct view.
const DirectViewName = view.DirectName

// NewViewDef starts a view definition (builder API); see internal/view.
func NewViewDef(name string) *ViewDef { return view.NewDef(name) }

// ParseViews parses view definitions in the rule language.
func ParseViews(src []byte) ([]*ViewDef, error) { return view.Parse(src) }

// viewState is the per-view mirror of the System's canonical-graph
// state. All fields are guarded by System.mu except generation, which
// serving engines read without the lock (same contract as
// System.generation).
type viewState struct {
	def     *view.Def
	gd      *graph.Graph
	mapping *view.Mapping
	rankerD *ranking.Ranker
	matcher *core.Matcher
	gen     core.CandidateGen

	generation atomic.Uint64
	deltas     *shard.DeltaLog
}

// record stamps d with the view's next generation, logs it, then
// publishes the bump — the same stamp-record-bump sequence as
// System.recordDelta, serialized by the same lock.
func (vs *viewState) record(d shard.Delta) {
	d.Gen = vs.generation.Load() + 1
	vs.deltas.Record(d)
	vs.generation.Add(1)
}

// rebuildGenFrom derives the view's candidate generator from the shared
// G-side inverted index and the view's own G_D-side neighborhood docs.
func (vs *viewState) rebuildGenFrom(ix *index.Inverted, minShared int) {
	docD := index.NeighborhoodDoc(vs.gd)
	vs.gen = func(u graph.VID) []graph.VID {
		return ix.Lookup(docD(u), minShared)
	}
}

// publishMetricsLocked refreshes the view's her_view_* gauges.
func (s *System) publishViewMetricsLocked(name string, vs *viewState) {
	reg := s.opts.Metrics
	if reg == nil {
		return
	}
	reg.Gauge(fmt.Sprintf("her_view_vertices{view=%q}", name)).Set(float64(vs.gd.NumVertices()))
	reg.Gauge(fmt.Sprintf("her_view_edges{view=%q}", name)).Set(float64(vs.gd.NumEdges()))
	reg.Gauge(fmt.Sprintf("her_view_generation{view=%q}", name)).Set(float64(vs.generation.Load()))
}

// AddViewDef compiles def against the System's database and installs it
// as a named view. The name "direct" is reserved for the built-in
// canonical mapping.
func (s *System) AddViewDef(def *ViewDef) error {
	if def == nil {
		return fmt.Errorf("her: nil view definition")
	}
	if s.DB == nil {
		return fmt.Errorf("her: views need a relational database (built with NewFromGraphs)")
	}
	if def.Name == DirectViewName {
		return fmt.Errorf("her: view name %q is reserved for the canonical mapping", DirectViewName)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.views[def.Name]; dup {
		return fmt.Errorf("her: view %q already exists", def.Name)
	}
	t0 := time.Now()
	gd, mapping, err := view.Compile(def, s.DB)
	if err != nil {
		return err
	}
	vs := &viewState{
		def:     def,
		gd:      gd,
		mapping: mapping,
		rankerD: ranking.NewRanker(gd, s.lm, s.opts.MaxPathLen),
		deltas:  shard.NewDeltaLog(0),
	}
	vs.rebuildGenFrom(s.ix, s.opts.MinSharedTokens)
	m, err := core.NewMatcher(vs.gd, s.G, vs.rankerD, s.rankerG, s.paramsLocked())
	if err != nil {
		return err
	}
	m.SetMetrics(s.opts.Metrics)
	vs.matcher = m
	if s.views == nil {
		s.views = make(map[string]*viewState)
	}
	s.views[def.Name] = vs
	if reg := s.opts.Metrics; reg != nil {
		reg.Histogram(fmt.Sprintf("her_view_extract_seconds{view=%q}", def.Name),
			nil).ObserveSince(t0)
	}
	s.publishViewMetricsLocked(def.Name, vs)
	return nil
}

// LoadViewFile parses a view definition file and installs every view in
// it — the loading path behind hercli/herserve's -views flag.
func (s *System) LoadViewFile(r io.Reader) error {
	defs, err := view.ParseReader(r)
	if err != nil {
		return err
	}
	for _, d := range defs {
		if err := s.AddViewDef(d); err != nil {
			return err
		}
	}
	return nil
}

// ViewNames lists the hosted views: "direct" first, then the named
// views in sorted order.
func (s *System) ViewNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.views)+1)
	out = append(out, DirectViewName)
	for name := range s.views {
		out = append(out, name)
	}
	sort.Strings(out[1:])
	return out
}

// View resolves a view by name; "" and "direct" name the built-in
// canonical mapping. The returned handle addresses queries at the
// view's graph and mapping.
func (s *System) View(name string) (*ViewHandle, error) {
	if name == "" || name == DirectViewName {
		return &ViewHandle{sys: s, name: DirectViewName}, nil
	}
	s.mu.Lock()
	vs := s.views[name]
	s.mu.Unlock()
	if vs == nil {
		return nil, fmt.Errorf("her: unknown view %q", name)
	}
	return &ViewHandle{sys: s, name: name, vs: vs}, nil
}

// sortedViewNamesLocked returns the named views in deterministic order;
// callers hold s.mu.
func (s *System) sortedViewNamesLocked() []string {
	names := make([]string, 0, len(s.views))
	for n := range s.views {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// resetViewsLocked rebuilds every view's matcher around the current
// scorers and thresholds and records a reset delta per view — the
// view-side half of resetMatcherLocked. Callers hold s.mu.
func (s *System) resetViewsLocked() error {
	for _, name := range s.sortedViewNamesLocked() {
		vs := s.views[name]
		m, err := core.NewMatcher(vs.gd, s.G, vs.rankerD, s.rankerG, s.paramsLocked())
		if err != nil {
			return err
		}
		m.SetMetrics(s.opts.Metrics)
		vs.matcher = m
		vs.record(shard.Delta{Kind: shard.DeltaReset})
		s.publishViewMetricsLocked(name, vs)
	}
	return nil
}

// rebuildViewRankersLocked rebinds every view's G_D-side ranker to a
// new language model, mirroring what TrainRanker/LoadModels do for the
// canonical ranker. The subsequent matcher reset rebuilds the matchers
// around the new rankers. Callers hold s.mu.
func (s *System) rebuildViewRankersLocked() {
	for _, vs := range s.views {
		vs.rankerD = ranking.NewRanker(vs.gd, s.lm, s.opts.MaxPathLen)
	}
}

// recompileViewLocked re-extracts a view from scratch — the fallback
// when append-only maintenance cannot express a change — and records a
// reset delta. Callers hold s.mu.
func (s *System) recompileViewLocked(name string, vs *viewState) error {
	t0 := time.Now()
	gd, mapping, err := view.Compile(vs.def, s.DB)
	if err != nil {
		return err
	}
	vs.gd, vs.mapping = gd, mapping
	vs.rankerD = ranking.NewRanker(gd, s.lm, s.opts.MaxPathLen)
	vs.rebuildGenFrom(s.ix, s.opts.MinSharedTokens)
	m, err := core.NewMatcher(vs.gd, s.G, vs.rankerD, s.rankerG, s.paramsLocked())
	if err != nil {
		return err
	}
	m.SetMetrics(s.opts.Metrics)
	vs.matcher = m
	vs.record(shard.Delta{Kind: shard.DeltaReset})
	if reg := s.opts.Metrics; reg != nil {
		reg.Counter(fmt.Sprintf("her_view_resets_total{view=%q}", name)).Inc()
		reg.Histogram(fmt.Sprintf("her_view_extract_seconds{view=%q}", name),
			nil).ObserveSince(t0)
	}
	s.publishViewMetricsLocked(name, vs)
	return nil
}

// extendViewsLocked maintains every named view after tuple (rel, id)
// was appended to the database: append-only extension with a DeltaTuple
// when sound, full recompile with a DeltaReset when the new tuple
// resolves a dangling reference. Callers hold s.mu.
func (s *System) extendViewsLocked(rel string, id int) error {
	for _, name := range s.sortedViewNamesLocked() {
		vs := s.views[name]
		if vs.mapping.ResolvesDangling(s.DB, rel, id) {
			if err := s.recompileViewLocked(name, vs); err != nil {
				return err
			}
			continue
		}
		base := vs.gd.NumVertices()
		if err := view.ExtendTuple(vs.gd, vs.mapping, vs.def, s.DB, rel, id); err != nil {
			// Extension is best-effort; a full recompile is always sound.
			if err := s.recompileViewLocked(name, vs); err != nil {
				return err
			}
			continue
		}
		d := shard.Delta{Kind: shard.DeltaTuple, GDBase: base}
		for v := base; v < vs.gd.NumVertices(); v++ {
			d.GDLabels = append(d.GDLabels, vs.gd.Label(graph.VID(v)))
			for _, e := range vs.gd.Out(graph.VID(v)) {
				d.GDEdges = append(d.GDEdges, shard.GDEdge{From: graph.VID(v), To: e.To, Label: e.Label})
			}
		}
		vs.record(d)
		if reg := s.opts.Metrics; reg != nil {
			reg.Counter(fmt.Sprintf("her_view_delta_tuples_total{view=%q}", name)).Inc()
		}
		s.publishViewMetricsLocked(name, vs)
	}
	return nil
}

// ViewInfo describes one hosted view for /stats and the CLI.
type ViewInfo struct {
	Name       string `json:"name"`
	Rules      int    `json:"rules"`
	Vertices   int    `json:"vertices"`
	Edges      int    `json:"edges"`
	Tuples     int    `json:"tuples"`
	Generation uint64 `json:"generation"`
}

// ViewHandle addresses queries at one hosted view. For the built-in
// direct view it delegates to the System's canonical state (including
// user-verified overrides); named views answer from their own graph,
// mapping and matcher. Overrides are pairs in the direct view's vertex
// space, so named views do not consult them.
type ViewHandle struct {
	sys  *System
	name string
	vs   *viewState // nil for the direct view
}

// Name returns the view's name.
func (h *ViewHandle) Name() string { return h.name }

// IsDirect reports whether this is the built-in canonical view.
func (h *ViewHandle) IsDirect() bool { return h.vs == nil }

// Generation reports the view's mutation generation.
func (h *ViewHandle) Generation() uint64 {
	if h.vs == nil {
		return h.sys.Generation()
	}
	return h.vs.generation.Load()
}

// Info snapshots the view's shape for /stats and the CLI.
func (h *ViewHandle) Info() ViewInfo {
	s := h.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	info := ViewInfo{Name: h.name, Generation: h.Generation()}
	if h.vs == nil {
		info.Vertices = s.GD.NumVertices()
		info.Edges = s.GD.NumEdges()
		if s.Mapping != nil {
			info.Tuples = s.Mapping.NumTupleVertices()
			info.Rules = view.Direct(s.DB).RuleCount()
		}
		return info
	}
	info.Rules = h.vs.def.RuleCount()
	info.Vertices = h.vs.gd.NumVertices()
	info.Edges = h.vs.gd.NumEdges()
	info.Tuples = h.vs.mapping.NumTupleVertices()
	return info
}

// TupleOf reports which tuple a view-graph vertex materializes (the
// inverse of TupleVertex), under the system lock.
func (h *ViewHandle) TupleOf(u VertexID) (TupleRef, bool) {
	if h.vs == nil {
		return h.sys.TupleOf(u)
	}
	s := h.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	return h.vs.mapping.TupleOf(u)
}

// TupleVertex resolves a tuple to its vertex in this view's graph.
func (h *ViewHandle) TupleVertex(rel string, tupleID int) (VertexID, error) {
	if h.vs == nil {
		return h.sys.TupleVertex(rel, tupleID)
	}
	s := h.sys
	s.mu.Lock()
	u, ok := h.vs.mapping.VertexOf(rel, tupleID)
	s.mu.Unlock()
	if !ok {
		return NoVertex, fmt.Errorf("her: view %s: tuple %s/%d not materialized", h.name, rel, tupleID)
	}
	return u, nil
}

// GDLabel returns the label of vertex u in this view's graph.
func (h *ViewHandle) GDLabel(u VertexID) string {
	if h.vs == nil {
		return h.sys.GDLabel(u)
	}
	s := h.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	if !h.vs.gd.Valid(u) {
		return ""
	}
	return h.vs.gd.Label(u)
}

// SPair checks whether the tuple and vertex v refer to the same entity,
// through this view's extraction.
func (h *ViewHandle) SPair(rel string, tupleID int, v VertexID) (bool, error) {
	if h.vs == nil {
		return h.sys.SPair(rel, tupleID, v)
	}
	u, err := h.TupleVertex(rel, tupleID)
	if err != nil {
		return false, err
	}
	s := h.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	return h.vs.matcher.Match(u, v), nil
}

// VPair finds all vertices of G matching the tuple through this view.
func (h *ViewHandle) VPair(rel string, tupleID int) ([]Pair, error) {
	if h.vs == nil {
		return h.sys.VPair(rel, tupleID)
	}
	u, err := h.TupleVertex(rel, tupleID)
	if err != nil {
		return nil, err
	}
	s := h.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	return h.vs.matcher.VPair(u, h.vs.gen), nil
}

// VPairTraced is VPair with request tracing (see System.VPairTraced).
func (h *ViewHandle) VPairTraced(rel string, tupleID int, sp *Span) ([]Pair, error) {
	if h.vs == nil {
		return h.sys.VPairTraced(rel, tupleID, sp)
	}
	rsp := sp.Child("resolve")
	u, err := h.TupleVertex(rel, tupleID)
	rsp.End()
	if err != nil {
		return nil, err
	}
	s := h.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	h.vs.matcher.SetSpan(sp)
	defer h.vs.matcher.SetSpan(nil)
	return h.vs.matcher.VPair(u, h.vs.gen), nil
}

// SourceVertices returns the view's tuple vertices in relation order —
// the source set its APair ranges over.
func (h *ViewHandle) SourceVertices() []VertexID {
	if h.vs == nil {
		return h.sys.SourceVertices()
	}
	s := h.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	return h.sourcesLocked()
}

func (h *ViewHandle) sourcesLocked() []graph.VID {
	s := h.sys
	names := s.DB.RelationNames()
	total := 0
	for _, relName := range names {
		total += len(s.DB.Relation(relName).Tuples)
	}
	out := make([]graph.VID, 0, total)
	for _, relName := range names {
		rel := s.DB.Relation(relName)
		out = append(out, h.vs.mapping.TupleVertices(relName, len(rel.Tuples))...)
	}
	return out
}

// APair computes all matches across the view and G sequentially.
func (h *ViewHandle) APair() []Pair {
	if h.vs == nil {
		return h.sys.APair()
	}
	s := h.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	return h.vs.matcher.APair(h.sourcesLocked(), h.vs.gen)
}

// Explain explains a confirmed match of this view (running the match
// first if needed).
func (h *ViewHandle) Explain(u, v VertexID) (*Explanation, error) {
	if h.vs == nil {
		return h.sys.Explain(u, v)
	}
	s := h.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	if !h.vs.matcher.Match(u, v) {
		return nil, fmt.Errorf("her: view %s: (%d, %d) is not a match", h.name, u, v)
	}
	sm, err := h.vs.matcher.SchemaMatches(u, v)
	if err != nil {
		return nil, err
	}
	return &Explanation{
		Witness:       h.vs.matcher.Witness(u, v),
		Lineage:       h.vs.matcher.Lineage(u, v),
		SchemaMatches: sm,
	}, nil
}

// CanonicalDump serializes a named view in the vertex-id-independent
// form of view.CanonicalDump — the equality the mutation-sequence
// differential compares, since append-only maintenance and a fresh
// recompile interleave vertex ids differently while denoting the same
// graph. Errors on the direct view (its mapping is the rdb2rdf one).
func (h *ViewHandle) CanonicalDump() (string, error) {
	if h.vs == nil {
		return "", fmt.Errorf("her: CanonicalDump is for named views; the direct view is pinned byte-identically instead")
	}
	s := h.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	return view.CanonicalDump(h.vs.gd, h.vs.mapping, s.DB), nil
}

// Def returns the view's definition (nil for the direct view, whose
// definition is implicit — view.Direct(db) builds the equivalent).
func (h *ViewHandle) Def() *ViewDef {
	if h.vs == nil {
		return nil
	}
	return h.vs.def
}

// WriteTSV serializes the view's graph (cloned under the system lock,
// written without it) — hercli extract and GET /extract use this.
func (h *ViewHandle) WriteTSV(w io.Writer) error {
	s := h.sys
	s.mu.Lock()
	var g *graph.Graph
	if h.vs == nil {
		g = s.GD.Clone()
	} else {
		g = h.vs.gd.Clone()
	}
	s.mu.Unlock()
	return g.WriteTSV(w)
}

// ShardConfig assembles a sharded serving engine configuration over
// this view — the per-view analog of System.ShardConfig, anchored to
// the view's own generation counter and delta log. The direct view
// keeps the canonical configuration (including override routing).
func (h *ViewHandle) ShardConfig(shards int) shard.Config {
	if h.vs == nil {
		return h.sys.ShardConfig(shards)
	}
	s, vs := h.sys, h.vs
	cfg := shard.Config{
		Shards:     shards,
		Generation: vs.generation.Load,
		Deltas:     vs.deltas.Since,
		Metrics:    s.Metrics(),
	}
	cfg.Snapshot = func(c shard.Config) shard.Config {
		s.mu.Lock()
		defer s.mu.Unlock()
		c.GD, c.G = vs.gd.Clone(), s.G.Clone()
		c.LM = s.lm
		c.RankerD = ranking.NewRanker(c.GD, s.lm, s.opts.MaxPathLen)
		c.Params = s.paramsLocked()
		c.MaxPathLen = s.opts.MaxPathLen
		c.MinSharedTokens = s.opts.MinSharedTokens
		c.SnapGen = vs.generation.Load()
		return c
	}
	return cfg.Snapshot(cfg)
}
