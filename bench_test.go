package her

import (
	"sync"
	"testing"

	"her/internal/baselines"
	"her/internal/core"
	"her/internal/dataset"
	"her/internal/embed"
	"her/internal/graph"
	"her/internal/learn"
	"her/internal/lstm"
	"her/internal/nn"
	"her/internal/ranking"
	"her/internal/rdb2rdf"
)

// benchState caches one trained system per dataset so each benchmark
// pays the Learn pipeline once.
type benchState struct {
	d    *dataset.Generated
	sys  *System
	anns []learn.Annotation
}

var (
	benchMu    sync.Mutex
	benchCache = map[string]*benchState{}
)

func benchSetup(b *testing.B, name string, entities int) *benchState {
	return benchSetupOpts(b, name, name, entities, Options{Seed: 7})
}

// benchSetupOpts is benchSetup with caller-chosen Options, cached under
// an explicit key so instrumented and plain variants coexist.
func benchSetupOpts(b *testing.B, key, name string, entities int, opts Options) *benchState {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if st, ok := benchCache[key]; ok {
		return st
	}
	cfg, ok := dataset.ByName(name, entities)
	if !ok {
		b.Fatalf("unknown dataset %s", name)
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := New(d.DB, d.G, opts)
	if err != nil {
		b.Fatal(err)
	}
	var training []PathPair
	for i := 0; i < 20; i++ {
		training = append(training, d.PathPairs...)
	}
	if err := sys.TrainPathModel(training, 0); err != nil {
		b.Fatal(err)
	}
	if err := sys.TrainRanker(120, 10); err != nil {
		b.Fatal(err)
	}
	if err := sys.SetThresholds(Thresholds{Sigma: 0.8, Delta: 1.6, K: 15}); err != nil {
		b.Fatal(err)
	}
	st := &benchState{d: d, sys: sys, anns: d.Truth}
	benchCache[key] = st
	return st
}

// --- Table V / Table VI family: per-request mode latency ----------------

// BenchmarkTableVI_SPair_HER measures HER's per-pair SPair latency with
// a warm cache, the regime Table VI reports (0.68 ms at paper scale).
func BenchmarkTableVI_SPair_HER(b *testing.B) {
	st := benchSetup(b, "DBpediaP", 100)
	pairs := st.anns
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)].Pair
		st.sys.SPairVertices(p.U, p.V)
	}
}

// BenchmarkTableVI_VPair_HER measures per-tuple VPair latency.
func BenchmarkTableVI_VPair_HER(b *testing.B) {
	st := benchSetup(b, "DBpediaP", 100)
	tuples := st.d.TupleVertices
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.sys.VPairVertex(tuples[i%len(tuples)])
	}
}

// benchBaselineSPair shares the Table VI harness for one baseline.
func benchBaselineSPair(b *testing.B, m baselines.Method) {
	st := benchSetup(b, "DBpediaP", 100)
	train, _, _, err := learn.Split(st.anns, 0.6, 0, 5)
	if err != nil {
		b.Fatal(err)
	}
	td := &baselines.TrainingData{GD: st.d.GD, G: st.d.G, Train: train, Encoder: embed.NewEncoder(64)}
	if err := m.Train(td); err != nil {
		b.Fatal(err)
	}
	pairs := st.anns
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SPair(pairs[i%len(pairs)].Pair)
	}
}

func BenchmarkTableVI_SPair_MAGNN(b *testing.B) { benchBaselineSPair(b, &baselines.MAGNN{}) }
func BenchmarkTableVI_SPair_JedAI(b *testing.B) { benchBaselineSPair(b, &baselines.JedAI{}) }
func BenchmarkTableVI_SPair_MAG(b *testing.B)   { benchBaselineSPair(b, &baselines.MAG{}) }
func BenchmarkTableVI_SPair_DEEP(b *testing.B)  { benchBaselineSPair(b, &baselines.DEEP{}) }

// BenchmarkTableV_Evaluate measures full accuracy evaluation over the
// annotated pairs, the inner loop of every Table V cell.
func BenchmarkTableV_Evaluate(b *testing.B) {
	st := benchSetup(b, "DBpediaP", 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.sys.Evaluate(st.anns)
	}
}

// --- Fig 6(d-g) family: parallel APair -----------------------------------

func benchWorkers(b *testing.B, workers int) {
	st := benchSetup(b, "Synthetic", 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.sys.APairParallel(workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Workers_1(b *testing.B)  { benchWorkers(b, 1) }
func BenchmarkFig6Workers_4(b *testing.B)  { benchWorkers(b, 4) }
func BenchmarkFig6Workers_16(b *testing.B) { benchWorkers(b, 16) }

// --- Fig 6(h-i) family: APair vs graph size -------------------------------

func benchScale(b *testing.B, entities int) {
	cfg, _ := dataset.ByName("Synthetic", entities)
	d, err := dataset.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := New(d.DB, d.G, Options{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	var training []PathPair
	for i := 0; i < 20; i++ {
		training = append(training, d.PathPairs...)
	}
	if err := sys.TrainPathModel(training, 0); err != nil {
		b.Fatal(err)
	}
	if err := sys.TrainRanker(120, 10); err != nil {
		b.Fatal(err)
	}
	if err := sys.SetThresholds(Thresholds{Sigma: 0.8, Delta: 1.6, K: 15}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.ResetMatchState()
		sys.APair()
	}
}

func BenchmarkFig6Scale_100(b *testing.B) { benchScale(b, 100) }
func BenchmarkFig6Scale_200(b *testing.B) { benchScale(b, 200) }

// --- Fig 6(a-c, j-o) family: threshold sensitivity -----------------------

func benchWithK(b *testing.B, k int) {
	st := benchSetup(b, "DBpediaP", 100)
	if err := st.sys.SetThresholds(Thresholds{Sigma: 0.8, Delta: 1.6, K: k}); err != nil {
		b.Fatal(err)
	}
	pairs := st.anns
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)].Pair
		st.sys.SPairVertices(p.U, p.V)
	}
	b.StopTimer()
	_ = st.sys.SetThresholds(Thresholds{Sigma: 0.8, Delta: 1.6, K: 15})
}

func BenchmarkFig6Params_K5(b *testing.B)  { benchWithK(b, 5) }
func BenchmarkFig6Params_K20(b *testing.B) { benchWithK(b, 20) }

// --- Fig 6(p) family: refinement ------------------------------------------

// BenchmarkFig6Refinement measures one feedback round: select, vote,
// refine.
func BenchmarkFig6Refinement(b *testing.B) {
	st := benchSetup(b, "UKGOV", 80)
	users, err := learn.NewAnnotators(5, 0.1, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := learn.RefinementRound(st.sys.Predictor(), st.anns, 50, int64(i))
		st.sys.Refine(users.Inspect(batch))
	}
}

// --- Table VII family: embedding dimension --------------------------------

func benchEmbedDim(b *testing.B, dim int) {
	enc := embed.NewEncoder(dim)
	labels := []string{"Dame Basketball Shoes D7", "Dame Gen 7", "phylon foam", "brandCountry"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.MvScore(labels[i%len(labels)], labels[(i+1)%len(labels)])
	}
}

func BenchmarkTableVII_Dim100(b *testing.B) { benchEmbedDim(b, 100) }
func BenchmarkTableVII_Dim300(b *testing.B) { benchEmbedDim(b, 300) }

// --- Observability overhead ----------------------------------------------
//
// The acceptance bar for internal/obs: a System built WITHOUT a metrics
// registry (the default) must run warm-cache SPair at the same speed as
// before the instrumentation landed — every recording site degrades to
// a nil check. The Enabled variant quantifies the cost of turning the
// registry on.

func benchObsSPair(b *testing.B, st *benchState) {
	pairs := st.anns
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)].Pair
		st.sys.SPairVertices(p.U, p.V)
	}
}

func BenchmarkObsSPair_Disabled(b *testing.B) {
	benchObsSPair(b, benchSetup(b, "DBpediaP", 100))
}

func BenchmarkObsSPair_Enabled(b *testing.B) {
	benchObsSPair(b, benchSetupOpts(b, "DBpediaP+metrics", "DBpediaP", 100,
		Options{Seed: 7, Metrics: NewMetrics()}))
}

// --- Substrate micro-benchmarks -------------------------------------------

func BenchmarkParaMatchCold(b *testing.B) {
	st := benchSetup(b, "DBpediaP", 100)
	p := st.sys.CoreParams()
	pairs := st.anns
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.NewMatcher(st.sys.GD, st.sys.G, st.sys.rankerD, st.sys.rankerG, p)
		if err != nil {
			b.Fatal(err)
		}
		pr := pairs[i%len(pairs)].Pair
		m.Match(pr.U, pr.V)
	}
}

func BenchmarkRankerTopK(b *testing.B) {
	st := benchSetup(b, "DBpediaP", 100)
	r := ranking.NewRanker(st.d.G, nil, 4)
	ents := st.d.EntityVertices
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(ents) == 0 {
			r.Reset()
		}
		r.TopK(ents[i%len(ents)], 15)
	}
}

func BenchmarkRDB2RDF(b *testing.B) {
	cfg, _ := dataset.ByName("Synthetic", 200)
	d, err := dataset.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rdb2rdf.Map(d.DB); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmbedding(b *testing.B) {
	enc := embed.NewEncoder(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Vary the string so the cache does not absorb the work.
		enc.Embed(labelsPool[i%len(labelsPool)])
	}
}

var labelsPool = func() []string {
	out := make([]string, 512)
	for i := range out {
		out[i] = "label " + string(rune('a'+i%26)) + " value " + string(rune('0'+i%10))
	}
	return out
}()

func BenchmarkMetricInference(b *testing.B) {
	m := nn.MustMLP([]int{512, 64, 1}, nn.ReLU, 1)
	x := make([]float64, 512)
	for i := range x {
		x[i] = float64(i%7) * 0.1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Score(x)
	}
}

func BenchmarkLSTMStep(b *testing.B) {
	v := lstm.NewVocab([]string{"a", "b", "c", "d"})
	m := lstm.New(v, 16, 32, 1)
	s := m.Start()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = m.Step(s, "a")
		if i%8 == 7 {
			s = m.Start()
		}
	}
}

func BenchmarkPartition(b *testing.B) {
	st := benchSetup(b, "Synthetic", 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.PartitionEdgeCut(st.d.G, 8); err != nil {
			b.Fatal(err)
		}
	}
}
