// Procurement reproduces the paper's running example (Tables I and II,
// Figs. 1 and 3): an enterprise order database with items and brands,
// and company A's product knowledge graph. It answers the three
// scenarios of Example 1 — checking one ordered item against a catalog
// vertex (SPair), finding all catalog matches of one item (VPair), and
// cross-checking the whole order (APair) — and explains the confirmed
// match, including the schema match of made_in to the
// factorySite/isIn/isIn path.
package main

import (
	"fmt"
	"log"

	"her"
)

func main() {
	ex, err := her.BuildExample1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("order database: %d tuples; knowledge graph: %d vertices, %d edges\n",
		ex.DB.NumTuples(), ex.G.NumVertices(), ex.G.NumEdges())

	sys, err := her.New(ex.DB, ex.G, her.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// The annotated attribute-to-predicate correspondences of Section IV
	// (in production these come from user annotations; the paper's
	// Example 5 computes e.g. M_ρ(country, brandCountry) = 0.75).
	pairs := []her.PathPair{
		{A: []string{"item"}, B: []string{"names"}, Match: true},
		{A: []string{"material"}, B: []string{"soleMadeBy"}, Match: true},
		{A: []string{"color"}, B: []string{"hasColor"}, Match: true},
		{A: []string{"type"}, B: []string{"typeNo"}, Match: true},
		{A: []string{"brand"}, B: []string{"brandName"}, Match: true},
		{A: []string{"name"}, B: []string{"type"}, Match: true},
		{A: []string{"country"}, B: []string{"brandCountry"}, Match: true},
		{A: []string{"manufacturer"}, B: []string{"belongsTo"}, Match: true},
		{A: []string{"made_in"}, B: []string{"factorySite", "isIn", "isIn"}, Match: true},
		{A: []string{"item"}, B: []string{"IsA"}, Match: false},
		{A: []string{"color"}, B: []string{"typeNo"}, Match: false},
		{A: []string{"made_in"}, B: []string{"factorySite"}, Match: false},
		{A: []string{"brand"}, B: []string{"names"}, Match: false},
		{A: []string{"qty"}, B: []string{"IsA"}, Match: false},
	}
	var training []her.PathPair
	for i := 0; i < 30; i++ {
		training = append(training, pairs...)
	}
	if err := sys.TrainPathModel(training, 0); err != nil {
		log.Fatal(err)
	}
	if err := sys.TrainRanker(50, 120); err != nil {
		log.Fatal(err)
	}
	// Example 4's parameters, adapted to the learned score scale; δ is
	// high enough that matching t1 requires the recursive brand check.
	if err := sys.SetThresholds(her.Thresholds{Sigma: 0.7, Delta: 1.6, K: 5}); err != nil {
		log.Fatal(err)
	}

	// Locate the vertices of Fig. 1: v1 and v3 are the two items.
	var items []her.VertexID
	for i := 0; i < ex.G.NumVertices(); i++ {
		if ex.G.Label(her.VertexID(i)) == "item" {
			items = append(items, her.VertexID(i))
		}
	}
	v1, v3 := items[0], items[1]

	// Scenario 1 (SPair): is ordered item t1 the catalog item v1?
	match, err := sys.SPair("item", 0, v1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nScenario 1 — SPair(t1, v1) = %v (expected true)\n", match)
	decoy, _ := sys.SPair("item", 0, v3)
	fmt.Printf("             SPair(t1, v3) = %v (expected false: the mid-cut decoy)\n", decoy)

	// Scenario 2 (VPair): all catalog matches of t1.
	matches, err := sys.VPair("item", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nScenario 2 — VPair(t1): %d match(es)\n", len(matches))
	for _, m := range matches {
		fmt.Printf("             vertex %d\n", m.V)
	}

	// Scenario 3 (APair): cross-check the whole order.
	all, stats, err := sys.APairParallel(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nScenario 3 — APair over the order: %d matches (%d candidate pairs, %d supersteps)\n",
		len(all), stats.CandidatePairs, stats.Supersteps)
	for _, m := range all {
		ref, _ := sys.Mapping.TupleOf(m.U)
		fmt.Printf("             %s/%d <-> vertex %d\n", ref.Relation, ref.TupleID, m.V)
	}

	// Explainability (Example 7 / appendix D): why does (t1, v1) match?
	u1, _ := sys.Mapping.VertexOf("item", 0)
	explanation, err := sys.Explain(u1, v1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWhy (t1, v1) matches — lineage set S:\n")
	for _, p := range explanation.Lineage {
		fmt.Printf("  (%q, %q)\n", ex.GD.Label(p.U), ex.G.Label(p.V))
	}
	fmt.Println("schema matches Gamma (attribute -> path in G):")
	for _, sm := range explanation.SchemaMatches {
		fmt.Printf("  %-8s -> %s\n", sm.Attr, sm.Rho.LabelString())
	}

	// The brand pair was confirmed recursively (Example 7); its schema
	// matches include the paper's Example 8 result: made_in maps to the
	// 3-edge factorySite/isIn/isIn path.
	var v10 her.VertexID = -1
	for i := 0; i < ex.G.NumVertices(); i++ {
		if ex.G.Label(her.VertexID(i)) == "brand" {
			v10 = her.VertexID(i)
			break
		}
	}
	u2, _ := sys.Mapping.VertexOf("brand", 0)
	brandEx, err := sys.Explain(u2, v10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nWhy (b1, v10) matches — schema matches:")
	for _, sm := range brandEx.SchemaMatches {
		fmt.Printf("  %-12s -> %s\n", sm.Attr, sm.Rho.LabelString())
	}
}
