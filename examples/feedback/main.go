// Feedback demonstrates Exp-4: the user-interaction refinement loop.
// Five simulated annotators (10% individual error rate) inspect 50 pairs
// per round; majority voting filters their noise; the voted verdicts
// become verified matches and fine-tune the M_ρ metric network with a
// triplet loss. F-measure climbs toward 1.0 within five rounds, as in
// Fig. 6(p).
package main

import (
	"fmt"
	"log"

	"her"
)

func main() {
	d, err := her.GenerateDataset("UKGOV", 150)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := her.New(d.DB, d.G, her.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	var training []her.PathPair
	for i := 0; i < 20; i++ {
		training = append(training, d.PathPairs...)
	}
	if err := sys.TrainPathModel(training, 0); err != nil {
		log.Fatal(err)
	}
	if err := sys.TrainRanker(150, 10); err != nil {
		log.Fatal(err)
	}
	train, val, _, err := her.SplitAnnotations(d.Truth, 0.5, 0.15, 5)
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := sys.LearnThresholds(append(train, val...), her.SearchSpace{
		SigmaMin: 0.5, SigmaMax: 0.95, DeltaMin: 0.4, DeltaMax: 3.2, KMin: 8, KMax: 20,
	}, 30); err != nil {
		log.Fatal(err)
	}

	users, err := her.NewAnnotators(5, 0.1, 99)
	if err != nil {
		log.Fatal(err)
	}

	pool := d.Truth
	fmt.Printf("round 0: F = %.3f\n", sys.Evaluate(pool).F1())
	for round := 1; round <= 5; round++ {
		batch := her.SelectFeedbackRound(sys.Predictor(), pool, 50, int64(round))
		feedback := users.Inspect(batch)
		sys.Refine(feedback)
		f := sys.Evaluate(pool).F1()
		fmt.Printf("round %d: F = %.3f (%d pairs inspected, %d verified overrides)\n",
			round, f, len(batch), sys.Overrides())
		if f >= 1 {
			fmt.Println("reached perfect F-measure — the paper's '5 rounds suffice'")
			break
		}
	}
}
