// Graph views: define a rule-based virtual graph over the relational
// database and link against it instead of the full direct mapping G_D.
// The view here keeps only red products, shapes factories as bare
// plant-labeled vertices (matching how the knowledge graph models
// them), and turns the product→factory foreign key into a made_at
// edge. The same rules live in rules.view next to this file, ready for
// `herserve -views` / `hercli extract -views`.
package main

import (
	"fmt"
	"log"
	"strings"

	"her"
)

// rules mirrors rules.view — embedded so `go run ./examples/views`
// works from any directory.
const rules = `
view redline
vertex product where color = red
attrs  product name color
vertex factory label plant
edge   made_at from product via factory
`

func main() {
	// A product catalog with a factory dimension: products reference
	// factories through a foreign key.
	factory, err := her.NewSchema("factory", []string{"plant", "country"}, "plant")
	if err != nil {
		log.Fatal(err)
	}
	product, err := her.NewSchema("product", []string{"name", "color", "factory"}, "name",
		her.ForeignKey{Attr: "factory", RefRelation: "factory"})
	if err != nil {
		log.Fatal(err)
	}
	db := her.NewDatabase(factory, product)
	db.Relation("factory").MustInsert("Plant 12", "Portugal")
	db.Relation("factory").MustInsert("Plant 9", "Vietnam")
	db.Relation("product").MustInsert("Aurora Trail Runner", "red", "Plant 12")
	db.Relation("product").MustInsert("Comet Road Cruiser", "blue", "Plant 9")
	db.Relation("product").MustInsert("Dune Desert Boot", "red", "Plant 9")

	// The knowledge graph describes the red products with different
	// vocabulary; the blue one is absent, so a view that filters to red
	// products matches G wall to wall.
	g := her.NewGraph()
	addProduct := func(name, color, plant string) her.VertexID {
		p := g.AddVertex("product")
		g.MustAddEdge(p, g.AddVertex(name), "productName")
		g.MustAddEdge(p, g.AddVertex(color), "hasColor")
		f := g.AddVertex(plant)
		g.MustAddEdge(p, f, "assembledAt")
		return p
	}
	p1 := addProduct("Aurora Trail Runner", "red", "Plant 12")
	addProduct("Dune Desert Boot", "red", "Plant 9")

	sys, err := her.New(db, g, her.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Train the path metric on the view's vocabulary (the view projects
	// name/color and renames the FK edge to made_at).
	pairs := []her.PathPair{
		{A: []string{"name"}, B: []string{"productName"}, Match: true},
		{A: []string{"color"}, B: []string{"hasColor"}, Match: true},
		{A: []string{"made_at"}, B: []string{"assembledAt"}, Match: true},
		{A: []string{"name"}, B: []string{"hasColor"}, Match: false},
		{A: []string{"color"}, B: []string{"assembledAt"}, Match: false},
	}
	var training []her.PathPair
	for i := 0; i < 30; i++ {
		training = append(training, pairs...)
	}
	if err := sys.TrainPathModel(training, 0); err != nil {
		log.Fatal(err)
	}
	if err := sys.TrainRanker(50, 120); err != nil {
		log.Fatal(err)
	}
	if err := sys.SetThresholds(her.Thresholds{Sigma: 0.75, Delta: 1.0, K: 5}); err != nil {
		log.Fatal(err)
	}

	// Host the view. LoadViewFile accepts the same bytes herserve's
	// -views flag reads from disk; AddViewDef takes builder-made defs.
	if err := sys.LoadViewFile(strings.NewReader(rules)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("views hosted: %s\n", strings.Join(sys.ViewNames(), ", "))

	vh, err := sys.View("redline")
	if err != nil {
		log.Fatal(err)
	}
	info := vh.Info()
	fmt.Printf("view %s: %d rules, |V|=%d |E|=%d, %d tuples\n",
		info.Name, info.Rules, info.Vertices, info.Edges, info.Tuples)

	// VPair against the view: only red products are candidate sources.
	for _, tupleID := range []int{0, 1, 2} {
		matches, err := vh.VPair("product", tupleID)
		if err != nil {
			// The blue product has no vertex in this view.
			fmt.Printf("VPair(product/%d): %v\n", tupleID, err)
			continue
		}
		for _, m := range matches {
			fmt.Printf("VPair(product/%d) -> graph vertex %d (%s)\n",
				tupleID, m.V, g.Label(m.V))
		}
	}

	// SPair and Explain work the same way: the view handle resolves
	// tuples into ITS vertex space, not G_D's.
	match, err := vh.SPair("product", 0, p1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SPair(product/0, p1) via redline = %v\n", match)

	// Views are incrementally maintained: a new red product extends the
	// view in place (appends bump the view generation).
	gen := vh.Generation()
	if _, err := sys.AddTuple("product", "Ember Fell Runner", "red", "Plant 12"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after AddTuple: generation %d -> %d, |V|=%d\n",
		gen, vh.Generation(), vh.Info().Vertices)
}
