// Quickstart: link tuples of a small relational database to vertices of
// a knowledge graph with HER. It builds both inputs by hand, trains the
// path metric from a handful of annotated predicate correspondences,
// and runs the SPair and VPair modes.
package main

import (
	"fmt"
	"log"

	"her"
)

func main() {
	// A tiny product database: one relation with three attributes.
	schema, err := her.NewSchema("product", []string{"name", "color", "made_in"}, "name")
	if err != nil {
		log.Fatal(err)
	}
	db := her.NewDatabase(schema)
	products := db.Relation("product")
	products.MustInsert("Aurora Trail Runner 7", "red", "Portugal")
	products.MustInsert("Comet Road Cruiser 2", "blue", "Vietnam")

	// A knowledge graph describing the same catalog with different
	// vocabulary and structure: the country hangs off a factory vertex.
	g := her.NewGraph()
	p1 := g.AddVertex("product")
	name1 := g.AddVertex("Aurora Trail Runner")
	color1 := g.AddVertex("red")
	factory1 := g.AddVertex("Plant 12")
	country1 := g.AddVertex("Portugal")
	g.MustAddEdge(p1, name1, "productName")
	g.MustAddEdge(p1, color1, "hasColor")
	g.MustAddEdge(p1, factory1, "assembledAt")
	g.MustAddEdge(factory1, country1, "locatedIn")

	p2 := g.AddVertex("product")
	name2 := g.AddVertex("Comet Road Cruiser")
	color2 := g.AddVertex("blue")
	factory2 := g.AddVertex("Plant 9")
	country2 := g.AddVertex("Vietnam")
	g.MustAddEdge(p2, name2, "productName")
	g.MustAddEdge(p2, color2, "hasColor")
	g.MustAddEdge(p2, factory2, "assembledAt")
	g.MustAddEdge(factory2, country2, "locatedIn")

	// Assemble the system: RDB2RDF conversion happens inside New.
	sys, err := her.New(db, g, her.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Teach M_ρ which relational attributes correspond to which graph
	// predicates (and which do not) — the annotated path pairs of
	// Section IV.
	pairs := []her.PathPair{
		{A: []string{"name"}, B: []string{"productName"}, Match: true},
		{A: []string{"color"}, B: []string{"hasColor"}, Match: true},
		{A: []string{"made_in"}, B: []string{"assembledAt", "locatedIn"}, Match: true},
		{A: []string{"name"}, B: []string{"hasColor"}, Match: false},
		{A: []string{"color"}, B: []string{"assembledAt", "locatedIn"}, Match: false},
		{A: []string{"made_in"}, B: []string{"productName"}, Match: false},
	}
	var training []her.PathPair
	for i := 0; i < 30; i++ {
		training = append(training, pairs...)
	}
	if err := sys.TrainPathModel(training, 0); err != nil {
		log.Fatal(err)
	}
	if err := sys.TrainRanker(50, 120); err != nil {
		log.Fatal(err)
	}
	// Thresholds: σ for vertex closeness, δ for the aggregate
	// association score, k for the number of inspected properties.
	if err := sys.SetThresholds(her.Thresholds{Sigma: 0.75, Delta: 1.0, K: 5}); err != nil {
		log.Fatal(err)
	}

	// SPair: does tuple 0 ("Aurora Trail Runner 7") denote p1?
	match, err := sys.SPair("product", 0, p1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SPair(product/0, p1) = %v\n", match)
	wrong, _ := sys.SPair("product", 0, p2)
	fmt.Printf("SPair(product/0, p2) = %v\n", wrong)

	// VPair: all graph vertices matching tuple 1.
	matches, err := sys.VPair("product", 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("VPair(product/1) -> vertex %d (%s)\n", m.V, g.Label(m.V))
	}

	// Explain the confirmed match: the witness relation and the schema
	// matches Γ mapping attributes to graph paths.
	u, _ := sys.Mapping.VertexOf("product", 0)
	ex, err := sys.Explain(u, p1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("witness size = %d\n", len(ex.Witness))
	for _, sm := range ex.SchemaMatches {
		fmt.Printf("schema match: %s -> %s\n", sm.Attr, sm.Rho.LabelString())
	}
}
