// Bibliography runs HER over the DBLP-shaped dataset: a publication
// database (papers with venues) against a citation graph, the scenario
// where local-neighborhood methods get confused by cited papers'
// properties leaking into flattened records. It trains the full Learn
// pipeline, evaluates accuracy on held-out annotations, and demonstrates
// VPair lookups with explanations.
package main

import (
	"fmt"
	"log"

	"her"
)

func main() {
	d, err := her.GenerateDataset("DBLP", 200)
	if err != nil {
		log.Fatal(err)
	}
	vd, ed, v, e := d.Sizes()
	fmt.Printf("DBLP-shaped dataset: |V_D|=%d |E_D|=%d |V|=%d |E|=%d\n", vd, ed, v, e)

	sys, err := her.New(d.DB, d.G, her.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// Learn module (Fig. 2): train M_ρ on the annotated path pairs,
	// train the LSTM ranker M_r, and pick (σ, δ, k) by random search.
	var training []her.PathPair
	for i := 0; i < 20; i++ {
		training = append(training, d.PathPairs...)
	}
	if err := sys.TrainPathModel(training, 0); err != nil {
		log.Fatal(err)
	}
	if err := sys.TrainRanker(150, 10); err != nil {
		log.Fatal(err)
	}
	train, val, test, err := her.SplitAnnotations(d.Truth, 0.5, 0.15, 11)
	if err != nil {
		log.Fatal(err)
	}
	th, valF, err := sys.LearnThresholds(append(train, val...), her.SearchSpace{
		SigmaMin: 0.5, SigmaMax: 0.95, DeltaMin: 0.4, DeltaMax: 3.2, KMin: 8, KMax: 20,
	}, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned sigma=%.2f delta=%.2f k=%d (search F=%.3f)\n",
		th.Sigma, th.Delta, th.K, valF)

	ev := sys.Evaluate(test)
	fmt.Printf("held-out accuracy: %v\n", ev)

	// Look up the first few papers of the database in the graph.
	fmt.Println("\nVPair lookups:")
	for tupleID := 0; tupleID < 3; tupleID++ {
		matches, err := sys.VPair("paper", tupleID)
		if err != nil {
			log.Fatal(err)
		}
		title, _ := d.DB.Relation("paper").Get(d.DB.Relation("paper").Tuples[tupleID], "title")
		fmt.Printf("  %q -> %d match(es)\n", title, len(matches))
		for _, m := range matches {
			ex, err := sys.Explain(m.U, m.V)
			if err != nil {
				continue
			}
			fmt.Printf("    vertex %d, witness of %d pairs, schema matches:\n", m.V, len(ex.Witness))
			for _, sm := range ex.SchemaMatches {
				fmt.Printf("      %-14s -> %s\n", sm.Attr, sm.Rho.LabelString())
			}
		}
	}
}
