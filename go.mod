module her

go 1.22
