package her

import (
	"math"
	"testing"

	"her/internal/embed"
)

func TestScorersMvOverride(t *testing.T) {
	sc := newScorers(embed.NewEncoder(64))
	base := sc.Mv("alpha", "omega")
	if base > 0.5 {
		t.Fatalf("unrelated labels score %f", base)
	}
	sc.setMvVerdict("alpha", "omega", 1)
	if sc.Mv("alpha", "omega") != 1 || sc.Mv("omega", "alpha") != 1 {
		t.Error("verdict not applied symmetrically")
	}
	sc.setMvVerdict("same", "same2", 0)
	if sc.Mv("same", "same2") != 0 {
		t.Error("dissimilar verdict not applied")
	}
}

func TestScorersMrhoFallbackAndMemo(t *testing.T) {
	sc := newScorers(embed.NewEncoder(64))
	// Untrained: non-negative cosine fallback.
	s1 := sc.Mrho([]string{"made_in"}, []string{"made_in"})
	if math.Abs(s1-1) > 1e-9 {
		t.Errorf("identical sequences = %f", s1)
	}
	s2 := sc.Mrho([]string{"made_in"}, []string{"qty"})
	if s2 < 0 || s2 > 0.6 {
		t.Errorf("unrelated sequences = %f", s2)
	}
	// Memoized: same value on repeat.
	if sc.Mrho([]string{"made_in"}, []string{"qty"}) != s2 {
		t.Error("memo broken")
	}
	// Separator safety: these must be distinct keys.
	a := sc.Mrho([]string{"a", "b"}, []string{"c"})
	b := sc.Mrho([]string{"a"}, []string{"b", "c"})
	_ = a
	_ = b
	sc.invalidateRho()
	if got := sc.Mrho([]string{"made_in"}, []string{"qty"}); math.Abs(got-s2) > 1e-12 {
		t.Errorf("recompute after invalidate differs: %f vs %f", got, s2)
	}
}

func TestScorersConcurrent(t *testing.T) {
	sc := newScorers(embed.NewEncoder(32))
	done := make(chan bool)
	for w := 0; w < 4; w++ {
		go func(id int) {
			for i := 0; i < 200; i++ {
				sc.Mv("label a", "label b")
				sc.Mrho([]string{"x"}, []string{"y"})
				if i%50 == 0 {
					sc.setMvVerdict("k", "v", 1)
				}
			}
			done <- true
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}

func TestAsyncAPairFacade(t *testing.T) {
	sys, _ := incrementalFixture(t)
	seq := sys.APair()
	par, stats, err := sys.APairParallelAsync(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("async %v vs sequential %v (stats %+v)", par, seq, stats)
	}
	for i := range par {
		if par[i] != seq[i] {
			t.Errorf("mismatch at %d", i)
		}
	}
}
