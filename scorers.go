package her

import (
	"strings"
	"sync"

	"her/internal/embed"
	"her/internal/nn"
)

// scorers builds the M_v and M_ρ score functions of Section IV from the
// embedding encoder, the (optionally trained) metric network, and the
// feedback-derived label-pair table. Both functions are safe for
// concurrent use and memoized.
type scorers struct {
	enc    *embed.Encoder
	metric *nn.MLP // nil until TrainPathModel runs; falls back to lexical

	mu      sync.RWMutex
	mvTable map[[2]string]float64 // feedback-derived vertex-pair verdicts
	rhoMemo map[string]float64
	rhoLock sync.RWMutex
}

func newScorers(enc *embed.Encoder) *scorers {
	return &scorers{
		enc:     enc,
		mvTable: make(map[[2]string]float64),
		rhoMemo: make(map[string]float64),
	}
}

// Mv is the vertex model M_v: (|cos| + cos)/2 over label embeddings,
// overridden by fine-tuned verdicts from user feedback.
func (s *scorers) Mv(a, b string) float64 {
	s.mu.RLock()
	if v, ok := s.mvTable[[2]string{a, b}]; ok {
		s.mu.RUnlock()
		return v
	}
	s.mu.RUnlock()
	return s.enc.MvScore(a, b)
}

// setMvVerdict records a fine-tuned label-pair similarity (1 for
// FN-derived "similar", 0 for FP-derived "dissimilar"), symmetrically.
func (s *scorers) setMvVerdict(a, b string, score float64) {
	s.mu.Lock()
	s.mvTable[[2]string{a, b}] = score
	s.mvTable[[2]string{b, a}] = score
	s.mu.Unlock()
	s.invalidateRho()
}

// pathFeatures builds the metric network's input for a pair of edge-label
// sequences: [x1, x2, |x1-x2|, x1⊙x2], the standard sentence-pair
// encoding over the sequence embeddings.
func (s *scorers) pathFeatures(a, b []string) []float64 {
	x1 := s.enc.EmbedSequence(a)
	x2 := s.enc.EmbedSequence(b)
	return embed.Concat(x1, x2, embed.AbsDiff(x1, x2), embed.Hadamard(x1, x2))
}

// Mrho is the path model M_ρ: the trained metric network over sequence
// embeddings, or — before training — the non-negative cosine of the
// sequence embeddings. Scores are memoized per label-sequence pair.
func (s *scorers) Mrho(a, b []string) float64 {
	key := strings.Join(a, "\x1f") + "\x1e" + strings.Join(b, "\x1f")
	s.rhoLock.RLock()
	if v, ok := s.rhoMemo[key]; ok {
		s.rhoLock.RUnlock()
		return v
	}
	s.rhoLock.RUnlock()

	var v float64
	if s.metric != nil {
		v = s.metric.Score(s.pathFeatures(a, b))
	} else {
		c := embed.Cosine(s.enc.EmbedSequence(a), s.enc.EmbedSequence(b))
		if c > 0 {
			v = c
		}
	}
	s.rhoLock.Lock()
	s.rhoMemo[key] = v
	s.rhoLock.Unlock()
	return v
}

// invalidateRho clears the memo after the metric network changes.
func (s *scorers) invalidateRho() {
	s.rhoLock.Lock()
	s.rhoMemo = make(map[string]float64)
	s.rhoLock.Unlock()
}

// MvScore exposes the raw M_v score for diagnostics and examples.
func (s *System) MvScore(a, b string) float64 { return s.sc.Mv(a, b) }
