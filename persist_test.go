package her

import (
	"bytes"
	"strings"
	"testing"
)

// TestSaveLoadModels: a freshly built system loaded with saved models
// makes exactly the same decisions as the trained original.
func TestSaveLoadModels(t *testing.T) {
	sys, pairs := incrementalFixture(t)
	u, _ := sys.Mapping.VertexOf("product", 0)
	want := sys.VPairVertex(u)
	if len(want) != 1 {
		t.Fatalf("setup: %v", want)
	}
	// Record an override and an Mv verdict so refinement state round
	// trips too.
	sys.Refine([]Feedback{{Pair: Pair{U: u, V: want[0].V}, IsMatch: true}})
	wantScore := sys.MrhoScore(pairs[0].A, pairs[0].B)

	var buf bytes.Buffer
	if err := sys.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh, untrained system over the same inputs.
	fresh, err := New(sys.DB, sys.G, Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if got := fresh.VPairVertex(u); len(got) == len(want) {
		// Untrained systems usually behave differently; not a failure
		// if they coincide, but the loaded one must match exactly below.
		t.Log("untrained system coincidentally agrees")
	}
	if err := fresh.LoadModels(&buf); err != nil {
		t.Fatal(err)
	}
	got := fresh.VPairVertex(u)
	if len(got) != len(want) || got[0] != want[0] {
		t.Fatalf("loaded system differs: %v vs %v", got, want)
	}
	if fresh.Overrides() != sys.Overrides() {
		t.Errorf("overrides %d vs %d", fresh.Overrides(), sys.Overrides())
	}
	if s := fresh.MrhoScore(pairs[0].A, pairs[0].B); s != wantScore {
		t.Errorf("metric score %f vs %f", s, wantScore)
	}
	th := fresh.Thresholds()
	if th != sys.Thresholds() {
		t.Errorf("thresholds %+v vs %+v", th, sys.Thresholds())
	}
}

// TestSaveModelsByteDeterministic pins the reproducibility contract on
// the model file: saving identical learned state repeatedly must
// produce byte-identical output (gob-encoded maps would not — their
// entries serialize in randomized iteration order, which is why
// modelFile stores sorted slices).
func TestSaveModelsByteDeterministic(t *testing.T) {
	sys, _ := incrementalFixture(t)
	u, _ := sys.Mapping.VertexOf("product", 0)
	want := sys.VPairVertex(u)
	if len(want) == 0 {
		t.Fatal("setup: no matches")
	}
	// Populate both refinement maps with several entries so an
	// order-dependent encoding would actually vary. Feedback targets
	// must be real graph vertices, so grow the target graph first.
	fb := []Feedback{{Pair: Pair{U: u, V: want[0].V}, IsMatch: true}}
	for i := 0; i < 6; i++ {
		v := sys.AddGraphVertex("product")
		fb = append(fb, Feedback{Pair: Pair{U: u, V: v}, IsMatch: i%2 == 0})
	}
	sys.Refine(fb)

	var first bytes.Buffer
	if err := sys.SaveModels(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var again bytes.Buffer
		if err := sys.SaveModels(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("save %d differs from first save: model files must be byte-deterministic", i+2)
		}
	}

	// And the deterministic encoding still round-trips.
	fresh, err := New(sys.DB, sys.G, Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadModels(bytes.NewReader(first.Bytes())); err != nil {
		t.Fatal(err)
	}
	if fresh.Overrides() != sys.Overrides() {
		t.Errorf("overrides %d vs %d after round trip", fresh.Overrides(), sys.Overrides())
	}
}

func TestLoadModelsErrors(t *testing.T) {
	sys, _ := incrementalFixture(t)
	if err := sys.LoadModels(strings.NewReader("garbage")); err == nil {
		t.Error("garbage input should fail")
	}
	// Dimension mismatch: save from a 128-dim system, load into 32-dim...
	var buf bytes.Buffer
	if err := sys.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}
	other, err := New(sys.DB, sys.G, Options{Seed: 1, EmbeddingDim: 32})
	if err != nil {
		t.Fatal(err)
	}
	// The saved options carry EmbeddingDim 128, so the metric fits after
	// options are restored; loading must succeed and adopt 128.
	if err := other.LoadModels(&buf); err != nil {
		t.Fatal(err)
	}
	if other.Options().EmbeddingDim != sys.Options().EmbeddingDim {
		t.Errorf("options not restored: %+v", other.Options())
	}
	// Inference must actually work after the encoder rebuild.
	u, _ := other.Mapping.VertexOf("product", 0)
	other.VPairVertex(u)
}

// TestPersistWithMetricsRegistry: the gob envelope must not serialize
// the runtime metrics registry (a struct with no exported fields), a
// save from an instrumented system must succeed, and a load must keep
// the receiving System's registry wired to the rebuilt matcher.
func TestPersistWithMetricsRegistry(t *testing.T) {
	sys, _ := incrementalFixture(t)
	var buf bytes.Buffer
	if err := sys.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}

	reg := NewMetrics()
	other, err := New(sys.DB, sys.G, Options{Seed: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.LoadModels(&buf); err != nil {
		t.Fatal(err)
	}
	if other.Metrics() != reg {
		t.Fatal("LoadModels dropped the live metrics registry")
	}
	other.APair()
	if reg.Counter("her_core_paramatch_calls_total").Value() == 0 {
		t.Error("matcher not wired to the registry after LoadModels")
	}

	// And the instrumented system itself must be able to save.
	var buf2 bytes.Buffer
	if err := other.SaveModels(&buf2); err != nil {
		t.Fatalf("saving from an instrumented system: %v", err)
	}
}
