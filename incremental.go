package her

import (
	"fmt"

	"her/internal/graph"
	"her/internal/rdb2rdf"
	"her/internal/shard"
)

// This file implements the paper's Section VI-B remark 2: IncPSim
// extended to incrementally link entities in response to updates to D
// and G. New tuples only ADD a fresh region to G_D (their canonical
// vertices have no incoming edges from old vertices), so no cached
// decision is affected and queries about the new tuple evaluate lazily.
// New graph edges can change the top-k selections — and hence the match
// status — of every vertex within MaxPathLen reverse hops of the edge's
// source, so exactly those vertices' ranker entries and cached
// decisions (plus their dependants) are dropped and recomputed on the
// next query.

// AddTuple appends a tuple to the database and extends the canonical
// graph incrementally, returning the new tuple's id. Existing match
// decisions stay valid; matches of the new tuple are computed on demand.
func (s *System) AddTuple(rel string, values ...string) (int, error) {
	if s.Mapping == nil {
		return 0, fmt.Errorf("her: no tuple mapping (built with NewFromGraphs)")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.DB.Relation(rel)
	if r == nil {
		return 0, fmt.Errorf("her: unknown relation %s", rel)
	}
	id, err := r.Insert(values...)
	if err != nil {
		return 0, err
	}
	base := s.GD.NumVertices()
	if err := rdb2rdf.AddTuple(s.GD, s.Mapping, s.DB, rel, id); err != nil {
		return 0, err
	}
	// The new tuple extends G_D and the source set: unscoped APair
	// results are stale now, while VPair and explicit-source results
	// survive (the fresh region has no incoming edges from old
	// vertices). The delta carries the exact new region — vertices in id
	// order, edges grouped by source in insertion order (only the new
	// vertices gained out-edges) — so an engine mirror replaying it is
	// byte-identical to this G_D.
	d := shard.Delta{Kind: shard.DeltaTuple, GDBase: base}
	for v := base; v < s.GD.NumVertices(); v++ {
		d.GDLabels = append(d.GDLabels, s.GD.Label(graph.VID(v)))
		for _, e := range s.GD.Out(graph.VID(v)) {
			d.GDEdges = append(d.GDEdges, shard.GDEdge{From: graph.VID(v), To: e.To, Label: e.Label})
		}
	}
	s.recordDelta(d)
	// Hosted views see the same insertion through their own extraction
	// rules: append-only extension when sound, recompile + reset when the
	// new tuple resolves a reference that dangled at extraction time.
	if err := s.extendViewsLocked(rel, id); err != nil {
		return 0, err
	}
	return id, nil
}

// AddGraphVertex appends a vertex to G. It becomes matchable once it is
// connected: a fresh vertex is a leaf, which the blocking index skips
// and whose presence changes no existing neighborhood doc, so the index
// is deliberately NOT rebuilt here — the first AddGraphEdge touching
// the vertex rebuilds it (and every doc it appears in) anyway.
func (s *System) AddGraphVertex(label string) VertexID {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.G.AddVertex(label)
	s.recordDelta(shard.Delta{Kind: shard.DeltaGraphVertex, V: v, Label: label})
	// G is shared by every view, so each view's engine mirror needs the
	// same delta in its own log.
	for _, name := range s.sortedViewNamesLocked() {
		s.views[name].record(shard.Delta{Kind: shard.DeltaGraphVertex, V: v, Label: label})
	}
	return v
}

// AddGraphEdge adds an edge to G and performs incremental maintenance:
// every vertex that can reach the edge's source within MaxPathLen hops
// may select different top-k properties now, so its ranker entry and its
// cached match decisions (with dependants) are dropped.
func (s *System) AddGraphEdge(from, to VertexID, label string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.G.AddEdge(from, to, label); err != nil {
		return err
	}
	affected := s.reverseRegion(from, s.opts.MaxPathLen)
	for v := range affected {
		s.rankerG.Invalidate(v)
	}
	s.matcher.ForgetVertices(func(v graph.VID) bool { return affected[v] })
	// The affected set is G-side, so it applies verbatim to every view's
	// cached decisions; buildCandidateGenLocked refreshes the shared
	// index and every view's generator with it.
	for _, name := range s.sortedViewNamesLocked() {
		s.views[name].matcher.ForgetVertices(func(v graph.VID) bool { return affected[v] })
	}
	s.buildCandidateGenLocked()
	s.recordDelta(shard.Delta{Kind: shard.DeltaGraphEdge, From: from, To: to, Label: label})
	for _, name := range s.sortedViewNamesLocked() {
		s.views[name].record(shard.Delta{Kind: shard.DeltaGraphEdge, From: from, To: to, Label: label})
	}
	return nil
}

// reverseRegion collects v and every vertex that reaches v within the
// given number of hops (following edges backwards).
func (s *System) reverseRegion(v VertexID, hops int) map[graph.VID]bool {
	affected := map[graph.VID]bool{v: true}
	frontier := []graph.VID{v}
	for d := 0; d < hops; d++ {
		var next []graph.VID
		for _, x := range frontier {
			for _, in := range s.G.In(x) {
				if !affected[in] {
					affected[in] = true
					next = append(next, in)
				}
			}
		}
		frontier = next
	}
	return affected
}
