package her

import (
	"strings"
	"testing"

	"her/internal/dataset"
)

// TestSystemMetricsIntegration exercises the Options-level hook: one
// registry collects core phase metrics from the sequential matcher and
// BSP metrics from a parallel run, and the results are unchanged
// relative to an uninstrumented system.
func TestSystemMetricsIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two full systems; skipped in -short")
	}
	cfg, ok := dataset.ByName("Synthetic", 40)
	if !ok {
		t.Fatal("unknown dataset")
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	build := func(opts Options) *System {
		sys, err := New(d.DB, d.G, opts)
		if err != nil {
			t.Fatal(err)
		}
		var training []PathPair
		for i := 0; i < 10; i++ {
			training = append(training, d.PathPairs...)
		}
		if err := sys.TrainPathModel(training, 0); err != nil {
			t.Fatal(err)
		}
		if err := sys.TrainRanker(60, 10); err != nil {
			t.Fatal(err)
		}
		if err := sys.SetThresholds(Thresholds{Sigma: 0.8, Delta: 1.6, K: 10}); err != nil {
			t.Fatal(err)
		}
		return sys
	}

	reg := NewMetrics()
	inst := build(Options{Seed: 7, Metrics: reg})
	plain := build(Options{Seed: 7})

	if inst.Metrics() != reg {
		t.Fatal("Metrics() accessor lost the registry")
	}
	if plain.Metrics() != nil {
		t.Fatal("uninstrumented system reports a registry")
	}

	a := inst.APair()
	if b := plain.APair(); len(a) != len(b) {
		t.Errorf("instrumentation changed APair: %d vs %d", len(a), len(b))
	}
	if reg.Counter("her_core_paramatch_calls_total").Value() == 0 {
		t.Error("sequential matcher recorded no core metrics")
	}
	if reg.Histogram("her_core_candgen_seconds", nil).Count() == 0 {
		t.Error("no candidate-generation observations")
	}

	if _, ok := inst.LastParallelStats(); ok {
		t.Error("LastParallelStats set before any parallel run")
	}
	_, st, err := inst.APairParallel(2)
	if err != nil {
		t.Fatal(err)
	}
	last, ok := inst.LastParallelStats()
	if !ok {
		t.Fatal("LastParallelStats missing after parallel run")
	}
	if last.Workers != st.Workers || last.Supersteps != st.Supersteps {
		t.Errorf("LastParallelStats %+v != run stats %+v", last, st)
	}
	if last.WallTime <= 0 || len(last.SuperstepDurations) != last.Supersteps {
		t.Errorf("wall accounting: %v / %v", last.WallTime, last.SuperstepDurations)
	}
	if reg.Histogram("her_bsp_superstep_seconds", nil).Count() == 0 {
		t.Error("parallel run recorded no superstep durations")
	}

	// SetThresholds resets the matcher; the new one must stay wired to
	// the registry.
	before := reg.Counter("her_core_paramatch_calls_total").Value()
	if err := inst.SetThresholds(Thresholds{Sigma: 0.8, Delta: 1.6, K: 8}); err != nil {
		t.Fatal(err)
	}
	inst.APair()
	if reg.Counter("her_core_paramatch_calls_total").Value() == before {
		t.Error("matcher reset dropped the metrics wiring")
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"her_core_paramatch_seconds", "her_bsp_superstep_seconds", "her_bsp_candidate_pairs_total"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestSpanTracingPublicSurface smoke-tests the re-exported span API.
func TestSpanTracingPublicSurface(t *testing.T) {
	root := StartSpan("request")
	root.Child("phase").End()
	root.End()
	n := root.Export()
	if n.Name != "request" || len(n.Children) != 1 {
		t.Errorf("span tree = %+v", n)
	}
}
