package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	g := r.Gauge("y")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge accumulated")
	}
	h := r.Histogram("z", nil)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram accumulated")
	}
	var s *Span
	s.Child("c").End()
	s.End()
	if n := s.Export(); n.Name != "" {
		t.Error("nil span exported content")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil registry wrote %q, %v", b.String(), err)
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("her_test_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("her_test_total") != c {
		t.Error("counter not memoized")
	}
	g := r.Gauge("her_test_gauge")
	g.Set(2.5)
	g.Add(-0.5)
	if g.Value() != 2.0 {
		t.Errorf("gauge = %f, want 2", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("her_test_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	bounds, cum, total := h.snapshot()
	if len(bounds) != 3 {
		t.Fatalf("bounds = %v", bounds)
	}
	// Cumulative: ≤0.1 → 1, ≤1 → 3, ≤10 → 4, +Inf total → 5.
	if cum[0] != 1 || cum[1] != 3 || cum[2] != 4 || total != 5 {
		t.Errorf("cumulative = %v total %d", cum, total)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.5+0.5+5+50; got != want {
		t.Errorf("sum = %f, want %f", got, want)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(`her_http_requests_total{endpoint="/vpair",status="200"}`).Add(3)
	r.Counter(`her_http_requests_total{endpoint="/vpair",status="400"}`).Inc()
	r.Gauge("her_build_info").Set(1)
	h := r.Histogram(`her_http_request_seconds{endpoint="/vpair"}`, []float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE her_http_requests_total counter\n",
		`her_http_requests_total{endpoint="/vpair",status="200"} 3` + "\n",
		`her_http_requests_total{endpoint="/vpair",status="400"} 1` + "\n",
		"# TYPE her_build_info gauge\n",
		"her_build_info 1\n",
		"# TYPE her_http_request_seconds histogram\n",
		`her_http_request_seconds_bucket{endpoint="/vpair",le="0.5"} 1` + "\n",
		`her_http_request_seconds_bucket{endpoint="/vpair",le="1"} 1` + "\n",
		`her_http_request_seconds_bucket{endpoint="/vpair",le="+Inf"} 2` + "\n",
		`her_http_request_seconds_sum{endpoint="/vpair"} 2.2` + "\n",
		`her_http_request_seconds_count{endpoint="/vpair"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// One TYPE header per family, not per series.
	if n := strings.Count(out, "# TYPE her_http_requests_total"); n != 1 {
		t.Errorf("family header count = %d", n)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("her_conc_total").Inc()
				r.Gauge("her_conc_gauge").Add(1)
				r.Histogram("her_conc_seconds", nil).Observe(float64(j) / 1000)
				if j%50 == 0 {
					var b strings.Builder
					_ = r.WritePrometheus(&b)
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("her_conc_total").Value(); got != 4000 {
		t.Errorf("counter = %d, want 4000", got)
	}
	if got := r.Histogram("her_conc_seconds", nil).Count(); got != 4000 {
		t.Errorf("histogram count = %d, want 4000", got)
	}
}

func TestSpanTree(t *testing.T) {
	root := StartSpan("apair")
	c1 := root.Child("candgen")
	time.Sleep(time.Millisecond)
	c1.End()
	c2 := root.Child("simulate")
	gc := c2.Child("superstep-0")
	gc.End()
	c2.End()
	root.End()

	n := root.Export()
	if n.Name != "apair" || len(n.Children) != 2 {
		t.Fatalf("tree = %+v", n)
	}
	if n.Children[0].Name != "candgen" || n.Children[0].Millis <= 0 {
		t.Errorf("child 0 = %+v", n.Children[0])
	}
	if len(n.Children[1].Children) != 1 || n.Children[1].Children[0].Name != "superstep-0" {
		t.Errorf("grandchild = %+v", n.Children[1])
	}
	if n.Millis < n.Children[0].Millis {
		t.Errorf("root %.3fms shorter than child %.3fms", n.Millis, n.Children[0].Millis)
	}
	if !strings.Contains(n.Render(), "  candgen ") {
		t.Errorf("render = %q", n.Render())
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	root := StartSpan("parallel")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			root.Child("worker").End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Export().Children); got != 16 {
		t.Errorf("children = %d, want 16", got)
	}
}
