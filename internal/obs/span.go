package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed region of work. Spans form a tree: StartSpan opens
// a root, Child opens a nested span, End closes one. A nil *Span is a
// valid disabled span — Child returns nil, SetAttr/SetError/End are
// no-ops — so tracing call sites need no conditionals.
//
// A Span's children may be appended from the goroutine that owns the
// span; concurrent children are supported through the internal lock.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time // guarded by mu
	attrs    []attr    // guarded by mu
	errMsg   string    // guarded by mu
	children []*Span   // guarded by mu
}

// attr is one key=value annotation on a span (e.g. shard=3, cache=hit).
type attr struct {
	key, val string
}

// StartSpan opens a root span.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child opens a sub-span under s. Returns nil on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// ChildInterval attaches an already-measured region as a closed child
// span: the caller supplies the start and end timestamps it observed
// elsewhere (a shard worker's enqueue→dequeue→done clock reads travel
// back to the router, which reconstructs the spans). Returns nil on a
// nil span.
func (s *Span) ChildInterval(name string, start, end time.Time) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: start, end: end}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr annotates the span with a key=value pair (last write wins at
// export). No-op on a nil span.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attr{key: key, val: val})
	s.mu.Unlock()
}

// SetError marks the span as failed and records the error text (also
// surfaced as the "error" attribute of the exported node). A nil error
// or a nil span is a no-op.
func (s *Span) SetError(err error) {
	if s == nil {
		return
	}
	if err == nil {
		return
	}
	s.mu.Lock()
	s.errMsg = err.Error()
	s.mu.Unlock()
}

// Errored reports whether SetError was called (false on nil).
func (s *Span) Errored() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errMsg != ""
}

// End closes the span. Closing twice keeps the first end time. No-op on
// a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// DurationMillis reports the span's wall time in milliseconds — up to
// now when the span is still open. Returns 0 on nil.
func (s *Span) DurationMillis() float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		end = time.Now()
	}
	return float64(end.Sub(s.start)) / float64(time.Millisecond)
}

// spanCtxKey is the context key spans propagate under.
type spanCtxKey struct{}

// WithSpan returns a context carrying sp, the request-scoped tracing
// channel of the serving stack: the HTTP middleware installs the root
// span, and every layer below (shard router, matcher) attaches children
// via SpanFrom. A nil span returns ctx unchanged, so the disabled path
// allocates nothing.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFrom returns the span carried by ctx, or nil when ctx is nil or
// carries none. The nil result composes with the nil-safe Span methods:
// call sites chain SpanFrom(ctx).Child(...) unconditionally.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// SpanNode is the exported form of a span tree, JSON-serializable.
type SpanNode struct {
	Name       string            `json:"name"`
	StartNanos int64             `json:"startNanos"`
	Millis     float64           `json:"millis"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Error      string            `json:"error,omitempty"`
	Children   []SpanNode        `json:"children,omitempty"`
}

// Export snapshots the span tree with wall-times. A still-open span
// reports its duration up to now. Returns a zero node on nil.
func (s *Span) Export() SpanNode {
	if s == nil {
		return SpanNode{}
	}
	s.mu.Lock()
	end := s.end
	errMsg := s.errMsg
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	var attrs map[string]string
	if len(s.attrs) > 0 {
		attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			attrs[a.key] = a.val
		}
	}
	s.mu.Unlock()
	if end.IsZero() {
		end = time.Now()
	}
	n := SpanNode{
		Name:       s.name,
		StartNanos: s.start.UnixNano(),
		Millis:     float64(end.Sub(s.start)) / float64(time.Millisecond),
		Attrs:      attrs,
		Error:      errMsg,
	}
	for _, c := range kids {
		n.Children = append(n.Children, c.Export())
	}
	return n
}

// Render writes the tree as an indented outline, for logs and CLIs.
func (n SpanNode) Render() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n SpanNode) render(b *strings.Builder, depth int) {
	fmt.Fprintf(b, "%s%s %.3fms", strings.Repeat("  ", depth), n.Name, n.Millis)
	if len(n.Attrs) > 0 {
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(b, " %s=%s", k, n.Attrs[k])
		}
	}
	if n.Error != "" {
		fmt.Fprintf(b, " error=%q", n.Error)
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		c.render(b, depth+1)
	}
}
