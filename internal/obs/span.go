package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span is one timed region of work. Spans form a tree: StartSpan opens
// a root, Child opens a nested span, End closes one. A nil *Span is a
// valid disabled span — Child returns nil and End is a no-op — so
// tracing call sites need no conditionals.
//
// A Span's children may be appended from the goroutine that owns the
// span; concurrent children are supported through the internal lock.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	children []*Span
}

// StartSpan opens a root span.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child opens a sub-span under s. Returns nil on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span. Closing twice keeps the first end time. No-op on
// a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SpanNode is the exported form of a span tree, JSON-serializable.
type SpanNode struct {
	Name       string     `json:"name"`
	StartNanos int64      `json:"startNanos"`
	Millis     float64    `json:"millis"`
	Children   []SpanNode `json:"children,omitempty"`
}

// Export snapshots the span tree with wall-times. A still-open span
// reports its duration up to now. Returns a zero node on nil.
func (s *Span) Export() SpanNode {
	if s == nil {
		return SpanNode{}
	}
	s.mu.Lock()
	end := s.end
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()
	if end.IsZero() {
		end = time.Now()
	}
	n := SpanNode{
		Name:       s.name,
		StartNanos: s.start.UnixNano(),
		Millis:     float64(end.Sub(s.start)) / float64(time.Millisecond),
	}
	for _, c := range kids {
		n.Children = append(n.Children, c.Export())
	}
	return n
}

// Render writes the tree as an indented outline, for logs and CLIs.
func (n SpanNode) Render() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n SpanNode) render(b *strings.Builder, depth int) {
	fmt.Fprintf(b, "%s%s %.3fms\n", strings.Repeat("  ", depth), n.Name, n.Millis)
	for _, c := range n.Children {
		c.render(b, depth+1)
	}
}
