// Package obs is the repository's observability substrate: a
// concurrent-safe registry of named counters, gauges and fixed-bucket
// latency histograms with Prometheus text exposition, plus lightweight
// span tracing (span.go). Everything is standard-library Go.
//
// The package is built around nil-safety: every method on a nil
// *Registry, *Counter, *Gauge or *Histogram is a no-op, so
// instrumentation sites hold possibly-nil handles and call them
// unconditionally. A System constructed without a registry pays one
// pointer comparison per event — effectively zero cost.
//
// Metric names follow the Prometheus convention and may carry inline
// labels, e.g.
//
//	r.Counter(`her_http_requests_total{endpoint="/vpair",status="200"}`)
//
// The exposition writer groups series of the same family (the name up
// to the first '{') under one # TYPE header.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named metrics. The zero value is not usable; create
// one with NewRegistry. A nil *Registry is a valid "disabled" registry:
// every lookup returns a nil handle whose methods are no-ops.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter   // guarded by mu
	gauges     map[string]*Gauge     // guarded by mu
	histograms map[string]*Histogram // guarded by mu
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// GobEncode and GobDecode make a *Registry gob-transparent. A registry
// is runtime state, not model state: structs that embed one (e.g.
// her.Options inside a persisted model file) must still be encodable,
// so it serializes to nothing and decodes to an empty registry.
func (r *Registry) GobEncode() ([]byte, error) {
	if r == nil {
		return nil, nil
	}
	return nil, nil
}

// GobDecode restores nothing; see GobEncode.
func (r *Registry) GobDecode([]byte) error {
	if r == nil {
		return nil
	}
	return nil
}

// Counter returns the counter registered under name, creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (nil buckets means
// DefBuckets). The bounds must be sorted ascending; an implicit +Inf
// bucket is always appended. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram(buckets)
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.Add(1)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down, stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge with a CAS loop. No-op on a nil gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets are the default latency buckets in seconds, spanning
// microsecond-scale cache hits to multi-second APair runs.
var DefBuckets = []float64{
	0.00001, 0.00005, 0.0001, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// TimeBuckets are the fine-grained latency buckets in seconds for the
// sharded serving path, whose cache hits and queue waits live between
// 1µs and 1ms — the sharded /vpair p99 is ~0.08ms, which DefBuckets
// resolves into only two buckets. The preset keeps sub-millisecond
// resolution (roughly 1-2.5-5 per decade from 1µs) and still reaches
// 10s so stragglers and cold paths land in real buckets too.
var TimeBuckets = []float64{
	0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket cumulative histogram. Observations are
// lock-free: one atomic add on the matching bucket plus CAS on the sum.
type Histogram struct {
	bounds []float64 // sorted upper bounds, excluding +Inf
	counts []atomic.Int64
	inf    atomic.Int64
	sum    Gauge
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)),
	}
}

// Observe records v. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are short and the branch predictor
	// settles on the hot bucket; binary search costs more in practice.
	placed := false
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveSince records the seconds elapsed since t0. No-op on nil.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// snapshot returns cumulative bucket counts aligned with bounds plus
// the +Inf total. Cumulative counts are what Prometheus exposes.
func (h *Histogram) snapshot() (bounds []float64, cumulative []int64, total int64) {
	cumulative = make([]int64, len(h.bounds))
	var run int64
	for i := range h.bounds {
		run += h.counts[i].Load()
		cumulative[i] = run
	}
	return h.bounds, cumulative, run + h.inf.Load()
}
