package obs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanAttrsAndError(t *testing.T) {
	sp := StartSpan("req")
	sp.SetAttr("shard", "3")
	sp.SetAttr("cache", "miss")
	sp.SetAttr("cache", "hit") // last write wins
	sp.SetError(errors.New("boom"))
	sp.End()

	n := sp.Export()
	if n.Attrs["shard"] != "3" || n.Attrs["cache"] != "hit" {
		t.Errorf("attrs = %v", n.Attrs)
	}
	if n.Error != "boom" || !sp.Errored() {
		t.Errorf("error not exported: %+v", n)
	}
	if !strings.Contains(n.Render(), "cache=hit") {
		t.Errorf("Render misses attrs: %s", n.Render())
	}
}

func TestSpanNilSafety(t *testing.T) {
	var sp *Span
	sp.SetAttr("k", "v")
	sp.SetError(errors.New("x"))
	sp.ChildInterval("c", time.Now(), time.Now()).End()
	if sp.Errored() || sp.DurationMillis() != 0 {
		t.Fatal("nil span must be inert")
	}
	if got := SpanFrom(WithSpan(context.Background(), nil)); got != nil {
		t.Fatalf("WithSpan(nil) must not install a span, got %v", got)
	}
}

func TestSpanContextPropagation(t *testing.T) {
	if SpanFrom(context.Background()) != nil {
		t.Fatal("empty context must carry no span")
	}
	sp := StartSpan("root")
	ctx := WithSpan(context.Background(), sp)
	if SpanFrom(ctx) != sp {
		t.Fatal("span lost in context round-trip")
	}
	// A child attached through the context shows up under the root.
	SpanFrom(ctx).Child("inner").End()
	sp.End()
	n := sp.Export()
	if len(n.Children) != 1 || n.Children[0].Name != "inner" {
		t.Fatalf("children = %+v", n.Children)
	}
}

func TestChildIntervalReconstruction(t *testing.T) {
	root := StartSpan("req")
	enq := time.Now()
	dq := enq.Add(3 * time.Millisecond)
	done := dq.Add(5 * time.Millisecond)
	sh := root.ChildInterval("shard", enq, done)
	sh.ChildInterval("queue_wait", enq, dq)
	sh.ChildInterval("compute", dq, done)
	root.End()

	n := root.Export()
	if len(n.Children) != 1 || len(n.Children[0].Children) != 2 {
		t.Fatalf("tree shape wrong: %+v", n)
	}
	qw := n.Children[0].Children[0]
	if qw.Millis < 2.9 || qw.Millis > 3.1 {
		t.Errorf("queue_wait millis = %v, want ~3", qw.Millis)
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var fr *FlightRecorder
	fr.Record("id", "op", StartSpan("x"), "")
	if fr.Len() != 0 || len(fr.Traces()) != 0 {
		t.Fatal("nil recorder must be inert")
	}
	if _, ok := fr.ByID("id"); ok {
		t.Fatal("nil recorder returned a trace")
	}
}

// recordWithMillis fabricates a closed span of the given duration.
func recordWithMillis(fr *FlightRecorder, id, op string, millis float64, errMsg string) {
	start := time.Now().Add(-time.Duration(millis * float64(time.Millisecond)))
	sp := &Span{name: op, start: start}
	sp.end = start.Add(time.Duration(millis * float64(time.Millisecond)))
	fr.Record(id, op, sp, errMsg)
}

func TestFlightRecorderKeepsSlowest(t *testing.T) {
	fr := NewFlightRecorder(3, 8)
	for i := 0; i < 10; i++ {
		recordWithMillis(fr, fmt.Sprintf("r%d", i), "/vpair", float64(i), "")
	}
	got := fr.Traces()
	if len(got) != 3 {
		t.Fatalf("retained %d traces, want 3", len(got))
	}
	for _, tr := range got {
		if tr.Millis < 7 {
			t.Errorf("retained fast trace %s (%.1fms); slowest-3 should be 7,8,9", tr.ID, tr.Millis)
		}
	}
	if _, ok := fr.ByID("r9"); !ok {
		t.Error("slowest trace evicted")
	}
	if _, ok := fr.ByID("r0"); ok {
		t.Error("fastest trace retained beyond capacity")
	}
}

func TestFlightRecorderErroredRing(t *testing.T) {
	fr := NewFlightRecorder(2, 3)
	for i := 0; i < 5; i++ {
		recordWithMillis(fr, fmt.Sprintf("e%d", i), "/vpair", 0.01, "HTTP 500")
	}
	// Ring of 3: the most recent three errors survive.
	for _, id := range []string{"e2", "e3", "e4"} {
		if _, ok := fr.ByID(id); !ok {
			t.Errorf("recent errored trace %s lost", id)
		}
	}
	for _, id := range []string{"e0", "e1"} {
		if _, ok := fr.ByID(id); ok {
			t.Errorf("old errored trace %s should have been overwritten", id)
		}
	}
	// Errored traces never compete with the slow set.
	if n := fr.Len(); n != 3 {
		t.Errorf("Len = %d, want 3", n)
	}
}

func TestFlightRecorderPerOpIsolation(t *testing.T) {
	fr := NewFlightRecorder(1, 1)
	recordWithMillis(fr, "a", "/vpair", 5, "")
	recordWithMillis(fr, "b", "/apair", 1, "")
	if fr.Len() != 2 {
		t.Fatalf("ops must not share retention slots: Len = %d", fr.Len())
	}
}

// TestFlightRecorderConcurrent hammers one recorder from many writers
// under -race: memory stays bounded by the per-op capacities, and with
// fewer errored traces than the ring capacity none may be lost.
func TestFlightRecorderConcurrent(t *testing.T) {
	const (
		writers   = 8
		perWriter = 200
		slowCap   = 4
		errCap    = writers // one errored trace per writer, under capacity
	)
	fr := NewFlightRecorder(slowCap, errCap)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				recordWithMillis(fr, id, "/vpair", float64(i%50), "")
			}
			recordWithMillis(fr, fmt.Sprintf("err-w%d", w), "/vpair", 1, "HTTP 503")
		}(w)
	}
	wg.Wait()

	if n := fr.Len(); n > slowCap+errCap {
		t.Fatalf("recorder exceeded bound: %d traces > %d", n, slowCap+errCap)
	}
	for w := 0; w < writers; w++ {
		if _, ok := fr.ByID(fmt.Sprintf("err-w%d", w)); !ok {
			t.Errorf("errored trace err-w%d lost despite ring capacity %d", w, errCap)
		}
	}
	got := fr.Traces()
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.StartNanos > b.StartNanos || (a.StartNanos == b.StartNanos && a.ID > b.ID) {
			t.Fatalf("Traces not in (start, id) order: %v before %v", a.ID, b.ID)
		}
	}
}
