package obs

import (
	"sort"
	"sync"
)

// Trace is one recorded request: the identifiers the serving stack
// stamped on it plus the exported span tree. It is the JSON shape
// GET /debug/requests serves.
type Trace struct {
	ID         string   `json:"id"`
	Op         string   `json:"op"`
	Error      string   `json:"error,omitempty"`
	StartNanos int64    `json:"startNanos"`
	Millis     float64  `json:"millis"`
	Root       SpanNode `json:"root"`
}

// FlightRecorder is the always-on bounded trace store behind
// GET /debug/requests: per op it retains the slowPerOp slowest
// successful traces plus a ring of the errsPerOp most recent errored
// traces. Memory is bounded by construction — (slowPerOp + errsPerOp) ×
// ops traces — so it can stay enabled under production traffic; a full
// error ring overwrites its oldest entry rather than dropping the new
// trace (the most recent failures are the ones worth debugging).
//
// A nil *FlightRecorder is a valid disabled recorder: Record is a no-op
// and the accessors return empty results, mirroring the package's
// nil-metrics idiom, so the serving stack holds a possibly-nil handle
// and calls it unconditionally.
type FlightRecorder struct {
	mu        sync.Mutex
	slowPerOp int
	errsPerOp int
	ops       map[string]*opTraces // guarded by mu
}

// opTraces is one op's retention state.
type opTraces struct {
	slow []Trace // sorted by Millis descending, len <= slowPerOp
	errs []Trace // ring of the most recent errored traces
	next int     // ring cursor into errs
}

// maxRecorderOps caps the per-op map so an endpoint-cardinality bug
// cannot grow the recorder without bound; traces for ops beyond the cap
// are dropped.
const maxRecorderOps = 64

// NewFlightRecorder creates a recorder retaining per op the slowPerOp
// slowest successful traces (default 16 when <= 0) and the errsPerOp
// most recent errored traces (default 64 when <= 0).
func NewFlightRecorder(slowPerOp, errsPerOp int) *FlightRecorder {
	if slowPerOp <= 0 {
		slowPerOp = 16
	}
	if errsPerOp <= 0 {
		errsPerOp = 64
	}
	return &FlightRecorder{
		slowPerOp: slowPerOp,
		errsPerOp: errsPerOp,
		ops:       make(map[string]*opTraces),
	}
}

// Record stores the finished request trace: id and op are the request's
// identifiers, root is its span tree (exported under the recorder lock,
// so children appended later by abandoned goroutines are simply not
// part of the snapshot), and errMsg marks the trace as errored when
// non-empty. No-op on a nil recorder or a nil root.
func (fr *FlightRecorder) Record(id, op string, root *Span, errMsg string) {
	if fr == nil {
		return
	}
	if root == nil {
		return
	}
	node := root.Export()
	t := Trace{
		ID:         id,
		Op:         op,
		Error:      errMsg,
		StartNanos: node.StartNanos,
		Millis:     node.Millis,
		Root:       node,
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	ot := fr.ops[op]
	if ot == nil {
		if len(fr.ops) >= maxRecorderOps {
			return
		}
		ot = &opTraces{}
		fr.ops[op] = ot
	}
	if t.Error != "" {
		if len(ot.errs) < fr.errsPerOp {
			ot.errs = append(ot.errs, t)
		} else {
			ot.errs[ot.next] = t
			ot.next = (ot.next + 1) % fr.errsPerOp
		}
		return
	}
	if len(ot.slow) < fr.slowPerOp {
		ot.slow = append(ot.slow, t)
	} else if t.Millis <= ot.slow[len(ot.slow)-1].Millis {
		return // faster than everything retained
	} else {
		ot.slow[len(ot.slow)-1] = t
	}
	// Keep the slice sorted slowest-first so the eviction candidate is
	// always the tail; the slice is small (slowPerOp), so the insertion
	// re-sort is cheap.
	sort.SliceStable(ot.slow, func(a, b int) bool {
		return ot.slow[a].Millis > ot.slow[b].Millis
	})
}

// Traces snapshots every retained trace, ordered by start time (ties by
// id) so concurrent snapshots are stable. Empty on a nil recorder.
func (fr *FlightRecorder) Traces() []Trace {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	var out []Trace
	for _, ot := range fr.ops {
		out = append(out, ot.slow...)
		out = append(out, ot.errs...)
	}
	fr.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if out[a].StartNanos != out[b].StartNanos {
			return out[a].StartNanos < out[b].StartNanos
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// ByID returns the retained trace with the given request id. ok is
// false when the id was never recorded or has been evicted (or the
// recorder is nil).
func (fr *FlightRecorder) ByID(id string) (Trace, bool) {
	if fr == nil {
		return Trace{}, false
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	for _, ot := range fr.ops {
		for i := range ot.slow {
			if ot.slow[i].ID == id {
				return ot.slow[i], true
			}
		}
		for i := range ot.errs {
			if ot.errs[i].ID == id {
				return ot.errs[i], true
			}
		}
	}
	return Trace{}, false
}

// Len reports the number of retained traces (0 on nil).
func (fr *FlightRecorder) Len() int {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	n := 0
	for _, ot := range fr.ops {
		n += len(ot.slow) + len(ot.errs)
	}
	return n
}
