package obs

import (
	"fmt"
	"strings"
	"testing"
)

// TestExpositionLabelEscaping checks that label values escaped at the
// call site (the %q convention every instrumentation site uses) survive
// the text exposition byte-for-byte: quotes, backslashes and newlines
// inside a label value must come out in Prometheus escape form.
func TestExpositionLabelEscaping(t *testing.T) {
	r := NewRegistry()
	hairy := `pa"th\with` + "\nnewline"
	r.Counter(fmt.Sprintf(`her_esc_total{endpoint=%q}`, hairy)).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// %q renders \ as \\, " as \", and the newline as \n — exactly the
	// Prometheus label-value escapes.
	want := `her_esc_total{endpoint="pa\"th\\with\nnewline"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("escaped label value mangled:\n got %q\nwant line %q", out, want)
	}
	// Exactly two physical lines (# TYPE + the sample): a raw newline
	// inside the label value would split the sample line in two.
	if n := strings.Count(strings.TrimSpace(out), "\n"); n != 1 {
		t.Errorf("raw newline leaked into exposition (%d line breaks): %q", n, out)
	}
}

// TestExpositionStableSortOrder checks that series of one family are
// emitted in sorted order under a single # TYPE header regardless of
// registration order, and that families themselves sort by name.
func TestExpositionStableSortOrder(t *testing.T) {
	r := NewRegistry()
	// Register in deliberately shuffled order.
	r.Counter(`her_sort_total{op="vpair",code="503"}`).Inc()
	r.Counter(`her_aaa_total`).Inc()
	r.Counter(`her_sort_total{op="apair",code="200"}`).Inc()
	r.Counter(`her_sort_total{op="vpair",code="200"}`).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	want := []string{
		"# TYPE her_aaa_total counter",
		"her_aaa_total 1",
		"# TYPE her_sort_total counter",
		`her_sort_total{op="apair",code="200"} 1`,
		`her_sort_total{op="vpair",code="200"} 1`,
		`her_sort_total{op="vpair",code="503"} 1`,
	}
	if len(lines) != len(want) {
		t.Fatalf("exposition lines:\n%s", b.String())
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}

	// A second write must be byte-identical (map-order independence).
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Error("exposition output not deterministic across writes")
	}
}

// TestExpositionLabeledHistogramSeries checks the per-series histogram
// lines of a labeled family: the le label appends to the existing label
// set and _sum/_count keep the series labels.
func TestExpositionLabeledHistogramSeries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`her_lat_seconds{op="vpair",code="200"}`, []float64{0.001, 1})
	h.Observe(0.0005)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`her_lat_seconds_bucket{op="vpair",code="200",le="0.001"} 1`,
		`her_lat_seconds_bucket{op="vpair",code="200",le="1"} 1`,
		`her_lat_seconds_bucket{op="vpair",code="200",le="+Inf"} 2`,
		`her_lat_seconds_sum{op="vpair",code="200"} 2.0005`,
		`her_lat_seconds_count{op="vpair",code="200"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestTimeBucketsResolveSubMillisecond pins the reason TimeBuckets
// exists: a 0.08ms observation must land in a real bucket with
// sub-millisecond neighbors on both sides, not in a catch-all.
func TestTimeBucketsResolveSubMillisecond(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("her_fast_seconds", TimeBuckets)
	h.Observe(0.00008) // 0.08ms, the sharded /vpair p99
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `her_fast_seconds_bucket{le="5e-05"} 0`) {
		t.Errorf("no empty bucket below 0.08ms:\n%s", out)
	}
	if !strings.Contains(out, `her_fast_seconds_bucket{le="0.0001"} 1`) {
		t.Errorf("0.08ms not resolved by the 100µs bucket:\n%s", out)
	}
	for i := 1; i < len(TimeBuckets); i++ {
		if TimeBuckets[i] <= TimeBuckets[i-1] {
			t.Fatalf("TimeBuckets not ascending at %d", i)
		}
	}
}
