package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// family returns the metric family of a possibly-labeled series name:
// the part before the first '{'.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labels returns the label block of a series name without the braces,
// or "" when unlabeled.
func labels(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return strings.TrimSuffix(name[i+1:], "}")
	}
	return ""
}

// withLabel appends one label to a series name's label set, e.g.
// withLabel(`h{path="/x"}`, "le", "0.5") → `h{path="/x",le="0.5"}`.
func withLabel(name, key, val string) string {
	fam, lb := family(name), labels(name)
	if lb == "" {
		return fmt.Sprintf("%s{%s=%q}", fam, key, val)
	}
	return fmt.Sprintf("%s{%s,%s=%q}", fam, lb, key, val)
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4), grouped by family with # TYPE
// headers and sorted for deterministic output. Safe for concurrent use
// with ongoing observations. No-op on a nil registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.RUnlock()

	var b strings.Builder
	writeFamilies(&b, "counter", sortedKeys(counters), func(name string) {
		fmt.Fprintf(&b, "%s %d\n", name, counters[name].Value())
	})
	writeFamilies(&b, "gauge", sortedKeys(gauges), func(name string) {
		fmt.Fprintf(&b, "%s %s\n", name, formatFloat(gauges[name].Value()))
	})
	writeFamilies(&b, "histogram", sortedKeys(histograms), func(name string) {
		h := histograms[name]
		bounds, cum, total := h.snapshot()
		bucket := family(name) + "_bucket" + braced(labels(name))
		for i, ub := range bounds {
			fmt.Fprintf(&b, "%s %d\n", withLabel(bucket, "le", formatFloat(ub)), cum[i])
		}
		fmt.Fprintf(&b, "%s %d\n", withLabel(bucket, "le", "+Inf"), total)
		fmt.Fprintf(&b, "%s %s\n", family(name)+"_sum"+braced(labels(name)), formatFloat(h.Sum()))
		fmt.Fprintf(&b, "%s %d\n", family(name)+"_count"+braced(labels(name)), h.Count())
	})
	_, err := io.WriteString(w, b.String())
	return err
}

func braced(lb string) string {
	if lb == "" {
		return ""
	}
	return "{" + lb + "}"
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// writeFamilies emits series grouped by family, with one # TYPE header
// per family.
func writeFamilies(b *strings.Builder, typ string, names []string, emit func(name string)) {
	lastFam := ""
	for _, name := range names {
		if f := family(name); f != lastFam {
			fmt.Fprintf(b, "# TYPE %s %s\n", f, typ)
			lastFam = f
		}
		emit(name)
	}
}
