package bsp

import (
	"math/rand"
	"strings"
	"testing"

	"her/internal/core"
	"her/internal/graph"
	"her/internal/index"
	"her/internal/ranking"
)

func exactMv(a, b string) float64 {
	if a == b {
		return 1
	}
	return 0
}

func exactMrho(a, b []string) float64 {
	if strings.Join(a, " ") == strings.Join(b, " ") {
		return 1
	}
	return 0
}

func randomGraph(rng *rand.Rand, nv, ne int, labels, edgeLabels []string) *graph.Graph {
	g := graph.New()
	for i := 0; i < nv; i++ {
		g.AddVertex(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < ne; i++ {
		g.MustAddEdge(graph.VID(rng.Intn(nv)), graph.VID(rng.Intn(nv)),
			edgeLabels[rng.Intn(len(edgeLabels))])
	}
	return g
}

func sequentialAPair(t *testing.T, gd, g *graph.Graph, p core.Params, gen core.CandidateGen, maxLen int) []core.Pair {
	t.Helper()
	m, err := core.NewMatcher(gd, g, ranking.NewRanker(gd, nil, maxLen), ranking.NewRanker(g, nil, maxLen), p)
	if err != nil {
		t.Fatal(err)
	}
	return m.APair(nil, gen)
}

func pairsEqual(a, b []core.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelEqualsSequential is Theorem 3: PAllMatch computes the same
// Π as the sequential AllParaMatch for every worker count.
func TestParallelEqualsSequential(t *testing.T) {
	labels := []string{"P", "Q", "R", "S"}
	edgeLabels := []string{"x", "y", "z"}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		nv := 4 + rng.Intn(8)
		ne := rng.Intn(2 * nv)
		gd := randomGraph(rng, nv, ne, labels, edgeLabels)
		g := randomGraph(rng, nv, ne, labels, edgeLabels)
		delta := []float64{0.3, 0.5, 1.0}[rng.Intn(3)]
		p := core.Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: delta, K: 3}
		want := sequentialAPair(t, gd, g, p, nil, 3)
		for _, n := range []int{1, 2, 3, 4} {
			eng, err := NewEngine(gd, g, ranking.NewRanker(gd, nil, 3), ranking.NewRanker(g, nil, 3), p)
			if err != nil {
				t.Fatal(err)
			}
			got, st, err := eng.Run(nil, nil, Config{Workers: n})
			if err != nil {
				t.Fatal(err)
			}
			if !pairsEqual(got, want) {
				t.Fatalf("trial %d n=%d δ=%.1f: parallel %v != sequential %v (stats %+v)",
					trial, n, delta, got, want, st)
			}
		}
	}
}

func TestRunWithIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	labels := []string{"alpha one", "beta two", "gamma three"}
	gd := randomGraph(rng, 8, 12, labels, []string{"x", "y"})
	g := randomGraph(rng, 8, 12, labels, []string{"x", "y"})
	p := core.Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: 0.4, K: 3}
	gen := core.IndexGen(gd, index.Build(g, nil))
	want := sequentialAPair(t, gd, g, p, gen, 3)
	eng, err := NewEngine(gd, g, ranking.NewRanker(gd, nil, 3), ranking.NewRanker(g, nil, 3), p)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := eng.Run(nil, gen, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(got, want) {
		t.Errorf("indexed parallel %v != sequential %v", got, want)
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gd := randomGraph(rng, 10, 20, []string{"A", "B"}, []string{"x"})
	g := randomGraph(rng, 10, 20, []string{"A", "B"}, []string{"x"})
	p := core.Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: 0.5, K: 3}
	eng, _ := NewEngine(gd, g, ranking.NewRanker(gd, nil, 3), ranking.NewRanker(g, nil, 3), p)
	_, st, err := eng.Run(nil, nil, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 4 {
		t.Errorf("Workers = %d", st.Workers)
	}
	if st.Supersteps < 1 {
		t.Errorf("Supersteps = %d", st.Supersteps)
	}
	total := 0
	for _, c := range st.PerWorkerPairs {
		total += c
	}
	if total != st.CandidatePairs {
		t.Errorf("per-worker pairs %d != total %d", total, st.CandidatePairs)
	}
	if st.Calls == 0 && st.CandidatePairs > 0 {
		t.Error("no ParaMatch calls recorded")
	}
}

func TestConfigValidation(t *testing.T) {
	g := graph.New()
	g.AddVertex("a")
	p := core.Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: 0.5, K: 3}
	eng, err := NewEngine(g, g, ranking.NewRanker(g, nil, 3), ranking.NewRanker(g, nil, 3), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Run(nil, nil, Config{Workers: 0}); err == nil {
		t.Error("Workers=0 should fail")
	}
	if _, err := NewEngine(nil, nil, nil, nil, p); err == nil {
		t.Error("nil graphs should fail")
	}
	if _, err := NewEngine(g, g, ranking.NewRanker(g, nil, 3), ranking.NewRanker(g, nil, 3), core.Params{}); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestMoreWorkersThanVertices(t *testing.T) {
	gd := graph.New()
	u := gd.AddVertex("A")
	g := graph.New()
	g.AddVertex("A")
	p := core.Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: 0.5, K: 2}
	eng, _ := NewEngine(gd, g, ranking.NewRanker(gd, nil, 3), ranking.NewRanker(g, nil, 3), p)
	got, _, err := eng.Run([]graph.VID{u}, nil, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("matches = %v", got)
	}
}

// TestCrossFragmentRecursion forces a match whose lineage spans fragments:
// a G-side chain long enough to be split by any 2-way partition.
func TestCrossFragmentRecursion(t *testing.T) {
	const n = 12
	gd := graph.New()
	g := graph.New()
	for i := 0; i < n; i++ {
		gd.AddVertex("N")
		g.AddVertex("N")
	}
	for i := 0; i+1 < n; i++ {
		gd.MustAddEdge(graph.VID(i), graph.VID(i+1), "e")
		g.MustAddEdge(graph.VID(i), graph.VID(i+1), "e")
	}
	p := core.Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: 0.2, K: 2}
	want := sequentialAPair(t, gd, g, p, nil, 2)
	for _, workers := range []int{2, 3, 5} {
		eng, _ := NewEngine(gd, g, ranking.NewRanker(gd, nil, 2), ranking.NewRanker(g, nil, 2), p)
		got, st, err := eng.Run(nil, nil, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !pairsEqual(got, want) {
			t.Errorf("workers=%d: %v != %v", workers, got, want)
		}
		if workers > 1 && st.Requests == 0 {
			t.Errorf("workers=%d: expected cross-fragment requests, stats %+v", workers, st)
		}
	}
}
