package bsp

import (
	"math/rand"
	"strings"
	"testing"

	"her/internal/core"
	"her/internal/obs"
	"her/internal/ranking"
)

// TestRunRecordsObservability checks that the synchronous engine fills
// the new Stats fields and mirrors them into a registry.
func TestRunRecordsObservability(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gd := randomGraph(rng, 12, 24, []string{"A", "B"}, []string{"x"})
	g := randomGraph(rng, 12, 24, []string{"A", "B"}, []string{"x"})
	p := core.Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: 0.5, K: 3}
	eng, err := NewEngine(gd, g, ranking.NewRanker(gd, nil, 3), ranking.NewRanker(g, nil, 3), p)
	if err != nil {
		t.Fatal(err)
	}
	r := obs.NewRegistry()
	eng.Metrics = r
	_, st, err := eng.Run(nil, nil, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.SuperstepDurations) != st.Supersteps {
		t.Errorf("%d durations for %d supersteps", len(st.SuperstepDurations), st.Supersteps)
	}
	if st.WallTime <= 0 {
		t.Errorf("WallTime = %v", st.WallTime)
	}
	if len(st.PerWorkerCalls) != st.Workers {
		t.Fatalf("PerWorkerCalls = %v", st.PerWorkerCalls)
	}
	sum := 0
	for _, c := range st.PerWorkerCalls {
		sum += c
	}
	if sum != st.Calls {
		t.Errorf("per-worker calls %d != total %d", sum, st.Calls)
	}
	if got := r.Histogram("her_bsp_superstep_seconds", nil).Count(); got != int64(st.Supersteps) {
		t.Errorf("superstep observations = %d, want %d", got, st.Supersteps)
	}
	if got := r.Histogram(`her_bsp_run_seconds{mode="bsp"}`, nil).Count(); got != 1 {
		t.Errorf("run observations = %d", got)
	}
	if got := r.Counter("her_bsp_candidate_pairs_total").Value(); got != int64(st.CandidatePairs) {
		t.Errorf("candidate pairs metric = %d, want %d", got, st.CandidatePairs)
	}
	if got := r.Counter(`her_bsp_messages_total{kind="request"}`).Value(); got != int64(st.Requests) {
		t.Errorf("request messages metric = %d, want %d", got, st.Requests)
	}
	// Worker matchers share the registry: core phase counters populate.
	if st.Calls > 0 && r.Counter("her_core_paramatch_calls_total").Value() == 0 {
		t.Error("worker matchers did not record core metrics")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# TYPE her_bsp_superstep_seconds histogram") {
		t.Errorf("exposition missing superstep histogram:\n%s", b.String())
	}
}

// TestRunAsyncRecordsObservability does the same for the asynchronous
// engine (single logical round).
func TestRunAsyncRecordsObservability(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	gd := randomGraph(rng, 12, 24, []string{"A", "B"}, []string{"x"})
	g := randomGraph(rng, 12, 24, []string{"A", "B"}, []string{"x"})
	p := core.Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: 0.5, K: 3}
	eng, err := NewEngine(gd, g, ranking.NewRanker(gd, nil, 3), ranking.NewRanker(g, nil, 3), p)
	if err != nil {
		t.Fatal(err)
	}
	r := obs.NewRegistry()
	eng.Metrics = r
	_, st, err := eng.RunAsync(nil, nil, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.WallTime <= 0 || len(st.SuperstepDurations) != 1 {
		t.Errorf("async wall accounting: %v / %v", st.WallTime, st.SuperstepDurations)
	}
	if len(st.PerWorkerCalls) != st.Workers {
		t.Errorf("PerWorkerCalls = %v", st.PerWorkerCalls)
	}
	if got := r.Histogram(`her_bsp_run_seconds{mode="async"}`, nil).Count(); got != 1 {
		t.Errorf("async run observations = %d", got)
	}
}

// TestRunWithoutMetricsUnchanged guards the disabled path: a nil
// registry must not alter results or panic anywhere.
func TestRunWithoutMetricsUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	gd := randomGraph(rng, 10, 20, []string{"A", "B"}, []string{"x"})
	g := randomGraph(rng, 10, 20, []string{"A", "B"}, []string{"x"})
	p := core.Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: 0.5, K: 3}
	eng, err := NewEngine(gd, g, ranking.NewRanker(gd, nil, 3), ranking.NewRanker(g, nil, 3), p)
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := eng.Run(nil, nil, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng.Metrics = obs.NewRegistry()
	instrumented, _, err := eng.Run(nil, nil, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(plain, instrumented) {
		t.Errorf("metrics changed results: %v vs %v", plain, instrumented)
	}
}
