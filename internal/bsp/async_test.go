package bsp

import (
	"math/rand"
	"testing"

	"her/internal/core"
	"her/internal/graph"
	"her/internal/ranking"
)

// TestAsyncEqualsSequential: the asynchronous PAllMatch (remark 1 of
// Section VI-B) computes the same Π as sequential AllParaMatch, for
// every worker count and across random graphs.
func TestAsyncEqualsSequential(t *testing.T) {
	labels := []string{"P", "Q", "R", "S"}
	edgeLabels := []string{"x", "y", "z"}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		nv := 4 + rng.Intn(8)
		ne := rng.Intn(2 * nv)
		gd := randomGraph(rng, nv, ne, labels, edgeLabels)
		g := randomGraph(rng, nv, ne, labels, edgeLabels)
		delta := []float64{0.3, 0.5, 1.0}[rng.Intn(3)]
		p := core.Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: delta, K: 3}
		want := sequentialAPair(t, gd, g, p, nil, 3)
		for _, n := range []int{1, 2, 4} {
			eng, err := NewEngine(gd, g, ranking.NewRanker(gd, nil, 3), ranking.NewRanker(g, nil, 3), p)
			if err != nil {
				t.Fatal(err)
			}
			got, st, err := eng.RunAsync(nil, nil, Config{Workers: n})
			if err != nil {
				t.Fatal(err)
			}
			if !pairsEqual(got, want) {
				t.Fatalf("trial %d n=%d δ=%.1f: async %v != sequential %v (stats %+v)",
					trial, n, delta, got, want, st)
			}
		}
	}
}

func TestAsyncCrossFragmentChain(t *testing.T) {
	const n = 12
	gd := graph.New()
	g := graph.New()
	for i := 0; i < n; i++ {
		gd.AddVertex("N")
		g.AddVertex("N")
	}
	for i := 0; i+1 < n; i++ {
		gd.MustAddEdge(graph.VID(i), graph.VID(i+1), "e")
		g.MustAddEdge(graph.VID(i), graph.VID(i+1), "e")
	}
	p := core.Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: 0.2, K: 2}
	want := sequentialAPair(t, gd, g, p, nil, 2)
	for _, workers := range []int{2, 3, 5} {
		eng, _ := NewEngine(gd, g, ranking.NewRanker(gd, nil, 2), ranking.NewRanker(g, nil, 2), p)
		got, st, err := eng.RunAsync(nil, nil, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !pairsEqual(got, want) {
			t.Errorf("workers=%d: %v != %v", workers, got, want)
		}
		if workers > 1 && st.Requests == 0 {
			t.Errorf("workers=%d: expected cross-fragment requests, stats %+v", workers, st)
		}
	}
}

func TestAsyncValidation(t *testing.T) {
	g := graph.New()
	g.AddVertex("a")
	p := core.Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: 0.5, K: 3}
	eng, _ := NewEngine(g, g, ranking.NewRanker(g, nil, 3), ranking.NewRanker(g, nil, 3), p)
	if _, _, err := eng.RunAsync(nil, nil, Config{Workers: 0}); err == nil {
		t.Error("Workers=0 should fail")
	}
}

func TestAsyncStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	gd := randomGraph(rng, 10, 20, []string{"A", "B"}, []string{"x"})
	g := randomGraph(rng, 10, 20, []string{"A", "B"}, []string{"x"})
	p := core.Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: 0.5, K: 3}
	eng, _ := NewEngine(gd, g, ranking.NewRanker(gd, nil, 3), ranking.NewRanker(g, nil, 3), p)
	_, st, err := eng.RunAsync(nil, nil, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 4 || st.Calls == 0 {
		t.Errorf("stats: %+v", st)
	}
	total := 0
	for _, c := range st.PerWorkerPairs {
		total += c
	}
	if total != st.CandidatePairs {
		t.Errorf("per-worker accounting broken: %+v", st)
	}
}
