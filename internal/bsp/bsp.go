// Package bsp is the GRAPE-style parallel engine of Section VI-B: it runs
// PAllMatch with n shared-nothing logical workers under the Bulk
// Synchronous Parallel model. Graph G is partitioned by edge-cut; each
// candidate pair (u, v) is owned by the worker whose fragment owns v.
// In the first superstep (PPSim) every worker optimistically assumes
// pairs involving non-owned ("border") vertices are valid and computes
// its partial result with AllParaMatch; at each synchronization barrier
// workers exchange two kinds of messages — evaluation requests for
// assumed pairs, and invalidations of pairs that flipped true→false — and
// then refine their partial results incrementally (IncPSim, which is the
// cleanup stage of ParaMatch applied to incoming invalidations). The
// computation reaches a fixpoint when a superstep produces no messages;
// Π is the union of the per-worker partial results.
//
// The graphs themselves are immutable and shared read-only between
// workers — a host-process optimization; every mutable structure (the
// cache/ecache state, subscriptions, partial results) is private to one
// worker, preserving the shared-nothing semantics of the paper.
package bsp

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"her/internal/core"
	"her/internal/graph"
	"her/internal/obs"
	"her/internal/ranking"
)

// Config configures a parallel run.
type Config struct {
	Workers int // n; must be ≥ 1
	// MaxSupersteps bounds the fixpoint loop as a safety net; 0 means
	// a generous default.
	MaxSupersteps int
}

// Stats describes one PAllMatch run.
type Stats struct {
	Workers        int
	Supersteps     int
	Requests       int   // evaluation-request messages exchanged
	Invalidations  int   // invalidation messages exchanged
	CandidatePairs int   // total candidate pairs across workers
	PerWorkerPairs []int // work division: candidates per worker
	Calls          int   // total ParaMatch invocations across workers
	PerWorkerCalls []int // work division: ParaMatch invocations per worker
	// SuperstepDurations records the wall time of each superstep (one
	// entry for the whole run under the asynchronous engine, which has
	// no barriers).
	SuperstepDurations []time.Duration
	WallTime           time.Duration // total run wall time
}

// Engine computes all matches across G_D and G in parallel.
type Engine struct {
	GD, G *graph.Graph
	RD    *ranking.Ranker
	RG    *ranking.Ranker
	P     core.Params
	// Metrics, when non-nil, receives superstep/message/run metrics and
	// is propagated to every worker's matcher for phase counters.
	Metrics *obs.Registry
}

// engineMetrics resolves the engine's registry handles (all nil when
// Metrics is nil, making every recording a no-op).
type engineMetrics struct {
	superstep *obs.Histogram // her_bsp_superstep_seconds
	run       *obs.Histogram // her_bsp_run_seconds{mode=...}
	requests  *obs.Counter   // her_bsp_messages_total{kind="request"}
	invalid   *obs.Counter   // her_bsp_messages_total{kind="invalidation"}
	revalid   *obs.Counter   // her_bsp_messages_total{kind="revalidation"}
	pairs     *obs.Counter   // her_bsp_candidate_pairs_total
}

func (e *Engine) metrics(mode string) engineMetrics {
	r := e.Metrics
	return engineMetrics{
		superstep: r.Histogram("her_bsp_superstep_seconds", nil),
		run:       r.Histogram(`her_bsp_run_seconds{mode="`+mode+`"}`, nil),
		requests:  r.Counter(`her_bsp_messages_total{kind="request"}`),
		invalid:   r.Counter(`her_bsp_messages_total{kind="invalidation"}`),
		revalid:   r.Counter(`her_bsp_messages_total{kind="revalidation"}`),
		pairs:     r.Counter("her_bsp_candidate_pairs_total"),
	}
}

// NewEngine creates a parallel engine; the rankers may be shared with a
// sequential matcher (they are safe for concurrent use).
func NewEngine(gd, g *graph.Graph, rd, rg *ranking.Ranker, p core.Params) (*Engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if gd == nil || g == nil || rd == nil || rg == nil {
		return nil, fmt.Errorf("bsp: graphs and rankers must be non-nil")
	}
	return &Engine{GD: gd, G: g, RD: rd, RG: rg, P: p}, nil
}

// request asks the owner of a pair to evaluate it for a subscriber.
type request struct {
	p    core.Pair
	from int
}

// worker is one shared-nothing BSP worker.
type worker struct {
	id    int
	eng   *Engine
	m     *core.Matcher
	owns  func(graph.VID) bool
	cands []core.Pair

	subs map[core.Pair]map[int]bool // owned pair → subscriber workers

	// Per-superstep outboxes.
	newAssumed []core.Pair // delegated pairs assumed this superstep
	invalided  []core.Pair // owned pairs that flipped to invalid
	revalided  []core.Pair // owned pairs that flipped back to valid
	directInv  []message   // immediate responses to requests already known invalid
}

type message struct {
	p  core.Pair
	to int
}

// Run computes Π for the given G_D source vertices (nil means all) with
// cfg.Workers workers, returning the match set and run statistics.
func (e *Engine) Run(sources []graph.VID, gen core.CandidateGen, cfg Config) ([]core.Pair, Stats, error) {
	n := cfg.Workers
	if n < 1 {
		return nil, Stats{}, fmt.Errorf("bsp: Workers must be ≥ 1, got %d", n)
	}
	runStart := time.Now()
	met := e.metrics("bsp")
	maxSteps := cfg.MaxSupersteps
	if maxSteps <= 0 {
		maxSteps = 1000
	}
	part, err := graph.PartitionEdgeCutSCC(e.G, n)
	if err != nil {
		return nil, Stats{}, err
	}

	if sources == nil {
		sources = make([]graph.VID, e.GD.NumVertices())
		for i := range sources {
			sources[i] = graph.VID(i)
		}
	}

	// Build workers with private matchers.
	workers := make([]*worker, n)
	for i := 0; i < n; i++ {
		m, err := core.NewMatcher(e.GD, e.G, e.RD, e.RG, e.P)
		if err != nil {
			return nil, Stats{}, err
		}
		m.EnableReadTracking()
		m.SetMetrics(e.Metrics)
		w := &worker{id: i, eng: e, m: m, subs: make(map[core.Pair]map[int]bool)}
		w.owns = func(v graph.VID) bool { return part.Of[v] == w.id }
		m.SetDelegate(func(p core.Pair) bool {
			if w.owns(p.V) {
				return false
			}
			if !w.m.IsAssumed(p) {
				w.newAssumed = append(w.newAssumed, p)
			}
			return true
		})
		m.SetOnInvalid(func(p core.Pair) {
			if w.owns(p.V) {
				w.invalided = append(w.invalided, p)
			}
		})
		m.SetOnRevalid(func(p core.Pair) {
			if w.owns(p.V) {
				w.revalided = append(w.revalided, p)
			}
		})
		workers[i] = w
	}

	// Distribute candidate pairs to the owners of their G-side vertex.
	// Candidate generation mirrors Matcher.CandidatesFor; one scan serves
	// all workers.
	probe := workers[0].m
	stats := Stats{Workers: n, PerWorkerPairs: make([]int, n)}
	for _, u := range sources {
		for _, v := range probe.CandidatesFor(u, gen) {
			w := workers[part.Of[v]]
			w.cands = append(w.cands, core.Pair{U: u, V: v})
			stats.CandidatePairs++
			stats.PerWorkerPairs[part.Of[v]]++
		}
	}
	probe.Reset() // discard any state CandidatesFor warmed
	met.pairs.Add(int64(stats.CandidatePairs))

	// Inboxes for the next superstep.
	inRequests := make([][]request, n)
	inInvalid := make([][]core.Pair, n)
	inRevalid := make([][]core.Pair, n)

	for step := 0; step < maxSteps; step++ {
		stats.Supersteps++
		stepStart := time.Now()
		var wg sync.WaitGroup
		for _, w := range workers {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				w.superstep(step == 0, inRequests[w.id], inInvalid[w.id], inRevalid[w.id])
			}(w)
		}
		wg.Wait()

		// Barrier: route messages.
		nextReq := make([][]request, n)
		nextInv := make([][]core.Pair, n)
		nextRev := make([][]core.Pair, n)
		busy := false
		for _, w := range workers {
			for _, p := range w.newAssumed {
				owner := part.Of[p.V]
				nextReq[owner] = append(nextReq[owner], request{p: p, from: w.id})
				stats.Requests++
				met.requests.Inc()
				busy = true
			}
			for _, p := range w.invalided {
				for sub := range w.subs[p] {
					nextInv[sub] = append(nextInv[sub], p)
					stats.Invalidations++
					met.invalid.Inc()
					busy = true
				}
			}
			for _, p := range w.revalided {
				for sub := range w.subs[p] {
					nextRev[sub] = append(nextRev[sub], p)
					stats.Invalidations++
					met.revalid.Inc()
					busy = true
				}
			}
			for _, msg := range w.directInv {
				nextInv[msg.to] = append(nextInv[msg.to], msg.p)
				stats.Invalidations++
				met.invalid.Inc()
				busy = true
			}
			w.newAssumed, w.invalided, w.revalided, w.directInv = nil, nil, nil, nil
		}
		inRequests, inInvalid, inRevalid = nextReq, nextInv, nextRev
		stepDur := time.Since(stepStart)
		stats.SuperstepDurations = append(stats.SuperstepDurations, stepDur)
		met.superstep.Observe(stepDur.Seconds())
		if !busy {
			break
		}
	}

	// Union of partial results, read from the final per-owner caches.
	totalCands := 0
	for _, w := range workers {
		totalCands += len(w.cands)
	}
	matches := make([]core.Pair, 0, totalCands)
	stats.PerWorkerCalls = make([]int, n)
	for _, w := range workers {
		stats.PerWorkerCalls[w.id] = w.m.Stats().Calls
		stats.Calls += w.m.Stats().Calls
		for _, p := range w.cands {
			if valid, found := w.m.Cached(p); found && valid {
				matches = append(matches, p)
			}
		}
	}
	sort.Slice(matches, func(a, b int) bool {
		if matches[a].U != matches[b].U {
			return matches[a].U < matches[b].U
		}
		return matches[a].V < matches[b].V
	})
	// Candidate lists are disjoint across workers (owned by v), so no
	// dedup is needed.
	stats.WallTime = time.Since(runStart)
	met.run.Observe(stats.WallTime.Seconds())
	return matches, stats, nil
}

// superstep processes one BSP round for the worker: apply incoming
// invalidations (IncPSim), serve evaluation requests, and in the first
// round evaluate the worker's own candidate pairs (PPSim).
func (w *worker) superstep(first bool, reqs []request, invs, revs []core.Pair) {
	for _, p := range invs {
		w.m.Invalidate(p)
	}
	for _, p := range revs {
		w.m.Revalidate(p)
	}
	for _, r := range reqs {
		set := w.subs[r.p]
		if set == nil {
			set = make(map[int]bool)
			w.subs[r.p] = set
		}
		set[r.from] = true
		if valid, found := w.m.Cached(r.p); found {
			if !valid {
				w.directInv = append(w.directInv, message{p: r.p, to: r.from})
			}
			continue
		}
		w.m.Match(r.p.U, r.p.V) // invalid results reach subscribers via the observer
	}
	if first {
		for _, p := range w.cands {
			if _, found := w.m.Cached(p); !found {
				w.m.Match(p.U, p.V)
			}
		}
	}
}
