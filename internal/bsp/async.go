package bsp

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"her/internal/core"
	"her/internal/graph"
)

// RunAsync computes Π like Run, but without superstep barriers — the
// paper's Section VI-B remark 1: "PAllMatch can work asynchronously...
// under the adaptive asynchronous parallel model". Workers exchange the
// same two message kinds (evaluation requests for assumed border pairs,
// invalidations of pairs that flipped to false) through per-worker
// mailboxes and process them as they arrive; the run terminates when
// every worker is idle and no message is in flight (quiescence detected
// by an in-flight counter).
func (e *Engine) RunAsync(sources []graph.VID, gen core.CandidateGen, cfg Config) ([]core.Pair, Stats, error) {
	n := cfg.Workers
	if n < 1 {
		return nil, Stats{}, fmt.Errorf("bsp: Workers must be ≥ 1, got %d", n)
	}
	runStart := time.Now()
	met := e.metrics("async")
	part, err := graph.PartitionEdgeCutSCC(e.G, n)
	if err != nil {
		return nil, Stats{}, err
	}
	if sources == nil {
		sources = make([]graph.VID, e.GD.NumVertices())
		for i := range sources {
			sources[i] = graph.VID(i)
		}
	}

	ws := make([]*asyncWorker, n)
	// pending counts initial phases plus in-flight messages; when it
	// reaches zero no work exists and none can be created.
	var pending int64 = int64(n)
	var requests, invalidations int64
	done := make(chan struct{})
	var once sync.Once
	decr := func() {
		if atomic.AddInt64(&pending, -1) == 0 {
			once.Do(func() { close(done) })
		}
	}

	for i := 0; i < n; i++ {
		m, err := core.NewMatcher(e.GD, e.G, e.RD, e.RG, e.P)
		if err != nil {
			return nil, Stats{}, err
		}
		m.EnableReadTracking()
		m.SetMetrics(e.Metrics)
		w := &asyncWorker{id: i, m: m, subs: make(map[core.Pair]map[int]bool)}
		w.box.cond = sync.NewCond(&w.box.mu)
		w.owns = func(v graph.VID) bool { return part.Of[v] == w.id }
		ws[i] = w
	}
	send := func(to int, msg asyncMsg) {
		atomic.AddInt64(&pending, 1)
		switch msg.kind {
		case msgRequest:
			atomic.AddInt64(&requests, 1)
			met.requests.Inc()
		case msgRevalid:
			atomic.AddInt64(&invalidations, 1)
			met.revalid.Inc()
		default:
			atomic.AddInt64(&invalidations, 1)
			met.invalid.Inc()
		}
		ws[to].box.push(msg)
	}
	for i := 0; i < n; i++ {
		w := ws[i]
		w.m.SetDelegate(func(p core.Pair) bool {
			if w.owns(p.V) {
				return false
			}
			if !w.m.IsAssumed(p) {
				send(part.Of[p.V], asyncMsg{p: p, from: w.id, kind: msgRequest})
			}
			return true
		})
		w.m.SetOnInvalid(func(p core.Pair) {
			if !w.owns(p.V) {
				return
			}
			for sub := range w.subs[p] {
				send(sub, asyncMsg{p: p, kind: msgInvalid})
			}
		})
		w.m.SetOnRevalid(func(p core.Pair) {
			if !w.owns(p.V) {
				return
			}
			for sub := range w.subs[p] {
				send(sub, asyncMsg{p: p, kind: msgRevalid})
			}
		})
		w.notifyLate = func(p core.Pair, to int) {
			send(to, asyncMsg{p: p, kind: msgInvalid})
		}
	}

	// Distribute candidate pairs by owner.
	stats := Stats{Workers: n, PerWorkerPairs: make([]int, n)}
	probe := ws[0].m
	for _, u := range sources {
		for _, v := range probe.CandidatesFor(u, gen) {
			w := ws[part.Of[v]]
			w.cands = append(w.cands, core.Pair{U: u, V: v})
			stats.CandidatePairs++
			stats.PerWorkerPairs[part.Of[v]]++
		}
	}
	probe.Reset()
	met.pairs.Add(int64(stats.CandidatePairs))

	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *asyncWorker) {
			defer wg.Done()
			// Initial phase: evaluate owned candidates.
			for _, p := range w.cands {
				if _, found := w.m.Cached(p); !found {
					w.m.Match(p.U, p.V)
				}
			}
			decr()
			// Message loop until quiescence.
			for {
				msg, ok := w.box.pop(done)
				if !ok {
					return
				}
				w.handle(msg)
				decr()
			}
		}(w)
	}
	<-done
	// Wake every worker blocked on its mailbox so they observe done.
	for _, w := range ws {
		w.box.wake()
	}
	wg.Wait()

	stats.Requests = int(atomic.LoadInt64(&requests))
	stats.Invalidations = int(atomic.LoadInt64(&invalidations))
	stats.Supersteps = 1 // asynchronous: a single logical round

	var matches []core.Pair
	stats.PerWorkerCalls = make([]int, n)
	for _, w := range ws {
		stats.PerWorkerCalls[w.id] = w.m.Stats().Calls
		stats.Calls += w.m.Stats().Calls
		for _, p := range w.cands {
			if valid, found := w.m.Cached(p); found && valid {
				matches = append(matches, p)
			}
		}
	}
	sort.Slice(matches, func(a, b int) bool {
		if matches[a].U != matches[b].U {
			return matches[a].U < matches[b].U
		}
		return matches[a].V < matches[b].V
	})
	stats.WallTime = time.Since(runStart)
	stats.SuperstepDurations = []time.Duration{stats.WallTime}
	met.superstep.Observe(stats.WallTime.Seconds())
	met.run.Observe(stats.WallTime.Seconds())
	return matches, stats, nil
}

type asyncMsg struct {
	p    core.Pair
	from int
	kind msgKind
}

type msgKind int

const (
	msgRequest msgKind = iota
	msgInvalid
	msgRevalid
)

// mailbox is an unbounded FIFO with condition-variable blocking, so a
// sender never deadlocks on a full channel.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []asyncMsg
}

func (b *mailbox) push(m asyncMsg) {
	b.mu.Lock()
	b.queue = append(b.queue, m)
	b.mu.Unlock()
	b.cond.Signal()
}

// pop blocks until a message arrives or done closes.
func (b *mailbox) pop(done <-chan struct{}) (asyncMsg, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.queue) == 0 {
		select {
		case <-done:
			return asyncMsg{}, false
		default:
		}
		b.cond.Wait()
	}
	m := b.queue[0]
	b.queue = b.queue[1:]
	return m, true
}

func (b *mailbox) wake() {
	b.mu.Lock()
	b.cond.Broadcast()
	b.mu.Unlock()
}

type asyncWorker struct {
	id    int
	m     *core.Matcher
	owns  func(graph.VID) bool
	cands []core.Pair
	subs  map[core.Pair]map[int]bool
	box   mailbox
	// notifyLate forwards an already-known invalidation to a subscriber
	// that asked after the pair was refuted; installed by RunAsync.
	notifyLate func(p core.Pair, to int)
}

// handle processes one incoming message: invalidations run the IncPSim
// cleanup; requests subscribe the asker and evaluate on demand, replying
// immediately when the pair is already known invalid.
func (w *asyncWorker) handle(msg asyncMsg) {
	switch msg.kind {
	case msgInvalid:
		w.m.Invalidate(msg.p)
		return
	case msgRevalid:
		w.m.Revalidate(msg.p)
		return
	}
	set := w.subs[msg.p]
	if set == nil {
		set = make(map[int]bool)
		w.subs[msg.p] = set
	}
	set[msg.from] = true
	if valid, found := w.m.Cached(msg.p); found {
		if !valid && w.notifyLate != nil {
			w.notifyLate(msg.p, msg.from)
		}
		return
	}
	w.m.Match(msg.p.U, msg.p.V)
}
