package bsp

import (
	"math/rand"
	"testing"

	"her/internal/core"
	"her/internal/ranking"
)

func TestStressEquality(t *testing.T) {
	labels := []string{"P", "Q", "R", "S"}
	edgeLabels := []string{"x", "y", "z"}
	for seed := int64(1); seed <= 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 8; trial++ {
			nv := 4 + rng.Intn(12)
			ne := rng.Intn(3 * nv)
			gd := randomGraph(rng, nv, ne, labels, edgeLabels)
			g := randomGraph(rng, nv, ne, labels, edgeLabels)
			delta := []float64{0.3, 0.5, 1.0}[rng.Intn(3)]
			p := core.Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: delta, K: 3}
			want := sequentialAPair(t, gd, g, p, nil, 3)
			for _, n := range []int{2, 4} {
				eng, _ := NewEngine(gd, g, ranking.NewRanker(gd, nil, 3), ranking.NewRanker(g, nil, 3), p)
				got, _, err := eng.Run(nil, nil, Config{Workers: n})
				if err != nil {
					t.Fatal(err)
				}
				if !pairsEqual(got, want) {
					t.Fatalf("seed %d trial %d n=%d SYNC: %v != %v", seed, trial, n, got, want)
				}
				eng2, _ := NewEngine(gd, g, ranking.NewRanker(gd, nil, 3), ranking.NewRanker(g, nil, 3), p)
				got2, _, err := eng2.RunAsync(nil, nil, Config{Workers: n})
				if err != nil {
					t.Fatal(err)
				}
				if !pairsEqual(got2, want) {
					t.Fatalf("seed %d trial %d n=%d ASYNC: %v != %v", seed, trial, n, got2, want)
				}
			}
		}
	}
}
