package view

import (
	"fmt"
	"strings"

	"her/internal/graph"
	"her/internal/relational"
)

// CanonicalDump serializes a materialized view in a form independent of
// raw vertex ids: tuple vertices are named relation/tupleID through the
// mapping, leaf vertices by their label, and per-vertex edge order is
// preserved. Two views over the same database are semantically equal
// exactly when their dumps are byte-equal — the equality the
// mutation-sequence differential needs, because a re-extraction from
// scratch interleaves relations' vertex ids differently than an
// append-only history while denoting the same graph.
func CanonicalDump(g *graph.Graph, m *Mapping, db *relational.Database) string {
	var b strings.Builder
	fmt.Fprintf(&b, "vertices %d edges %d tuples %d\n",
		g.NumVertices(), g.NumEdges(), m.NumTupleVertices())
	for _, relName := range db.RelationNames() {
		rel := db.Relation(relName)
		for id := 0; id < len(rel.Tuples); id++ {
			v, ok := m.VertexOf(relName, id)
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "t %s/%d label=%q\n", relName, id, g.Label(v))
			for _, e := range g.Out(v) {
				if ref, isTuple := m.TupleOf(e.To); isTuple {
					fmt.Fprintf(&b, "  e %q -> %s/%d\n", e.Label, ref.Relation, ref.TupleID)
				} else {
					fmt.Fprintf(&b, "  a %q -> %q\n", e.Label, g.Label(e.To))
				}
			}
		}
	}
	return b.String()
}
