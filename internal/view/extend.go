package view

import (
	"fmt"

	"her/internal/graph"
	"her/internal/rdb2rdf"
	"her/internal/relational"
)

// This file implements append-only view maintenance, mirroring
// rdb2rdf.AddTuple and the Section VI-B remark 2 IncPSim contract: a
// new tuple only ADDS a fresh region (its vertex, its leaves, the edges
// leaving it), so the extension is expressible as a DeltaTuple in the
// PR 7 delta log and no old vertex ever changes. The one hazard is a
// new tuple whose key resolves a reference that dangled at extraction
// time — then old vertices would gain edges under re-extraction, which
// append-only maintenance cannot express; ResolvesDangling detects
// exactly that case so the owner can fall back to a full recompile
// (signalled downstream as a DeltaReset).

// ResolvesDangling reports whether appending tuple (rel, tupleID) of db
// would resolve a reference that dangled during extraction, making
// append-only maintenance diverge from re-extraction. The check is one
// map lookup against the dangling-reference set the extraction passes
// maintain.
func (m *Mapping) ResolvesDangling(db *relational.Database, rel string, tupleID int) bool {
	r := db.Relation(rel)
	if r == nil || r.Schema.Key == "" || tupleID < 0 || tupleID >= len(r.Tuples) {
		return false
	}
	kv := r.Tuples[tupleID].Values[r.Schema.AttrIndex(r.Schema.Key)]
	if relational.IsNull(kv) {
		return false
	}
	return m.dangling[danglingRef{Relation: rel, Key: kv}]
}

// ExtendTuple extends a compiled view with one tuple appended to db
// after Compile ran: the tuple's vertex (when a vertex rule accepts
// it), its projected leaves, its single-step FK edges, and its
// join-path and closure edges. Every added edge leaves a new vertex.
// Callers that need re-extraction equivalence must first check
// ResolvesDangling and recompile instead when it reports true.
func ExtendTuple(g *graph.Graph, m *Mapping, def *Def, db *relational.Database, relName string, tupleID int) error {
	c, err := plan(def, db)
	if err != nil {
		return err
	}
	return c.extendTuple(g, m, relName, tupleID)
}

func (c *compiled) extendTuple(g *graph.Graph, m *Mapping, relName string, tupleID int) error {
	rel := c.db.Relation(relName)
	if rel == nil {
		return fmt.Errorf("view %s: unknown relation %s", c.def.Name, relName)
	}
	if tupleID < 0 || tupleID >= len(rel.Tuples) {
		return fmt.Errorf("view %s: %s has no tuple %d", c.def.Name, relName, tupleID)
	}
	ref := rdb2rdf.TupleRef{Relation: relName, TupleID: tupleID}
	if _, dup := m.tupleVertex[ref]; dup {
		return fmt.Errorf("view %s: tuple %s/%d already mapped", c.def.Name, relName, tupleID)
	}
	ri, ok := c.byRelation[relName]
	if !ok {
		return nil // no vertex rule: the tuple is invisible to this view
	}
	vr := &c.def.Vertices[ri]
	t := rel.Tuples[tupleID]
	if !matchTuple(rel, t, vr.Where) {
		return nil
	}
	ut := g.AddVertex(vertexLabel(rel, t, vr))
	m.tupleVertex[ref] = ut
	m.vertexTuple[ut] = ref
	m.attrVertex[ref] = make(map[string]graph.VID, len(rel.Schema.Attrs))
	c.extractTuple(g, m, ri, rel, t, ut)
	for _, ei := range c.multiStep {
		er := &c.def.Edges[ei]
		if er.Relation != relName {
			continue
		}
		c.extractPaths(g, m, er, t, ut)
	}
	return nil
}
