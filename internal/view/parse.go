package view

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the declarative rule language. One file holds
// one or more view definitions; '#' starts a comment; blank lines are
// ignored. The grammar, one directive per line:
//
//	view <name>
//	vertex <relation> [where <attr> <op> <value> [and ...]] [label <attr>]
//	attrs <relation> <attr>... | attrs <relation> *
//	edge <label> from <relation> via <fk>[.<fk>...]
//	closure <label> from <relation> via <fk> depth <n>
//
// Values may be double-quoted (Go string syntax) when they contain
// spaces. Operators are = != ~ (substring). The parser rejects
// malformed input with positioned errors and never panics — the
// FuzzViewRuleParse target enforces that, plus a String() round trip.

// maxLineLen bounds one directive line; maxDefs bounds definitions per
// file. Both keep hostile inputs from ballooning memory.
const (
	maxLineLen = 64 * 1024
	maxDefs    = 256
)

// Parse reads every view definition in src. Each definition starts
// with a `view <name>` line; rules belong to the most recent one.
func Parse(src []byte) ([]*Def, error) {
	var defs []*Def
	var cur *Def
	sc := bufio.NewScanner(strings.NewReader(string(src)))
	sc.Buffer(make([]byte, 0, 4096), maxLineLen)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields, err := splitFields(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("view: line %d: %v", lineNo, err)
		}
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "view":
			if len(fields) != 2 {
				return nil, fmt.Errorf("view: line %d: want `view <name>`", lineNo)
			}
			if len(defs) >= maxDefs {
				return nil, fmt.Errorf("view: line %d: too many view definitions (max %d)", lineNo, maxDefs)
			}
			cur = NewDef(fields[1])
			defs = append(defs, cur)
		case "vertex":
			if cur == nil {
				return nil, fmt.Errorf("view: line %d: rule before any `view` line", lineNo)
			}
			if err := parseVertex(cur, fields[1:]); err != nil {
				return nil, fmt.Errorf("view: line %d: %v", lineNo, err)
			}
		case "attrs":
			if cur == nil {
				return nil, fmt.Errorf("view: line %d: rule before any `view` line", lineNo)
			}
			if err := parseAttrs(cur, fields[1:]); err != nil {
				return nil, fmt.Errorf("view: line %d: %v", lineNo, err)
			}
		case "edge", "closure":
			if cur == nil {
				return nil, fmt.Errorf("view: line %d: rule before any `view` line", lineNo)
			}
			if err := parseEdge(cur, fields[0] == "closure", fields[1:]); err != nil {
				return nil, fmt.Errorf("view: line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("view: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("view: %v", err)
	}
	if len(defs) == 0 {
		return nil, fmt.Errorf("view: no view definitions")
	}
	for _, d := range defs {
		if err := d.check(); err != nil {
			return nil, err
		}
	}
	return defs, nil
}

// ParseReader is Parse over a stream (the CLI's file-loading path).
func ParseReader(r io.Reader) ([]*Def, error) {
	src, err := io.ReadAll(io.LimitReader(r, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("view: %v", err)
	}
	return Parse(src)
}

// parseVertex handles `vertex <relation> [where ...] [label <attr>]`.
func parseVertex(d *Def, f []string) error {
	if len(f) == 0 {
		return fmt.Errorf("want `vertex <relation> ...`")
	}
	r := d.Vertex(f[0])
	f = f[1:]
	for len(f) > 0 {
		switch f[0] {
		case "where", "and":
			if len(f) < 4 {
				return fmt.Errorf("want `%s <attr> <op> <value>`", f[0])
			}
			r.Filter(f[1], f[2], f[3])
			f = f[4:]
		case "label":
			if len(f) != 2 {
				return fmt.Errorf("want `label <attr>` at line end")
			}
			r.Label(f[1])
			f = f[2:]
		default:
			return fmt.Errorf("unexpected token %q in vertex rule", f[0])
		}
	}
	return nil
}

// parseAttrs handles `attrs <relation> <attr>...` / `attrs <relation> *`.
// The relation must already have a vertex rule in the current view.
func parseAttrs(d *Def, f []string) error {
	if len(f) < 2 {
		return fmt.Errorf("want `attrs <relation> <attr>...` or `attrs <relation> *`")
	}
	var r *VertexRule
	for i := range d.Vertices {
		if d.Vertices[i].Relation == f[0] {
			r = &d.Vertices[i]
			break
		}
	}
	if r == nil {
		return fmt.Errorf("attrs for relation %s before its vertex rule", f[0])
	}
	if len(f) == 2 && f[1] == "*" {
		r.ProjectAll()
		return nil
	}
	for _, a := range f[1:] {
		if a == "*" {
			return fmt.Errorf("`*` cannot be mixed with named attributes")
		}
	}
	r.Project(f[1:]...)
	return nil
}

// parseEdge handles `edge <label> from <relation> via <fk>[.<fk>...]`
// and `closure <label> from <relation> via <fk> depth <n>`.
func parseEdge(d *Def, closure bool, f []string) error {
	if len(f) < 4 || f[1] != "from" || f[3] != "via" {
		return fmt.Errorf("want `edge <label> from <relation> via <path>`")
	}
	if len(f) < 5 {
		return fmt.Errorf("missing foreign-key path after `via`")
	}
	label, rel, pathStr := f[0], f[2], f[4]
	rest := f[5:]
	path := strings.Split(pathStr, ".")
	for _, p := range path {
		if p == "" {
			return fmt.Errorf("empty step in foreign-key path %q", pathStr)
		}
	}
	if !closure {
		if len(rest) != 0 {
			return fmt.Errorf("unexpected tokens after edge path: %v", rest)
		}
		d.Edge(label, rel, path...)
		return nil
	}
	if len(rest) != 2 || rest[0] != "depth" {
		return fmt.Errorf("want `closure ... depth <n>`")
	}
	depth, err := strconv.Atoi(rest[1])
	if err != nil || depth < 1 || depth > MaxClosureDepth {
		return fmt.Errorf("closure depth %q out of range [1,%d]", rest[1], MaxClosureDepth)
	}
	if len(path) != 1 {
		return fmt.Errorf("closure follows exactly one foreign key, got path %q", pathStr)
	}
	d.ClosureEdge(label, rel, path[0], depth)
	return nil
}

// splitFields tokenizes one directive line: whitespace-separated
// fields, with double-quoted tokens (Go string syntax) kept whole and
// '#' starting a comment outside quotes.
func splitFields(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		c := line[i]
		if c == ' ' || c == '\t' {
			i++
			continue
		}
		if c == '#' {
			break
		}
		if c == '"' {
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated quoted value")
			}
			tok, err := strconv.Unquote(line[i : j+1])
			if err != nil {
				return nil, fmt.Errorf("bad quoted value %s: %v", line[i:j+1], err)
			}
			out = append(out, tok)
			i = j + 1
			continue
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' {
			j++
		}
		out = append(out, line[i:j])
		i = j
	}
	return out, nil
}
