package view

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"her/internal/graph"
	"her/internal/rdb2rdf"
	"her/internal/relational"
)

// goldenDB mirrors the rdb2rdf golden fixture: a plain attribute, a
// nullable attribute, a resolvable FK and a null FK.
func goldenDB(t *testing.T) *relational.Database {
	t.Helper()
	maker := relational.MustSchema("maker", []string{"name", "country"}, "name")
	part := relational.MustSchema("part", []string{"sku", "color", "maker"}, "sku",
		relational.ForeignKey{Attr: "maker", RefRelation: "maker"})
	db := relational.NewDatabase(part, maker)
	db.Relation("maker").MustInsert("Acme", "US")
	db.Relation("maker").MustInsert("Umbrella", relational.Null)
	db.Relation("part").MustInsert("bolt-1", "red", "Acme")
	db.Relation("part").MustInsert("nut-2", relational.Null, "Umbrella")
	db.Relation("part").MustInsert("cog-3", "blue", relational.Null)
	return db
}

// tupleMapper is the query surface shared by rdb2rdf.Mapping and
// view.Mapping that DumpMapping serializes.
type tupleMapper interface {
	VertexOf(rel string, tupleID int) (graph.VID, bool)
	AttrVertexOf(rel string, tupleID int, attr string) (graph.VID, bool)
	IsForeignKeyEdge(from, to graph.VID) (string, bool)
	NumTupleVertices() int
}

// DumpMapping serializes a mapping deterministically through its public
// query surface, so two mappings are byte-comparable.
func DumpMapping(db *relational.Database, g *graph.Graph, m tupleMapper) string {
	var b strings.Builder
	fmt.Fprintf(&b, "tuples %d\n", m.NumTupleVertices())
	for _, relName := range db.RelationNames() {
		rel := db.Relation(relName)
		for id := 0; id < len(rel.Tuples); id++ {
			v, ok := m.VertexOf(relName, id)
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "t %s/%d -> %d\n", relName, id, v)
			for _, attr := range rel.Schema.Attrs {
				if av, ok := m.AttrVertexOf(relName, id, attr); ok {
					fmt.Fprintf(&b, "a %s/%d.%s -> %d\n", relName, id, attr, av)
				}
			}
			for _, e := range g.Out(v) {
				if label, fk := m.IsForeignKeyEdge(v, e.To); fk {
					fmt.Fprintf(&b, "fk %d -> %d %q\n", v, e.To, label)
				}
			}
		}
	}
	return b.String()
}

// requireByteIdentical asserts that the direct view compiled from db is
// byte-identical to rdb2rdf.Map — graph TSV and mapping dump alike.
func requireByteIdentical(t *testing.T, db *relational.Database) {
	t.Helper()
	wantG, wantM, err := rdb2rdf.Map(db)
	if err != nil {
		t.Fatalf("rdb2rdf.Map: %v", err)
	}
	gotG, gotM, err := Compile(Direct(db), db)
	if err != nil {
		t.Fatalf("Compile(Direct): %v", err)
	}
	var wantTSV, gotTSV bytes.Buffer
	if err := wantG.WriteTSV(&wantTSV); err != nil {
		t.Fatal(err)
	}
	if err := gotG.WriteTSV(&gotTSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotTSV.Bytes(), wantTSV.Bytes()) {
		t.Fatalf("direct view graph diverges from rdb2rdf.Map\n--- view ---\n%s--- rdb2rdf ---\n%s",
			gotTSV.Bytes(), wantTSV.Bytes())
	}
	wantDump := DumpMapping(db, wantG, wantM)
	gotDump := DumpMapping(db, gotG, gotM)
	if gotDump != wantDump {
		t.Fatalf("direct view mapping diverges from rdb2rdf.Map\n--- view ---\n%s--- rdb2rdf ---\n%s",
			gotDump, wantDump)
	}
}

func TestDirectByteIdenticalGolden(t *testing.T) {
	requireByteIdentical(t, goldenDB(t))
}

// TestDirectByteIdenticalSelfFK covers a self-referential FK resolving
// to the tuple itself (rdb2rdf emits a self-edge) and to a sibling.
func TestDirectByteIdenticalSelfFK(t *testing.T) {
	emp := relational.MustSchema("emp", []string{"id", "boss"}, "id",
		relational.ForeignKey{Attr: "boss", RefRelation: "emp"})
	db := relational.NewDatabase(emp)
	db.Relation("emp").MustInsert("e1", "e1")
	db.Relation("emp").MustInsert("e2", "e1")
	db.Relation("emp").MustInsert("e3", "missing")
	requireByteIdentical(t, db)
}

func TestCompilePredicateAndProjection(t *testing.T) {
	db := goldenDB(t)
	d := NewDef("red")
	d.Vertex("part").Filter("color", "=", "red").Label("sku").Project("sku")
	d.Vertex("maker").Project("name")
	d.Edge("made_by", "part", "maker")
	g, m, err := Compile(d, db)
	if err != nil {
		t.Fatal(err)
	}
	// Only bolt-1 is red; both makers materialize.
	if got := m.NumTupleVertices(); got != 3 {
		t.Fatalf("tuple vertices = %d, want 3", got)
	}
	v, ok := m.VertexOf("part", 0)
	if !ok {
		t.Fatal("bolt-1 not materialized")
	}
	if g.Label(v) != "bolt-1" {
		t.Fatalf("label = %q, want sku label bolt-1", g.Label(v))
	}
	if _, ok := m.VertexOf("part", 1); ok {
		t.Fatal("nut-2 materialized despite color predicate")
	}
	// bolt-1 projects sku (leaf) and grows a made_by edge to Acme.
	mk, _ := m.VertexOf("maker", 0)
	if label, fk := m.IsForeignKeyEdge(v, mk); !fk || label != "made_by" {
		t.Fatalf("made_by edge missing (label=%q fk=%v)", label, fk)
	}
	if _, ok := m.AttrVertexOf("part", 0, "sku"); !ok {
		t.Fatal("sku leaf missing")
	}
	if _, ok := m.AttrVertexOf("part", 0, "color"); ok {
		t.Fatal("color leaf present despite projection list")
	}
}

func TestCompileJoinPathAndClosure(t *testing.T) {
	// city -> region -> country chain, plus a self-referential part tree.
	country := relational.MustSchema("country", []string{"cid"}, "cid")
	region := relational.MustSchema("region", []string{"rid", "country"}, "rid",
		relational.ForeignKey{Attr: "country", RefRelation: "country"})
	city := relational.MustSchema("city", []string{"name", "region"}, "name",
		relational.ForeignKey{Attr: "region", RefRelation: "region"})
	part := relational.MustSchema("part", []string{"pid", "parent"}, "pid",
		relational.ForeignKey{Attr: "parent", RefRelation: "part"})
	db := relational.NewDatabase(country, region, city, part)
	db.Relation("country").MustInsert("FR")
	db.Relation("region").MustInsert("IDF", "FR")
	db.Relation("city").MustInsert("Paris", "IDF")
	db.Relation("part").MustInsert("root", relational.Null)
	db.Relation("part").MustInsert("mid", "root")
	db.Relation("part").MustInsert("leaf", "mid")

	d := NewDef("geo")
	d.Vertex("city").Label("name")
	d.Vertex("country").Label("cid")
	d.Vertex("part").Label("pid")
	d.Edge("in_country", "city", "region", "country") // region not materialized
	d.ClosureEdge("ancestor", "part", "parent", 8)
	g, m, err := Compile(d, db)
	if err != nil {
		t.Fatal(err)
	}
	paris, _ := m.VertexOf("city", 0)
	fr, _ := m.VertexOf("country", 0)
	if label, ok := m.IsForeignKeyEdge(paris, fr); !ok || label != "in_country" {
		t.Fatalf("join path edge missing (label=%q ok=%v)", label, ok)
	}
	leaf, _ := m.VertexOf("part", 2)
	mid, _ := m.VertexOf("part", 1)
	root, _ := m.VertexOf("part", 0)
	for _, want := range []graph.VID{mid, root} {
		if _, ok := m.IsForeignKeyEdge(leaf, want); !ok {
			t.Fatalf("closure edge leaf->%d missing", want)
		}
	}
	if _, ok := m.IsForeignKeyEdge(root, leaf); ok {
		t.Fatal("closure grew a downward edge")
	}
	if g.NumEdges() != 1+2+1 { // in_country + leaf's 2 ancestors + mid's 1
		t.Fatalf("edges = %d, want 4", g.NumEdges())
	}
}

func TestExtendTupleMatchesRecompile(t *testing.T) {
	db := goldenDB(t)
	d := NewDef("slim")
	d.Vertex("maker").Project("name")
	d.Vertex("part").Label("sku").Project("color")
	d.Edge("made_by", "part", "maker")
	g, m, err := Compile(d, db)
	if err != nil {
		t.Fatal(err)
	}
	// Append a part referencing an existing maker (fresh key, resolves
	// nothing dangling) and extend incrementally.
	id := db.Relation("part").MustInsert("gear-4", "green", "Acme")
	if m.ResolvesDangling(db, "part", id) {
		t.Fatal("fresh key reported as resolving a dangling ref")
	}
	if err := ExtendTuple(g, m, d, db, "part", id); err != nil {
		t.Fatal(err)
	}
	g2, m2, err := Compile(d, db)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := CanonicalDump(g, m, db), CanonicalDump(g2, m2, db); got != want {
		t.Fatalf("extended view diverges from recompile\n--- extend ---\n%s--- recompile ---\n%s", got, want)
	}
}

func TestResolvesDanglingDetected(t *testing.T) {
	db := goldenDB(t)
	// nut-2 references maker Umbrella (exists); cog-3 has a null maker.
	// Add a part referencing a missing maker first, so extraction records
	// the dangling key.
	db.Relation("part").MustInsert("rod-5", "grey", "Initech")
	d := Direct(db)
	g, m, err := Compile(d, db)
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	id := db.Relation("maker").MustInsert("Initech", "US")
	if !m.ResolvesDangling(db, "maker", id) {
		t.Fatal("resolving insert not detected")
	}
	id2 := db.Relation("maker").MustInsert("Hooli", "US")
	if m.ResolvesDangling(db, "maker", id2) {
		t.Fatal("non-resolving insert misreported")
	}
}

func TestParseAndRoundTrip(t *testing.T) {
	src := `
# product catalog views
view catalog
vertex part where color != "red" and color ~ "l" label sku
attrs part sku color
vertex maker
attrs maker *
edge made_by from part via maker
closure chain from part via maker depth 3

view tiny
vertex maker
`
	defs, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 2 || defs[0].Name != "catalog" || defs[1].Name != "tiny" {
		t.Fatalf("parsed %d defs: %+v", len(defs), defs)
	}
	cat := defs[0]
	if len(cat.Vertices) != 2 || len(cat.Edges) != 2 {
		t.Fatalf("catalog rules: %+v", cat)
	}
	if want := []Predicate{{"color", "!=", "red"}, {"color", "~", "l"}}; !reflect.DeepEqual(cat.Vertices[0].Where, want) {
		t.Fatalf("predicates = %+v", cat.Vertices[0].Where)
	}
	if cat.Edges[1].Closure != 3 {
		t.Fatalf("closure depth = %d", cat.Edges[1].Closure)
	}
	for _, d := range defs {
		again, err := Parse([]byte(d.String()))
		if err != nil {
			t.Fatalf("round trip of %s: %v\n%s", d.Name, err, d.String())
		}
		if len(again) != 1 || !reflect.DeepEqual(again[0], d) {
			t.Fatalf("round trip changed %s:\n%+v\n%+v", d.Name, again[0], d)
		}
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"",
		"vertex part",                                         // rule before view
		"view v\nnonsense here",                               // unknown directive
		"view v\nvertex part where color",                     // truncated predicate
		"view v\nvertex part where color >= red",              // bad operator
		"view v\nvertex part\nvertex part",                    // duplicate vertex rule
		"view v\nattrs part sku",                              // attrs before vertex
		"view v\nvertex part\nattrs part sku *",               // * mixed with names
		"view v\nedge e from part via",                        // missing path
		"view v\nvertex p\nedge e from p via a..b",            // empty path step
		"view v\nvertex p\nclosure c from p via a",            // missing depth
		"view v\nvertex p\nclosure c from p via a depth 0",    // depth under range
		"view v\nvertex p\nclosure c from p via a depth 9999", // depth over range
		"view v\nvertex p\nclosure c from p via a.b depth 2",  // multi-step closure
		"view bad name",                                       // name with space (two tokens)
		"view \"bad name\"\nvertex p",                         // invalid name charset
		"view v\nvertex p where a = \"un",                     // unterminated quote
		"view v\nvertex p label",                              // label without attr
		"view v",                                              // no rules
	}
	for _, src := range bad {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestCompileValidation(t *testing.T) {
	db := goldenDB(t)
	cases := []*Def{
		func() *Def { d := NewDef("v"); d.Vertex("ghost"); return d }(),
		func() *Def { d := NewDef("v"); d.Vertex("part").Filter("ghost", "=", "x"); return d }(),
		func() *Def { d := NewDef("v"); d.Vertex("part").Label("ghost"); return d }(),
		func() *Def { d := NewDef("v"); d.Vertex("part").Project("ghost"); return d }(),
		func() *Def { d := NewDef("v"); d.Vertex("part"); d.Edge("e", "maker", "name"); return d }(),
		func() *Def { d := NewDef("v"); d.Vertex("part"); d.Edge("e", "ghost", "maker"); return d }(),
	}
	for i, d := range cases {
		if _, _, err := Compile(d, db); err == nil {
			t.Errorf("case %d: Compile accepted invalid def", i)
		}
	}
}

func TestDirectDefShape(t *testing.T) {
	db := goldenDB(t)
	d := Direct(db)
	if d.Name != DirectName {
		t.Fatalf("name = %q", d.Name)
	}
	var rels []string
	for _, vr := range d.Vertices {
		rels = append(rels, vr.Relation)
		if !vr.AllAttrs {
			t.Fatalf("direct vertex rule for %s does not project all attrs", vr.Relation)
		}
	}
	if !sort.StringsAreSorted(rels) {
		t.Fatalf("direct vertex rules unsorted: %v", rels)
	}
	if len(d.Edges) != 1 || d.Edges[0].Label != "maker" {
		t.Fatalf("direct edges: %+v", d.Edges)
	}
}
