package view

import (
	"fmt"
	"strings"

	"her/internal/graph"
	"her/internal/rdb2rdf"
	"her/internal/relational"
)

// Mapping is the tuple↔vertex mapping of one materialized view — the
// view-generalized form of rdb2rdf.Mapping's f_D, with the same query
// surface so serving layers treat any view uniformly. It additionally
// tracks the dangling foreign-key references seen during extraction:
// a later tuple whose key resolves one of them invalidates append-only
// maintenance (see ResolvesDangling).
type Mapping struct {
	tupleVertex map[rdb2rdf.TupleRef]graph.VID
	vertexTuple map[graph.VID]rdb2rdf.TupleRef
	attrVertex  map[rdb2rdf.TupleRef]map[string]graph.VID
	fkEdges     map[[2]graph.VID]string // (u_t, u_t') → rule label

	// dangling records every (relation, key value) lookup that failed
	// during extraction — degraded FK leaves and broken path steps.
	dangling map[danglingRef]bool
}

// danglingRef keys a dangling reference: the referenced relation plus
// the key value that failed to resolve. rdb2rdf never needs this
// because the direct mapping freezes dangling FKs forever; views
// recompile when a later tuple resolves one.
type danglingRef struct {
	Relation string
	Key      string
}

// VertexOf returns the vertex denoting tuple (rel, tupleID).
func (m *Mapping) VertexOf(rel string, tupleID int) (graph.VID, bool) {
	v, ok := m.tupleVertex[rdb2rdf.TupleRef{Relation: rel, TupleID: tupleID}]
	return v, ok
}

// TupleOf returns the tuple a vertex denotes, if it is a tuple vertex.
func (m *Mapping) TupleOf(v graph.VID) (rdb2rdf.TupleRef, bool) {
	t, ok := m.vertexTuple[v]
	return t, ok
}

// IsTupleVertex reports whether v denotes a tuple.
func (m *Mapping) IsTupleVertex(v graph.VID) bool {
	_, ok := m.vertexTuple[v]
	return ok
}

// AttrVertexOf returns the leaf vertex projecting attribute attr of the
// tuple, if one was materialized.
func (m *Mapping) AttrVertexOf(rel string, tupleID int, attr string) (graph.VID, bool) {
	av, ok := m.attrVertex[rdb2rdf.TupleRef{Relation: rel, TupleID: tupleID}]
	if !ok {
		return graph.NoVertex, false
	}
	v, ok := av[attr]
	return v, ok
}

// IsForeignKeyEdge reports whether (from, to) is a tuple→tuple edge
// produced by an edge rule, returning the rule's label.
func (m *Mapping) IsForeignKeyEdge(from, to graph.VID) (string, bool) {
	a, ok := m.fkEdges[[2]graph.VID{from, to}]
	return a, ok
}

// TupleVertices returns every materialized tuple vertex of relation rel
// in tuple order.
func (m *Mapping) TupleVertices(rel string, count int) []graph.VID {
	out := make([]graph.VID, 0, count)
	for id := 0; id < count; id++ {
		if v, ok := m.VertexOf(rel, id); ok {
			out = append(out, v)
		}
	}
	return out
}

// NumTupleVertices reports how many vertices denote tuples.
func (m *Mapping) NumTupleVertices() int { return len(m.vertexTuple) }

func newMapping(sizeHint int) *Mapping {
	return &Mapping{
		tupleVertex: make(map[rdb2rdf.TupleRef]graph.VID, sizeHint),
		vertexTuple: make(map[graph.VID]rdb2rdf.TupleRef, sizeHint),
		attrVertex:  make(map[rdb2rdf.TupleRef]map[string]graph.VID, sizeHint),
		fkEdges:     make(map[[2]graph.VID]string),
		dangling:    make(map[danglingRef]bool),
	}
}

// compiled is the per-Def compilation plan resolved against a concrete
// schema: per-relation attribute/FK indexes the extraction loops read
// without repeated map lookups.
type compiled struct {
	def *Def
	db  *relational.Database

	// byRelation maps a relation name to its vertex rule index, or -1.
	byRelation map[string]int
	// singleStep maps (relation, fk attr) to the single-step edge rules
	// headed there, in definition order.
	singleStep map[[2]string][]int
	// multiStep lists the indices of join-path (≥ 2 steps) and closure
	// rules, in definition order.
	multiStep []int
	// project maps a vertex rule index to its projected attribute set
	// (nil when AllAttrs).
	project []map[string]bool
	// fkOf maps (relation, attr) to the referenced relation, for every
	// relation a rule touches.
	fkOf map[[2]string]string
}

// plan validates def against db's schemas and resolves the lookup
// tables the extraction loops use.
func plan(def *Def, db *relational.Database) (*compiled, error) {
	if err := def.check(); err != nil {
		return nil, err
	}
	c := &compiled{
		def:        def,
		db:         db,
		byRelation: make(map[string]int, len(def.Vertices)),
		singleStep: make(map[[2]string][]int),
		fkOf:       make(map[[2]string]string),
		project:    make([]map[string]bool, len(def.Vertices)),
	}
	for i := range def.Vertices {
		vr := &def.Vertices[i]
		rel := db.Relation(vr.Relation)
		if rel == nil {
			return nil, fmt.Errorf("view %s: vertex rule over unknown relation %s", def.Name, vr.Relation)
		}
		c.byRelation[vr.Relation] = i
		for _, p := range vr.Where {
			if rel.Schema.AttrIndex(p.Attr) < 0 {
				return nil, fmt.Errorf("view %s: vertex %s: predicate over unknown attribute %s",
					def.Name, vr.Relation, p.Attr)
			}
		}
		if vr.LabelAttr != "" && rel.Schema.AttrIndex(vr.LabelAttr) < 0 {
			return nil, fmt.Errorf("view %s: vertex %s: label attribute %s unknown",
				def.Name, vr.Relation, vr.LabelAttr)
		}
		if !vr.AllAttrs {
			c.project[i] = make(map[string]bool, len(vr.Attrs))
			for _, a := range vr.Attrs {
				if rel.Schema.AttrIndex(a) < 0 {
					return nil, fmt.Errorf("view %s: vertex %s: projected attribute %s unknown",
						def.Name, vr.Relation, a)
				}
				c.project[i][a] = true
			}
		}
		for _, fk := range rel.Schema.ForeignKeys {
			c.fkOf[[2]string{vr.Relation, fk.Attr}] = fk.RefRelation
		}
	}
	for i := range def.Edges {
		er := &def.Edges[i]
		relName := er.Relation
		if _, ok := c.byRelation[relName]; !ok {
			return nil, fmt.Errorf("view %s: edge %s: source relation %s has no vertex rule",
				def.Name, er.Label, relName)
		}
		// Resolve the FK chain step by step so a bad path fails at
		// definition time, not mid-extraction.
		for _, attr := range er.Path {
			rel := db.Relation(relName)
			refRel := ""
			for _, fk := range rel.Schema.ForeignKeys {
				if fk.Attr == attr {
					refRel = fk.RefRelation
					break
				}
			}
			if refRel == "" {
				return nil, fmt.Errorf("view %s: edge %s: %s.%s is not a foreign key",
					def.Name, er.Label, relName, attr)
			}
			if db.Relation(refRel) == nil {
				return nil, fmt.Errorf("view %s: edge %s: %s.%s references unknown relation %s",
					def.Name, er.Label, relName, attr, refRel)
			}
			c.fkOf[[2]string{relName, attr}] = refRel
			relName = refRel
		}
		if er.Closure > 0 {
			c.multiStep = append(c.multiStep, i)
		} else if len(er.Path) > 1 {
			c.multiStep = append(c.multiStep, i)
		} else {
			key := [2]string{er.Relation, er.Path[0]}
			c.singleStep[key] = append(c.singleStep[key], i)
		}
	}
	return c, nil
}

// Compile materializes def against db: a graph plus the tuple↔vertex
// mapping. Vertex ids are fixed by rule order then tuple order; edge
// emission interleaves projected attributes and single-step FK edges in
// schema-attribute order, then join-path and closure rules in
// definition order — for the built-in Direct view this reproduces
// rdb2rdf.Map byte for byte.
func Compile(def *Def, db *relational.Database) (*graph.Graph, *Mapping, error) {
	c, err := plan(def, db)
	if err != nil {
		return nil, nil, err
	}
	g := graph.New(db.NumTuples() * 4)
	m := newMapping(db.NumTuples())

	// Pass 1: tuple vertices, in vertex-rule order then tuple order.
	for i := range def.Vertices {
		vr := &def.Vertices[i]
		rel := db.Relation(vr.Relation)
		for _, t := range rel.Tuples {
			if !matchTuple(rel, t, vr.Where) {
				continue
			}
			ref := rdb2rdf.TupleRef{Relation: vr.Relation, TupleID: t.ID}
			v := g.AddVertex(vertexLabel(rel, t, vr))
			m.tupleVertex[ref] = v
			m.vertexTuple[v] = ref
			m.attrVertex[ref] = make(map[string]graph.VID, len(rel.Schema.Attrs))
		}
	}

	// Pass 2: per tuple, schema-attribute order — single-step FK edges
	// (degrading to leaves when dangling and projected) interleaved with
	// projected attribute leaves.
	for i := range def.Vertices {
		vr := &def.Vertices[i]
		rel := db.Relation(vr.Relation)
		for _, t := range rel.Tuples {
			ref := rdb2rdf.TupleRef{Relation: vr.Relation, TupleID: t.ID}
			ut, ok := m.tupleVertex[ref]
			if !ok {
				continue
			}
			c.extractTuple(g, m, i, rel, t, ut)
		}
	}

	// Pass 3: join paths and closures, in definition order.
	for _, ei := range c.multiStep {
		er := &def.Edges[ei]
		rel := db.Relation(er.Relation)
		for _, t := range rel.Tuples {
			ut, ok := m.tupleVertex[rdb2rdf.TupleRef{Relation: er.Relation, TupleID: t.ID}]
			if !ok {
				continue
			}
			c.extractPaths(g, m, er, t, ut)
		}
	}
	return g, m, nil
}

// matchTuple evaluates a vertex rule's predicate conjunction over one
// tuple. A predicate over a null attribute never holds.
//
//herlint:hot
func matchTuple(rel *relational.Relation, t relational.Tuple, where []Predicate) bool {
	for i := range where {
		p := &where[i]
		val := t.Values[rel.Schema.AttrIndex(p.Attr)]
		if relational.IsNull(val) {
			return false
		}
		switch p.Op {
		case "=":
			if val != p.Value {
				return false
			}
		case "!=":
			if val == p.Value {
				return false
			}
		case "~":
			if !strings.Contains(val, p.Value) {
				return false
			}
		}
	}
	return true
}

// vertexLabel picks the vertex label: the LabelAttr value when set and
// non-null, the relation name otherwise.
func vertexLabel(rel *relational.Relation, t relational.Tuple, vr *VertexRule) string {
	if vr.LabelAttr != "" {
		if v := t.Values[rel.Schema.AttrIndex(vr.LabelAttr)]; !relational.IsNull(v) {
			return v
		}
	}
	return vr.Relation
}

// extractTuple runs pass 2 for one materialized tuple: walk the schema
// attributes in order; a single-step FK edge rule headed at an
// attribute wins over its leaf projection when the target resolves to a
// materialized tuple, degrades to the leaf when dangling-and-projected,
// and is skipped otherwise. Dangling lookups are recorded so a later
// tuple resolving one invalidates append-only maintenance.
//
//herlint:hot
func (c *compiled) extractTuple(g *graph.Graph, m *Mapping, ruleIdx int, rel *relational.Relation, t relational.Tuple, ut graph.VID) {
	proj := c.project[ruleIdx]
	ref := rdb2rdf.TupleRef{Relation: rel.Schema.Name, TupleID: t.ID}
	for i, attr := range rel.Schema.Attrs {
		val := t.Values[i]
		if relational.IsNull(val) {
			continue
		}
		projected := proj == nil || proj[attr]
		rules := c.singleStep[[2]string{rel.Schema.Name, attr}]
		edged := false
		for _, ei := range rules {
			er := &c.def.Edges[ei]
			refRel := c.fkOf[[2]string{rel.Schema.Name, attr}]
			target := c.db.Relation(refRel)
			rt, ok := target.LookupKey(val)
			if !ok {
				m.dangling[danglingRef{Relation: refRel, Key: val}] = true
				continue
			}
			ut2, mapped := m.tupleVertex[rdb2rdf.TupleRef{Relation: refRel, TupleID: rt.ID}]
			if !mapped {
				continue
			}
			g.MustAddEdge(ut, ut2, er.Label)
			m.fkEdges[[2]graph.VID{ut, ut2}] = er.Label
			edged = true
		}
		if edged || !projected {
			continue
		}
		av := g.AddVertex(val)
		g.MustAddEdge(ut, av, attr)
		m.attrVertex[ref][attr] = av
	}
}

// extractPaths runs pass 3 for one materialized source tuple: follow
// the rule's FK chain (or closure) and add an edge to every
// materialized endpoint. Intermediate tuples need not be materialized.
//
//herlint:hot
func (c *compiled) extractPaths(g *graph.Graph, m *Mapping, er *EdgeRule, t relational.Tuple, ut graph.VID) {
	if er.Closure > 0 {
		c.extractClosure(g, m, er, t, ut)
		return
	}
	relName := er.Relation
	cur := t
	for _, attr := range er.Path {
		rel := c.db.Relation(relName)
		ai := rel.Schema.AttrIndex(attr)
		if ai < 0 {
			return
		}
		val := cur.Values[ai]
		if relational.IsNull(val) {
			return
		}
		refRel := c.fkOf[[2]string{relName, attr}]
		target := c.db.Relation(refRel)
		rt, ok := target.LookupKey(val)
		if !ok {
			m.dangling[danglingRef{Relation: refRel, Key: val}] = true
			return
		}
		relName, cur = refRel, rt
	}
	ut2, mapped := m.tupleVertex[rdb2rdf.TupleRef{Relation: relName, TupleID: cur.ID}]
	if !mapped || ut2 == ut {
		return
	}
	g.MustAddEdge(ut, ut2, er.Label)
	m.fkEdges[[2]graph.VID{ut, ut2}] = er.Label
}

// extractClosure walks the functional FK chain up to the rule's depth,
// adding an edge to every materialized tuple reached. The chain stops
// at a null value, a dangling key, a missing FK in the reached
// relation, or a revisit (cycle).
//
//herlint:hot
func (c *compiled) extractClosure(g *graph.Graph, m *Mapping, er *EdgeRule, t relational.Tuple, ut graph.VID) {
	attr := er.Path[0]
	relName := er.Relation
	cur := t
	visited := make(map[rdb2rdf.TupleRef]bool, er.Closure)
	visited[rdb2rdf.TupleRef{Relation: relName, TupleID: t.ID}] = true
	for hop := 0; hop < er.Closure; hop++ {
		rel := c.db.Relation(relName)
		ai := rel.Schema.AttrIndex(attr)
		if ai < 0 {
			return
		}
		refRel, isFK := c.fkOf[[2]string{relName, attr}]
		if !isFK {
			// The chain wandered into a relation where attr is not a
			// declared FK; resolve it once so recompiles stay cheap.
			for _, fk := range rel.Schema.ForeignKeys {
				if fk.Attr == attr {
					refRel, isFK = fk.RefRelation, true
					c.fkOf[[2]string{relName, attr}] = refRel
					break
				}
			}
			if !isFK {
				return
			}
		}
		val := cur.Values[ai]
		if relational.IsNull(val) {
			return
		}
		target := c.db.Relation(refRel)
		if target == nil {
			return
		}
		rt, ok := target.LookupKey(val)
		if !ok {
			m.dangling[danglingRef{Relation: refRel, Key: val}] = true
			return
		}
		nref := rdb2rdf.TupleRef{Relation: refRel, TupleID: rt.ID}
		if visited[nref] {
			return
		}
		visited[nref] = true
		if ut2, mapped := m.tupleVertex[nref]; mapped && ut2 != ut {
			g.MustAddEdge(ut, ut2, er.Label)
			m.fkEdges[[2]graph.VID{ut, ut2}] = er.Label
		}
		relName, cur = refRel, rt
	}
}
