// Package view implements rule-defined graph views over a relational
// database: a declarative rule language (and an equivalent Go builder
// API) describing which tuples become vertices, which attributes are
// projected as leaf vertices, and which foreign-key join paths and
// bounded FK closures become edges. Compiling a Def against a
// relational.Database materializes a graph.Graph plus a tuple↔vertex
// Mapping, so every view is a first-class linking target alongside the
// canonical RDB2RDF direct mapping — which is itself expressible as the
// built-in Direct view, byte-identical to rdb2rdf.Map output (the
// differential gate in internal/testkit keeps this honest).
//
// The design follows GraphGen's "graphs as declarative views over
// relational data" (PAPERS.md): the paper's framework only requires
// *some* schema-to-graph mapping f_D, so one deployment can serve many
// graph shapes over the same database.
package view

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// MaxClosureDepth bounds the depth of closure rules: FK chains are
// functional (one value per tuple), so a deeper bound only lengthens
// the chain walk without adding expressiveness worth the cost.
const MaxClosureDepth = 64

// maxRules bounds the total number of rules a Def may carry, so a
// hostile or fuzzed definition cannot make compilation quadratic in
// attacker-controlled input.
const maxRules = 4096

// Predicate is one vertex-rule filter: attr op value. Supported ops
// are "=" (equality), "!=" (inequality) and "~" (substring).
type Predicate struct {
	Attr  string
	Op    string
	Value string
}

// VertexRule materializes the tuples of one relation as vertices.
type VertexRule struct {
	// Relation names the source relation. At most one vertex rule per
	// relation may exist in a Def, so the tuple→vertex mapping stays 1-1.
	Relation string
	// Where filters tuples; every predicate must hold (conjunction).
	// A predicate over a null attribute never holds.
	Where []Predicate
	// LabelAttr labels the vertex with the tuple's value of this
	// attribute instead of the relation name; a null value falls back
	// to the relation name. Empty means "label with the relation name",
	// the RDB2RDF convention.
	LabelAttr string
	// Attrs lists the attributes projected as leaf vertices (with an
	// edge labeled by the attribute name). AllAttrs projects every
	// attribute, as the direct mapping does.
	Attrs    []string
	AllAttrs bool
}

// EdgeRule adds tuple→tuple edges by following foreign keys.
type EdgeRule struct {
	// Label is the edge label in the materialized graph.
	Label string
	// Relation is the source relation whose tuples grow the edges.
	Relation string
	// Path is the FK attribute chain to follow: Path[0] is an FK
	// attribute of Relation, Path[1] an FK attribute of the relation it
	// references, and so on. A single-step path behaves exactly like the
	// direct mapping's FK edge (including degradation of a dangling FK
	// to an attribute leaf when the attribute is projected); longer
	// paths are join-path projections whose intermediate tuples need not
	// be materialized.
	Path []string
	// Closure, when > 0, turns a single-step rule into a bounded FK
	// closure: from each source tuple the (functional) FK chain is
	// followed transitively up to Closure hops, adding an edge to every
	// materialized tuple reached.
	Closure int
}

// Def is one named view definition: ordered vertex rules plus ordered
// edge rules. Rule order is semantic — it fixes vertex ids and edge
// emission order, which the byte-identity gate against rdb2rdf.Map
// depends on.
type Def struct {
	Name     string
	Vertices []VertexRule
	Edges    []EdgeRule
}

// NewDef starts a view definition for the builder API.
func NewDef(name string) *Def { return &Def{Name: name} }

// Vertex appends a vertex rule for relation rel and returns it for
// chaining (Where / Label / Project / ProjectAll).
func (d *Def) Vertex(rel string) *VertexRule {
	d.Vertices = append(d.Vertices, VertexRule{Relation: rel})
	return &d.Vertices[len(d.Vertices)-1]
}

// Filter appends a predicate to the rule's Where conjunction.
func (r *VertexRule) Filter(attr, op, value string) *VertexRule {
	r.Where = append(r.Where, Predicate{Attr: attr, Op: op, Value: value})
	return r
}

// Label sets the attribute whose value labels the vertex.
func (r *VertexRule) Label(attr string) *VertexRule {
	r.LabelAttr = attr
	return r
}

// Project appends attributes to the projection list.
func (r *VertexRule) Project(attrs ...string) *VertexRule {
	r.Attrs = append(r.Attrs, attrs...)
	return r
}

// ProjectAll projects every attribute of the relation.
func (r *VertexRule) ProjectAll() *VertexRule {
	r.AllAttrs = true
	return r
}

// Edge appends a join-path edge rule: follow the FK chain path from
// tuples of rel, labeling the resulting edges label.
func (d *Def) Edge(label, rel string, path ...string) *Def {
	d.Edges = append(d.Edges, EdgeRule{Label: label, Relation: rel, Path: path})
	return d
}

// ClosureEdge appends a bounded FK-closure rule: follow fk transitively
// up to depth hops from tuples of rel.
func (d *Def) ClosureEdge(label, rel, fk string, depth int) *Def {
	d.Edges = append(d.Edges, EdgeRule{Label: label, Relation: rel, Path: []string{fk}, Closure: depth})
	return d
}

// RuleCount reports the total number of rules (vertex + edge).
func (d *Def) RuleCount() int { return len(d.Vertices) + len(d.Edges) }

// String renders the definition back in the rule language; the result
// reparses to an equivalent definition (the fuzz target checks this
// round trip).
func (d *Def) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "view %s\n", d.Name)
	for _, vr := range d.Vertices {
		fmt.Fprintf(&b, "vertex %s", quoteTok(vr.Relation))
		for i, p := range vr.Where {
			if i == 0 {
				b.WriteString(" where ")
			} else {
				b.WriteString(" and ")
			}
			fmt.Fprintf(&b, "%s %s %s", quoteTok(p.Attr), p.Op, strconv.Quote(p.Value))
		}
		if vr.LabelAttr != "" {
			fmt.Fprintf(&b, " label %s", quoteTok(vr.LabelAttr))
		}
		b.WriteByte('\n')
		if vr.AllAttrs {
			fmt.Fprintf(&b, "attrs %s *\n", quoteTok(vr.Relation))
		} else if len(vr.Attrs) > 0 {
			fmt.Fprintf(&b, "attrs %s", quoteTok(vr.Relation))
			for _, a := range vr.Attrs {
				fmt.Fprintf(&b, " %s", quoteTok(a))
			}
			b.WriteByte('\n')
		}
	}
	for _, er := range d.Edges {
		if er.Closure > 0 {
			fmt.Fprintf(&b, "closure %s from %s via %s depth %d\n",
				quoteTok(er.Label), quoteTok(er.Relation), quoteTok(er.Path[0]), er.Closure)
			continue
		}
		fmt.Fprintf(&b, "edge %s from %s via %s\n",
			quoteTok(er.Label), quoteTok(er.Relation), quoteTok(strings.Join(er.Path, ".")))
	}
	return b.String()
}

// quoteTok renders a token for String(): bare when it survives the
// tokenizer unchanged, double-quoted otherwise.
func quoteTok(s string) string {
	bare := s != "" && s != "*"
	for i := 0; bare && i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '"', '#', '\\':
			bare = false
		}
	}
	if bare {
		return s
	}
	return strconv.Quote(s)
}

// check validates the definition's internal consistency — the checks
// that need no database: name and rule shapes, rule-count bounds, at
// most one vertex rule per relation. Parse and Compile both run it.
func (d *Def) check() error {
	if !validName(d.Name) {
		return fmt.Errorf("view: invalid view name %q", d.Name)
	}
	if d.RuleCount() == 0 {
		return fmt.Errorf("view %s: no rules", d.Name)
	}
	if d.RuleCount() > maxRules {
		return fmt.Errorf("view %s: too many rules (%d > %d)", d.Name, d.RuleCount(), maxRules)
	}
	seen := make(map[string]bool, len(d.Vertices))
	for _, vr := range d.Vertices {
		if vr.Relation == "" {
			return fmt.Errorf("view %s: vertex rule without relation", d.Name)
		}
		if seen[vr.Relation] {
			return fmt.Errorf("view %s: duplicate vertex rule for relation %s", d.Name, vr.Relation)
		}
		seen[vr.Relation] = true
		for _, p := range vr.Where {
			switch p.Op {
			case "=", "!=", "~":
			default:
				return fmt.Errorf("view %s: vertex %s: unknown operator %q", d.Name, vr.Relation, p.Op)
			}
			if p.Attr == "" {
				return fmt.Errorf("view %s: vertex %s: predicate without attribute", d.Name, vr.Relation)
			}
		}
		if len(vr.Attrs) > 0 && vr.AllAttrs {
			return fmt.Errorf("view %s: vertex %s: both attrs list and attrs *", d.Name, vr.Relation)
		}
	}
	for _, er := range d.Edges {
		if er.Label == "" || er.Relation == "" {
			return fmt.Errorf("view %s: edge rule needs a label and a source relation", d.Name)
		}
		if len(er.Path) == 0 {
			return fmt.Errorf("view %s: edge %s: empty foreign-key path", d.Name, er.Label)
		}
		for _, a := range er.Path {
			if a == "" {
				return fmt.Errorf("view %s: edge %s: empty path step", d.Name, er.Label)
			}
		}
		if er.Closure < 0 || er.Closure > MaxClosureDepth {
			return fmt.Errorf("view %s: closure %s: depth %d out of range [1,%d]",
				d.Name, er.Label, er.Closure, MaxClosureDepth)
		}
		if er.Closure > 0 && len(er.Path) != 1 {
			return fmt.Errorf("view %s: closure %s: closure follows exactly one foreign key", d.Name, er.Label)
		}
	}
	return nil
}

// validName reports whether s is usable as a view name: non-empty ASCII
// letters, digits, '_', '-', '.' — safe in URLs, flags and metric labels.
func validName(s string) bool {
	if s == "" || len(s) > 128 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.':
		default:
			return false
		}
	}
	return true
}

// sortedNames returns map keys in sorted order (small helper shared by
// the canonical dump and the registry).
func sortedNames[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
