package view

import "her/internal/relational"

// DirectName is the reserved name of the built-in direct view — the
// W3C RDB2RDF direct mapping expressed in the rule language.
const DirectName = "direct"

// Direct builds the definition of the canonical direct mapping over
// db's schema: one vertex rule per relation (sorted name order, no
// predicate, relation-name labels, all attributes projected) and one
// single-step edge rule per declared foreign key (schema declaration
// order), labeled with the FK attribute name. Compiling it reproduces
// rdb2rdf.Map byte for byte — graph and mapping alike — which the
// testkit differential gate pins on the golden database and on
// generated schemas.
func Direct(db *relational.Database) *Def {
	d := NewDef(DirectName)
	for _, relName := range db.RelationNames() {
		d.Vertex(relName).ProjectAll()
	}
	for _, relName := range db.RelationNames() {
		rel := db.Relation(relName)
		for _, fk := range rel.Schema.ForeignKeys {
			d.Edge(fk.Attr, relName, fk.Attr)
		}
	}
	return d
}
