package view

import (
	"reflect"
	"testing"
)

// FuzzViewRuleParse holds the parser to its contract: arbitrary input
// is either rejected with an error or parsed into definitions whose
// String() rendering reparses to the same definitions. The parser must
// never panic — hostile rule files reach it through hercli -views and
// herserve -views.
func FuzzViewRuleParse(f *testing.F) {
	seeds := []string{
		"view v\nvertex main\n",
		"view direct-ish\nvertex main where color = red label key\nattrs main *\n",
		"view j\nvertex a\nvertex b\nattrs a x y\nedge e from a via f.g\nclosure c from b via p depth 3\n",
		"view q\nvertex r where a ~ \"x y\" and b != \"\\\"q\\\"\"\n",
		"# comment only\nview c\nvertex m # trailing\n",
		"view bad\nvertex\n",
		"vertex before view\n",
		"view dup\nvertex m\nvertex m\n",
		"view v\nclosure c from r via f depth 99\n",
		"view v\nvertex \"sp ace\" label \"with#hash\"\nattrs \"sp ace\" \"a b\"\n",
		"view v\nvertex m\nedge e from m via \"\"\n",
		"view n1\nvertex a\nview n2\nvertex b\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		defs, err := Parse(src)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		if len(defs) == 0 {
			t.Fatal("Parse returned no definitions and no error")
		}
		for _, d := range defs {
			re, err := Parse([]byte(d.String()))
			if err != nil {
				t.Fatalf("String() output does not reparse: %v\nrendered:\n%s", err, d.String())
			}
			if len(re) != 1 {
				t.Fatalf("String() of one def reparsed to %d defs", len(re))
			}
			if !reflect.DeepEqual(normalizeDef(d), normalizeDef(re[0])) {
				t.Fatalf("round trip diverges:\noriginal:  %#v\nreparsed: %#v\nrendered:\n%s",
					d, re[0], d.String())
			}
		}
	})
}

// normalizeDef maps nil and empty rule slices to a comparable shape:
// the builder and the parser may differ on nil-vs-empty for slices the
// definition semantics treat identically.
func normalizeDef(d *Def) Def {
	out := Def{Name: d.Name}
	out.Vertices = append([]VertexRule{}, d.Vertices...)
	out.Edges = append([]EdgeRule{}, d.Edges...)
	for i := range out.Vertices {
		out.Vertices[i].Where = append([]Predicate{}, out.Vertices[i].Where...)
		out.Vertices[i].Attrs = append([]string{}, out.Vertices[i].Attrs...)
	}
	for i := range out.Edges {
		out.Edges[i].Path = append([]string{}, out.Edges[i].Path...)
	}
	return out
}
