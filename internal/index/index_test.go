package index

import (
	"strings"
	"testing"

	"her/internal/graph"
)

func buildGraph() (*graph.Graph, []graph.VID) {
	g := graph.New()
	v0 := g.AddVertex("Dame Basketball Shoes")
	v1 := g.AddVertex("Lightweight Running Shoes")
	v2 := g.AddVertex("Germany")
	v3 := g.AddVertex("Dame Gen 7")
	return g, []graph.VID{v0, v1, v2, v3}
}

func TestLookupSharedTokens(t *testing.T) {
	g, vs := buildGraph()
	ix := Build(g, nil)
	got := ix.Lookup("Dame Basketball Shoes D7", 1)
	// v0 shares 3 tokens, v1 shares 1 ("shoes"), v3 shares 1 ("dame").
	if len(got) != 3 {
		t.Fatalf("Lookup = %v", got)
	}
	if got[0] != vs[0] {
		t.Errorf("highest-overlap vertex should come first, got %v", got)
	}
	// minShared=2 keeps only v0.
	got2 := ix.Lookup("Dame Basketball Shoes D7", 2)
	if len(got2) != 1 || got2[0] != vs[0] {
		t.Errorf("minShared=2 Lookup = %v", got2)
	}
	if hits := ix.Lookup("nonexistent tokens", 1); hits != nil {
		t.Errorf("no-match lookup = %v", hits)
	}
}

func TestBuildFilter(t *testing.T) {
	g, vs := buildGraph()
	ix := Build(g, func(v graph.VID) bool { return v == vs[2] })
	if hits := ix.Lookup("Germany", 1); len(hits) != 1 || hits[0] != vs[2] {
		t.Errorf("filtered lookup = %v", hits)
	}
	if hits := ix.Lookup("Shoes", 1); hits != nil {
		t.Errorf("filtered-out vertex returned: %v", hits)
	}
	if ix.NumTokens() != 1 {
		t.Errorf("NumTokens = %d", ix.NumTokens())
	}
}

func TestDuplicateTokensCountOnce(t *testing.T) {
	g := graph.New()
	v := g.AddVertex("red red red")
	ix := Build(g, nil)
	if p := ix.Postings("red"); len(p) != 1 || p[0] != v {
		t.Errorf("Postings(red) = %v", p)
	}
	// Query with repeated token should not inflate overlap.
	if hits := ix.Lookup("red red", 2); hits != nil {
		t.Errorf("repeated query token inflated overlap: %v", hits)
	}
}

func TestLookupDeterministicOrder(t *testing.T) {
	g := graph.New()
	a := g.AddVertex("alpha common")
	b := g.AddVertex("beta common")
	ix := Build(g, nil)
	h1 := ix.Lookup("common", 1)
	h2 := ix.Lookup("common", 1)
	if len(h1) != 2 || h1[0] != h2[0] || h1[1] != h2[1] {
		t.Errorf("order not deterministic: %v vs %v", h1, h2)
	}
	if h1[0] != a || h1[1] != b {
		t.Errorf("ties should break by id: %v", h1)
	}
}

func TestNeighborhoodDoc(t *testing.T) {
	g := graph.New()
	e := g.AddVertex("item")
	v1 := g.AddVertex("red")
	v2 := g.AddVertex("Dame Seven")
	g.MustAddEdge(e, v1, "hasColor")
	g.MustAddEdge(e, v2, "names")
	doc := NeighborhoodDoc(g)(e)
	for _, want := range []string{"item", "red", "Dame Seven"} {
		if !strings.Contains(doc, want) {
			t.Errorf("doc %q missing %q", doc, want)
		}
	}
	// Indexing with the neighborhood doc finds the entity by its values.
	ix := BuildDocs(g, func(v graph.VID) bool { return !g.IsLeaf(v) }, NeighborhoodDoc(g))
	hits := ix.Lookup("red dame", 2)
	if len(hits) != 1 || hits[0] != e {
		t.Errorf("neighborhood lookup = %v", hits)
	}
}

// TestNeighborhoodDocExactFormat pins the exact document string
// (label, then each out-neighbor label, space-separated, in edge
// order). The strings.Builder rewrite of NeighborhoodDoc must produce
// byte-identical docs to the old "+"-concatenation, or previously
// indexed tokenizations would shift.
func TestNeighborhoodDocExactFormat(t *testing.T) {
	g := graph.New()
	e := g.AddVertex("item")
	v1 := g.AddVertex("red")
	v2 := g.AddVertex("Dame Seven")
	g.MustAddEdge(e, v1, "hasColor")
	g.MustAddEdge(e, v2, "names")
	naive := g.Label(e)
	for _, edge := range g.Out(e) {
		naive += " " + g.Label(edge.To)
	}
	if got := NeighborhoodDoc(g)(e); got != naive {
		t.Errorf("NeighborhoodDoc = %q, want %q", got, naive)
	}
	// A vertex with no out-edges is just its own label, no trailing space.
	if got := NeighborhoodDoc(g)(v1); got != "red" {
		t.Errorf("leaf doc = %q, want %q", got, "red")
	}
}

// TestLookupNoMatchNil pins the no-match contract: Lookup returns nil,
// never a non-nil empty slice. The capacity-preallocated rewrite
// regressed this once; callers distinguish "no candidates" by == nil.
func TestLookupNoMatchNil(t *testing.T) {
	g, _ := buildGraph()
	ix := Build(g, nil)
	if got := ix.Lookup("zzz qqq", 1); got != nil {
		t.Errorf("Lookup(no shared tokens) = %#v, want nil", got)
	}
	if got := ix.Lookup("dame", 5); got != nil {
		t.Errorf("Lookup(minShared unreachable) = %#v, want nil", got)
	}
}
