// Package index implements the inverted indices HER uses for candidate
// generation ("blocking"; Sections VI and VII): vertex labels are indexed
// by word token, and candidate vertices for a query label are those
// sharing at least one token, optionally ranked by shared-token count.
package index

import (
	"sort"
	"strings"

	"her/internal/graph"
	"her/internal/text"
)

// Inverted is a token → vertices index over a graph's vertex labels.
type Inverted struct {
	postings map[string][]graph.VID
}

// Build indexes every vertex of g whose id satisfies the filter (nil
// means all vertices), using the vertex label as its document.
func Build(g *graph.Graph, filter func(graph.VID) bool) *Inverted {
	return BuildDocs(g, filter, nil)
}

// BuildDocs indexes vertices with a custom document function — e.g. the
// vertex label plus its 1-hop neighbor labels, the paper's "critical
// information" blocking. A nil docFn means the vertex label alone.
func BuildDocs(g *graph.Graph, filter func(graph.VID) bool, docFn func(graph.VID) string) *Inverted {
	ix := &Inverted{postings: make(map[string][]graph.VID)}
	// Per-document token dedup set, hoisted and cleared per vertex
	// instead of reallocated.
	seen := make(map[string]bool)
	for i := 0; i < g.NumVertices(); i++ {
		v := graph.VID(i)
		if filter != nil && !filter(v) {
			continue
		}
		doc := g.Label(v)
		if docFn != nil {
			doc = docFn(v)
		}
		clear(seen)
		for _, tok := range text.Tokenize(doc) {
			if !seen[tok] {
				seen[tok] = true
				ix.postings[tok] = append(ix.postings[tok], v)
			}
		}
	}
	return ix
}

// NeighborhoodDoc returns a document function that concatenates a
// vertex's own label with the labels of its out-neighbors.
func NeighborhoodDoc(g *graph.Graph) func(graph.VID) string {
	return func(v graph.VID) string {
		var b strings.Builder
		b.WriteString(g.Label(v))
		for _, e := range g.Out(v) {
			b.WriteByte(' ')
			b.WriteString(g.Label(e.To))
		}
		return b.String()
	}
}

// NumTokens returns the number of distinct indexed tokens.
func (ix *Inverted) NumTokens() int { return len(ix.postings) }

// Lookup returns vertices sharing at least minShared tokens with the
// query label, ordered by descending shared-token count (ties by id).
// minShared < 1 is treated as 1.
func (ix *Inverted) Lookup(label string, minShared int) []graph.VID {
	if minShared < 1 {
		minShared = 1
	}
	counts := make(map[graph.VID]int)
	seen := make(map[string]bool)
	for _, tok := range text.Tokenize(label) {
		if seen[tok] {
			continue
		}
		seen[tok] = true
		for _, v := range ix.postings[tok] {
			counts[v]++
		}
	}
	out := make([]graph.VID, 0, len(counts))
	for v, c := range counts {
		if c >= minShared {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return nil // no-match contract: nil, not an empty slice
	}
	sort.Slice(out, func(a, b int) bool {
		ca, cb := counts[out[a]], counts[out[b]]
		if ca != cb {
			return ca > cb
		}
		return out[a] < out[b]
	})
	return out
}

// Postings returns the vertices indexed under a single token.
func (ix *Inverted) Postings(token string) []graph.VID {
	return ix.postings[token]
}
