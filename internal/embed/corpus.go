package embed

import (
	"math/rand"

	"her/internal/graph"
)

// WalkCorpus collects edge-label sentences by randomly walking a graph, as
// the paper does to build the pre-training corpus C for the BERT model in
// M_ρ (Section IV). Each walk contributes one "sentence": the sequence of
// edge labels it traverses. The result is deterministic for a given seed.
func WalkCorpus(g *graph.Graph, walks, maxLen int, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	nv := g.NumVertices()
	if nv == 0 || walks <= 0 {
		return nil
	}
	corpus := make([][]string, 0, walks)
	for w := 0; w < walks; w++ {
		v := graph.VID(rng.Intn(nv))
		var sentence []string
		for step := 0; step < maxLen; step++ {
			out := g.Out(v)
			if len(out) == 0 {
				break
			}
			e := out[rng.Intn(len(out))]
			sentence = append(sentence, e.Label)
			v = e.To
		}
		if len(sentence) > 0 {
			corpus = append(corpus, sentence)
		}
	}
	return corpus
}

// LabelVocabulary returns the distinct edge labels of g in first-seen
// order, the vocabulary for the path language model and metric network.
func LabelVocabulary(g *graph.Graph) []string {
	seen := make(map[string]bool)
	var vocab []string
	for v := 0; v < g.NumVertices(); v++ {
		for _, e := range g.Out(graph.VID(v)) {
			if !seen[e.Label] {
				seen[e.Label] = true
				vocab = append(vocab, e.Label)
			}
		}
	}
	return vocab
}
