// Package embed provides the deterministic sentence-embedding substrate
// that stands in for the paper's Sentence-BERT / BERT encoders (DESIGN.md
// substitution 1). Labels are embedded by signed feature hashing of word
// unigrams and character 3-grams into a fixed-dimension space; the cosine
// of two embeddings then reflects lexical/sub-lexical closeness, and the
// trained metric network of M_ρ supplies the learned, non-lexical part of
// semantic similarity, as BERT fine-tuning does in the paper.
package embed

import (
	"hash/fnv"
	"sync"

	"her/internal/text"
)

// Encoder embeds label strings into unit vectors of dimension Dim.
// It is safe for concurrent use and caches embeddings.
type Encoder struct {
	dim        int
	gramWeight float64

	mu    sync.RWMutex
	cache map[string][]float64
}

// NewEncoder creates an encoder of the given output dimension. The paper's
// default sentence encoder corresponds to dimension 128 here; Table VII
// sweeps {100, 200, 300}.
func NewEncoder(dim int) *Encoder {
	if dim <= 0 {
		dim = 128
	}
	return &Encoder{dim: dim, gramWeight: 0.9, cache: make(map[string][]float64)}
}

// Dim returns the embedding dimension.
func (e *Encoder) Dim() int { return e.dim }

// hashSigned maps a term into (slot, ±1) pairs under the given seed.
func hashSigned(term string, seed uint32, dim int) (int, float64) {
	h := fnv.New32a()
	var b [4]byte
	b[0] = byte(seed)
	b[1] = byte(seed >> 8)
	b[2] = byte(seed >> 16)
	b[3] = byte(seed >> 24)
	h.Write(b[:])
	h.Write([]byte(term))
	v := h.Sum32()
	slot := int(v % uint32(dim))
	sign := 1.0
	if (v>>16)&1 == 1 {
		sign = -1.0
	}
	return slot, sign
}

// Embed returns the unit-norm embedding x_s of label s. The zero vector is
// returned for labels with no tokens.
func (e *Encoder) Embed(s string) []float64 {
	e.mu.RLock()
	if v, ok := e.cache[s]; ok {
		e.mu.RUnlock()
		return v
	}
	e.mu.RUnlock()

	v := e.embed(s)

	e.mu.Lock()
	e.cache[s] = v
	e.mu.Unlock()
	return v
}

func (e *Encoder) embed(s string) []float64 {
	v := make([]float64, e.dim)
	tokens := text.Tokenize(s)
	if len(tokens) == 0 {
		return v
	}
	// Word unigrams: three hash projections per token, full weight.
	for _, tok := range tokens {
		for seed := uint32(0); seed < 3; seed++ {
			slot, sign := hashSigned(tok, seed, e.dim)
			v[slot] += sign
		}
	}
	// Character 3-grams: sub-lexical signal so that e.g. "brandCountry"
	// and "country" share mass; weighted down.
	for _, g := range text.NGrams(s, 3) {
		slot, sign := hashSigned(g, 7, e.dim)
		v[slot] += sign * e.gramWeight
	}
	return Normalize(v)
}

// EmbedSequence embeds a sequence of labels (e.g. edge labels on a path)
// by position-weighted averaging, approximating the sequential encoding
// the paper's BERT gives path strings. Earlier labels get slightly more
// weight, matching the intuition that the first predicate dominates the
// association's meaning.
func (e *Encoder) EmbedSequence(labels []string) []float64 {
	v := make([]float64, e.dim)
	if len(labels) == 0 {
		return v
	}
	for i, l := range labels {
		w := 1.0 / float64(i+1)
		lv := e.Embed(l)
		for j := range v {
			v[j] += w * lv[j]
		}
	}
	return Normalize(v)
}

// MvScore computes the paper's vertex score
// M_v(a, b) = (|cos(x_a, x_b)| + cos(x_a, x_b)) / 2 ∈ [0, 1], with a
// containment boost: when every token of the shorter label occurs in the
// longer one, the labels almost surely denote the same value formatted
// differently (the paper's "Dame Basketball Shoes D7" vs "Dame
// Basketball Shoes"), so the score is at least 0.9.
func (e *Encoder) MvScore(a, b string) float64 {
	if a == b && a != "" {
		return 1
	}
	c := Cosine(e.Embed(a), e.Embed(b))
	if c < 0 {
		c = 0
	}
	if c < 0.9 && tokensContained(a, b) {
		return 0.9
	}
	return c
}

// tokensContained reports whether the token set of the shorter label is
// a non-empty subset of the longer one's.
func tokensContained(a, b string) bool {
	ta, tb := text.Tokenize(a), text.Tokenize(b)
	if len(ta) == 0 || len(tb) == 0 {
		return false
	}
	short, long := ta, tb
	if len(tb) < len(ta) {
		short, long = tb, ta
	}
	set := make(map[string]bool, len(long))
	for _, t := range long {
		set[t] = true
	}
	for _, t := range short {
		if !set[t] {
			return false
		}
	}
	return true
}
