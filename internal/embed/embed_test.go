package embed

import (
	"math"
	"testing"
	"testing/quick"

	"her/internal/graph"
)

func TestVectorOps(t *testing.T) {
	a := []float64{3, 4}
	if Norm(a) != 5 {
		t.Errorf("Norm = %f", Norm(a))
	}
	b := []float64{1, 0}
	if Dot(a, b) != 3 {
		t.Errorf("Dot = %f", Dot(a, b))
	}
	Normalize(a)
	if math.Abs(Norm(a)-1) > 1e-12 {
		t.Errorf("normalized norm = %f", Norm(a))
	}
	z := []float64{0, 0}
	Normalize(z)
	if z[0] != 0 || z[1] != 0 {
		t.Error("zero vector should normalize to itself")
	}
	if Cosine(z, a) != 0 {
		t.Error("cosine with zero vector should be 0")
	}
	if c := Cosine([]float64{1, 0}, []float64{1, 0}); math.Abs(c-1) > 1e-12 {
		t.Errorf("cosine identical = %f", c)
	}
	if c := Cosine([]float64{1, 0}, []float64{-1, 0}); math.Abs(c+1) > 1e-12 {
		t.Errorf("cosine opposite = %f", c)
	}
	cc := Concat([]float64{1}, []float64{2, 3})
	if len(cc) != 3 || cc[2] != 3 {
		t.Errorf("Concat = %v", cc)
	}
	ad := AbsDiff([]float64{1, -2}, []float64{3, 2})
	if ad[0] != 2 || ad[1] != 4 {
		t.Errorf("AbsDiff = %v", ad)
	}
	hp := Hadamard([]float64{2, 3}, []float64{4, 5})
	if hp[0] != 8 || hp[1] != 15 {
		t.Errorf("Hadamard = %v", hp)
	}
	dst := []float64{1, 1}
	Add(dst, []float64{2, 3})
	if dst[0] != 3 || dst[1] != 4 {
		t.Errorf("Add = %v", dst)
	}
	Scale(dst, 2)
	if dst[0] != 6 {
		t.Errorf("Scale = %v", dst)
	}
}

func TestEmbedDeterministicAndUnit(t *testing.T) {
	e := NewEncoder(64)
	v1 := e.Embed("Dame Basketball Shoes D7")
	v2 := e.Embed("Dame Basketball Shoes D7")
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("embedding not deterministic")
		}
	}
	if math.Abs(Norm(v1)-1) > 1e-9 {
		t.Errorf("embedding not unit norm: %f", Norm(v1))
	}
	if Norm(e.Embed("")) != 0 {
		t.Error("empty label should embed to zero vector")
	}
}

func TestMvScoreProperties(t *testing.T) {
	e := NewEncoder(128)
	if s := e.MvScore("Germany", "Germany"); s != 1 {
		t.Errorf("MvScore identical = %f", s)
	}
	// Shared-token pairs should beat disjoint pairs.
	close := e.MvScore("Dame Basketball Shoes D7", "Dame Gen 7")
	far := e.MvScore("Dame Basketball Shoes D7", "Parking Charges Northwest Zone")
	if close <= far {
		t.Errorf("close=%f should beat far=%f", close, far)
	}
	// Range property.
	prop := func(a, b string) bool {
		s := e.MvScore(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	// Symmetry.
	sym := func(a, b string) bool {
		return math.Abs(e.MvScore(a, b)-e.MvScore(b, a)) < 1e-12
	}
	if err := quick.Check(sym, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSubLexicalSignal(t *testing.T) {
	e := NewEncoder(128)
	// "brandCountry" and "country" share the token "country".
	s := e.MvScore("brandCountry", "country")
	if s < 0.3 {
		t.Errorf("shared-token score too low: %f", s)
	}
	d := e.MvScore("qty", "manufacturer")
	if d >= s {
		t.Errorf("disjoint pair (%f) should score below shared pair (%f)", d, s)
	}
}

func TestEmbedSequence(t *testing.T) {
	e := NewEncoder(64)
	v := e.EmbedSequence([]string{"factorySite", "isIn", "isIn"})
	if math.Abs(Norm(v)-1) > 1e-9 {
		t.Errorf("sequence embedding not unit norm: %f", Norm(v))
	}
	if Norm(e.EmbedSequence(nil)) != 0 {
		t.Error("empty sequence should embed to zero")
	}
	// Single-label sequence equals the label embedding.
	a := e.EmbedSequence([]string{"made_in"})
	b := e.Embed("made_in")
	if math.Abs(Cosine(a, b)-1) > 1e-9 {
		t.Error("single-label sequence should equal label embedding")
	}
	// Order matters.
	x := e.EmbedSequence([]string{"alpha", "beta"})
	y := e.EmbedSequence([]string{"beta", "alpha"})
	if math.Abs(Cosine(x, y)-1) < 1e-9 {
		t.Error("sequence embedding should be order sensitive")
	}
}

func TestWalkCorpus(t *testing.T) {
	g := graph.New()
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	c := g.AddVertex("c")
	g.MustAddEdge(a, b, "e1")
	g.MustAddEdge(b, c, "e2")
	corpus := WalkCorpus(g, 20, 3, 42)
	if len(corpus) == 0 {
		t.Fatal("corpus empty")
	}
	for _, sent := range corpus {
		if len(sent) == 0 || len(sent) > 3 {
			t.Errorf("bad sentence length: %v", sent)
		}
		for _, l := range sent {
			if l != "e1" && l != "e2" {
				t.Errorf("unknown label %q", l)
			}
		}
	}
	// Deterministic for a seed.
	again := WalkCorpus(g, 20, 3, 42)
	if len(again) != len(corpus) {
		t.Error("corpus not deterministic")
	}
	if WalkCorpus(graph.New(), 5, 3, 1) != nil {
		t.Error("empty graph should give nil corpus")
	}
}

func TestLabelVocabulary(t *testing.T) {
	g := graph.New()
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	g.MustAddEdge(a, b, "x")
	g.MustAddEdge(a, b, "y")
	g.MustAddEdge(b, a, "x")
	vocab := LabelVocabulary(g)
	if len(vocab) != 2 || vocab[0] != "x" || vocab[1] != "y" {
		t.Errorf("vocab = %v", vocab)
	}
}
