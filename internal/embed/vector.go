package embed

import "math"

// Dot returns the inner product of a and b, which must be equal length.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the L2 norm of v.
func Norm(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Normalize scales v to unit L2 norm in place and returns it. The zero
// vector is returned unchanged.
func Normalize(v []float64) []float64 {
	n := Norm(v)
	if n == 0 {
		return v
	}
	for i := range v {
		v[i] /= n
	}
	return v
}

// Cosine returns the cosine similarity of a and b in [-1, 1]. Zero vectors
// yield 0.
func Cosine(a, b []float64) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	c := Dot(a, b) / (na * nb)
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c
}

// Add accumulates src into dst.
func Add(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// Scale multiplies v by s in place.
func Scale(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Concat returns the concatenation of the given vectors.
func Concat(vs ...[]float64) []float64 {
	n := 0
	for _, v := range vs {
		n += len(v)
	}
	out := make([]float64, 0, n)
	for _, v := range vs {
		out = append(out, v...)
	}
	return out
}

// AbsDiff returns |a - b| element-wise.
func AbsDiff(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = math.Abs(a[i] - b[i])
	}
	return out
}

// Hadamard returns a ⊙ b element-wise.
func Hadamard(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] * b[i]
	}
	return out
}
