package core

import (
	"her/internal/graph"
)

// ReferenceMatch is a brute-force reference implementation of parametric
// simulation used to verify ParaMatch in tests. It computes the greatest
// fixpoint of the simulation conditions over ALL candidate pairs, using
// an OPTIMAL (max-weight injective assignment) lineage selection instead
// of ParaMatch's greedy one, so it is a sound upper bound: whenever
// ParaMatch reports a match, ReferenceMatch must too.
//
// Cost is O(|V_D|·|V|) pairs per iteration with a 2^k assignment DP per
// pair — exponential in k and intended only for small graphs.
func ReferenceMatch(m *Matcher, u0, v0 graph.VID) bool {
	if m.Hv(u0, v0) < m.P.Sigma {
		return false
	}
	// Start from all σ-qualifying pairs (the coinductive top element).
	valid := make(map[Pair]bool)
	for u := 0; u < m.GD.NumVertices(); u++ {
		for v := 0; v < m.G.NumVertices(); v++ {
			p := Pair{U: graph.VID(u), V: graph.VID(v)}
			if m.Hv(p.U, p.V) >= m.P.Sigma {
				valid[p] = true
			}
		}
	}
	// Decreasing iteration to the greatest fixpoint.
	for changed := true; changed; {
		changed = false
		for p := range valid {
			if !valid[p] {
				continue
			}
			if m.GD.IsLeaf(p.U) {
				continue
			}
			if bestLineageScore(m, p, valid) < m.P.Delta {
				delete(valid, p)
				changed = true
			}
		}
	}
	return valid[Pair{U: u0, V: v0}]
}

// bestLineageScore computes the maximum aggregate h_ρ over partial
// injective mappings from V_u^k to V_v^k restricted to currently valid
// pairs, via bitmask DP over the v side.
func bestLineageScore(m *Matcher, p Pair, valid map[Pair]bool) float64 {
	vuk := m.RD.TopK(p.U, m.P.K)
	vvk := m.RG.TopK(p.V, m.P.K)
	a, b := len(vuk), len(vvk)
	if a == 0 || b == 0 {
		return 0
	}
	if b > 20 {
		panic("core: ReferenceMatch requires k ≤ 20")
	}
	// w[i][j] = score if (u'_i, v'_j) is currently valid, else -1.
	w := make([][]float64, a)
	for i, su := range vuk {
		w[i] = make([]float64, b)
		for j, sv := range vvk {
			w[i][j] = -1
			if m.Hv(su.Desc, sv.Desc) >= m.P.Sigma && valid[Pair{U: su.Desc, V: sv.Desc}] {
				w[i][j] = m.Hrho(su.Path, sv.Path)
			}
		}
	}
	size := 1 << b
	dp := make([]float64, size)
	for i := 0; i < a; i++ {
		next := make([]float64, size)
		copy(next, dp) // leaving property i unmatched is allowed (partial)
		for mask := 0; mask < size; mask++ {
			base := dp[mask]
			for j := 0; j < b; j++ {
				if mask&(1<<j) != 0 || w[i][j] < 0 {
					continue
				}
				nm := mask | 1<<j
				if s := base + w[i][j]; s > next[nm] {
					next[nm] = s
				}
			}
		}
		dp = next
	}
	best := 0.0
	for _, s := range dp {
		if s > best {
			best = s
		}
	}
	return best
}
