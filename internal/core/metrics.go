package core

import (
	"time"

	"her/internal/obs"
)

// coreMetrics holds the matcher's registry handles. All fields are
// nil-safe obs handles, so the zero value is the disabled state: every
// recording call on it is a no-op behind a single nil check, and timer
// sites additionally skip the clock reads entirely.
type coreMetrics struct {
	calls     *obs.Counter // her_core_paramatch_calls_total
	cacheHits *obs.Counter // her_core_cache_hits_total
	cleanups  *obs.Counter // her_core_cleanups_total
	rechecks  *obs.Counter // her_core_rechecks_total

	candidates *obs.Counter // her_core_candidates_total

	matchSeconds   *obs.Histogram // her_core_paramatch_seconds
	candGenSeconds *obs.Histogram // her_core_candgen_seconds
}

// SetMetrics points the matcher at a registry (nil disables
// instrumentation). The phase breakdown mirrors Fig. 4: top-level
// ParaMatch latency, candidate generation latency, and the
// cache-hit/cleanup/recheck counters of the matching and cleanup
// stages. Safe to call on a live matcher; existing Counters are
// unaffected.
func (m *Matcher) SetMetrics(r *obs.Registry) {
	if r == nil {
		m.met = coreMetrics{}
		return
	}
	m.met = coreMetrics{
		calls:          r.Counter("her_core_paramatch_calls_total"),
		cacheHits:      r.Counter("her_core_cache_hits_total"),
		cleanups:       r.Counter("her_core_cleanups_total"),
		rechecks:       r.Counter("her_core_rechecks_total"),
		candidates:     r.Counter("her_core_candidates_total"),
		matchSeconds:   r.Histogram("her_core_paramatch_seconds", nil),
		candGenSeconds: r.Histogram("her_core_candgen_seconds", nil),
	}
}

// SetSpan attaches a tracing span for the duration of one request: the
// matcher's query-mode entry points (VPair, APair) open their phase
// spans (candgen, simulate) as children of it. The matcher is not
// thread-safe, so the owner installs the span under the same lock that
// serializes matching and clears it with SetSpan(nil) afterwards. A nil
// span (the default) disables phase tracing at the cost of one nil
// check per phase — the zero-cost-when-disabled contract.
func (m *Matcher) SetSpan(sp *obs.Span) { m.span = sp }

// timedMatch wraps a top-level match evaluation with the phase timer.
func (m *Matcher) timedMatch(p Pair) bool {
	if m.met.matchSeconds == nil {
		return m.match(p)
	}
	t0 := time.Now()
	ok := m.match(p)
	m.met.matchSeconds.ObserveSince(t0)
	return ok
}
