package core

import (
	"testing"

	"her/internal/graph"
)

// chainGD builds a G_D that is a single directed chain of n edges.
func chainGD(n int) *graph.Graph {
	g := graph.New()
	prev := g.AddVertex("v0")
	for i := 1; i <= n; i++ {
		v := g.AddVertex("v")
		g.MustAddEdge(prev, v, "e")
		prev = v
	}
	return g
}

func TestHaloRadiusChain(t *testing.T) {
	for _, tc := range []struct {
		depth, maxLen, want int
	}{
		{depth: 0, maxLen: 4, want: 0},  // leaf-only G_D: no recursion
		{depth: 1, maxLen: 4, want: 4},  // one level of properties
		{depth: 3, maxLen: 2, want: 6},  // depth × path cap
		{depth: 5, maxLen: 0, want: 20}, // maxLen 0 means the ranker default 4
	} {
		got := HaloRadius(chainGD(tc.depth), tc.maxLen)
		if got != tc.want {
			t.Errorf("HaloRadius(chain depth %d, maxLen %d) = %d, want %d",
				tc.depth, tc.maxLen, got, tc.want)
		}
	}
}

func TestHaloRadiusBranchingDAG(t *testing.T) {
	// Diamond with a tail: longest path is 3 edges even though the
	// shortest root→leaf path is 2.
	g := graph.New()
	a, b, c, d, e := g.AddVertex("a"), g.AddVertex("b"), g.AddVertex("c"), g.AddVertex("d"), g.AddVertex("e")
	g.MustAddEdge(a, b, "x")
	g.MustAddEdge(a, c, "x")
	g.MustAddEdge(b, d, "x")
	g.MustAddEdge(c, d, "x")
	g.MustAddEdge(d, e, "x")
	if got := HaloRadius(g, 4); got != 12 {
		t.Fatalf("HaloRadius(diamond+tail, 4) = %d, want 12", got)
	}
}

func TestHaloRadiusCyclic(t *testing.T) {
	g := chainGD(3)
	g.MustAddEdge(3, 1, "back")
	if got := HaloRadius(g, 4); got != -1 {
		t.Fatalf("HaloRadius(cyclic) = %d, want -1 (unbounded)", got)
	}
	// Self-loop counts as a cycle too.
	g2 := graph.New()
	v := g2.AddVertex("v")
	g2.MustAddEdge(v, v, "self")
	if got := HaloRadius(g2, 4); got != -1 {
		t.Fatalf("HaloRadius(self-loop) = %d, want -1", got)
	}
}

func TestHaloRadiusDisconnected(t *testing.T) {
	// Longest path is taken over all components.
	g := chainGD(2)
	x := g.AddVertex("x")
	y := g.AddVertex("y")
	z := g.AddVertex("z")
	w := g.AddVertex("w")
	g.MustAddEdge(x, y, "e")
	g.MustAddEdge(y, z, "e")
	g.MustAddEdge(z, w, "e")
	if got := HaloRadius(g, 1); got != 3 {
		t.Fatalf("HaloRadius(two components) = %d, want 3", got)
	}
}

func TestHaloRadiusEmpty(t *testing.T) {
	if got := HaloRadius(graph.New(), 4); got != 0 {
		t.Fatalf("HaloRadius(empty) = %d, want 0", got)
	}
}

// TestHaloRadiusDeepChain guards the iterative DFS: a recursive
// implementation would overflow the stack at this depth.
func TestHaloRadiusDeepChain(t *testing.T) {
	if testing.Short() {
		t.Skip("deep-chain construction is slow under -race")
	}
	const depth = 200000
	if got := HaloRadius(chainGD(depth), 1); got != depth {
		t.Fatalf("HaloRadius(deep chain) = %d, want %d", got, depth)
	}
}
