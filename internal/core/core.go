// Package core implements the paper's primary contribution: parametric
// simulation (Section III) and the quadratic-time ParaMatch algorithm
// (Section V, Fig. 4), plus the all-match algorithms VParaMatch and
// AllParaMatch (Section VI, Figs. 5 and 8) and schema-match extraction
// (appendix D).
//
// Parametric simulation takes score functions (h_v, h_ρ, h_r) and
// thresholds (σ, δ, k) as parameters. A pair (u0, v0) of vertices across
// two graphs matches iff there is a relation Π(u0, v0) containing (u0, v0)
// such that every (u, v) ∈ Π satisfies h_v(u, v) ≥ σ and, when u is not a
// leaf, some partial injective lineage set S(u,v) ⊆ V_u^k × V_v^k has
// aggregate h_ρ score ≥ δ with all its pairs in Π.
package core

import (
	"fmt"
	"sort"

	"her/internal/feq"
	"her/internal/graph"
	"her/internal/obs"
	"her/internal/ranking"
)

// VertexScorer is M_v: it scores the semantic closeness of two vertex
// labels in [0, 1]. Implementations must be safe for concurrent use.
type VertexScorer func(a, b string) float64

// PathScorer is M_ρ: it scores the closeness of two edge-label sequences
// in [0, 1]. Implementations must be safe for concurrent use.
type PathScorer func(a, b []string) float64

// Pair is a candidate match: U is a vertex of G_D (or G1), V of G (G2).
type Pair struct {
	U graph.VID
	V graph.VID
}

// SortPairs sorts pairs by (U, V) in place and returns the slice. Match
// sets are semantically order-free, but anything collected from a map
// must be sorted before it is exposed, serialized, or used to drive
// further work — otherwise map iteration order leaks into output and
// breaks run-to-run reproducibility (herlint's mapiter contract).
func SortPairs(pairs []Pair) []Pair {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].U != pairs[j].U {
			return pairs[i].U < pairs[j].U
		}
		return pairs[i].V < pairs[j].V
	})
	return pairs
}

// Params bundles the parameters of parametric simulation.
type Params struct {
	Mv    VertexScorer
	Mrho  PathScorer
	Sigma float64 // σ: vertex-closeness threshold
	Delta float64 // δ: aggregate association threshold
	K     int     // k: number of important properties
}

// Validate checks the parameter ranges.
func (p Params) Validate() error {
	if p.Mv == nil || p.Mrho == nil {
		return fmt.Errorf("core: Mv and Mrho must be set")
	}
	if p.Sigma < 0 || p.Sigma > 1 {
		return fmt.Errorf("core: sigma %f out of [0,1]", p.Sigma)
	}
	if p.Delta < 0 {
		return fmt.Errorf("core: delta %f must be non-negative", p.Delta)
	}
	if p.K <= 0 {
		return fmt.Errorf("core: k must be positive, got %d", p.K)
	}
	return nil
}

// Counters reports work done by a Matcher, for tests and benchmarks.
type Counters struct {
	Calls     int // ParaMatch invocations (including reruns)
	CacheHits int // candidate validities answered from cache
	Cleanups  int // cleanup-stage invocations
	Rechecks  int // dependant pairs re-run by cleanup
}

// entry is one cache cell: the current validity of a pair and, when
// valid, the lineage set W that witnesses it.
type entry struct {
	valid bool
	w     []Pair
}

// Matcher runs parametric simulation between two graphs. It owns the
// cache and ecache hash maps of Fig. 4 and is NOT safe for concurrent
// use; the BSP engine creates one Matcher per worker.
type Matcher struct {
	GD *graph.Graph // G_D (or G1)
	G  *graph.Graph // G (or G2)
	RD *ranking.Ranker
	RG *ranking.Ranker
	P  Params

	cache      map[Pair]*entry
	dependents map[Pair]map[Pair]bool // p → pairs whose W contains p
	recheck    map[Pair]int
	assumed    map[Pair]bool // border-node assumptions seeded by the BSP engine

	// Read tracking (enabled by the parallel engines): p → pairs whose
	// evaluation consulted p's verdict. The paper's IncPSim re-checks
	// only lineage (W) dependants, but under optimistic border
	// assumptions a refuted assumption can also flip a NEGATIVE verdict
	// computed under it — the assumed-valid candidate may have consumed
	// an injectivity slot — so the engines re-check every reader.
	trackReads bool
	readers    map[Pair]map[Pair]bool
	rerunQueue []Pair
	draining   bool
	// frozen pairs exhausted their recheck budget and keep their
	// conservative-invalid verdict permanently, guaranteeing the
	// refinement terminates.
	frozen map[Pair]bool

	// met mirrors the stats counters into an obs.Registry and adds
	// phase latency histograms; the zero value is disabled.
	met coreMetrics

	// span, when non-nil, receives per-phase child spans (candgen,
	// simulate) for the duration of one traced request; see SetSpan.
	span *obs.Span

	// onInvalid, when set, observes pairs whose cached state becomes
	// false (used by the BSP engine to emit messages).
	onInvalid func(Pair)
	// onRevalid observes pairs whose cached state flips back from false
	// to true during a tracked re-run, so the engine can notify
	// subscribers holding a stale invalidation.
	onRevalid func(Pair)
	// delegate, when set, is consulted before evaluating a pair this
	// matcher does not own; returning true makes the matcher assume the
	// pair valid (the BSP engine's optimistic border initialization) and
	// leave its decision to the owning worker.
	delegate func(Pair) bool

	stats Counters
}

// NewMatcher creates a matcher over (gd, g) with rankers rd, rg and
// parameters p.
func NewMatcher(gd, g *graph.Graph, rd, rg *ranking.Ranker, p Params) (*Matcher, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if gd == nil || g == nil || rd == nil || rg == nil {
		return nil, fmt.Errorf("core: graphs and rankers must be non-nil")
	}
	m := &Matcher{GD: gd, G: g, RD: rd, RG: rg, P: p}
	m.resetState()
	return m, nil
}

func (m *Matcher) resetState() {
	m.cache = make(map[Pair]*entry)
	m.dependents = make(map[Pair]map[Pair]bool)
	m.recheck = make(map[Pair]int)
	m.assumed = make(map[Pair]bool)
	m.readers = make(map[Pair]map[Pair]bool)
	m.frozen = make(map[Pair]bool)
	m.rerunQueue = nil
}

// EnableReadTracking turns on full read-dependency tracking, required
// for correctness when verdicts can rest on optimistic assumptions that
// are refuted later (the parallel engines).
func (m *Matcher) EnableReadTracking() { m.trackReads = true }

// noteRead records that evaluating reader consulted the verdict of q.
func (m *Matcher) noteRead(reader, q Pair) {
	if !m.trackReads || reader == q {
		return
	}
	set := m.readers[q]
	if set == nil {
		set = make(map[Pair]bool)
		m.readers[q] = set
	}
	set[reader] = true
}

// Reset clears all cached match state (not the rankers' ecache).
func (m *Matcher) Reset() {
	m.resetState()
	m.stats = Counters{}
}

// Stats returns the work counters.
func (m *Matcher) Stats() Counters { return m.stats }

// Hv computes h_v(u, v) = M_v(L_D(u), L(v)).
func (m *Matcher) Hv(u, v graph.VID) float64 {
	return m.P.Mv(m.GD.Label(u), m.G.Label(v))
}

// Hrho computes h_ρ(ρ1, ρ2) = M_ρ(L(ρ1), L(ρ2)) / (len(ρ1) + len(ρ2)).
func (m *Matcher) Hrho(p1, p2 graph.Path) float64 {
	l := p1.Len() + p2.Len()
	if l == 0 {
		return 0
	}
	return m.P.Mrho(p1.EdgeLabels, p2.EdgeLabels) / float64(l)
}

// Cached returns the cached validity of p, if any.
func (m *Matcher) Cached(p Pair) (valid bool, ok bool) {
	if e, found := m.cache[p]; found {
		return e.valid, true
	}
	return false, false
}

// Assume seeds p as an assumed-valid pair (the BSP engine's optimistic
// border initialization). Assumed pairs answer true from the cache until
// invalidated.
func (m *Matcher) Assume(p Pair) {
	m.assumed[p] = true
	if _, ok := m.cache[p]; !ok {
		m.cache[p] = &entry{valid: true}
	}
}

// IsAssumed reports whether p is an (un-invalidated) assumption.
func (m *Matcher) IsAssumed(p Pair) bool { return m.assumed[p] }

// SetOnInvalid installs an observer called whenever a pair's cached
// state becomes false.
func (m *Matcher) SetOnInvalid(fn func(Pair)) { m.onInvalid = fn }

// SetDelegate installs the ownership filter used by the BSP engine: fn
// returns true for pairs this matcher must not decide itself, which are
// then assumed valid until an external Invalidate rectifies them.
func (m *Matcher) SetDelegate(fn func(Pair) bool) { m.delegate = fn }

// Invalidate marks p invalid and rectifies its dependants — the IncPSim
// refinement step applied when a message reports p invalid elsewhere.
func (m *Matcher) Invalidate(p Pair) {
	if e, ok := m.cache[p]; ok && !e.valid {
		return // already known invalid
	}
	m.fail(p)
}

// Revalidate restores an assumed-valid verdict for p — applied when the
// owner reports that a previously invalidated pair flipped back to true
// — and re-runs every local pair whose decision consulted p.
func (m *Matcher) Revalidate(p Pair) {
	if m.frozen[p] {
		return // conservatively settled; stays invalid
	}
	if e, ok := m.cache[p]; ok && e.valid {
		return // already valid locally
	}
	m.unregister(p)
	delete(m.cache, p)
	m.Assume(p)
	m.scheduleAffected(p)
	m.drainReruns()
}

// SetOnRevalid installs the false→true flip observer.
func (m *Matcher) SetOnRevalid(fn func(Pair)) { m.onRevalid = fn }

// ForgetVertices drops every cached decision whose G-side vertex the
// predicate selects, together with (transitively) every pair whose
// lineage depended on a dropped pair — the IncPSim maintenance step for
// updates to graph G (Section VI-B, remark 2). Dropped pairs are simply
// re-evaluated on the next query; unlike Invalidate, forgetting erases
// both valid and invalid decisions, since an added edge can flip either
// way.
func (m *Matcher) ForgetVertices(affected func(v graph.VID) bool) {
	// The initial sweep is bounded by the cache; the worklist re-grows
	// past it only through dependency fan-out.
	queue := make([]Pair, 0, len(m.cache))
	for p := range m.cache {
		if affected(p.V) {
			queue = append(queue, p)
		}
	}
	// Deterministic cleanup order: the final state is order-independent,
	// but sorted worklists keep run-to-run behavior (and stats such as
	// cleanup counts under interleaved queries) reproducible.
	SortPairs(queue)
	seen := make(map[Pair]bool, len(queue))
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if seen[p] {
			continue
		}
		seen[p] = true
		if _, ok := m.cache[p]; !ok {
			continue
		}
		deps := make([]Pair, 0, len(m.dependents[p]))
		for q := range m.dependents[p] {
			deps = append(deps, q)
		}
		queue = append(queue, SortPairs(deps)...)
		m.unregister(p)
		delete(m.cache, p)
		delete(m.assumed, p)
		delete(m.recheck, p)
	}
}

// Match is ParaMatch (Fig. 4): it decides whether (u, v) makes a match by
// parametric simulation, reusing and extending the cache across calls.
func (m *Matcher) Match(u, v graph.VID) bool {
	p := Pair{U: u, V: v}
	if e, ok := m.cache[p]; ok {
		m.stats.CacheHits++
		m.met.cacheHits.Inc()
		return e.valid
	}
	return m.timedMatch(p)
}

// maxRechecks bounds cleanup-triggered re-runs per pair, implementing the
// paper's k²+1 bounded-call analysis. With read tracking (the parallel
// engines), verdicts can legitimately flip both ways while refuted
// assumptions propagate through cyclic cross-fragment dependencies, so
// the convergence budget is widened; exhaustion still falls back to the
// conservative invalidation.
func (m *Matcher) maxRechecks() int {
	base := m.P.K*m.P.K + 1
	if m.trackReads {
		return 64 * base
	}
	return base
}

func (m *Matcher) setInvalid(p Pair) {
	m.unregister(p)
	m.cache[p] = &entry{valid: false}
	delete(m.assumed, p)
	if m.onInvalid != nil {
		m.onInvalid(p)
	}
}

func (m *Matcher) setValid(p Pair, w []Pair) {
	m.unregister(p)
	m.cache[p] = &entry{valid: true, w: w}
	for _, q := range w {
		deps := m.dependents[q]
		if deps == nil {
			deps = make(map[Pair]bool)
			m.dependents[q] = deps
		}
		deps[p] = true
	}
}

// unregister removes p's dependency registrations from its old W.
func (m *Matcher) unregister(p Pair) {
	if e, ok := m.cache[p]; ok {
		for _, q := range e.w {
			delete(m.dependents[q], p)
		}
	}
}

// match implements the three stages of Fig. 4 for one pair.
func (m *Matcher) match(p Pair) bool {
	if m.delegate != nil && m.delegate(p) {
		m.Assume(p)
		return true
	}
	m.stats.Calls++
	m.met.calls.Inc()
	u, v := p.U, p.V

	// Initial stage (lines 1-11).
	if m.Hv(u, v) < m.P.Sigma {
		m.setInvalid(p)
		return false
	}
	if m.GD.IsLeaf(u) {
		m.setValid(p, nil)
		return true
	}
	// Optimistic entry so interdependent candidates (strongly connected
	// components across both graphs) can self-support coinductively.
	m.cache[p] = &entry{valid: true}

	vuk := m.RD.TopK(u, m.P.K) // ecache-backed V_u^k
	vvk := m.RG.TopK(v, m.P.K) // ecache-backed V_v^k

	// Build the candidate list l_{u'} for each selected descendant u',
	// sorted by descending h_ρ of the selected paths (line 11).
	lists := make([][]scored, len(vuk))
	for j, su := range vuk {
		lists[j] = m.candidateList(su, vvk)
	}

	// Matching stage (lines 12-27). MaxSco is an upper bound on the
	// achievable aggregate score: the head of each remaining list plus
	// the already-achieved contributions.
	maxSco := 0.0
	for _, l := range lists {
		if len(l) > 0 {
			maxSco += l[0].score
		}
	}
	if maxSco < m.P.Delta {
		m.setInvalid(p)
		return false
	}

	sum := 0.0
	w := make([]Pair, 0, len(lists)) // one lineage pair per property list until Δ is reached
	used := make(map[graph.VID]bool) // injectivity of the lineage set

	for j := range lists {
		l := lists[j]
		for idx := 0; idx < len(l); idx++ {
			cand := l[idx]
			next := 0.0
			if idx+1 < len(l) {
				next = l[idx+1].score
			}
			if used[cand.v] {
				// Taken by an earlier property; demote this list's head.
				maxSco += next - cand.score
				if maxSco < m.P.Delta {
					return m.fail(p)
				}
				continue
			}
			cp := Pair{U: cand.u, V: cand.v}
			var ok bool
			if e, found := m.cache[cp]; found {
				m.stats.CacheHits++
				m.met.cacheHits.Inc()
				ok = e.valid
			} else {
				ok = m.match(cp)
			}
			m.noteRead(p, cp)
			if ok {
				sum += cand.score
				w = append(w, cp)
				used[cand.v] = true
				if sum >= m.P.Delta {
					m.setValid(p, w)
					return true
				}
				break // property u'_j settled; move on (line 24)
			}
			// Candidate failed: replace head contribution (line 25).
			maxSco += next - cand.score
			if maxSco < m.P.Delta {
				return m.fail(p)
			}
		}
	}
	return m.fail(p)
}

// fail runs the cleanup stage (lines 28-32): mark p invalid, then re-run
// every pair that directly depended on p, transitively rectifying stale
// optimistic state. With read tracking enabled, readers of p — including
// pairs that concluded FALSE under p's optimistic verdict — are re-run
// as well, and any verdict they flip cascades. Cascades are processed
// through an iterative worklist so deep refutation chains cannot
// overflow the stack.
func (m *Matcher) fail(p Pair) bool {
	m.stats.Cleanups++
	m.met.cleanups.Inc()
	m.setInvalid(p)
	m.scheduleAffected(p)
	m.drainReruns()
	return false
}

// scheduleAffected enqueues the pairs whose decision rested on p: the
// lineage dependants (the paper's cleanup set) and, with read tracking,
// every reader of p's verdict.
func (m *Matcher) scheduleAffected(p Pair) {
	for q := range m.dependents[p] {
		m.rerunQueue = append(m.rerunQueue, q)
	}
	if m.trackReads {
		for q := range m.readers[p] {
			m.rerunQueue = append(m.rerunQueue, q)
		}
	}
}

// drainReruns processes the rerun worklist. Only the outermost call
// drains; nested fail/revalidation events just enqueue more work.
func (m *Matcher) drainReruns() {
	if m.draining {
		return
	}
	m.draining = true
	defer func() { m.draining = false }()
	for len(m.rerunQueue) > 0 {
		q := m.rerunQueue[len(m.rerunQueue)-1]
		m.rerunQueue = m.rerunQueue[:len(m.rerunQueue)-1]
		if m.frozen[q] {
			continue
		}
		e, ok := m.cache[q]
		if !ok {
			continue
		}
		if !m.trackReads && !e.valid {
			continue // the paper's cleanup re-runs valid dependants only
		}
		if m.assumed[q] {
			// Delegated pairs are decided by their owner; the local
			// assumption stands until an invalidation message arrives.
			continue
		}
		old := e.valid
		m.unregister(q)
		delete(m.cache, q)
		delete(m.assumed, q)
		m.recheck[q]++
		m.stats.Rechecks++
		m.met.rechecks.Inc()
		if m.recheck[q] > m.maxRechecks() {
			// Bounded-call safeguard: freeze the pair at a conservative
			// invalid verdict (permanently — re-scheduling a capped pair
			// could otherwise ping-pong forever) and rectify its
			// dependants one final time.
			m.frozen[q] = true
			m.stats.Cleanups++
			m.met.cleanups.Inc()
			m.setInvalid(q)
			m.scheduleAffected(q)
			continue
		}
		now := m.match(q) // a false conclusion inside re-enqueues via fail
		if m.trackReads && now && !old {
			// false → true flip: pairs that consulted the old negative
			// verdict may deserve a different answer now.
			if m.onRevalid != nil {
				m.onRevalid(q)
			}
			m.scheduleAffected(q)
		}
	}
}

// scored is one candidate v' for a selected descendant u', with the h_ρ
// association score of their selected paths.
type scored struct {
	u, v  graph.VID
	score float64
	pathU graph.Path
	pathV graph.Path
}

// candidateList builds l_{u'}: candidates v' ∈ V_v^k with
// h_v(u', v') ≥ σ, sorted by descending h_ρ (ties by v' id).
func (m *Matcher) candidateList(su ranking.Selected, vvk []ranking.Selected) []scored {
	l := make([]scored, 0, len(vvk)) // survivors of the σ filter are a subset of vvk
	for _, sv := range vvk {
		if m.Hv(su.Desc, sv.Desc) < m.P.Sigma {
			continue
		}
		l = append(l, scored{
			u: su.Desc, v: sv.Desc,
			score: m.Hrho(su.Path, sv.Path),
			pathU: su.Path, pathV: sv.Path,
		})
	}
	// Insertion sort: lists are at most k long.
	for i := 1; i < len(l); i++ {
		for j := i; j > 0 && (l[j].score > l[j-1].score ||
			(feq.Eq(l[j].score, l[j-1].score) && l[j].v < l[j-1].v)); j-- {
			l[j], l[j-1] = l[j-1], l[j]
		}
	}
	return l
}
