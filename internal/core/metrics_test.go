package core

import (
	"strings"
	"testing"

	"her/internal/graph"
	"her/internal/obs"
)

// newTestMatcher builds a small scenario with one real match, one
// refuted root (same label, mismatched properties → cleanup), and
// enough structure to exercise the cache.
func newTestMatcher(t *testing.T) *Matcher {
	t.Helper()
	gd := graph.New()
	p1 := gd.AddVertex("product")
	gd.MustAddEdge(p1, gd.AddVertex("red"), "color")
	gd.MustAddEdge(p1, gd.AddVertex("shoe"), "type")
	p2 := gd.AddVertex("product")
	gd.MustAddEdge(p2, gd.AddVertex("green"), "color")
	gd.MustAddEdge(p2, gd.AddVertex("boot"), "type")

	g := graph.New()
	q1 := g.AddVertex("product")
	g.MustAddEdge(q1, g.AddVertex("red"), "color")
	g.MustAddEdge(q1, g.AddVertex("shoe"), "type")

	return newMatcher(t, gd, g, Params{Mv: exactMv, Mrho: exactMrho, Sigma: 0.9, Delta: 0.9, K: 4})
}

// TestMatcherMetricsMirrorCounters checks that a registry-backed matcher
// records the same work the Counters report, plus phase latencies.
func TestMatcherMetricsMirrorCounters(t *testing.T) {
	m := newTestMatcher(t)
	r := obs.NewRegistry()
	m.SetMetrics(r)

	pairs := m.APair(nil, nil)
	if len(pairs) == 0 {
		t.Fatal("no matches on the test graphs")
	}
	// Re-query to force cache hits.
	for _, p := range pairs {
		m.Match(p.U, p.V)
	}

	st := m.Stats()
	if got := r.Counter("her_core_paramatch_calls_total").Value(); got != int64(st.Calls) {
		t.Errorf("calls metric = %d, counters = %d", got, st.Calls)
	}
	if got := r.Counter("her_core_cache_hits_total").Value(); got != int64(st.CacheHits) {
		t.Errorf("cache hits metric = %d, counters = %d", got, st.CacheHits)
	}
	if got := r.Counter("her_core_cleanups_total").Value(); got != int64(st.Cleanups) {
		t.Errorf("cleanups metric = %d, counters = %d", got, st.Cleanups)
	}
	if h := r.Histogram("her_core_paramatch_seconds", nil); h.Count() == 0 {
		t.Error("no ParaMatch latency observations")
	}
	if h := r.Histogram("her_core_candgen_seconds", nil); h.Count() == 0 {
		t.Error("no candidate-generation latency observations")
	}
	if got := r.Counter("her_core_candidates_total").Value(); got == 0 {
		t.Error("no candidates counted")
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# TYPE her_core_paramatch_seconds histogram") {
		t.Errorf("exposition missing core histogram:\n%s", b.String())
	}
}

// TestMatcherMetricsDisabled confirms the nil registry leaves handles
// inert and behavior identical.
func TestMatcherMetricsDisabled(t *testing.T) {
	m := newTestMatcher(t)
	m.SetMetrics(nil)
	with := m.APair(nil, nil)

	m2 := newTestMatcher(t)
	r := obs.NewRegistry()
	m2.SetMetrics(r)
	without := m2.APair(nil, nil)

	if len(with) != len(without) {
		t.Errorf("instrumentation changed results: %d vs %d", len(with), len(without))
	}
	if m.Stats() != m2.Stats() {
		t.Errorf("instrumentation changed counters: %+v vs %+v", m.Stats(), m2.Stats())
	}
}
