package core

import (
	"strings"
	"testing"

	"her/internal/graph"
	"her/internal/ranking"
)

// exactMv scores 1 for identical labels, 0 otherwise.
func exactMv(a, b string) float64 {
	if a == b {
		return 1
	}
	return 0
}

// exactMrho scores 1 for identical label sequences, 0 otherwise.
func exactMrho(a, b []string) float64 {
	if strings.Join(a, " ") == strings.Join(b, " ") {
		return 1
	}
	return 0
}

// tableMv/tableMrho return table-driven scorers falling back to exact.
func tableMv(t map[[2]string]float64) VertexScorer {
	return func(a, b string) float64 {
		if a == b {
			return 1
		}
		if s, ok := t[[2]string{a, b}]; ok {
			return s
		}
		return 0
	}
}

func tableMrho(t map[[2]string]float64) PathScorer {
	return func(a, b []string) float64 {
		ka, kb := strings.Join(a, " "), strings.Join(b, " ")
		if ka == kb {
			return 0.8
		}
		if s, ok := t[[2]string{ka, kb}]; ok {
			return s
		}
		return 0
	}
}

func newMatcher(t *testing.T, gd, g *graph.Graph, p Params) *Matcher {
	t.Helper()
	m, err := NewMatcher(gd, g, ranking.NewRanker(gd, nil, 4), ranking.NewRanker(g, nil, 4), p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParamsValidate(t *testing.T) {
	good := Params{Mv: exactMv, Mrho: exactMrho, Sigma: 0.5, Delta: 1, K: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("good params rejected: %v", err)
	}
	bad := []Params{
		{Mrho: exactMrho, Sigma: 0.5, Delta: 1, K: 3},
		{Mv: exactMv, Sigma: 0.5, Delta: 1, K: 3},
		{Mv: exactMv, Mrho: exactMrho, Sigma: -0.1, Delta: 1, K: 3},
		{Mv: exactMv, Mrho: exactMrho, Sigma: 1.5, Delta: 1, K: 3},
		{Mv: exactMv, Mrho: exactMrho, Sigma: 0.5, Delta: -1, K: 3},
		{Mv: exactMv, Mrho: exactMrho, Sigma: 0.5, Delta: 1, K: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if _, err := NewMatcher(nil, nil, nil, nil, good); err == nil {
		t.Error("nil graphs accepted")
	}
}

func TestLeafMatching(t *testing.T) {
	gd := graph.New()
	u := gd.AddVertex("Germany")
	g := graph.New()
	v := g.AddVertex("Germany")
	w := g.AddVertex("France")
	m := newMatcher(t, gd, g, Params{Mv: exactMv, Mrho: exactMrho, Sigma: 0.9, Delta: 1, K: 3})
	if !m.Match(u, v) {
		t.Error("identical leaves should match")
	}
	if m.Match(u, w) {
		t.Error("different leaves should not match")
	}
	// Cached on re-query.
	before := m.Stats().Calls
	m.Match(u, v)
	if m.Stats().Calls != before {
		t.Error("second query should be answered from cache")
	}
}

func TestHrhoNormalization(t *testing.T) {
	gd := graph.New()
	a := gd.AddVertex("a")
	b := gd.AddVertex("b")
	gd.MustAddEdge(a, b, "x")
	m := newMatcher(t, gd, gd, Params{Mv: exactMv, Mrho: exactMrho, Sigma: 0.5, Delta: 1, K: 3})
	p1 := graph.SingleVertexPath(a).Extend(graph.Edge{To: b, Label: "x"})
	if got := m.Hrho(p1, p1); got != 0.5 {
		t.Errorf("Hrho = %f, want 1/(1+1)", got)
	}
	empty := graph.SingleVertexPath(a)
	if got := m.Hrho(empty, empty); got != 0 {
		t.Errorf("Hrho of empty paths = %f", got)
	}
}

// paperFixture builds the running example: the canonical graph side is a
// hand-built equivalent of Fig. 3 (tuples t1, b1) and the G side mirrors
// Fig. 1's neighborhood of v1 plus a decoy item v3.
type paperFixture struct {
	gd, g  *graph.Graph
	u1, u2 graph.VID // item t1, brand b1 tuple vertices
	uQty   graph.VID
	v1, v3 graph.VID // matching item, decoy item
	v10    graph.VID // brand entity
	params Params
}

func buildPaperFixture(t *testing.T) *paperFixture {
	t.Helper()
	gd := graph.New()
	// Tuple vertices first (mirrors rdb2rdf pass 1; brand sorts first).
	u2 := gd.AddVertex("brand") // b1
	u1 := gd.AddVertex("item")  // t1
	// brand b1 attributes.
	u11 := gd.AddVertex("Addidas Originals")
	u7 := gd.AddVertex("Germany")
	u8 := gd.AddVertex("Addidas AG")
	u9 := gd.AddVertex("Can Duoc, VN")
	gd.MustAddEdge(u2, u11, "name")
	gd.MustAddEdge(u2, u7, "country")
	gd.MustAddEdge(u2, u8, "manufacturer")
	gd.MustAddEdge(u2, u9, "made_in")
	// item t1 attributes + FK edge to u2.
	u10 := gd.AddVertex("Dame Basketball Shoes D7")
	u3 := gd.AddVertex("phylon foam")
	u4 := gd.AddVertex("white")
	u6 := gd.AddVertex("Dame 7")
	u5 := gd.AddVertex("500")
	gd.MustAddEdge(u1, u10, "item")
	gd.MustAddEdge(u1, u3, "material")
	gd.MustAddEdge(u1, u4, "color")
	gd.MustAddEdge(u1, u6, "type")
	gd.MustAddEdge(u1, u2, "brand")
	gd.MustAddEdge(u1, u5, "qty")

	g := graph.New()
	v1 := g.AddVertex("item")
	v0 := g.AddVertex("Dame Basketball Shoes")
	v6 := g.AddVertex("Phylon foam")
	v8 := g.AddVertex("Dame Gen 7")
	v10 := g.AddVertex("brand")
	v12 := g.AddVertex("white")
	v2 := g.AddVertex("Basketball Shoes")
	g.MustAddEdge(v1, v0, "names")
	g.MustAddEdge(v1, v6, "soleMadeBy")
	g.MustAddEdge(v1, v8, "typeNo")
	g.MustAddEdge(v1, v10, "brandName")
	g.MustAddEdge(v1, v12, "hasColor")
	g.MustAddEdge(v1, v2, "IsA")
	// Brand entity neighborhood.
	v18 := g.AddVertex("Addidas Originals")
	v20 := g.AddVertex("Germany")
	v17 := g.AddVertex("Addidas AG")
	v15 := g.AddVertex("Factory 9")
	v19 := g.AddVertex("Can Duoc")
	v9 := g.AddVertex("Can Duoc, VN")
	g.MustAddEdge(v10, v18, "type")
	g.MustAddEdge(v10, v20, "brandCountry")
	g.MustAddEdge(v10, v17, "belongsTo")
	g.MustAddEdge(v10, v15, "factorySite")
	g.MustAddEdge(v15, v19, "isIn")
	g.MustAddEdge(v19, v9, "isIn")
	// Decoy item v3 with non-matching properties.
	v3 := g.AddVertex("item")
	v21 := g.AddVertex("Ultra Comfortable Shoes")
	v22 := g.AddVertex("red")
	g.MustAddEdge(v3, v21, "names")
	g.MustAddEdge(v3, v22, "hasColor")

	mv := tableMv(map[[2]string]float64{
		{"Dame Basketball Shoes D7", "Dame Basketball Shoes"}: 0.9,
		{"Dame 7", "Dame Gen 7"}:                              0.85,
		{"phylon foam", "Phylon foam"}:                        0.95,
	})
	mrho := tableMrho(map[[2]string]float64{
		{"brand", "brandName"}:               0.75,
		{"material", "soleMadeBy"}:           0.75,
		{"color", "hasColor"}:                0.75,
		{"type", "typeNo"}:                   0.75,
		{"item", "names"}:                    0.75,
		{"country", "brandCountry"}:          0.75,
		{"manufacturer", "belongsTo"}:        0.9,
		{"name", "type"}:                     0.9,
		{"made_in", "factorySite isIn isIn"}: 1.0,
		{"made_in", "factorySite"}:           0.46,
		{"made_in", "factorySite isIn"}:      0.68,
	})
	return &paperFixture{
		gd: gd, g: g, u1: u1, u2: u2, uQty: u5, v1: v1, v3: v3, v10: v10,
		params: Params{Mv: mv, Mrho: mrho, Sigma: 0.7, Delta: 1.5, K: 5},
	}
}

func TestPaperExampleMatch(t *testing.T) {
	f := buildPaperFixture(t)
	m := newMatcher(t, f.gd, f.g, f.params)
	if !m.Match(f.u1, f.v1) {
		t.Fatal("(u1, v1) should match (Example 4)")
	}
	// The brand pair must be confirmed recursively.
	if ok, found := m.Cached(Pair{U: f.u2, V: f.v10}); !found || !ok {
		t.Error("(u2, v10) should be a confirmed match in the cache")
	}
	// Lineage of (u1, v1) includes the brand pair; qty has no match and
	// must not appear (Example 4's remark).
	lineage := m.Lineage(f.u1, f.v1)
	if len(lineage) == 0 {
		t.Fatal("no lineage recorded")
	}
	hasBrand := false
	for _, p := range lineage {
		if p.U == f.uQty {
			t.Error("qty should have no match in the lineage")
		}
		if p.U == f.u2 && p.V == f.v10 {
			hasBrand = true
		}
	}
	if !hasBrand {
		t.Errorf("brand pair missing from lineage %v", lineage)
	}
	// Lineage injectivity.
	usedV := map[graph.VID]bool{}
	for _, p := range lineage {
		if usedV[p.V] {
			t.Error("lineage is not injective")
		}
		usedV[p.V] = true
	}
}

func TestPaperExampleDecoyRejected(t *testing.T) {
	f := buildPaperFixture(t)
	m := newMatcher(t, f.gd, f.g, f.params)
	if m.Match(f.u1, f.v3) {
		t.Error("(u1, v3) should not match: properties disagree")
	}
}

func TestPaperExampleWitness(t *testing.T) {
	f := buildPaperFixture(t)
	m := newMatcher(t, f.gd, f.g, f.params)
	if !m.Match(f.u1, f.v1) {
		t.Fatal("setup")
	}
	w := m.Witness(f.u1, f.v1)
	if len(w) == 0 {
		t.Fatal("no witness")
	}
	// Every witness pair satisfies h_v ≥ σ.
	for _, p := range w {
		if m.Hv(p.U, p.V) < f.params.Sigma {
			t.Errorf("witness pair (%d,%d) violates sigma", p.U, p.V)
		}
	}
	// The root and the brand pair are present.
	found := map[Pair]bool{}
	for _, p := range w {
		found[p] = true
	}
	if !found[(Pair{U: f.u1, V: f.v1})] || !found[(Pair{U: f.u2, V: f.v10})] {
		t.Errorf("witness missing key pairs: %v", w)
	}
	// Non-match has no witness.
	if m.Witness(f.u1, f.v3) != nil {
		t.Error("non-match should have nil witness")
	}
}

func TestPaperExampleSchemaMatches(t *testing.T) {
	f := buildPaperFixture(t)
	m := newMatcher(t, f.gd, f.g, f.params)
	if !m.Match(f.u2, f.v10) {
		t.Fatal("(u2, v10) should match")
	}
	sm, err := m.SchemaMatches(f.u2, f.v10)
	if err != nil {
		t.Fatal(err)
	}
	byAttr := map[string]SchemaMatch{}
	for _, s := range sm {
		byAttr[s.Attr] = s
	}
	// made_in maps to the full factorySite-isIn-isIn path (appendix D,
	// Example 8: the 3-edge prefix has the maximum M_ρ).
	mi, ok := byAttr["made_in"]
	if !ok {
		t.Fatalf("made_in missing from schema matches %v", sm)
	}
	if mi.Rho.LabelString() != "factorySite isIn isIn" {
		t.Errorf("made_in maps to %q", mi.Rho.LabelString())
	}
	// country maps to the single edge brandCountry.
	if c, ok := byAttr["country"]; !ok || c.Rho.LabelString() != "brandCountry" {
		t.Errorf("country schema match = %+v", byAttr["country"])
	}
	// Schema matches of a non-match error out.
	if _, err := m.SchemaMatches(f.u1, f.v3); err == nil {
		t.Error("schema matches of non-match should fail")
	}
}

func TestPaperExampleVPair(t *testing.T) {
	f := buildPaperFixture(t)
	m := newMatcher(t, f.gd, f.g, f.params)
	got := m.VPair(f.u1, nil)
	if len(got) != 1 || got[0].V != f.v1 {
		t.Errorf("VPair(u1) = %v, want only v1", got)
	}
}

func TestPaperExampleAPair(t *testing.T) {
	f := buildPaperFixture(t)
	m := newMatcher(t, f.gd, f.g, f.params)
	got := m.APair([]graph.VID{f.u1, f.u2}, nil)
	want := map[Pair]bool{
		{U: f.u1, V: f.v1}:  true,
		{U: f.u2, V: f.v10}: true,
	}
	if len(got) != len(want) {
		t.Fatalf("APair = %v", got)
	}
	for _, p := range got {
		if !want[p] {
			t.Errorf("unexpected match %v", p)
		}
	}
	// Against the reference checker.
	for p := range want {
		ref := ReferenceMatch(m, p.U, p.V)
		if !ref {
			t.Errorf("reference disagrees on %v", p)
		}
	}
}

func TestMatchAgreesWithReferenceOnFixture(t *testing.T) {
	f := buildPaperFixture(t)
	for _, pair := range []Pair{
		{U: f.u1, V: f.v1},
		{U: f.u1, V: f.v3},
		{U: f.u2, V: f.v10},
	} {
		m := newMatcher(t, f.gd, f.g, f.params)
		got := m.Match(pair.U, pair.V)
		ref := ReferenceMatch(m, pair.U, pair.V)
		if got != ref {
			t.Errorf("pair %v: ParaMatch=%v reference=%v", pair, got, ref)
		}
	}
}
