package core

import "her/internal/graph"

// HaloRadius bounds, in forward hops of G, how far from a candidate
// vertex v a ParaMatch/VParaMatch evaluation of any pair (u, v) can
// inspect — the replication radius an edge-cut fragment of G must be
// closed under for per-fragment matching to be provably identical to
// whole-graph matching (internal/shard's halo replication).
//
// The bound composes the two bounds the matcher already operates under:
//
//   - per recursion level, the rankers select property paths of at most
//     maxPathLen edges (ranking.Ranker.MaxLen), so the G-side vertex of
//     a recursive sub-pair lies at most maxPathLen hops beyond its
//     parent's, and every label/out-edge/out-degree read while growing
//     and scoring those paths stays within the same distance;
//   - recursion only descends while the G_D-side vertex is a non-leaf,
//     and every descent advances at least one edge along G_D, so when
//     G_D is acyclic the recursion depth is bounded by the longest
//     directed path of G_D.
//
// Hence every vertex of G inspected when deciding (u, v) lies within
// longestPath(G_D) × maxPathLen forward hops of v. When G_D contains a
// directed cycle the per-level count is unbounded and HaloRadius
// returns -1: callers must close fragments under full forward
// reachability instead (which any hop-bounded expansion converges to
// once the frontier saturates).
//
// maxPathLen ≤ 0 means the ranker default of 4 (ranking.NewRanker).
func HaloRadius(gd *graph.Graph, maxPathLen int) int {
	if maxPathLen <= 0 {
		maxPathLen = 4
	}
	d := longestPathLen(gd)
	if d < 0 {
		return -1
	}
	return d * maxPathLen
}

// longestPathLen returns the number of edges on the longest directed
// path of g, or -1 when g contains a directed cycle. Iterative
// three-color DFS with memoized depths, so deep chains cannot overflow
// the goroutine stack.
func longestPathLen(g *graph.Graph) int {
	const (
		white = 0 // unvisited
		gray  = 1 // on the DFS stack
		black = 2 // finished, depth memoized
	)
	n := g.NumVertices()
	color := make([]byte, n)
	depth := make([]int, n) // longest path length starting at v, for black v
	longest := 0
	for s := 0; s < n; s++ {
		if color[s] != white {
			continue
		}
		// Each stack frame is a vertex plus the index of the next
		// out-edge to explore; a frame finishes when its edges are done.
		type frame struct {
			v    graph.VID
			next int
		}
		stack := []frame{{v: graph.VID(s)}}
		color[s] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			out := g.Out(f.v)
			if f.next < len(out) {
				to := out[f.next].To
				f.next++
				switch color[to] {
				case gray:
					return -1 // back edge: directed cycle
				case white:
					color[to] = gray
					stack = append(stack, frame{v: to})
				}
				continue
			}
			// All children black: finalize this vertex.
			best := 0
			for _, e := range out {
				if d := 1 + depth[e.To]; d > best {
					best = d
				}
			}
			depth[f.v] = best
			color[f.v] = black
			if best > longest {
				longest = best
			}
			stack = stack[:len(stack)-1]
		}
	}
	return longest
}
