package core

import (
	"math/rand"
	"testing"

	"her/internal/graph"
	"her/internal/ranking"
)

// sccFixture builds the appendix-C style interdependence scenario. With
// δ = 1.0, every pair needs two children contributing h_ρ = 0.5 apiece:
//
//	G_D: u1 --b--> u2; u2 --c--> u1 (SCC); u2 --e--> u4 (leaf K);
//	     u1 --d--> u3; u3 --f--> u5 --g--> u6 (leaf); u3 --h--> u7 (leaf)
//	G:   mirrors it with v1..v7 and the same edge labels, except the
//	     labels of v6 and v7 differ from u6 and u7.
//
// Evaluation order makes (u2, v2) validate first using the optimistic
// entry for (u1, v1); then (u3, v3) fails (both its candidate lists are
// empty), which invalidates (u1, v1), whose cleanup must rectify the now
// stale (u2, v2).
func sccFixture() (gd, g *graph.Graph, u1, v1, u2, v2 graph.VID) {
	gd = graph.New()
	u1 = gd.AddVertex("A")
	u2 = gd.AddVertex("B")
	u3 := gd.AddVertex("C")
	u4 := gd.AddVertex("K")
	u5 := gd.AddVertex("E")
	u6 := gd.AddVertex("W")
	u7 := gd.AddVertex("P")
	gd.MustAddEdge(u1, u2, "b")
	gd.MustAddEdge(u2, u1, "c")
	gd.MustAddEdge(u2, u4, "e")
	gd.MustAddEdge(u1, u3, "d")
	gd.MustAddEdge(u3, u5, "f")
	gd.MustAddEdge(u5, u6, "g")
	gd.MustAddEdge(u3, u7, "h")

	g = graph.New()
	v1 = g.AddVertex("A")
	v2 = g.AddVertex("B")
	v3 := g.AddVertex("C")
	v4 := g.AddVertex("K")
	v5 := g.AddVertex("E")
	v6 := g.AddVertex("Z") // mismatches u6
	v7 := g.AddVertex("Q") // mismatches u7
	g.MustAddEdge(v1, v2, "b")
	g.MustAddEdge(v2, v1, "c")
	g.MustAddEdge(v2, v4, "e")
	g.MustAddEdge(v1, v3, "d")
	g.MustAddEdge(v3, v5, "f")
	g.MustAddEdge(v5, v6, "g")
	g.MustAddEdge(v3, v7, "h")
	return gd, g, u1, v1, u2, v2
}

func TestInterdependentCleanup(t *testing.T) {
	gd, g, u1, v1, u2, v2 := sccFixture()
	m := newMatcher(t, gd, g, Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: 1.0, K: 5})
	if m.Match(u1, v1) {
		t.Error("(u1, v1) should not match: the SCC's support collapses")
	}
	// The stale (u2, v2) entry must have been rectified by cleanup.
	if valid, found := m.Cached(Pair{U: u2, V: v2}); found && valid {
		t.Error("(u2, v2) left stale-valid after cleanup")
	}
	if m.Stats().Cleanups == 0 {
		t.Error("cleanup stage never ran")
	}
	if m.Stats().Rechecks == 0 {
		t.Error("no dependant pair was rechecked")
	}
	// Agreement with the reference fixpoint.
	m2 := newMatcher(t, gd, g, Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: 1.0, K: 5})
	if ReferenceMatch(m2, u1, v1) {
		t.Error("reference should also reject")
	}
}

func TestSelfSupportingCyclePositive(t *testing.T) {
	// u1 <-> u2 and v1 <-> v2 with identical labels; δ = 0.5 is supplied
	// by the single cyclic child, so the pair is coinductively valid —
	// the greatest-fixpoint semantics of simulation.
	gd := graph.New()
	u1 := gd.AddVertex("A")
	u2 := gd.AddVertex("B")
	gd.MustAddEdge(u1, u2, "x")
	gd.MustAddEdge(u2, u1, "y")
	g := graph.New()
	v1 := g.AddVertex("A")
	v2 := g.AddVertex("B")
	g.MustAddEdge(v1, v2, "x")
	g.MustAddEdge(v2, v1, "y")
	p := Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: 0.5, K: 3}
	m := newMatcher(t, gd, g, p)
	if !m.Match(u1, v1) {
		t.Error("self-supporting cycle should match coinductively")
	}
	m2 := newMatcher(t, gd, g, p)
	if !ReferenceMatch(m2, u1, v1) {
		t.Error("reference disagrees on cycle")
	}
}

func TestRecheckBudgetTerminates(t *testing.T) {
	// A dense SCC with partially matching labels stresses repeated
	// cleanup; the recheck budget must keep it terminating.
	gd := graph.New()
	g := graph.New()
	const n = 6
	var us, vs []graph.VID
	for i := 0; i < n; i++ {
		us = append(us, gd.AddVertex("N"))
		vs = append(vs, g.AddVertex("N"))
	}
	for i := 0; i < n; i++ {
		gd.MustAddEdge(us[i], us[(i+1)%n], "e")
		g.MustAddEdge(vs[i], vs[(i+2)%n], "e")
	}
	m := newMatcher(t, gd, g, Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: 0.4, K: 3})
	// Just ensure it terminates and stays consistent.
	got := m.Match(us[0], vs[0])
	m2 := newMatcher(t, gd, g, Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: 0.4, K: 3})
	ref := ReferenceMatch(m2, us[0], vs[0])
	if got && !ref {
		t.Errorf("ParaMatch=true must imply reference=true")
	}
}

// randomGraph builds a small random labeled graph.
func randomGraph(rng *rand.Rand, nv, ne int, labels []string, edgeLabels []string) *graph.Graph {
	g := graph.New()
	for i := 0; i < nv; i++ {
		g.AddVertex(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < ne; i++ {
		from := graph.VID(rng.Intn(nv))
		to := graph.VID(rng.Intn(nv))
		g.MustAddEdge(from, to, edgeLabels[rng.Intn(len(edgeLabels))])
	}
	return g
}

// TestSoundnessAgainstReference: whenever ParaMatch confirms a pair, the
// optimal-assignment greatest fixpoint must also confirm it. (The reverse
// can fail in principle because ParaMatch's lineage selection is greedy.)
func TestSoundnessAgainstReference(t *testing.T) {
	labels := []string{"P", "Q", "R"}
	edgeLabels := []string{"x", "y"}
	rng := rand.New(rand.NewSource(11))
	agree, total := 0, 0
	for trial := 0; trial < 120; trial++ {
		nv := 3 + rng.Intn(4)
		ne := rng.Intn(2 * nv)
		gd := randomGraph(rng, nv, ne, labels, edgeLabels)
		g := randomGraph(rng, nv, ne, labels, edgeLabels)
		delta := []float64{0.3, 0.5, 1.0}[rng.Intn(3)]
		p := Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: delta, K: 3}
		u := graph.VID(rng.Intn(nv))
		v := graph.VID(rng.Intn(nv))
		m, err := NewMatcher(gd, g, ranking.NewRanker(gd, nil, 3), ranking.NewRanker(g, nil, 3), p)
		if err != nil {
			t.Fatal(err)
		}
		got := m.Match(u, v)
		m2, _ := NewMatcher(gd, g, ranking.NewRanker(gd, nil, 3), ranking.NewRanker(g, nil, 3), p)
		ref := ReferenceMatch(m2, u, v)
		total++
		if got == ref {
			agree++
		}
		if got && !ref {
			t.Fatalf("trial %d: ParaMatch=true but reference=false (nv=%d ne=%d δ=%.1f u=%d v=%d)",
				trial, nv, ne, delta, u, v)
		}
	}
	// Greedy vs optimal rarely diverge; require near-complete agreement.
	if float64(agree)/float64(total) < 0.95 {
		t.Errorf("agreement too low: %d/%d", agree, total)
	}
}

func TestAssumeAndInvalidObserver(t *testing.T) {
	gd := graph.New()
	u := gd.AddVertex("A")
	g := graph.New()
	v := g.AddVertex("B")
	m := newMatcher(t, gd, g, Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: 0.5, K: 2})
	p := Pair{U: u, V: v}
	m.Assume(p)
	if !m.IsAssumed(p) {
		t.Error("assumption not recorded")
	}
	if ok, found := m.Cached(p); !found || !ok {
		t.Error("assumed pair should answer true from cache")
	}
	var invalidated []Pair
	m.SetOnInvalid(func(q Pair) { invalidated = append(invalidated, q) })
	// Force evaluation: labels differ so it is invalid.
	delete(m.cache, p)
	if m.Match(u, v) {
		t.Error("A/B should not match at sigma=1")
	}
	if len(invalidated) != 1 || invalidated[0] != p {
		t.Errorf("observer saw %v", invalidated)
	}
	if m.IsAssumed(p) {
		t.Error("invalidation should clear the assumption")
	}
}

func TestResetClearsState(t *testing.T) {
	f := buildPaperFixture(t)
	m := newMatcher(t, f.gd, f.g, f.params)
	m.Match(f.u1, f.v1)
	if m.Stats().Calls == 0 {
		t.Fatal("setup")
	}
	m.Reset()
	if m.Stats().Calls != 0 {
		t.Error("Reset did not clear stats")
	}
	if _, found := m.Cached(Pair{U: f.u1, V: f.v1}); found {
		t.Error("Reset did not clear cache")
	}
}
