package core

import (
	"math/rand"
	"testing"

	"her/internal/graph"
	"her/internal/ranking"
)

// TestWitnessSatisfiesDefinition checks, on random graphs, that every
// confirmed match's recorded witness Π really is a parametric-simulation
// relation: each pair satisfies h_v ≥ σ, and each non-leaf pair's
// lineage is injective with aggregate h_ρ ≥ δ and members inside Π.
func TestWitnessSatisfiesDefinition(t *testing.T) {
	labels := []string{"P", "Q", "R"}
	edgeLabels := []string{"x", "y"}
	rng := rand.New(rand.NewSource(31))
	checked := 0
	for trial := 0; trial < 80 && checked < 25; trial++ {
		nv := 4 + rng.Intn(5)
		ne := rng.Intn(2 * nv)
		gd := randomGraph(rng, nv, ne, labels, edgeLabels)
		g := randomGraph(rng, nv, ne, labels, edgeLabels)
		p := Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: 0.4, K: 3}
		m, err := NewMatcher(gd, g, ranking.NewRanker(gd, nil, 3), ranking.NewRanker(g, nil, 3), p)
		if err != nil {
			t.Fatal(err)
		}
		u := graph.VID(rng.Intn(nv))
		v := graph.VID(rng.Intn(nv))
		if !m.Match(u, v) {
			continue
		}
		checked++
		w := m.Witness(u, v)
		inPi := make(map[Pair]bool, len(w))
		for _, pr := range w {
			inPi[pr] = true
		}
		if !inPi[(Pair{U: u, V: v})] {
			t.Fatalf("witness misses the root pair")
		}
		for _, pr := range w {
			if m.Hv(pr.U, pr.V) < p.Sigma {
				t.Errorf("witness pair %v violates sigma", pr)
			}
			if gd.IsLeaf(pr.U) {
				continue
			}
			lineage := m.Lineage(pr.U, pr.V)
			// Injectivity.
			usedV := map[graph.VID]bool{}
			var sum float64
			sel := map[graph.VID]ranking.Selected{}
			for _, s := range m.RD.TopK(pr.U, p.K) {
				sel[s.Desc] = s
			}
			selV := map[graph.VID]ranking.Selected{}
			for _, s := range m.RG.TopK(pr.V, p.K) {
				selV[s.Desc] = s
			}
			for _, lp := range lineage {
				if usedV[lp.V] {
					t.Errorf("lineage of %v not injective", pr)
				}
				usedV[lp.V] = true
				if !inPi[lp] {
					t.Errorf("lineage pair %v of %v missing from witness", lp, pr)
				}
				su, okU := sel[lp.U]
				sv, okV := selV[lp.V]
				if !okU || !okV {
					t.Fatalf("lineage pair %v not among top-k selections", lp)
				}
				sum += m.Hrho(su.Path, sv.Path)
			}
			if sum < p.Delta-1e-9 {
				t.Errorf("lineage of %v aggregates to %f < delta", pr, sum)
			}
		}
	}
	if checked == 0 {
		t.Skip("no matches produced on random graphs this seed")
	}
}

// TestMaximumMatchUnion is Proposition 4's machinery: the union of two
// witnesses (from different query roots over the same graphs) stays
// inside the unique maximum match computed by the reference fixpoint.
func TestMaximumMatchUnion(t *testing.T) {
	labels := []string{"P", "Q"}
	edgeLabels := []string{"x"}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		nv := 4 + rng.Intn(4)
		ne := rng.Intn(2 * nv)
		gd := randomGraph(rng, nv, ne, labels, edgeLabels)
		g := randomGraph(rng, nv, ne, labels, edgeLabels)
		p := Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: 0.4, K: 3}
		m, err := NewMatcher(gd, g, ranking.NewRanker(gd, nil, 3), ranking.NewRanker(g, nil, 3), p)
		if err != nil {
			t.Fatal(err)
		}
		var union []Pair
		for u := 0; u < nv; u++ {
			for v := 0; v < nv; v++ {
				if m.Match(graph.VID(u), graph.VID(v)) {
					union = append(union, m.Witness(graph.VID(u), graph.VID(v))...)
				}
			}
		}
		// Every witnessed pair must be in the greatest fixpoint.
		m2, _ := NewMatcher(gd, g, ranking.NewRanker(gd, nil, 3), ranking.NewRanker(g, nil, 3), p)
		for _, pr := range union {
			if !ReferenceMatch(m2, pr.U, pr.V) {
				t.Fatalf("trial %d: witnessed pair %v outside the maximum match", trial, pr)
			}
		}
	}
}

func TestLineageOfUnknownPair(t *testing.T) {
	f := buildPaperFixture(t)
	m := newMatcher(t, f.gd, f.g, f.params)
	if m.Lineage(f.u1, f.v1) != nil {
		t.Error("lineage before matching should be nil")
	}
	if m.Witness(f.u1, f.v3) != nil {
		t.Error("witness of unevaluated pair should be nil")
	}
}

// TestVPairEqualsPerPairMatch: the degree-sorted, cache-sharing
// VParaMatch returns exactly the vertices a fresh per-pair ParaMatch
// confirms (DESIGN.md invariant).
func TestVPairEqualsPerPairMatch(t *testing.T) {
	labels := []string{"P", "Q", "R"}
	edgeLabels := []string{"x", "y"}
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		nv := 4 + rng.Intn(6)
		ne := rng.Intn(2 * nv)
		gd := randomGraph(rng, nv, ne, labels, edgeLabels)
		g := randomGraph(rng, nv, ne, labels, edgeLabels)
		p := Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: 0.4, K: 3}
		u := graph.VID(rng.Intn(nv))

		m, err := NewMatcher(gd, g, ranking.NewRanker(gd, nil, 3), ranking.NewRanker(g, nil, 3), p)
		if err != nil {
			t.Fatal(err)
		}
		got := map[graph.VID]bool{}
		for _, pr := range m.VPair(u, nil) {
			got[pr.V] = true
		}
		for v := 0; v < nv; v++ {
			fresh, _ := NewMatcher(gd, g, ranking.NewRanker(gd, nil, 3), ranking.NewRanker(g, nil, 3), p)
			want := fresh.Match(u, graph.VID(v))
			if got[graph.VID(v)] != want {
				t.Fatalf("trial %d: VPair and per-pair Match disagree on (%d,%d): %v vs %v",
					trial, u, v, got[graph.VID(v)], want)
			}
		}
	}
}
