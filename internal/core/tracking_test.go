package core

import (
	"testing"

	"her/internal/graph"
	"her/internal/ranking"
)

// trackedFixture: u1 needs both children (δ=1.0); the (u2,v2) child is
// decided externally via assumption.
func trackedFixture(t *testing.T) (*Matcher, Pair, Pair) {
	t.Helper()
	gd := graph.New()
	u1 := gd.AddVertex("A")
	u2 := gd.AddVertex("B")
	u3 := gd.AddVertex("C")
	gd.MustAddEdge(u1, u2, "b")
	gd.MustAddEdge(u1, u3, "c")
	g := graph.New()
	v1 := g.AddVertex("A")
	v2 := g.AddVertex("B")
	v3 := g.AddVertex("C")
	g.MustAddEdge(v1, v2, "b")
	g.MustAddEdge(v1, v3, "c")
	m := newMatcher(t, gd, g, Params{Mv: exactMv, Mrho: exactMrho, Sigma: 1, Delta: 1.0, K: 3})
	m.EnableReadTracking()
	return m, Pair{U: u1, V: v1}, Pair{U: u2, V: v2}
}

func TestInvalidateAssumptionFlipsReader(t *testing.T) {
	m, root, child := trackedFixture(t)
	// Delegate the child pair: assume it true.
	m.SetDelegate(func(p Pair) bool { return p == child })
	if !m.Match(root.U, root.V) {
		t.Fatal("root should match under the assumption")
	}
	// The owner refutes the assumption: the root must flip to false.
	m.Invalidate(child)
	if valid, ok := m.Cached(root); !ok || valid {
		t.Error("root not rectified after assumption refuted")
	}
	// And back: revalidation restores it.
	m.Revalidate(child)
	if valid, ok := m.Cached(root); !ok || !valid {
		t.Error("root not restored after revalidation")
	}
}

func TestRevalidateObserver(t *testing.T) {
	m, root, child := trackedFixture(t)
	m.SetDelegate(func(p Pair) bool { return p == child })
	var revalidated []Pair
	m.SetOnRevalid(func(p Pair) { revalidated = append(revalidated, p) })
	m.Match(root.U, root.V)
	m.Invalidate(child)
	m.Revalidate(child)
	// The root flipped false→true during Revalidate's rerun.
	found := false
	for _, p := range revalidated {
		if p == root {
			found = true
		}
	}
	if !found {
		t.Errorf("onRevalid saw %v, want root %v", revalidated, root)
	}
}

func TestFrozenPairStaysInvalid(t *testing.T) {
	m, root, child := trackedFixture(t)
	m.SetDelegate(func(p Pair) bool { return p == child })
	m.Match(root.U, root.V)
	// Oscillate the assumption beyond the recheck budget.
	budget := m.maxRechecks()
	for i := 0; i < budget+5; i++ {
		m.Invalidate(child)
		m.Revalidate(child)
	}
	// The root is frozen at a conservative verdict; further revalidation
	// cannot resurrect it.
	if !m.frozen[root] {
		t.Skip("budget not exhausted in this configuration")
	}
	if valid, ok := m.Cached(root); !ok || valid {
		t.Error("frozen root should stay invalid")
	}
	m.Revalidate(child)
	if valid, _ := m.Cached(root); valid {
		t.Error("frozen pair resurrected")
	}
}

func TestForgetVertices(t *testing.T) {
	f := buildPaperFixture(t)
	m := newMatcher(t, f.gd, f.g, f.params)
	if !m.Match(f.u1, f.v1) {
		t.Fatal("setup")
	}
	if _, ok := m.Cached(Pair{U: f.u2, V: f.v10}); !ok {
		t.Fatal("brand pair should be cached")
	}
	// Forget everything whose G side is the brand vertex: the brand pair
	// AND the root (which depends on it) must both be dropped.
	m.ForgetVertices(func(v graph.VID) bool { return v == f.v10 })
	if _, ok := m.Cached(Pair{U: f.u2, V: f.v10}); ok {
		t.Error("brand pair survived ForgetVertices")
	}
	if _, ok := m.Cached(Pair{U: f.u1, V: f.v1}); ok {
		t.Error("dependent root survived ForgetVertices")
	}
	// Re-evaluation from scratch reproduces the match.
	if !m.Match(f.u1, f.v1) {
		t.Error("match lost after forget + re-evaluate")
	}
}

func TestNoteReadIgnoresSelf(t *testing.T) {
	m, root, _ := trackedFixture(t)
	m.noteRead(root, root)
	if len(m.readers[root]) != 0 {
		t.Error("self-read recorded")
	}
}

func TestCandidateListOrdering(t *testing.T) {
	gd := graph.New()
	u := gd.AddVertex("E")
	ua := gd.AddVertex("x")
	gd.MustAddEdge(u, ua, "good")
	g := graph.New()
	v := g.AddVertex("E")
	va := g.AddVertex("x")
	vb := g.AddVertex("x")
	g.MustAddEdge(v, va, "good")
	g.MustAddEdge(v, vb, "bad")
	// M_ρ scores "good/good" above "good/bad"; the candidate list for
	// ua must come back sorted by descending h_ρ.
	mrho := func(a, b []string) float64 {
		if a[0] == b[0] {
			return 1
		}
		return 0.2
	}
	m, err := NewMatcher(gd, g,
		ranking.NewRanker(gd, nil, 2), ranking.NewRanker(g, nil, 2),
		Params{Mv: exactMv, Mrho: mrho, Sigma: 1, Delta: 0.1, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	vuk := m.RD.TopK(u, 3)
	vvk := m.RG.TopK(v, 3)
	l := m.candidateList(vuk[0], vvk)
	if len(l) != 2 {
		t.Fatalf("candidate list = %+v", l)
	}
	if l[0].score < l[1].score {
		t.Errorf("list not descending: %+v", l)
	}
	if l[0].v != va {
		t.Errorf("best candidate should be va (via 'good'), got %v", l[0].v)
	}
}
