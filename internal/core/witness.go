package core

import (
	"fmt"
	"sort"

	"her/internal/graph"
)

// Witness returns the match relation Π(u, v) recorded in the cache for a
// previously confirmed match: the pair itself, its lineage set, and the
// lineage sets of every dependent pair, transitively. It returns nil when
// (u, v) is not a confirmed match. This is the paper's explainability
// artifact — it shows WHY two vertices match.
func (m *Matcher) Witness(u, v graph.VID) []Pair {
	root := Pair{U: u, V: v}
	e, ok := m.cache[root]
	if !ok || !e.valid {
		return nil
	}
	seen := map[Pair]bool{root: true}
	queue := []Pair{root}
	var out []Pair
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		out = append(out, p)
		if pe, ok := m.cache[p]; ok {
			for _, q := range pe.w {
				if !seen[q] {
					seen[q] = true
					queue = append(queue, q)
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].U != out[b].U {
			return out[a].U < out[b].U
		}
		return out[a].V < out[b].V
	})
	return out
}

// Lineage returns the lineage set S(u,v) recorded for a confirmed match.
func (m *Matcher) Lineage(u, v graph.VID) []Pair {
	e, ok := m.cache[Pair{U: u, V: v}]
	if !ok || !e.valid {
		return nil
	}
	out := make([]Pair, len(e.w))
	copy(out, e.w)
	return out
}

// SchemaMatch maps one edge (attribute) from u_t to the path of G that
// encodes it (appendix D): Edge is the first hop of the G_D-side path and
// Rho the prefix of the matching G-side path maximizing M_ρ.
type SchemaMatch struct {
	Attr string     // the G_D edge label (the attribute name)
	Rho  graph.Path // matching path prefix in G
}

// SchemaMatches computes Γ(u_t, v_g) for a previously confirmed match:
// for every lineage pair (u', v') of (u_t, v_g) whose G_D-side path
// starts with an attribute edge e, the prefix ρ_e of the G-side path with
// the maximum M_ρ(L(e), L(ρ_e)) is selected.
func (m *Matcher) SchemaMatches(ut, vg graph.VID) ([]SchemaMatch, error) {
	e, ok := m.cache[Pair{U: ut, V: vg}]
	if !ok || !e.valid {
		return nil, fmt.Errorf("core: (%d, %d) is not a confirmed match", ut, vg)
	}
	vuk := m.RD.TopK(ut, m.P.K)
	vvk := m.RG.TopK(vg, m.P.K)
	pathU := make(map[graph.VID]graph.Path, len(vuk))
	for _, s := range vuk {
		pathU[s.Desc] = s.Path
	}
	pathV := make(map[graph.VID]graph.Path, len(vvk))
	for _, s := range vvk {
		pathV[s.Desc] = s.Path
	}
	var out []SchemaMatch
	for _, lp := range e.w {
		pu, okU := pathU[lp.U]
		pv, okV := pathV[lp.V]
		if !okU || !okV || pu.Len() == 0 || pv.Len() == 0 {
			continue
		}
		attr := pu.EdgeLabels[0]
		best := pv.Prefix(1)
		bestScore := m.P.Mrho([]string{attr}, best.EdgeLabels)
		for n := 2; n <= pv.Len(); n++ {
			pre := pv.Prefix(n)
			if s := m.P.Mrho([]string{attr}, pre.EdgeLabels); s > bestScore {
				bestScore, best = s, pre
			}
		}
		out = append(out, SchemaMatch{Attr: attr, Rho: best})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Attr < out[b].Attr })
	return out, nil
}
