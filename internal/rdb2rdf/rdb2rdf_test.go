package rdb2rdf

import (
	"testing"

	"her/internal/graph"
	"her/internal/relational"
)

// paperDB builds Tables I and II of the paper (Example 2 / Fig. 3).
func paperDB(t *testing.T) *relational.Database {
	t.Helper()
	brand := relational.MustSchema("brand",
		[]string{"name", "country", "manufacturer", "made_in"}, "name")
	item := relational.MustSchema("item",
		[]string{"item", "material", "color", "type", "brand", "qty"}, "item",
		relational.ForeignKey{Attr: "brand", RefRelation: "brand"})
	db := relational.NewDatabase(item, brand)
	db.Relation("brand").MustInsert("Addidas Originals", "Germany", "Addidas AG", "Can Duoc, VN")
	db.Relation("brand").MustInsert("Addidas", "Germany", "Addidas AG", "Long An, Vietnam")
	db.Relation("item").MustInsert("Dame Basketball Shoes D7", "phylon foam", "white", "Dame 7", "Addidas Originals", "500")
	db.Relation("item").MustInsert("Lightweight Running Shoes", "synthetic", "red", "DD8505", "Addidas Originals", "100")
	db.Relation("item").MustInsert("Mid-cut Basketball Shoes Ultra Comfortable", "phylon foam", "red", relational.Null, "Addidas", "200")
	return db
}

func TestMapExample2Shape(t *testing.T) {
	db := paperDB(t)
	g, m, err := Map(db)
	if err != nil {
		t.Fatal(err)
	}
	// 5 tuple vertices.
	if m.NumTupleVertices() != 5 {
		t.Fatalf("tuple vertices = %d, want 5", m.NumTupleVertices())
	}
	// Attribute vertices: brand tuples have 4 attrs each (8); item tuples:
	// t1 has 5 non-FK non-null (item, material, color, type, qty),
	// t2 has 5, t3 has 4 (type is null). Total 8+14 = 22 attr vertices.
	wantVertices := 5 + 22
	if g.NumVertices() != wantVertices {
		t.Errorf("vertices = %d, want %d", g.NumVertices(), wantVertices)
	}
	// Edges: 22 attribute edges + 3 FK edges.
	if g.NumEdges() != 25 {
		t.Errorf("edges = %d, want 25", g.NumEdges())
	}
	u1, ok := m.VertexOf("item", 0)
	if !ok {
		t.Fatal("item tuple 0 has no vertex")
	}
	if g.Label(u1) != "item" {
		t.Errorf("tuple vertex labeled %q, want relation name", g.Label(u1))
	}
	// FK edge from item t1 to brand b1 labeled "brand".
	u2, _ := m.VertexOf("brand", 0)
	lbl, found := g.FindEdge(u1, u2)
	if !found || lbl != "brand" {
		t.Errorf("FK edge = %q,%v", lbl, found)
	}
	if a, isFK := m.IsForeignKeyEdge(u1, u2); !isFK || a != "brand" {
		t.Errorf("IsForeignKeyEdge = %q,%v", a, isFK)
	}
	// Attribute vertex for material carries the value as its label.
	av, ok := m.AttrVertexOf("item", 0, "material")
	if !ok {
		t.Fatal("material attribute vertex missing")
	}
	if g.Label(av) != "phylon foam" {
		t.Errorf("material vertex label = %q", g.Label(av))
	}
	if lbl, _ := g.FindEdge(u1, av); lbl != "material" {
		t.Errorf("material edge label = %q", lbl)
	}
}

func TestMappingIsOneToOne(t *testing.T) {
	db := paperDB(t)
	g, m, err := Map(db)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[graph.VID]bool)
	for _, relName := range db.RelationNames() {
		rel := db.Relation(relName)
		for _, tu := range rel.Tuples {
			v, ok := m.VertexOf(relName, tu.ID)
			if !ok {
				t.Fatalf("tuple %s/%d unmapped", relName, tu.ID)
			}
			if seen[v] {
				t.Fatalf("vertex %d maps two tuples", v)
			}
			seen[v] = true
			ref, ok := m.TupleOf(v)
			if !ok || ref.Relation != relName || ref.TupleID != tu.ID {
				t.Fatalf("inverse mapping broken for %s/%d", relName, tu.ID)
			}
		}
	}
	// Attribute vertices are all distinct and distinct from tuple vertices.
	for _, relName := range db.RelationNames() {
		rel := db.Relation(relName)
		for _, tu := range rel.Tuples {
			for _, attr := range rel.Schema.Attrs {
				if av, ok := m.AttrVertexOf(relName, tu.ID, attr); ok {
					if seen[av] {
						t.Fatalf("attribute vertex %d reused", av)
					}
					seen[av] = true
				}
			}
		}
	}
	if len(seen) != g.NumVertices() {
		t.Errorf("mapped %d vertices, graph has %d", len(seen), g.NumVertices())
	}
}

func TestNullAttributesSkipped(t *testing.T) {
	db := paperDB(t)
	_, m, err := Map(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.AttrVertexOf("item", 2, "type"); ok {
		t.Error("null attribute should not produce a vertex")
	}
}

func TestDanglingForeignKeyDegrades(t *testing.T) {
	brand := relational.MustSchema("brand", []string{"name"}, "name")
	item := relational.MustSchema("item", []string{"item", "brand"}, "item",
		relational.ForeignKey{Attr: "brand", RefRelation: "brand"})
	db := relational.NewDatabase(item, brand)
	db.Relation("item").MustInsert("Widget", "GhostBrand")
	g, m, err := Map(db)
	if err != nil {
		t.Fatal(err)
	}
	av, ok := m.AttrVertexOf("item", 0, "brand")
	if !ok {
		t.Fatal("dangling FK should degrade to attribute vertex")
	}
	if g.Label(av) != "GhostBrand" {
		t.Errorf("degraded FK vertex label = %q", g.Label(av))
	}
}

func TestAddTupleIncremental(t *testing.T) {
	db := paperDB(t)
	g, m, err := Map(db)
	if err != nil {
		t.Fatal(err)
	}
	nv, ne := g.NumVertices(), g.NumEdges()

	// A new item referencing an existing brand.
	id := db.Relation("item").MustInsert(
		"Trail Blazer X", "mesh", "black", "TB1", "Addidas", "50")
	if err := AddTuple(g, m, db, "item", id); err != nil {
		t.Fatal(err)
	}
	ut, ok := m.VertexOf("item", id)
	if !ok {
		t.Fatal("new tuple unmapped")
	}
	if g.Label(ut) != "item" {
		t.Errorf("new tuple vertex label = %q", g.Label(ut))
	}
	// 1 tuple vertex + 5 attribute vertices (brand is an FK edge).
	if g.NumVertices() != nv+6 {
		t.Errorf("vertices %d → %d, want +6", nv, g.NumVertices())
	}
	if g.NumEdges() != ne+6 {
		t.Errorf("edges %d → %d, want +6", ne, g.NumEdges())
	}
	// The FK edge lands on the existing brand vertex.
	b2, _ := m.VertexOf("brand", 1)
	if lbl, found := g.FindEdge(ut, b2); !found || lbl != "brand" {
		t.Errorf("FK edge = %q,%v", lbl, found)
	}
	// Round trip still works for the new tuple.
	got, err := RecoverTuple(g, m, db, ut)
	if err != nil {
		t.Fatal(err)
	}
	if got["material"] != "mesh" || got["brand"] != "Addidas" {
		t.Errorf("recovered = %v", got)
	}

	// Error cases.
	if err := AddTuple(g, m, db, "nonexistent", 0); err == nil {
		t.Error("unknown relation should fail")
	}
	if err := AddTuple(g, m, db, "item", 99); err == nil {
		t.Error("out-of-range tuple should fail")
	}
	if err := AddTuple(g, m, db, "item", id); err == nil {
		t.Error("re-adding a mapped tuple should fail")
	}
}

func TestAddTupleWithNullAndDanglingFK(t *testing.T) {
	db := paperDB(t)
	g, m, err := Map(db)
	if err != nil {
		t.Fatal(err)
	}
	id := db.Relation("item").MustInsert(
		"Ghost Shoe", relational.Null, "grey", relational.Null, "NoSuchBrand", "1")
	if err := AddTuple(g, m, db, "item", id); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.AttrVertexOf("item", id, "material"); ok {
		t.Error("null attribute should not map")
	}
	// Dangling FK degrades to an attribute vertex.
	av, ok := m.AttrVertexOf("item", id, "brand")
	if !ok || g.Label(av) != "NoSuchBrand" {
		t.Errorf("dangling FK handling: %v %q", ok, g.Label(av))
	}
}

func TestRecoverTupleRoundTrip(t *testing.T) {
	db := paperDB(t)
	g, m, err := Map(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, relName := range db.RelationNames() {
		rel := db.Relation(relName)
		for _, tu := range rel.Tuples {
			v, _ := m.VertexOf(relName, tu.ID)
			got, err := RecoverTuple(g, m, db, v)
			if err != nil {
				t.Fatal(err)
			}
			for i, attr := range rel.Schema.Attrs {
				want := tu.Values[i]
				if relational.IsNull(want) {
					if _, present := got[attr]; present {
						t.Errorf("%s/%d: null attr %s recovered as %q", relName, tu.ID, attr, got[attr])
					}
					continue
				}
				if got[attr] != want {
					t.Errorf("%s/%d attr %s: recovered %q, want %q", relName, tu.ID, attr, got[attr], want)
				}
			}
		}
	}
	// Non-tuple vertex errors.
	av, _ := m.AttrVertexOf("item", 0, "color")
	if _, err := RecoverTuple(g, m, db, av); err == nil {
		t.Error("RecoverTuple on attribute vertex should fail")
	}
}
