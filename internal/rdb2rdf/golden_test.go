package rdb2rdf

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"her/internal/relational"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenDB is a compact schema exercising every mapping rule: a plain
// attribute, a nullable attribute (omitted from the graph), and a
// foreign key (edge to the referenced tuple vertex, no leaf).
func goldenDB(t *testing.T) *relational.Database {
	t.Helper()
	maker := relational.MustSchema("maker", []string{"name", "country"}, "name")
	part := relational.MustSchema("part", []string{"sku", "color", "maker"}, "sku",
		relational.ForeignKey{Attr: "maker", RefRelation: "maker"})
	db := relational.NewDatabase(part, maker)
	db.Relation("maker").MustInsert("Acme", "US")
	db.Relation("maker").MustInsert("Umbrella", relational.Null)
	db.Relation("part").MustInsert("bolt-1", "red", "Acme")
	db.Relation("part").MustInsert("nut-2", relational.Null, "Umbrella")
	db.Relation("part").MustInsert("cog-3", "blue", relational.Null)
	return db
}

// TestDirectMappingGolden pins the canonical mapping f_D byte for byte:
// the serialized G_D of a fixed database must match the committed golden
// TSV. Run with -update to regenerate after an intentional change.
func TestDirectMappingGolden(t *testing.T) {
	db := goldenDB(t)
	g, _, err := Map(db)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "direct_mapping.tsv")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("canonical mapping drifted from golden file %s\n--- got ---\n%s--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}
