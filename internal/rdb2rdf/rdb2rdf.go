// Package rdb2rdf implements the W3C RDB2RDF direct-mapping canonical
// graph of Section II: given a database D of schema R it produces the
// canonical graph G_D and the 1-1 mapping f_D from tuples and attributes
// of D to vertices and edges of G_D.
//
// Following the paper's canonical mapping:
//   - each tuple t of relation schema R maps to a unique vertex u_t
//     labeled R;
//   - each non-null, non-foreign-key attribute A of t maps to a unique
//     vertex u_{t,A} labeled with the value t.A, joined by an edge
//     (u_t, u_{t,A}) labeled A;
//   - each foreign-key attribute A of t referencing tuple t' maps to an
//     edge (u_t, u_{t'}) carrying the label pair (A, γ); the γ marker is
//     recorded in the Mapping rather than the label string, so score
//     functions see the attribute name A (as in the paper's Example 7,
//     which computes h_ρ(brand, brandName) for the FK edge).
package rdb2rdf

import (
	"fmt"

	"her/internal/graph"
	"her/internal/relational"
)

// TupleRef identifies a tuple within a database.
type TupleRef struct {
	Relation string
	TupleID  int
}

// Mapping is the canonical 1-1 mapping f_D.
type Mapping struct {
	tupleVertex map[TupleRef]graph.VID
	vertexTuple map[graph.VID]TupleRef
	attrVertex  map[TupleRef]map[string]graph.VID
	fkEdges     map[[2]graph.VID]string // (u_t, u_t') → attribute name
}

// VertexOf returns the vertex u_t denoting tuple t of relation rel.
func (m *Mapping) VertexOf(rel string, tupleID int) (graph.VID, bool) {
	v, ok := m.tupleVertex[TupleRef{rel, tupleID}]
	return v, ok
}

// TupleOf returns the tuple a vertex denotes, if it is a tuple vertex.
func (m *Mapping) TupleOf(v graph.VID) (TupleRef, bool) {
	t, ok := m.vertexTuple[v]
	return t, ok
}

// IsTupleVertex reports whether v denotes a tuple (rather than an
// attribute value).
func (m *Mapping) IsTupleVertex(v graph.VID) bool {
	_, ok := m.vertexTuple[v]
	return ok
}

// AttrVertexOf returns the vertex u_{t,A} for attribute attr of the tuple.
func (m *Mapping) AttrVertexOf(rel string, tupleID int, attr string) (graph.VID, bool) {
	av, ok := m.attrVertex[TupleRef{rel, tupleID}]
	if !ok {
		return graph.NoVertex, false
	}
	v, ok := av[attr]
	return v, ok
}

// IsForeignKeyEdge reports whether (from, to) is a γ-marked foreign-key
// edge, returning the attribute name it encodes.
func (m *Mapping) IsForeignKeyEdge(from, to graph.VID) (string, bool) {
	a, ok := m.fkEdges[[2]graph.VID{from, to}]
	return a, ok
}

// TupleVertices returns every tuple vertex of relation rel in tuple order.
func (m *Mapping) TupleVertices(rel string, count int) []graph.VID {
	out := make([]graph.VID, 0, count)
	for id := 0; id < count; id++ {
		if v, ok := m.VertexOf(rel, id); ok {
			out = append(out, v)
		}
	}
	return out
}

// NumTupleVertices reports how many vertices denote tuples.
func (m *Mapping) NumTupleVertices() int { return len(m.vertexTuple) }

// Map converts database db into its canonical graph G_D and mapping f_D.
func Map(db *relational.Database) (*graph.Graph, *Mapping, error) {
	g := graph.New(db.NumTuples() * 4)
	m := &Mapping{
		tupleVertex: make(map[TupleRef]graph.VID),
		vertexTuple: make(map[graph.VID]TupleRef),
		attrVertex:  make(map[TupleRef]map[string]graph.VID),
		fkEdges:     make(map[[2]graph.VID]string),
	}

	// Pass 1: one vertex per tuple, labeled with the relation name.
	for _, relName := range db.RelationNames() {
		rel := db.Relation(relName)
		for _, t := range rel.Tuples {
			ref := TupleRef{relName, t.ID}
			v := g.AddVertex(relName)
			m.tupleVertex[ref] = v
			m.vertexTuple[v] = ref
			m.attrVertex[ref] = make(map[string]graph.VID, len(rel.Schema.Attrs))
		}
	}

	// Pass 2: attribute vertices and foreign-key edges.
	for _, relName := range db.RelationNames() {
		rel := db.Relation(relName)
		fkOf := make(map[string]string, len(rel.Schema.ForeignKeys))
		for _, fk := range rel.Schema.ForeignKeys {
			fkOf[fk.Attr] = fk.RefRelation
		}
		for _, t := range rel.Tuples {
			ref := TupleRef{relName, t.ID}
			ut := m.tupleVertex[ref]
			for i, attr := range rel.Schema.Attrs {
				val := t.Values[i]
				if relational.IsNull(val) {
					continue
				}
				if refRel, isFK := fkOf[attr]; isFK {
					target := db.Relation(refRel)
					if target == nil {
						return nil, nil, fmt.Errorf("rdb2rdf: %s.%s references unknown relation %s", relName, attr, refRel)
					}
					if rt, ok := target.LookupKey(val); ok {
						ut2 := m.tupleVertex[TupleRef{refRel, rt.ID}]
						g.MustAddEdge(ut, ut2, attr)
						m.fkEdges[[2]graph.VID{ut, ut2}] = attr
						continue
					}
					// Dangling FK degrades to a plain attribute vertex.
				}
				av := g.AddVertex(val)
				g.MustAddEdge(ut, av, attr)
				m.attrVertex[ref][attr] = av
			}
		}
	}
	return g, m, nil
}

// AddTuple incrementally extends a canonical graph and its mapping with
// one tuple that was appended to db after Map ran: the tuple vertex, its
// attribute vertices and its outgoing foreign-key edges are added.
// Dangling foreign keys of OLDER tuples that the new tuple would resolve
// are not rewritten (they already degraded to attribute vertices).
func AddTuple(g *graph.Graph, m *Mapping, db *relational.Database, relName string, tupleID int) error {
	rel := db.Relation(relName)
	if rel == nil {
		return fmt.Errorf("rdb2rdf: unknown relation %s", relName)
	}
	if tupleID < 0 || tupleID >= len(rel.Tuples) {
		return fmt.Errorf("rdb2rdf: %s has no tuple %d", relName, tupleID)
	}
	ref := TupleRef{relName, tupleID}
	if _, dup := m.tupleVertex[ref]; dup {
		return fmt.Errorf("rdb2rdf: tuple %s/%d already mapped", relName, tupleID)
	}
	t := rel.Tuples[tupleID]
	ut := g.AddVertex(relName)
	m.tupleVertex[ref] = ut
	m.vertexTuple[ut] = ref
	m.attrVertex[ref] = make(map[string]graph.VID, len(rel.Schema.Attrs))

	fkOf := make(map[string]string, len(rel.Schema.ForeignKeys))
	for _, fk := range rel.Schema.ForeignKeys {
		fkOf[fk.Attr] = fk.RefRelation
	}
	for i, attr := range rel.Schema.Attrs {
		val := t.Values[i]
		if relational.IsNull(val) {
			continue
		}
		if refRel, isFK := fkOf[attr]; isFK {
			target := db.Relation(refRel)
			if target == nil {
				return fmt.Errorf("rdb2rdf: %s.%s references unknown relation %s", relName, attr, refRel)
			}
			if rt, ok := target.LookupKey(val); ok {
				ut2, mapped := m.tupleVertex[TupleRef{refRel, rt.ID}]
				if mapped {
					g.MustAddEdge(ut, ut2, attr)
					m.fkEdges[[2]graph.VID{ut, ut2}] = attr
					continue
				}
			}
		}
		av := g.AddVertex(val)
		g.MustAddEdge(ut, av, attr)
		m.attrVertex[ref][attr] = av
	}
	return nil
}

// RecoverTuple reconstructs the attribute values of the tuple denoted by
// vertex u_t from the canonical graph alone, for round-trip verification.
// Foreign-key attributes recover the referenced tuple's key value.
func RecoverTuple(g *graph.Graph, m *Mapping, db *relational.Database, v graph.VID) (map[string]string, error) {
	ref, ok := m.TupleOf(v)
	if !ok {
		return nil, fmt.Errorf("rdb2rdf: vertex %d is not a tuple vertex", v)
	}
	rel := db.Relation(ref.Relation)
	out := make(map[string]string)
	for _, e := range g.Out(v) {
		if fkAttr, isFK := m.IsForeignKeyEdge(v, e.To); isFK {
			tref, _ := m.TupleOf(e.To)
			target := db.Relation(tref.Relation)
			keyIdx := target.Schema.AttrIndex(target.Schema.Key)
			out[fkAttr] = target.Tuples[tref.TupleID].Values[keyIdx]
			continue
		}
		out[e.Label] = g.Label(e.To)
	}
	_ = rel
	return out, nil
}
