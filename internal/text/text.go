// Package text provides the string-processing primitives shared by the
// embedding substrate and the baseline entity-resolution methods:
// tokenization, character n-grams, TF-IDF weighting and edit distance.
package text

import (
	"strings"
	"unicode"
)

// Tokenize splits a label into lower-cased word tokens. It understands the
// conventions that appear in relation attributes and graph predicates:
// snake_case, kebab-case, camelCase and path-like separators ("/akt:has-author"
// tokenizes to ["akt", "has", "author"]).
func Tokenize(s string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	prevLower := false
	for _, r := range s {
		switch {
		case unicode.IsLetter(r):
			// Split camelCase at a lower→upper boundary.
			if unicode.IsUpper(r) && prevLower {
				flush()
			}
			cur.WriteRune(r)
			prevLower = unicode.IsLower(r)
		case unicode.IsDigit(r):
			cur.WriteRune(r)
			prevLower = false
		default:
			flush()
			prevLower = false
		}
	}
	flush()
	return tokens
}

// NormalizeLabel lower-cases a label and collapses separators to single
// spaces, providing a canonical form for exact comparisons.
func NormalizeLabel(s string) string {
	return strings.Join(Tokenize(s), " ")
}

// NGrams returns the character n-grams of the normalized form of s. The
// string is padded with '#' on both sides so that short strings still yield
// at least one gram, following the common ER convention.
func NGrams(s string, n int) []string {
	if n <= 0 {
		return nil
	}
	norm := NormalizeLabel(s)
	if norm == "" {
		return nil
	}
	padded := strings.Repeat("#", n-1) + norm + strings.Repeat("#", n-1)
	runes := []rune(padded)
	if len(runes) < n {
		return nil
	}
	grams := make([]string, 0, len(runes)-n+1)
	for i := 0; i+n <= len(runes); i++ {
		grams = append(grams, string(runes[i:i+n]))
	}
	return grams
}

// Levenshtein computes the edit distance between a and b.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LevenshteinSim maps edit distance into a [0,1] similarity.
func LevenshteinSim(a, b string) float64 {
	if a == "" && b == "" {
		return 1
	}
	la, lb := len([]rune(a)), len([]rune(b))
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	if maxLen == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// JaccardTokens computes the Jaccard similarity of the token sets of a and b.
func JaccardTokens(a, b string) float64 {
	sa := tokenSet(a)
	sb := tokenSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	return float64(inter) / float64(len(sa)+len(sb)-inter)
}

// OverlapTokens computes the overlap coefficient of the token sets.
func OverlapTokens(a, b string) float64 {
	sa := tokenSet(a)
	sb := tokenSet(b)
	if len(sa) == 0 || len(sb) == 0 {
		if len(sa) == len(sb) {
			return 1
		}
		return 0
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	small := len(sa)
	if len(sb) < small {
		small = len(sb)
	}
	return float64(inter) / float64(small)
}

func tokenSet(s string) map[string]bool {
	set := make(map[string]bool)
	for _, t := range Tokenize(s) {
		set[t] = true
	}
	return set
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
