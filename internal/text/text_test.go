package text

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"made_in", []string{"made", "in"}},
		{"brandCountry", []string{"brand", "country"}},
		{"factorySite", []string{"factory", "site"}},
		{"/akt:has-author", []string{"akt", "has", "author"}},
		{"Dame Basketball Shoes D7", []string{"dame", "basketball", "shoes", "d7"}},
		{"", nil},
		{"   ", nil},
		{"HTTPServer", []string{"httpserver"}}, // no lower→upper boundary inside the acronym run
		{"typeNo", []string{"type", "no"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestNormalizeLabel(t *testing.T) {
	if NormalizeLabel("Made_In") != "made in" {
		t.Errorf("NormalizeLabel(Made_In) = %q", NormalizeLabel("Made_In"))
	}
	if NormalizeLabel("") != "" {
		t.Errorf("NormalizeLabel empty = %q", NormalizeLabel(""))
	}
}

func TestNGrams(t *testing.T) {
	grams := NGrams("ab", 3)
	// "##ab##" → ##a #ab ab# b##
	want := []string{"##a", "#ab", "ab#", "b##"}
	if len(grams) != len(want) {
		t.Fatalf("NGrams(ab,3) = %v, want %v", grams, want)
	}
	for i := range grams {
		if grams[i] != want[i] {
			t.Fatalf("NGrams(ab,3) = %v, want %v", grams, want)
		}
	}
	if NGrams("", 3) != nil {
		t.Error("NGrams of empty string should be nil")
	}
	if NGrams("abc", 0) != nil {
		t.Error("NGrams with n=0 should be nil")
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	symmetric := func(a, b string) bool {
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error(err)
	}
	identity := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Error(err)
	}
	triangle := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(triangle, cfg); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinSim(t *testing.T) {
	if s := LevenshteinSim("abc", "abc"); s != 1 {
		t.Errorf("sim of identical strings = %f", s)
	}
	if s := LevenshteinSim("", ""); s != 1 {
		t.Errorf("sim of empty strings = %f", s)
	}
	if s := LevenshteinSim("abc", "xyz"); s != 0 {
		t.Errorf("sim of disjoint strings = %f", s)
	}
}

func TestJaccardAndOverlap(t *testing.T) {
	if j := JaccardTokens("red shoes", "red boots"); math.Abs(j-1.0/3) > 1e-9 {
		t.Errorf("Jaccard = %f, want 1/3", j)
	}
	if o := OverlapTokens("red", "red shoes and boots"); o != 1 {
		t.Errorf("Overlap = %f, want 1", o)
	}
	if j := JaccardTokens("", ""); j != 1 {
		t.Errorf("Jaccard of empties = %f", j)
	}
	if j := JaccardTokens("a", ""); j != 0 {
		t.Errorf("Jaccard with one empty = %f", j)
	}
}

func TestTFIDFCosine(t *testing.T) {
	c := NewCorpus(4)
	docs := []string{"Dame Basketball Shoes D7", "Dame Gen 7", "Lightweight Running Shoes", "Addidas Originals"}
	for _, d := range docs {
		c.Add(d)
	}
	va := c.Vector("Dame Basketball Shoes D7")
	vb := c.Vector("Dame Basketball Shoes D7")
	if s := Cosine(va, vb); math.Abs(s-1) > 1e-9 {
		t.Errorf("cosine of identical docs = %f, want 1", s)
	}
	vc := c.Vector("Addidas Originals")
	if s := Cosine(va, vc); s > 0.2 {
		t.Errorf("cosine of unrelated docs = %f, want near 0", s)
	}
	vd := c.Vector("Dame Basketball Shoes")
	if s := Cosine(va, vd); s < 0.5 {
		t.Errorf("cosine of near-identical docs = %f, want > 0.5", s)
	}
}

func TestTFIDFWordMode(t *testing.T) {
	c := NewCorpus(0)
	c.Add("alpha beta")
	c.Add("beta gamma")
	v := c.Vector("alpha beta")
	if len(v.Terms) != 2 {
		t.Fatalf("word-mode vector terms = %v", v.Terms)
	}
	var norm float64
	for _, w := range v.Weights {
		norm += w * w
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("vector not normalized: %f", norm)
	}
}

func TestCosineRange(t *testing.T) {
	c := NewCorpus(3)
	c.Add("aaa")
	c.Add("aab")
	prop := func(a, b string) bool {
		s := Cosine(c.Vector(a), c.Vector(b))
		return s >= 0 && s <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("Café Müller 42")
	want := []string{"café", "müller", "42"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize unicode = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	// CJK labels tokenize as letter runs.
	if toks := Tokenize("東京 2020"); len(toks) != 2 || toks[1] != "2020" {
		t.Errorf("CJK tokenize = %v", toks)
	}
}

func TestLevenshteinUnicode(t *testing.T) {
	if d := Levenshtein("café", "cafe"); d != 1 {
		t.Errorf("accented distance = %d", d)
	}
	if d := Levenshtein("東京", "京東"); d != 2 {
		t.Errorf("CJK swap distance = %d", d)
	}
}

func TestNGramsUnicode(t *testing.T) {
	grams := NGrams("éa", 2)
	// normalized "éa" padded to "#éa#": #é éa a#
	if len(grams) != 3 {
		t.Fatalf("unicode grams = %v", grams)
	}
}
