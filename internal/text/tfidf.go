package text

import (
	"math"
	"sort"
)

// Corpus accumulates documents and computes TF-IDF weighted sparse vectors,
// as used by the JedAI-style baseline ("character 4-grams with TF-IDF
// weights and cosine similarity").
type Corpus struct {
	docFreq map[string]int
	numDocs int
	gramN   int
}

// NewCorpus creates a TF-IDF corpus over character n-grams of size gramN.
// A gramN of 0 means word tokens instead of character grams.
func NewCorpus(gramN int) *Corpus {
	return &Corpus{docFreq: make(map[string]int), gramN: gramN}
}

func (c *Corpus) terms(doc string) []string {
	if c.gramN > 0 {
		return NGrams(doc, c.gramN)
	}
	return Tokenize(doc)
}

// Add registers a document so its terms contribute to document frequencies.
func (c *Corpus) Add(doc string) {
	c.numDocs++
	seen := make(map[string]bool)
	for _, t := range c.terms(doc) {
		if !seen[t] {
			seen[t] = true
			c.docFreq[t]++
		}
	}
}

// NumDocs reports how many documents have been added.
func (c *Corpus) NumDocs() int { return c.numDocs }

// SparseVec is a TF-IDF weighted sparse vector with unit L2 norm.
type SparseVec struct {
	Terms   []string
	Weights []float64
}

// Vector computes the normalized TF-IDF vector of doc against the corpus.
func (c *Corpus) Vector(doc string) SparseVec {
	tf := make(map[string]float64)
	for _, t := range c.terms(doc) {
		tf[t]++
	}
	terms := make([]string, 0, len(tf))
	for t := range tf {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	weights := make([]float64, len(terms))
	var norm float64
	for i, t := range terms {
		df := c.docFreq[t]
		idf := math.Log(float64(c.numDocs+1)/float64(df+1)) + 1
		w := tf[t] * idf
		weights[i] = w
		norm += w * w
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range weights {
			weights[i] /= norm
		}
	}
	return SparseVec{Terms: terms, Weights: weights}
}

// Cosine computes the cosine similarity of two sparse vectors. Both sides
// must come from Corpus.Vector, so terms are sorted and weights normalized.
func Cosine(a, b SparseVec) float64 {
	var dot float64
	i, j := 0, 0
	for i < len(a.Terms) && j < len(b.Terms) {
		switch {
		case a.Terms[i] == b.Terms[j]:
			dot += a.Weights[i] * b.Weights[j]
			i++
			j++
		case a.Terms[i] < b.Terms[j]:
			i++
		default:
			j++
		}
	}
	if dot > 1 {
		dot = 1
	}
	return dot
}
