package text

import (
	"math"
	"reflect"
	"testing"
)

// Edge cases for the string primitives: empty inputs, multi-byte
// Unicode (edit distance must count runes, not bytes), and strings
// shorter or longer than the n-gram window.

func TestLevenshteinEdgeCases(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"ab", "ba", 2},
		// Multi-byte runes: each é is one edit, not two byte edits.
		{"café", "cafe", 1},
		{"", "日本語", 3},
		{"日本語", "日本", 1},
		{"héllo", "hello", 1},
		{"ü", "u", 1},
		// Combining mark vs precomposed: distinct rune sequences.
		{"é", "é", 2},
	}
	for _, tc := range cases {
		if got := Levenshtein(tc.a, tc.b); got != tc.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if got := Levenshtein(tc.b, tc.a); got != tc.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d (asymmetric)", tc.b, tc.a, got, tc.want)
		}
	}
}

func TestLevenshteinSimEdgeCases(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"", "abc", 0},
		{"abc", "abc", 1},
		{"日本語", "日本", 1 - 1.0/3},
		{"café", "cafe", 0.75},
	}
	for _, tc := range cases {
		if got := LevenshteinSim(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("LevenshteinSim(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
	for _, pair := range [][2]string{{"", ""}, {"a", "xyz"}, {"日本", "ab"}} {
		s := LevenshteinSim(pair[0], pair[1])
		if s < 0 || s > 1 {
			t.Errorf("LevenshteinSim(%q, %q) = %v outside [0,1]", pair[0], pair[1], s)
		}
	}
}

func TestNGramsEdgeCases(t *testing.T) {
	cases := []struct {
		s    string
		n    int
		want []string
	}{
		{"", 3, nil},
		{"   ", 3, nil}, // separators only: normalizes to empty
		{"ab", 0, nil},
		{"ab", -1, nil},
		// Shorter than the window: padding still yields grams.
		{"a", 3, []string{"##a", "#a#", "a##"}},
		{"ab", 2, []string{"#a", "ab", "b#"}},
		// Exactly the window.
		{"abc", 3, []string{"##a", "#ab", "abc", "bc#", "c##"}},
		// Longer than the window.
		{"abcd", 2, []string{"#a", "ab", "bc", "cd", "d#"}},
		// Multi-byte runes are single gram positions.
		{"日本語", 2, []string{"#日", "日本", "本語", "語#"}},
		// n=1: no padding, one gram per rune of the normalized form.
		{"ab", 1, []string{"a", "b"}},
	}
	for _, tc := range cases {
		if got := NGrams(tc.s, tc.n); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("NGrams(%q, %d) = %q, want %q", tc.s, tc.n, got, tc.want)
		}
	}
}

func TestTokenizeEdgeCases(t *testing.T) {
	cases := []struct {
		s    string
		want []string
	}{
		{"", nil},
		{"---", nil},
		{"camelCaseID", []string{"camel", "case", "id"}},
		{"snake_case-kebab", []string{"snake", "case", "kebab"}},
		{"/akt:has-author", []string{"akt", "has", "author"}},
		{"x86_64", []string{"x86", "64"}},
		{"日本語ラベル", []string{"日本語ラベル"}},
		{"Grüße an alle", []string{"grüße", "an", "alle"}},
	}
	for _, tc := range cases {
		if got := Tokenize(tc.s); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tokenize(%q) = %q, want %q", tc.s, got, tc.want)
		}
	}
}

func TestTokenSimilarityEdgeCases(t *testing.T) {
	if got := JaccardTokens("", ""); got != 1 {
		t.Errorf("JaccardTokens of two empties = %v, want 1", got)
	}
	if got := JaccardTokens("", "word"); got != 0 {
		t.Errorf("JaccardTokens(empty, word) = %v, want 0", got)
	}
	if got := JaccardTokens("red shoe", "shoe red"); got != 1 {
		t.Errorf("JaccardTokens is order-sensitive: %v", got)
	}
	if got := JaccardTokens("red shoe", "red boot"); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("JaccardTokens(red shoe, red boot) = %v, want 1/3", got)
	}
	if got := OverlapTokens("", ""); got != 1 {
		t.Errorf("OverlapTokens of two empties = %v, want 1", got)
	}
	if got := OverlapTokens("", "word"); got != 0 {
		t.Errorf("OverlapTokens(empty, word) = %v, want 0", got)
	}
	if got := OverlapTokens("red", "red shoe boot"); got != 1 {
		t.Errorf("OverlapTokens subset = %v, want 1", got)
	}
}
