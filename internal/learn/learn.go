// Package learn implements module Learn of HER (Section IV): accuracy
// metrics, the random search that selects the thresholds (σ, δ, k),
// train/validation/test splitting of annotated pairs, and the
// user-interaction refinement loop with simulated annotators and
// majority voting (Exp-4).
package learn

import (
	"fmt"
	"math/rand"

	"her/internal/core"
)

// Annotation is one labeled pair: ground truth about whether tuple vertex
// U and graph vertex V refer to the same entity.
type Annotation struct {
	Pair  core.Pair
	Match bool
}

// Predictor decides whether a pair is a match.
type Predictor func(p core.Pair) bool

// Eval is a confusion matrix over annotated pairs.
type Eval struct {
	TP, FP, FN, TN int
}

// Evaluate runs the predictor over annotations and tallies the confusion
// matrix.
func Evaluate(pred Predictor, anns []Annotation) Eval {
	var e Eval
	for _, a := range anns {
		got := pred(a.Pair)
		switch {
		case got && a.Match:
			e.TP++
		case got && !a.Match:
			e.FP++
		case !got && a.Match:
			e.FN++
		default:
			e.TN++
		}
	}
	return e
}

// Precision is TP / (TP + FP); 0 when nothing was returned.
func (e Eval) Precision() float64 {
	if e.TP+e.FP == 0 {
		return 0
	}
	return float64(e.TP) / float64(e.TP+e.FP)
}

// Recall is TP / (TP + FN); 0 when nothing was annotated as a match.
func (e Eval) Recall() float64 {
	if e.TP+e.FN == 0 {
		return 0
	}
	return float64(e.TP) / float64(e.TP+e.FN)
}

// F1 is the harmonic mean of precision and recall (the paper's
// F-measure).
func (e Eval) F1() float64 {
	p, r := e.Precision(), e.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy is (TP + TN) / total.
func (e Eval) Accuracy() float64 {
	n := e.TP + e.FP + e.FN + e.TN
	if n == 0 {
		return 0
	}
	return float64(e.TP+e.TN) / float64(n)
}

func (e Eval) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F=%.3f (tp=%d fp=%d fn=%d tn=%d)",
		e.Precision(), e.Recall(), e.F1(), e.TP, e.FP, e.FN, e.TN)
}

// Split partitions annotations into train/validation/test sets with the
// paper's proportions (50% / 15% / 35% by default callers). Fractions
// must be non-negative and sum to at most 1; the remainder goes to test.
func Split(anns []Annotation, trainFrac, valFrac float64, seed int64) (train, val, test []Annotation, err error) {
	if trainFrac < 0 || valFrac < 0 || trainFrac+valFrac > 1 {
		return nil, nil, nil, fmt.Errorf("learn: bad split fractions %f/%f", trainFrac, valFrac)
	}
	idx := make([]int, len(anns))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	nTrain := int(float64(len(anns)) * trainFrac)
	nVal := int(float64(len(anns)) * valFrac)
	for i, j := range idx {
		switch {
		case i < nTrain:
			train = append(train, anns[j])
		case i < nTrain+nVal:
			val = append(val, anns[j])
		default:
			test = append(test, anns[j])
		}
	}
	return train, val, test, nil
}

// Thresholds are the searched parameters (σ, δ, k).
type Thresholds struct {
	Sigma float64
	Delta float64
	K     int
}

// SearchSpace bounds the random search.
type SearchSpace struct {
	SigmaMin, SigmaMax float64
	DeltaMin, DeltaMax float64
	KMin, KMax         int
}

// DefaultSearchSpace matches the ranges the paper sweeps in Fig. 6.
func DefaultSearchSpace() SearchSpace {
	return SearchSpace{SigmaMin: 0.4, SigmaMax: 0.99, DeltaMin: 0.2, DeltaMax: 3, KMin: 5, KMax: 25}
}

// RandomSearch draws trials random (σ, δ, k) combinations (Bergstra &
// Bengio style, as the paper prescribes instead of grid search) and
// returns the combination maximizing the objective — typically F-measure
// on the validation set — together with the best objective value.
func RandomSearch(space SearchSpace, trials int, seed int64, objective func(Thresholds) float64) (Thresholds, float64, error) {
	if trials <= 0 {
		return Thresholds{}, 0, fmt.Errorf("learn: trials must be positive")
	}
	if space.SigmaMax < space.SigmaMin || space.DeltaMax < space.DeltaMin || space.KMax < space.KMin {
		return Thresholds{}, 0, fmt.Errorf("learn: inverted search space %+v", space)
	}
	rng := rand.New(rand.NewSource(seed))
	var best Thresholds
	bestScore := -1.0
	try := func(cand Thresholds) {
		if cand.Sigma < space.SigmaMin {
			cand.Sigma = space.SigmaMin
		} else if cand.Sigma > space.SigmaMax {
			cand.Sigma = space.SigmaMax
		}
		if cand.Delta < space.DeltaMin {
			cand.Delta = space.DeltaMin
		} else if cand.Delta > space.DeltaMax {
			cand.Delta = space.DeltaMax
		}
		if cand.K < space.KMin {
			cand.K = space.KMin
		} else if cand.K > space.KMax {
			cand.K = space.KMax
		}
		if s := objective(cand); s > bestScore {
			bestScore, best = s, cand
		}
	}
	for t := 0; t < trials; t++ {
		try(Thresholds{
			Sigma: space.SigmaMin + rng.Float64()*(space.SigmaMax-space.SigmaMin),
			Delta: space.DeltaMin + rng.Float64()*(space.DeltaMax-space.DeltaMin),
			K:     space.KMin + rng.Intn(space.KMax-space.KMin+1),
		})
	}
	// δ line-scan: the aggregate-score threshold is the axis with narrow
	// feasibility windows (it must thread between the hardest negatives'
	// score and the weakest positives'), so scan it evenly at the
	// global-phase winner's σ and k.
	sigma0, k0 := best.Sigma, best.K
	const scanPoints = 12
	for i := 0; i <= scanPoints; i++ {
		d := space.DeltaMin + float64(i)*(space.DeltaMax-space.DeltaMin)/scanPoints
		try(Thresholds{Sigma: sigma0, Delta: d, K: k0})
	}
	// Local refinement around the incumbent.
	local := trials / 2
	if local < 5 {
		local = 5
	}
	for t := 0; t < local; t++ {
		try(Thresholds{
			Sigma: best.Sigma + rng.NormFloat64()*0.05,
			Delta: best.Delta + rng.NormFloat64()*0.12,
			K:     best.K + rng.Intn(5) - 2,
		})
	}
	return best, bestScore, nil
}
