package learn

import (
	"fmt"
	"math/rand"

	"her/internal/core"
)

// Feedback is one user-inspected pair with its voted verdict.
type Feedback struct {
	Pair    core.Pair
	IsMatch bool // the majority-voted annotation
	Truth   bool // the underlying ground truth (kept for evaluation)
}

// Annotators simulates the paper's panel of users: each user annotates a
// pair correctly with probability 1-ErrorRate, and the panel's verdict is
// decided by majority voting (Karger et al. style quality control).
type Annotators struct {
	Users     int
	ErrorRate float64
	rng       *rand.Rand
}

// NewAnnotators creates a deterministic simulated panel.
func NewAnnotators(users int, errorRate float64, seed int64) (*Annotators, error) {
	if users <= 0 {
		return nil, fmt.Errorf("learn: need at least one user")
	}
	if errorRate < 0 || errorRate >= 0.5 {
		return nil, fmt.Errorf("learn: error rate %f must be in [0, 0.5)", errorRate)
	}
	return &Annotators{Users: users, ErrorRate: errorRate, rng: rand.New(rand.NewSource(seed))}, nil
}

// Vote returns the majority-voted annotation of one pair given its
// ground truth.
func (a *Annotators) Vote(truth bool) bool {
	correct := 0
	for u := 0; u < a.Users; u++ {
		if a.rng.Float64() >= a.ErrorRate {
			correct++
		}
	}
	if correct*2 > a.Users {
		return truth
	}
	return !truth
}

// Inspect annotates a batch of pairs (the paper's 50-pairs-per-round
// interaction) and returns the voted feedback.
func (a *Annotators) Inspect(pairs []Annotation) []Feedback {
	out := make([]Feedback, len(pairs))
	for i, p := range pairs {
		out[i] = Feedback{Pair: p.Pair, IsMatch: a.Vote(p.Match), Truth: p.Match}
	}
	return out
}

// RefinementRound selects the most informative pairs for a feedback
// round: pairs the current predictor gets wrong (FPs and FNs) first,
// then a fill of random pairs, up to batch pairs.
func RefinementRound(pred Predictor, pool []Annotation, batch int, seed int64) []Annotation {
	if batch <= 0 || len(pool) == 0 {
		return nil
	}
	var wrong, right []Annotation
	for _, a := range pool {
		if pred(a.Pair) != a.Match {
			wrong = append(wrong, a)
		} else {
			right = append(right, a)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(wrong), func(i, j int) { wrong[i], wrong[j] = wrong[j], wrong[i] })
	rng.Shuffle(len(right), func(i, j int) { right[i], right[j] = right[j], right[i] })
	out := wrong
	if len(out) > batch {
		return out[:batch]
	}
	need := batch - len(out)
	if need > len(right) {
		need = len(right)
	}
	return append(out, right[:need]...)
}
