package learn

import (
	"math"
	"testing"

	"her/internal/core"
	"her/internal/graph"
)

func ann(u, v int, match bool) Annotation {
	return Annotation{Pair: core.Pair{U: graph.VID(u), V: graph.VID(v)}, Match: match}
}

func TestEvaluateAndMetrics(t *testing.T) {
	anns := []Annotation{
		ann(0, 0, true),  // predicted true  → TP
		ann(1, 1, true),  // predicted false → FN
		ann(2, 2, false), // predicted true  → FP
		ann(3, 3, false), // predicted false → TN
	}
	pred := func(p core.Pair) bool { return p.U == 0 || p.U == 2 }
	e := Evaluate(pred, anns)
	if e.TP != 1 || e.FN != 1 || e.FP != 1 || e.TN != 1 {
		t.Fatalf("confusion = %+v", e)
	}
	if math.Abs(e.Precision()-0.5) > 1e-12 || math.Abs(e.Recall()-0.5) > 1e-12 {
		t.Errorf("P=%f R=%f", e.Precision(), e.Recall())
	}
	if math.Abs(e.F1()-0.5) > 1e-12 {
		t.Errorf("F1 = %f", e.F1())
	}
	if math.Abs(e.Accuracy()-0.5) > 1e-12 {
		t.Errorf("Accuracy = %f", e.Accuracy())
	}
	if e.String() == "" {
		t.Error("String empty")
	}
}

func TestMetricsDegenerate(t *testing.T) {
	var e Eval
	if e.Precision() != 0 || e.Recall() != 0 || e.F1() != 0 || e.Accuracy() != 0 {
		t.Error("empty eval should be all zeros")
	}
	perfect := Evaluate(func(core.Pair) bool { return true }, []Annotation{ann(0, 0, true)})
	if perfect.F1() != 1 {
		t.Errorf("perfect F1 = %f", perfect.F1())
	}
}

func TestSplit(t *testing.T) {
	var anns []Annotation
	for i := 0; i < 100; i++ {
		anns = append(anns, ann(i, i, i%2 == 0))
	}
	train, val, test, err := Split(anns, 0.5, 0.15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != 50 || len(val) != 15 || len(test) != 35 {
		t.Fatalf("split sizes = %d/%d/%d", len(train), len(val), len(test))
	}
	// Disjoint and complete.
	seen := map[core.Pair]int{}
	for _, s := range [][]Annotation{train, val, test} {
		for _, a := range s {
			seen[a.Pair]++
		}
	}
	if len(seen) != 100 {
		t.Errorf("split lost/duplicated annotations: %d", len(seen))
	}
	for p, c := range seen {
		if c != 1 {
			t.Errorf("pair %v appears %d times", p, c)
		}
	}
	// Deterministic per seed.
	train2, _, _, _ := Split(anns, 0.5, 0.15, 3)
	if train2[0].Pair != train[0].Pair {
		t.Error("split not deterministic")
	}
	if _, _, _, err := Split(anns, 0.8, 0.3, 1); err == nil {
		t.Error("fractions summing over 1 should fail")
	}
	if _, _, _, err := Split(anns, -0.1, 0.3, 1); err == nil {
		t.Error("negative fraction should fail")
	}
}

func TestRandomSearch(t *testing.T) {
	space := SearchSpace{SigmaMin: 0, SigmaMax: 1, DeltaMin: 0, DeltaMax: 2, KMin: 1, KMax: 10}
	// Objective peaks at σ≈0.8, δ≈1.0, k≈5.
	obj := func(th Thresholds) float64 {
		return 3 - math.Abs(th.Sigma-0.8) - math.Abs(th.Delta-1.0) - math.Abs(float64(th.K)-5)/10
	}
	trials := 300
	if testing.Short() {
		// Short tier: exercise the API contract only; the convergence
		// assertion below needs the full trial budget.
		trials = 30
	}
	best, score, err := RandomSearch(space, trials, 7, obj)
	if err != nil {
		t.Fatal(err)
	}
	if !testing.Short() && score < 2.5 {
		t.Errorf("random search converged poorly: %+v score %f", best, score)
	}
	if best.K < space.KMin || best.K > space.KMax {
		t.Errorf("K out of range: %d", best.K)
	}
	if best.Sigma < 0 || best.Sigma > 1 {
		t.Errorf("sigma out of range: %f", best.Sigma)
	}
	if _, _, err := RandomSearch(space, 0, 1, obj); err == nil {
		t.Error("zero trials should fail")
	}
	bad := space
	bad.KMax = 0
	if _, _, err := RandomSearch(bad, 10, 1, obj); err == nil {
		t.Error("inverted space should fail")
	}
}

func TestRandomSearchDeterministic(t *testing.T) {
	space := DefaultSearchSpace()
	obj := func(th Thresholds) float64 { return th.Sigma }
	a, _, _ := RandomSearch(space, 50, 42, obj)
	b, _, _ := RandomSearch(space, 50, 42, obj)
	if a != b {
		t.Error("random search not deterministic per seed")
	}
}

func TestAnnotatorsMajorityVoting(t *testing.T) {
	if _, err := NewAnnotators(0, 0.1, 1); err == nil {
		t.Error("zero users should fail")
	}
	if _, err := NewAnnotators(5, 0.6, 1); err == nil {
		t.Error("error rate ≥ 0.5 should fail")
	}
	// With 5 users at 10% individual error, majority voting should be
	// almost always correct.
	a, err := NewAnnotators(5, 0.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if a.Vote(true) {
			correct++
		}
	}
	if float64(correct)/n < 0.98 {
		t.Errorf("majority voting accuracy = %f", float64(correct)/n)
	}
	// Zero error rate is always correct.
	perfect, _ := NewAnnotators(5, 0, 1)
	for i := 0; i < 50; i++ {
		if !perfect.Vote(true) || perfect.Vote(false) {
			t.Fatal("perfect annotators voted wrong")
		}
	}
}

func TestInspect(t *testing.T) {
	a, _ := NewAnnotators(5, 0, 2)
	anns := []Annotation{ann(0, 0, true), ann(1, 1, false)}
	fb := a.Inspect(anns)
	if len(fb) != 2 {
		t.Fatalf("feedback = %v", fb)
	}
	if !fb[0].IsMatch || fb[1].IsMatch {
		t.Error("zero-error inspection should reproduce truth")
	}
	if fb[0].Truth != true || fb[1].Truth != false {
		t.Error("truth not preserved")
	}
}

func TestRefinementRoundPrefersErrors(t *testing.T) {
	var pool []Annotation
	for i := 0; i < 20; i++ {
		pool = append(pool, ann(i, i, i < 10))
	}
	// Predictor wrong exactly on pairs 8..11.
	pred := func(p core.Pair) bool { return p.U < 8 || (p.U >= 10 && p.U < 12) }
	batch := RefinementRound(pred, pool, 6, 4)
	if len(batch) != 6 {
		t.Fatalf("batch size = %d", len(batch))
	}
	wrongInBatch := 0
	for _, a := range batch {
		if pred(a.Pair) != a.Match {
			wrongInBatch++
		}
	}
	if wrongInBatch != 4 {
		t.Errorf("expected all 4 errors in batch, got %d", wrongInBatch)
	}
	if RefinementRound(pred, nil, 5, 1) != nil {
		t.Error("empty pool should give nil")
	}
	if RefinementRound(pred, pool, 0, 1) != nil {
		t.Error("zero batch should give nil")
	}
	// More errors than batch: truncate.
	allWrong := func(core.Pair) bool { return false }
	small := RefinementRound(allWrong, pool[:10], 3, 1)
	if len(small) != 3 {
		t.Errorf("truncated batch = %d", len(small))
	}
}
