package experiments

import (
	"fmt"
	"time"

	"her"
	"her/internal/baselines"
	"her/internal/core"
	"her/internal/graph"
)

// TableVI reproduces the sequential-efficiency comparison: per-request
// SPair and VPair seconds on DBpediaP and DBLP for HER and the
// baselines, single worker. Bsim supports neither mode (NA).
func TableVI(cfg Config) ([]Table, error) {
	var tables []Table
	for _, name := range []string{"DBpediaP", "DBLP"} {
		p, err := prepare(name, cfg, her.Options{})
		if err != nil {
			return nil, err
		}
		t := Table{
			Title:  fmt.Sprintf("Table VI: sequential execution time (s) on %s", name),
			Header: []string{"Method", "SPair", "VPair"},
		}
		spairHER, vpairHER := timeModes(
			func(pr core.Pair) { p.sys.SPairVertices(pr.U, pr.V) },
			func(u graph.VID) { p.sys.VPairVertex(u) },
			p,
		)
		t.Rows = append(t.Rows, []string{"HER", secs(spairHER), secs(vpairHER)})

		td := p.trainingData()
		for _, m := range []baselines.Method{
			&baselines.MAGNN{}, &baselines.JedAI{}, &baselines.MAG{}, &baselines.DEEP{},
		} {
			if err := m.Train(td); err != nil {
				return nil, err
			}
			sp, vp := timeModes(
				func(pr core.Pair) { m.SPair(pr) },
				func(u graph.VID) { m.VPair(u, p.sys.Candidates(u)) },
				p,
			)
			t.Rows = append(t.Rows, []string{m.Name(), secs(sp), secs(vp)})
		}
		t.Rows = append(t.Rows, []string{"Bsim", "NA", "NA"})
		tables = append(tables, t)
	}
	return tables, nil
}

// timeModes measures the mean per-request latency of SPair (over the
// test annotations) and VPair (over a sample of tuple vertices).
func timeModes(spair func(core.Pair), vpair func(graph.VID), p *prepared) (time.Duration, time.Duration) {
	anns := p.test
	if len(anns) == 0 {
		anns = p.d.Truth
	}
	dsp := timeIt(func() {
		for _, a := range anns {
			spair(a.Pair)
		}
	}) / time.Duration(len(anns))

	sample := p.d.TupleVertices
	const maxTuples = 10
	if len(sample) > maxTuples {
		sample = sample[:maxTuples]
	}
	dvp := timeIt(func() {
		for _, u := range sample {
			vpair(u)
		}
	}) / time.Duration(len(sample))
	return dsp, dvp
}

// workerSweep times parallel APair across worker counts on one dataset.
func workerSweep(cfg Config, name string) (Table, error) {
	p, err := prepare(name, cfg, her.Options{})
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:  fmt.Sprintf("APair time vs workers on %s", name),
		Header: []string{"n", "seconds", "supersteps", "candidate pairs", "max worker share"},
	}
	for _, n := range cfg.Workers {
		var stats her.ParallelStats
		d := timeIt(func() {
			_, stats, err = p.sys.APairParallel(n)
		})
		if err != nil {
			return Table{}, err
		}
		maxShare := 0
		for _, c := range stats.PerWorkerPairs {
			if c > maxShare {
				maxShare = c
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), secs(d), fmt.Sprint(stats.Supersteps),
			fmt.Sprint(stats.CandidatePairs), fmt.Sprint(maxShare),
		})
	}
	return t, nil
}

// Fig6d-g: parallel scalability on DBpediaP, FBWIKI, DBLP and Synthetic.
func Fig6d(cfg Config) ([]Table, error) { return oneTable(workerSweep(cfg, "DBpediaP")) }

// Fig6e is the FBWIKI worker sweep.
func Fig6e(cfg Config) ([]Table, error) { return oneTable(workerSweep(cfg, "FBWIKI")) }

// Fig6f is the DBLP worker sweep.
func Fig6f(cfg Config) ([]Table, error) { return oneTable(workerSweep(cfg, "DBLP")) }

// Fig6g is the synthetic-data worker sweep.
func Fig6g(cfg Config) ([]Table, error) { return oneTable(workerSweep(cfg, "Synthetic")) }

func oneTable(t Table, err error) ([]Table, error) {
	if err != nil {
		return nil, err
	}
	return []Table{t}, nil
}

// Fig6h varies |G_D| with G fixed: APair over growing prefixes of the
// tuple vertices of the largest synthetic instance.
func Fig6h(cfg Config) ([]Table, error) {
	p, err := prepare("Synthetic", cfg, her.Options{})
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:  "Fig 6(h): APair time vs |G_D| (G fixed, synthetic)",
		Header: []string{"fraction", "tuples", "seconds"},
	}
	all := p.d.TupleVertices
	for _, frac := range []int{25, 50, 75, 100} {
		n := len(all) * frac / 100
		sources := all[:n]
		p.sys.ResetMatchState()
		d := timeIt(func() { apairSources(p.sys, sources) })
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d%%", frac), fmt.Sprint(n), secs(d)})
	}
	return []Table{t}, nil
}

// apairSources runs sequential matching over explicit sources using the
// system's candidate generator.
func apairSources(sys *her.System, sources []graph.VID) {
	for _, u := range sources {
		sys.VPairVertex(u)
	}
}

// Fig6i varies |G| with the G_D workload fixed: synthetic instances of
// growing entity counts, matching a fixed number of tuples.
func Fig6i(cfg Config) ([]Table, error) {
	base := cfg.Entities
	if base <= 0 {
		base = 1000
	}
	t := Table{
		Title:  "Fig 6(i): APair time vs |G| (G_D workload fixed, synthetic)",
		Header: []string{"entities", "|V|", "|E|", "seconds"},
	}
	fixedTuples := base / 4
	for _, scale := range []int{25, 50, 75, 100} {
		c := cfg
		c.Entities = base * scale / 100
		p, err := prepare("Synthetic", c, her.Options{})
		if err != nil {
			return nil, err
		}
		_, _, v, e := p.d.Sizes()
		sources := p.d.TupleVertices
		if len(sources) > fixedTuples {
			sources = sources[:fixedTuples]
		}
		d := timeIt(func() { apairSources(p.sys, sources) })
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(c.Entities), fmt.Sprint(v), fmt.Sprint(e), secs(d)})
	}
	return []Table{t}, nil
}

// thresholdTimeSweep times parallel APair across threshold settings.
func thresholdTimeSweep(cfg Config, name, title, param string, settings []her.Thresholds, labels []string) (Table, error) {
	p, err := prepare(name, cfg, her.Options{})
	if err != nil {
		return Table{}, err
	}
	workers := 4
	if len(cfg.Workers) > 0 {
		workers = cfg.Workers[len(cfg.Workers)-1]
	}
	t := Table{
		Title:  title,
		Header: []string{param, "seconds", "matches"},
	}
	for i, th := range settings {
		if err := p.sys.SetThresholds(th); err != nil {
			return Table{}, err
		}
		var matches []her.Pair
		d := timeIt(func() {
			matches, _, err = p.sys.APairParallel(workers)
		})
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{labels[i], secs(d), fmt.Sprint(len(matches))})
	}
	return t, nil
}

// Fig6j: APair time vs k on FBWIKI (small k: fewer descendants per
// vertex, as in the paper).
func Fig6j(cfg Config) ([]Table, error) {
	var ths []her.Thresholds
	var labels []string
	for _, k := range []int{2, 4, 6, 8, 10} {
		ths = append(ths, her.Thresholds{Sigma: 0.8, Delta: 0.4, K: k})
		labels = append(labels, fmt.Sprint(k))
	}
	return oneTable(thresholdTimeSweep(cfg, "FBWIKI",
		"Fig 6(j): APair time vs k on FBWIKI (sigma=0.8, delta=0.4)", "k", ths, labels))
}

// Fig6k: APair time vs k on DBLP.
func Fig6k(cfg Config) ([]Table, error) {
	var ths []her.Thresholds
	var labels []string
	for _, k := range []int{8, 12, 16, 20, 24} {
		ths = append(ths, her.Thresholds{Sigma: 0.8, Delta: 1.0, K: k})
		labels = append(labels, fmt.Sprint(k))
	}
	return oneTable(thresholdTimeSweep(cfg, "DBLP",
		"Fig 6(k): APair time vs k on DBLP (sigma=0.8, delta=1.0)", "k", ths, labels))
}

// Fig6l: APair time vs σ on DBpediaP.
func Fig6l(cfg Config) ([]Table, error) {
	return oneTable(sigmaSweep(cfg, "DBpediaP", "Fig 6(l): APair time vs sigma on DBpediaP", 1.0))
}

// Fig6m: APair time vs σ on FBWIKI.
func Fig6m(cfg Config) ([]Table, error) {
	return oneTable(sigmaSweep(cfg, "FBWIKI", "Fig 6(m): APair time vs sigma on FBWIKI", 0.4))
}

func sigmaSweep(cfg Config, name, title string, delta float64) (Table, error) {
	var ths []her.Thresholds
	var labels []string
	for _, s := range []float64{0.75, 0.8, 0.85, 0.9, 0.95} {
		ths = append(ths, her.Thresholds{Sigma: s, Delta: delta, K: 15})
		labels = append(labels, fmt.Sprintf("%.2f", s))
	}
	return thresholdTimeSweep(cfg, name, title, "sigma", ths, labels)
}

// Fig6n: APair time vs δ on DBpediaP (larger δ range; its matching
// paths are short).
func Fig6n(cfg Config) ([]Table, error) {
	return oneTable(deltaSweep(cfg, "DBpediaP",
		"Fig 6(n): APair time vs delta on DBpediaP",
		[]float64{0.8, 1.2, 1.6, 2.0, 2.4}))
}

// Fig6o: APair time vs δ on FBWIKI (small δ range; its matching paths
// are much longer, as the paper notes).
func Fig6o(cfg Config) ([]Table, error) {
	return oneTable(deltaSweep(cfg, "FBWIKI",
		"Fig 6(o): APair time vs delta on FBWIKI",
		[]float64{0.2, 0.3, 0.4, 0.5, 0.6}))
}

func deltaSweep(cfg Config, name, title string, deltas []float64) (Table, error) {
	var ths []her.Thresholds
	var labels []string
	for _, d := range deltas {
		ths = append(ths, her.Thresholds{Sigma: 0.8, Delta: d, K: 15})
		labels = append(labels, fmt.Sprintf("%.2f", d))
	}
	return thresholdTimeSweep(cfg, name, title, "delta", ths, labels)
}

// Fig9 reproduces appendix H: the IMDB scalability and efficiency
// panels — (a) workers, (b) k, (c) σ, (d) δ.
func Fig9(cfg Config) ([]Table, error) {
	var out []Table
	w, err := workerSweep(cfg, "IMDB")
	if err != nil {
		return nil, err
	}
	w.Title = "Fig 9(a): APair time vs workers on IMDB"
	out = append(out, w)

	var ths []her.Thresholds
	var labels []string
	for _, k := range []int{4, 8, 12, 16, 20} {
		ths = append(ths, her.Thresholds{Sigma: 0.8, Delta: 1.0, K: k})
		labels = append(labels, fmt.Sprint(k))
	}
	kt, err := thresholdTimeSweep(cfg, "IMDB", "Fig 9(b): APair time vs k on IMDB", "k", ths, labels)
	if err != nil {
		return nil, err
	}
	out = append(out, kt)

	st, err := sigmaSweep(cfg, "IMDB", "Fig 9(c): APair time vs sigma on IMDB", 1.0)
	if err != nil {
		return nil, err
	}
	out = append(out, st)

	dt, err := deltaSweep(cfg, "IMDB", "Fig 9(d): APair time vs delta on IMDB",
		[]float64{0.8, 1.2, 1.6, 2.0, 2.4})
	if err != nil {
		return nil, err
	}
	out = append(out, dt)
	return out, nil
}
