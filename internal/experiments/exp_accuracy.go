package experiments

import (
	"fmt"

	"her"
	"her/internal/baselines"
	"her/internal/core"
	"her/internal/dataset"
	"her/internal/learn"
)

// TableIV reports the generated dataset sizes, mirroring the paper's
// Table IV inventory.
func TableIV(cfg Config) ([]Table, error) {
	t := Table{
		Title:  "Table IV: datasets for evaluation (generated, scaled)",
		Header: []string{"Dataset", "|V_D|", "|E_D|", "|V|", "|E|"},
	}
	for _, name := range append(append([]string{}, dataset.Names...), "Synthetic") {
		dcfg, _ := dataset.ByName(name, cfg.Entities)
		d, err := dataset.Generate(dcfg)
		if err != nil {
			return nil, err
		}
		vd, ed, v, e := d.Sizes()
		t.Rows = append(t.Rows, []string{name,
			fmt.Sprint(vd), fmt.Sprint(ed), fmt.Sprint(v), fmt.Sprint(e)})
	}
	return []Table{t}, nil
}

// baselineSet builds the Exp-1 comparison methods in Table V order.
func baselineSet() []baselines.Method {
	return []baselines.Method{
		&baselines.MAGNN{},
		&baselines.Bsim{MemBudget: 20_000}, // OM on every full dataset
		&baselines.JedAI{},
		&baselines.MAG{},
		&baselines.DEEP{},
		&baselines.LexMa{},
	}
}

// evalMethod scores a baseline's SPair decisions on annotations.
func evalMethod(m baselines.Method, anns []learn.Annotation) learn.Eval {
	return learn.Evaluate(func(p core.Pair) bool { return m.SPair(p) }, anns)
}

// TableV reproduces the accuracy comparison: F-measure of HER and the
// six baselines on the five tuple-matching datasets (top), and the 2T
// cell-matching row (bottom), where the closed SemTab systems (MTab,
// bbw, LinkingPark) are reported from the paper — they are proprietary
// web pipelines (DESIGN.md substitution 6) — while HER and LexMa are
// measured. Bsim reports OM when its memory budget is exhausted, as in
// the paper.
func TableV(cfg Config) ([]Table, error) {
	t := Table{
		Title:  "Table V (top): accuracy (F-measure) on tuple matching",
		Header: []string{"Dataset", "HER", "MAGNN", "Bsim", "JedAI", "MAG", "DEEP", "LexMa"},
	}
	for _, name := range dataset.Names {
		if name == "2T" {
			continue
		}
		p, err := prepare(name, cfg, her.Options{})
		if err != nil {
			return nil, err
		}
		row := []string{name, fm(p.sys.Evaluate(p.test).F1())}
		td := p.trainingData()
		for _, m := range baselineSet() {
			if err := m.Train(td); err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, m.Name(), err)
			}
			if b, ok := m.(*baselines.Bsim); ok {
				if _, err := b.Run(); err != nil {
					row = append(row, "OM")
					continue
				}
			}
			row = append(row, fm(evalMethod(m, p.test).F1()))
		}
		t.Rows = append(t.Rows, row)
	}

	t2 := Table{
		Title:  "Table V (bottom): accuracy on 2T cell matching (* = paper-reported, closed system)",
		Header: []string{"Dataset", "HER", "MTab*", "bbw*", "LP*", "LexMa"},
	}
	p, err := prepare("2T", cfg, her.Options{})
	if err != nil {
		return nil, err
	}
	lex := &baselines.LexMa{}
	if err := lex.Train(p.trainingData()); err != nil {
		return nil, err
	}
	t2.Rows = append(t2.Rows, []string{"2T",
		fm(p.sys.Evaluate(p.test).F1()), "0.907", "0.863", "0.810",
		fm(evalMethod(lex, p.test).F1())})
	return []Table{t, t2}, nil
}

// TableVII reproduces appendix I: HER accuracy with embedding
// dimensions {100, 200, 300} on DBpediaP, DBLP and IMDB.
func TableVII(cfg Config) ([]Table, error) {
	dims := []int{100, 200, 300}
	t := Table{
		Title:  "Table VII: accuracy of HER with different embedding dimensions",
		Header: []string{"Dataset", "dim 100", "dim 200", "dim 300"},
	}
	for _, name := range []string{"DBpediaP", "DBLP", "IMDB"} {
		row := []string{name}
		for _, dim := range dims {
			p, err := prepare(name, cfg, her.Options{EmbeddingDim: dim})
			if err != nil {
				return nil, err
			}
			row = append(row, fm(p.sys.Evaluate(p.test).F1()))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// paramSweepDatasets are the three datasets Fig. 6(a-c) sweeps.
var paramSweepDatasets = []string{"DBpediaP", "DBLP", "IMDB"}

// sweepF runs EvaluateWith across threshold settings and tabulates
// F-measure per dataset.
func sweepF(cfg Config, title, param string, settings []her.Thresholds, labels []string) ([]Table, error) {
	t := Table{Title: title, Header: append([]string{param}, paramSweepDatasets...)}
	var systems []*prepared
	for _, name := range paramSweepDatasets {
		p, err := prepare(name, cfg, her.Options{})
		if err != nil {
			return nil, err
		}
		systems = append(systems, p)
	}
	for i, th := range settings {
		row := []string{labels[i]}
		for _, p := range systems {
			row = append(row, fm(p.sys.EvaluateWith(th, p.test).F1()))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// Fig6a sweeps σ with δ and k fixed.
func Fig6a(cfg Config) ([]Table, error) {
	sigmas := []float64{0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}
	var ths []her.Thresholds
	var labels []string
	for _, s := range sigmas {
		ths = append(ths, her.Thresholds{Sigma: s, Delta: 1.2, K: 20})
		labels = append(labels, fmt.Sprintf("%.2f", s))
	}
	return sweepF(cfg, "Fig 6(a): F-measure vs sigma (delta=1.2, k=20)", "sigma", ths, labels)
}

// Fig6b sweeps δ with σ and k fixed.
func Fig6b(cfg Config) ([]Table, error) {
	deltas := []float64{0.5, 0.8, 1.0, 1.2, 1.5, 2.0, 2.5, 3.0}
	var ths []her.Thresholds
	var labels []string
	for _, d := range deltas {
		ths = append(ths, her.Thresholds{Sigma: 0.85, Delta: d, K: 20})
		labels = append(labels, fmt.Sprintf("%.2f", d))
	}
	return sweepF(cfg, "Fig 6(b): F-measure vs delta (sigma=0.85, k=20)", "delta", ths, labels)
}

// Fig6c sweeps k with σ and δ fixed.
func Fig6c(cfg Config) ([]Table, error) {
	ks := []int{3, 5, 8, 10, 15, 18, 20, 25}
	var ths []her.Thresholds
	var labels []string
	for _, k := range ks {
		ths = append(ths, her.Thresholds{Sigma: 0.85, Delta: 1.2, K: k})
		labels = append(labels, fmt.Sprint(k))
	}
	return sweepF(cfg, "Fig 6(c): F-measure vs k (sigma=0.85, delta=1.2)", "k", ths, labels)
}

// Fig6p reproduces Exp-4: F-measure across user-interaction rounds on
// UKGOV and IMDB — 50 pairs per round, 5 simulated users with 10%
// individual error, majority voting, triplet fine-tuning; 5 rounds
// suffice to reach F = 1.
func Fig6p(cfg Config) ([]Table, error) {
	t := Table{
		Title:  "Fig 6(p): F-measure vs user-interaction rounds (50 pairs/round, 5 users)",
		Header: []string{"Round", "UKGOV", "IMDB"},
	}
	const rounds = 5
	series := make([][]float64, 0, 2)
	for _, name := range []string{"UKGOV", "IMDB"} {
		p, err := prepare(name, cfg, her.Options{})
		if err != nil {
			return nil, err
		}
		users, err := learn.NewAnnotators(5, 0.1, cfg.Seed)
		if err != nil {
			return nil, err
		}
		pool := p.d.Truth
		fs := []float64{p.sys.Evaluate(pool).F1()}
		for r := 1; r <= rounds; r++ {
			batch := learn.RefinementRound(p.sys.Predictor(), pool, 50, cfg.Seed+int64(r))
			p.sys.Refine(users.Inspect(batch))
			fs = append(fs, p.sys.Evaluate(pool).F1())
		}
		series = append(series, fs)
	}
	for r := 0; r <= rounds; r++ {
		t.Rows = append(t.Rows, []string{fmt.Sprint(r), fm(series[0][r]), fm(series[1][r])})
	}
	return []Table{t}, nil
}
