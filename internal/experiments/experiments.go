// Package experiments reproduces every table and figure of the paper's
// evaluation (Section VII and appendices H/I) on the generated datasets:
// accuracy (Table V, Fig. 6a-c), embedding sweep (Table VII), sequential
// efficiency (Table VI), parallel scalability (Fig. 6d-i), parameter
// sensitivity of runtime (Fig. 6j-o), user-interaction refinement
// (Fig. 6p) and the IMDB appendix (Fig. 9). Each experiment prints the
// same rows/series the paper reports; EXPERIMENTS.md records
// paper-vs-measured values.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"

	"her"
	"her/internal/baselines"
	"her/internal/dataset"
	"her/internal/embed"
	"her/internal/learn"
)

// Config scales the experiments.
type Config struct {
	// Entities overrides each dataset's matchable-entity count
	// (0 keeps the dataset default, ~300).
	Entities int
	// Workers is the worker sweep for the parallel experiments
	// (default {1, 2, 4, 8, 16}).
	Workers []int
	// SearchTrials bounds the random threshold search (default 30).
	SearchTrials int
	// Seed offsets all model seeds.
	Seed int64
	// CSV renders tables as CSV instead of aligned text.
	CSV bool
}

func (c Config) normalize() Config {
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2, 4, 8, 16}
	}
	if c.SearchTrials <= 0 {
		c.SearchTrials = 30
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// Table is one printable result artifact.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// RenderCSV writes the table as CSV with a leading title comment, the
// machine-readable form for regenerating the paper's figures.
func (t Table) RenderCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	cw := csv.NewWriter(w)
	_ = cw.Write(t.Header)
	for _, r := range t.Rows {
		_ = cw.Write(r)
	}
	cw.Flush()
	fmt.Fprintln(w)
}

// Render writes the table with aligned columns.
func (t Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// prepared is one dataset with a fully trained HER system and the
// train/validation/test annotation splits (50/15/35, as in the paper).
type prepared struct {
	name             string
	d                *dataset.Generated
	sys              *her.System
	train, val, test []learn.Annotation
}

// upsample repeats schema-level path annotations so the metric network
// sees enough gradient steps.
func upsample(pairs []her.PathPair, times int) []her.PathPair {
	out := make([]her.PathPair, 0, len(pairs)*times)
	for i := 0; i < times; i++ {
		out = append(out, pairs...)
	}
	return out
}

// thresholdSpace is the random-search space used across experiments.
// The typo-heavy 2T dataset needs a lower σ floor: its labels only match
// at low vertex-similarity levels.
func thresholdSpace(name string) learn.SearchSpace {
	sp := learn.SearchSpace{SigmaMin: 0.5, SigmaMax: 0.95, DeltaMin: 0.4, DeltaMax: 3.2, KMin: 8, KMax: 20}
	if name == "2T" {
		sp.SigmaMin, sp.SigmaMax = 0.3, 0.8
	}
	return sp
}

// prepare generates a dataset and runs the full Learn pipeline of Fig. 2:
// RDB2RDF, metric-network training, LSTM ranker training, and the random
// threshold search on the validation split.
func prepare(name string, cfg Config, opts her.Options) (*prepared, error) {
	dcfg, ok := dataset.ByName(name, cfg.Entities)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown dataset %s", name)
	}
	d, err := dataset.Generate(dcfg)
	if err != nil {
		return nil, err
	}
	if opts.Seed == 0 {
		opts.Seed = cfg.Seed
	}
	sys, err := her.New(d.DB, d.G, opts)
	if err != nil {
		return nil, err
	}
	if err := sys.TrainPathModel(upsample(d.PathPairs, 20), 0); err != nil {
		return nil, err
	}
	if err := sys.TrainRanker(150, 10); err != nil {
		return nil, err
	}
	train, val, test, err := learn.Split(d.Truth, 0.5, 0.15, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// The threshold search sees train∪val: HER's M_ρ trains on the
	// schema-level path annotations, so the pair-annotation train split
	// is free for threshold selection (test stays held out).
	searchSet := append(append([]learn.Annotation{}, train...), val...)
	if _, _, err := sys.LearnThresholds(searchSet, thresholdSpace(name), cfg.SearchTrials); err != nil {
		return nil, err
	}
	return &prepared{name: name, d: d, sys: sys, train: train, val: val, test: test}, nil
}

// trainingData packages a prepared dataset for the baselines, sharing
// HER's training split and an encoder.
func (p *prepared) trainingData() *baselines.TrainingData {
	return &baselines.TrainingData{
		GD: p.d.GD, G: p.d.G, Train: p.train,
		Encoder: embed.NewEncoder(64),
	}
}

// timeIt measures fn.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// fm formats an F-measure.
func fm(f float64) string { return fmt.Sprintf("%.3f", f) }

// secs formats a duration in seconds with sub-millisecond resolution.
func secs(d time.Duration) string { return fmt.Sprintf("%.6f", d.Seconds()) }

// Run dispatches an experiment id ("tableV", "fig6a", ..., "all") and
// renders its tables to w.
func Run(id string, cfg Config, w io.Writer) error {
	cfg = cfg.normalize()
	runners := map[string]func(Config) ([]Table, error){
		"tableIV":  TableIV,
		"tableV":   TableV,
		"tableVI":  TableVI,
		"tableVII": TableVII,
		"fig6a":    Fig6a, "fig6b": Fig6b, "fig6c": Fig6c,
		"fig6d": Fig6d, "fig6e": Fig6e, "fig6f": Fig6f, "fig6g": Fig6g,
		"fig6h": Fig6h, "fig6i": Fig6i,
		"fig6j": Fig6j, "fig6k": Fig6k,
		"fig6l": Fig6l, "fig6m": Fig6m,
		"fig6n": Fig6n, "fig6o": Fig6o,
		"fig6p":    Fig6p,
		"fig9":     Fig9,
		"ablation": Ablation,
	}
	if id == "all" {
		for _, key := range ExperimentIDs() {
			if err := Run(key, cfg, w); err != nil {
				return fmt.Errorf("%s: %w", key, err)
			}
		}
		return nil
	}
	fn, ok := runners[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (want one of %s or all)",
			id, strings.Join(ExperimentIDs(), ", "))
	}
	tables, err := fn(cfg)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if cfg.CSV {
			t.RenderCSV(w)
		} else {
			t.Render(w)
		}
	}
	return nil
}

// ExperimentIDs lists every experiment in presentation order.
func ExperimentIDs() []string {
	return []string{
		"tableIV", "tableV", "tableVI", "tableVII",
		"fig6a", "fig6b", "fig6c",
		"fig6d", "fig6e", "fig6f", "fig6g",
		"fig6h", "fig6i", "fig6j", "fig6k",
		"fig6l", "fig6m", "fig6n", "fig6o", "fig6p",
		"fig9", "ablation",
	}
}
