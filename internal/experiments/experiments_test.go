package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"her"
)

// tinyConfig keeps the smoke tests fast: small datasets, few workers,
// few search trials.
func tinyConfig() Config {
	return Config{Entities: 40, Workers: []int{1, 2}, SearchTrials: 8, Seed: 7}
}

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"x", "1"}, {"yyyyyy", "2"}},
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "long-header") {
		t.Errorf("render output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("rendered %d lines:\n%s", len(lines), out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", tinyConfig(), &buf); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestExperimentIDsDispatch(t *testing.T) {
	// Every listed id must dispatch (we don't run them all here — the
	// heavy ones are covered individually below and by cmd/herbench).
	ids := ExperimentIDs()
	if len(ids) < 20 {
		t.Fatalf("expected ≥ 20 experiments, got %d", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

func TestTableIV(t *testing.T) {
	tables, err := TableIV(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 7 {
		t.Fatalf("TableIV shape: %+v", tables)
	}
}

func TestPrepareTrainsFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the full pipeline; skipped in -short")
	}
	p, err := prepare("Synthetic", tinyConfig(), her.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.train) == 0 || len(p.val) == 0 || len(p.test) == 0 {
		t.Fatalf("splits empty: %d/%d/%d", len(p.train), len(p.val), len(p.test))
	}
	ev := p.sys.Evaluate(p.test)
	if ev.F1() < 0.6 {
		t.Errorf("prepared system F too low: %v", ev)
	}
}

func TestFig6aSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := Fig6a(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 8 {
		t.Errorf("fig6a rows = %d", len(tables[0].Rows))
	}
}

func TestFig6dSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := Fig6d(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 2 { // workers {1, 2}
		t.Errorf("fig6d rows = %+v", tables[0].Rows)
	}
}

func TestFig6pSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := Fig6p(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 6 { // rounds 0..5
		t.Fatalf("fig6p rows = %d", len(rows))
	}
	// F must not decrease from round 0 to round 5 on either dataset.
	first, last := rows[0], rows[len(rows)-1]
	for col := 1; col <= 2; col++ {
		if last[col] < first[col] {
			t.Errorf("refinement decreased F: %s → %s", first[col], last[col])
		}
	}
}

func TestRenderCSV(t *testing.T) {
	tb := Table{Title: "demo", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	var buf bytes.Buffer
	tb.RenderCSV(&buf)
	out := buf.String()
	if !strings.HasPrefix(out, "# demo\n") || !strings.Contains(out, "a,b\n1,2\n") {
		t.Errorf("csv output:\n%s", out)
	}
}

// TestTableVShape asserts the headline claim at small scale: HER's
// average F-measure across the five tuple-matching datasets beats every
// re-implemented baseline's average.
func TestTableVShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{Entities: 100, SearchTrials: 25, Seed: 7}
	tables, err := TableV(cfg)
	if err != nil {
		t.Fatal(err)
	}
	top := tables[0]
	avg := make([]float64, len(top.Header))
	counts := make([]int, len(top.Header))
	for _, row := range top.Rows {
		for col := 1; col < len(row); col++ {
			if row[col] == "OM" {
				continue
			}
			var f float64
			if _, err := fmt.Sscanf(row[col], "%f", &f); err != nil {
				t.Fatalf("bad cell %q", row[col])
			}
			avg[col] += f
			counts[col]++
		}
	}
	for col := 1; col < len(avg); col++ {
		if counts[col] > 0 {
			avg[col] /= float64(counts[col])
		}
	}
	herAvg := avg[1]
	t.Logf("averages: %v (header %v)", avg, top.Header)
	if herAvg < 0.8 {
		t.Errorf("HER average F = %.3f, want ≥ 0.8", herAvg)
	}
	for col := 2; col < len(avg); col++ {
		if counts[col] == 0 {
			continue // Bsim: OM everywhere
		}
		if avg[col] >= herAvg {
			t.Errorf("%s average %.3f ≥ HER %.3f", top.Header[col], avg[col], herAvg)
		}
	}
}
