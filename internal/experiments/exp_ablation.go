package experiments

import (
	"fmt"
	"time"

	"her"
	"her/internal/core"
	"her/internal/dataset"
	"her/internal/learn"
)

// Ablation quantifies the contribution of HER's design choices on one
// dataset (DBpediaP): the trained M_ρ metric network (vs the untrained
// lexical fallback), the LSTM-guided ranking function M_r (vs the
// PRA-greedy fallback), and the inverted-index blocking (vs a full scan
// of G for every tuple). Each variant re-runs the threshold search so it
// competes at its own best configuration.
func Ablation(cfg Config) ([]Table, error) {
	const name = "DBpediaP"
	dcfg, _ := dataset.ByName(name, cfg.Entities)
	d, err := dataset.Generate(dcfg)
	if err != nil {
		return nil, err
	}
	train, val, test, err := learn.Split(d.Truth, 0.5, 0.15, cfg.Seed)
	if err != nil {
		return nil, err
	}
	searchSet := append(append([]learn.Annotation{}, train...), val...)

	build := func(metric, ranker bool) (*her.System, error) {
		sys, err := her.New(d.DB, d.G, her.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		if metric {
			if err := sys.TrainPathModel(upsample(d.PathPairs, 20), 0); err != nil {
				return nil, err
			}
		}
		if ranker {
			if err := sys.TrainRanker(150, 10); err != nil {
				return nil, err
			}
		}
		if _, _, err := sys.LearnThresholds(searchSet, thresholdSpace(name), cfg.SearchTrials); err != nil {
			return nil, err
		}
		return sys, nil
	}

	t := Table{
		Title:  fmt.Sprintf("Ablation on %s: contribution of each design choice", name),
		Header: []string{"Variant", "F-measure", "VPair seconds"},
	}
	variants := []struct {
		label          string
		metric, ranker bool
	}{
		{"full HER", true, true},
		{"no trained M_rho (lexical fallback)", false, true},
		{"no LSTM M_r (PRA-greedy fallback)", true, false},
		{"neither model", false, false},
	}
	var full *her.System
	for _, v := range variants {
		sys, err := build(v.metric, v.ranker)
		if err != nil {
			return nil, err
		}
		if v.metric && v.ranker {
			full = sys
		}
		f := sys.Evaluate(test).F1()
		vp := vpairLatency(sys, d, 10)
		t.Rows = append(t.Rows, []string{v.label, fm(f), secs(vp)})
	}

	// Blocking ablation: full-scan candidate generation on the full
	// system (accuracy is unchanged — blocking is sound here — so only
	// latency is reported).
	t2 := Table{
		Title:  "Ablation: inverted-index blocking vs full scan (VPair latency)",
		Header: []string{"Candidates", "VPair seconds"},
	}
	t2.Rows = append(t2.Rows, []string{"inverted index", secs(vpairLatency(full, d, 10))})
	t2.Rows = append(t2.Rows, []string{"full scan", secs(vpairFullScan(full, d, 10))})
	return []Table{t, t2}, nil
}

// vpairLatency times the system's (blocked) VPair over sample tuples.
func vpairLatency(sys *her.System, d *dataset.Generated, n int) time.Duration {
	tuples := d.TupleVertices
	if len(tuples) > n {
		tuples = tuples[:n]
	}
	sys.ResetMatchState()
	total := timeIt(func() {
		for _, u := range tuples {
			sys.VPairVertex(u)
		}
	})
	return total / time.Duration(len(tuples))
}

// vpairFullScan times VPair with candidate generation disabled (every
// vertex of G is a candidate pool entry), using a fresh matcher over the
// system's scorers and rankers.
func vpairFullScan(sys *her.System, d *dataset.Generated, n int) time.Duration {
	m, err := core.NewMatcher(sys.GD, sys.G, sys.RankerD(), sys.RankerG(), sys.CoreParams())
	if err != nil {
		return 0
	}
	tuples := d.TupleVertices
	if len(tuples) > n {
		tuples = tuples[:n]
	}
	total := timeIt(func() {
		for _, u := range tuples {
			m.VPair(u, nil)
		}
	})
	return total / time.Duration(len(tuples))
}
