package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"her/internal/core"
	"her/internal/graph"
	"her/internal/obs"
)

// ErrOverloaded is returned when a shard queue is full: the request is
// shed at admission instead of queueing unbounded work. HTTP layers map
// it to 429 with a Retry-After hint.
var ErrOverloaded = errors.New("shard: queues full, request shed")

// ErrClosed is returned for requests after Close.
var ErrClosed = errors.New("shard: engine closed")

// Engine is the sharded match-serving engine. It is safe for concurrent
// use: requests share the current shard state under a read lock, while
// generation changes (incremental updates, feedback, retraining) retire
// it and build a fresh one under the write lock.
type Engine struct {
	cfg   Config
	cache *resultCache
	sf    *inflight
	met   engineMetrics

	// Lifetime maintenance counters, kept on the engine (not the obs
	// registry) so Info reports them even without instrumentation.
	deltasApplied atomic.Uint64
	fullRebuilds  atomic.Uint64
	fragRebuilds  atomic.Uint64
	cacheSurvived atomic.Uint64
	cacheEvicted  atomic.Uint64

	mu     sync.RWMutex
	cur    *shardState // guarded by mu — requests read-lease it, advance swaps it
	closed bool        // guarded by mu
}

// engineMetrics resolves the engine's obs handles once; all of them are
// nil (no-op) without a registry.
type engineMetrics struct {
	vpairRequests *obs.Counter
	apairRequests *obs.Counter
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	sfWaits       *obs.Counter
	shed          *obs.Counter
	rebuilds      *obs.Counter
	deltasApplied *obs.Counter
	fragRebuilds  *obs.Counter
	cacheSurvived *obs.Counter
	cacheEvicted  *obs.Counter
	vpairGather   *obs.Histogram // her_shard_gather_seconds{op="vpair"}
	apairGather   *obs.Histogram // her_shard_gather_seconds{op="apair"}
}

// gather returns the scatter/gather latency histogram for op.
func (m *engineMetrics) gather(op taskOp) *obs.Histogram {
	if op == opAPair {
		return m.apairGather
	}
	return m.vpairGather
}

// NewEngine validates the configuration and builds the initial shard
// state (partition, halo materialization, workers).
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.normalized()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:   cfg,
		cache: newResultCache(cfg.CacheSize),
		sf:    newInflight(),
		met: engineMetrics{
			vpairRequests: cfg.Metrics.Counter(`her_shard_requests_total{op="vpair"}`),
			apairRequests: cfg.Metrics.Counter(`her_shard_requests_total{op="apair"}`),
			cacheHits:     cfg.Metrics.Counter(`her_shard_cache_hits_total`),
			cacheMisses:   cfg.Metrics.Counter(`her_shard_cache_misses_total`),
			sfWaits:       cfg.Metrics.Counter(`her_shard_singleflight_waits_total`),
			shed:          cfg.Metrics.Counter(`her_shard_shed_total`),
			rebuilds:      cfg.Metrics.Counter(`her_shard_rebuilds_total`),
			deltasApplied: cfg.Metrics.Counter(`her_shard_deltas_applied_total`),
			fragRebuilds:  cfg.Metrics.Counter(`her_shard_fragment_rebuilds_total`),
			cacheSurvived: cfg.Metrics.Counter(`her_shard_cache_delta_survived_total`),
			cacheEvicted:  cfg.Metrics.Counter(`her_shard_cache_delta_evicted_total`),
			vpairGather:   cfg.Metrics.Histogram(`her_shard_gather_seconds{op="vpair"}`, obs.TimeBuckets),
			apairGather:   cfg.Metrics.Histogram(`her_shard_gather_seconds{op="apair"}`, obs.TimeBuckets),
		},
	}
	st, err := buildState(cfg, e.generation())
	if err != nil {
		return nil, err
	}
	e.cur = st
	return e, nil
}

func (e *Engine) generation() uint64 {
	if e.cfg.Generation == nil {
		return 0
	}
	return e.cfg.Generation()
}

// task is one unit of per-shard work. reply is buffered (capacity 1)
// so a worker never blocks on an abandoned request.
//
// The struct is a cached compute request: herlint's keycomplete check
// enforces that every field the compute path reads either flows into
// one of the declared key builders or carries a written exemption.
//
//herlint:keyed vpairKey,apairKey
type task struct {
	// nonkey: per-request cancellation; decides whether the result is
	// delivered, never what it is
	ctx context.Context
	// nonkey: the op selects the builder, and the builders' key spaces
	// are disjoint by construction ("vpair:" vs "apair:" prefixes)
	op      taskOp
	u       graph.VID   // VPair source
	sources []graph.VID // APair sources
	// nonkey: response channel, carries the result out
	reply chan taskResult
	// enqueuedAt is stamped at enqueue when the worker measures queue
	// wait (metrics registered) or the request carries a span; zero
	// otherwise, so the disabled path never reads the clock.
	// nonkey: observability timestamp, cannot affect the match set
	enqueuedAt time.Time
	// nonkey: tracing flag, only controls whether timestamps are stamped
	traced bool // request carries a span: worker must stamp times
}

type taskOp int

const (
	opVPair taskOp = iota
	opAPair
	// opBarrier is the quiesce sentinel (delta.go): workers acknowledge
	// it immediately, and FIFO order guarantees every earlier task —
	// including abandoned ones — has fully drained first.
	opBarrier
)

type taskResult struct {
	pairs []core.Pair // global ids
	err   error
	// dequeuedAt/doneAt travel back to the router so a traced request
	// can reconstruct the worker's queue-wait and compute intervals as
	// spans. Zero when neither metrics nor tracing asked for them.
	dequeuedAt time.Time
	doneAt     time.Time
}

// run is the worker's drain loop: one goroutine per shard owns the
// matcher, so the (deliberately non-thread-safe) core.Matcher needs no
// locking and its cache warms across requests.
//
//herlint:hot
func (w *shardWorker) run() {
	for t := range w.queue {
		if t.op == opBarrier {
			t.reply <- taskResult{}
			continue
		}
		w.depth.Add(-1)
		if t.ctx.Err() != nil {
			t.reply <- taskResult{err: t.ctx.Err()}
			continue
		}
		// Queue-wait and compute are measured here, on the worker, and
		// shipped back as timestamps: the router owns no clock that could
		// see the dequeue. Clock reads happen only when the histograms
		// are registered or the request is traced.
		var dq, done time.Time
		timed := w.waitSeconds != nil || t.traced
		if timed {
			dq = time.Now()
			if !t.enqueuedAt.IsZero() {
				w.waitSeconds.Observe(dq.Sub(t.enqueuedAt).Seconds())
			}
		}
		var local []core.Pair
		switch t.op {
		case opVPair:
			local = w.matcher.VPair(t.u, w.gen)
		case opAPair:
			local = w.matcher.APair(t.sources, w.gen)
		}
		if timed {
			done = time.Now()
			w.computeSeconds.Observe(done.Sub(dq).Seconds())
		}
		out := make([]core.Pair, len(local))
		for i, p := range local {
			out[i] = core.Pair{U: p.U, V: w.toGlobal[p.V]}
		}
		t.reply <- taskResult{pairs: out, dequeuedAt: dq, doneAt: done}
	}
}

// VPair computes all matches of G_D vertex u across the shards —
// identical (post-merge) to a whole-graph VParaMatch. u is validated
// against the current state's G_D snapshot (not a live graph, which a
// concurrent mutation could be extending mid-read), so a vertex added
// by AddTuple becomes addressable as soon as the generation bump has
// triggered a rebuild.
func (e *Engine) VPair(ctx context.Context, u graph.VID) ([]core.Pair, error) {
	e.met.vpairRequests.Inc()
	t := &task{op: opVPair, u: u}
	return e.serve(ctx, vpairKey(t.u), t.u, t)
}

// APair computes all matches for the given G_D source vertices (nil
// means every vertex of G_D) across the shards.
func (e *Engine) APair(ctx context.Context, sources []graph.VID) ([]core.Pair, error) {
	e.met.apairRequests.Inc()
	t := &task{op: opAPair, sources: sources}
	return e.serve(ctx, apairKey(t.sources), graph.NoVertex, t)
}

// scopeOf parses a request prototype into the cache entry's vertex
// scope, copying the source slice so a caller reusing its buffer cannot
// corrupt sweep decisions.
func scopeOf(proto *task) keyScope {
	sc := keyScope{op: proto.op, u: proto.u}
	if proto.op == opAPair {
		if proto.sources == nil {
			sc.allSources = true
		} else {
			sc.sources = append([]graph.VID(nil), proto.sources...)
		}
	}
	return sc
}

// vpairKey builds the cache key of a single-source VPair request. The
// "vpair:" prefix keeps its key space disjoint from apairKey's.
func vpairKey(u graph.VID) string {
	return "vpair:" + strconv.FormatInt(int64(u), 10)
}

// apairKey folds the source set into the cache key so distinct source
// selections never collide. A nil slice means "every vertex of G_D"
// (Matcher.APair's convention) and gets its own key, distinct from an
// explicit empty selection.
func apairKey(sources []graph.VID) string {
	if sources == nil {
		return "apair:all"
	}
	h := fnv.New64a()
	var buf [4]byte
	for _, v := range sources {
		buf[0], buf[1], buf[2], buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		_, _ = h.Write(buf[:])
	}
	return fmt.Sprintf("apair:%d:%x", len(sources), h.Sum64())
}

// serve runs the cache → singleflight → scatter/gather pipeline for one
// request. proto carries the operation; serve fills in the per-request
// context and reply channels. The loop re-enters at most once per
// abandoned leader: when a leader fails on its own context (client
// disconnect, private timeout), its call is abandoned rather than
// finished, and each waiting follower loops back to re-check the cache
// and elect a fresh leader under its own still-healthy budget.
func (e *Engine) serve(ctx context.Context, key string, scope graph.VID, proto *task) ([]core.Pair, error) {
	sp := obs.SpanFrom(ctx)
	gen := e.generation()
	// Advance maintenance before the cache read: a delta sweep re-stamps
	// surviving entries to the new generation, so reading the cache first
	// would misjudge a survivor as stale — and the very request that
	// should have been served from the surviving entry would recompute
	// it. Errors fall through: compute() calls state() again and reports
	// them on the request path.
	if _, release, err := e.state(gen); err == nil {
		release()
	}
	counted := false
	for {
		csp := sp.Child("cache")
		if pairs, ok := e.cache.get(key, gen); ok {
			e.met.cacheHits.Inc()
			if csp != nil {
				csp.SetAttr("cache", "hit")
			}
			csp.End()
			return pairs, nil
		}
		if csp != nil {
			csp.SetAttr("cache", "miss")
		}
		csp.End()
		if !counted {
			e.met.cacheMisses.Inc()
			counted = true
		}

		leader, c := e.sf.join(key, gen)
		if !leader {
			e.met.sfWaits.Inc()
			wsp := sp.Child("singleflight_wait")
			select {
			case <-c.done:
				wsp.End()
				if c.retry {
					continue // leader died on its own budget, not ours
				}
				return c.pairs, c.err
			case <-ctx.Done():
				wsp.End()
				return nil, ctx.Err()
			}
		}
		pairs, err := e.compute(ctx, gen, scope, proto)
		if err != nil && ctx.Err() != nil {
			// The failure is this leader's context expiring — it says
			// nothing about the shared computation, so don't publish it
			// to followers with healthy budgets.
			e.sf.abandon(key, gen, c)
			return nil, err
		}
		if err == nil && e.generation() == gen {
			// Only cache results whose generation is still current: a
			// mutation that landed mid-request must not be masked by a
			// stale entry stamped with the new generation.
			e.cache.put(key, gen, scopeOf(proto), pairs)
		}
		e.sf.finish(key, gen, c, pairs, err)
		return pairs, err
	}
}

// compute scatters proto to every shard worker and gathers the merged,
// sorted, override-reconciled match set. Admission control happens at
// enqueue: any full queue sheds the whole request with ErrOverloaded.
//
//herlint:hot
func (e *Engine) compute(ctx context.Context, gen uint64, scope graph.VID, proto *task) ([]core.Pair, error) {
	st, release, err := e.state(gen)
	if err != nil {
		return nil, err
	}
	defer release()
	if proto.op == opVPair && !st.gd.Valid(proto.u) {
		return nil, fmt.Errorf("shard: unknown G_D vertex %d", proto.u)
	}

	sp := obs.SpanFrom(ctx)
	t0 := time.Now()
	ssp := sp.Child("scatter")
	reqCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	tasks := make([]*task, 0, len(st.shards))
	for _, w := range st.shards {
		t := &task{ctx: reqCtx, op: proto.op, u: proto.u, sources: proto.sources,
			reply: make(chan taskResult, 1), traced: sp != nil}
		if w.waitSeconds != nil || t.traced {
			t.enqueuedAt = time.Now()
		}
		select {
		case w.queue <- t:
			w.depth.Add(1)
			tasks = append(tasks, t)
		default:
			// Abandon the siblings already queued: cancel flips their
			// context so workers skip them cheaply.
			e.met.shed.Inc()
			ssp.End()
			return nil, ErrOverloaded
		}
	}
	ssp.End()
	gsp := sp.Child("gather")
	results := make([]taskResult, len(tasks))
	total := 0
	for i, t := range tasks {
		select {
		case r := <-t.reply:
			if r.err != nil {
				gsp.End()
				return nil, r.err
			}
			if sp != nil && !r.doneAt.IsZero() {
				// Reconstruct the worker's timeline from its own clock
				// reads: enqueue→dequeue is queue wait, dequeue→done is
				// compute. The shard span nests both under gather.
				shSp := gsp.ChildInterval("shard", t.enqueuedAt, r.doneAt)
				shSp.SetAttr("shard", strconv.Itoa(st.shards[i].id))
				shSp.ChildInterval("queue_wait", t.enqueuedAt, r.dequeuedAt)
				shSp.ChildInterval("compute", r.dequeuedAt, r.doneAt)
			}
			results[i] = r
			total += len(r.pairs)
		case <-ctx.Done():
			gsp.End()
			return nil, ctx.Err()
		}
	}
	gsp.End()
	// One allocation sized to the gathered total, instead of letting
	// append re-grow (and re-copy) the merged slice shard by shard.
	merged := make([]core.Pair, 0, total)
	for _, r := range results {
		merged = append(merged, r.pairs...)
	}
	msp := sp.Child("merge")
	core.SortPairs(merged)
	if e.cfg.Overrides != nil {
		merged = e.cfg.Overrides(merged, scope)
	}
	msp.End()
	e.met.gather(proto.op).ObserveSince(t0)
	return merged, nil
}

// state returns the shard state for generation gen with a read lease
// (the returned release func). A state behind gen is advanced first —
// in place when the delta log covers the gap, by a full rebuild
// otherwise (delta.go). A state AHEAD of gen is served as-is: it is the
// freshest view, and the caller's pre-mutation generation stamp only
// prevents its result from being cached.
func (e *Engine) state(gen uint64) (*shardState, func(), error) {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, nil, ErrClosed
	}
	if e.cur.gen >= gen {
		return e.cur, e.mu.RUnlock, nil
	}
	e.mu.RUnlock()
	if err := e.advance(); err != nil {
		return nil, nil, err
	}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, nil, ErrClosed
	}
	return e.cur, e.mu.RUnlock, nil
}

// Close stops every shard worker. Subsequent requests return ErrClosed.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	stopWorkers(e.cur.shards)
}

// Snapshot reports the current shard layout, for /stats and tests.
func (e *Engine) Snapshot() Info {
	e.mu.RLock()
	defer e.mu.RUnlock()
	info := Info{
		Shards:           len(e.cur.shards),
		Generation:       e.cur.gen,
		HaloRadius:       e.cur.radius,
		CacheLen:         e.cache.len(),
		DeltasApplied:    e.deltasApplied.Load(),
		FullRebuilds:     e.fullRebuilds.Load(),
		FragmentRebuilds: e.fragRebuilds.Load(),
		CacheSurvived:    e.cacheSurvived.Load(),
		CacheEvicted:     e.cacheEvicted.Load(),
	}
	for _, w := range e.cur.shards {
		info.Fragments = append(info.Fragments, FragmentInfo{
			Shard: w.id, Owned: len(w.owned), Halo: w.haloLen,
		})
	}
	return info
}
