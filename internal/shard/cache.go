package shard

import (
	"container/list"
	"sync"

	"her/internal/core"
	"her/internal/graph"
)

// resultCache is the generation-stamped LRU fronting the router. Merged
// match sets are stored under their request key together with the
// mutation generation they were computed at and the key's vertex scope.
// A lookup whose stored generation differs from the caller's misses
// (dropping the entry only when it is older — a concurrent sweep may
// already have advanced it past a request that captured its generation
// earlier). Incremental updates no longer wipe the cache: the engine's
// delta sweep (advance) re-stamps unaffected entries to the new
// generation and evicts only the ones whose key vertices fall inside an
// affected halo region. Non-incremental changes (feedback, retraining)
// skip the sweep, so every entry goes stale and is dropped lazily.
//
// A nil *resultCache is a valid "disabled" cache: get always misses and
// put is a no-op (the obs nil-safety idiom).
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List               // guarded by mu — front = most recently used
	byKey map[string]*list.Element // guarded by mu
}

// keyScope is the parsed addressing of a cache entry — which G_D
// vertices its result ranges over — so delta sweeps can decide
// relevance without reparsing keys.
type keyScope struct {
	op         taskOp
	u          graph.VID   // opVPair: the source vertex
	sources    []graph.VID // opAPair: explicit sources (nil with allSources)
	allSources bool        // opAPair over every vertex of G_D
}

type cacheEntry struct {
	key   string
	gen   uint64
	scope keyScope
	pairs []core.Pair
}

// newResultCache creates a cache holding at most capacity entries;
// capacity <= 0 returns the disabled nil cache.
func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[string]*list.Element),
	}
}

// get returns a copy of the match set stored under key at generation
// gen. An entry from an older generation is stale: it misses and is
// evicted eagerly. An entry from a NEWER generation also misses for
// this caller (whose request pre-dates the mutation) but stays — a
// delta sweep legitimately advanced it, and the next current-generation
// request should still hit it.
func (c *resultCache) get(key string, gen uint64) ([]core.Pair, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.gen != gen {
		if e.gen < gen {
			c.order.Remove(el)
			delete(c.byKey, key)
		}
		return nil, false
	}
	c.order.MoveToFront(el)
	out := make([]core.Pair, len(e.pairs))
	copy(out, e.pairs)
	return out, true
}

// put stores a copy of pairs under key at generation gen with its
// vertex scope, evicting the least recently used entry when the cache
// is full. A newer entry already present (a sweep advanced it while
// this result was being computed) is left alone.
func (c *resultCache) put(key string, gen uint64, scope keyScope, pairs []core.Pair) {
	if c == nil {
		return
	}
	stored := make([]core.Pair, len(pairs))
	copy(stored, pairs)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*cacheEntry)
		if e.gen > gen {
			return
		}
		e.gen = gen
		e.scope = scope
		e.pairs = stored
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, gen: gen, scope: scope, pairs: stored})
}

// advance is the vertex-scoped invalidation sweep: it walks every live
// entry, evicts the ones the current delta affects (plus strays from
// generations older than to-1, which could never be re-validated), and
// re-stamps the survivors to generation to. It returns how many
// entries survived and how many were evicted.
func (c *resultCache) advance(to uint64, affects func(keyScope) bool) (survived, evicted int) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		if e.gen != to-1 || affects(e.scope) {
			c.order.Remove(el)
			delete(c.byKey, e.key)
			evicted++
		} else {
			e.gen = to
			survived++
		}
		el = next
	}
	return survived, evicted
}

// len reports the number of live entries (stale ones included until
// their next lookup).
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// inflight deduplicates concurrent identical requests singleflight
// style: the first caller of a (key, generation) becomes the leader and
// computes; followers block on the call's done channel and share the
// leader's result. Keys are generation-scoped so a request racing a
// mutation never latches onto a stale computation.
type inflight struct {
	mu    sync.Mutex
	calls map[sfKey]*call // guarded by mu
}

type sfKey struct {
	key string
	gen uint64
}

type call struct {
	done  chan struct{}
	pairs []core.Pair
	err   error
	// retry, set by abandon, tells followers the leader quit on its own
	// context without producing a shared result: loop back and re-join
	// instead of inheriting an error that was never theirs.
	retry bool
}

func newInflight() *inflight {
	return &inflight{calls: make(map[sfKey]*call)}
}

// join registers interest in (key, gen). The first caller gets
// leader=true and must eventually call finish; followers receive the
// leader's call handle and wait on its done channel.
func (f *inflight) join(key string, gen uint64) (leader bool, c *call) {
	k := sfKey{key: key, gen: gen}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.calls[k]; ok {
		return false, c
	}
	c = &call{done: make(chan struct{})}
	f.calls[k] = c
	return true, c
}

// finish publishes the leader's result to every follower and retires
// the call.
func (f *inflight) finish(key string, gen uint64, c *call, pairs []core.Pair, err error) {
	c.pairs, c.err = pairs, err
	f.mu.Lock()
	delete(f.calls, sfKey{key: key, gen: gen})
	f.mu.Unlock()
	close(c.done)
}

// abandon retires the call without publishing a result: the leader's own
// context died (cancel or deadline), which says nothing about the
// followers' budgets. The key is removed so the next join — including a
// follower waking from this call — elects a fresh leader.
func (f *inflight) abandon(key string, gen uint64, c *call) {
	c.retry = true
	f.mu.Lock()
	delete(f.calls, sfKey{key: key, gen: gen})
	f.mu.Unlock()
	close(c.done)
}
