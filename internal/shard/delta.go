package shard

import (
	"errors"
	"sync"

	"her/internal/core"
	"her/internal/graph"
	"her/internal/index"
)

// This file implements delta-aware maintenance: instead of retiring the
// whole shard state on every generation bump (an O(|G|) re-clone plus
// repartition per write), the engine consumes typed deltas from its
// owner and applies them to the private snapshots in place — the
// IncPSim discipline of Section VI-B remark 2 lifted to the serving
// layer. A delta is routed only to fragments whose halo-closed
// subgraphs actually materialize the touched vertices; everything else
// keeps its warm matcher caches, and the result cache evicts only the
// entries whose key vertices can reach the touched region (vertex-
// scoped invalidation) instead of the whole cache.

// DeltaKind classifies one recorded mutation.
type DeltaKind uint8

const (
	// DeltaReset marks a non-incremental change (feedback, retraining,
	// threshold updates, model reload): verdicts may change anywhere, so
	// the engine must fall back to a full rebuild.
	DeltaReset DeltaKind = iota
	// DeltaTuple is an AddTuple: G_D grew a fresh region (a tuple vertex
	// plus attribute leaves; edges only leave the new vertices, so no old
	// verdict is affected).
	DeltaTuple
	// DeltaGraphVertex is an AddGraphVertex: G gained one isolated vertex.
	DeltaGraphVertex
	// DeltaGraphEdge is an AddGraphEdge: G gained one edge.
	DeltaGraphEdge
)

// GDEdge is one canonical-graph edge carried by a DeltaTuple.
type GDEdge struct {
	From, To graph.VID
	Label    string
}

// Delta is one typed mutation, stamped with the generation it produced.
// The engine replays deltas in generation order against its private
// graph mirrors, so a mirror at generation g plus the deltas (g, g']
// reconstructs the owner's graphs at g' exactly.
type Delta struct {
	Gen  uint64
	Kind DeltaKind

	// DeltaTuple: the new G_D vertices are [GDBase, GDBase+len(GDLabels))
	// in id order, with GDEdges grouped by source in insertion order.
	GDBase   int
	GDLabels []string
	GDEdges  []GDEdge

	// DeltaGraphVertex: the new vertex id (must equal the mirror's next
	// id — a mismatch means the log and mirror diverged).
	V graph.VID
	// DeltaGraphEdge endpoints.
	From, To graph.VID
	// Label is the vertex label (DeltaGraphVertex) or edge label
	// (DeltaGraphEdge).
	Label string
}

// DeltaLog is a bounded ring of recorded deltas, dense in generations:
// every generation bump records exactly one delta, so the log covers a
// contiguous suffix of history. Owners record under their mutation
// lock; the engine reads concurrently through Since.
type DeltaLog struct {
	mu  sync.Mutex
	cap int
	buf []Delta // guarded by mu — ascending Gen; oldest dropped when past capacity
}

// NewDeltaLog creates a log retaining the most recent capacity deltas
// (<= 0 picks the default of 1024).
func NewDeltaLog(capacity int) *DeltaLog {
	if capacity <= 0 {
		capacity = 1024
	}
	return &DeltaLog{cap: capacity}
}

// Record appends d. Callers must record deltas with strictly increasing
// Gen (the owner's mutation lock serializes them).
func (l *DeltaLog) Record(d Delta) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) >= l.cap {
		n := copy(l.buf, l.buf[len(l.buf)-l.cap+1:])
		l.buf = l.buf[:n]
	}
	l.buf = append(l.buf, d)
}

// Since returns the deltas with Gen in (after, upto], in order. ok is
// false when the log no longer covers that range contiguously (the ring
// dropped older entries), in which case the caller must fall back to a
// full rebuild.
func (l *DeltaLog) Since(after, upto uint64) ([]Delta, bool) {
	if after >= upto {
		return nil, true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) == 0 || l.buf[0].Gen > after+1 || l.buf[len(l.buf)-1].Gen < upto {
		return nil, false
	}
	out := make([]Delta, 0, upto-after)
	for _, d := range l.buf {
		if d.Gen > after && d.Gen <= upto {
			out = append(out, d)
		}
	}
	if uint64(len(out)) != upto-after {
		return nil, false // gap: generations are dense, so this is divergence
	}
	return out, true
}

// errDeltaRebuild signals that a delta cannot be applied in place and
// the engine must fall back to a full rebuild. It never escapes advance.
var errDeltaRebuild = errors.New("shard: delta requires full rebuild")

// advance brings the current state up to the owner's generation: by
// applying the recorded deltas in place when the log covers the gap and
// every delta is incremental, by a full rebuild otherwise. Runs under
// the write lock, which excludes every in-flight request; quiesce then
// drains the worker queues so no worker goroutine touches shared state
// while it is mutated.
func (e *Engine) advance() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	target := e.generation()
	if e.cur.gen >= target {
		return nil // raced with another advancer
	}
	if e.cfg.Deltas != nil {
		if deltas, ok := e.cfg.Deltas(e.cur.gen, target); ok && incrementalOnly(deltas) {
			if err := e.applyDeltasLocked(deltas); err == nil {
				e.cur.gen = target
				return nil
			} else if err != errDeltaRebuild {
				return err
			}
		}
	}
	st, err := buildState(e.cfg, target)
	if err != nil {
		return err
	}
	stopWorkers(e.cur.shards)
	e.cur = st
	e.fullRebuilds.Add(1)
	e.met.rebuilds.Inc()
	return nil
}

// incrementalOnly reports whether every delta can be applied in place
// (no DeltaReset poison pill).
func incrementalOnly(deltas []Delta) bool {
	for i := range deltas {
		if deltas[i].Kind == DeltaReset {
			return false
		}
	}
	return len(deltas) > 0
}

// applyDeltasLocked quiesces the workers and replays the batch in
// generation order, advancing the result cache after each delta so
// surviving entries are re-stamped exactly once per generation. Any
// error leaves the state partially mutated; the caller discards it with
// a full rebuild, so nothing corrupt is ever served. Callers hold
// e.mu for writing (advance does), which excludes every request lease.
func (e *Engine) applyDeltasLocked(deltas []Delta) error {
	st := e.cur
	st.quiesce()
	for i := range deltas {
		if err := e.applyDelta(st, &deltas[i]); err != nil {
			return err
		}
		e.deltasApplied.Add(1)
		e.met.deltasApplied.Inc()
	}
	return nil
}

func (e *Engine) applyDelta(st *shardState, d *Delta) error {
	switch d.Kind {
	case DeltaTuple:
		return e.applyTupleDelta(st, d)
	case DeltaGraphVertex:
		return e.applyVertexDelta(st, d)
	case DeltaGraphEdge:
		return e.applyEdgeDelta(st, d)
	default:
		return errDeltaRebuild
	}
}

// applyTupleDelta grows the private G_D mirror with the tuple's fresh
// region. No fragment is touched: G is unchanged, the new G_D vertices
// have no incoming edges from old vertices (rdb2rdf.AddTuple only adds
// edges leaving them), so every cached verdict and ranker entry stays
// valid, and the shared RankerD evaluates the new vertices lazily. Only
// unscoped APair entries are evicted from the result cache — they must
// now include the new tuple's matches — so VPair and explicit-source
// APair entries survive the write. The one structural escape hatch: a
// foreign-key edge into an old tuple can deepen (or knot) G_D and
// change the halo radius, in which case the fragments are no longer
// closed widely enough and the engine falls back to a full rebuild.
func (e *Engine) applyTupleDelta(st *shardState, d *Delta) error {
	if st.gd.NumVertices() != d.GDBase {
		return errDeltaRebuild // mirror diverged from the log
	}
	for _, lbl := range d.GDLabels {
		st.gd.AddVertex(lbl)
	}
	for _, ge := range d.GDEdges {
		if ge.From < graph.VID(d.GDBase) || st.gd.AddEdge(ge.From, ge.To, ge.Label) != nil {
			return errDeltaRebuild
		}
	}
	if core.HaloRadius(st.gd, st.cfg.MaxPathLen) != st.radius {
		return errDeltaRebuild
	}
	e.sweepCache(st, d.Gen, func(sc keyScope) bool {
		return sc.op == opAPair && sc.allSources
	})
	return nil
}

// applyVertexDelta appends one isolated vertex to the G mirror and to
// exactly one fragment, chosen as the least-owned (ownership placement
// is free: halo closure makes every per-pair verdict independent of
// which fragment owns the candidate, so any disjoint cover yields the
// same merged result). The new id is the global maximum, so appending
// preserves the ascending-global-id invariant every tie-break relies
// on. A fresh vertex is a leaf: the blocking index ignores it and no
// cached decision references it, so with blocking on, nothing is
// evicted; without blocking every candidate scan now includes it, so
// all match entries go.
func (e *Engine) applyVertexDelta(st *shardState, d *Delta) error {
	if st.g.AddVertex(d.Label) != d.V {
		return errDeltaRebuild // mirror diverged from the log
	}
	w := st.shards[0]
	for _, cand := range st.shards[1:] {
		if len(cand.owned) < len(w.owned) {
			w = cand
		}
	}
	lv := w.g.AddVertex(d.Label)
	w.setLocal(d.V, lv)
	w.toGlobal = append(w.toGlobal, d.V)
	w.depthOf = append(w.depthOf, 0)
	w.owned = append(w.owned, lv)
	w.ownedGlobal = append(w.ownedGlobal, d.V)
	w.isOwned = append(w.isOwned, true)
	e.sweepCache(st, d.Gen, func(sc keyScope) bool {
		return !st.blocking()
	})
	return nil
}

// applyEdgeDelta adds one G edge. Fragment routing follows the halo
// rule: a fragment is affected iff it materializes the source vertex at
// a depth whose out-edges are expanded (expandEdges) — anywhere else
// the edge is provably never inspected, because every owned candidate
// sits at least the full halo radius away. Affected fragments first try
// an in-place graft (append the edge, pull newly reachable vertices
// into the halo when their global ids keep the local order ascending);
// when the graft would reorder ids or shrink a depth (which could shift
// the expansion frontier), just that fragment is rebuilt from the
// mirrors — still no global re-clone. In-place fragments then drop the
// ranker entries and cached decisions of every vertex within MaxPathLen
// reverse hops of the source (plus transitive dependants), mirroring
// System.AddGraphEdge's IncPSim rule, and rebuild their blocking index
// (neighborhood docs of the source changed).
func (e *Engine) applyEdgeDelta(st *shardState, d *Delta) error {
	if !st.g.Valid(d.From) || !st.g.Valid(d.To) {
		return errDeltaRebuild
	}
	if err := st.g.AddEdge(d.From, d.To, d.Label); err != nil {
		return errDeltaRebuild
	}
	maxLen := st.cfg.MaxPathLen
	if maxLen <= 0 {
		maxLen = 4
	}
	forget := reverseRegion(st.g, d.From, maxLen)

	touched := make([]*shardWorker, 0, len(st.shards))
	for i, w := range st.shards {
		lfrom, ok := w.localOf(d.From)
		if !ok || !expandEdges(int(w.depthOf[lfrom]), st.radius, w.blocking && w.isOwned[lfrom]) {
			continue
		}
		if w.applyEdgeInPlace(st, d, lfrom) {
			region := w.localRegion(forget)
			for lv := range region {
				w.rankerG.Invalidate(lv)
			}
			w.matcher.ForgetVertices(func(v graph.VID) bool { return region[v] })
			if w.blocking {
				w.rebuildIndex()
			}
		} else {
			nw, err := st.rebuildWorker(w)
			if err != nil {
				return err
			}
			close(w.queue)
			st.shards[i] = nw
			w = nw
			e.fragRebuilds.Add(1)
			e.met.fragRebuilds.Inc()
		}
		touched = append(touched, w)
	}

	if len(touched) == 0 {
		// The source is at most a halo-frontier vertex everywhere: its
		// out-edges are never inspected, no verdict or candidate set can
		// change, so every cache entry survives untouched.
		e.sweepCache(st, d.Gen, func(keyScope) bool { return false })
		return nil
	}
	// Cache scoping: a cached result can change only if one of its
	// candidates reaches the edge's source within the halo radius (the
	// matcher never reads G beyond that); candidate sets themselves only
	// grow under edge addition, and any gained candidate is the source
	// itself, so probing the post-update blocking index is sound.
	evict := reverseRegion(st.g, d.From, st.radius)
	e.sweepCache(st, d.Gen, func(sc keyScope) bool {
		if !st.blocking() {
			return true // candidates are all owned vertices: always in range
		}
		if sc.op == opAPair && sc.allSources {
			return true
		}
		probe := func(u graph.VID) bool {
			if !st.gd.Valid(u) {
				return true
			}
			doc := st.docD(u)
			for _, w := range touched {
				for _, lv := range w.ix.Lookup(doc, w.minShared) {
					if evict[w.toGlobal[lv]] {
						return true
					}
				}
			}
			return false
		}
		if sc.op == opVPair {
			return probe(sc.u)
		}
		for _, u := range sc.sources {
			if probe(u) {
				return true
			}
		}
		return false
	})
	return nil
}

// applyEdgeInPlace grafts the new edge (and any vertices it pulls into
// the halo) onto the worker's subgraph. It reports false when the graft
// cannot preserve the worker's invariants — a pulled vertex whose
// global id is not past the current maximum (local ids must stay
// ascending in global id), or a depth decrease for an existing member
// (the expansion frontier could shift) — in which case the caller
// rebuilds the fragment and discards the partial mutation with it.
func (w *shardWorker) applyEdgeInPlace(st *shardState, d *Delta, lfrom graph.VID) bool {
	type pend struct {
		lfrom graph.VID
		to    graph.VID // global
		label string
		depth int32 // candidate depth of to
	}
	queue := []pend{{lfrom: lfrom, to: d.To, label: d.Label, depth: w.depthOf[lfrom] + 1}}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if lto, ok := w.localOf(p.to); ok {
			if p.depth < w.depthOf[lto] {
				return false
			}
			w.g.MustAddEdge(p.lfrom, lto, p.label)
			continue
		}
		if len(w.toGlobal) > 0 && p.to <= w.toGlobal[len(w.toGlobal)-1] {
			return false
		}
		lto := w.g.AddVertex(st.g.Label(p.to))
		w.setLocal(p.to, lto)
		w.toGlobal = append(w.toGlobal, p.to)
		w.depthOf = append(w.depthOf, p.depth)
		w.isOwned = append(w.isOwned, false)
		w.haloLen++
		w.g.MustAddEdge(p.lfrom, lto, p.label)
		if expandEdges(int(p.depth), st.radius, false) {
			for _, ge := range st.g.Out(p.to) {
				queue = append(queue, pend{lfrom: lto, to: ge.To, label: ge.Label, depth: p.depth + 1})
			}
		}
	}
	return true
}

// rebuildWorker rebuilds one fragment from the state's private mirrors,
// keeping its owned set (including vertices assigned since the last
// full partition). The old worker keeps serving nothing — advance holds
// the write lock — and is retired by the caller.
func (st *shardState) rebuildWorker(old *shardWorker) (*shardWorker, error) {
	cfg := st.cfg
	frag := &graph.Fragment{ID: old.id, Owned: old.ownedGlobal}
	w, err := buildWorker(cfg, frag, st.radius, st.docD)
	if err != nil {
		return nil, err
	}
	wireWorker(cfg, w)
	return w, nil
}

// sweepCache advances every live entry to generation gen, evicting the
// ones the delta affects (and any strays from older generations). The
// survival counters feed herbench's cache-survival-rate measurement.
func (e *Engine) sweepCache(st *shardState, gen uint64, affects func(keyScope) bool) {
	survived, evicted := e.cache.advance(gen, affects)
	e.cacheSurvived.Add(uint64(survived))
	e.cacheEvicted.Add(uint64(evicted))
	e.met.cacheSurvived.Add(int64(survived))
	e.met.cacheEvicted.Add(int64(evicted))
}

// quiesce drains every worker queue with a barrier task: workers serve
// FIFO, so once each has acknowledged its barrier, no worker goroutine
// is touching matcher or subgraph state — abandoned tasks left behind
// by cancelled requests included. New enqueues are excluded by the
// engine write lock the caller holds.
func (st *shardState) quiesce() {
	acks := make([]chan taskResult, 0, len(st.shards))
	for _, w := range st.shards {
		t := &task{op: opBarrier, reply: make(chan taskResult, 1)}
		w.queue <- t
		acks = append(acks, t.reply)
	}
	for _, c := range acks {
		<-c
	}
}

// blocking reports whether this state runs with per-shard blocking
// indices (MinSharedTokens > 0 in the snapshotted config).
func (st *shardState) blocking() bool { return st.cfg.MinSharedTokens > 0 }

// localOf resolves a global vertex id to the worker's local id.
func (w *shardWorker) localOf(gv graph.VID) (graph.VID, bool) {
	if int(gv) >= len(w.toLocal) || w.toLocal[gv] == graph.NoVertex {
		return graph.NoVertex, false
	}
	return w.toLocal[gv], true
}

// setLocal records the local id of a global vertex, growing the lookup
// table as the mirror graph grows.
func (w *shardWorker) setLocal(gv, lv graph.VID) {
	for len(w.toLocal) <= int(gv) {
		w.toLocal = append(w.toLocal, graph.NoVertex)
	}
	w.toLocal[gv] = lv
}

// localRegion maps a set of global vertex ids to the worker's local ids
// (dropping vertices this fragment does not materialize).
func (w *shardWorker) localRegion(global map[graph.VID]bool) map[graph.VID]bool {
	out := make(map[graph.VID]bool)
	for gv := range global {
		if lv, ok := w.localOf(gv); ok {
			out[lv] = true
		}
	}
	return out
}

// rebuildIndex recomputes the worker's blocking index over its grown
// subgraph. Neighborhood docs are 1-hop, so a full per-fragment rebuild
// is O(|fragment|) — the price of exactness without doc diffing.
func (w *shardWorker) rebuildIndex() {
	sg := w.g
	isOwned := w.isOwned
	w.ix = index.BuildDocs(sg,
		func(v graph.VID) bool { return isOwned[v] && !sg.IsLeaf(v) },
		index.NeighborhoodDoc(sg))
}

// reverseRegion collects v and every vertex reaching v within hops
// reverse steps (hops < 0 means full reverse reachability — the cyclic
// G_D case, where the halo is the full forward closure).
func reverseRegion(g *graph.Graph, v graph.VID, hops int) map[graph.VID]bool {
	region := map[graph.VID]bool{v: true}
	frontier := []graph.VID{v}
	for d := 0; len(frontier) > 0 && (hops < 0 || d < hops); d++ {
		next := make([]graph.VID, 0, len(frontier))
		for _, x := range frontier {
			for _, in := range g.In(x) {
				if !region[in] {
					region[in] = true
					next = append(next, in)
				}
			}
		}
		frontier = next
	}
	return region
}
