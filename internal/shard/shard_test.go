package shard

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"her/internal/core"
	"her/internal/graph"
	"her/internal/obs"
	"her/internal/ranking"
)

func exactMv(a, b string) float64 {
	if a == b {
		return 1
	}
	return 0
}

func exactMrho(a, b []string) float64 {
	if len(a) != len(b) {
		return 0
	}
	for i := range a {
		if a[i] != b[i] {
			return 0
		}
	}
	return 1
}

func testParams() core.Params {
	return core.Params{Mv: exactMv, Mrho: exactMrho, Sigma: 0.9, Delta: 1.5, K: 2}
}

// fixtureGD builds an acyclic G_D: tuple → name, tuple → addr → city.
func fixtureGD() *graph.Graph {
	gd := graph.New()
	tup := gd.AddVertex("person:alice")
	name := gd.AddVertex("alice")
	addr := gd.AddVertex("addr:1")
	city := gd.AddVertex("springfield")
	gd.MustAddEdge(tup, name, "name")
	gd.MustAddEdge(tup, addr, "addr")
	gd.MustAddEdge(addr, city, "city")
	return gd
}

// fixtureG builds a deterministic target graph: copies of the G_D
// pattern chained into a long spine so halo closure actually has depth
// to exercise, plus unlabeled-noise branches.
func fixtureG(copies int) *graph.Graph {
	g := graph.New()
	var prev graph.VID = graph.NoVertex
	for i := 0; i < copies; i++ {
		tup := g.AddVertex("person:alice")
		name := g.AddVertex("alice")
		addr := g.AddVertex("addr:1")
		city := g.AddVertex("springfield")
		noise := g.AddVertex("noise")
		g.MustAddEdge(tup, name, "name")
		g.MustAddEdge(tup, addr, "addr")
		g.MustAddEdge(addr, city, "city")
		g.MustAddEdge(city, noise, "seen_in")
		if prev != graph.NoVertex {
			g.MustAddEdge(prev, tup, "next")
		}
		prev = noise
	}
	return g
}

func fixtureConfig(shards int) Config {
	gd := fixtureGD()
	return Config{
		GD:         gd,
		G:          fixtureG(8),
		RankerD:    ranking.NewRanker(gd, nil, 0),
		Params:     testParams(),
		MaxPathLen: 0,
		Shards:     shards,
	}
}

func TestExpandEdges(t *testing.T) {
	for _, tc := range []struct {
		d, radius int
		blocking  bool
		want      bool
	}{
		{d: 0, radius: 0, blocking: false, want: false},
		{d: 0, radius: 0, blocking: true, want: true}, // blocking docs read 1-hop labels
		{d: 0, radius: 3, blocking: false, want: true},
		{d: 2, radius: 3, blocking: false, want: true},
		{d: 3, radius: 3, blocking: false, want: false}, // frontier: labels only
		{d: 3, radius: 3, blocking: true, want: false},
		{d: 7, radius: -1, blocking: false, want: true}, // unbounded: everything expands
	} {
		if got := expandEdges(tc.d, tc.radius, tc.blocking); got != tc.want {
			t.Errorf("expandEdges(%d, %d, %v) = %v, want %v",
				tc.d, tc.radius, tc.blocking, got, tc.want)
		}
	}
}

// globalDepths BFSes g forward from the seed set, returning min hop
// distances (-1 = unreachable).
func globalDepths(g *graph.Graph, seeds []graph.VID) []int {
	depth := make([]int, g.NumVertices())
	for i := range depth {
		depth[i] = -1
	}
	var frontier []graph.VID
	for _, v := range seeds {
		depth[v] = 0
		frontier = append(frontier, v)
	}
	for d := 0; len(frontier) > 0; d++ {
		var next []graph.VID
		for _, v := range frontier {
			for _, e := range g.Out(v) {
				if depth[e.To] < 0 {
					depth[e.To] = d + 1
					next = append(next, e.To)
				}
			}
		}
		frontier = next
	}
	return depth
}

// checkWorkerClosure asserts the halo-closure invariant for one worker:
// every global vertex within the radius of the owned set is replicated
// with an identical label, vertices strictly inside the radius carry
// their complete out-edge list in global order, and local ids ascend in
// global id so id tie-breaks agree with the whole-graph matcher.
func checkWorkerClosure(t *testing.T, cfg Config, w *shardWorker, radius int) {
	t.Helper()
	g := cfg.G
	ownedGlobal := make([]graph.VID, 0, len(w.owned))
	for _, lv := range w.owned {
		ownedGlobal = append(ownedGlobal, w.toGlobal[lv])
	}
	depth := globalDepths(g, ownedGlobal)

	toLocal := make(map[graph.VID]graph.VID, len(w.toGlobal))
	for lv, gv := range w.toGlobal {
		if lv > 0 && w.toGlobal[lv-1] >= gv {
			t.Fatalf("shard %d: toGlobal not strictly increasing at %d", w.id, lv)
		}
		toLocal[gv] = graph.VID(lv)
	}

	blocking := cfg.MinSharedTokens > 0
	for gv := 0; gv < g.NumVertices(); gv++ {
		d := depth[gv]
		// Presence: everything within the radius, plus — when the
		// blocking index is on — the owned vertices' 1-hop out-neighbors,
		// whose labels the neighborhood docs read.
		inHalo := d >= 0 && (radius < 0 || d <= radius || (blocking && d <= 1))
		lv, present := toLocal[graph.VID(gv)]
		if inHalo != present {
			t.Fatalf("shard %d: vertex %d depth %d (radius %d): present=%v, want %v",
				w.id, gv, d, radius, present, inHalo)
		}
		if !present {
			continue
		}
		if w.g.Label(lv) != g.Label(graph.VID(gv)) {
			t.Fatalf("shard %d: vertex %d label %q, want %q",
				w.id, gv, w.g.Label(lv), g.Label(graph.VID(gv)))
		}
		if expandEdges(d, radius, blocking) {
			gout := g.Out(graph.VID(gv))
			lout := w.g.Out(lv)
			if len(lout) != len(gout) {
				t.Fatalf("shard %d: vertex %d has %d out-edges, want %d",
					w.id, gv, len(lout), len(gout))
			}
			for i := range gout {
				if w.toGlobal[lout[i].To] != gout[i].To || lout[i].Label != gout[i].Label {
					t.Fatalf("shard %d: vertex %d out-edge %d diverges", w.id, gv, i)
				}
			}
		} else if w.g.OutDegree(lv) != 0 {
			t.Fatalf("shard %d: frontier vertex %d (depth %d) has out-edges", w.id, gv, d)
		}
	}
}

// TestHaloClosure asserts — with the radius derived from core.HaloRadius,
// not hardcoded — that every fragment's subgraph is closed under the
// dv-hop neighborhoods the matcher inspects.
func TestHaloClosure(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5} {
		cfg := fixtureConfig(shards).normalized()
		radius := core.HaloRadius(cfg.GD, cfg.MaxPathLen)
		if radius < 0 {
			t.Fatalf("fixture G_D must be acyclic, got radius %d", radius)
		}
		st, err := buildState(cfg, 0)
		if err != nil {
			t.Fatalf("buildState(%d shards): %v", shards, err)
		}
		if st.radius != radius {
			t.Fatalf("state radius %d, want derived %d", st.radius, radius)
		}
		totalOwned := 0
		for _, w := range st.shards {
			checkWorkerClosure(t, cfg, w, radius)
			totalOwned += len(w.owned)
		}
		if totalOwned != cfg.G.NumVertices() {
			t.Fatalf("%d shards own %d vertices, want %d (disjoint cover)",
				shards, totalOwned, cfg.G.NumVertices())
		}
		stopWorkers(st.shards)
	}
}

// TestHaloClosureCyclicGD: a cyclic G_D has no hop bound, so every
// fragment must be closed under full forward reachability.
func TestHaloClosureCyclicGD(t *testing.T) {
	cfg := fixtureConfig(3)
	cfg.GD.MustAddEdge(3, 0, "back") // springfield → person: directed cycle
	cfg = cfg.normalized()
	radius := core.HaloRadius(cfg.GD, cfg.MaxPathLen)
	if radius != -1 {
		t.Fatalf("cyclic G_D radius = %d, want -1", radius)
	}
	st, err := buildState(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range st.shards {
		checkWorkerClosure(t, cfg, w, radius)
	}
	stopWorkers(st.shards)
}

// TestHaloClosureBlocking: with the blocking index on, owned vertices
// keep their out-edges even at radius 0 (a leaf-only G_D) because the
// neighborhood docs read 1-hop out-neighbor labels.
func TestHaloClosureBlocking(t *testing.T) {
	gd := graph.New()
	gd.AddVertex("alice") // single leaf: HaloRadius 0
	cfg := fixtureConfig(2)
	cfg.GD = gd
	cfg.RankerD = ranking.NewRanker(gd, nil, 0)
	cfg.MinSharedTokens = 1
	cfg = cfg.normalized()
	radius := core.HaloRadius(cfg.GD, cfg.MaxPathLen)
	if radius != 0 {
		t.Fatalf("leaf-only G_D radius = %d, want 0", radius)
	}
	st, err := buildState(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range st.shards {
		checkWorkerClosure(t, cfg, w, radius)
	}
	stopWorkers(st.shards)
}

func TestResultCacheGeneration(t *testing.T) {
	c := newResultCache(2)
	pairs := []core.Pair{{U: 1, V: 2}}
	c.put("k", 7, keyScope{op: opVPair, u: 1}, pairs)
	got, ok := c.get("k", 7)
	if !ok || len(got) != 1 || got[0] != pairs[0] {
		t.Fatalf("get(k, 7) = %v, %v; want cached pair", got, ok)
	}
	// Mutating the returned slice must not corrupt the cache.
	got[0] = core.Pair{U: 9, V: 9}
	if again, _ := c.get("k", 7); again[0] != pairs[0] {
		t.Fatal("cache entry aliased caller's slice")
	}
	// An older-generation entry misses a newer caller and is evicted.
	if _, ok := c.get("k", 8); ok {
		t.Fatal("stale-generation entry served")
	}
	if c.len() != 0 {
		t.Fatalf("stale entry not evicted, len %d", c.len())
	}
	// A newer-generation entry (advanced by a delta sweep) misses an
	// older caller but survives for current-generation readers.
	c.put("k2", 7, keyScope{op: opVPair, u: 1}, pairs)
	if _, ok := c.get("k2", 6); ok {
		t.Fatal("newer-generation entry served to an older caller")
	}
	if _, ok := c.get("k2", 7); !ok {
		t.Fatal("newer-generation entry evicted by an older caller")
	}
	c.advance(8, func(keyScope) bool { return true })
	// LRU eviction at capacity.
	c.put("a", 1, keyScope{}, nil)
	c.put("b", 1, keyScope{}, nil)
	c.get("a", 1) // a is now most recent
	c.put("c", 1, keyScope{}, nil)
	if _, ok := c.get("b", 1); ok {
		t.Fatal("LRU victim b still cached")
	}
	if _, ok := c.get("a", 1); !ok {
		t.Fatal("recently used a evicted")
	}
	// Disabled cache.
	var nilCache *resultCache = newResultCache(0)
	nilCache.put("x", 1, keyScope{}, pairs)
	if _, ok := nilCache.get("x", 1); ok {
		t.Fatal("disabled cache served an entry")
	}
}

func TestInflightDedup(t *testing.T) {
	f := newInflight()
	leader, c := f.join("k", 1)
	if !leader {
		t.Fatal("first join must lead")
	}
	follower, c2 := f.join("k", 1)
	if follower || c2 != c {
		t.Fatal("second join must follow the leader's call")
	}
	if lead2, _ := f.join("k", 2); !lead2 {
		t.Fatal("different generation must start its own call")
	}
	done := make(chan []core.Pair)
	go func() {
		<-c2.done
		done <- c2.pairs
	}()
	want := []core.Pair{{U: 3, V: 4}}
	f.finish("k", 1, c, want, nil)
	if got := <-done; len(got) != 1 || got[0] != want[0] {
		t.Fatalf("follower saw %v, want %v", got, want)
	}
	// The key is retired: a new join leads again.
	if lead3, _ := f.join("k", 1); !lead3 {
		t.Fatal("finished key must accept a new leader")
	}
}

// TestAdmissionShed wedges every worker (a task whose reply buffer is
// pre-filled, so the worker blocks publishing its result) and fills the
// queues; the next request must be shed with ErrOverloaded, not block.
func TestAdmissionShed(t *testing.T) {
	cfg := fixtureConfig(2)
	cfg.QueueDepth = 1
	cfg.Metrics = obs.NewRegistry()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var wedged, filler []*task
	for _, w := range e.cur.shards {
		blocker := &task{ctx: context.Background(), op: opVPair, u: 0,
			reply: make(chan taskResult, 1)}
		blocker.reply <- taskResult{} // worker will block re-sending
		w.queue <- blocker            // worker picks this up and wedges
		wedged = append(wedged, blocker)
		fill := &task{ctx: context.Background(), op: opVPair, u: 0,
			reply: make(chan taskResult, 1)}
		w.queue <- fill // sits in the queue: full from now on
		filler = append(filler, fill)
	}
	if _, err := e.VPair(context.Background(), 0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("VPair on full queues = %v, want ErrOverloaded", err)
	}
	if got := cfg.Metrics.Counter(`her_shard_shed_total`).Value(); got == 0 {
		t.Fatal("shed counter not incremented")
	}
	// Unwedge so Close's workers can drain.
	for i, b := range wedged {
		<-b.reply
		<-b.reply
		<-filler[i].reply
	}
}

// TestGenerationInvalidation drives the full loop: a result cached at
// generation g, mutation bumps g, the next request recomputes against
// fresh state instead of serving the stale entry.
func TestGenerationInvalidation(t *testing.T) {
	var gen atomic.Uint64
	var suppress atomic.Bool
	cfg := fixtureConfig(2)
	cfg.Generation = gen.Load
	cfg.Overrides = func(matches []core.Pair, scope graph.VID) []core.Pair {
		if suppress.Load() {
			return nil
		}
		return matches
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	first, err := e.APair(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("fixture produced no matches; test needs a non-empty set")
	}
	// Flip the override without bumping the generation: the cached
	// result must still be served (overrides are part of the computed,
	// cached value).
	suppress.Store(true)
	cached, err := e.APair(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cached) != len(first) {
		t.Fatalf("cache bypassed: got %d pairs, want cached %d", len(cached), len(first))
	}
	// Bump the generation: the stale entry must not be served, the
	// state rebuilds, and the new override outcome becomes visible.
	gen.Add(1)
	fresh, err := e.APair(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 0 {
		t.Fatalf("stale read after generation bump: got %d pairs, want 0", len(fresh))
	}
	if info := e.Snapshot(); info.Generation != 1 {
		t.Fatalf("state generation %d after bump, want 1", info.Generation)
	}
}

// TestManyShards: shard counts beyond |V| produce empty fragments and
// still-correct (merged) results.
func TestManyShards(t *testing.T) {
	cfg := fixtureConfig(1)
	nv := cfg.G.NumVertices()
	whole, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer whole.Close()
	want, err := whole.APair(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	over := fixtureConfig(nv + 3)
	e, err := NewEngine(over)
	if err != nil {
		t.Fatalf("NewEngine(%d shards over %d vertices): %v", nv+3, nv, err)
	}
	defer e.Close()
	got, err := e.APair(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("over-sharded APair: %d pairs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("over-sharded APair diverges at %d: %v != %v", i, got[i], want[i])
		}
	}
}

// TestDeadline: an expired context surfaces as the context error, both
// for leaders (gather) and followers (waiting on the leader).
func TestDeadline(t *testing.T) {
	e, err := NewEngine(fixtureConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.VPair(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("VPair(cancelled ctx) = %v, want context.Canceled", err)
	}
}

// TestAPairKeyNilDistinctFromEmpty: nil sources mean "all of G_D"
// (Matcher.APair's convention) while an explicit empty slice means "no
// sources" — their cache/singleflight keys must never collide, or an
// empty-source request could be served the full-graph result.
func TestAPairKeyNilDistinctFromEmpty(t *testing.T) {
	if apairKey(nil) == apairKey([]graph.VID{}) {
		t.Fatal("nil and empty APair source sets share a key")
	}
	if apairKey([]graph.VID{1}) == apairKey([]graph.VID{2}) {
		t.Fatal("distinct source sets share a key")
	}
	if apairKey([]graph.VID{1, 2}) != apairKey([]graph.VID{1, 2}) {
		t.Fatal("identical source sets must share a key")
	}
}

// TestInflightAbandon: an abandoned call wakes followers with the retry
// flag (no result, no inherited error) and frees the key for a new
// leader.
func TestInflightAbandon(t *testing.T) {
	f := newInflight()
	leader, c := f.join("k", 1)
	if !leader {
		t.Fatal("first join must lead")
	}
	woke := make(chan bool, 1)
	go func() {
		<-c.done
		woke <- c.retry
	}()
	f.abandon("k", 1, c)
	if !<-woke {
		t.Fatal("abandoned call must tell followers to retry")
	}
	if c.err != nil || c.pairs != nil {
		t.Fatalf("abandon published a result: %v, %v", c.pairs, c.err)
	}
	if lead2, _ := f.join("k", 1); !lead2 {
		t.Fatal("abandoned key must accept a new leader")
	}
}

// TestVPairUnknownVertex: request vertices are validated against the
// engine's G_D snapshot (not a live graph a mutation could be extending
// mid-read), and invalid ids error instead of matching nothing.
func TestVPairUnknownVertex(t *testing.T) {
	e, err := NewEngine(fixtureConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	if _, err := e.VPair(ctx, graph.NoVertex); err == nil {
		t.Fatal("VPair(NoVertex) must error")
	}
	if _, err := e.VPair(ctx, graph.VID(10_000)); err == nil {
		t.Fatal("VPair(out of range) must error")
	}
	if _, err := e.VPair(ctx, 0); err != nil {
		t.Fatalf("VPair(valid vertex) = %v", err)
	}
}

// TestLeaderCancelDoesNotPoisonFollowers: a leader whose own context is
// canceled mid-gather must not publish its context error to followers
// with healthy budgets; a follower re-elects itself and computes.
func TestLeaderCancelDoesNotPoisonFollowers(t *testing.T) {
	cfg := fixtureConfig(1)
	cfg.QueueDepth = 8
	cfg.Metrics = obs.NewRegistry()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Wedge the single worker: it picks up blocker and blocks re-sending
	// into the pre-filled reply buffer, so the leader's gather hangs.
	w := e.cur.shards[0]
	blocker := &task{ctx: context.Background(), op: opVPair, u: 1,
		reply: make(chan taskResult, 1)}
	blocker.reply <- taskResult{}
	w.queue <- blocker

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := e.VPair(leaderCtx, 1)
		leaderErr <- err
	}()
	// Wait for the leader's call to register, then start the follower
	// and wait until it has joined (the singleflight-wait counter fires
	// before it blocks on the leader's done channel).
	waitFor := func(cond func() bool) {
		t.Helper()
		for i := 0; i < 5000; i++ {
			if cond() {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatal("condition not reached in 5s")
	}
	waitFor(func() bool {
		e.sf.mu.Lock()
		defer e.sf.mu.Unlock()
		return len(e.sf.calls) == 1
	})
	type res struct {
		pairs []core.Pair
		err   error
	}
	followerRes := make(chan res, 1)
	go func() {
		p, err := e.VPair(context.Background(), 1)
		followerRes <- res{p, err}
	}()
	sfWaits := cfg.Metrics.Counter(`her_shard_singleflight_waits_total`)
	waitFor(func() bool { return sfWaits.Value() >= 1 })

	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader = %v, want context.Canceled", err)
	}
	// Unwedge the worker: it finishes the blocker, skips the leader's
	// canceled task, then serves the follower's re-led computation.
	<-blocker.reply
	<-blocker.reply
	r := <-followerRes
	if r.err != nil {
		t.Fatalf("follower inherited the leader's fate: %v", r.err)
	}
	if len(r.pairs) == 0 {
		t.Fatal("follower got an empty result")
	}
}

// TestQueueWaitAttributionMetrics checks the per-shard queue-wait and
// compute histograms and the per-op gather histograms fill in on an
// instrumented engine: one VPair and one APair touch both shards, so
// every per-shard series observes twice and each op's gather once.
func TestQueueWaitAttributionMetrics(t *testing.T) {
	cfg := fixtureConfig(2)
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.VPair(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.APair(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		`her_shard_queue_wait_seconds{shard="0"}`,
		`her_shard_queue_wait_seconds{shard="1"}`,
		`her_shard_compute_seconds{shard="0"}`,
		`her_shard_compute_seconds{shard="1"}`,
	} {
		if n := reg.Histogram(name, obs.TimeBuckets).Count(); n != 2 {
			t.Errorf("%s count = %d, want 2", name, n)
		}
	}
	if n := reg.Histogram(`her_shard_gather_seconds{op="vpair"}`, obs.TimeBuckets).Count(); n != 1 {
		t.Errorf("vpair gather count = %d, want 1", n)
	}
	if n := reg.Histogram(`her_shard_gather_seconds{op="apair"}`, obs.TimeBuckets).Count(); n != 1 {
		t.Errorf("apair gather count = %d, want 1", n)
	}
}

// TestVPairKeyFormatAndDisjointSpaces: vpairKey must be stable per
// vertex, injective over vertices, and prefixed so it can never
// collide with any apairKey — the two builders share one cache/
// singleflight namespace in Engine.serve.
func TestVPairKeyFormatAndDisjointSpaces(t *testing.T) {
	if got := vpairKey(7); got != "vpair:7" {
		t.Fatalf("vpairKey(7) = %q, want %q", got, "vpair:7")
	}
	if vpairKey(1) == vpairKey(2) {
		t.Fatal("distinct vertices share a vpair key")
	}
	for _, ak := range []string{
		apairKey(nil),
		apairKey([]graph.VID{}),
		apairKey([]graph.VID{7}),
	} {
		if ak == vpairKey(7) {
			t.Fatalf("apair key %q collides with vpair key space", ak)
		}
	}
}
