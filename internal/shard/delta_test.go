package shard

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"her/internal/core"
	"her/internal/graph"
	"her/internal/ranking"
)

// deltaHarness owns live graphs, a generation counter and a delta log,
// mimicking her.System's emission protocol (stamp, record, publish —
// all under the mutation lock; SnapGen stamped by the Snapshot hook
// under the same lock).
type deltaHarness struct {
	mu        sync.Mutex
	gd        *graph.Graph
	g         *graph.Graph
	maxLen    int
	minShared int
	params    core.Params

	gen atomic.Uint64
	log *DeltaLog
}

func newDeltaHarness(gd, g *graph.Graph, maxLen, minShared int, params core.Params) *deltaHarness {
	return &deltaHarness{gd: gd, g: g, maxLen: maxLen, minShared: minShared,
		params: params, log: NewDeltaLog(0)}
}

func (h *deltaHarness) config(shards int) Config {
	cfg := Config{
		Shards:     shards,
		Generation: h.gen.Load,
		Deltas:     h.log.Since,
	}
	cfg.Snapshot = func(c Config) Config {
		h.mu.Lock()
		defer h.mu.Unlock()
		c.GD, c.G = h.gd.Clone(), h.g.Clone()
		c.RankerD = ranking.NewRanker(c.GD, nil, h.maxLen)
		c.Params = h.params
		c.MaxPathLen = h.maxLen
		c.MinSharedTokens = h.minShared
		c.SnapGen = h.gen.Load()
		return c
	}
	return cfg.Snapshot(cfg)
}

func (h *deltaHarness) record(d Delta) {
	d.Gen = h.gen.Load() + 1
	h.log.Record(d)
	h.gen.Add(1)
}

func (h *deltaHarness) addGraphEdge(t *testing.T, from, to graph.VID, label string) {
	t.Helper()
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.g.AddEdge(from, to, label); err != nil {
		t.Fatalf("AddEdge(%d, %d, %s): %v", from, to, label, err)
	}
	h.record(Delta{Kind: DeltaGraphEdge, From: from, To: to, Label: label})
}

func (h *deltaHarness) addGraphVertex(label string) graph.VID {
	h.mu.Lock()
	defer h.mu.Unlock()
	v := h.g.AddVertex(label)
	h.record(Delta{Kind: DeltaGraphVertex, V: v, Label: label})
	return v
}

func (h *deltaHarness) addTuple(t *testing.T, labels []string, edges []GDEdge) {
	t.Helper()
	h.mu.Lock()
	defer h.mu.Unlock()
	base := h.gd.NumVertices()
	for _, l := range labels {
		h.gd.AddVertex(l)
	}
	for _, e := range edges {
		if err := h.gd.AddEdge(e.From, e.To, e.Label); err != nil {
			t.Fatalf("GD AddEdge: %v", err)
		}
	}
	d := Delta{Kind: DeltaTuple, GDBase: base}
	for v := base; v < h.gd.NumVertices(); v++ {
		d.GDLabels = append(d.GDLabels, h.gd.Label(graph.VID(v)))
		for _, e := range h.gd.Out(graph.VID(v)) {
			d.GDEdges = append(d.GDEdges, GDEdge{From: graph.VID(v), To: e.To, Label: e.Label})
		}
	}
	h.record(d)
}

// workerSet snapshots the current worker pointers (advance holds no
// lock the test needs: queries have completed and only advance mutates
// e.cur).
func workerSet(e *Engine) []*shardWorker {
	return append([]*shardWorker(nil), e.cur.shards...)
}

// TestDeltaOnHaloBoundary: an edge whose source a fragment materializes
// only at frontier depth (== radius) is provably invisible to that
// fragment — frontier vertices contribute labels, never out-edges — so
// the delta must leave it untouched (same worker pointer, no fragment
// rebuild), while fragments holding the source at expandable depth pick
// the edge up.
func TestDeltaOnHaloBoundary(t *testing.T) {
	// G_D: one edge u0 -e-> u1, longest path 1; MaxPathLen 1 → radius 1.
	gd := graph.New()
	u0 := gd.AddVertex("X")
	u1 := gd.AddVertex("Y")
	gd.MustAddEdge(u0, u1, "e")

	// G: two disjoint matching edges; with 2 shards each fragment owns
	// part of the spine and materializes the rest only as halo.
	g := graph.New()
	var vs []graph.VID
	for i := 0; i < 4; i++ {
		a := g.AddVertex("X")
		b := g.AddVertex("Y")
		g.MustAddEdge(a, b, "e")
		vs = append(vs, a, b)
	}
	// Chain the components so halos actually cross fragments.
	g.MustAddEdge(vs[1], vs[2], "next")
	g.MustAddEdge(vs[3], vs[4], "next")
	g.MustAddEdge(vs[5], vs[6], "next")

	h := newDeltaHarness(gd, g, 1, 0, core.Params{Mv: exactMv, Mrho: exactMrho, Sigma: 0.9, Delta: 0.5, K: 2})
	e, err := NewEngine(h.config(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	if _, err := e.APair(ctx, nil); err != nil {
		t.Fatal(err)
	}

	// Pick a source vertex that some fragment materializes exactly at
	// the frontier (depth == radius == 1).
	before := workerSet(e)
	st := e.cur
	var from graph.VID = graph.NoVertex
	frontier := make(map[int]bool) // worker index → source at frontier depth
	for _, v := range vs {
		frontier = map[int]bool{}
		ok := false
		for i, w := range before {
			lv, has := w.localOf(v)
			if !has {
				continue
			}
			if int(w.depthOf[lv]) == st.radius {
				frontier[i] = true
				ok = true
			}
		}
		if ok {
			from = v
			break
		}
	}
	if from == graph.NoVertex {
		t.Fatal("fixture produced no frontier-depth vertex; halo-boundary case not reachable")
	}

	h.addGraphEdge(t, from, vs[0], "e")
	if _, err := e.APair(ctx, nil); err != nil {
		t.Fatal(err)
	}

	info := e.Snapshot()
	if info.DeltasApplied != 1 || info.FullRebuilds != 0 {
		t.Fatalf("deltasApplied=%d fullRebuilds=%d, want 1 and 0 (delta must apply in place)",
			info.DeltasApplied, info.FullRebuilds)
	}
	after := workerSet(e)
	for i := range before {
		if frontier[i] && after[i] != before[i] {
			t.Errorf("worker %d holds the source only at frontier depth but was rebuilt", i)
		}
		if frontier[i] {
			lv, _ := after[i].localOf(from)
			for _, ge := range after[i].g.Out(lv) {
				if ge.Label == "e" && after[i].toGlobal[ge.To] == vs[0] {
					t.Errorf("worker %d grafted an edge past its halo frontier", i)
				}
			}
		}
	}
}

// TestDeltaCyclicGDFullClosure: a cyclic G_D forces radius -1 (full
// forward closure). Delta maintenance must keep working — every
// fragment materializing the edge source is affected, grafts follow the
// unbounded expansion rule — and stay equal to a from-scratch engine.
func TestDeltaCyclicGDFullClosure(t *testing.T) {
	gd := graph.New()
	u0 := gd.AddVertex("A")
	u1 := gd.AddVertex("B")
	gd.MustAddEdge(u0, u1, "x")
	gd.MustAddEdge(u1, u0, "y") // cycle: longest path unbounded

	g := graph.New()
	a0 := g.AddVertex("A")
	b0 := g.AddVertex("B")
	g.MustAddEdge(a0, b0, "x")
	g.MustAddEdge(b0, a0, "y")
	a1 := g.AddVertex("A")
	b1 := g.AddVertex("B")
	g.MustAddEdge(a1, b1, "x")

	h := newDeltaHarness(gd, g, 2, 0, core.Params{Mv: exactMv, Mrho: exactMrho, Sigma: 0.9, Delta: 0.5, K: 2})
	e, err := NewEngine(h.config(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	if got := e.Snapshot().HaloRadius; got != -1 {
		t.Fatalf("cyclic G_D halo radius = %d, want -1 (full closure)", got)
	}
	if _, err := e.APair(ctx, nil); err != nil {
		t.Fatal(err)
	}

	// Close the second component's cycle: flips (a1, b1) into a full
	// match under the cyclic pattern.
	h.addGraphEdge(t, b1, a1, "y")
	got, err := e.APair(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}

	fresh, err := NewEngine(h.config(2))
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	want, err := fresh.APair(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("delta-maintained APair has %d pairs, fresh engine %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pair %d: delta-maintained %+v != fresh %+v", i, got[i], want[i])
		}
	}
	if info := e.Snapshot(); info.DeltasApplied == 0 {
		t.Fatalf("full-closure delta was not applied in place (fullRebuilds=%d)", info.FullRebuilds)
	}
}

// TestDeltaTupleZeroFragments: a pure-relational AddTuple touches no
// fragment at all — G is unchanged and the new G_D region has no
// incoming edges from old vertices. Workers must keep their identity,
// VPair cache entries must survive the write (re-stamped, served
// without recomputation), unscoped APair entries must be evicted (they
// now miss the new tuple), and the new tuple must be queryable.
func TestDeltaTupleZeroFragments(t *testing.T) {
	gd := fixtureGD()
	h := newDeltaHarness(gd, fixtureG(4), 0, 0, testParams())
	e, err := NewEngine(h.config(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()

	vp, err := e.VPair(ctx, 1) // the "alice" leaf: matched in every fixture copy
	if err != nil {
		t.Fatal(err)
	}
	if len(vp) == 0 {
		t.Fatal("fixture produced no VPair matches; test needs a non-empty cached entry")
	}
	if _, err := e.APair(ctx, nil); err != nil {
		t.Fatal(err)
	}
	before := workerSet(e)

	// A fresh tuple region mirroring the fixture pattern: tup → name.
	base := graph.VID(gd.NumVertices())
	h.addTuple(t, []string{"person:alice", "alice"},
		[]GDEdge{{From: base, To: base + 1, Label: "name"}})

	vp2, err := e.VPair(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	info := e.Snapshot()
	if info.DeltasApplied != 1 || info.FullRebuilds != 0 || info.FragmentRebuilds != 0 {
		t.Fatalf("deltasApplied=%d fullRebuilds=%d fragmentRebuilds=%d, want 1/0/0",
			info.DeltasApplied, info.FullRebuilds, info.FragmentRebuilds)
	}
	if info.CacheSurvived != 1 || info.CacheEvicted != 1 {
		t.Fatalf("cacheSurvived=%d cacheEvicted=%d, want exactly the VPair entry to survive and the unscoped APair entry to go",
			info.CacheSurvived, info.CacheEvicted)
	}
	for i, w := range workerSet(e) {
		if w != before[i] {
			t.Errorf("worker %d rebuilt by a pure-relational tuple delta", i)
		}
	}
	if len(vp2) != len(vp) {
		t.Fatalf("surviving VPair entry changed: %d pairs, want %d", len(vp2), len(vp))
	}

	// The new region is queryable: its "alice" leaf matches the leaf
	// replicas in every fixture copy, exactly like old vertex 1.
	nvp, err := e.VPair(ctx, base+1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nvp) != len(vp) {
		t.Fatalf("new region's leaf has %d matches, want %d (same pattern as old leaf); the grown G_D mirror is not being served",
			len(nvp), len(vp))
	}
}
