package shard

import (
	"testing"

	"her/internal/core"
	"her/internal/graph"
)

// benchReplies builds a synthetic scatter result set shaped like an
// 8-shard gather: eight per-shard pair slices of 4096 pairs each.
func benchReplies() [][]core.Pair {
	replies := make([][]core.Pair, 8)
	for i := range replies {
		rs := make([]core.Pair, 4096)
		for j := range rs {
			rs[j] = core.Pair{U: graph.VID(i), V: graph.VID(j)}
		}
		replies[i] = rs
	}
	return replies
}

var mergeSink []core.Pair

// BenchmarkGatherMergeBare is the pre-PR-9 gather loop: append into a
// nil slice, growing geometrically as shard replies arrive. Kept as
// the baseline for BenchmarkGatherMergePrealloc (hotalloc's
// un-preallocated-append finding in Engine.compute).
func BenchmarkGatherMergeBare(b *testing.B) {
	replies := benchReplies()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var merged []core.Pair
		for _, r := range replies {
			merged = append(merged, r...)
		}
		mergeSink = merged
	}
}

// BenchmarkGatherMergePrealloc is the current two-phase gather: sum
// reply sizes first, then append into an exactly-sized slice.
func BenchmarkGatherMergePrealloc(b *testing.B) {
	replies := benchReplies()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, r := range replies {
			total += len(r)
		}
		merged := make([]core.Pair, 0, total)
		for _, r := range replies {
			merged = append(merged, r...)
		}
		mergeSink = merged
	}
}
