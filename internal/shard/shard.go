// Package shard is the sharded match-serving engine: it partitions the
// target graph G with an edge cut (Section VI-B's fragmentation, the
// same substrate the BSP engine parallelizes over), materializes one
// self-contained subgraph per shard with hop-bounded halo replication,
// and scatter-gathers VPair/APair requests across per-shard workers
// behind a generation-stamped result cache with admission control.
//
// Halo replication is what makes per-shard matching exact rather than
// approximate: each fragment's subgraph is closed under the
// neighborhoods parametric simulation inspects, out to the radius
// core.HaloRadius derives from the ranker path cap and the depth of
// G_D (full forward reachability when G_D is cyclic). A shard worker
// therefore runs a plain sequential core.Matcher — no cross-shard
// messages, no optimistic border assumptions — and its verdict for any
// owned candidate is provably identical to the whole-graph verdict.
// Only candidate generation is restricted: each shard considers
// exclusively the vertices it owns, so the union of per-shard match
// sets equals the whole-graph match set with no duplicates.
//
// The serving layer on top (router.go) bounds per-shard work queues,
// deduplicates concurrent identical requests singleflight-style,
// merges shard results through core.SortPairs, and sheds load with
// ErrOverloaded when queues are full instead of piling up goroutines.
package shard

import (
	"fmt"
	"sort"
	"strconv"

	"her/internal/core"
	"her/internal/graph"
	"her/internal/index"
	"her/internal/lstm"
	"her/internal/obs"
	"her/internal/ranking"
)

// Config assembles a sharded engine from the components a trained
// system exposes. GD, RankerD, LM and the score functions inside Params
// are shared across all shard workers and must be safe for concurrent
// reads (rankers are lock-protected, scorers are memoized behind
// RWMutexes, a retrained language model is swapped in whole).
//
// The graphs deserve emphasis: the engine reads GD at request time
// (matcher recursion, ranker paths, blocking docs) and G at build time,
// all without any caller-visible lock. An owner that mutates its live
// graphs while serving — her.System's AddTuple/AddGraphVertex/
// AddGraphEdge do, under the system lock — must install a Snapshot hook
// that hands the engine private clones taken under that lock
// (graph.Clone); the mutation's generation bump then retires the
// snapshot at the next request. Passing live graphs without a Snapshot
// hook is only correct when they are never mutated while the engine
// serves (the testkit differential harness).
type Config struct {
	// GD is the canonical graph G_D (left side); it is shared, not
	// sharded — requests address its vertices.
	GD *graph.Graph
	// G is the target graph to partition.
	G *graph.Graph
	// RankerD is the G_D-side ranking function h_r, shared by all
	// workers (its ecache is concurrency-safe).
	RankerD *ranking.Ranker
	// LM is the path language model guiding G-side path growth (may be
	// nil: the deterministic PRA-greedy rule).
	LM *lstm.Model
	// Params are the parametric-simulation parameters (M_v, M_ρ, σ, δ, k).
	Params core.Params
	// MaxPathLen caps ranker paths (0 means the ranker default of 4).
	// It must match RankerD's cap, since the halo radius derives from it.
	MaxPathLen int
	// Shards is the number of fragments (>= 1).
	Shards int
	// MinSharedTokens > 0 enables the blocking inverted index per shard
	// (the System's candidate generation); 0 scans every owned vertex
	// (the testkit differential mode, mirroring a nil CandidateGen).
	MinSharedTokens int
	// QueueDepth bounds each shard's request queue (default 64); a full
	// queue sheds the request with ErrOverloaded.
	QueueDepth int
	// CacheSize is the result-cache capacity in entries (default 1024;
	// negative disables the cache).
	CacheSize int
	// Generation reports the current mutation generation; results are
	// cached stamped with it, and a bump triggers maintenance at the
	// next request: delta application when Deltas covers the gap, a full
	// rebuild otherwise. Nil means the constant generation 0.
	Generation func() uint64
	// Deltas, when set alongside Generation, returns the typed deltas
	// recorded in (after, upto] so the engine can maintain its state in
	// place instead of rebuilding (DeltaLog.Since). ok=false — the log
	// was truncated or diverged — falls back to a full rebuild, as does
	// any DeltaReset in the range. Nil always rebuilds.
	Deltas func(after, upto uint64) ([]Delta, bool)
	// SnapGen is stamped by the Snapshot hook: the generation the cloned
	// graphs were taken at, read under the same owner lock that excludes
	// mutations. It anchors delta replay — a state built from a SnapGen
	// snapshot plus the deltas (SnapGen, g] is exactly the owner's state
	// at g. Ignored when Snapshot is nil.
	SnapGen uint64
	// Snapshot, when set, refreshes the component fields (graphs,
	// RankerD, LM, Params, MaxPathLen, MinSharedTokens) from their owner
	// before each build: a System retrains rankers and language models
	// across generations, so a rebuild must not reuse stale captures.
	// The returned graphs must be private to the engine (clones taken
	// under the owner's lock) whenever the owner mutates its live graphs
	// while serving; see the Config comment.
	Snapshot func(Config) Config
	// Overrides reconciles a merged match set with user-verified
	// verdicts (her.System.ApplyOverrides); nil means identity. scope
	// is the G_D vertex for VPair requests, graph.NoVertex for APair.
	Overrides func(matches []core.Pair, scope graph.VID) []core.Pair
	// Metrics receives the engine's instrumentation (nil disables it).
	Metrics *obs.Registry
}

func (c Config) normalized() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	return c
}

func (c Config) validate() error {
	if c.GD == nil || c.G == nil {
		return fmt.Errorf("shard: GD and G must be non-nil")
	}
	if c.RankerD == nil {
		return fmt.Errorf("shard: RankerD must be non-nil")
	}
	if c.Shards < 1 {
		return fmt.Errorf("shard: shard count must be >= 1, got %d", c.Shards)
	}
	return c.Params.Validate()
}

// shardState is one generation of the engine: the partition, the
// materialized per-shard subgraphs and their workers. A mutation
// (generation bump) advances it at the next request — in place when the
// owner's delta log covers the gap (delta.go), by retiring the whole
// state and building a fresh one otherwise. All mutation happens under
// the engine write lock with quiesced workers; requests share it read-
// only.
type shardState struct {
	cfg    Config // snapshotted components this state serves from
	gen    uint64
	gd     *graph.Graph // private G_D mirror (grown in place by deltas)
	g      *graph.Graph // private G mirror (delta replay + fragment rebuilds)
	radius int          // halo radius used (-1 = full forward closure)
	docD   func(graph.VID) string
	shards []*shardWorker
}

// shardWorker owns one fragment: its halo-closed subgraph (local vertex
// ids, ascending in global id so every id-based tie-break agrees with
// the whole-graph matcher), a sequential matcher over (G_D, subgraph),
// and a bounded request queue drained by a single goroutine.
type shardWorker struct {
	id          int
	g           *graph.Graph // fragment + halo, local ids
	toGlobal    []graph.VID  // local id → global id (strictly increasing)
	toLocal     []graph.VID  // global id → local id (NoVertex = not here)
	depthOf     []int32      // local id → BFS depth from the owned set
	owned       []graph.VID  // local ids of owned vertices (candidates)
	ownedGlobal []graph.VID  // global ids of owned vertices (the fragment)
	isOwned     []bool       // local id → owned here
	haloLen     int          // replicated (non-owned) vertex count
	blocking    bool
	minShared   int
	ix          *index.Inverted // per-shard blocking index (nil: blocking off)
	rankerG     *ranking.Ranker // this fragment's G-side ranker
	matcher     *core.Matcher
	gen         core.CandidateGen // candidate generator over owned vertices
	queue       chan *task
	depth       *obs.Gauge
	// waitSeconds/computeSeconds attribute each task's enqueue→dequeue
	// and dequeue→done intervals per shard; nil (no registry) skips the
	// worker's clock reads unless the request itself is traced.
	waitSeconds    *obs.Histogram // her_shard_queue_wait_seconds{shard}
	computeSeconds *obs.Histogram // her_shard_compute_seconds{shard}
}

// buildState partitions G, materializes every fragment's halo-closed
// subgraph and starts one worker per shard.
func buildState(cfg Config, gen uint64) (*shardState, error) {
	if cfg.Snapshot != nil {
		cfg = cfg.Snapshot(cfg).normalized()
		if err := cfg.validate(); err != nil {
			return nil, err
		}
		// The snapshot's graphs belong to its own generation, read under
		// the owner's lock; stamping anything else would make later delta
		// replay double-apply (or skip) the mutations that raced the clone.
		gen = cfg.SnapGen
	}
	part, err := graph.PartitionEdgeCut(cfg.G, cfg.Shards)
	if err != nil {
		return nil, err
	}
	radius := core.HaloRadius(cfg.GD, cfg.MaxPathLen)
	docD := index.NeighborhoodDoc(cfg.GD)
	st := &shardState{cfg: cfg, gen: gen, gd: cfg.GD, g: cfg.G, radius: radius, docD: docD}
	for i := range part.Fragments {
		w, err := buildWorker(cfg, &part.Fragments[i], radius, docD)
		if err != nil {
			stopWorkers(st.shards)
			return nil, err
		}
		st.shards = append(st.shards, w)
	}
	for _, w := range st.shards {
		wireWorker(cfg, w)
	}
	return st, nil
}

// wireWorker registers the worker's instrumentation (idempotent: the
// registry memoizes by name, so a rebuilt fragment reuses its series)
// and starts its drain goroutine.
func wireWorker(cfg Config, w *shardWorker) {
	w.depth = cfg.Metrics.Gauge(`her_shard_queue_depth{shard="` + strconv.Itoa(w.id) + `"}`)
	w.waitSeconds = cfg.Metrics.Histogram(
		`her_shard_queue_wait_seconds{shard="`+strconv.Itoa(w.id)+`"}`, obs.TimeBuckets)
	w.computeSeconds = cfg.Metrics.Histogram(
		`her_shard_compute_seconds{shard="`+strconv.Itoa(w.id)+`"}`, obs.TimeBuckets)
	cfg.Metrics.Gauge(`her_shard_owned_vertices{shard="` + strconv.Itoa(w.id) + `"}`).
		Set(float64(len(w.owned)))
	cfg.Metrics.Gauge(`her_shard_halo_vertices{shard="` + strconv.Itoa(w.id) + `"}`).
		Set(float64(w.haloLen))
	go w.run()
}

// expandEdges reports whether the out-edges of a vertex discovered at
// BFS depth d must be materialized: everything strictly inside the halo
// radius (or everything, when the radius is unbounded), plus the owned
// vertices themselves when blocking is on — the neighborhood-doc index
// reads their 1-hop out-neighbor labels even when matching itself never
// would (a depth-0 G_D needs no recursion but still needs blocking docs).
func expandEdges(d, radius int, blocking bool) bool {
	return radius < 0 || d < radius || (blocking && d == 0)
}

// buildWorker materializes one fragment: BFS forward from the owned set
// out to the halo radius, assign local ids in ascending global order
// (so ranker and matcher tie-breaks agree with the whole-graph run),
// copy the eligible out-edges in their original order, and assemble the
// worker's matcher and candidate generator.
func buildWorker(cfg Config, frag *graph.Fragment, radius int, docD func(graph.VID) string) (*shardWorker, error) {
	blocking := cfg.MinSharedTokens > 0
	n := cfg.G.NumVertices()
	depthOf := make([]int32, n)
	for i := range depthOf {
		depthOf[i] = -1
	}
	members := make([]graph.VID, 0, len(frag.Owned))
	for _, gv := range frag.Owned {
		depthOf[gv] = 0
		members = append(members, gv)
	}
	frontier := frag.Owned
	for d := 0; len(frontier) > 0 && expandEdges(d, radius, blocking); d++ {
		next := make([]graph.VID, 0, len(frontier))
		for _, gv := range frontier {
			for _, e := range cfg.G.Out(gv) {
				if depthOf[e.To] < 0 {
					depthOf[e.To] = int32(d + 1)
					members = append(members, e.To)
					next = append(next, e.To)
				}
			}
		}
		frontier = next
	}
	sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })

	sg := graph.New(len(members))
	toLocal := make([]graph.VID, n)
	for i := range toLocal {
		toLocal[i] = graph.NoVertex
	}
	toGlobal := make([]graph.VID, 0, len(members))
	ldepth := make([]int32, 0, len(members))
	for _, gv := range members {
		toLocal[gv] = sg.AddVertex(cfg.G.Label(gv))
		toGlobal = append(toGlobal, gv)
		ldepth = append(ldepth, depthOf[gv])
	}
	for _, gv := range members {
		if !expandEdges(int(depthOf[gv]), radius, blocking) {
			continue
		}
		for _, e := range cfg.G.Out(gv) {
			sg.MustAddEdge(toLocal[gv], toLocal[e.To], e.Label)
		}
	}

	owned := make([]graph.VID, 0, len(frag.Owned))
	ownedGlobal := make([]graph.VID, 0, len(frag.Owned))
	isOwned := make([]bool, len(members))
	for _, gv := range frag.Owned {
		owned = append(owned, toLocal[gv])
		isOwned[toLocal[gv]] = true
	}
	sort.Slice(owned, func(a, b int) bool { return owned[a] < owned[b] })
	for _, lv := range owned {
		ownedGlobal = append(ownedGlobal, toGlobal[lv])
	}

	rankerG := ranking.NewRanker(sg, cfg.LM, cfg.MaxPathLen)
	m, err := core.NewMatcher(cfg.GD, sg, cfg.RankerD, rankerG, cfg.Params)
	if err != nil {
		return nil, err
	}
	w := &shardWorker{
		id:          frag.ID,
		g:           sg,
		toGlobal:    toGlobal,
		toLocal:     toLocal,
		depthOf:     ldepth,
		owned:       owned,
		ownedGlobal: ownedGlobal,
		isOwned:     isOwned,
		haloLen:     len(members) - len(frag.Owned),
		blocking:    blocking,
		minShared:   cfg.MinSharedTokens,
		rankerG:     rankerG,
		matcher:     m,
		queue:       make(chan *task, cfg.QueueDepth),
	}
	// The candidate generators read the worker's fields, not captured
	// copies, so an in-place delta (grown owned set, rebuilt blocking
	// index) is picked up without rebuilding the closure.
	if blocking {
		// The per-shard blocking index mirrors System.buildCandidateGen
		// restricted to owned vertices: halo closure guarantees each
		// owned vertex's neighborhood doc (own label + out-neighbor
		// labels) is byte-identical to the whole-graph doc, so the
		// per-shard lookup returns exactly the global candidates that
		// live here.
		w.rebuildIndex()
		w.gen = func(u graph.VID) []graph.VID { return w.ix.Lookup(docD(u), w.minShared) }
	} else {
		w.gen = func(graph.VID) []graph.VID { return w.owned }
	}
	return w, nil
}

// stopWorkers closes every worker's queue; the drain loop exits after
// finishing (or skipping) whatever is still enqueued. Callers must
// guarantee no further enqueues (the engine does, by swapping states
// under the write lock).
func stopWorkers(workers []*shardWorker) {
	for _, w := range workers {
		close(w.queue)
	}
}

// FragmentInfo describes one shard of a built state for observability
// and tests.
type FragmentInfo struct {
	Shard int `json:"shard"`
	Owned int `json:"owned"`
	Halo  int `json:"halo"`
}

// Info is an engine snapshot: the shard layout of the current state
// plus lifetime maintenance counters (how many generations advanced via
// deltas versus full rebuilds, and how the vertex-scoped cache sweeps
// treated existing entries).
type Info struct {
	Shards     int    `json:"shards"`
	Generation uint64 `json:"generation"`
	HaloRadius int    `json:"haloRadius"` // -1 = full forward closure
	CacheLen   int    `json:"cacheEntries"`
	// DeltasApplied counts mutations maintained in place; FullRebuilds
	// counts state retirements (initial build excluded); FragmentRebuilds
	// counts single-fragment rebuilds on the delta path.
	DeltasApplied    uint64 `json:"deltasApplied"`
	FullRebuilds     uint64 `json:"fullRebuilds"`
	FragmentRebuilds uint64 `json:"fragmentRebuilds"`
	// CacheSurvived/CacheEvicted count how delta sweeps treated live
	// result-cache entries: survived entries were re-stamped to the new
	// generation without recomputation.
	CacheSurvived uint64         `json:"cacheSurvived"`
	CacheEvicted  uint64         `json:"cacheEvicted"`
	Fragments     []FragmentInfo `json:"fragments"`
}
