// Package testkit is the differential-correctness harness of the
// repository: a deterministic, seed-driven workload generator plus
// runners that compute the same match set Π through every implementation
// the paper proves equivalent — sequential ParaMatch (Fig. 4), VParaMatch
// (Fig. 5), AllParaMatch (Fig. 8) and the BSP/asynchronous parallel
// engines (Section VI-B, Theorem 3) — so tests can assert they agree on
// arbitrary seeded inputs rather than a handful of hand-built fixtures.
//
// Two workload families are generated:
//
//   - Planted workloads (GenWorkload): a random relational schema with
//     foreign keys and nulls, a random database over it, the canonical
//     graph G_D via rdb2rdf, and a target graph G containing exact
//     replicas of a subset of tuples (the planted ground truth) plus
//     near-twin distractors and random noise. Paper invariants — the
//     f_D round trip and guaranteed recovery of planted pairs — are
//     checkable on these.
//
//   - Adversarial graph pairs (GenGraphWorkload): small dense random
//     graphs over tiny label pools, rich in cycles and cross-fragment
//     dependencies, which stress the cache/cleanup interplay of
//     ParaMatch and the border-assumption refinement of the parallel
//     engines.
//
// All generation is driven by a single int64 seed through math/rand, so
// any failure reproduces from its seed alone.
package testkit

import (
	"strings"

	"her/internal/bsp"
	"her/internal/core"
	"her/internal/graph"
	"her/internal/ranking"
	"her/internal/rdb2rdf"
	"her/internal/relational"
	"her/internal/text"
)

// Workload is one generated differential-test input: a pair of graphs,
// the simulation parameters, and the query sources. For planted
// workloads the relational side (DB, Mapping) and the planted
// ground-truth pairs are populated; adversarial graph pairs leave them
// nil.
type Workload struct {
	Seed int64
	Name string // short human-readable description, for failure messages

	DB      *relational.Database // nil for graph-only workloads
	Mapping *rdb2rdf.Mapping     // nil for graph-only workloads
	GD      *graph.Graph
	G       *graph.Graph

	Params core.Params
	MaxLen int // ranker path-length cap

	// Sources are the G_D query vertices (APair sources); nil means
	// every vertex of G_D.
	Sources []graph.VID

	// Planted are tuple↔vertex pairs the generator guarantees to be
	// matches (exact canonical replicas with δ ≤ 0.5, σ-compatible
	// labels and k at least the tuple fan-out), so recovery can be
	// asserted, not just cross-checked.
	Planted []core.Pair
}

// NewMatcher builds a fresh sequential matcher (fresh rankers, cold
// caches) over the workload.
func (w *Workload) NewMatcher() (*core.Matcher, error) {
	return core.NewMatcher(w.GD, w.G,
		ranking.NewRanker(w.GD, nil, w.MaxLen),
		ranking.NewRanker(w.G, nil, w.MaxLen), w.Params)
}

// NewEngine builds a fresh parallel engine over the workload.
func (w *Workload) NewEngine() (*bsp.Engine, error) {
	return bsp.NewEngine(w.GD, w.G,
		ranking.NewRanker(w.GD, nil, w.MaxLen),
		ranking.NewRanker(w.G, nil, w.MaxLen), w.Params)
}

// ExactMv is the exact-label vertex scorer: 1 iff the labels are equal.
func ExactMv(a, b string) float64 {
	if a == b {
		return 1
	}
	return 0
}

// ExactMrho is the exact path scorer: 1 iff the edge-label sequences are
// identical.
func ExactMrho(a, b []string) float64 {
	if len(a) != len(b) {
		return 0
	}
	for i := range a {
		if a[i] != b[i] {
			return 0
		}
	}
	return 1
}

// LevMv is a graded vertex scorer: normalized Levenshtein similarity.
// Pure and deterministic, so every implementation sees identical scores.
func LevMv(a, b string) float64 { return text.LevenshteinSim(a, b) }

// JaccardMrho is a graded path scorer: 1 for identical sequences,
// otherwise the Jaccard similarity of the label sets.
func JaccardMrho(a, b []string) float64 {
	if ExactMrho(a, b) == 1 {
		return 1
	}
	return text.JaccardTokens(strings.Join(a, " "), strings.Join(b, " "))
}
