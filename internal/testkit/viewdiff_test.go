package testkit

import (
	"context"
	"testing"

	"her"
	"her/internal/graph"
	"her/internal/relational"
	"her/internal/shard"
)

// goldenViewDB mirrors the rdb2rdf golden fixture: maker(name, country)
// and part(sku, color, maker→maker), nulls and a null FK included.
func goldenViewDB(t *testing.T) *relational.Database {
	t.Helper()
	maker, err := relational.NewSchema("maker", []string{"name", "country"}, "name")
	if err != nil {
		t.Fatal(err)
	}
	part, err := relational.NewSchema("part", []string{"sku", "color", "maker"}, "sku",
		relational.ForeignKey{Attr: "maker", RefRelation: "maker"})
	if err != nil {
		t.Fatal(err)
	}
	db := relational.NewDatabase(maker, part)
	db.Relation("maker").MustInsert("Acme", "US")
	db.Relation("maker").MustInsert("Umbrella", relational.Null)
	db.Relation("part").MustInsert("bolt-1", "red", "Acme")
	db.Relation("part").MustInsert("nut-2", relational.Null, "Umbrella")
	db.Relation("part").MustInsert("cog-3", "blue", relational.Null)
	return db
}

// TestDirectViewDifferentialGolden pins the built-in direct view
// byte-identical to rdb2rdf.Map on the golden database.
func TestDirectViewDifferentialGolden(t *testing.T) {
	if err := DirectViewDiff(goldenViewDB(t)); err != nil {
		t.Fatal(err)
	}
}

// TestDirectViewDifferentialGenerated sweeps the byte-identity claim
// over 120 generated schemas/databases — every shape GenWorkload can
// produce (optional dimension relation, nullable attributes, null and
// valid FKs).
func TestDirectViewDifferentialGenerated(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		w, err := GenWorkload(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := DirectViewDiff(w.DB); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// mutationViewDB builds the database the mutation differential starts
// from: one dimension row and two main rows, one of which references a
// dimension key that does not exist yet (a dangling FK the sequence
// later resolves).
func mutationViewDB(t *testing.T) *relational.Database {
	t.Helper()
	dim, err := relational.NewSchema("dim", []string{"dkey", "country"}, "dkey")
	if err != nil {
		t.Fatal(err)
	}
	main, err := relational.NewSchema("main", []string{"key", "color", "ref"}, "key",
		relational.ForeignKey{Attr: "ref", RefRelation: "dim"})
	if err != nil {
		t.Fatal(err)
	}
	db := relational.NewDatabase(dim, main)
	db.Relation("dim").MustInsert("dim A", "us")
	db.Relation("main").MustInsert("entity 0", "red", "dim A")
	db.Relation("main").MustInsert("entity 1", "blue", "dim B") // dangling until dim B arrives
	return db
}

// smallTargetGraph builds a tiny G with a replica of the first main
// tuple so view queries have something to match.
func smallTargetGraph() *graph.Graph {
	g := graph.New()
	v := g.AddVertex("entity 0")
	g.MustAddEdge(v, g.AddVertex("entity 0"), "key")
	g.MustAddEdge(v, g.AddVertex("red"), "color")
	return g
}

// TestViewMutationDifferential drives a mutation sequence through a
// System hosting the slim view and checks, after every step, that the
// incrementally maintained view is canonically equal to a re-extraction
// from scratch — including the step that resolves a dangling FK, which
// append-only extension cannot express and must recompile.
func TestViewMutationDifferential(t *testing.T) {
	db := mutationViewDB(t)
	sys, err := her.New(db, smallTargetGraph(), her.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddViewDef(SlimViewDef(db)); err != nil {
		t.Fatal(err)
	}
	vh, err := sys.View("slim")
	if err != nil {
		t.Fatal(err)
	}

	check := func(step string) {
		t.Helper()
		got, err := vh.CanonicalDump()
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		_, _, want, err := CompileSlim(sys.DB)
		if err != nil {
			t.Fatalf("%s: recompile: %v", step, err)
		}
		if got != want {
			t.Fatalf("%s: maintained view diverges from re-extraction:\nmaintained:\n%s\nrecompiled:\n%s",
				step, got, want)
		}
	}
	check("initial")
	gen0 := vh.Generation()

	if _, err := sys.AddTuple("main", "entity 2", "green", "dim A"); err != nil {
		t.Fatal(err)
	}
	check("append main tuple")

	// dim B resolves entity 1's dangling reference: extension alone
	// cannot add the missing edge to an old vertex, so this must
	// recompile (observable as a canonical dump that now has the edge).
	if _, err := sys.AddTuple("dim", "dim B", "fr"); err != nil {
		t.Fatal(err)
	}
	check("resolve dangling FK")

	if _, err := sys.AddTuple("main", "entity 3", relational.Null, "dim B"); err != nil {
		t.Fatal(err)
	}
	check("append with null attr")

	v := sys.AddGraphVertex("entity 2")
	if err := sys.AddGraphEdge(v, v, "self"); err != nil {
		t.Fatal(err)
	}
	check("graph mutations")

	if vh.Generation() <= gen0 {
		t.Fatalf("view generation did not advance: %d -> %d", gen0, vh.Generation())
	}
}

// TestViewDeltaReplayDifferential runs the same mutation sequence with
// a sharded engine attached to the view's delta log: after every write
// the engine replays the view's deltas against its private snapshots,
// and its answers must equal the view's sequential matcher — including
// across the DeltaReset the dangling-FK resolution records.
func TestViewDeltaReplayDifferential(t *testing.T) {
	db := mutationViewDB(t)
	sys, err := her.New(db, smallTargetGraph(), her.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddViewDef(SlimViewDef(db)); err != nil {
		t.Fatal(err)
	}
	vh, err := sys.View("slim")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := shard.NewEngine(vh.ShardConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()

	compare := func(step string) {
		t.Helper()
		for _, relName := range []string{"dim", "main"} {
			for _, tup := range sys.DB.Relation(relName).Tuples {
				seq, err := vh.VPair(relName, tup.ID)
				if err != nil {
					t.Fatalf("%s: seq VPair(%s/%d): %v", step, relName, tup.ID, err)
				}
				u, err := vh.TupleVertex(relName, tup.ID)
				if err != nil {
					t.Fatalf("%s: %v", step, err)
				}
				shd, err := eng.VPair(ctx, u)
				if err != nil {
					t.Fatalf("%s: sharded VPair(%s/%d): %v", step, relName, tup.ID, err)
				}
				if !EqualPairs(SortPairs(seq), SortPairs(shd)) {
					t.Fatalf("%s: VPair(%s/%d) diverges:\n%s", step, relName, tup.ID,
						DiffPairs("sequential", seq, "sharded", shd))
				}
			}
		}
	}
	compare("initial")

	if _, err := sys.AddTuple("main", "entity 2", "green", "dim A"); err != nil {
		t.Fatal(err)
	}
	compare("after append")

	if _, err := sys.AddTuple("dim", "dim B", "fr"); err != nil {
		t.Fatal(err)
	}
	compare("after reset (dangling FK resolved)")

	v := sys.AddGraphVertex("entity 2")
	if err := sys.AddGraphEdge(v, v, "self"); err != nil {
		t.Fatal(err)
	}
	compare("after graph mutations")
}

// TestViewShardedDifferential is the acceptance gate: sharded serving
// over a NON-direct view answers exactly like the view's sequential
// matcher at 1, 2, 4 and 8 shards, on generated workloads.
func TestViewShardedDifferential(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 4; seed++ {
		w, err := GenWorkload(seed)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := her.New(w.DB, w.G, her.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.AddViewDef(SlimViewDef(w.DB)); err != nil {
			t.Fatal(err)
		}
		vh, err := sys.View("slim")
		if err != nil {
			t.Fatal(err)
		}
		seqAll := SortPairs(vh.APair())
		for _, shards := range []int{1, 2, 4, 8} {
			eng, err := shard.NewEngine(vh.ShardConfig(shards))
			if err != nil {
				t.Fatalf("seed %d shards %d: %v", seed, shards, err)
			}
			got, err := eng.APair(ctx, vh.SourceVertices())
			if err != nil {
				eng.Close()
				t.Fatalf("seed %d shards %d: APair: %v", seed, shards, err)
			}
			if !EqualPairs(seqAll, SortPairs(got)) {
				diff := DiffPairs("sequential", seqAll, "sharded", got)
				eng.Close()
				t.Fatalf("seed %d shards %d: APair diverges:\n%s", seed, shards, diff)
			}
			for _, relName := range w.DB.RelationNames() {
				for _, tup := range w.DB.Relation(relName).Tuples {
					u, err := vh.TupleVertex(relName, tup.ID)
					if err != nil {
						continue // tuple filtered out of the view
					}
					seq, err := vh.VPair(relName, tup.ID)
					if err != nil {
						eng.Close()
						t.Fatalf("seed %d: %v", seed, err)
					}
					shd, err := eng.VPair(ctx, u)
					if err != nil {
						eng.Close()
						t.Fatalf("seed %d shards %d: %v", seed, shards, err)
					}
					if !EqualPairs(SortPairs(seq), SortPairs(shd)) {
						diff := DiffPairs("sequential", seq, "sharded", shd)
						eng.Close()
						t.Fatalf("seed %d shards %d: VPair(%s/%d) diverges:\n%s",
							seed, shards, relName, tup.ID, diff)
					}
				}
			}
			eng.Close()
		}
	}
}
