package testkit

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"her/internal/core"
	"her/internal/graph"
	"her/internal/index"
	"her/internal/ranking"
	"her/internal/shard"
)

// MutSeq is a live mutable workload that mirrors her.System's delta
// emission protocol: a pair of graphs under a lock, a generation
// counter, and a typed delta log that external sharded engines replay
// for in-place maintenance. It exists so the delta path can be
// differentially tested (and fuzzed) without dragging the full System —
// relational database, language model, feedback store — into every
// mutation interleaving.
//
// The emission contract matches System.recordDelta exactly: under the
// lock, the delta is stamped with generation+1, recorded, and only then
// is the generation bump published, so an engine that observes a
// generation always finds its delta in the log. The Snapshot hook
// stamps SnapGen under the same lock, anchoring replay to the exact
// generation of the clones.
type MutSeq struct {
	mu        sync.Mutex
	GD        *graph.Graph
	G         *graph.Graph
	Params    core.Params
	MaxLen    int
	MinShared int // engine blocking threshold (0 = blocking off)

	gen    atomic.Uint64
	deltas *shard.DeltaLog
}

// NewMutSeq clones the workload's graphs into a fresh mutable sequence
// at generation 0. minShared sets the engine-side blocking threshold.
func NewMutSeq(w *Workload, minShared int) *MutSeq {
	return &MutSeq{
		GD:        w.GD.Clone(),
		G:         w.G.Clone(),
		Params:    w.Params,
		MaxLen:    w.MaxLen,
		MinShared: minShared,
		deltas:    shard.NewDeltaLog(0),
	}
}

// record mirrors System.recordDelta: stamp, record, then publish.
// Callers hold m.mu.
func (m *MutSeq) record(d shard.Delta) {
	d.Gen = m.gen.Load() + 1
	m.deltas.Record(d)
	m.gen.Add(1)
}

// Generation reports the current mutation generation.
func (m *MutSeq) Generation() uint64 { return m.gen.Load() }

// AddGraphVertex appends a vertex to G, mirroring System.AddGraphVertex.
func (m *MutSeq) AddGraphVertex(label string) graph.VID {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := m.G.AddVertex(label)
	m.record(shard.Delta{Kind: shard.DeltaGraphVertex, V: v, Label: label})
	return v
}

// AddGraphEdge adds an edge to G, mirroring System.AddGraphEdge.
func (m *MutSeq) AddGraphEdge(from, to graph.VID, label string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.G.AddEdge(from, to, label); err != nil {
		return err
	}
	m.record(shard.Delta{Kind: shard.DeltaGraphEdge, From: from, To: to, Label: label})
	return nil
}

// AddTupleRegion appends a fresh region to G_D, mirroring
// System.AddTuple's canonical-graph extension: len(labels) new vertices
// (ids base..base+len-1 in order) and edges whose sources are all NEW
// vertices — old vertices never gain out-edges, only the new region may
// point back at old targets (FK references). The delta is built by
// scanning the new vertices' out-lists, exactly as incremental.go does,
// so engine replay is byte-identical to the live graph.
func (m *MutSeq) AddTupleRegion(labels []string, edges []shard.GDEdge) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	base := m.GD.NumVertices()
	for _, l := range labels {
		m.GD.AddVertex(l)
	}
	for _, e := range edges {
		if int(e.From) < base {
			return fmt.Errorf("testkit: tuple-region edge from old vertex %d (base %d)", e.From, base)
		}
		if err := m.GD.AddEdge(e.From, e.To, e.Label); err != nil {
			return err
		}
	}
	d := shard.Delta{Kind: shard.DeltaTuple, GDBase: base}
	for v := base; v < m.GD.NumVertices(); v++ {
		d.GDLabels = append(d.GDLabels, m.GD.Label(graph.VID(v)))
		for _, e := range m.GD.Out(graph.VID(v)) {
			d.GDEdges = append(d.GDEdges, shard.GDEdge{From: graph.VID(v), To: e.To, Label: e.Label})
		}
	}
	m.record(d)
	return nil
}

// Reset records a poison delta, mirroring System.resetMatcherLocked
// (feedback, retraining, threshold changes): incremental maintenance is
// impossible and engines must fully rebuild.
func (m *MutSeq) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.record(shard.Delta{Kind: shard.DeltaReset})
}

// EngineConfig assembles a sharded engine config over the live
// sequence, shaped like System.ShardConfig: Snapshot clones the graphs
// and stamps SnapGen under the mutation lock, Generation exposes the
// counter, Deltas exposes the log.
func (m *MutSeq) EngineConfig(shards int) shard.Config {
	cfg := shard.Config{
		Shards:     shards,
		Generation: m.gen.Load,
		Deltas:     m.deltas.Since,
	}
	cfg.Snapshot = func(c shard.Config) shard.Config {
		m.mu.Lock()
		defer m.mu.Unlock()
		c.GD, c.G = m.GD.Clone(), m.G.Clone()
		c.RankerD = ranking.NewRanker(c.GD, nil, m.MaxLen)
		c.Params = m.Params
		c.MaxPathLen = m.MaxLen
		c.MinSharedTokens = m.MinShared
		c.SnapGen = m.gen.Load()
		return c
	}
	return cfg.Snapshot(cfg)
}

// NewEngine builds a delta-maintained sharded engine over the sequence.
func (m *MutSeq) NewEngine(shards int) (*shard.Engine, error) {
	return shard.NewEngine(m.EngineConfig(shards))
}

// seqGen builds the candidate generator a fresh sequential run uses:
// the same blocking inverted index as System.buildCandidateGen when
// MinShared > 0, nil (exhaustive candidates) otherwise — matching the
// engine's owned-vertices pool with blocking off.
func (m *MutSeq) seqGen() core.CandidateGen {
	if m.MinShared <= 0 {
		return nil
	}
	ix := index.BuildDocs(m.G,
		func(v graph.VID) bool { return !m.G.IsLeaf(v) },
		index.NeighborhoodDoc(m.G))
	docD := index.NeighborhoodDoc(m.GD)
	min := m.MinShared
	return func(u graph.VID) []graph.VID {
		return ix.Lookup(docD(u), min)
	}
}

// newMatcher builds a cold sequential matcher over the live graphs.
func (m *MutSeq) newMatcher() (*core.Matcher, error) {
	return core.NewMatcher(m.GD, m.G,
		ranking.NewRanker(m.GD, nil, m.MaxLen),
		ranking.NewRanker(m.G, nil, m.MaxLen), m.Params)
}

// SeqVPair is the from-scratch oracle for VPair: a cold matcher over
// the current graphs, candidates from the same blocking rule as the
// engine. Callers must not mutate concurrently.
func (m *MutSeq) SeqVPair(u graph.VID) ([]core.Pair, error) {
	mt, err := m.newMatcher()
	if err != nil {
		return nil, err
	}
	return SortPairs(mt.VPair(u, m.seqGen())), nil
}

// SeqAPair is the from-scratch oracle for APair over the given sources
// (nil = every G_D vertex).
func (m *MutSeq) SeqAPair(sources []graph.VID) ([]core.Pair, error) {
	mt, err := m.newMatcher()
	if err != nil {
		return nil, err
	}
	return SortPairs(mt.APair(sources, m.seqGen())), nil
}

// MutStep is one decoded mutation of a fuzz/random sequence.
type MutStep struct {
	Op    int // 0 = AddGraphVertex, 1 = AddGraphEdge, 2 = AddTupleRegion
	A, B  int // op-dependent vertex selectors (reduced modulo live sizes)
	Label string
}

// mutLabels is the tiny label pool mutations draw from: collisions with
// generator labels are what make blocking indexes and candidate sets
// actually move under mutation.
var mutLabels = []string{"main", "dim", "color 1", "key", "ref", "zz"}

// Apply executes the step against the sequence. Vertex selectors are
// reduced modulo the live graph sizes, so any (Op, A, B) triple is
// valid — the fuzz decoder never has to reject inputs.
func (m *MutSeq) Apply(s MutStep) error {
	label := s.Label
	if label == "" {
		label = mutLabels[abs(s.A+s.B)%len(mutLabels)]
	}
	switch s.Op % 3 {
	case 0:
		m.AddGraphVertex(label)
		return nil
	case 1:
		n := m.G.NumVertices()
		if n == 0 {
			m.AddGraphVertex(label)
			return nil
		}
		from := graph.VID(abs(s.A) % n)
		to := graph.VID(abs(s.B) % n)
		return m.AddGraphEdge(from, to, label)
	default:
		// A tuple-shaped region: one relation vertex with a couple of
		// attribute leaves, plus an FK-style edge back into old G_D when
		// it has any vertices.
		old := m.GD.NumVertices()
		base := graph.VID(old)
		labels := []string{label, label + " v"}
		edges := []shard.GDEdge{{From: base, To: base + 1, Label: "key"}}
		if old > 0 {
			edges = append(edges, shard.GDEdge{
				From: base, To: graph.VID(abs(s.B) % old), Label: "ref",
			})
		}
		return m.AddTupleRegion(labels, edges)
	}
}

// RandomSteps derives a deterministic mutation sequence from a seed.
func RandomSteps(seed int64, n int) []MutStep {
	rng := rand.New(rand.NewSource(seed))
	steps := make([]MutStep, n)
	for i := range steps {
		steps[i] = MutStep{Op: rng.Intn(3), A: rng.Intn(1 << 16), B: rng.Intn(1 << 16)}
	}
	return steps
}

// DecodeSteps decodes a fuzzer byte string into mutation steps, three
// bytes per step. Every input decodes to a valid sequence.
func DecodeSteps(data []byte) []MutStep {
	var steps []MutStep
	for i := 0; i+2 < len(data); i += 3 {
		steps = append(steps, MutStep{
			Op: int(data[i]), A: int(data[i+1]), B: int(data[i+2]),
		})
	}
	return steps
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
