package testkit

import (
	"bytes"
	"fmt"

	"her/internal/graph"
	"her/internal/rdb2rdf"
	"her/internal/relational"
	"her/internal/view"
)

// This file holds the view differentials: the generic rule compiler of
// internal/view claims that its built-in direct definition reproduces
// rdb2rdf.Map exactly — same graph bytes, same tuple↔vertex tables —
// and the claim must hold on every schema the generator can produce,
// not just the golden fixture. DirectViewDiff checks one database;
// the tests sweep it over the golden DB plus 100+ generated ones.

// DirectViewDiff compiles view.Direct(db) and rdb2rdf.Map(db) and
// compares them for byte identity: serialized graph bytes (WriteTSV
// covers labels, edge order and vertex numbering) plus the tuple-vertex,
// attribute-vertex and FK-edge tables of the mappings. A non-nil error
// describes the first divergence.
func DirectViewDiff(db *relational.Database) error {
	wantG, wantM, err := rdb2rdf.Map(db)
	if err != nil {
		return fmt.Errorf("rdb2rdf.Map: %w", err)
	}
	gotG, gotM, err := view.Compile(view.Direct(db), db)
	if err != nil {
		return fmt.Errorf("view.Compile(Direct): %w", err)
	}
	var wantB, gotB bytes.Buffer
	if err := wantG.WriteTSV(&wantB); err != nil {
		return err
	}
	if err := gotG.WriteTSV(&gotB); err != nil {
		return err
	}
	if !bytes.Equal(wantB.Bytes(), gotB.Bytes()) {
		return fmt.Errorf("graph bytes diverge:\nrdb2rdf (%d bytes):\n%s\nview (%d bytes):\n%s",
			wantB.Len(), wantB.String(), gotB.Len(), gotB.String())
	}
	if got, want := gotM.NumTupleVertices(), wantM.NumTupleVertices(); got != want {
		return fmt.Errorf("tuple vertex count: view %d, rdb2rdf %d", got, want)
	}
	for _, relName := range db.RelationNames() {
		rel := db.Relation(relName)
		for _, t := range rel.Tuples {
			wu, wok := wantM.VertexOf(relName, t.ID)
			gu, gok := gotM.VertexOf(relName, t.ID)
			if wok != gok || wu != gu {
				return fmt.Errorf("tuple %s/%d: view vertex (%d,%v), rdb2rdf (%d,%v)",
					relName, t.ID, gu, gok, wu, wok)
			}
			if ref, ok := gotM.TupleOf(gu); !ok || ref.Relation != relName || ref.TupleID != t.ID {
				return fmt.Errorf("tuple %s/%d: inverse lookup gave %+v (ok=%v)", relName, t.ID, ref, ok)
			}
			for _, attr := range rel.Schema.Attrs {
				wa, wok := wantM.AttrVertexOf(relName, t.ID, attr)
				ga, gok := gotM.AttrVertexOf(relName, t.ID, attr)
				if wok != gok || wa != ga {
					return fmt.Errorf("tuple %s/%d attr %s: view leaf (%d,%v), rdb2rdf (%d,%v)",
						relName, t.ID, attr, ga, gok, wa, wok)
				}
			}
			for _, e := range gotG.Out(gu) {
				wl, wok := wantM.IsForeignKeyEdge(gu, e.To)
				gl, gok := gotM.IsForeignKeyEdge(gu, e.To)
				if wok != gok || wl != gl {
					return fmt.Errorf("tuple %s/%d edge to %d: view FK (%q,%v), rdb2rdf (%q,%v)",
						relName, t.ID, e.To, gl, gok, wl, wok)
				}
			}
		}
	}
	return nil
}

// SlimViewDef builds a non-direct view over any generated schema: each
// relation keyed and labeled by its primary key with only the key
// projected, FK join edges renamed with a "_to" suffix, plus a bounded
// closure over the first FK — enough rule variety to exercise the
// compiler's non-direct paths while staying schema-agnostic.
func SlimViewDef(db *relational.Database) *view.Def {
	d := view.NewDef("slim")
	for _, relName := range db.RelationNames() {
		r := db.Relation(relName)
		vr := d.Vertex(relName)
		if r.Schema.Key != "" {
			vr.Label(r.Schema.Key).Project(r.Schema.Key)
		} else {
			vr.ProjectAll()
		}
		for i, fk := range r.Schema.ForeignKeys {
			d.Edge(fk.Attr+"_to", relName, fk.Attr)
			if i == 0 {
				d.ClosureEdge(fk.Attr+"_closure", relName, fk.Attr, 3)
			}
		}
	}
	return d
}

// CompileSlim materializes the slim view over db, returning its graph,
// mapping and canonical dump.
func CompileSlim(db *relational.Database) (*graph.Graph, *view.Mapping, string, error) {
	def := SlimViewDef(db)
	g, m, err := view.Compile(def, db)
	if err != nil {
		return nil, nil, "", err
	}
	return g, m, view.CanonicalDump(g, m, db), nil
}
