package testkit

import (
	"context"
	"fmt"
	"testing"

	"her/internal/graph"
)

// driveMutationSequence runs the mutation-sequence differential: a
// delta-maintained sharded engine serves across the given mutation
// steps, and after EVERY prefix its VPair/APair answers must be
// byte-identical to a freshly built sequential run over the current
// graphs. Queries are issued before each mutation too, so the result
// cache holds live entries the vertex-scoped sweep must treat correctly
// (a wrongly retained entry surfaces as a stale answer here).
// Returns the engine's applied-delta count so callers can assert the
// incremental path was actually exercised.
func driveMutationSequence(tb testing.TB, w *Workload, minShared, shards int, steps []MutStep) uint64 {
	tb.Helper()
	m := NewMutSeq(w, minShared)
	eng, err := m.NewEngine(shards)
	if err != nil {
		tb.Fatalf("NewEngine(%d): %v", shards, err)
	}
	defer eng.Close()
	ctx := context.Background()

	checkVPair := func(stage string, u graph.VID) {
		got, err := eng.VPair(ctx, u)
		if err != nil {
			tb.Fatalf("%s: engine VPair(%d): %v", stage, u, err)
		}
		want, err := m.SeqVPair(u)
		if err != nil {
			tb.Fatalf("%s: fresh VPair(%d): %v", stage, u, err)
		}
		if !EqualPairs(SortPairs(got), want) {
			tb.Fatalf("%s: VPair(%d) delta-maintained sharded diverges from fresh sequential:\n%s",
				stage, u, DiffPairs("fresh", want, "sharded", SortPairs(got)))
		}
	}
	checkAPair := func(stage string) {
		got, err := eng.APair(ctx, nil)
		if err != nil {
			tb.Fatalf("%s: engine APair: %v", stage, err)
		}
		want, err := m.SeqAPair(nil)
		if err != nil {
			tb.Fatalf("%s: fresh APair: %v", stage, err)
		}
		if !EqualPairs(SortPairs(got), want) {
			tb.Fatalf("%s: APair delta-maintained sharded diverges from fresh sequential:\n%s",
				stage, DiffPairs("fresh", want, "sharded", SortPairs(got)))
		}
	}

	checkAPair("prefix 0")
	for i, s := range steps {
		// Seed the cache with a pre-mutation answer for an old vertex,
		// then re-ask after the mutation: if the sweep retains it
		// wrongly, the differential below sees the stale pairs.
		u := graph.VID(abs(s.A) % m.GD.NumVertices())
		if _, err := eng.VPair(ctx, u); err != nil {
			tb.Fatalf("prefix %d: warm VPair(%d): %v", i, u, err)
		}
		if err := m.Apply(s); err != nil {
			tb.Fatalf("step %d %+v: %v", i, s, err)
		}
		stage := fmt.Sprintf("prefix %d", i+1)
		checkVPair(stage, u)
		checkAPair(stage)
	}
	return eng.Snapshot().DeltasApplied
}

// TestMutationSequenceDifferential is the delta-maintenance correctness
// property: for random interleavings of writes (graph vertices, graph
// edges, tuple regions) and vpair/apair reads, the delta-maintained
// sharded engine equals a from-scratch sequential rebuild after every
// mutation prefix — at 1, 2, 4 and 8 shards, with blocking off and on.
func TestMutationSequenceDifferential(t *testing.T) {
	var applied uint64
	for seed := int64(1); seed <= 4; seed++ {
		w, err := GenWorkload(seed)
		if err != nil {
			t.Fatalf("GenWorkload(%d): %v", seed, err)
		}
		steps := RandomSteps(seed*31, 8)
		for _, minShared := range []int{0, 1} {
			for _, shards := range workerCounts {
				t.Run(fmt.Sprintf("seed=%d/minShared=%d/shards=%d", seed, minShared, shards),
					func(t *testing.T) {
						applied += driveMutationSequence(t, w, minShared, shards, steps)
					})
			}
		}
	}
	if applied == 0 {
		t.Fatal("no deltas applied in place across the whole suite: the incremental path was never exercised")
	}
}

// FuzzMutationSequence feeds arbitrary byte strings through the
// mutation-step decoder and runs the same per-prefix differential: any
// input that makes the delta-maintained engine disagree with a fresh
// sequential rebuild is a bug. The first byte selects blocking and
// shard count; the rest decodes to steps (three bytes each).
func FuzzMutationSequence(f *testing.F) {
	f.Add([]byte{0x00, 0x00, 0x01, 0x02, 0x01, 0x03, 0x04, 0x02, 0x05, 0x06})
	f.Add([]byte{0x03, 0x02, 0x07, 0x01, 0x01, 0x09, 0x02, 0x00, 0x04, 0x08, 0x01, 0x05, 0x03})
	f.Add([]byte{0x05, 0x01, 0x00, 0x00, 0x02, 0xff, 0x7f, 0x00, 0x10, 0x20})
	f.Add([]byte{0x06, 0x02, 0x03, 0x04})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		minShared := int(data[0] & 1)
		shards := 1 + int(data[0]>>1&3)
		steps := DecodeSteps(data[1:])
		if len(steps) > 12 {
			steps = steps[:12]
		}
		w, err := GenWorkload(7)
		if err != nil {
			t.Fatal(err)
		}
		driveMutationSequence(t, w, minShared, shards, steps)
	})
}
