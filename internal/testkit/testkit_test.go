package testkit

import (
	"bytes"
	"os"
	"strconv"
	"testing"

	"her/internal/rdb2rdf"
	"her/internal/relational"
)

// workerCounts is the parallel sweep the differential suite proves
// equivalence over, in both sync and async mode.
var workerCounts = []int{1, 2, 4, 8}

const graphSeedBase = 100000

// seedsPerFamily is the seed count of each workload family (60 by
// default, so the suite covers 120 workloads). TESTKIT_SEEDS widens it
// for extended runs (e.g. the tier-2 gate or a soak).
func seedsPerFamily() int64 {
	if s := os.Getenv("TESTKIT_SEEDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return int64(n)
		}
	}
	return 60
}

// plantedWorkloads generates the relational workloads of the suite.
func plantedWorkloads(t *testing.T) []*Workload {
	t.Helper()
	n := seedsPerFamily()
	ws := make([]*Workload, 0, n)
	for seed := int64(1); seed <= n; seed++ {
		w, err := GenWorkload(seed)
		if err != nil {
			t.Fatalf("GenWorkload(%d): %v", seed, err)
		}
		ws = append(ws, w)
	}
	return ws
}

// graphWorkloads generates the adversarial graph-pair workloads.
func graphWorkloads(t *testing.T) []*Workload {
	t.Helper()
	n := seedsPerFamily()
	ws := make([]*Workload, 0, n)
	for i := int64(0); i < n; i++ {
		w, err := GenGraphWorkload(graphSeedBase + i)
		if err != nil {
			t.Fatalf("GenGraphWorkload(%d): %v", graphSeedBase+i, err)
		}
		ws = append(ws, w)
	}
	return ws
}

// TestDifferentialEquivalence is the paper's Theorems restated as a
// property: sequential ParaMatch (fresh and shared-cache), VPair, APair,
// the BSP engine (sync and async, workers ∈ {1,2,4,8}) and the sharded
// serving engine (halo replication, shards ∈ {1,2,4,8}) compute the
// same match set Π on every seeded workload.
func TestDifferentialEquivalence(t *testing.T) {
	workloads := append(plantedWorkloads(t), graphWorkloads(t)...)
	if len(workloads) < 100 {
		t.Fatalf("suite covers %d workloads, need at least 100", len(workloads))
	}
	for _, w := range workloads {
		results, err := w.RunAll(workerCounts)
		if err != nil {
			t.Fatal(err)
		}
		base := results[0]
		for _, r := range results[1:] {
			if !EqualPairs(base.Matches, r.Matches) {
				t.Errorf("workload %s: %s diverges from %s:\n%s",
					w.Name, r.Name, base.Name,
					DiffPairs(base.Name, base.Matches, r.Name, r.Matches))
			}
		}
	}
}

// TestPlantedRecovery: every planted tuple↔replica pair must be found —
// the generator constructs them so that parametric simulation is
// guaranteed to accept (exact canonical replica, δ ≤ 0.5, k above the
// tuple fan-out).
func TestPlantedRecovery(t *testing.T) {
	for _, w := range plantedWorkloads(t) {
		matches, err := w.APair()
		if err != nil {
			t.Fatal(err)
		}
		if p, ok := ContainsAll(matches, w.Planted); !ok {
			t.Errorf("workload %s: planted pair (%d, %d) not recovered (%d matches, %d planted)",
				w.Name, p.U, p.V, len(matches), len(w.Planted))
		}
	}
}

// TestRoundTripMapping: the canonical mapping f_D is 1-1 and invertible —
// every tuple's non-null attributes are recoverable from G_D alone
// (Section II: "f_D is a 1-1 mapping ... D and G_D contain the same
// information").
func TestRoundTripMapping(t *testing.T) {
	for _, w := range plantedWorkloads(t) {
		if w.Mapping.NumTupleVertices() != w.DB.NumTuples() {
			t.Fatalf("workload %s: %d tuple vertices for %d tuples",
				w.Name, w.Mapping.NumTupleVertices(), w.DB.NumTuples())
		}
		for _, relName := range w.DB.RelationNames() {
			rel := w.DB.Relation(relName)
			for _, tp := range rel.Tuples {
				u, ok := w.Mapping.VertexOf(relName, tp.ID)
				if !ok {
					t.Fatalf("workload %s: tuple %s/%d unmapped", w.Name, relName, tp.ID)
				}
				if ref, ok := w.Mapping.TupleOf(u); !ok || ref.Relation != relName || ref.TupleID != tp.ID {
					t.Fatalf("workload %s: f_D not 1-1 at %s/%d", w.Name, relName, tp.ID)
				}
				got, err := rdb2rdf.RecoverTuple(w.GD, w.Mapping, w.DB, u)
				if err != nil {
					t.Fatal(err)
				}
				want := map[string]string{}
				for i, a := range rel.Schema.Attrs {
					if !relational.IsNull(tp.Values[i]) {
						want[a] = tp.Values[i]
					}
				}
				if len(got) != len(want) {
					t.Fatalf("workload %s: %s/%d recovered %v, want %v", w.Name, relName, tp.ID, got, want)
				}
				for a, v := range want {
					if got[a] != v {
						t.Fatalf("workload %s: %s/%d attribute %s recovered %q, want %q",
							w.Name, relName, tp.ID, a, got[a], v)
					}
				}
			}
		}
	}
}

// TestDeterminism: repeated runs of the same workload return identical
// match sets — for the sequential engine trivially, and for the
// asynchronous engine despite nondeterministic message interleavings.
func TestDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		w, err := GenWorkload(seed)
		if err != nil {
			t.Fatal(err)
		}
		a1, err := w.APair()
		if err != nil {
			t.Fatal(err)
		}
		a2, err := w.APair()
		if err != nil {
			t.Fatal(err)
		}
		if !EqualPairs(a1, a2) {
			t.Errorf("workload %s: APair not deterministic:\n%s",
				w.Name, DiffPairs("run1", a1, "run2", a2))
		}
		for run := 0; run < 3; run++ {
			p, err := w.Parallel(4, true)
			if err != nil {
				t.Fatal(err)
			}
			if !EqualPairs(a1, p) {
				t.Errorf("workload %s: async run %d differs from APair:\n%s",
					w.Name, run, DiffPairs("apair", a1, "async", p))
			}
		}
	}
}

// TestGeneratorDeterminism: the same seed reproduces byte-identical
// workloads, so failures replay from the seed alone.
func TestGeneratorDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		w1, err1 := GenWorkload(seed)
		w2, err2 := GenWorkload(seed)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		var b1, b2 bytes.Buffer
		if err := w1.G.WriteTSV(&b1); err != nil {
			t.Fatal(err)
		}
		if err := w2.G.WriteTSV(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("seed %d: generated graphs differ", seed)
		}
		if len(w1.Planted) != len(w2.Planted) {
			t.Fatalf("seed %d: planted sets differ", seed)
		}
		for i := range w1.Planted {
			if w1.Planted[i] != w2.Planted[i] {
				t.Fatalf("seed %d: planted pair %d differs", seed, i)
			}
		}
	}
}

// TestCandidatePoolNontrivial guards the generator's value: workloads
// must actually produce candidates, matches, and (for planted mode)
// non-planted hard candidates, or the equivalence proof is vacuous.
func TestCandidatePoolNontrivial(t *testing.T) {
	totalCands, totalMatches, totalPlanted := 0, 0, 0
	for _, w := range plantedWorkloads(t) {
		cands, err := w.CandidatePairs()
		if err != nil {
			t.Fatal(err)
		}
		matches, err := w.APair()
		if err != nil {
			t.Fatal(err)
		}
		totalCands += len(cands)
		totalMatches += len(matches)
		totalPlanted += len(w.Planted)
	}
	if totalCands == 0 || totalMatches == 0 {
		t.Fatalf("vacuous suite: %d candidates, %d matches", totalCands, totalMatches)
	}
	if totalMatches < totalPlanted {
		t.Errorf("matches %d < planted %d: planted pairs are being lost", totalMatches, totalPlanted)
	}
	if totalCands <= totalMatches {
		t.Errorf("every candidate matches (%d candidates, %d matches): no hard negatives generated",
			totalCands, totalMatches)
	}
	t.Logf("planted family: %d candidate pairs, %d matches, %d planted", totalCands, totalMatches, totalPlanted)
}

// TestShardedManyShards pushes the sharded engine past the vertex count
// of G — and so past any possible SCC count — where most fragments are
// empty: the merged match set must still equal sequential APair.
func TestShardedManyShards(t *testing.T) {
	workloads := append(plantedWorkloads(t)[:3], graphWorkloads(t)[:3]...)
	for _, w := range workloads {
		want, err := w.APair()
		if err != nil {
			t.Fatal(err)
		}
		n := w.G.NumVertices() + 7
		got, err := w.Sharded(n)
		if err != nil {
			t.Fatalf("Sharded(%d) on %s: %v", n, w.Name, err)
		}
		if !EqualPairs(SortPairs(want), got) {
			t.Errorf("workload %s at %d shards (|V|=%d):\n%s",
				w.Name, n, w.G.NumVertices(),
				DiffPairs("apair", want, "sharded", got))
		}
	}
}
