package testkit

import (
	"fmt"
	"math/rand"

	"her/internal/core"
	"her/internal/graph"
	"her/internal/rdb2rdf"
	"her/internal/relational"
)

// Value pools are kept tiny on purpose: collisions across tuples and
// noise vertices are what create hard candidates, shared leaves and
// cleanup cascades.
var (
	mainAttrPool = []string{"color", "brand", "origin", "grade", "size"}
	dimAttrPool  = []string{"country", "city", "sector"}
	junkEdgePool = []string{"relatedTo", "seeAlso", "zz"}
)

func poolValue(attr string, i int) string { return fmt.Sprintf("%s %d", attr, i) }

// GenWorkload generates the planted relational workload for seed: a
// random schema (main relation with optional FK to a dimension relation,
// nullable attributes), a random database, its canonical graph G_D, and
// a target graph G holding exact canonical replicas of every dimension
// tuple and a random subset of main tuples (the planted matches), plus
// near-twin distractors and random noise vertices/edges.
//
// The planted guarantee relies on three generator choices: replicas copy
// the canonical structure exactly (one fresh leaf per attribute, so h_ρ
// pairs mirror paths 1-1), k exceeds every tuple's fan-out (no top-k
// truncation can drop a mirrored property), and δ ≤ 0.5 (a single
// mirrored 1-hop property, e.g. the never-null key, already reaches δ).
// Noise only ever adds edges INTO replica vertices, never out of them,
// so replica out-structure — paths, PRA ranks, top-k — stays mirrored.
func GenWorkload(seed int64) (*Workload, error) {
	rng := rand.New(rand.NewSource(seed))

	// ---- Random schema --------------------------------------------------
	nAttrs := 1 + rng.Intn(3) // non-key attributes of the main relation
	attrs := []string{"key"}
	attrs = append(attrs, mainAttrPool[:nAttrs]...)
	hasDim := rng.Float64() < 0.6

	var schemas []*relational.Schema
	var fks []relational.ForeignKey
	if hasDim {
		nDimAttrs := 1 + rng.Intn(2)
		dimAttrs := append([]string{"dkey"}, dimAttrPool[:nDimAttrs]...)
		ds, err := relational.NewSchema("dim", dimAttrs, "dkey")
		if err != nil {
			return nil, err
		}
		schemas = append(schemas, ds)
		attrs = append(attrs, "ref")
		fks = append(fks, relational.ForeignKey{Attr: "ref", RefRelation: "dim"})
	}
	ms, err := relational.NewSchema("main", attrs, "key", fks...)
	if err != nil {
		return nil, err
	}
	schemas = append(schemas, ms)
	db := relational.NewDatabase(schemas...)

	// ---- Random database ------------------------------------------------
	nDim := 0
	var dimKeys []string
	if hasDim {
		nDim = 2 + rng.Intn(3)
		rel := db.Relation("dim")
		for d := 0; d < nDim; d++ {
			row := []string{fmt.Sprintf("dim %04d", d)}
			for _, a := range rel.Schema.Attrs[1:] {
				if rng.Float64() < 0.2 {
					row = append(row, relational.Null)
				} else {
					row = append(row, poolValue(a, rng.Intn(3)))
				}
			}
			dimKeys = append(dimKeys, row[0])
			rel.MustInsert(row...)
		}
	}
	nMain := 3 + rng.Intn(6)
	rel := db.Relation("main")
	for t := 0; t < nMain; t++ {
		row := []string{fmt.Sprintf("entity %04d", t)}
		for _, a := range rel.Schema.Attrs[1:] {
			switch {
			case a == "ref":
				if rng.Float64() < 0.2 {
					row = append(row, relational.Null)
				} else {
					row = append(row, dimKeys[rng.Intn(nDim)])
				}
			case rng.Float64() < 0.25:
				row = append(row, relational.Null)
			default:
				row = append(row, poolValue(a, rng.Intn(4)))
			}
		}
		rel.MustInsert(row...)
	}
	if err := db.Validate(); err != nil {
		return nil, fmt.Errorf("testkit: generated database invalid: %w", err)
	}

	gd, mapping, err := rdb2rdf.Map(db)
	if err != nil {
		return nil, err
	}

	// ---- Target graph: canonical replicas + twins + noise ---------------
	g := graph.New()
	w := &Workload{Seed: seed, DB: db, Mapping: mapping, GD: gd, G: g}

	// replicate copies one tuple's canonical subtree into G: a vertex
	// labeled with the relation name, one fresh leaf per non-null non-FK
	// attribute, and FK edges to the given dimension replicas.
	replicate := func(relName string, t relational.Tuple, fkTarget map[string]graph.VID) graph.VID {
		r := db.Relation(relName)
		v := g.AddVertex(relName)
		for i, a := range r.Schema.Attrs {
			val := t.Values[i]
			if relational.IsNull(val) {
				continue
			}
			if a == "ref" {
				if tv, ok := fkTarget[val]; ok {
					g.MustAddEdge(v, tv, a)
				}
				continue
			}
			g.MustAddEdge(v, g.AddVertex(val), a)
		}
		return v
	}

	// Every dimension tuple is replicated (FK mirrors must exist for the
	// planted guarantee); each is itself a planted match.
	dimReplica := make(map[string]graph.VID, nDim)
	if hasDim {
		for _, t := range db.Relation("dim").Tuples {
			v := replicate("dim", t, nil)
			dimReplica[t.Values[0]] = v
			ut, _ := mapping.VertexOf("dim", t.ID)
			w.Planted = append(w.Planted, core.Pair{U: ut, V: v})
		}
	}
	// A random subset of main tuples is planted.
	var replicas []graph.VID
	for _, t := range db.Relation("main").Tuples {
		if rng.Float64() >= 0.75 {
			continue
		}
		v := replicate("main", t, dimReplica)
		replicas = append(replicas, v)
		ut, _ := mapping.VertexOf("main", t.ID)
		w.Planted = append(w.Planted, core.Pair{U: ut, V: v})
	}

	// Near twins: a replica of a random main tuple with one attribute
	// value changed — a hard negative that shares everything shallow.
	if len(replicas) > 0 && rng.Float64() < 0.6 {
		t := db.Relation("main").Tuples[rng.Intn(nMain)]
		tw := make([]string, len(t.Values))
		copy(tw, t.Values)
		tw[0] = fmt.Sprintf("entity %04d twin", t.ID)
		replicate("main", relational.Tuple{ID: -1, Values: tw}, dimReplica)
	}

	// Noise: extra vertices labeled like tuples or values, with random
	// edges from noise into anything (including replicas — in-edges do
	// not perturb replica out-structure).
	nNoise := rng.Intn(8)
	noiseStart := g.NumVertices()
	for i := 0; i < nNoise; i++ {
		if rng.Float64() < 0.4 {
			g.AddVertex([]string{"main", "dim"}[rng.Intn(2)])
		} else {
			a := mainAttrPool[rng.Intn(len(mainAttrPool))]
			g.AddVertex(poolValue(a, rng.Intn(4)))
		}
	}
	if nNoise > 0 {
		nEdges := rng.Intn(2 * nNoise)
		labels := append(append([]string{}, ms.Attrs...), junkEdgePool...)
		for i := 0; i < nEdges; i++ {
			from := graph.VID(noiseStart + rng.Intn(nNoise))
			to := graph.VID(rng.Intn(g.NumVertices()))
			g.MustAddEdge(from, to, labels[rng.Intn(len(labels))])
		}
	}

	// ---- Parameters ------------------------------------------------------
	// k must exceed the widest tuple fan-out (key + attrs + FK) so top-k
	// truncation never drops a mirrored property.
	k := len(attrs) + 1 + rng.Intn(3)
	w.MaxLen = 3 + rng.Intn(2)
	if rng.Float64() < 0.7 {
		w.Name = fmt.Sprintf("planted/exact seed=%d", seed)
		w.Params = core.Params{Mv: ExactMv, Mrho: ExactMrho, Sigma: 1, Delta: 0.5, K: k}
	} else {
		w.Name = fmt.Sprintf("planted/graded seed=%d", seed)
		w.Params = core.Params{Mv: LevMv, Mrho: JaccardMrho, Sigma: 0.82, Delta: 0.5, K: k}
	}

	// Sources: every tuple vertex of G_D (main and dimension relations).
	for _, relName := range db.RelationNames() {
		r := db.Relation(relName)
		for _, t := range r.Tuples {
			if ut, ok := mapping.VertexOf(relName, t.ID); ok {
				w.Sources = append(w.Sources, ut)
			}
		}
	}
	return w, nil
}

// GenGraphWorkload generates the adversarial graph-pair workload for
// seed: two small dense random graphs over tiny label pools (rich in
// cycles, shared labels and cross-fragment dependencies), queried from
// every G_D vertex. There is no relational side and no planted truth —
// these workloads exist purely to make the implementations disagree if
// the cache/cleanup/border-refinement logic has an order dependence.
func GenGraphWorkload(seed int64) (*Workload, error) {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"P", "Q", "R", "S", "T"}[:3+rng.Intn(3)]
	edgeLabels := []string{"x", "y", "z"}[:2+rng.Intn(2)]

	random := func(nv, ne int) *graph.Graph {
		g := graph.New()
		for i := 0; i < nv; i++ {
			g.AddVertex(labels[rng.Intn(len(labels))])
		}
		for i := 0; i < ne; i++ {
			g.MustAddEdge(graph.VID(rng.Intn(nv)), graph.VID(rng.Intn(nv)),
				edgeLabels[rng.Intn(len(edgeLabels))])
		}
		return g
	}
	nv := 4 + rng.Intn(9)
	gd := random(nv, rng.Intn(5*nv/2))
	g := random(nv, rng.Intn(5*nv/2))

	w := &Workload{Seed: seed, GD: gd, G: g, MaxLen: 2 + rng.Intn(2)}
	delta := []float64{0.3, 0.5, 1.0}[rng.Intn(3)]
	k := 2 + rng.Intn(2)
	if rng.Float64() < 0.7 {
		w.Name = fmt.Sprintf("graphpair/exact seed=%d", seed)
		w.Params = core.Params{Mv: ExactMv, Mrho: ExactMrho, Sigma: 1, Delta: delta, K: k}
	} else {
		w.Name = fmt.Sprintf("graphpair/graded seed=%d", seed)
		w.Params = core.Params{Mv: LevMv, Mrho: JaccardMrho, Sigma: 0.7, Delta: delta, K: k}
	}
	return w, nil
}
