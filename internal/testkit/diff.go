package testkit

import (
	"fmt"
	"sort"
	"strings"

	"her/internal/bsp"
	"her/internal/core"
	"her/internal/graph"
)

// EngineResult is one implementation's match set over a workload.
type EngineResult struct {
	Name    string
	Matches []core.Pair // sorted by (U, V)
}

// sources resolves the workload's query vertices (nil means all of G_D).
func (w *Workload) sources() []graph.VID {
	if w.Sources != nil {
		return w.Sources
	}
	all := make([]graph.VID, w.GD.NumVertices())
	for i := range all {
		all[i] = graph.VID(i)
	}
	return all
}

// CandidatePairs enumerates the candidate pool every engine draws from:
// for each source u, every v of G with h_v(u, v) ≥ σ.
func (w *Workload) CandidatePairs() ([]core.Pair, error) {
	m, err := w.NewMatcher()
	if err != nil {
		return nil, err
	}
	var pairs []core.Pair
	for _, u := range w.sources() {
		for _, v := range m.CandidatesFor(u, nil) {
			pairs = append(pairs, core.Pair{U: u, V: v})
		}
	}
	return pairs, nil
}

// SeqParaMatch decides every candidate pair through one shared-cache
// sequential matcher — ParaMatch as Fig. 4 runs it, with the cache (and
// its cleanup stage) carried across queries — and reads the final cache
// state, since a later cleanup may rectify an earlier answer.
func (w *Workload) SeqParaMatch() ([]core.Pair, error) {
	m, err := w.NewMatcher()
	if err != nil {
		return nil, err
	}
	pairs, err := w.CandidatePairs()
	if err != nil {
		return nil, err
	}
	for _, p := range pairs {
		m.Match(p.U, p.V)
	}
	var matches []core.Pair
	for _, p := range pairs {
		if valid, ok := m.Cached(p); ok && valid {
			matches = append(matches, p)
		}
	}
	return SortPairs(matches), nil
}

// FreshParaMatch decides every candidate pair with a cold matcher per
// pair: the order-free per-pair verdict. Any divergence from the
// shared-cache engines is an order dependence in cache/cleanup handling.
func (w *Workload) FreshParaMatch() ([]core.Pair, error) {
	pairs, err := w.CandidatePairs()
	if err != nil {
		return nil, err
	}
	var matches []core.Pair
	for _, p := range pairs {
		m, err := w.NewMatcher()
		if err != nil {
			return nil, err
		}
		if m.Match(p.U, p.V) {
			matches = append(matches, p)
		}
	}
	return SortPairs(matches), nil
}

// VPairUnion computes Π as the union of VParaMatch (Fig. 5) over the
// sources, one fresh matcher per source vertex.
func (w *Workload) VPairUnion() ([]core.Pair, error) {
	var matches []core.Pair
	for _, u := range w.sources() {
		m, err := w.NewMatcher()
		if err != nil {
			return nil, err
		}
		matches = append(matches, m.VPair(u, nil)...)
	}
	return SortPairs(matches), nil
}

// APair computes Π with AllParaMatch (Fig. 8) on a fresh matcher.
func (w *Workload) APair() ([]core.Pair, error) {
	m, err := w.NewMatcher()
	if err != nil {
		return nil, err
	}
	return m.APair(w.Sources, nil), nil
}

// Parallel computes Π with the BSP engine (async selects the barrier-free
// adaptive asynchronous mode) on a fresh engine.
func (w *Workload) Parallel(workers int, async bool) ([]core.Pair, error) {
	eng, err := w.NewEngine()
	if err != nil {
		return nil, err
	}
	var matches []core.Pair
	if async {
		matches, _, err = eng.RunAsync(w.Sources, nil, bsp.Config{Workers: workers})
	} else {
		matches, _, err = eng.Run(w.Sources, nil, bsp.Config{Workers: workers})
	}
	if err != nil {
		return nil, err
	}
	return matches, nil
}

// RunAll computes the workload's match set through every implementation:
// fresh-per-pair ParaMatch, shared-cache ParaMatch, VPair union, APair,
// the parallel engine in sync and async mode at each worker count, and
// the sharded serving engine at each shard count.
func (w *Workload) RunAll(workerCounts []int) ([]EngineResult, error) {
	var out []EngineResult
	add := func(name string, matches []core.Pair, err error) error {
		if err != nil {
			return fmt.Errorf("%s on %s: %w", name, w.Name, err)
		}
		out = append(out, EngineResult{Name: name, Matches: matches})
		return nil
	}
	m, err := w.FreshParaMatch()
	if e := add("paramatch-fresh", m, err); e != nil {
		return nil, e
	}
	m, err = w.SeqParaMatch()
	if e := add("paramatch-seq", m, err); e != nil {
		return nil, e
	}
	m, err = w.VPairUnion()
	if e := add("vpair", m, err); e != nil {
		return nil, e
	}
	m, err = w.APair()
	if e := add("apair", m, err); e != nil {
		return nil, e
	}
	for _, n := range workerCounts {
		m, err = w.Parallel(n, false)
		if e := add(fmt.Sprintf("bsp-sync-%d", n), m, err); e != nil {
			return nil, e
		}
		m, err = w.Parallel(n, true)
		if e := add(fmt.Sprintf("bsp-async-%d", n), m, err); e != nil {
			return nil, e
		}
		m, err = w.Sharded(n)
		if e := add(fmt.Sprintf("shard-%d", n), m, err); e != nil {
			return nil, e
		}
	}
	return out, nil
}

// SortPairs sorts (and returns) pairs by (U, V).
func SortPairs(pairs []core.Pair) []core.Pair {
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].U != pairs[b].U {
			return pairs[a].U < pairs[b].U
		}
		return pairs[a].V < pairs[b].V
	})
	return pairs
}

// EqualPairs reports whether two sorted pair slices are identical.
func EqualPairs(a, b []core.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DiffPairs renders a readable set difference between two sorted match
// sets, for failure messages.
func DiffPairs(wantName string, want []core.Pair, gotName string, got []core.Pair) string {
	inWant := make(map[core.Pair]bool, len(want))
	for _, p := range want {
		inWant[p] = true
	}
	inGot := make(map[core.Pair]bool, len(got))
	for _, p := range got {
		inGot[p] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s has %d matches, %s has %d", wantName, len(want), gotName, len(got))
	for _, p := range want {
		if !inGot[p] {
			fmt.Fprintf(&b, "\n  only in %s: (%d, %d)", wantName, p.U, p.V)
		}
	}
	for _, p := range got {
		if !inWant[p] {
			fmt.Fprintf(&b, "\n  only in %s: (%d, %d)", gotName, p.U, p.V)
		}
	}
	return b.String()
}

// ContainsAll reports whether every pair of sub appears in the sorted
// set, returning the first missing pair otherwise.
func ContainsAll(set, sub []core.Pair) (core.Pair, bool) {
	in := make(map[core.Pair]bool, len(set))
	for _, p := range set {
		in[p] = true
	}
	for _, p := range sub {
		if !in[p] {
			return p, false
		}
	}
	return core.Pair{}, true
}
