package testkit

import (
	"context"

	"her/internal/core"
	"her/internal/ranking"
	"her/internal/shard"
)

// Sharded computes Π through the sharded serving engine at n shards:
// partition G, close each fragment under the halo radius, match per
// shard with a sequential matcher over owned candidates, merge. The
// result must be byte-identical (post SortPairs) to APair on the whole
// graph — that is the halo-replication correctness claim.
func (w *Workload) Sharded(n int) ([]core.Pair, error) {
	eng, err := shard.NewEngine(shard.Config{
		GD:         w.GD,
		G:          w.G,
		RankerD:    ranking.NewRanker(w.GD, nil, w.MaxLen),
		Params:     w.Params,
		MaxPathLen: w.MaxLen,
		Shards:     n,
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	return eng.APair(context.Background(), w.Sources)
}
