package json2graph

import (
	"bytes"
	"testing"

	"her/internal/graph"
)

// FuzzConvert exercises the untrusted JSON parse surface: arbitrary
// bytes must either fail with an error or build a well-formed rooted
// subgraph, and conversion must be deterministic (object keys are
// visited in sorted order, so two conversions of the same document
// serialize identically).
func FuzzConvert(f *testing.F) {
	f.Add([]byte(`{"name":"widget","qty":3}`))
	f.Add([]byte(`{"a":{"b":{"c":null}},"tags":["x","y"]}`))
	f.Add([]byte(`{"n":1.5,"big":1e300,"neg":-7,"t":true}`))
	f.Add([]byte(`{"":""}`))
	f.Add([]byte(`["not","an","object"]`))
	f.Add([]byte(`{"broken":`))
	f.Add([]byte(`{"dup":1,"dup":2}`))
	f.Fuzz(func(t *testing.T, doc []byte) {
		g := graph.New()
		root, err := Convert(g, "thing", doc)
		if err != nil {
			if root != graph.NoVertex {
				t.Fatalf("Convert returned both a root (%d) and an error: %v", root, err)
			}
			return
		}
		if root < 0 || int(root) >= g.NumVertices() {
			t.Fatalf("Convert returned out-of-range root %d (graph has %d vertices)",
				root, g.NumVertices())
		}
		if g.Label(root) != "thing" {
			t.Fatalf("root labeled %q, want %q", g.Label(root), "thing")
		}
		g2 := graph.New()
		if _, err := Convert(g2, "thing", doc); err != nil {
			t.Fatalf("second conversion of accepted document failed: %v", err)
		}
		var b1, b2 bytes.Buffer
		if err := g.WriteTSV(&b1); err != nil {
			t.Fatal(err)
		}
		if err := g2.WriteTSV(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("conversion not deterministic for %q", doc)
		}
	})
}
