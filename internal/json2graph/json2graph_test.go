package json2graph

import (
	"testing"

	"her/internal/graph"
)

func TestConvertFlatObject(t *testing.T) {
	g := graph.New()
	root, err := Convert(g, "item", []byte(`{"name":"Dame 7","qty":500,"active":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if g.Label(root) != "item" {
		t.Errorf("root label = %q", g.Label(root))
	}
	if g.OutDegree(root) != 3 {
		t.Fatalf("out degree = %d", g.OutDegree(root))
	}
	byLabel := map[string]string{}
	for _, e := range g.Out(root) {
		byLabel[e.Label] = g.Label(e.To)
	}
	if byLabel["name"] != "Dame 7" {
		t.Errorf("name = %q", byLabel["name"])
	}
	if byLabel["qty"] != "500" {
		t.Errorf("qty = %q (integers must not get a decimal point)", byLabel["qty"])
	}
	if byLabel["active"] != "true" {
		t.Errorf("active = %q", byLabel["active"])
	}
}

func TestConvertNestedAndArrays(t *testing.T) {
	g := graph.New()
	doc := []byte(`{
		"name": "Dame Basketball Shoes",
		"brand": {"country": "Germany", "manufacturer": "Addidas AG"},
		"colors": ["white", "black"],
		"rating": 4.5,
		"discontinued": null
	}`)
	root, err := Convert(g, "item", doc)
	if err != nil {
		t.Fatal(err)
	}
	// name + brand + 2 colors + rating = 5 edges; null omitted.
	if g.OutDegree(root) != 5 {
		t.Fatalf("out degree = %d", g.OutDegree(root))
	}
	var brand graph.VID = graph.NoVertex
	colors := 0
	for _, e := range g.Out(root) {
		switch e.Label {
		case "brand":
			brand = e.To
		case "colors":
			colors++
		case "rating":
			if g.Label(e.To) != "4.5" {
				t.Errorf("rating label = %q", g.Label(e.To))
			}
		}
	}
	if colors != 2 {
		t.Errorf("array fan-out = %d", colors)
	}
	if brand == graph.NoVertex {
		t.Fatal("brand vertex missing")
	}
	if g.Label(brand) != "brand" || g.OutDegree(brand) != 2 {
		t.Errorf("nested object vertex: label %q degree %d", g.Label(brand), g.OutDegree(brand))
	}
}

func TestConvertDeterministic(t *testing.T) {
	doc := []byte(`{"z":"1","a":"2","m":{"k":"3"}}`)
	g1 := graph.New()
	g2 := graph.New()
	if _, err := Convert(g1, "t", doc); err != nil {
		t.Fatal(err)
	}
	if _, err := Convert(g2, "t", doc); err != nil {
		t.Fatal(err)
	}
	if g1.NumVertices() != g2.NumVertices() {
		t.Fatal("nondeterministic vertex count")
	}
	for i := 0; i < g1.NumVertices(); i++ {
		if g1.Label(graph.VID(i)) != g2.Label(graph.VID(i)) {
			t.Fatal("nondeterministic construction order")
		}
	}
}

func TestConvertErrors(t *testing.T) {
	g := graph.New()
	if _, err := Convert(g, "t", []byte(`not json`)); err == nil {
		t.Error("invalid JSON should fail")
	}
	if _, err := Convert(g, "t", []byte(`[1,2,3]`)); err == nil {
		t.Error("non-object root should fail")
	}
	if _, err := Convert(g, "t", []byte(`"scalar"`)); err == nil {
		t.Error("scalar root should fail")
	}
}

func TestConvertAll(t *testing.T) {
	g := graph.New()
	roots, err := ConvertAll(g, "person", [][]byte{
		[]byte(`{"name":"Ada"}`),
		[]byte(`{"name":"Grace"}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 2 || roots[0] == roots[1] {
		t.Fatalf("roots = %v", roots)
	}
	if _, err := ConvertAll(g, "person", [][]byte{[]byte(`{`)}); err == nil {
		t.Error("bad batch element should fail")
	}
}
