// Package json2graph extends HER's canonical mapping to JSON documents —
// the first future-work item of the paper's conclusion ("extend HER to
// other data formats such as JSON, CSV and arrays"). A document becomes
// a rooted subgraph: objects are vertices, scalar fields hang off them
// as value vertices with the key as the edge label, nested objects
// become child vertices, and arrays fan out one edge per element. The
// result feeds the same parametric simulation as RDB2RDF output.
package json2graph

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"her/internal/graph"
)

// Convert parses one JSON document (an object) and appends it to g,
// returning the root vertex, which is labeled typeLabel.
func Convert(g *graph.Graph, typeLabel string, doc []byte) (graph.VID, error) {
	var v interface{}
	if err := json.Unmarshal(doc, &v); err != nil {
		return graph.NoVertex, fmt.Errorf("json2graph: %w", err)
	}
	obj, ok := v.(map[string]interface{})
	if !ok {
		return graph.NoVertex, fmt.Errorf("json2graph: document root must be an object, got %T", v)
	}
	root := g.AddVertex(typeLabel)
	if err := addObject(g, root, obj); err != nil {
		return graph.NoVertex, err
	}
	return root, nil
}

// ConvertAll converts a batch of documents sharing a type label.
func ConvertAll(g *graph.Graph, typeLabel string, docs [][]byte) ([]graph.VID, error) {
	roots := make([]graph.VID, 0, len(docs))
	for i, d := range docs {
		r, err := Convert(g, typeLabel, d)
		if err != nil {
			return nil, fmt.Errorf("json2graph: document %d: %w", i, err)
		}
		roots = append(roots, r)
	}
	return roots, nil
}

func addObject(g *graph.Graph, owner graph.VID, obj map[string]interface{}) error {
	keys := make([]string, 0, len(obj))
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic construction
	for _, k := range keys {
		if err := addValue(g, owner, k, obj[k]); err != nil {
			return err
		}
	}
	return nil
}

func addValue(g *graph.Graph, owner graph.VID, key string, val interface{}) error {
	switch x := val.(type) {
	case nil:
		// JSON null ≙ SQL NULL: omitted, like the canonical mapping.
		return nil
	case map[string]interface{}:
		child := g.AddVertex(key)
		g.MustAddEdge(owner, child, key)
		return addObject(g, child, x)
	case []interface{}:
		for _, elem := range x {
			if err := addValue(g, owner, key, elem); err != nil {
				return err
			}
		}
		return nil
	case string:
		g.MustAddEdge(owner, g.AddVertex(x), key)
		return nil
	case bool:
		g.MustAddEdge(owner, g.AddVertex(strconv.FormatBool(x)), key)
		return nil
	case float64:
		g.MustAddEdge(owner, g.AddVertex(formatNumber(x)), key)
		return nil
	default:
		return fmt.Errorf("json2graph: unsupported value %T under %q", val, key)
	}
}

// formatNumber renders integers without a decimal point, so JSON 500
// matches the relational value "500".
func formatNumber(f float64) string {
	if f == float64(int64(f)) { //herlint:ignore floateq — exact integrality test on purpose, not a score compare
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
