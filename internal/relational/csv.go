package relational

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV writes a relation as CSV: a header row of attribute names
// followed by one row per tuple. Null values are written as empty fields.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema.Attrs); err != nil {
		return err
	}
	row := make([]string, len(r.Schema.Attrs))
	for _, t := range r.Tuples {
		for i, v := range t.Values {
			if IsNull(v) {
				row[i] = ""
			} else {
				row[i] = v
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads tuples from CSV into a fresh relation of schema s. The CSV
// header must match the schema's attributes exactly.
func ReadCSV(s *Schema, rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(rd)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relational: reading CSV header: %w", err)
	}
	if len(header) != len(s.Attrs) {
		return nil, fmt.Errorf("relational: CSV header has %d columns, schema %s has %d",
			len(header), s.Name, len(s.Attrs))
	}
	for i, h := range header {
		if h != s.Attrs[i] {
			return nil, fmt.Errorf("relational: CSV column %d is %q, schema %s expects %q",
				i, h, s.Name, s.Attrs[i])
		}
	}
	rel := NewRelation(s)
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relational: reading CSV row: %w", err)
		}
		vals := make([]string, len(row))
		for i, v := range row {
			if v == "" {
				vals[i] = Null
			} else {
				vals[i] = v
			}
		}
		if _, err := rel.Insert(vals...); err != nil {
			return nil, err
		}
	}
	return rel, nil
}
