package relational

import (
	"bytes"
	"strings"
	"testing"
)

func paperSchemas(t *testing.T) (*Schema, *Schema) {
	t.Helper()
	brand, err := NewSchema("brand", []string{"name", "country", "manufacturer", "made_in"}, "name")
	if err != nil {
		t.Fatal(err)
	}
	item, err := NewSchema("item",
		[]string{"item", "material", "color", "type", "brand", "qty"}, "item",
		ForeignKey{Attr: "brand", RefRelation: "brand"})
	if err != nil {
		t.Fatal(err)
	}
	return item, brand
}

// paperDatabase builds Tables I and II of the paper.
func paperDatabase(t *testing.T) *Database {
	t.Helper()
	item, brand := paperSchemas(t)
	db := NewDatabase(item, brand)
	b := db.Relation("brand")
	b.MustInsert("Addidas Originals", "Germany", "Addidas AG", "Can Duoc, VN")
	b.MustInsert("Addidas", "Germany", "Addidas AG", "Long An, Vietnam")
	i := db.Relation("item")
	i.MustInsert("Dame Basketball Shoes D7", "phylon foam", "white", "Dame 7", "Addidas Originals", "500")
	i.MustInsert("Lightweight Running Shoes", "synthetic", "red", "DD8505", "Addidas Originals", "100")
	i.MustInsert("Mid-cut Basketball Shoes Ultra Comfortable", "phylon foam", "red", Null, "Addidas", "200")
	return db
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema("r", []string{"a", "a"}, ""); err == nil {
		t.Error("duplicate attribute should fail")
	}
	if _, err := NewSchema("r", []string{"a"}, "b"); err == nil {
		t.Error("key not in attrs should fail")
	}
	if _, err := NewSchema("r", []string{"a"}, "a", ForeignKey{Attr: "x", RefRelation: "s"}); err == nil {
		t.Error("FK attr not in attrs should fail")
	}
}

func TestInsertAndLookup(t *testing.T) {
	db := paperDatabase(t)
	if got := db.NumTuples(); got != 5 {
		t.Fatalf("NumTuples = %d, want 5", got)
	}
	b := db.Relation("brand")
	tu, ok := b.LookupKey("Addidas")
	if !ok {
		t.Fatal("LookupKey(Addidas) failed")
	}
	if v, _ := b.Get(tu, "made_in"); v != "Long An, Vietnam" {
		t.Errorf("made_in = %q", v)
	}
	if _, ok := b.Get(tu, "nonexistent"); ok {
		t.Error("Get of missing attribute should report false")
	}
	items := db.Relation("item")
	t3 := items.Tuples[2]
	if _, ok := items.Get(t3, "type"); ok {
		t.Error("null attribute should report false")
	}
}

func TestInsertErrors(t *testing.T) {
	_, brand := paperSchemas(t)
	r := NewRelation(brand)
	if _, err := r.Insert("only-one"); err == nil {
		t.Error("arity mismatch should fail")
	}
	r.MustInsert("X", "c", "m", "w")
	if _, err := r.Insert("X", "c2", "m2", "w2"); err == nil {
		t.Error("duplicate key should fail")
	}
}

func TestValidateReferentialIntegrity(t *testing.T) {
	db := paperDatabase(t)
	if err := db.Validate(); err != nil {
		t.Fatalf("valid database rejected: %v", err)
	}
	db.Relation("item").MustInsert("Bogus", "m", "c", "t", "NoSuchBrand", "1")
	if err := db.Validate(); err == nil {
		t.Error("dangling foreign key should fail validation")
	}
}

func TestValidateUnknownRelation(t *testing.T) {
	s := MustSchema("a", []string{"x", "fk"}, "x", ForeignKey{Attr: "fk", RefRelation: "ghost"})
	db := NewDatabase(s)
	db.Relation("a").MustInsert("1", "2")
	if err := db.Validate(); err == nil {
		t.Error("reference to unknown relation should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := paperDatabase(t)
	items := db.Relation("item")
	var buf bytes.Buffer
	if err := items.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(items.Schema, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != len(items.Tuples) {
		t.Fatalf("round trip lost tuples: %d vs %d", len(got.Tuples), len(items.Tuples))
	}
	for i := range got.Tuples {
		for j := range got.Tuples[i].Values {
			a, b := got.Tuples[i].Values[j], items.Tuples[i].Values[j]
			if IsNull(a) != IsNull(b) || (!IsNull(a) && a != b) {
				t.Errorf("tuple %d attr %d: %q vs %q", i, j, a, b)
			}
		}
	}
}

func TestReadCSVHeaderMismatch(t *testing.T) {
	_, brand := paperSchemas(t)
	if _, err := ReadCSV(brand, strings.NewReader("wrong,header\n")); err == nil {
		t.Error("header column-count mismatch should fail")
	}
	if _, err := ReadCSV(brand, strings.NewReader("name,country,manufacturer,wrong\n")); err == nil {
		t.Error("header name mismatch should fail")
	}
}

func TestRelationNamesDeterministic(t *testing.T) {
	db := paperDatabase(t)
	names := db.RelationNames()
	if len(names) != 2 || names[0] != "brand" || names[1] != "item" {
		t.Errorf("RelationNames = %v", names)
	}
}
