// Package relational implements the relational-database substrate of HER:
// schemas R = (R1, ..., Rn), relations, tuples, foreign keys and null
// values, as defined in Section II of the paper. It is an in-memory store
// sufficient to feed the RDB2RDF canonical mapping and the baselines.
package relational

import (
	"fmt"
	"sort"
)

// Null is the sentinel value for a missing attribute (SQL NULL).
const Null = "\x00null"

// IsNull reports whether a value is the null sentinel or empty.
func IsNull(v string) bool { return v == Null || v == "" }

// ForeignKey declares that values of Attr in the owning relation reference
// the key of relation RefRelation.
type ForeignKey struct {
	Attr        string
	RefRelation string
}

// Schema describes one relation schema R = (A1, ..., Ak).
type Schema struct {
	Name        string
	Attrs       []string
	Key         string // primary-key attribute; "" means row identity
	ForeignKeys []ForeignKey

	attrIndex map[string]int
}

// NewSchema creates a relation schema. The key attribute, if non-empty,
// must be one of attrs.
func NewSchema(name string, attrs []string, key string, fks ...ForeignKey) (*Schema, error) {
	s := &Schema{Name: name, Attrs: attrs, Key: key, ForeignKeys: fks,
		attrIndex: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if _, dup := s.attrIndex[a]; dup {
			return nil, fmt.Errorf("relational: schema %s: duplicate attribute %q", name, a)
		}
		s.attrIndex[a] = i
	}
	if key != "" {
		if _, ok := s.attrIndex[key]; !ok {
			return nil, fmt.Errorf("relational: schema %s: key %q is not an attribute", name, key)
		}
	}
	for _, fk := range fks {
		if _, ok := s.attrIndex[fk.Attr]; !ok {
			return nil, fmt.Errorf("relational: schema %s: foreign key attribute %q is not an attribute", name, fk.Attr)
		}
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for fixtures and generators.
func MustSchema(name string, attrs []string, key string, fks ...ForeignKey) *Schema {
	s, err := NewSchema(name, attrs, key, fks...)
	if err != nil {
		panic(err)
	}
	return s
}

// AttrIndex returns the position of attribute a, or -1.
func (s *Schema) AttrIndex(a string) int {
	if i, ok := s.attrIndex[a]; ok {
		return i
	}
	return -1
}

// Tuple is one row of a relation. Values are positionally aligned with the
// schema's attributes; use Null for missing values.
type Tuple struct {
	ID     int // unique within the relation
	Values []string
}

// Relation is a set of tuples of one schema.
type Relation struct {
	Schema *Schema
	Tuples []Tuple

	byKey map[string]int // key value → tuple index
}

// NewRelation creates an empty relation of schema s.
func NewRelation(s *Schema) *Relation {
	return &Relation{Schema: s, byKey: make(map[string]int)}
}

// Insert appends a tuple and returns its ID. It validates arity and key
// uniqueness.
func (r *Relation) Insert(values ...string) (int, error) {
	if len(values) != len(r.Schema.Attrs) {
		return 0, fmt.Errorf("relational: %s: got %d values, schema has %d attributes",
			r.Schema.Name, len(values), len(r.Schema.Attrs))
	}
	id := len(r.Tuples)
	if k := r.Schema.Key; k != "" {
		kv := values[r.Schema.AttrIndex(k)]
		if !IsNull(kv) {
			if _, dup := r.byKey[kv]; dup {
				return 0, fmt.Errorf("relational: %s: duplicate key %q", r.Schema.Name, kv)
			}
			r.byKey[kv] = id
		}
	}
	vals := make([]string, len(values))
	copy(vals, values)
	r.Tuples = append(r.Tuples, Tuple{ID: id, Values: vals})
	return id, nil
}

// MustInsert is Insert that panics on error, for fixtures and generators.
func (r *Relation) MustInsert(values ...string) int {
	id, err := r.Insert(values...)
	if err != nil {
		panic(err)
	}
	return id
}

// Get returns the value of attribute a in tuple t, and whether the
// attribute exists and is non-null.
func (r *Relation) Get(t Tuple, a string) (string, bool) {
	i := r.Schema.AttrIndex(a)
	if i < 0 || IsNull(t.Values[i]) {
		return "", false
	}
	return t.Values[i], true
}

// LookupKey finds the tuple whose key attribute equals kv.
func (r *Relation) LookupKey(kv string) (Tuple, bool) {
	if i, ok := r.byKey[kv]; ok {
		return r.Tuples[i], true
	}
	return Tuple{}, false
}

// Database is a database D = (D1, ..., Dn) of schema R = (R1, ..., Rn).
type Database struct {
	Relations map[string]*Relation
}

// NewDatabase creates an empty database over the given schemas.
func NewDatabase(schemas ...*Schema) *Database {
	db := &Database{Relations: make(map[string]*Relation, len(schemas))}
	for _, s := range schemas {
		db.Relations[s.Name] = NewRelation(s)
	}
	return db
}

// Relation returns the relation named name, or nil.
func (db *Database) Relation(name string) *Relation { return db.Relations[name] }

// RelationNames returns the relation names in deterministic order.
func (db *Database) RelationNames() []string {
	names := make([]string, 0, len(db.Relations))
	for n := range db.Relations {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NumTuples counts all tuples across relations.
func (db *Database) NumTuples() int {
	n := 0
	for _, r := range db.Relations {
		n += len(r.Tuples)
	}
	return n
}

// Validate checks referential integrity: every non-null foreign-key value
// resolves to a tuple in the referenced relation.
func (db *Database) Validate() error {
	for _, name := range db.RelationNames() {
		r := db.Relations[name]
		for _, fk := range r.Schema.ForeignKeys {
			ref := db.Relations[fk.RefRelation]
			if ref == nil {
				return fmt.Errorf("relational: %s.%s references unknown relation %s",
					name, fk.Attr, fk.RefRelation)
			}
			if ref.Schema.Key == "" {
				return fmt.Errorf("relational: %s.%s references keyless relation %s",
					name, fk.Attr, fk.RefRelation)
			}
			ai := r.Schema.AttrIndex(fk.Attr)
			for _, t := range r.Tuples {
				v := t.Values[ai]
				if IsNull(v) {
					continue
				}
				if _, ok := ref.LookupKey(v); !ok {
					return fmt.Errorf("relational: %s tuple %d: dangling foreign key %s=%q",
						name, t.ID, fk.Attr, v)
				}
			}
		}
	}
	return nil
}
