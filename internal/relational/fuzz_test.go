package relational

import (
	"bytes"
	"testing"
)

// FuzzReadCSV exercises the untrusted relational-CSV parse surface
// against a fixed keyed schema: arbitrary bytes must either fail with an
// error or load a relation that survives a write/re-read round trip
// (null ↔ empty-field mapping included).
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("sku,color,qty\nA1,red,3\nB2,,\n"))
	f.Add([]byte("sku,color,qty\n\"A,1\",\"two\nlines\",9\n"))
	f.Add([]byte("sku,color\nA1,red\n"))
	f.Add([]byte("wrong,header,here\nA1,red,3\n"))
	f.Add([]byte("sku,color,qty\nA1,red,3\nA1,blue,4\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := NewSchema("stock", []string{"sku", "color", "qty"}, "sku")
		if err != nil {
			t.Fatal(err)
		}
		rel, err := ReadCSV(s, bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		var buf bytes.Buffer
		if err := rel.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV of accepted relation: %v", err)
		}
		rel2, err := ReadCSV(s, bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of serialized relation: %v\n%s", err, buf.Bytes())
		}
		if len(rel2.Tuples) != len(rel.Tuples) {
			t.Fatalf("round trip changed tuple count: %d -> %d", len(rel.Tuples), len(rel2.Tuples))
		}
		for i, tp := range rel.Tuples {
			tp2 := rel2.Tuples[i]
			for j, v := range tp.Values {
				v2 := tp2.Values[j]
				if IsNull(v) != IsNull(v2) || (!IsNull(v) && v != v2) {
					t.Fatalf("round trip changed tuple %d attr %s: %q -> %q",
						i, s.Attrs[j], v, v2)
				}
			}
		}
	})
}
