package relational

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// WriteSchemas serializes database schemas in a line format:
//
//	relation <name> key=<attr> attrs=<a,b,c> fks=<attr>:<rel>;<attr>:<rel>
//
// so a dumped database can be reloaded with its keys and foreign keys.
func (db *Database) WriteSchemas(w io.Writer) error {
	for _, name := range db.RelationNames() {
		s := db.Relations[name].Schema
		var fks []string
		for _, fk := range s.ForeignKeys {
			fks = append(fks, fk.Attr+":"+fk.RefRelation)
		}
		if _, err := fmt.Fprintf(w, "relation %s key=%s attrs=%s fks=%s\n",
			s.Name, s.Key, strings.Join(s.Attrs, ","), strings.Join(fks, ";")); err != nil {
			return err
		}
	}
	return nil
}

// ReadSchemas parses the format written by WriteSchemas.
func ReadSchemas(r io.Reader) ([]*Schema, error) {
	var out []*Schema
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 5 || fields[0] != "relation" {
			return nil, fmt.Errorf("relational: schema line %d malformed", lineNo)
		}
		name := fields[1]
		var key, attrsRaw, fksRaw string
		for _, f := range fields[2:] {
			switch {
			case strings.HasPrefix(f, "key="):
				key = strings.TrimPrefix(f, "key=")
			case strings.HasPrefix(f, "attrs="):
				attrsRaw = strings.TrimPrefix(f, "attrs=")
			case strings.HasPrefix(f, "fks="):
				fksRaw = strings.TrimPrefix(f, "fks=")
			default:
				return nil, fmt.Errorf("relational: schema line %d: unknown field %q", lineNo, f)
			}
		}
		attrs := strings.Split(attrsRaw, ",")
		var fks []ForeignKey
		if fksRaw != "" {
			for _, part := range strings.Split(fksRaw, ";") {
				kv := strings.SplitN(part, ":", 2)
				if len(kv) != 2 {
					return nil, fmt.Errorf("relational: schema line %d: bad fk %q", lineNo, part)
				}
				fks = append(fks, ForeignKey{Attr: kv[0], RefRelation: kv[1]})
			}
		}
		s, err := NewSchema(name, attrs, key, fks...)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// DumpDir writes the database to dir: schema.txt plus one CSV per
// relation.
func (db *Database) DumpDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sf, err := os.Create(filepath.Join(dir, "schema.txt"))
	if err != nil {
		return err
	}
	if err := db.WriteSchemas(sf); err != nil {
		sf.Close()
		return err
	}
	if err := sf.Close(); err != nil {
		return err
	}
	for _, name := range db.RelationNames() {
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return err
		}
		if err := db.Relations[name].WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// LoadDir reads a database dumped with DumpDir: schema.txt declares the
// schemas, and each relation's tuples come from <relation>.csv.
func LoadDir(dir string) (*Database, error) {
	sf, err := os.Open(filepath.Join(dir, "schema.txt"))
	if err != nil {
		return nil, fmt.Errorf("relational: %w", err)
	}
	schemas, err := ReadSchemas(sf)
	sf.Close()
	if err != nil {
		return nil, err
	}
	db := NewDatabase(schemas...)
	for _, s := range schemas {
		f, err := os.Open(filepath.Join(dir, s.Name+".csv"))
		if err != nil {
			return nil, fmt.Errorf("relational: %w", err)
		}
		rel, err := ReadCSV(s, f)
		f.Close()
		if err != nil {
			return nil, err
		}
		db.Relations[s.Name] = rel
	}
	if err := db.Validate(); err != nil {
		return nil, err
	}
	return db, nil
}
