package relational

import (
	"bytes"
	"strings"
	"testing"
)

func TestSchemaRoundTrip(t *testing.T) {
	db := paperDatabase(t)
	var buf bytes.Buffer
	if err := db.WriteSchemas(&buf); err != nil {
		t.Fatal(err)
	}
	schemas, err := ReadSchemas(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(schemas) != 2 {
		t.Fatalf("schemas = %d", len(schemas))
	}
	byName := map[string]*Schema{}
	for _, s := range schemas {
		byName[s.Name] = s
	}
	item := byName["item"]
	if item == nil || item.Key != "item" || len(item.Attrs) != 6 {
		t.Fatalf("item schema = %+v", item)
	}
	if len(item.ForeignKeys) != 1 || item.ForeignKeys[0].RefRelation != "brand" {
		t.Errorf("item FKs = %+v", item.ForeignKeys)
	}
}

func TestReadSchemasErrors(t *testing.T) {
	cases := []string{
		"nonsense line here extra words\n",
		"relation r key=a attrs=a bogus=1 fks=\n",
		"relation r key=a attrs=a fks=broken\n",
		"relation r key=missing attrs=a fks=\n", // key not an attr
	}
	for _, c := range cases {
		if _, err := ReadSchemas(strings.NewReader(c)); err == nil {
			t.Errorf("input %q should fail", c)
		}
	}
	// Comments and blank lines are skipped.
	got, err := ReadSchemas(strings.NewReader("# c\n\nrelation r key=a attrs=a,b fks=\n"))
	if err != nil || len(got) != 1 {
		t.Errorf("comment handling: %v %v", got, err)
	}
}

func TestDumpLoadDir(t *testing.T) {
	db := paperDatabase(t)
	dir := t.TempDir()
	if err := db.DumpDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTuples() != db.NumTuples() {
		t.Fatalf("tuples %d vs %d", got.NumTuples(), db.NumTuples())
	}
	// Values and nulls round-trip.
	orig := db.Relation("item").Tuples[2]
	load := got.Relation("item").Tuples[2]
	for i := range orig.Values {
		if IsNull(orig.Values[i]) != IsNull(load.Values[i]) {
			t.Errorf("null mismatch at %d", i)
		}
	}
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("missing schema.txt should fail")
	}
}
