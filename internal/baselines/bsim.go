package baselines

import (
	"errors"
	"fmt"

	"her/internal/core"
	"her/internal/graph"
)

// ErrOutOfMemory reproduces the paper's "OM" outcome: bounded simulation
// materializes the full candidate relation and distance information for
// the entire G_D-as-pattern, which exceeds memory on every real dataset
// in Table V.
var ErrOutOfMemory = errors.New("bsim: memory budget exceeded")

// Bsim is bounded simulation (Fan et al., PVLDB 2010): G_D is taken as a
// graph pattern whose every edge may map to a path of length ≤ Bound in
// G, and the maximum relation satisfying the child condition is
// computed. It supports only APair-style whole-pattern matching — the
// paper marks SPair/VPair "NA" — and aborts with ErrOutOfMemory when the
// materialized state exceeds MemBudget entries.
type Bsim struct {
	// Bound is the edge-to-path bound b (default 2).
	Bound int
	// MemBudget caps the number of materialized relation + reachability
	// entries (default 1 << 22). The real systems' budget is physical
	// RAM; the cap makes the OM behaviour deterministic and testable.
	MemBudget int
	// LabelSim decides label compatibility (h_v-style, thresholded by
	// Sigma).
	LabelSim func(a, b string) float64
	Sigma    float64

	data *TrainingData
}

// Name implements Method.
func (b *Bsim) Name() string { return "Bsim" }

// Train implements Method; bounded simulation has nothing to learn.
func (b *Bsim) Train(data *TrainingData) error {
	if data == nil || data.GD == nil || data.G == nil {
		return fmt.Errorf("bsim: missing graphs")
	}
	b.data = data
	if b.Bound <= 0 {
		b.Bound = 2
	}
	if b.MemBudget <= 0 {
		b.MemBudget = 1 << 22
	}
	if b.LabelSim == nil {
		b.LabelSim = func(x, y string) float64 {
			if x == y {
				return 1
			}
			return 0
		}
	}
	if b.Sigma <= 0 {
		b.Sigma = 0.8
	}
	return nil
}

// SPair is not supported by bounded simulation (pattern matching has no
// single-pair mode); it always reports false.
func (b *Bsim) SPair(core.Pair) bool { return false }

// VPair is not supported; it always reports nil.
func (b *Bsim) VPair(graph.VID, []graph.VID) []graph.VID { return nil }

// APair computes the maximum bounded simulation relation and projects it
// onto the requested sources. It returns nil when the memory budget is
// exceeded (the Table V "OM" row); use Run for the explicit error.
func (b *Bsim) APair(sources []graph.VID, gen core.CandidateGen) []core.Pair {
	rel, err := b.Run()
	if err != nil {
		return nil
	}
	want := make(map[graph.VID]bool, len(sources))
	for _, u := range sources {
		want[u] = true
	}
	var out []core.Pair
	for p := range rel {
		if want[p.U] {
			out = append(out, p)
		}
	}
	return core.SortPairs(out)
}

// Run computes the maximum bounded simulation of pattern G_D in G.
func (b *Bsim) Run() (map[core.Pair]bool, error) {
	gd, g := b.data.GD, b.data.G
	budget := b.MemBudget

	// Reachability within Bound hops: for every data vertex, the set of
	// vertices reachable in ≤ Bound steps. This is the memory hog.
	reach := make([]map[graph.VID]bool, g.NumVertices())
	used := 0
	for v := 0; v < g.NumVertices(); v++ {
		m := make(map[graph.VID]bool)
		frontier := []graph.VID{graph.VID(v)}
		for d := 0; d < b.Bound; d++ {
			var next []graph.VID
			for _, x := range frontier {
				for _, e := range g.Out(x) {
					if !m[e.To] {
						m[e.To] = true
						used++
						if used > budget {
							return nil, ErrOutOfMemory
						}
						next = append(next, e.To)
					}
				}
			}
			frontier = next
		}
		reach[v] = m
	}

	// Initial relation: label-compatible pairs.
	rel := make(map[core.Pair]bool)
	for u := 0; u < gd.NumVertices(); u++ {
		for v := 0; v < g.NumVertices(); v++ {
			if b.LabelSim(gd.Label(graph.VID(u)), g.Label(graph.VID(v))) >= b.Sigma {
				rel[core.Pair{U: graph.VID(u), V: graph.VID(v)}] = true
				used++
				if used > budget {
					return nil, ErrOutOfMemory
				}
			}
		}
	}

	// Decreasing iteration: every pattern edge (u, u') must map to a
	// bounded path v ⇝ v' with (u', v') in the relation.
	for changed := true; changed; {
		changed = false
		for p := range rel {
			ok := true
			for _, e := range gd.Out(p.U) {
				found := false
				for v2 := range reach[p.V] {
					if rel[core.Pair{U: e.To, V: v2}] {
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
			if !ok {
				delete(rel, p)
				changed = true
			}
		}
	}
	return rel, nil
}
