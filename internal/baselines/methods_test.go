package baselines

import (
	"strings"
	"testing"

	"her/internal/core"
	"her/internal/embed"
	"her/internal/graph"
	"her/internal/learn"
)

func TestJedAIProfileContainsNameValuePairs(t *testing.T) {
	g := graph.New()
	e := g.AddVertex("item")
	v := g.AddVertex("red")
	g.MustAddEdge(e, v, "hasColor")
	j := &JedAI{}
	if err := j.Train(&TrainingData{GD: g, G: g}); err != nil {
		t.Fatal(err)
	}
	doc := j.profile(g, e)
	for _, want := range []string{"item", "hasColor", "red"} {
		if !strings.Contains(doc, want) {
			t.Errorf("profile %q missing %q", doc, want)
		}
	}
}

func TestJedAIScoreSymmetryOfIdenticalProfiles(t *testing.T) {
	gd := graph.New()
	u := gd.AddVertex("item")
	uv := gd.AddVertex("red")
	gd.MustAddEdge(u, uv, "color")
	g := graph.New()
	v := g.AddVertex("item")
	vv := g.AddVertex("red")
	g.MustAddEdge(v, vv, "color")
	j := &JedAI{}
	if err := j.Train(&TrainingData{GD: gd, G: g}); err != nil {
		t.Fatal(err)
	}
	if s := j.score(core.Pair{U: u, V: v}); s < 0.99 {
		t.Errorf("identical profiles score %f", s)
	}
}

func TestMAGNNEmbeddingDeterministic(t *testing.T) {
	g := graph.New()
	a := g.AddVertex("alpha")
	b := g.AddVertex("beta")
	g.MustAddEdge(a, b, "rel")
	m := &MAGNN{}
	td := &TrainingData{GD: g, G: g, Encoder: embed.NewEncoder(32),
		Train: []learn.Annotation{{Pair: core.Pair{U: a, V: a}, Match: true},
			{Pair: core.Pair{U: a, V: b}, Match: false}}}
	if err := m.Train(td); err != nil {
		t.Fatal(err)
	}
	e1 := m.embedVertex(g, a)
	e2 := m.embedVertex(g, a)
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("embedding not deterministic")
		}
	}
	// Self-similarity is maximal.
	if s := m.score(core.Pair{U: a, V: a}); s < 0.99 {
		t.Errorf("self score = %f", s)
	}
}

func TestMAGFeatureVectorShape(t *testing.T) {
	td, _, _ := smallData(t, "Synthetic", 30)
	m := &MAG{}
	if err := m.Train(td); err != nil {
		t.Fatal(err)
	}
	f := m.features(td.Train[0].Pair)
	if len(f) != 8 { // 3 sims × (mean,max) + 2 whole-record features
		t.Fatalf("feature vector length = %d", len(f))
	}
	for i, x := range f {
		if x < 0 || x > 1.0001 {
			t.Errorf("feature %d out of range: %f", i, x)
		}
	}
}

func TestDEEPFeatureVectorShape(t *testing.T) {
	td, _, _ := smallData(t, "Synthetic", 30)
	d := &DEEP{}
	if err := d.Train(td); err != nil {
		t.Fatal(err)
	}
	f := d.features(td.Train[0].Pair)
	if len(f) != 5 {
		t.Fatalf("feature vector length = %d", len(f))
	}
}

func TestBsimRespectsSigmaScorer(t *testing.T) {
	gd := graph.New()
	u := gd.AddVertex("Almost")
	g := graph.New()
	v := g.AddVertex("almost")
	b := &Bsim{Bound: 1, MemBudget: 1 << 12, Sigma: 0.5,
		LabelSim: func(a, bb string) float64 {
			if a == "Almost" && bb == "almost" {
				return 0.8
			}
			return 0
		}}
	if err := b.Train(&TrainingData{GD: gd, G: g}); err != nil {
		t.Fatal(err)
	}
	rel, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rel[core.Pair{U: u, V: v}] {
		t.Error("custom label scorer ignored")
	}
}

func TestLexMaNoCells(t *testing.T) {
	gd := graph.New()
	u := gd.AddVertex("lonely") // no outgoing cells
	g := graph.New()
	v := g.AddVertex("lonely")
	l := &LexMa{}
	if err := l.Train(&TrainingData{GD: gd, G: g}); err != nil {
		t.Fatal(err)
	}
	if l.SPair(core.Pair{U: u, V: v}) {
		t.Error("tuple without cells should not match")
	}
	if got := l.VPair(u, []graph.VID{v}); got != nil {
		t.Errorf("VPair without cells = %v", got)
	}
}

func TestGenericAPairSorted(t *testing.T) {
	td, _, d := smallData(t, "Synthetic", 30)
	m := &MAGNN{}
	if err := m.Train(td); err != nil {
		t.Fatal(err)
	}
	gen := func(graph.VID) []graph.VID { return d.EntityVertices[:5] }
	out := m.APair(d.TupleVertices[:3], gen)
	for i := 1; i < len(out); i++ {
		a, b := out[i-1], out[i]
		if a.U > b.U || (a.U == b.U && a.V >= b.V) {
			t.Fatalf("APair not sorted at %d: %v %v", i, a, b)
		}
	}
}
