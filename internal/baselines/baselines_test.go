package baselines

import (
	"testing"

	"her/internal/core"
	"her/internal/dataset"
	"her/internal/embed"
	"her/internal/graph"
	"her/internal/learn"
)

// smallData generates a small dataset and splits its annotations.
func smallData(t *testing.T, name string, entities int) (*TrainingData, []learn.Annotation, *dataset.Generated) {
	t.Helper()
	cfg, ok := dataset.ByName(name, entities)
	if !ok {
		t.Fatalf("unknown dataset %s", name)
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train, _, test, err := learn.Split(d.Truth, 0.6, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	td := &TrainingData{GD: d.GD, G: d.G, Train: train, Encoder: embed.NewEncoder(64)}
	return td, test, d
}

// evalF1 scores a method's SPair on annotations.
func evalF1(m Method, anns []learn.Annotation) float64 {
	return learn.Evaluate(func(p core.Pair) bool { return m.SPair(p) }, anns).F1()
}

func TestLearnedBaselinesBeatChance(t *testing.T) {
	td, test, _ := smallData(t, "Synthetic", 60)
	for _, m := range []Method{&MAG{}, &DEEP{}, &MAGNN{}, &JedAI{}} {
		if err := m.Train(td); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		f := evalF1(m, test)
		t.Logf("%s F1 = %.3f", m.Name(), f)
		if f < 0.5 {
			t.Errorf("%s F1 = %.3f, want ≥ 0.5", m.Name(), f)
		}
	}
}

func TestBaselinesRequireTraining(t *testing.T) {
	if err := (&MAG{}).Train(nil); err == nil {
		t.Error("MAG should require annotations")
	}
	if err := (&DEEP{}).Train(&TrainingData{}); err == nil {
		t.Error("DEEP should require annotations")
	}
	if err := (&MAGNN{}).Train(&TrainingData{}); err == nil {
		t.Error("MAGNN should require annotations")
	}
	if err := (&JedAI{}).Train(nil); err == nil {
		t.Error("JedAI should require graphs")
	}
	if err := (&LexMa{}).Train(nil); err == nil {
		t.Error("LexMa should require graphs")
	}
	if err := (&Bsim{}).Train(nil); err == nil {
		t.Error("Bsim should require graphs")
	}
}

func TestVPairAndAPairModes(t *testing.T) {
	td, test, d := smallData(t, "Synthetic", 40)
	m := &MAG{}
	if err := m.Train(td); err != nil {
		t.Fatal(err)
	}
	// VPair is consistent with SPair.
	var u graph.VID
	for _, a := range test {
		u = a.Pair.U
		break
	}
	cands := d.EntityVertices
	got := m.VPair(u, cands)
	for _, v := range got {
		if !m.SPair(core.Pair{U: u, V: v}) {
			t.Errorf("VPair returned a pair SPair rejects: (%d,%d)", u, v)
		}
	}
	// APair over two sources with a static candidate generator.
	gen := func(graph.VID) []graph.VID { return cands }
	all := m.APair(d.TupleVertices[:2], gen)
	for _, p := range all {
		if !m.SPair(p) {
			t.Errorf("APair returned a pair SPair rejects: %v", p)
		}
	}
}

func TestLexMaIndependentCells(t *testing.T) {
	// On the typo-heavy 2T shape, independent lexical cell votes must be
	// clearly weaker than the learned methods — the Table V shape.
	td, test, _ := smallData(t, "2T", 80)
	m := &LexMa{}
	if err := m.Train(td); err != nil {
		t.Fatal(err)
	}
	f := evalF1(m, test)
	t.Logf("LexMa F1 on 2T = %.3f", f)
	if f > 0.9 {
		t.Errorf("LexMa F1 = %.3f; independent cell votes should degrade on noisy data", f)
	}
}

func TestBsimRunsOnTinyGraphs(t *testing.T) {
	gd := graph.New()
	u1 := gd.AddVertex("A")
	u2 := gd.AddVertex("B")
	gd.MustAddEdge(u1, u2, "e")
	g := graph.New()
	v1 := g.AddVertex("A")
	vm := g.AddVertex("M")
	v2 := g.AddVertex("B")
	g.MustAddEdge(v1, vm, "x")
	g.MustAddEdge(vm, v2, "y")
	b := &Bsim{Bound: 2, MemBudget: 1 << 16, Sigma: 1}
	if err := b.Train(&TrainingData{GD: gd, G: g}); err != nil {
		t.Fatal(err)
	}
	rel, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	// (u1, v1) holds: edge u1→u2 maps to the 2-hop path v1→vm→v2.
	if !rel[core.Pair{U: u1, V: v1}] {
		t.Errorf("bounded simulation missed (u1,v1): %v", rel)
	}
	// With bound 1 it must fail.
	b1 := &Bsim{Bound: 1, MemBudget: 1 << 16, Sigma: 1}
	if err := b1.Train(&TrainingData{GD: gd, G: g}); err != nil {
		t.Fatal(err)
	}
	rel1, err := b1.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rel1[core.Pair{U: u1, V: v1}] {
		t.Error("bound-1 simulation should reject the 2-hop mapping")
	}
	// SPair/VPair are unsupported (Table VI "NA").
	if b.SPair(core.Pair{U: u1, V: v1}) {
		t.Error("Bsim SPair should be unsupported")
	}
	if b.VPair(u1, nil) != nil {
		t.Error("Bsim VPair should be unsupported")
	}
}

func TestBsimOutOfMemory(t *testing.T) {
	td, _, _ := smallData(t, "Synthetic", 60)
	b := &Bsim{Bound: 2, MemBudget: 1000}
	if err := b.Train(td); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(); err != ErrOutOfMemory {
		t.Errorf("expected OM, got %v", err)
	}
	if got := b.APair(nil, nil); got != nil {
		t.Errorf("OM APair should be nil, got %d pairs", len(got))
	}
}

func TestTuneThreshold(t *testing.T) {
	// Scores separate perfectly at 0.5.
	scores := []float64{0.9, 0.8, 0.7, 0.3, 0.2, 0.1}
	truth := []bool{true, true, true, false, false, false}
	th := tuneThreshold(scores, truth)
	if th <= 0.3 || th >= 0.7 {
		t.Errorf("threshold = %f, want in (0.3, 0.7)", th)
	}
	// All negatives: any threshold, must not panic.
	tuneThreshold([]float64{0.5, 0.4}, []bool{false, false})
	// Ties.
	tuneThreshold([]float64{0.5, 0.5, 0.5}, []bool{true, false, true})
}

func TestFlatten(t *testing.T) {
	g := graph.New()
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	c := g.AddVertex("c")
	g.MustAddEdge(a, b, "e1")
	g.MustAddEdge(b, c, "e2")
	if got := flatten(g, a, 1); len(got) != 2 {
		t.Errorf("1-hop flatten = %v", got)
	}
	if got := flatten(g, a, 2); len(got) != 3 {
		t.Errorf("2-hop flatten = %v", got)
	}
	if flatText([]string{"x", "y"}) != "x y" {
		t.Error("flatText wrong")
	}
}

func TestGram3Cosine(t *testing.T) {
	if s := gram3Cosine("hello", "hello"); s < 0.999 {
		t.Errorf("identical strings = %f", s)
	}
	if s := gram3Cosine("abc", ""); s != 0 {
		t.Errorf("empty side = %f", s)
	}
	if s := gram3Cosine("hello", "help"); s <= 0 || s >= 1 {
		t.Errorf("related strings = %f", s)
	}
}

func TestRandomForest(t *testing.T) {
	// Learn x0 > 0.5.
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		v := float64(i%100) / 100
		x = append(x, []float64{v, float64(i % 7)})
		if v > 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	f := trainForest(x, y, defaultRFConfig())
	correct := 0
	for i := range x {
		p := f.predict(x[i])
		if (p >= 0.5) == (y[i] >= 0.5) {
			correct++
		}
	}
	if float64(correct)/float64(len(x)) < 0.95 {
		t.Errorf("forest accuracy = %d/%d", correct, len(x))
	}
	// Degenerate inputs.
	empty := trainForest(nil, nil, defaultRFConfig())
	if empty.predict([]float64{1}) != 0 {
		t.Error("empty forest should predict 0")
	}
}
