package baselines

import (
	"fmt"

	"her/internal/core"
	"her/internal/graph"
	"her/internal/text"
)

// JedAI is the rule-based baseline configured as the paper describes:
// the "budget- and schema-agnostic workflow" that turns every input
// entity into a profile of name-value pairs and compares profiles with
// character 4-grams under TF-IDF weights and cosine similarity. No
// parameter fine-tuning is required; the decision threshold is the
// package's published default.
type JedAI struct {
	// Threshold is the profile-cosine cutoff (default 0.2, playing the
	// role of JedAI's default similarity threshold; profiles over large
	// neighborhoods dilute the cosine scale).
	Threshold float64
	// Hops bounds how much of the graph neighborhood enters a profile
	// (default 2).
	Hops int

	data   *TrainingData
	corpus *text.Corpus
}

// Name implements Method.
func (j *JedAI) Name() string { return "JedAI" }

// Train builds the TF-IDF corpus over all profiles; the annotations are
// ignored (rule-based method).
func (j *JedAI) Train(data *TrainingData) error {
	if data == nil || data.GD == nil || data.G == nil {
		return fmt.Errorf("jedai: missing graphs")
	}
	j.data = data
	if j.Threshold <= 0 {
		j.Threshold = 0.2
	}
	if j.Hops <= 0 {
		j.Hops = 2
	}
	j.corpus = text.NewCorpus(4)
	for v := 0; v < data.GD.NumVertices(); v++ {
		if !data.GD.IsLeaf(graph.VID(v)) {
			j.corpus.Add(j.profile(data.GD, graph.VID(v)))
		}
	}
	for v := 0; v < data.G.NumVertices(); v++ {
		if !data.G.IsLeaf(graph.VID(v)) {
			j.corpus.Add(j.profile(data.G, graph.VID(v)))
		}
	}
	return nil
}

// profile serializes an entity into its name-value-pair document: for
// each property within Hops, the edge label (the "name") and the target
// label (the "value").
func (j *JedAI) profile(g *graph.Graph, v graph.VID) string {
	doc := g.Label(v)
	type item struct {
		v graph.VID
		d int
	}
	seen := map[graph.VID]bool{v: true}
	queue := []item{{v, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.d >= j.Hops {
			continue
		}
		for _, e := range g.Out(cur.v) {
			doc += " " + e.Label + " " + g.Label(e.To)
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, item{e.To, cur.d + 1})
			}
		}
	}
	return doc
}

func (j *JedAI) score(p core.Pair) float64 {
	a := j.corpus.Vector(j.profile(j.data.GD, p.U))
	b := j.corpus.Vector(j.profile(j.data.G, p.V))
	return text.Cosine(a, b)
}

func (j *JedAI) threshold() float64 { return j.Threshold }

// SPair implements Method.
func (j *JedAI) SPair(p core.Pair) bool { return genericSPair(j, p) }

// VPair implements Method.
func (j *JedAI) VPair(u graph.VID, candidates []graph.VID) []graph.VID {
	return genericVPair(j, u, candidates)
}

// APair implements Method.
func (j *JedAI) APair(sources []graph.VID, gen core.CandidateGen) []core.Pair {
	return genericAPair(j, sources, gen)
}
