package baselines

import (
	"fmt"

	"her/internal/core"
	"her/internal/graph"
	"her/internal/text"
)

// LexMa is the lexical cell-matching baseline: each attribute value
// (cell) of the tuple is looked up independently among the graph's
// vertex labels by normalized lexical equality, and the cell votes for
// every entity adjacent to a matching value vertex. A pair is declared a
// match when the vertex collects the (strict) majority of the tuple's
// cell votes. Because cells vote independently — the method never checks
// the semantic relations between them — common values ("London", years,
// colors) scatter votes to unrelated entities, reproducing the low
// precision Table V reports ("cells in the same tuple may be mapped to
// disconnected and different entities").
type LexMa struct {
	data *TrainingData
	// byLabel indexes G's vertices by their normalized label.
	byLabel map[string][]graph.VID
}

// Name implements Method.
func (l *LexMa) Name() string { return "LexMa" }

// Train builds the label lookup; annotations are ignored (lexical
// technique).
func (l *LexMa) Train(data *TrainingData) error {
	if data == nil || data.GD == nil || data.G == nil {
		return fmt.Errorf("lexma: missing graphs")
	}
	l.data = data
	l.byLabel = make(map[string][]graph.VID)
	for v := 0; v < data.G.NumVertices(); v++ {
		key := text.NormalizeLabel(data.G.Label(graph.VID(v)))
		l.byLabel[key] = append(l.byLabel[key], graph.VID(v))
	}
	return nil
}

// votes maps each entity vertex to the number of cells of u that
// lexically land on it. Faithful to LexMa's failure mode, each cell is
// mapped INDEPENDENTLY to a single graph entity: the first exact
// normalized-label hit, attributed to its first in-neighbor owner. With
// common values ("London", years, colors) the arbitrary owner is usually
// the wrong entity, so votes scatter — the paper's "cells in the same
// tuple may be mapped to disconnected and different entities".
func (l *LexMa) votes(u graph.VID) map[graph.VID]int {
	out := make(map[graph.VID]int)
	cells := l.data.GD.Out(u)
	for _, cell := range cells {
		key := text.NormalizeLabel(l.data.GD.Label(cell.To))
		if key == "" {
			continue
		}
		hits := l.byLabel[key]
		if len(hits) == 0 {
			continue
		}
		hit := hits[0]
		if owners := l.data.G.In(hit); len(owners) > 0 {
			// Every entity carrying this value is an equally plausible
			// cell target — "a cell 'London' may be mapped to different
			// 'London's" — which is what destroys precision.
			for _, o := range owners {
				out[o]++
			}
		} else if !l.data.G.IsLeaf(hit) {
			out[hit]++
		}
	}
	return out
}

// decide reduces the independent cell matches to one entity: the vote
// argmax with ties broken arbitrarily (lowest id). This is the step the
// paper identifies as hopeless — "given such 'independent' cell matches
// of one tuple, one can hardly decide to which entity the tuple should
// be mapped" — since common values hand equal votes to many entities.
func (l *LexMa) decide(u graph.VID) (graph.VID, bool) {
	votes := l.votes(u)
	best := graph.NoVertex
	bestVotes := 0
	for v, c := range votes {
		if c > bestVotes || (c == bestVotes && best != graph.NoVertex && v < best) {
			best, bestVotes = v, c
		}
	}
	return best, bestVotes > 0
}

// SPair implements Method.
func (l *LexMa) SPair(p core.Pair) bool {
	winner, ok := l.decide(p.U)
	return ok && winner == p.V
}

// VPair implements Method.
func (l *LexMa) VPair(u graph.VID, candidates []graph.VID) []graph.VID {
	winner, ok := l.decide(u)
	if !ok {
		return nil
	}
	for _, v := range candidates {
		if v == winner {
			return []graph.VID{winner}
		}
	}
	return nil
}

// APair implements Method.
func (l *LexMa) APair(sources []graph.VID, gen core.CandidateGen) []core.Pair {
	var out []core.Pair
	for _, u := range sources {
		var cands []graph.VID
		if gen != nil {
			cands = gen(u)
		}
		for _, v := range l.VPair(u, cands) {
			out = append(out, core.Pair{U: u, V: v})
		}
	}
	return out
}
