package baselines

import (
	"math"
	"math/rand"
	"sort"

	"her/internal/feq"
)

// forest is a small random forest (bagged CART trees with random feature
// subsets and gini splits), the classifier behind the MAG baseline.
type forest struct {
	trees []*rfNode
}

type rfNode struct {
	leaf   bool
	prob   float64
	feat   int
	thresh float64
	left   *rfNode
	right  *rfNode
}

type rfConfig struct {
	trees    int
	maxDepth int
	minLeaf  int
	seed     int64
}

func defaultRFConfig() rfConfig {
	return rfConfig{trees: 20, maxDepth: 6, minLeaf: 2, seed: 1}
}

func trainForest(x [][]float64, y []float64, cfg rfConfig) *forest {
	if cfg.trees <= 0 {
		cfg.trees = 20
	}
	if cfg.maxDepth <= 0 {
		cfg.maxDepth = 6
	}
	if cfg.minLeaf <= 0 {
		cfg.minLeaf = 1
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	f := &forest{}
	n := len(x)
	if n == 0 {
		return f
	}
	d := len(x[0])
	mtry := int(math.Sqrt(float64(d)))
	if mtry < 1 {
		mtry = 1
	}
	for t := 0; t < cfg.trees; t++ {
		// Bootstrap sample.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		f.trees = append(f.trees, growTree(x, y, idx, cfg, mtry, rng, 0))
	}
	return f
}

func growTree(x [][]float64, y []float64, idx []int, cfg rfConfig, mtry int, rng *rand.Rand, depth int) *rfNode {
	pos := 0
	for _, i := range idx {
		if y[i] >= 0.5 {
			pos++
		}
	}
	prob := float64(pos) / float64(len(idx))
	if depth >= cfg.maxDepth || len(idx) <= cfg.minLeaf || pos == 0 || pos == len(idx) {
		return &rfNode{leaf: true, prob: prob}
	}
	d := len(x[0])
	bestGain := 0.0
	bestFeat, bestThresh := -1, 0.0
	baseGini := gini(prob)
	feats := rng.Perm(d)[:mtry]
	for _, f := range feats {
		vals := make([]float64, len(idx))
		for i, ix := range idx {
			vals[i] = x[ix][f]
		}
		sort.Float64s(vals)
		// Candidate thresholds: up to 8 quantile midpoints.
		step := len(vals) / 9
		if step < 1 {
			step = 1
		}
		for q := step; q < len(vals); q += step {
			if feq.Eq(vals[q], vals[q-1]) {
				continue
			}
			th := (vals[q] + vals[q-1]) / 2
			lp, ln, rp, rn := 0, 0, 0, 0
			for _, ix := range idx {
				if x[ix][f] < th {
					if y[ix] >= 0.5 {
						lp++
					} else {
						ln++
					}
				} else {
					if y[ix] >= 0.5 {
						rp++
					} else {
						rn++
					}
				}
			}
			l, r := lp+ln, rp+rn
			if l == 0 || r == 0 {
				continue
			}
			gl := gini(float64(lp) / float64(l))
			gr := gini(float64(rp) / float64(r))
			gain := baseGini - (float64(l)*gl+float64(r)*gr)/float64(len(idx))
			if gain > bestGain {
				bestGain, bestFeat, bestThresh = gain, f, th
			}
		}
	}
	if bestFeat < 0 {
		return &rfNode{leaf: true, prob: prob}
	}
	var li, ri []int
	for _, ix := range idx {
		if x[ix][bestFeat] < bestThresh {
			li = append(li, ix)
		} else {
			ri = append(ri, ix)
		}
	}
	return &rfNode{
		feat: bestFeat, thresh: bestThresh,
		left:  growTree(x, y, li, cfg, mtry, rng, depth+1),
		right: growTree(x, y, ri, cfg, mtry, rng, depth+1),
	}
}

func gini(p float64) float64 { return 2 * p * (1 - p) }

// predict returns the mean positive probability across trees.
func (f *forest) predict(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	var s float64
	for _, t := range f.trees {
		s += t.predict(x)
	}
	return s / float64(len(f.trees))
}

func (n *rfNode) predict(x []float64) float64 {
	for !n.leaf {
		if x[n.feat] < n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.prob
}
