// Package baselines re-implements the comparison methods of Section VII
// (Exp-1/Exp-2): bounded simulation (Bsim), the rule-based JedAI
// workflow, the Magellan random-forest matcher (MAG), the
// DeepMatcher-style neural matcher (DEEP), the MAGNN-style metapath
// embedding matcher, and the LexMa lexical cell matcher. Each follows
// the configuration the paper describes, adapted to this repository's
// substrates (DESIGN.md systems S13–S18).
package baselines

import (
	"sort"
	"strings"

	"her/internal/core"
	"her/internal/embed"
	"her/internal/feq"
	"her/internal/graph"
	"her/internal/learn"
)

// TrainingData is what a baseline may learn from: the two graphs, the
// training annotations (same ones HER uses), and a shared encoder.
type TrainingData struct {
	GD, G   *graph.Graph
	Train   []learn.Annotation
	Encoder *embed.Encoder
}

// Method is a baseline entity matcher over (G_D, G).
type Method interface {
	Name() string
	// Train fits the method; rule-based methods may ignore the
	// annotations.
	Train(data *TrainingData) error
	// SPair decides one pair.
	SPair(p core.Pair) bool
	// VPair finds all matches of one G_D vertex among the candidates.
	VPair(u graph.VID, candidates []graph.VID) []graph.VID
	// APair finds all matches for the given sources and candidate
	// generator.
	APair(sources []graph.VID, gen core.CandidateGen) []core.Pair
}

// pairScorer is the common shape of score-and-threshold matchers; the
// generic mode implementations below are built on it.
type pairScorer interface {
	score(p core.Pair) float64
	threshold() float64
}

func genericSPair(s pairScorer, p core.Pair) bool {
	return s.score(p) >= s.threshold()
}

func genericVPair(s pairScorer, u graph.VID, candidates []graph.VID) []graph.VID {
	var out []graph.VID
	for _, v := range candidates {
		if genericSPair(s, core.Pair{U: u, V: v}) {
			out = append(out, v)
		}
	}
	return out
}

func genericAPair(s pairScorer, sources []graph.VID, gen core.CandidateGen) []core.Pair {
	var out []core.Pair
	for _, u := range sources {
		var cands []graph.VID
		if gen != nil {
			cands = gen(u)
		}
		for _, v := range cands {
			p := core.Pair{U: u, V: v}
			if genericSPair(s, p) {
				out = append(out, p)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].U != out[b].U {
			return out[a].U < out[b].U
		}
		return out[a].V < out[b].V
	})
	return out
}

// flatten packs a vertex and its neighbors within the given hop count
// into a pseudo-tuple of label strings — the preprocessing the paper
// applies so relational matchers (MAG, DEEP) can consume graph vertices
// ("we took v along with its 2-hop neighbors and flattened them into a
// tuple t_v").
func flatten(g *graph.Graph, v graph.VID, hops int) []string {
	var fields []string
	type item struct {
		v graph.VID
		d int
	}
	seen := map[graph.VID]bool{v: true}
	queue := []item{{v, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		fields = append(fields, g.Label(cur.v))
		if cur.d >= hops {
			continue
		}
		for _, e := range g.Out(cur.v) {
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, item{e.To, cur.d + 1})
			}
		}
	}
	return fields
}

// flatText joins a flattened pseudo-tuple into one document.
func flatText(fields []string) string { return strings.Join(fields, " ") }

// bestFieldSim returns the maximum of sim(a, field) over the fields.
func bestFieldSim(a string, fields []string, sim func(x, y string) float64) float64 {
	best := 0.0
	for _, f := range fields {
		if s := sim(a, f); s > best {
			best = s
		}
	}
	return best
}

// tuneThreshold picks the score cutoff maximizing F1 on the training
// annotations — the "random parameter search on the validation set" the
// paper applies to every learned baseline.
func tuneThreshold(scores []float64, truth []bool) float64 {
	type sc struct {
		s float64
		m bool
	}
	items := make([]sc, len(scores))
	totalPos := 0
	for i := range scores {
		items[i] = sc{scores[i], truth[i]}
		if truth[i] {
			totalPos++
		}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].s > items[b].s })
	bestF, bestT := -1.0, 0.5
	tp, fp := 0, 0
	for i, it := range items {
		if it.m {
			tp++
		} else {
			fp++
		}
		// Threshold just below items[i].s keeps items[0..i].
		if i+1 < len(items) && feq.Eq(items[i+1].s, it.s) {
			continue
		}
		if tp == 0 {
			continue
		}
		prec := float64(tp) / float64(tp+fp)
		rec := float64(tp) / float64(totalPos)
		f := 2 * prec * rec / (prec + rec)
		if f > bestF {
			bestF = f
			if i+1 < len(items) {
				bestT = (it.s + items[i+1].s) / 2
			} else {
				bestT = it.s - 1e-9
			}
		}
	}
	return bestT
}
