package baselines

import (
	"fmt"
	"math"

	"her/internal/core"
	"her/internal/graph"
	"her/internal/text"
)

// MAG is the Magellan-style baseline: hand-built feature tables over the
// tuple's attribute values vs the flattened 2-hop pseudo-tuple of the
// graph vertex, classified by a random forest, with the decision
// threshold tuned on the training annotations.
type MAG struct {
	Hops int // flattening depth (default 2)

	data   *TrainingData
	model  *forest
	cutoff float64
}

// Name implements Method.
func (m *MAG) Name() string { return "MAG" }

// features builds the Magellan-style feature vector of one pair: for
// each of the tuple side's fields (its label and attribute values), the
// best Levenshtein, Jaccard and 3-gram-cosine similarity against the
// flattened graph fields, aggregated as (mean, max), plus whole-record
// similarities.
func (m *MAG) features(p core.Pair) []float64 {
	uFields := flatten(m.data.GD, p.U, 1) // tuple vertex + its attributes
	vFields := flatten(m.data.G, p.V, m.Hops)
	sims := []func(a, b string) float64{
		text.LevenshteinSim,
		text.JaccardTokens,
		gram3Cosine,
	}
	out := make([]float64, 0, 2*len(sims)+2)
	for _, sim := range sims {
		var sum, max float64
		for _, a := range uFields {
			s := bestFieldSim(a, vFields, sim)
			sum += s
			if s > max {
				max = s
			}
		}
		out = append(out, sum/float64(len(uFields)), max)
	}
	// Whole-record features.
	ua, va := flatText(uFields), flatText(vFields)
	out = append(out, text.JaccardTokens(ua, va), text.OverlapTokens(ua, va))
	return out
}

func gram3Cosine(a, b string) float64 {
	ga, gb := text.NGrams(a, 3), text.NGrams(b, 3)
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	sa := map[string]int{}
	for _, g := range ga {
		sa[g]++
	}
	sb := map[string]int{}
	for _, g := range gb {
		sb[g]++
	}
	var dot, na, nb float64
	for g, c := range sa {
		dot += float64(c * sb[g])
		na += float64(c * c)
	}
	for _, c := range sb {
		nb += float64(c * c)
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Train fits the random forest on the training annotations.
func (m *MAG) Train(data *TrainingData) error {
	if data == nil || len(data.Train) == 0 {
		return fmt.Errorf("mag: needs training annotations")
	}
	m.data = data
	if m.Hops <= 0 {
		m.Hops = 2
	}
	var x [][]float64
	var y []float64
	for _, a := range data.Train {
		x = append(x, m.features(a.Pair))
		if a.Match {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	m.model = trainForest(x, y, defaultRFConfig())
	scores := make([]float64, len(x))
	truth := make([]bool, len(x))
	for i := range x {
		scores[i] = m.model.predict(x[i])
		truth[i] = y[i] >= 0.5
	}
	m.cutoff = tuneThreshold(scores, truth)
	return nil
}

func (m *MAG) score(p core.Pair) float64 { return m.model.predict(m.features(p)) }
func (m *MAG) threshold() float64        { return m.cutoff }

// SPair implements Method.
func (m *MAG) SPair(p core.Pair) bool { return genericSPair(m, p) }

// VPair implements Method.
func (m *MAG) VPair(u graph.VID, candidates []graph.VID) []graph.VID {
	return genericVPair(m, u, candidates)
}

// APair implements Method.
func (m *MAG) APair(sources []graph.VID, gen core.CandidateGen) []core.Pair {
	return genericAPair(m, sources, gen)
}
