package baselines

import (
	"fmt"

	"her/internal/core"
	"her/internal/embed"
	"her/internal/graph"
	"her/internal/nn"
)

// DEEP is the DeepMatcher-style baseline: each side of a pair is
// summarized by attribute-level embeddings (the "hybrid" model's
// aggregated representations), compared with the standard
// [x1, x2, |x1-x2|, x1⊙x2] composition and classified by an MLP trained
// on the annotations.
type DEEP struct {
	Hops   int // flattening depth (default 2)
	Hidden int // classifier hidden width (default 32)
	Epochs int // training epochs (default 40)
	Seed   int64

	data   *TrainingData
	model  *nn.MLP
	cutoff float64
}

// Name implements Method.
func (d *DEEP) Name() string { return "DEEP" }

// encode embeds one side as the normalized sum of its field embeddings.
func (d *DEEP) encode(g *graph.Graph, v graph.VID, hops int) []float64 {
	fields := flatten(g, v, hops)
	acc := make([]float64, d.data.Encoder.Dim())
	for _, f := range fields {
		embed.Add(acc, d.data.Encoder.Embed(f))
	}
	return embed.Normalize(acc)
}

func (d *DEEP) features(p core.Pair) []float64 {
	x1 := d.encode(d.data.GD, p.U, 1)
	x2 := d.encode(d.data.G, p.V, d.Hops)
	// Hybrid model, pooled: record-level embedding composition statistics
	// plus attribute-summarization signals (per-attribute best embedding
	// similarity against the flattened fields), as DeepMatcher's hybrid
	// variant combines summaries with attribute alignment. The pooled
	// head keeps the capacity matched to the small training sets.
	cos := embed.Cosine(x1, x2)
	diff := embed.AbsDiff(x1, x2)
	had := embed.Hadamard(x1, x2)
	var diffMean, hadMean float64
	for i := range diff {
		diffMean += diff[i]
		hadMean += had[i]
	}
	diffMean /= float64(len(diff))
	hadMean /= float64(len(had))

	uFields := flatten(d.data.GD, p.U, 1)
	vFields := flatten(d.data.G, p.V, d.Hops)
	vEmb := make([][]float64, len(vFields))
	for i, f := range vFields {
		vEmb[i] = d.data.Encoder.Embed(f)
	}
	var sum, max float64
	for _, uf := range uFields {
		ue := d.data.Encoder.Embed(uf)
		best := 0.0
		for _, ve := range vEmb {
			if c := embed.Cosine(ue, ve); c > best {
				best = c
			}
		}
		sum += best
		if best > max {
			max = best
		}
	}
	mean := 0.0
	if len(uFields) > 0 {
		mean = sum / float64(len(uFields))
	}
	return []float64{cos, diffMean, hadMean, mean, max}
}

// Train fits the classifier on the training annotations.
func (d *DEEP) Train(data *TrainingData) error {
	if data == nil || len(data.Train) == 0 {
		return fmt.Errorf("deep: needs training annotations")
	}
	if data.Encoder == nil {
		return fmt.Errorf("deep: needs an encoder")
	}
	d.data = data
	if d.Hops <= 0 {
		d.Hops = 2
	}
	if d.Hidden <= 0 {
		d.Hidden = 32
	}
	if d.Epochs <= 0 {
		d.Epochs = 120
	}
	if d.Seed == 0 {
		d.Seed = 1
	}
	var samples []nn.Sample
	for _, a := range data.Train {
		y := 0.0
		if a.Match {
			y = 1
		}
		samples = append(samples, nn.Sample{X: d.features(a.Pair), Y: y})
	}
	d.model = nn.MustMLP([]int{5, d.Hidden, 1}, nn.ReLU, d.Seed)
	d.model.TrainBCE(samples, nn.TrainConfig{
		Epochs: d.Epochs, LearnRate: 0.005, BatchSize: 8, Seed: d.Seed,
	})
	scores := make([]float64, len(samples))
	truth := make([]bool, len(samples))
	for i, s := range samples {
		scores[i] = d.model.Score(s.X)
		truth[i] = s.Y >= 0.5
	}
	d.cutoff = tuneThreshold(scores, truth)
	return nil
}

func (d *DEEP) score(p core.Pair) float64 { return d.model.Score(d.features(p)) }
func (d *DEEP) threshold() float64        { return d.cutoff }

// SPair implements Method.
func (d *DEEP) SPair(p core.Pair) bool { return genericSPair(d, p) }

// VPair implements Method.
func (d *DEEP) VPair(u graph.VID, candidates []graph.VID) []graph.VID {
	return genericVPair(d, u, candidates)
}

// APair implements Method.
func (d *DEEP) APair(sources []graph.VID, gen core.CandidateGen) []core.Pair {
	return genericAPair(d, sources, gen)
}
