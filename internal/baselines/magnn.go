package baselines

import (
	"fmt"

	"her/internal/core"
	"her/internal/embed"
	"her/internal/graph"
)

// MAGNN is the metapath-aggregated embedding baseline: a vertex is
// represented by its own label embedding combined with hop-discounted
// aggregates of its metapath neighborhoods (1 and 2 hops), pairs are
// scored by cosine similarity, and the decision threshold is tuned on
// the training annotations — a GNN-free but faithful rendition of
// "learns vertex embeddings for similarity, with vertex attributes and
// meta-paths", which (like all local-embedding methods) sees only a
// bounded neighborhood.
type MAGNN struct {
	HopWeights []float64 // default {1, 0.5, 0.25} for hops 0, 1, 2

	data   *TrainingData
	cutoff float64
}

// Name implements Method.
func (m *MAGNN) Name() string { return "MAGNN" }

// embedVertex computes the metapath-aggregated embedding.
func (m *MAGNN) embedVertex(g *graph.Graph, v graph.VID) []float64 {
	dim := m.data.Encoder.Dim()
	acc := make([]float64, dim)
	type item struct {
		v graph.VID
		d int
	}
	seen := map[graph.VID]bool{v: true}
	queue := []item{{v, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		w := m.HopWeights[cur.d]
		lv := m.data.Encoder.Embed(g.Label(cur.v))
		for i := range acc {
			acc[i] += w * lv[i]
		}
		if cur.d+1 >= len(m.HopWeights) {
			continue
		}
		for _, e := range g.Out(cur.v) {
			// Metapath context: the edge label participates in the
			// aggregate with the hop's weight.
			le := m.data.Encoder.Embed(e.Label)
			for i := range acc {
				acc[i] += 0.5 * m.HopWeights[cur.d+1] * le[i]
			}
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, item{e.To, cur.d + 1})
			}
		}
	}
	return embed.Normalize(acc)
}

// Train tunes the cosine threshold on the annotations.
func (m *MAGNN) Train(data *TrainingData) error {
	if data == nil || len(data.Train) == 0 {
		return fmt.Errorf("magnn: needs training annotations")
	}
	if data.Encoder == nil {
		return fmt.Errorf("magnn: needs an encoder")
	}
	m.data = data
	if len(m.HopWeights) == 0 {
		m.HopWeights = []float64{1, 0.5, 0.25}
	}
	scores := make([]float64, len(data.Train))
	truth := make([]bool, len(data.Train))
	for i, a := range data.Train {
		scores[i] = m.score(a.Pair)
		truth[i] = a.Match
	}
	m.cutoff = tuneThreshold(scores, truth)
	return nil
}

func (m *MAGNN) score(p core.Pair) float64 {
	c := embed.Cosine(m.embedVertex(m.data.GD, p.U), m.embedVertex(m.data.G, p.V))
	if c < 0 {
		return 0
	}
	return c
}

func (m *MAGNN) threshold() float64 { return m.cutoff }

// SPair implements Method.
func (m *MAGNN) SPair(p core.Pair) bool { return genericSPair(m, p) }

// VPair implements Method.
func (m *MAGNN) VPair(u graph.VID, candidates []graph.VID) []graph.VID {
	return genericVPair(m, u, candidates)
}

// APair implements Method.
func (m *MAGNN) APair(sources []graph.VID, gen core.CandidateGen) []core.Pair {
	return genericAPair(m, sources, gen)
}
