package ranking

import (
	"math"
	"testing"

	"her/internal/embed"
	"her/internal/graph"
	"her/internal/lstm"
)

// chainGraph: root → a → b → c where a and b have out-degree 1, plus a
// bushy sibling: root → hub → {x1..x4}.
func chainGraph() (*graph.Graph, map[string]graph.VID) {
	g := graph.New()
	vs := map[string]graph.VID{}
	for _, n := range []string{"root", "a", "b", "c", "hub", "x1", "x2", "x3", "x4"} {
		vs[n] = g.AddVertex(n)
	}
	g.MustAddEdge(vs["root"], vs["a"], "factorySite")
	g.MustAddEdge(vs["a"], vs["b"], "isIn")
	g.MustAddEdge(vs["b"], vs["c"], "isIn")
	g.MustAddEdge(vs["root"], vs["hub"], "brandName")
	for _, x := range []string{"x1", "x2", "x3", "x4"} {
		g.MustAddEdge(vs["hub"], vs[x], "related")
	}
	return g, vs
}

func TestPRA(t *testing.T) {
	g, vs := chainGraph()
	p := graph.SingleVertexPath(vs["root"]).
		Extend(graph.Edge{To: vs["a"], Label: "factorySite"}).
		Extend(graph.Edge{To: vs["b"], Label: "isIn"})
	// root has 2 children, a has 1: R = 1/2 * 1 = 0.5.
	if got := PRA(g, p); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("PRA = %f, want 0.5", got)
	}
	if got := PRA(g, graph.SingleVertexPath(vs["root"])); got != 1 {
		t.Errorf("PRA of zero-length path = %f", got)
	}
}

func TestPRAMonotoneNonIncreasing(t *testing.T) {
	g, vs := chainGraph()
	g.SimplePaths(vs["root"], 3, func(p graph.Path) bool {
		if p.Len() < 2 {
			return true
		}
		longer := PRA(g, p)
		shorter := PRA(g, p.Prefix(p.Len()-1))
		if longer > shorter+1e-12 {
			t.Errorf("PRA increased on extension: %f → %f for %v", shorter, longer, p.Vertices)
		}
		return true
	})
}

func TestTopKFallbackGreedy(t *testing.T) {
	g, vs := chainGraph()
	r := NewRanker(g, nil, 4)
	sel := r.TopK(vs["root"], 5)
	// Two outgoing edges → two paths. The chain extends through
	// out-degree-1 vertices: factorySite isIn isIn → c; brandName stops
	// at hub (out-degree 4).
	if len(sel) != 2 {
		t.Fatalf("TopK = %+v", sel)
	}
	byDesc := map[graph.VID]Selected{}
	for _, s := range sel {
		byDesc[s.Desc] = s
	}
	chain, ok := byDesc[vs["c"]]
	if !ok {
		t.Fatalf("chain path should reach c: %+v", sel)
	}
	if chain.Path.LabelString() != "factorySite isIn isIn" {
		t.Errorf("chain path labels = %q", chain.Path.LabelString())
	}
	hub, ok := byDesc[vs["hub"]]
	if !ok || hub.Path.Len() != 1 {
		t.Errorf("bushy path should stop at hub: %+v", sel)
	}
	// PRA descending order.
	for i := 1; i < len(sel); i++ {
		if sel[i-1].PRA < sel[i].PRA {
			t.Error("selections not PRA-sorted")
		}
	}
}

func TestTopKRespectsK(t *testing.T) {
	g, vs := chainGraph()
	r := NewRanker(g, nil, 4)
	if got := r.TopK(vs["hub"], 2); len(got) != 2 {
		t.Errorf("k=2 returned %d", len(got))
	}
	if got := r.TopK(vs["hub"], 0); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
	if got := r.TopK(vs["c"], 3); got != nil {
		t.Errorf("leaf TopK = %v", got)
	}
}

func TestTopKCaching(t *testing.T) {
	g, vs := chainGraph()
	r := NewRanker(g, nil, 4)
	r.TopK(vs["root"], 1)
	if r.CacheSize() != 1 {
		t.Errorf("CacheSize = %d", r.CacheSize())
	}
	// Larger k re-uses the same cached full list.
	full := r.TopK(vs["root"], 10)
	if len(full) != 2 {
		t.Errorf("cached full list = %d entries", len(full))
	}
	r.Reset()
	if r.CacheSize() != 0 {
		t.Error("Reset did not clear cache")
	}
}

func TestTopKDuplicateDescendantKeepsBest(t *testing.T) {
	// Two parallel edges from a to b: only one selection for b survives.
	g := graph.New()
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	g.MustAddEdge(a, b, "e1")
	g.MustAddEdge(a, b, "e2")
	r := NewRanker(g, nil, 4)
	sel := r.TopK(a, 5)
	if len(sel) != 1 || sel[0].Desc != b {
		t.Errorf("TopK = %+v", sel)
	}
}

func TestTrainingPaths(t *testing.T) {
	g, vs := chainGraph()
	corpus := TrainingPaths(g, []graph.VID{vs["root"]}, 4, nil)
	// Reachable from root: a, b, c, hub, x1..x4 → 8 descendants, one
	// max-PRA path each.
	if len(corpus) != 8 {
		t.Fatalf("corpus size = %d: %v", len(corpus), corpus)
	}
	// Reject filter removes x* labels.
	corpus2 := TrainingPaths(g, []graph.VID{vs["root"]}, 4,
		func(v graph.VID) bool { return g.Label(v)[0] == 'x' })
	if len(corpus2) != 4 {
		t.Errorf("filtered corpus size = %d", len(corpus2))
	}
	// RejectPassThrough drops the out-degree-1 chain vertices a and b.
	corpus3 := TrainingPaths(g, []graph.VID{vs["root"]}, 4, RejectPassThrough(g))
	if len(corpus3) != 6 {
		t.Errorf("pass-through-filtered corpus size = %d: %v", len(corpus3), corpus3)
	}
}

func TestLSTMGuidedGrowth(t *testing.T) {
	g, vs := chainGraph()
	// Train the LM so that factorySite → isIn → isIn → <eos> and
	// brandName → <eos>.
	corpus := [][]string{}
	for i := 0; i < 40; i++ {
		corpus = append(corpus, []string{"factorySite", "isIn", "isIn"})
		corpus = append(corpus, []string{"brandName"})
		corpus = append(corpus, []string{"related"})
	}
	vocab := lstm.NewVocab(embed.LabelVocabulary(g))
	lm := lstm.New(vocab, 8, 16, 3)
	lm.Train(corpus, lstm.TrainConfig{Epochs: 30, LearnRate: 0.05, Clip: 5, Seed: 2})

	r := NewRanker(g, lm, 4)
	sel := r.TopK(vs["root"], 5)
	byDesc := map[graph.VID]Selected{}
	for _, s := range sel {
		byDesc[s.Desc] = s
	}
	if chain, ok := byDesc[vs["c"]]; !ok {
		t.Errorf("LM-guided growth should follow the chain to c: %+v", sel)
	} else if chain.Path.LabelString() != "factorySite isIn isIn" {
		t.Errorf("chain labels = %q", chain.Path.LabelString())
	}
	if hub, ok := byDesc[vs["hub"]]; !ok || hub.Path.Len() != 1 {
		t.Errorf("brandName should stop at hub (eos): %+v", sel)
	}
}

func TestGrowPathAbandonsCycles(t *testing.T) {
	g := graph.New()
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	g.MustAddEdge(a, b, "f")
	g.MustAddEdge(b, a, "g")
	r := NewRanker(g, nil, 10)
	sel := r.TopK(a, 5)
	if len(sel) != 1 {
		t.Fatalf("TopK = %+v", sel)
	}
	if !sel[0].Path.IsSimple() {
		t.Error("grown path is not simple")
	}
	if sel[0].Path.Len() > 1 {
		t.Errorf("cycle should stop growth: %+v", sel[0].Path)
	}
}

func TestConcurrentTopK(t *testing.T) {
	g, vs := chainGraph()
	r := NewRanker(g, nil, 4)
	done := make(chan bool)
	for w := 0; w < 4; w++ {
		go func() {
			for i := 0; i < 100; i++ {
				r.TopK(vs["root"], 3)
				r.TopK(vs["hub"], 3)
			}
			done <- true
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}

func TestInvalidateSingleVertex(t *testing.T) {
	g, vs := chainGraph()
	r := NewRanker(g, nil, 4)
	r.TopK(vs["root"], 3)
	r.TopK(vs["hub"], 3)
	if r.CacheSize() != 2 {
		t.Fatalf("CacheSize = %d", r.CacheSize())
	}
	r.Invalidate(vs["root"])
	if r.CacheSize() != 1 {
		t.Errorf("Invalidate removed wrong count: %d", r.CacheSize())
	}
	// Recomputation picks up new edges.
	g.MustAddEdge(vs["root"], vs["x1"], "direct")
	sel := r.TopK(vs["root"], 10)
	found := false
	for _, s := range sel {
		if s.Path.LabelString() == "direct" {
			found = true
		}
	}
	if !found {
		t.Errorf("new edge not selected after invalidate: %+v", sel)
	}
}
