// Package ranking implements the ranking function h_r of Section IV:
// given a vertex v and a bound k, it selects the top-k descendants of v —
// the vertex's important properties — together with one path for each.
// Path growth is guided by the LSTM language model M_r (one path per
// outgoing edge, extended while the model prefers continuing over <eos>),
// and the collected paths are ranked by Path Resource Allocation (PRA):
//
//	R(ρ) = Π_{i=0}^{l-1} 1 / |ch(v_i)|
//
// Results are memoized in an ecache shared by all recursive ParaMatch
// calls, as in Fig. 4 of the paper.
package ranking

import (
	"sort"
	"sync"

	"her/internal/feq"
	"her/internal/graph"
	"her/internal/lstm"
)

// Selected is one chosen property: a top-k descendant of the source
// vertex together with the path h_r picked for it and that path's PRA
// score.
type Selected struct {
	Desc graph.VID
	Path graph.Path
	PRA  float64
}

// PRA computes the path-resource-allocation score of p in g: resource
// flows from the start vertex and divides equally among children at every
// intermediate vertex. R ∈ (0, 1]; a zero-length path scores 1.
func PRA(g *graph.Graph, p graph.Path) float64 {
	score := 1.0
	for i := 0; i+1 < len(p.Vertices); i++ {
		ch := g.OutDegree(p.Vertices[i])
		if ch == 0 {
			return 0 // not a real path
		}
		score /= float64(ch)
	}
	return score
}

// Ranker computes and caches top-k selections for one graph. If LM is
// nil, path growth falls back to a deterministic PRA-greedy rule: a path
// extends only while its end vertex has exactly one outgoing edge. The
// ranker is safe for concurrent use.
type Ranker struct {
	G      *graph.Graph
	LM     *lstm.Model
	MaxLen int // maximum path length in edges; 0 means 4 (the paper's cap)

	mu     sync.RWMutex
	ecache map[graph.VID][]Selected
}

// NewRanker creates a ranker over g guided by lm (which may be nil).
func NewRanker(g *graph.Graph, lm *lstm.Model, maxLen int) *Ranker {
	if maxLen <= 0 {
		maxLen = 4
	}
	return &Ranker{G: g, LM: lm, MaxLen: maxLen, ecache: make(map[graph.VID][]Selected)}
}

// TopK returns the top-k selected descendants of v (paper notation V_v^k),
// at most one per outgoing edge of v, ranked by PRA. Results for a vertex
// are computed once and cached regardless of k, with the cached list cut
// to k on each call; the cache stores the full ranked list.
func (r *Ranker) TopK(v graph.VID, k int) []Selected {
	if k <= 0 {
		return nil
	}
	r.mu.RLock()
	sel, ok := r.ecache[v]
	r.mu.RUnlock()
	if !ok {
		sel = r.selectAll(v)
		r.mu.Lock()
		r.ecache[v] = sel
		r.mu.Unlock()
	}
	if len(sel) > k {
		sel = sel[:k]
	}
	return sel
}

// CacheSize reports how many vertices have cached selections.
func (r *Ranker) CacheSize() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.ecache)
}

// Reset clears the ecache (used between experiments).
func (r *Ranker) Reset() {
	r.mu.Lock()
	r.ecache = make(map[graph.VID][]Selected)
	r.mu.Unlock()
}

// Invalidate drops the cached selection of one vertex (used by
// incremental graph updates: the vertex's out-edges changed).
func (r *Ranker) Invalidate(v graph.VID) {
	r.mu.Lock()
	delete(r.ecache, v)
	r.mu.Unlock()
}

// selectAll grows one path per outgoing edge of v and ranks them by PRA.
// When several paths end at the same descendant, the higher-PRA one wins.
func (r *Ranker) selectAll(v graph.VID) []Selected {
	out := r.G.Out(v)
	if len(out) == 0 {
		return nil
	}
	best := make(map[graph.VID]Selected, len(out))
	for _, e := range out {
		p := r.growPath(v, e)
		s := Selected{Desc: p.End(), Path: p, PRA: PRA(r.G, p)}
		if prev, ok := best[s.Desc]; !ok || s.PRA > prev.PRA {
			best[s.Desc] = s
		}
	}
	sel := make([]Selected, 0, len(best))
	for _, s := range best {
		sel = append(sel, s)
	}
	sort.Slice(sel, func(a, b int) bool {
		if !feq.Eq(sel[a].PRA, sel[b].PRA) {
			return sel[a].PRA > sel[b].PRA
		}
		return sel[a].Desc < sel[b].Desc
	})
	return sel
}

// growPath extends a path starting with edge e0 from v, one hop at a
// time. With a language model: feed the consumed edge label, obtain the
// next-token distribution, and among the outgoing edges of the current
// end (that keep the path simple) pick the most probable; stop when <eos>
// outranks every available edge, when no edge is available, or at MaxLen.
// Without a model: extend only while the end vertex has exactly one
// outgoing edge (the unambiguous-continuation PRA-greedy rule).
func (r *Ranker) growPath(v graph.VID, e0 graph.Edge) graph.Path {
	p := graph.SingleVertexPath(v).Extend(e0)
	if r.LM == nil {
		for p.Len() < r.MaxLen {
			out := r.G.Out(p.End())
			if len(out) != 1 || p.Contains(out[0].To) {
				break
			}
			p = p.Extend(out[0])
		}
		return p
	}
	state := r.LM.Step(r.LM.Start(), e0.Label)
	for p.Len() < r.MaxLen {
		out := r.G.Out(p.End())
		probs := r.LM.Probs(state)
		bestP := -1.0
		var bestE graph.Edge
		found := false
		for _, e := range out {
			if p.Contains(e.To) {
				continue // keep the path simple (cycles are abandoned)
			}
			pe := probs[r.LM.Vocab.ID(e.Label)]
			if pe > bestP || (feq.Eq(pe, bestP) && found && e.To < bestE.To) {
				bestP, bestE, found = pe, e, true
			}
		}
		if !found || probs[lstm.EOS] > bestP {
			break
		}
		p = p.Extend(bestE)
		state = r.LM.Step(state, bestE.Label)
	}
	return p
}

// RejectPassThrough returns the default training-path filter for g: it
// drops descendants that are pass-through vertices (exactly one outgoing
// edge), since a path stopping there is not a meaningful property — the
// resource flows on undivided, and the label is typically an internal
// "machine code" node.
func RejectPassThrough(g *graph.Graph) func(graph.VID) bool {
	return func(v graph.VID) bool { return g.OutDegree(v) == 1 }
}

// TrainingPaths prepares the training corpus for M_r as the paper
// prescribes: for each start vertex, find the reachable descendants
// (excluding those the reject filter drops — the paper removes
// "machine code" labels; RejectPassThrough is the default analogue for
// generated graphs), and for each descendant keep the simple path with
// the maximum PRA value, up to maxLen edges. The returned sequences are
// edge-label sentences.
func TrainingPaths(g *graph.Graph, starts []graph.VID, maxLen int, reject func(end graph.VID) bool) [][]string {
	if maxLen <= 0 {
		maxLen = 4
	}
	var corpus [][]string
	for _, v := range starts {
		best := make(map[graph.VID]graph.Path)
		bestScore := make(map[graph.VID]float64)
		g.SimplePaths(v, maxLen, func(p graph.Path) bool {
			end := p.End()
			if reject != nil && reject(end) {
				return true
			}
			s := PRA(g, p)
			if s > bestScore[end] {
				bestScore[end] = s
				best[end] = p
			}
			return true
		})
		// Deterministic order: by descendant id.
		ends := make([]graph.VID, 0, len(best))
		for e := range best {
			ends = append(ends, e)
		}
		sort.Slice(ends, func(a, b int) bool { return ends[a] < ends[b] })
		for _, e := range ends {
			labels := make([]string, len(best[e].EdgeLabels))
			copy(labels, best[e].EdgeLabels)
			corpus = append(corpus, labels)
		}
	}
	return corpus
}
