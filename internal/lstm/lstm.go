// Package lstm implements the path language model M_r of Section IV: a
// single-layer LSTM over edge-label tokens, trained with truncated BPTT on
// next-label prediction, used by the ranking function h_r to grow paths
// one edge at a time until the model emits the end-of-sentence token.
package lstm

import (
	"fmt"
	"math"
	"math/rand"
)

// EOS is the end-of-sentence token id ("<eos>" in the paper); emitting it
// terminates path growth.
const EOS = 0

// UNK is the unknown-token id, used for edge labels unseen in training.
const UNK = 1

const numSpecial = 2

// Vocab maps edge-label strings to dense token ids. Ids 0 and 1 are
// reserved for EOS and UNK.
type Vocab struct {
	ids    map[string]int
	tokens []string
}

// NewVocab builds a vocabulary over the given edge labels (duplicates
// are fine).
func NewVocab(labels []string) *Vocab {
	v := &Vocab{ids: make(map[string]int), tokens: []string{"<eos>", "<unk>"}}
	for _, l := range labels {
		if _, ok := v.ids[l]; !ok {
			v.ids[l] = len(v.tokens)
			v.tokens = append(v.tokens, l)
		}
	}
	return v
}

// Size returns the vocabulary size including the special tokens.
func (v *Vocab) Size() int { return len(v.tokens) }

// ID returns the token id of label l, or UNK.
func (v *Vocab) ID(l string) int {
	if id, ok := v.ids[l]; ok {
		return id
	}
	return UNK
}

// Token returns the label of token id.
func (v *Vocab) Token(id int) string { return v.tokens[id] }

// Model is the LSTM language model. Inference (Start/Step/Probs) is
// read-only with respect to parameters and safe for concurrent use after
// training completes.
type Model struct {
	Vocab  *Vocab
	embDim int
	hidden int

	emb  []float64 // vocab × embDim
	wx   []float64 // 4H × embDim (gate order: i, f, g, o)
	wh   []float64 // 4H × H
	b    []float64 // 4H
	wOut []float64 // vocab × H
	bOut []float64 // vocab
}

// New creates an untrained model. Construction is deterministic per seed.
func New(v *Vocab, embDim, hidden int, seed int64) *Model {
	if embDim <= 0 {
		embDim = 16
	}
	if hidden <= 0 {
		hidden = 32
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Model{Vocab: v, embDim: embDim, hidden: hidden}
	init := func(n int, scale float64) []float64 {
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.NormFloat64() * scale
		}
		return w
	}
	V, E, H := v.Size(), embDim, hidden
	m.emb = init(V*E, 0.1)
	m.wx = init(4*H*E, math.Sqrt(1.0/float64(E)))
	m.wh = init(4*H*H, math.Sqrt(1.0/float64(H)))
	m.b = make([]float64, 4*H)
	// Forget-gate bias starts at 1, the standard trick.
	for i := H; i < 2*H; i++ {
		m.b[i] = 1
	}
	m.wOut = init(V*H, math.Sqrt(1.0/float64(H)))
	m.bOut = make([]float64, V)
	return m
}

// State is the recurrent state (h, c) after consuming a prefix.
type State struct {
	H []float64
	C []float64
}

// Start returns the zero state.
func (m *Model) Start() State {
	return State{H: make([]float64, m.hidden), C: make([]float64, m.hidden)}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// stepCache stores intermediates of one step for BPTT.
type stepCache struct {
	token int
	x     []float64 // embedding input
	i, f, g, o,
	cPrev, c, tanhC, h []float64
}

// step advances the state on token id, optionally recording a cache.
func (m *Model) step(s State, token int, rec *stepCache) State {
	H, E := m.hidden, m.embDim
	x := m.emb[token*E : (token+1)*E]
	gi := make([]float64, H)
	gf := make([]float64, H)
	gg := make([]float64, H)
	go_ := make([]float64, H)
	for j := 0; j < H; j++ {
		zi := m.b[j]
		zf := m.b[H+j]
		zg := m.b[2*H+j]
		zo := m.b[3*H+j]
		rowI := m.wx[j*E : (j+1)*E]
		rowF := m.wx[(H+j)*E : (H+j+1)*E]
		rowG := m.wx[(2*H+j)*E : (2*H+j+1)*E]
		rowO := m.wx[(3*H+j)*E : (3*H+j+1)*E]
		for i := 0; i < E; i++ {
			zi += rowI[i] * x[i]
			zf += rowF[i] * x[i]
			zg += rowG[i] * x[i]
			zo += rowO[i] * x[i]
		}
		hrowI := m.wh[j*H : (j+1)*H]
		hrowF := m.wh[(H+j)*H : (H+j+1)*H]
		hrowG := m.wh[(2*H+j)*H : (2*H+j+1)*H]
		hrowO := m.wh[(3*H+j)*H : (3*H+j+1)*H]
		for i := 0; i < H; i++ {
			zi += hrowI[i] * s.H[i]
			zf += hrowF[i] * s.H[i]
			zg += hrowG[i] * s.H[i]
			zo += hrowO[i] * s.H[i]
		}
		gi[j] = sigmoid(zi)
		gf[j] = sigmoid(zf)
		gg[j] = math.Tanh(zg)
		go_[j] = sigmoid(zo)
	}
	c := make([]float64, H)
	tanhC := make([]float64, H)
	h := make([]float64, H)
	for j := 0; j < H; j++ {
		c[j] = gf[j]*s.C[j] + gi[j]*gg[j]
		tanhC[j] = math.Tanh(c[j])
		h[j] = go_[j] * tanhC[j]
	}
	if rec != nil {
		rec.token = token
		rec.x = x
		rec.i, rec.f, rec.g, rec.o = gi, gf, gg, go_
		rec.cPrev = s.C
		rec.c, rec.tanhC, rec.h = c, tanhC, h
	}
	return State{H: h, C: c}
}

// Step consumes one edge label and returns the new state.
func (m *Model) Step(s State, label string) State {
	return m.step(s, m.Vocab.ID(label), nil)
}

// Probs returns the softmax next-token distribution from state s.
// Index 0 is the probability of <eos>.
func (m *Model) Probs(s State) []float64 {
	V, H := m.Vocab.Size(), m.hidden
	logits := make([]float64, V)
	maxL := math.Inf(-1)
	for v := 0; v < V; v++ {
		z := m.bOut[v]
		row := m.wOut[v*H : (v+1)*H]
		for j := 0; j < H; j++ {
			z += row[j] * s.H[j]
		}
		logits[v] = z
		if z > maxL {
			maxL = z
		}
	}
	var sum float64
	for v := range logits {
		logits[v] = math.Exp(logits[v] - maxL)
		sum += logits[v]
	}
	for v := range logits {
		logits[v] /= sum
	}
	return logits
}

// NextProbs consumes a full prefix of edge labels from the zero state and
// returns the next-token distribution; a convenience for callers that do
// not track states incrementally.
func (m *Model) NextProbs(prefix []string) []float64 {
	s := m.Start()
	for _, l := range prefix {
		s = m.Step(s, l)
	}
	return m.Probs(s)
}

// Snapshot is the serializable state of a path language model.
type Snapshot struct {
	Tokens []string // vocabulary including the special tokens
	EmbDim int
	Hidden int
	Emb    []float64
	Wx     []float64
	Wh     []float64
	B      []float64
	WOut   []float64
	BOut   []float64
}

// Snapshot captures the model's parameters and vocabulary.
func (m *Model) Snapshot() Snapshot {
	return Snapshot{
		Tokens: append([]string{}, m.Vocab.tokens...),
		EmbDim: m.embDim,
		Hidden: m.hidden,
		Emb:    append([]float64{}, m.emb...),
		Wx:     append([]float64{}, m.wx...),
		Wh:     append([]float64{}, m.wh...),
		B:      append([]float64{}, m.b...),
		WOut:   append([]float64{}, m.wOut...),
		BOut:   append([]float64{}, m.bOut...),
	}
}

// FromSnapshot reconstructs a model from a snapshot.
func FromSnapshot(s Snapshot) (*Model, error) {
	if len(s.Tokens) < numSpecial {
		return nil, fmt.Errorf("lstm: snapshot vocabulary too small")
	}
	v := &Vocab{ids: make(map[string]int), tokens: append([]string{}, s.Tokens...)}
	for i, tok := range s.Tokens {
		if i >= numSpecial {
			v.ids[tok] = i
		}
	}
	m := New(v, s.EmbDim, s.Hidden, 0)
	for name, pair := range map[string][2][]float64{
		"emb":  {m.emb, s.Emb},
		"wx":   {m.wx, s.Wx},
		"wh":   {m.wh, s.Wh},
		"b":    {m.b, s.B},
		"wOut": {m.wOut, s.WOut},
		"bOut": {m.bOut, s.BOut},
	} {
		if len(pair[0]) != len(pair[1]) {
			return nil, fmt.Errorf("lstm: snapshot %s shape mismatch", name)
		}
		copy(pair[0], pair[1])
	}
	return m, nil
}
