package lstm

import (
	"math"
	"testing"
)

func TestVocab(t *testing.T) {
	v := NewVocab([]string{"a", "b", "a", "c"})
	if v.Size() != 5 { // eos, unk, a, b, c
		t.Fatalf("Size = %d", v.Size())
	}
	if v.ID("a") == v.ID("b") {
		t.Error("distinct labels share an id")
	}
	if v.ID("zzz") != UNK {
		t.Error("unseen label should be UNK")
	}
	if v.Token(EOS) != "<eos>" {
		t.Errorf("Token(EOS) = %q", v.Token(EOS))
	}
	if v.Token(v.ID("c")) != "c" {
		t.Error("Token/ID round trip broken")
	}
}

func TestProbsIsDistribution(t *testing.T) {
	v := NewVocab([]string{"x", "y", "z"})
	m := New(v, 8, 12, 3)
	s := m.Start()
	s = m.Step(s, "x")
	p := m.Probs(s)
	if len(p) != v.Size() {
		t.Fatalf("probs len = %d", len(p))
	}
	var sum float64
	for _, pi := range p {
		if pi < 0 || pi > 1 || math.IsNaN(pi) {
			t.Fatalf("bad probability %f", pi)
		}
		sum += pi
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %f", sum)
	}
}

func TestDeterministicConstruction(t *testing.T) {
	v := NewVocab([]string{"x", "y"})
	a := New(v, 4, 6, 9)
	b := New(v, 4, 6, 9)
	pa := a.NextProbs([]string{"x"})
	pb := b.NextProbs([]string{"x"})
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed should give identical models")
		}
	}
}

func TestTrainLearnsBigram(t *testing.T) {
	// Grammar: "a" is always followed by "b", then the sequence ends;
	// "c" is always followed by "d" then "e".
	var seqs [][]string
	for i := 0; i < 30; i++ {
		seqs = append(seqs, []string{"a", "b"})
		seqs = append(seqs, []string{"c", "d", "e"})
	}
	v := NewVocab([]string{"a", "b", "c", "d", "e"})
	m := New(v, 8, 16, 5)
	epochs := 40
	if testing.Short() {
		// Short tier: enough epochs to verify training moves the loss,
		// not enough to pin the learned grammar below.
		epochs = 6
	}
	before := m.Perplexity(seqs)
	loss := m.Train(seqs, TrainConfig{Epochs: epochs, LearnRate: 0.05, Clip: 5, Seed: 2})
	after := m.Perplexity(seqs)
	if after >= before {
		t.Errorf("training did not reduce perplexity: %f → %f (loss %f)", before, after, loss)
	}
	if testing.Short() {
		return
	}
	// After "a", "b" should be the most likely continuation.
	p := m.NextProbs([]string{"a"})
	argmax := 0
	for i := range p {
		if p[i] > p[argmax] {
			argmax = i
		}
	}
	if v.Token(argmax) != "b" {
		t.Errorf("after 'a' model prefers %q with p=%f (p(b)=%f)", v.Token(argmax), p[argmax], p[v.ID("b")])
	}
	// After "a b", EOS should dominate continuation tokens.
	p2 := m.NextProbs([]string{"a", "b"})
	if p2[EOS] < p2[v.ID("c")] || p2[EOS] < p2[v.ID("a")] {
		t.Errorf("after 'a b' EOS p=%f should beat continuations", p2[EOS])
	}
}

func TestTrainEmpty(t *testing.T) {
	v := NewVocab([]string{"a"})
	m := New(v, 4, 4, 1)
	if l := m.Train(nil, DefaultTrainConfig()); l != 0 {
		t.Errorf("empty training loss = %f", l)
	}
	if l := m.Train([][]string{{}}, DefaultTrainConfig()); l != 0 {
		t.Errorf("empty-sequence training loss = %f", l)
	}
	if p := m.Perplexity(nil); p != 1 {
		t.Errorf("empty perplexity = %f", p)
	}
}

func TestStepUnknownLabel(t *testing.T) {
	v := NewVocab([]string{"a"})
	m := New(v, 4, 4, 1)
	s := m.Start()
	s2 := m.Step(s, "never-seen")
	if len(s2.H) != 4 {
		t.Error("step on unknown label should still advance")
	}
}

func TestConcurrentInference(t *testing.T) {
	v := NewVocab([]string{"a", "b"})
	m := New(v, 4, 8, 2)
	m.Train([][]string{{"a", "b"}}, TrainConfig{Epochs: 2, LearnRate: 0.05, Seed: 1})
	done := make(chan bool)
	for w := 0; w < 4; w++ {
		go func() {
			for i := 0; i < 50; i++ {
				m.NextProbs([]string{"a"})
			}
			done <- true
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	v := NewVocab([]string{"a", "b", "c"})
	m := New(v, 6, 10, 4)
	m.Train([][]string{{"a", "b"}, {"c"}}, TrainConfig{Epochs: 5, LearnRate: 0.05, Seed: 1})
	want := m.NextProbs([]string{"a"})
	s := m.Snapshot()
	m2, err := FromSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	got := m2.NextProbs([]string{"a"})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored probs differ at %d: %f vs %f", i, got[i], want[i])
		}
	}
	if m2.Vocab.ID("b") != m.Vocab.ID("b") {
		t.Error("vocabulary ids not preserved")
	}
	// Corrupt shapes fail.
	bad := m.Snapshot()
	bad.Wx = bad.Wx[:3]
	if _, err := FromSnapshot(bad); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := FromSnapshot(Snapshot{Tokens: []string{"only"}}); err == nil {
		t.Error("tiny vocabulary accepted")
	}
}
