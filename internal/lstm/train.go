package lstm

import (
	"math"
	"math/rand"
)

// TrainConfig controls BPTT training of the path language model.
type TrainConfig struct {
	Epochs    int
	LearnRate float64
	Clip      float64 // max gradient L2 norm per sequence; 0 disables
	Seed      int64
}

// DefaultTrainConfig returns defaults adequate for the small path corpora
// used in this repository.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 20, LearnRate: 0.05, Clip: 5, Seed: 1}
}

// gradSet mirrors the model's parameters.
type gradSet struct {
	emb, wx, wh, b, wOut, bOut []float64
}

func (m *Model) newGrads() *gradSet {
	return &gradSet{
		emb:  make([]float64, len(m.emb)),
		wx:   make([]float64, len(m.wx)),
		wh:   make([]float64, len(m.wh)),
		b:    make([]float64, len(m.b)),
		wOut: make([]float64, len(m.wOut)),
		bOut: make([]float64, len(m.bOut)),
	}
}

// Train fits the model on edge-label sequences with next-token prediction
// (each sequence is additionally terminated with <eos>). Returns the mean
// per-token cross entropy of the final epoch.
func (m *Model) Train(seqs [][]string, cfg TrainConfig) float64 {
	if len(seqs) == 0 {
		return 0
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.LearnRate <= 0 {
		cfg.LearnRate = 0.05
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, len(seqs))
	for i := range idx {
		idx[i] = i
	}
	var lastLoss float64
	var lastTokens int
	for ep := 0; ep < cfg.Epochs; ep++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		lastLoss, lastTokens = 0, 0
		for _, si := range idx {
			tokens := make([]int, len(seqs[si]))
			for i, l := range seqs[si] {
				tokens[i] = m.Vocab.ID(l)
			}
			if len(tokens) == 0 {
				continue
			}
			loss, n := m.trainSequence(tokens, cfg)
			lastLoss += loss
			lastTokens += n
		}
	}
	if lastTokens == 0 {
		return 0
	}
	return lastLoss / float64(lastTokens)
}

// trainSequence runs one forward+BPTT pass and applies SGD.
func (m *Model) trainSequence(tokens []int, cfg TrainConfig) (float64, int) {
	H := m.hidden
	E := m.embDim
	V := m.Vocab.Size()
	n := len(tokens)

	// Forward with caches. states[j] is the state after consuming
	// tokens[0..j-1]; caches[j] describes step j (consuming tokens[j]).
	states := make([]State, n+1)
	states[0] = m.Start()
	caches := make([]stepCache, n)
	for j := 0; j < n; j++ {
		states[j+1] = m.step(states[j], tokens[j], &caches[j])
	}

	g := m.newGrads()
	var totalLoss float64
	dhNext := make([]float64, H)
	dcNext := make([]float64, H)

	for j := n - 1; j >= 0; j-- {
		// Target after consuming tokens[j]: the next token, or EOS.
		target := EOS
		if j+1 < n {
			target = tokens[j+1]
		}
		probs := m.Probs(states[j+1])
		totalLoss += -math.Log(math.Max(probs[target], 1e-12))

		// Output layer gradient.
		h := states[j+1].H
		dh := make([]float64, H)
		copy(dh, dhNext)
		for v := 0; v < V; v++ {
			d := probs[v]
			if v == target {
				d -= 1
			}
			g.bOut[v] += d
			row := m.wOut[v*H : (v+1)*H]
			grow := g.wOut[v*H : (v+1)*H]
			for k := 0; k < H; k++ {
				grow[k] += d * h[k]
				dh[k] += d * row[k]
			}
		}

		// Backprop through the LSTM cell.
		c := caches[j]
		dc := make([]float64, H)
		copy(dc, dcNext)
		dzi := make([]float64, H)
		dzf := make([]float64, H)
		dzg := make([]float64, H)
		dzo := make([]float64, H)
		for k := 0; k < H; k++ {
			do := dh[k] * c.tanhC[k]
			dtc := dh[k] * c.o[k]
			dc[k] += dtc * (1 - c.tanhC[k]*c.tanhC[k])
			di := dc[k] * c.g[k]
			df := dc[k] * c.cPrev[k]
			dg := dc[k] * c.i[k]
			dzi[k] = di * c.i[k] * (1 - c.i[k])
			dzf[k] = df * c.f[k] * (1 - c.f[k])
			dzg[k] = dg * (1 - c.g[k]*c.g[k])
			dzo[k] = do * c.o[k] * (1 - c.o[k])
		}
		// Next (earlier) step's dc: through the forget gate.
		for k := 0; k < H; k++ {
			dcNext[k] = dc[k] * c.f[k]
		}
		// Parameter grads and input grads.
		hPrev := states[j].H
		dhPrev := make([]float64, H)
		dx := make([]float64, E)
		gates := [][]float64{dzi, dzf, dzg, dzo}
		for gi, dz := range gates {
			for k := 0; k < H; k++ {
				d := dz[k]
				if d == 0 {
					continue
				}
				g.b[gi*H+k] += d
				rowX := m.wx[(gi*H+k)*E : (gi*H+k+1)*E]
				growX := g.wx[(gi*H+k)*E : (gi*H+k+1)*E]
				for i := 0; i < E; i++ {
					growX[i] += d * c.x[i]
					dx[i] += d * rowX[i]
				}
				rowH := m.wh[(gi*H+k)*H : (gi*H+k+1)*H]
				growH := g.wh[(gi*H+k)*H : (gi*H+k+1)*H]
				for i := 0; i < H; i++ {
					growH[i] += d * hPrev[i]
					dhPrev[i] += d * rowH[i]
				}
			}
		}
		gemb := g.emb[c.token*E : (c.token+1)*E]
		for i := 0; i < E; i++ {
			gemb[i] += dx[i]
		}
		dhNext = dhPrev
	}

	m.applySGD(g, cfg)
	return totalLoss, n
}

func (m *Model) applySGD(g *gradSet, cfg TrainConfig) {
	if cfg.Clip > 0 {
		var norm float64
		for _, gr := range [][]float64{g.emb, g.wx, g.wh, g.b, g.wOut, g.bOut} {
			for _, v := range gr {
				norm += v * v
			}
		}
		norm = math.Sqrt(norm)
		if norm > cfg.Clip {
			scale := cfg.Clip / norm
			for _, gr := range [][]float64{g.emb, g.wx, g.wh, g.b, g.wOut, g.bOut} {
				for i := range gr {
					gr[i] *= scale
				}
			}
		}
	}
	lr := cfg.LearnRate
	apply := func(p, gr []float64) {
		for i := range p {
			p[i] -= lr * gr[i]
		}
	}
	apply(m.emb, g.emb)
	apply(m.wx, g.wx)
	apply(m.wh, g.wh)
	apply(m.b, g.b)
	apply(m.wOut, g.wOut)
	apply(m.bOut, g.bOut)
}

// Perplexity evaluates exp(mean cross entropy) of the model on sequences.
func (m *Model) Perplexity(seqs [][]string) float64 {
	var loss float64
	var count int
	for _, seq := range seqs {
		s := m.Start()
		tokens := make([]int, len(seq))
		for i, l := range seq {
			tokens[i] = m.Vocab.ID(l)
		}
		for j := 0; j < len(tokens); j++ {
			s = m.step(s, tokens[j], nil)
			target := EOS
			if j+1 < len(tokens) {
				target = tokens[j+1]
			}
			probs := m.Probs(s)
			loss += -math.Log(math.Max(probs[target], 1e-12))
			count++
		}
	}
	if count == 0 {
		return 1
	}
	return math.Exp(loss / float64(count))
}
