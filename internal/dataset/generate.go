package dataset

import (
	"fmt"
	"math/rand"

	"her/internal/core"
	"her/internal/graph"
	"her/internal/learn"
	"her/internal/rdb2rdf"
	"her/internal/relational"
)

// PathPair is one annotated path-label pair used to train the M_ρ metric
// model: A is a G_D-side edge-label sequence, B a G-side one.
type PathPair struct {
	A, B  []string
	Match bool
}

// Generated bundles everything one experiment needs.
type Generated struct {
	Config  Config
	DB      *relational.Database
	GD      *graph.Graph
	Mapping *rdb2rdf.Mapping
	G       *graph.Graph

	// Truth holds the annotated match/mismatch pairs (tuple vertex in
	// G_D × entity vertex in G), match/non-match ratio 1, as in the
	// paper's evaluation setup.
	Truth []learn.Annotation

	// TupleVertices are the main-relation tuple vertices of G_D (the
	// sources for APair); EntityVertices the entity vertices of G.
	TupleVertices  []graph.VID
	EntityVertices []graph.VID
	// TwinVertices are the near-duplicate hard-negative entities of G.
	TwinVertices []graph.VID

	// PathPairs are annotated (ρ_D, ρ_G) label-sequence pairs for
	// training M_ρ.
	PathPairs []PathPair
}

// Sizes reports |V_D|, |E_D|, |V|, |E| as in Table IV.
func (g *Generated) Sizes() (vd, ed, v, e int) {
	return g.GD.NumVertices(), g.GD.NumEdges(), g.G.NumVertices(), g.G.NumEdges()
}

// Generate builds the dataset described by cfg. It is deterministic for
// a given configuration.
func Generate(cfg Config) (*Generated, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// ---- Relational side -------------------------------------------------
	var schemas []*relational.Schema
	mainAttrs := make([]string, 0, len(cfg.Attrs)+1)
	for _, a := range cfg.Attrs {
		mainAttrs = append(mainAttrs, a.Name)
	}
	var fks []relational.ForeignKey
	if cfg.Dim != nil {
		mainAttrs = append(mainAttrs, cfg.Dim.FKAttr)
		fks = append(fks, relational.ForeignKey{Attr: cfg.Dim.FKAttr, RefRelation: cfg.Dim.Relation})
		dimAttrs := make([]string, 0, len(cfg.Dim.Attrs))
		for _, a := range cfg.Dim.Attrs {
			dimAttrs = append(dimAttrs, a.Name)
		}
		ds, err := relational.NewSchema(cfg.Dim.Relation, dimAttrs, cfg.Dim.Attrs[0].Name)
		if err != nil {
			return nil, err
		}
		schemas = append(schemas, ds)
	}
	ms, err := relational.NewSchema(cfg.MainRelation, mainAttrs, cfg.Attrs[0].Name, fks...)
	if err != nil {
		return nil, err
	}
	schemas = append(schemas, ms)
	db := relational.NewDatabase(schemas...)

	// Dimension entities: base values shared by both sides.
	var dimValues [][]string
	if cfg.Dim != nil {
		rel := db.Relation(cfg.Dim.Relation)
		for d := 0; d < cfg.Dim.Count; d++ {
			row := make([]string, len(cfg.Dim.Attrs))
			for i, a := range cfg.Dim.Attrs {
				row[i] = baseValue(rng, a, 100000+d)
			}
			rel.MustInsert(row...)
			dimValues = append(dimValues, row)
		}
	}

	// Main entities: ids [0, NumEntities) exist on both sides; ids
	// [NumEntities, NumEntities+ExtraTuples) are relation-only.
	nTuples := cfg.NumEntities + cfg.ExtraTuples
	values := make([][]string, nTuples) // base attribute values per entity
	dimOf := make([]int, nTuples)
	rel := db.Relation(cfg.MainRelation)
	for e := 0; e < nTuples; e++ {
		row := make([]string, 0, len(mainAttrs))
		vals := make([]string, len(cfg.Attrs))
		for i, a := range cfg.Attrs {
			vals[i] = baseValue(rng, a, e)
			v := vals[i]
			if !a.Identity && rng.Float64() < a.NullRate {
				v = relational.Null
			}
			row = append(row, v)
		}
		values[e] = vals
		if cfg.Dim != nil {
			dimOf[e] = rng.Intn(cfg.Dim.Count)
			row = append(row, dimValues[dimOf[e]][0])
		}
		rel.MustInsert(row...)
	}

	gd, mapping, err := rdb2rdf.Map(db)
	if err != nil {
		return nil, err
	}

	// ---- Graph side -------------------------------------------------------
	g := graph.New()
	valueNodes := make(map[string]graph.VID) // shared value vertices

	valueNode := func(label string) graph.VID {
		if v, ok := valueNodes[label]; ok {
			return v
		}
		v := g.AddVertex(label)
		valueNodes[label] = v
		return v
	}

	// addProperty encodes one attribute as a path from owner.
	addProperty := func(owner graph.VID, a AttrSpec, value string) {
		cur := owner
		for i := 0; i+1 < len(a.Predicates); i++ {
			mid := g.AddVertex(fmt.Sprintf("%s node %d", a.Predicates[i], g.NumVertices()))
			g.MustAddEdge(cur, mid, a.Predicates[i])
			cur = mid
		}
		g.MustAddEdge(cur, valueNode(value), a.Predicates[len(a.Predicates)-1])
	}

	// Dimension vertices in G.
	var dimVerts []graph.VID
	if cfg.Dim != nil {
		for d := 0; d < cfg.Dim.Count; d++ {
			dv := g.AddVertex(cfg.Dim.GraphLabel)
			dimVerts = append(dimVerts, dv)
			for i, a := range cfg.Dim.Attrs {
				if rng.Float64() < a.DropRate {
					continue
				}
				val := dimValues[d][i]
				if a.Identity {
					val = graphIdentity(val)
				}
				addProperty(dv, a, perturb(rng, val, cfg.NoiseLevel))
			}
		}
	}

	// Entity vertices: matchable core plus graph-only extras.
	nEntities := cfg.NumEntities + cfg.ExtraEntities
	entityVerts := make([]graph.VID, nEntities)
	for e := 0; e < nEntities; e++ {
		ev := g.AddVertex(cfg.GraphLabel)
		entityVerts[e] = ev
		var vals []string
		if e < cfg.NumEntities {
			vals = values[e]
		} else {
			// Graph-only entities get fresh values in a disjoint id range.
			vals = make([]string, len(cfg.Attrs))
			for i, a := range cfg.Attrs {
				vals[i] = baseValue(rng, a, 500000+e)
			}
		}
		for i, a := range cfg.Attrs {
			if rng.Float64() < a.DropRate {
				continue
			}
			val := vals[i]
			if a.Identity {
				val = graphIdentity(val)
			}
			addProperty(ev, a, perturb(rng, val, cfg.NoiseLevel))
		}
		if cfg.Dim != nil {
			d := 0
			if e < cfg.NumEntities {
				d = dimOf[e]
			} else {
				d = rng.Intn(cfg.Dim.Count)
			}
			g.MustAddEdge(ev, dimVerts[d], cfg.Dim.Predicate)
		}
	}

	// Distractor properties: junk predicates whose values are other
	// entities' identity values, contaminating flattened neighborhoods
	// and bag-of-words profiles.
	if cfg.Distractors > 0 && cfg.NumEntities > 1 {
		for e := 0; e < nEntities; e++ {
			for i := 0; i < cfg.Distractors; i++ {
				other := rng.Intn(cfg.NumEntities)
				val := perturb(rng, values[other][0], cfg.NoiseLevel)
				pred := junkPredicates[rng.Intn(len(junkPredicates))]
				g.MustAddEdge(entityVerts[e], valueNode(val), pred)
			}
		}
	}

	// Twins: near-duplicate entities that only deep inspection can tell
	// apart — same dimension and shallow values, near-miss name,
	// different deep (path-expanded) values.
	twinOf := make(map[int]graph.VID)
	if cfg.TwinRate > 0 {
		for e := 0; e < cfg.NumEntities; e++ {
			if rng.Float64() >= cfg.TwinRate {
				continue
			}
			tv := g.AddVertex(cfg.GraphLabel)
			twinOf[e] = tv
			for i, a := range cfg.Attrs {
				val := values[e][i]
				switch {
				case a.Identity:
					val = graphIdentity(twinName(rng, val))
				case len(a.Predicates) >= 3:
					// Deep values — beyond a 2-hop flatten — are where
					// twins differ; everything shallow is shared.
					val = baseValue(rng, a, 700000+e)
				}
				addProperty(tv, a, perturb(rng, val, cfg.NoiseLevel))
			}
			if cfg.Dim != nil {
				g.MustAddEdge(tv, dimVerts[dimOf[e]], cfg.Dim.Predicate)
			}
		}
	}

	// Cross links (e.g. citations) between entity vertices: neighbors'
	// properties leak into each other's 2-hop neighborhoods. Links are
	// biased toward entities sharing a dimension (papers in the same
	// venue cite each other), so a cross-linked hard negative also
	// shares its dimension with the true entity.
	byDim := make(map[int][]int)
	if cfg.Dim != nil {
		for e := 0; e < cfg.NumEntities; e++ {
			byDim[dimOf[e]] = append(byDim[dimOf[e]], e)
		}
	}
	neighbors := make([][]int, nEntities) // entity index → linked entity indexes
	for i := 0; i < cfg.CrossLinks && nEntities > 1; i++ {
		a := rng.Intn(nEntities)
		b := -1
		if cfg.Dim != nil && a < cfg.NumEntities && rng.Float64() < 0.7 {
			peers := byDim[dimOf[a]]
			if len(peers) > 1 {
				b = peers[rng.Intn(len(peers))]
			}
		}
		if b < 0 {
			b = rng.Intn(nEntities)
		}
		if a != b {
			g.MustAddEdge(entityVerts[a], entityVerts[b], "relatedTo")
			neighbors[a] = append(neighbors[a], b)
			neighbors[b] = append(neighbors[b], a)
		}
	}

	// ---- Ground truth ------------------------------------------------------
	out := &Generated{Config: cfg, DB: db, GD: gd, Mapping: mapping, G: g,
		EntityVertices: entityVerts}
	for e := 0; e < cfg.NumEntities; e++ {
		if tv, ok := twinOf[e]; ok {
			out.TwinVertices = append(out.TwinVertices, tv)
		}
	}
	for e := 0; e < nTuples; e++ {
		ut, ok := mapping.VertexOf(cfg.MainRelation, e)
		if !ok {
			return nil, fmt.Errorf("dataset %s: tuple %d unmapped", cfg.Name, e)
		}
		out.TupleVertices = append(out.TupleVertices, ut)
	}
	nAnn := cfg.Annotations
	if nAnn <= 0 || nAnn > cfg.NumEntities {
		nAnn = cfg.NumEntities
	}
	perm := rng.Perm(cfg.NumEntities)[:nAnn]
	for _, e := range perm {
		out.Truth = append(out.Truth, learn.Annotation{
			Pair:  core.Pair{U: out.TupleVertices[e], V: entityVerts[e]},
			Match: true,
		})
	}
	// Mismatches: same count, preferring hard negatives — among a handful
	// of sampled wrong entities, pick the one sharing the most attribute
	// values with the tuple, so shallow value-overlap methods are
	// genuinely challenged.
	shared := func(a, b []string) int {
		n := 0
		for i := range a {
			if i < len(b) && a[i] == b[i] {
				n++
			}
		}
		return n
	}
	valuesOf := func(e int) []string {
		if e < cfg.NumEntities {
			return values[e]
		}
		return nil
	}
	for _, e := range perm {
		// Twins are the hardest negatives; annotate them first.
		if tv, ok := twinOf[e]; ok {
			out.Truth = append(out.Truth, learn.Annotation{
				Pair:  core.Pair{U: out.TupleVertices[e], V: tv},
				Match: false,
			})
			continue
		}
		best, bestShared := -1, -1
		// Next hardest: cross-linked neighbors of the true entity, whose
		// 2-hop neighborhoods contain the true entity's values, fooling
		// flattening and local-embedding methods.
		if len(neighbors[e]) > 0 && rng.Float64() < 0.6 {
			best = neighbors[e][rng.Intn(len(neighbors[e]))]
		} else {
			for trial := 0; trial < 8; trial++ {
				other := rng.Intn(nEntities)
				if other == e {
					continue
				}
				s := shared(values[e], valuesOf(other))
				if cfg.Dim != nil && other < cfg.NumEntities && dimOf[other] == dimOf[e] {
					s++ // shared dimension entity makes it harder still
				}
				if s > bestShared {
					best, bestShared = other, s
				}
			}
		}
		if best < 0 || best == e {
			best = (e + 1) % nEntities
		}
		out.Truth = append(out.Truth, learn.Annotation{
			Pair:  core.Pair{U: out.TupleVertices[e], V: entityVerts[best]},
			Match: false,
		})
	}

	// ---- Annotated path pairs for M_ρ --------------------------------------
	out.PathPairs = cfg.pathPairs(rng)
	return out, nil
}

// baseValue draws the clean (relational-side) value of an attribute.
func baseValue(rng *rand.Rand, a AttrSpec, id int) string {
	if a.Identity || a.Pool == nil {
		return identityValue(rng, id)
	}
	return a.Pool[rng.Intn(len(a.Pool))]
}

// pathPairs derives the M_ρ training annotations from the known
// attribute-to-predicate mappings: positives pair each attribute name
// with its graph path (and the FK with its predicate, plus the combined
// FK+dimension-attribute paths); negatives cross-pair distinct
// attributes.
func (c Config) pathPairs(rng *rand.Rand) []PathPair {
	type m struct {
		a []string
		b []string
	}
	var pos []m
	for _, a := range c.Attrs {
		pos = append(pos, m{a: []string{a.Name}, b: a.Predicates})
	}
	if c.Dim != nil {
		pos = append(pos, m{a: []string{c.Dim.FKAttr}, b: []string{c.Dim.Predicate}})
		for _, a := range c.Dim.Attrs {
			pos = append(pos, m{a: []string{a.Name}, b: a.Predicates})
			pos = append(pos, m{
				a: []string{c.Dim.FKAttr, a.Name},
				b: append([]string{c.Dim.Predicate}, a.Predicates...),
			})
		}
	}
	var out []PathPair
	for _, p := range pos {
		out = append(out, PathPair{A: p.a, B: p.b, Match: true})
	}
	// Negatives: mismatched combinations, plus cross-link detours and
	// junk predicates — the associations the trained M_ρ must discount.
	for i := range pos {
		if len(pos) > 1 {
			j := rng.Intn(len(pos))
			for j == i {
				j = rng.Intn(len(pos))
			}
			out = append(out, PathPair{A: pos[i].a, B: pos[j].b, Match: false})
		}
		out = append(out, PathPair{
			A:     pos[i].a,
			B:     append([]string{"relatedTo"}, pos[i].b...),
			Match: false,
		})
		out = append(out, PathPair{
			A:     pos[i].a,
			B:     []string{junkPredicates[i%len(junkPredicates)]},
			Match: false,
		})
	}
	return out
}
