// Package dataset generates the evaluation data of Section VII. Each of
// the paper's datasets (UKGOV, DBpediaP, DBLP, IMDB, FBWIKI, the SemTab
// "Tough Tables" 2T, and the TPC-H-style synthetic generator) is modelled
// by a deterministic seeded generator that reproduces the dataset's
// *shape*: its schema style, label vocabulary, the attribute-to-path
// heterogeneity between the relational and graph representations, null
// rates, and — for 2T — heavy typo noise (DESIGN.md substitution 3).
//
// A generated dataset bundles a relational database D, its RDB2RDF
// canonical graph G_D, an independently structured graph G, ground-truth
// match/mismatch annotations (tuple vertex ↔ entity vertex), and the
// annotated path pairs used to train the M_ρ metric model.
package dataset

import (
	"fmt"
	"math/rand"
	"strings"
)

// AttrSpec describes one attribute of the main (or dimension) relation
// and how the graph side encodes it.
type AttrSpec struct {
	Name       string   // relation attribute name
	Predicates []string // graph-side edge labels; len > 1 encodes the attribute as a path
	Pool       []string // categorical value pool; nil means synthesized identity values
	NullRate   float64  // probability the relational value is null
	DropRate   float64  // probability the graph side omits the property (missing links)
	Identity   bool     // identity attributes (names/titles) get unique-ish values
}

// DimSpec describes a foreign-key dimension relation (e.g. item → brand):
// the relational side references it by key; the graph side links the
// entity vertex to a dimension entity vertex that carries its own
// properties, exercising ParaMatch's recursion.
type DimSpec struct {
	Relation   string // dimension relation name; also the G_D tuple label
	GraphLabel string // G-side dimension vertex label
	FKAttr     string // FK attribute name in the main relation
	Predicate  string // G-side edge label from entity to dimension vertex
	Count      int    // number of dimension entities
	Attrs      []AttrSpec
}

// Config parameterizes one generated dataset.
type Config struct {
	Name          string
	Seed          int64
	NumEntities   int    // entities present on both sides (the matchable core)
	ExtraTuples   int    // tuples with no graph counterpart
	ExtraEntities int    // graph entities with no tuple
	MainRelation  string // main relation name (labels G_D tuple vertices)
	GraphLabel    string // G-side entity type label (must be σ-close to MainRelation)
	Attrs         []AttrSpec
	Dim           *DimSpec
	NoiseLevel    float64 // graph-side label perturbation intensity in [0,1]
	Annotations   int     // target number of match annotations (same count of mismatches)
	// CrossLinks adds this many entity→entity edges in G (e.g. DBLP
	// citations), creating cycles and non-tree structure. Cross-linked
	// neighborhoods are what confuse local-embedding and flattening
	// methods: a 2-hop flatten of an entity includes its neighbors'
	// values.
	CrossLinks int
	// Distractors adds this many junk properties per graph entity
	// (predicates from a junk pool, values sampled from other entities'
	// identity values), diluting bag-of-words profiles while parametric
	// simulation's trained M_ρ discounts the junk predicates.
	Distractors int
	// TwinRate is the fraction of matchable entities that get a "twin"
	// in G: a distinct entity sharing the same dimension and the same
	// shallow (single-predicate) attribute values, with a near-miss name
	// and different deep (path-expanded) values. Twins are the hard
	// negatives only a method that recursively checks descendants can
	// reject — shallow 2-hop flattening sees almost the same record.
	TwinRate float64
}

// junkPredicates is the distractor predicate pool.
var junkPredicates = []string{"seeAlso", "note", "tag", "refCode", "linkedFrom"}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumEntities <= 0 {
		return fmt.Errorf("dataset %s: NumEntities must be positive", c.Name)
	}
	if c.MainRelation == "" || c.GraphLabel == "" {
		return fmt.Errorf("dataset %s: relation and graph labels required", c.Name)
	}
	if len(c.Attrs) == 0 {
		return fmt.Errorf("dataset %s: at least one attribute required", c.Name)
	}
	for _, a := range c.Attrs {
		if len(a.Predicates) == 0 || len(a.Predicates) > 3 {
			return fmt.Errorf("dataset %s: attribute %s needs 1-3 predicates", c.Name, a.Name)
		}
	}
	if c.NoiseLevel < 0 || c.NoiseLevel > 1 {
		return fmt.Errorf("dataset %s: noise level %f out of [0,1]", c.Name, c.NoiseLevel)
	}
	return nil
}

// Word pools used to synthesize identity values and intermediates.
var (
	nameWords = []string{
		"north", "silver", "royal", "grand", "eastern", "golden", "urban",
		"crystal", "summit", "harbor", "maple", "cedar", "bright", "swift",
		"stone", "river", "falcon", "amber", "noble", "prime", "vivid",
		"solar", "lunar", "rapid", "quiet", "bold", "iron", "coral",
		"crimson", "jade", "onyx", "pearl", "terra", "vertex", "zephyr",
	}
	nounWords = []string{
		"systems", "works", "group", "labs", "partners", "holdings",
		"dynamics", "logic", "fields", "square", "garden", "bridge",
		"center", "point", "heights", "valley", "junction", "commons",
		"crossing", "terrace", "station", "quarter", "market", "grove",
	}
	cities = []string{
		"London", "Leeds", "Bristol", "Camden", "Oxford", "York",
		"Glasgow", "Cardiff", "Dublin", "Belfast", "Bath", "Durham",
		"Hanoi", "Berlin", "Lyon", "Porto", "Turin", "Gdansk",
	}
	countries = []string{
		"United Kingdom", "Germany", "France", "Vietnam", "Portugal",
		"Italy", "Poland", "Ireland", "Spain", "Netherlands", "Austria",
		"Denmark", "Norway", "Belgium",
	}
	colors = []string{"red", "white", "black", "blue", "green", "silver", "navy", "grey"}
	years  = []string{"2008", "2009", "2010", "2011", "2012", "2013", "2014",
		"2015", "2016", "2017", "2018", "2019", "2020", "2021"}
)

// identityValue synthesizes a unique-ish multi-word identity label.
func identityValue(rng *rand.Rand, id int) string {
	w1 := nameWords[rng.Intn(len(nameWords))]
	w2 := nounWords[rng.Intn(len(nounWords))]
	w3 := nameWords[rng.Intn(len(nameWords))]
	return fmt.Sprintf("%s %s %s %d", strings.Title(w1), strings.Title(w3), w2, id)
}

// perturb applies graph-side label noise: with probability proportional
// to level it lowercases, drops a token, abbreviates, or injects a typo.
// A level of 0 returns the label unchanged. Short categorical labels
// (single token — codes, years, colors) only suffer case noise below the
// 2T noise regime: such values are copied, not re-typed, in real
// knowledge graphs.
func perturb(rng *rand.Rand, label string, level float64) string {
	if level <= 0 || label == "" {
		return label
	}
	out := label
	if rng.Float64() < level {
		out = strings.ToLower(out)
	}
	if level < 0.5 && len(strings.Fields(label)) == 1 {
		return out
	}
	if rng.Float64() < level/2 {
		// Drop the last token of multi-token labels.
		toks := strings.Fields(out)
		if len(toks) > 2 {
			out = strings.Join(toks[:len(toks)-1], " ")
		}
	}
	if rng.Float64() < level/2 {
		out = typo(rng, out)
	}
	if rng.Float64() < level/3 {
		out = typo(rng, out)
	}
	// 2T-style compounding misspellings: at high noise, every token is
	// independently at risk, which defeats exact and n-gram lookups.
	if level >= 0.5 {
		toks := strings.Fields(out)
		for i := range toks {
			if rng.Float64() < level/2 {
				toks[i] = typo(rng, toks[i])
			}
		}
		out = strings.Join(toks, " ")
	}
	return out
}

// graphIdentity reformats an identity value for the graph side: the
// trailing numeric id token stays in the relation but not in the graph
// (as in the paper's running example, where the tuple's "Dame Basketball
// Shoes D7" appears in G as "Dame Basketball Shoes" plus a separate
// typeNo vertex). Exact-lookup methods lose their anchor; semantic
// similarity survives.
func graphIdentity(val string) string {
	toks := strings.Fields(val)
	if len(toks) < 2 {
		return val
	}
	last := toks[len(toks)-1]
	if last != "" && last[0] >= '0' && last[0] <= '9' {
		return strings.Join(toks[:len(toks)-1], " ")
	}
	return val
}

// twinName derives a near-miss identity label. Half the twins are
// "hard": only the trailing id changes, leaving token- and
// character-level similarity near 1 — indistinguishable by value
// comparison alone. The rest also swap one word, dropping token
// similarity while character similarity stays high.
func twinName(rng *rand.Rand, name string) string {
	toks := strings.Fields(name)
	if len(toks) == 0 {
		return name + " II"
	}
	if rng.Intn(2) == 0 {
		swap := rng.Intn(len(toks))
		toks[swap] = strings.Title(nameWords[rng.Intn(len(nameWords))])
	}
	last := toks[len(toks)-1]
	if last != "" && last[0] >= '0' && last[0] <= '9' {
		toks[len(toks)-1] = last + "1"
	} else {
		toks = append(toks, "II")
	}
	return strings.Join(toks, " ")
}

// typo swaps two adjacent characters or substitutes one.
func typo(rng *rand.Rand, s string) string {
	r := []rune(s)
	if len(r) < 3 {
		return s
	}
	i := 1 + rng.Intn(len(r)-2)
	if rng.Intn(2) == 0 {
		r[i], r[i+1] = r[i+1], r[i]
	} else {
		r[i] = rune('a' + rng.Intn(26))
	}
	return string(r)
}
