package dataset

import (
	"math/rand"
	"strings"
	"testing"

	"her/internal/graph"
	"her/internal/relational"
)

func TestAllNamedDatasetsGenerate(t *testing.T) {
	for _, name := range append([]string{"Synthetic"}, Names...) {
		cfg, ok := ByName(name, 50)
		if !ok {
			t.Fatalf("unknown dataset %s", name)
		}
		d, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := d.DB.Validate(); err != nil {
			t.Errorf("%s: referential integrity: %v", name, err)
		}
		vd, ed, v, e := d.Sizes()
		if vd == 0 || ed == 0 || v == 0 || e == 0 {
			t.Errorf("%s: degenerate sizes %d/%d/%d/%d", name, vd, ed, v, e)
		}
		if len(d.TupleVertices) != cfg.NumEntities+cfg.ExtraTuples {
			t.Errorf("%s: tuple vertices = %d", name, len(d.TupleVertices))
		}
		if len(d.EntityVertices) != cfg.NumEntities+cfg.ExtraEntities {
			t.Errorf("%s: entity vertices = %d", name, len(d.EntityVertices))
		}
		// Match/non-match ratio 1.
		matches, mismatches := 0, 0
		for _, a := range d.Truth {
			if a.Match {
				matches++
			} else {
				mismatches++
			}
		}
		if matches == 0 || matches != mismatches {
			t.Errorf("%s: annotation balance %d/%d", name, matches, mismatches)
		}
		if len(d.PathPairs) == 0 {
			t.Errorf("%s: no path pairs", name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("NoSuchDataset", 0); ok {
		t.Error("unknown dataset accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg, _ := ByName("DBLP", 40)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.G.NumVertices() != b.G.NumVertices() || a.G.NumEdges() != b.G.NumEdges() {
		t.Error("graph generation not deterministic")
	}
	for i := range a.Truth {
		if a.Truth[i] != b.Truth[i] {
			t.Fatal("truth not deterministic")
		}
	}
	for v := 0; v < a.G.NumVertices(); v++ {
		if a.G.Label(int32VID(v)) != b.G.Label(int32VID(v)) {
			t.Fatal("labels not deterministic")
		}
	}
}

func int32VID(i int) graph.VID { return graph.VID(i) }

func TestTruthPairsAreWellFormed(t *testing.T) {
	cfg, _ := ByName("IMDB", 40)
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range d.Truth {
		if !d.GD.Valid(a.Pair.U) || !d.G.Valid(a.Pair.V) {
			t.Fatalf("annotation references invalid vertices: %+v", a)
		}
		if _, ok := d.Mapping.TupleOf(a.Pair.U); !ok {
			t.Fatalf("annotation U side is not a tuple vertex: %+v", a)
		}
		if d.G.Label(a.Pair.V) != cfg.GraphLabel {
			t.Fatalf("annotation V side is not an entity vertex: %+v", a)
		}
	}
}

func TestPathExpansionShape(t *testing.T) {
	cfg, _ := ByName("FBWIKI", 30)
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// FBWIKI has a 3-predicate birthplace path: from any entity vertex
	// with a bornAt edge, the chain bornAt → locatedIn → placeName must
	// exist.
	found := false
	for _, ev := range d.EntityVertices {
		for _, e1 := range d.G.Out(ev) {
			if e1.Label != "bornAt" {
				continue
			}
			for _, e2 := range d.G.Out(e1.To) {
				if e2.Label != "locatedIn" {
					continue
				}
				for _, e3 := range d.G.Out(e2.To) {
					if e3.Label == "placeName" && d.G.IsLeaf(e3.To) {
						found = true
					}
				}
			}
		}
	}
	if !found {
		t.Error("no bornAt→locatedIn→placeName chain found")
	}
}

func TestNoiseLevelsDiffer(t *testing.T) {
	clean, _ := ByName("DBpediaP", 60)
	noisy, _ := ByName("2T", 60)
	dc, err := Generate(clean)
	if err != nil {
		t.Fatal(err)
	}
	dn, err := Generate(noisy)
	if err != nil {
		t.Fatal(err)
	}
	// Measure how often a graph-side value exactly equals some
	// relational value: noisy data should have fewer exact overlaps.
	exact := func(d *Generated) float64 {
		vals := map[string]bool{}
		for _, rel := range d.DB.Relations {
			for _, tu := range rel.Tuples {
				for _, v := range tu.Values {
					if !relational.IsNull(v) {
						vals[v] = true
					}
				}
			}
		}
		hits, total := 0, 0
		for i := 0; i < d.G.NumVertices(); i++ {
			if d.G.IsLeaf(int32VID(i)) {
				total++
				if vals[d.G.Label(int32VID(i))] {
					hits++
				}
			}
		}
		if total == 0 {
			return 0
		}
		return float64(hits) / float64(total)
	}
	if exact(dn) >= exact(dc) {
		t.Errorf("2T (%f) should have fewer exact label overlaps than DBpediaP (%f)",
			exact(dn), exact(dc))
	}
}

func TestScale(t *testing.T) {
	base := Synthetic()
	big := Scale(base, 2000)
	if big.NumEntities != 2000 {
		t.Errorf("NumEntities = %d", big.NumEntities)
	}
	if big.Dim.Count <= base.Dim.Count {
		t.Errorf("dimension did not scale: %d", big.Dim.Count)
	}
	if Scale(base, 0).NumEntities != base.NumEntities {
		t.Error("Scale(0) should be identity")
	}
	small := Scale(base, 10)
	if small.Annotations < 10 {
		t.Errorf("annotations floor violated: %d", small.Annotations)
	}
}

func TestConfigValidate(t *testing.T) {
	good := Synthetic()
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	bad := good
	bad.NumEntities = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero entities accepted")
	}
	bad = good
	bad.Attrs = nil
	if err := bad.Validate(); err == nil {
		t.Error("no attributes accepted")
	}
	bad = good
	bad.NoiseLevel = 2
	if err := bad.Validate(); err == nil {
		t.Error("noise > 1 accepted")
	}
	bad = good
	bad.Attrs = []AttrSpec{{Name: "x", Predicates: []string{"a", "b", "c", "d"}}}
	if err := bad.Validate(); err == nil {
		t.Error("4-predicate path accepted")
	}
}

func TestPerturb(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := perturb(rng, "Hello World", 0); got != "Hello World" {
		t.Errorf("zero noise changed label: %q", got)
	}
	if got := perturb(rng, "", 0.9); got != "" {
		t.Errorf("empty label perturbed: %q", got)
	}
	// High noise frequently changes the label.
	changed := 0
	for i := 0; i < 100; i++ {
		if perturb(rng, "Silver Harbor Works 42", 0.9) != "Silver Harbor Works 42" {
			changed++
		}
	}
	if changed < 50 {
		t.Errorf("high noise changed only %d/100", changed)
	}
	// Typos keep length within one.
	for i := 0; i < 50; i++ {
		out := typo(rng, "abcdef")
		if len(out) != 6 {
			t.Errorf("typo changed length: %q", out)
		}
	}
	if typo(rng, "ab") != "ab" {
		t.Error("short strings should be typo-stable")
	}
}

func TestExample1(t *testing.T) {
	ex, err := BuildExample1()
	if err != nil {
		t.Fatal(err)
	}
	if ex.DB.NumTuples() != 5 {
		t.Errorf("tuples = %d", ex.DB.NumTuples())
	}
	if err := ex.DB.Validate(); err != nil {
		t.Error(err)
	}
	if ex.G.Label(ex.V1) != "item" || ex.G.Label(ex.V10) != "brand" {
		t.Error("example vertex labels wrong")
	}
	// The made_in path exists.
	foundPath := false
	for _, e1 := range ex.G.Out(ex.V10) {
		if e1.Label == "factorySite" {
			for _, e2 := range ex.G.Out(e1.To) {
				if e2.Label == "isIn" && !ex.G.IsLeaf(e2.To) {
					foundPath = true
				}
			}
		}
	}
	if !foundPath {
		t.Error("factorySite/isIn path missing")
	}
	// Tuple t1 maps to a vertex labeled "item".
	u1, ok := ex.Mapping.VertexOf("item", 0)
	if !ok || ex.GD.Label(u1) != "item" {
		t.Error("t1 mapping broken")
	}
}

func TestPathPairsBalanced(t *testing.T) {
	cfg := Synthetic()
	d, err := Generate(Scale(cfg, 30))
	if err != nil {
		t.Fatal(err)
	}
	pos, neg := 0, 0
	for _, p := range d.PathPairs {
		if len(p.A) == 0 || len(p.B) == 0 {
			t.Fatalf("empty path pair %+v", p)
		}
		if p.Match {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg < pos {
		t.Errorf("path pair balance %d/%d", pos, neg)
	}
	// Positives include the FK + dimension combination.
	foundCombined := false
	for _, p := range d.PathPairs {
		if p.Match && len(p.A) == 2 && strings.HasPrefix(p.A[0], "supplier") {
			foundCombined = true
		}
	}
	if !foundCombined {
		t.Error("combined FK+dimension path pair missing")
	}
}

// TestEachDatasetHasDeepAttribute: the hard-negative design requires at
// least one 3-predicate attribute per dataset — the property only
// recursive descendant checking can see past a 2-hop flatten.
func TestEachDatasetHasDeepAttribute(t *testing.T) {
	for _, name := range append([]string{"Synthetic"}, Names...) {
		cfg, _ := ByName(name, 0)
		deep := 0
		for _, a := range cfg.Attrs {
			if len(a.Predicates) >= 3 {
				deep++
			}
		}
		if deep == 0 {
			t.Errorf("%s has no 3-predicate attribute", name)
		}
	}
}

// TestDimensionsRichEnoughForGlobalDelta: recursion applies the same δ
// at every level, so a dimension must carry enough properties to clear
// a realistic entity-level δ (the paper's brand relation has 4).
func TestDimensionsRichEnoughForGlobalDelta(t *testing.T) {
	for _, name := range append([]string{"Synthetic"}, Names...) {
		cfg, _ := ByName(name, 0)
		if cfg.Dim == nil {
			continue
		}
		// Maximum achievable aggregate: Σ 1/(1+len(predicates)).
		max := 0.0
		for _, a := range cfg.Dim.Attrs {
			max += 1.0 / float64(1+len(a.Predicates))
		}
		if max < 1.5 {
			t.Errorf("%s dimension %s max aggregate %.2f < 1.5", name, cfg.Dim.Relation, max)
		}
	}
}

func TestTwinsShareShallowDifferDeep(t *testing.T) {
	cfg, _ := ByName("Synthetic", 60)
	cfg.TwinRate = 1 // every entity gets a twin
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.TwinVertices) != cfg.NumEntities {
		t.Fatalf("twins = %d, want %d", len(d.TwinVertices), cfg.NumEntities)
	}
	// Every twin is annotated as a mismatch.
	twinSet := map[int32]bool{}
	for _, tv := range d.TwinVertices {
		twinSet[int32(tv)] = true
	}
	annotated := 0
	for _, a := range d.Truth {
		if a.Match && twinSet[int32(a.Pair.V)] {
			t.Fatalf("twin annotated as a match: %+v", a)
		}
		if !a.Match && twinSet[int32(a.Pair.V)] {
			annotated++
		}
	}
	if annotated == 0 {
		t.Error("no twin appears among the mismatch annotations")
	}
}

func TestGraphIdentityStripsID(t *testing.T) {
	if got := graphIdentity("Royal Amber systems 17"); got != "Royal Amber systems" {
		t.Errorf("graphIdentity = %q", got)
	}
	if got := graphIdentity("NoTrailingNumber"); got != "NoTrailingNumber" {
		t.Errorf("short label changed: %q", got)
	}
	if got := graphIdentity("London"); got != "London" {
		t.Errorf("single token changed: %q", got)
	}
}

func TestTwinNameVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sawHard, sawMedium := false, false
	for i := 0; i < 60; i++ {
		base := "Royal Amber systems 17"
		tn := twinName(rng, base)
		if tn == base {
			t.Fatalf("twin name identical to base")
		}
		if graphIdentity(tn) == graphIdentity(base) {
			sawHard = true // only the id changed
		} else {
			sawMedium = true // a word was swapped too
		}
	}
	if !sawHard || !sawMedium {
		t.Errorf("twin name mix: hard=%v medium=%v", sawHard, sawMedium)
	}
}
