package dataset

// The named configurations below model the shape of the paper's six
// real-life datasets (Table IV) at laptop scale, plus the TPC-H-style
// synthetic generator. Scale is the only deliberate departure: sizes are
// divided by roughly 10^3–10^4 so experiments run on one machine
// (DESIGN.md substitution 3). NumEntities can be overridden via the
// Scale helper for scalability sweeps.

// Names lists the real-life dataset generators in Table IV/V order.
var Names = []string{"UKGOV", "DBpediaP", "DBLP", "IMDB", "FBWIKI", "2T"}

// ByName returns the configuration of a named dataset with the given
// number of matchable entities (0 means the dataset's default).
func ByName(name string, entities int) (Config, bool) {
	var c Config
	switch name {
	case "UKGOV":
		c = UKGOV()
	case "DBpediaP":
		c = DBpediaP()
	case "DBLP":
		c = DBLP()
	case "IMDB":
		c = IMDB()
	case "FBWIKI":
		c = FBWIKI()
	case "2T":
		c = ToughTables()
	case "Synthetic":
		c = Synthetic()
	default:
		return Config{}, false
	}
	if entities > 0 {
		c = Scale(c, entities)
	}
	return c, true
}

// Scale resizes a configuration to n matchable entities, keeping the
// extras and annotation budget proportional.
func Scale(c Config, n int) Config {
	if n <= 0 {
		return c
	}
	ratio := float64(n) / float64(c.NumEntities)
	c.NumEntities = n
	c.ExtraTuples = int(float64(c.ExtraTuples) * ratio)
	c.ExtraEntities = int(float64(c.ExtraEntities) * ratio)
	c.CrossLinks = int(float64(c.CrossLinks) * ratio)
	if c.Annotations > 0 {
		c.Annotations = int(float64(c.Annotations) * ratio)
		if c.Annotations < 10 {
			c.Annotations = 10
		}
	}
	if c.Dim != nil {
		d := *c.Dim
		d.Count = int(float64(d.Count) * ratio)
		if d.Count < 2 {
			d.Count = 2
		}
		c.Dim = &d
	}
	return c
}

// UKGOV models the Camden Council open-data collection: commercial
// contracts with supplier organisations, flat attributes plus a
// ward-location path.
func UKGOV() Config {
	return Config{
		Name: "UKGOV", Seed: 101,
		NumEntities: 300, ExtraTuples: 30, ExtraEntities: 30,
		MainRelation: "contract", GraphLabel: "contract",
		Attrs: []AttrSpec{
			{Name: "title", Predicates: []string{"contractTitle"}, Identity: true},
			{Name: "service", Predicates: []string{"procuredService"}, Pool: nounWords},
			{Name: "ward", Predicates: []string{"deliveredIn", "inWard", "wardName"}, Pool: cities},
			{Name: "start_year", Predicates: []string{"startsIn"}, Pool: years, NullRate: 0.1},
			{Name: "department", Predicates: []string{"managedBy", "unitOf", "deptName"}, Pool: nounWords},
		},
		Dim: &DimSpec{
			Relation: "organisation", GraphLabel: "organisation",
			FKAttr: "supplier", Predicate: "suppliedBy", Count: 30,
			Attrs: []AttrSpec{
				{Name: "org_name", Predicates: []string{"orgName"}, Identity: true},
				{Name: "org_city", Predicates: []string{"registeredIn", "cityName"}, Pool: cities},
				{Name: "org_type", Predicates: []string{"orgType"}, Pool: nounWords},
				{Name: "founded", Predicates: []string{"foundedIn"}, Pool: years},
			},
		},
		NoiseLevel:  0.2,
		CrossLinks:  300,
		Distractors: 3,
		TwinRate:    0.45,
		Annotations: 240,
	}
}

// DBpediaP models the DBpedia athletes/politicians subset: people with
// nationality and affiliation, moderately clean labels.
func DBpediaP() Config {
	return Config{
		Name: "DBpediaP", Seed: 102,
		NumEntities: 300, ExtraTuples: 40, ExtraEntities: 40,
		MainRelation: "person", GraphLabel: "person",
		Attrs: []AttrSpec{
			{Name: "name", Predicates: []string{"fullName"}, Identity: true},
			{Name: "birth_year", Predicates: []string{"bornIn"}, Pool: years},
			{Name: "birthplace", Predicates: []string{"bornAt", "locatedIn", "placeName"}, Pool: cities},
			{Name: "country", Predicates: []string{"citizenOf", "locatedIn", "countryName"}, Pool: countries, NullRate: 0.05},
		},
		Dim: &DimSpec{
			Relation: "team", GraphLabel: "team",
			FKAttr: "team", Predicate: "playsFor", Count: 25,
			Attrs: []AttrSpec{
				{Name: "team_name", Predicates: []string{"teamName"}, Identity: true},
				{Name: "team_city", Predicates: []string{"basedIn"}, Pool: cities},
				{Name: "founded", Predicates: []string{"foundedIn"}, Pool: years},
				{Name: "team_color", Predicates: []string{"teamColor"}, Pool: colors},
			},
		},
		NoiseLevel:  0.15,
		CrossLinks:  300,
		Distractors: 3,
		TwinRate:    0.45,
		Annotations: 240,
	}
}

// DBLP models the citation network: papers with venues and years, with
// citation cross-links creating cycles in G.
func DBLP() Config {
	return Config{
		Name: "DBLP", Seed: 103,
		NumEntities: 350, ExtraTuples: 40, ExtraEntities: 40,
		MainRelation: "paper", GraphLabel: "paper",
		Attrs: []AttrSpec{
			{Name: "title", Predicates: []string{"hasTitle"}, Identity: true},
			{Name: "year", Predicates: []string{"publishedIn"}, Pool: years},
			{Name: "first_author", Predicates: []string{"writtenBy", "knownAs", "authorName"}, Identity: true},
			{Name: "area", Predicates: []string{"inField", "subFieldOf", "fieldName"}, Pool: nounWords},
		},
		Dim: &DimSpec{
			Relation: "venue", GraphLabel: "venue",
			FKAttr: "venue", Predicate: "appearsIn", Count: 20,
			Attrs: []AttrSpec{
				{Name: "venue_name", Predicates: []string{"venueName"}, Identity: true},
				{Name: "venue_city", Predicates: []string{"heldIn", "cityName"}, Pool: cities, DropRate: 0.2},
				{Name: "since", Predicates: []string{"establishedIn"}, Pool: years},
				{Name: "publisher", Predicates: []string{"publishedBy"}, Pool: nounWords},
			},
		},
		NoiseLevel:  0.25,
		CrossLinks:  700,
		Distractors: 4,
		TwinRate:    0.45,
		Annotations: 240,
	}
}

// IMDB models the movie dataset: films with genre, year and a studio
// dimension.
func IMDB() Config {
	return Config{
		Name: "IMDB", Seed: 104,
		NumEntities: 300, ExtraTuples: 30, ExtraEntities: 50,
		MainRelation: "movie", GraphLabel: "movie",
		Attrs: []AttrSpec{
			{Name: "title", Predicates: []string{"movieTitle"}, Identity: true},
			{Name: "year", Predicates: []string{"releasedIn"}, Pool: years},
			{Name: "genre", Predicates: []string{"hasGenre"}, Pool: []string{
				"drama", "comedy", "thriller", "action", "documentary", "romance"}, NullRate: 0.05},
			{Name: "director", Predicates: []string{"directedBy", "hasProfile", "personName"}, Identity: true, DropRate: 0.05},
			{Name: "lead_actor", Predicates: []string{"starring", "hasProfile", "personName"}, Identity: true},
		},
		Dim: &DimSpec{
			Relation: "studio", GraphLabel: "studio",
			FKAttr: "studio", Predicate: "producedBy", Count: 20,
			Attrs: []AttrSpec{
				{Name: "studio_name", Predicates: []string{"studioName"}, Identity: true},
				{Name: "studio_country", Predicates: []string{"locatedIn"}, Pool: countries},
				{Name: "founded", Predicates: []string{"foundedIn"}, Pool: years},
				{Name: "studio_city", Predicates: []string{"basedIn"}, Pool: cities},
			},
		},
		NoiseLevel:  0.25,
		CrossLinks:  600,
		Distractors: 4,
		TwinRate:    0.45,
		Annotations: 240,
	}
}

// FBWIKI models the Freebase/Wikidata people subset: a knowledge base
// with long property paths (its "matching paths are much longer", as the
// paper notes for the δ sweep).
func FBWIKI() Config {
	return Config{
		Name: "FBWIKI", Seed: 105,
		NumEntities: 300, ExtraTuples: 30, ExtraEntities: 60,
		MainRelation: "person", GraphLabel: "person",
		Attrs: []AttrSpec{
			{Name: "name", Predicates: []string{"label"}, Identity: true},
			{Name: "birthplace", Predicates: []string{"bornAt", "locatedIn", "placeName"}, Pool: cities},
			{Name: "occupation", Predicates: []string{"hasOccupation", "occupationName"}, Pool: []string{
				"engineer", "actor", "writer", "politician", "athlete", "musician"}},
			{Name: "country", Predicates: []string{"citizenOf", "isIn", "countryName"}, Pool: countries, DropRate: 0.15},
		},
		NoiseLevel:  0.25,
		CrossLinks:  300,
		Distractors: 3,
		TwinRate:    0.45,
		Annotations: 240,
	}
}

// ToughTables models the SemTab 2020 "2T" dataset: the same shape as
// DBpediaP but with heavy misspellings and typos, the property that made
// spell-checker-assisted systems win the CEA task.
func ToughTables() Config {
	c := DBpediaP()
	c.Name = "2T"
	c.Seed = 106
	c.NoiseLevel = 0.75
	return c
}

// Synthetic is the TPC-H-flavoured scalable generator: parts with
// suppliers, controlled by NumEntities (vertex labels drawn from the
// word pools, edge labels from a fixed predicate set).
func Synthetic() Config {
	return Config{
		Name: "Synthetic", Seed: 107,
		NumEntities: 1000, ExtraTuples: 100, ExtraEntities: 100,
		MainRelation: "part", GraphLabel: "part",
		Attrs: []AttrSpec{
			{Name: "part_name", Predicates: []string{"partName"}, Identity: true},
			{Name: "brand", Predicates: []string{"hasBrand"}, Pool: nameWords},
			{Name: "container", Predicates: []string{"packedIn"}, Pool: nounWords},
			{Name: "size", Predicates: []string{"hasSize"}, Pool: []string{
				"1", "2", "5", "10", "20", "50"}},
			{Name: "origin", Predicates: []string{"madeIn", "locatedIn", "countryName"}, Pool: countries},
			{Name: "material", Predicates: []string{"madeOf", "gradeOf", "materialName"}, Pool: nounWords},
		},
		Dim: &DimSpec{
			Relation: "supplier", GraphLabel: "supplier",
			FKAttr: "supplier", Predicate: "suppliedBy", Count: 50,
			Attrs: []AttrSpec{
				{Name: "supp_name", Predicates: []string{"supplierName"}, Identity: true},
				{Name: "nation", Predicates: []string{"inNation", "nationName"}, Pool: countries},
				{Name: "rating", Predicates: []string{"hasRating"}, Pool: []string{"1", "2", "3", "4", "5"}},
				{Name: "founded", Predicates: []string{"foundedIn"}, Pool: years},
			},
		},
		NoiseLevel:  0.15,
		CrossLinks:  500,
		Distractors: 2,
		TwinRate:    0.3,
		Annotations: 200,
	}
}
