package dataset

import (
	"her/internal/graph"
	"her/internal/rdb2rdf"
	"her/internal/relational"
)

// Example1 is the paper's running example: the procurement-order
// database of Tables I and II and the product knowledge graph of Fig. 1
// (the neighborhood the examples describe). It is used by the
// examples/procurement program and by integration tests.
type Example1 struct {
	DB      *relational.Database
	GD      *graph.Graph
	Mapping *rdb2rdf.Mapping
	G       *graph.Graph

	// Named vertices of G following the paper's numbering.
	V1, V3, V10 graph.VID // matching item, decoy item, brand entity
}

// BuildExample1 constructs the fixture.
func BuildExample1() (*Example1, error) {
	brand := relational.MustSchema("brand",
		[]string{"name", "country", "manufacturer", "made_in"}, "name")
	item := relational.MustSchema("item",
		[]string{"item", "material", "color", "type", "brand", "qty"}, "item",
		relational.ForeignKey{Attr: "brand", RefRelation: "brand"})
	db := relational.NewDatabase(item, brand)
	db.Relation("brand").MustInsert("Addidas Originals", "Germany", "Addidas AG", "Can Duoc, VN")
	db.Relation("brand").MustInsert("Addidas", "Germany", "Addidas AG", "Long An, Vietnam")
	db.Relation("item").MustInsert("Dame Basketball Shoes D7", "phylon foam", "white", "Dame 7", "Addidas Originals", "500")
	db.Relation("item").MustInsert("Lightweight Running Shoes", "synthetic", "red", "DD8505", "Addidas Originals", "100")
	db.Relation("item").MustInsert("Mid-cut Basketball Shoes Ultra Comfortable", "phylon foam", "red", relational.Null, "Addidas", "200")

	gd, mapping, err := rdb2rdf.Map(db)
	if err != nil {
		return nil, err
	}

	g := graph.New()
	v1 := g.AddVertex("item")
	v0 := g.AddVertex("Dame Basketball Shoes")
	v6 := g.AddVertex("phylon foam")
	v8 := g.AddVertex("Dame Gen 7")
	v10 := g.AddVertex("brand")
	v12 := g.AddVertex("white")
	v2 := g.AddVertex("Basketball Shoes")
	g.MustAddEdge(v1, v0, "names")
	g.MustAddEdge(v1, v6, "soleMadeBy")
	g.MustAddEdge(v1, v8, "typeNo")
	g.MustAddEdge(v1, v10, "brandName")
	g.MustAddEdge(v1, v12, "hasColor")
	g.MustAddEdge(v1, v2, "IsA")

	v18 := g.AddVertex("Addidas Originals")
	v20 := g.AddVertex("Germany")
	v17 := g.AddVertex("Addidas AG")
	v15 := g.AddVertex("Factory 9")
	v19 := g.AddVertex("Can Duoc")
	v9 := g.AddVertex("Can Duoc, VN")
	g.MustAddEdge(v10, v18, "type")
	g.MustAddEdge(v10, v20, "brandCountry")
	g.MustAddEdge(v10, v17, "belongsTo")
	g.MustAddEdge(v10, v15, "factorySite")
	g.MustAddEdge(v15, v19, "isIn")
	g.MustAddEdge(v19, v9, "isIn")

	// The decoy item (Mid-cut basketball shoes, red) the procurement
	// scenario must distinguish from t1.
	v3 := g.AddVertex("item")
	v21 := g.AddVertex("Mid-cut Basketball Shoes")
	v22 := g.AddVertex("red")
	g.MustAddEdge(v3, v21, "names")
	g.MustAddEdge(v3, v22, "hasColor")
	g.MustAddEdge(v3, v2, "IsA")
	g.MustAddEdge(v3, v10, "brandName")

	return &Example1{DB: db, GD: gd, Mapping: mapping, G: g, V1: v1, V3: v3, V10: v10}, nil
}
