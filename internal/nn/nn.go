// Package nn is the from-scratch neural-network substrate used by the
// metric-learning model inside M_ρ (the paper's "3-layer neural network")
// and by the DeepMatcher-style baseline. It provides fully connected
// multi-layer perceptrons with manual backpropagation, binary cross
// entropy and triplet/ranking losses, and an Adam optimizer. Everything is
// float64 and stdlib-only.
package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Activation selects the hidden-layer nonlinearity of an MLP.
type Activation int

const (
	// ReLU is max(0, x).
	ReLU Activation = iota
	// Tanh is the hyperbolic tangent.
	Tanh
	// Sigmoid is the logistic function.
	Sigmoid
)

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Tanh:
		return math.Tanh(x)
	default:
		return 1 / (1 + math.Exp(-x))
	}
}

// derivative given the activated output y (not the pre-activation).
func (a Activation) deriv(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	default:
		return y * (1 - y)
	}
}

// MLP is a fully connected network whose final layer is linear; Score
// applies a sigmoid on top so outputs live in [0, 1]. Inference (Apply,
// Score) is safe for concurrent use; training methods are not.
type MLP struct {
	sizes  []int
	hidden Activation
	// W[l] has sizes[l+1] rows × sizes[l] cols, flattened row-major.
	W [][]float64
	B [][]float64

	opt *adam

	mu sync.RWMutex
}

// NewMLP builds an MLP with the given layer sizes, e.g. [256, 64, 1] for
// the paper's metric network shape (scaled). Weights use Xavier-style
// initialization from the given seed, so construction is deterministic.
func NewMLP(sizes []int, hidden Activation, seed int64) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("nn: MLP needs at least input and output sizes, got %v", sizes)
	}
	for _, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("nn: layer sizes must be positive, got %v", sizes)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	m := &MLP{sizes: sizes, hidden: hidden}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		w := make([]float64, in*out)
		scale := math.Sqrt(2.0 / float64(in+out))
		for i := range w {
			w[i] = rng.NormFloat64() * scale
		}
		m.W = append(m.W, w)
		m.B = append(m.B, make([]float64, out))
	}
	return m, nil
}

// MustMLP is NewMLP that panics on error.
func MustMLP(sizes []int, hidden Activation, seed int64) *MLP {
	m, err := NewMLP(sizes, hidden, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// InputSize returns the expected input dimension.
func (m *MLP) InputSize() int { return m.sizes[0] }

// OutputSize returns the output dimension.
func (m *MLP) OutputSize() int { return m.sizes[len(m.sizes)-1] }

// forward computes the activations of every layer. acts[0] is the input;
// the final layer is linear.
func (m *MLP) forward(x []float64) [][]float64 {
	acts := make([][]float64, len(m.sizes))
	acts[0] = x
	for l := 0; l < len(m.W); l++ {
		in, out := m.sizes[l], m.sizes[l+1]
		a := make([]float64, out)
		w := m.W[l]
		for j := 0; j < out; j++ {
			s := m.B[l][j]
			row := w[j*in : (j+1)*in]
			xin := acts[l]
			for i := range row {
				s += row[i] * xin[i]
			}
			if l < len(m.W)-1 {
				s = m.hidden.apply(s)
			}
			a[j] = s
		}
		acts[l+1] = a
	}
	return acts
}

// Apply runs the network on x and returns the linear output layer.
func (m *MLP) Apply(x []float64) []float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	acts := m.forward(x)
	out := acts[len(acts)-1]
	cp := make([]float64, len(out))
	copy(cp, out)
	return cp
}

// Score runs the network and squashes the first output with a sigmoid,
// yielding a similarity score in [0, 1].
func (m *MLP) Score(x []float64) float64 {
	out := m.Apply(x)
	return 1 / (1 + math.Exp(-out[0]))
}

// grads holds per-layer parameter gradients.
type grads struct {
	dW [][]float64
	dB [][]float64
}

func (m *MLP) newGrads() *grads {
	g := &grads{}
	for l := range m.W {
		g.dW = append(g.dW, make([]float64, len(m.W[l])))
		g.dB = append(g.dB, make([]float64, len(m.B[l])))
	}
	return g
}

// backward accumulates gradients for one sample given the forward
// activations and the gradient of the loss w.r.t. the (linear) output.
// It returns the gradient w.r.t. the input (useful for chained models).
func (m *MLP) backward(acts [][]float64, gradOut []float64, g *grads) []float64 {
	delta := gradOut
	for l := len(m.W) - 1; l >= 0; l-- {
		in, out := m.sizes[l], m.sizes[l+1]
		w := m.W[l]
		xin := acts[l]
		for j := 0; j < out; j++ {
			d := delta[j]
			g.dB[l][j] += d
			row := g.dW[l][j*in : (j+1)*in]
			for i := 0; i < in; i++ {
				row[i] += d * xin[i]
			}
		}
		if l == 0 {
			// Gradient w.r.t. input.
			gin := make([]float64, in)
			for j := 0; j < out; j++ {
				d := delta[j]
				row := w[j*in : (j+1)*in]
				for i := 0; i < in; i++ {
					gin[i] += d * row[i]
				}
			}
			return gin
		}
		prev := make([]float64, in)
		for j := 0; j < out; j++ {
			d := delta[j]
			row := w[j*in : (j+1)*in]
			for i := 0; i < in; i++ {
				prev[i] += d * row[i]
			}
		}
		// Through the hidden activation of layer l.
		for i := 0; i < in; i++ {
			prev[i] *= m.hidden.deriv(acts[l][i])
		}
		delta = prev
	}
	return nil
}

// step applies accumulated gradients with Adam, scaled by 1/batch.
func (m *MLP) step(g *grads, lr float64, batch int) {
	if m.opt == nil {
		m.opt = newAdam(m)
	}
	inv := 1.0 / float64(batch)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.opt.step(m, g, lr, inv)
}

// adam implements the Adam optimizer state.
type adam struct {
	mW, vW [][]float64
	mB, vB [][]float64
	t      int
}

func newAdam(m *MLP) *adam {
	a := &adam{}
	for l := range m.W {
		a.mW = append(a.mW, make([]float64, len(m.W[l])))
		a.vW = append(a.vW, make([]float64, len(m.W[l])))
		a.mB = append(a.mB, make([]float64, len(m.B[l])))
		a.vB = append(a.vB, make([]float64, len(m.B[l])))
	}
	return a
}

func (a *adam) step(m *MLP, g *grads, lr, inv float64) {
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	a.t++
	bc1 := 1 - math.Pow(beta1, float64(a.t))
	bc2 := 1 - math.Pow(beta2, float64(a.t))
	upd := func(p, gr, mo, ve []float64) {
		for i := range p {
			gi := gr[i] * inv
			mo[i] = beta1*mo[i] + (1-beta1)*gi
			ve[i] = beta2*ve[i] + (1-beta2)*gi*gi
			mhat := mo[i] / bc1
			vhat := ve[i] / bc2
			p[i] -= lr * mhat / (math.Sqrt(vhat) + eps)
		}
	}
	for l := range m.W {
		upd(m.W[l], g.dW[l], a.mW[l], a.vW[l])
		upd(m.B[l], g.dB[l], a.mB[l], a.vB[l])
	}
}

// Snapshot is the serializable state of an MLP.
type Snapshot struct {
	Sizes  []int
	Hidden Activation
	W      [][]float64
	B      [][]float64
}

// Snapshot captures the network's parameters (optimizer state is not
// persisted; training can resume with a fresh optimizer).
func (m *MLP) Snapshot() Snapshot {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s := Snapshot{Sizes: append([]int{}, m.sizes...), Hidden: m.hidden}
	for l := range m.W {
		s.W = append(s.W, append([]float64{}, m.W[l]...))
		s.B = append(s.B, append([]float64{}, m.B[l]...))
	}
	return s
}

// FromSnapshot reconstructs an MLP from a snapshot.
func FromSnapshot(s Snapshot) (*MLP, error) {
	m, err := NewMLP(s.Sizes, s.Hidden, 0)
	if err != nil {
		return nil, err
	}
	if len(s.W) != len(m.W) || len(s.B) != len(m.B) {
		return nil, fmt.Errorf("nn: snapshot layer count mismatch")
	}
	for l := range m.W {
		if len(s.W[l]) != len(m.W[l]) || len(s.B[l]) != len(m.B[l]) {
			return nil, fmt.Errorf("nn: snapshot layer %d shape mismatch", l)
		}
		copy(m.W[l], s.W[l])
		copy(m.B[l], s.B[l])
	}
	return m, nil
}
