package nn

import (
	"math"
	"math/rand"
)

// Sample is one supervised example for binary classification: a feature
// vector and a label in {0, 1}.
type Sample struct {
	X []float64
	Y float64
}

// TrainConfig controls supervised training.
type TrainConfig struct {
	Epochs    int
	LearnRate float64
	BatchSize int
	Seed      int64
}

// DefaultTrainConfig returns sensible defaults for the small models used
// in this repository.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, LearnRate: 0.01, BatchSize: 16, Seed: 1}
}

// TrainBCE fits the network to the samples with sigmoid + binary cross
// entropy. The network's output size must be 1. It returns the mean loss
// of the final epoch.
func (m *MLP) TrainBCE(samples []Sample, cfg TrainConfig) float64 {
	if len(samples) == 0 {
		return 0
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.LearnRate <= 0 {
		cfg.LearnRate = 0.01
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	var lastLoss float64
	for ep := 0; ep < cfg.Epochs; ep++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			g := m.newGrads()
			for _, si := range idx[start:end] {
				s := samples[si]
				acts := m.forward(s.X)
				z := acts[len(acts)-1][0]
				p := 1 / (1 + math.Exp(-z))
				epochLoss += bceLoss(p, s.Y)
				// d(BCE∘sigmoid)/dz = p - y.
				m.backward(acts, []float64{p - s.Y}, g)
			}
			m.step(g, cfg.LearnRate, end-start)
		}
		lastLoss = epochLoss / float64(len(samples))
	}
	return lastLoss
}

func bceLoss(p, y float64) float64 {
	const eps = 1e-12
	if p < eps {
		p = eps
	} else if p > 1-eps {
		p = 1 - eps
	}
	return -(y*math.Log(p) + (1-y)*math.Log(1-p))
}

// Triplet is a ranking example: the score of Pos should exceed the score
// of Neg by at least the margin. Both are feature vectors of pair
// encodings sharing an implicit anchor, matching the paper's use of
// triplet loss (Schroff et al.) for robust fine-tuning.
type Triplet struct {
	Pos []float64
	Neg []float64
}

// TrainTriplet fine-tunes the network with a margin ranking loss over
// pre-sigmoid scores: L = max(0, margin - z(pos) + z(neg)). Returns the
// mean loss of the final epoch.
func (m *MLP) TrainTriplet(triplets []Triplet, margin float64, cfg TrainConfig) float64 {
	if len(triplets) == 0 {
		return 0
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.LearnRate <= 0 {
		cfg.LearnRate = 0.01
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, len(triplets))
	for i := range idx {
		idx[i] = i
	}
	var lastLoss float64
	for ep := 0; ep < cfg.Epochs; ep++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			g := m.newGrads()
			active := 0
			for _, ti := range idx[start:end] {
				tr := triplets[ti]
				actsP := m.forward(tr.Pos)
				actsN := m.forward(tr.Neg)
				zp := actsP[len(actsP)-1][0]
				zn := actsN[len(actsN)-1][0]
				loss := margin - zp + zn
				if loss <= 0 {
					continue
				}
				active++
				epochLoss += loss
				m.backward(actsP, []float64{-1}, g)
				m.backward(actsN, []float64{1}, g)
			}
			if active > 0 {
				m.step(g, cfg.LearnRate, active)
			}
		}
		lastLoss = epochLoss / float64(len(triplets))
	}
	return lastLoss
}

// Accuracy evaluates 0.5-thresholded classification accuracy on samples.
func (m *MLP) Accuracy(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		p := m.Score(s.X)
		if (p >= 0.5) == (s.Y >= 0.5) {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}
