package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewMLPValidation(t *testing.T) {
	if _, err := NewMLP([]int{4}, ReLU, 1); err == nil {
		t.Error("single layer should fail")
	}
	if _, err := NewMLP([]int{4, 0, 1}, ReLU, 1); err == nil {
		t.Error("zero-size layer should fail")
	}
	m := MustMLP([]int{4, 8, 1}, ReLU, 1)
	if m.InputSize() != 4 || m.OutputSize() != 1 {
		t.Errorf("sizes = %d,%d", m.InputSize(), m.OutputSize())
	}
}

func TestDeterministicInit(t *testing.T) {
	a := MustMLP([]int{3, 5, 1}, Tanh, 7)
	b := MustMLP([]int{3, 5, 1}, Tanh, 7)
	x := []float64{0.1, -0.4, 0.9}
	ya, yb := a.Apply(x), b.Apply(x)
	if ya[0] != yb[0] {
		t.Error("same seed should give identical networks")
	}
	c := MustMLP([]int{3, 5, 1}, Tanh, 8)
	if c.Apply(x)[0] == ya[0] {
		t.Error("different seeds should differ")
	}
}

func TestActivations(t *testing.T) {
	if ReLU.apply(-1) != 0 || ReLU.apply(2) != 2 {
		t.Error("ReLU wrong")
	}
	if math.Abs(Tanh.apply(0)) > 1e-12 {
		t.Error("Tanh(0) != 0")
	}
	if math.Abs(Sigmoid.apply(0)-0.5) > 1e-12 {
		t.Error("Sigmoid(0) != 0.5")
	}
	if ReLU.deriv(0) != 0 || ReLU.deriv(1) != 1 {
		t.Error("ReLU deriv wrong")
	}
	if math.Abs(Sigmoid.deriv(0.5)-0.25) > 1e-12 {
		t.Error("Sigmoid deriv wrong")
	}
	y := Tanh.apply(0.3)
	if math.Abs(Tanh.deriv(y)-(1-y*y)) > 1e-12 {
		t.Error("Tanh deriv wrong")
	}
}

// TestGradientCheck verifies backprop against numerical differentiation.
func TestGradientCheck(t *testing.T) {
	m := MustMLP([]int{3, 4, 1}, Tanh, 3)
	x := []float64{0.2, -0.5, 0.8}
	y := 1.0
	loss := func() float64 {
		z := m.Apply(x)[0]
		p := 1 / (1 + math.Exp(-z))
		return bceLoss(p, y)
	}
	g := m.newGrads()
	acts := m.forward(x)
	z := acts[len(acts)-1][0]
	p := 1 / (1 + math.Exp(-z))
	m.backward(acts, []float64{p - y}, g)

	const eps = 1e-6
	for l := range m.W {
		for i := 0; i < len(m.W[l]); i += 3 { // sample a few weights
			old := m.W[l][i]
			m.W[l][i] = old + eps
			lp := loss()
			m.W[l][i] = old - eps
			lm := loss()
			m.W[l][i] = old
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-g.dW[l][i]) > 1e-4 {
				t.Errorf("layer %d weight %d: numerical %g vs analytic %g", l, i, num, g.dW[l][i])
			}
		}
		for i := range m.B[l] {
			old := m.B[l][i]
			m.B[l][i] = old + eps
			lp := loss()
			m.B[l][i] = old - eps
			lm := loss()
			m.B[l][i] = old
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-g.dB[l][i]) > 1e-4 {
				t.Errorf("layer %d bias %d: numerical %g vs analytic %g", l, i, num, g.dB[l][i])
			}
		}
	}
}

func TestTrainBCELearnsXOR(t *testing.T) {
	var samples []Sample
	data := [][3]float64{{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}}
	for _, d := range data {
		samples = append(samples, Sample{X: []float64{d[0], d[1]}, Y: d[2]})
	}
	m := MustMLP([]int{2, 8, 1}, Tanh, 5)
	cfg := TrainConfig{Epochs: 800, LearnRate: 0.05, BatchSize: 4, Seed: 2}
	m.TrainBCE(samples, cfg)
	if acc := m.Accuracy(samples); acc != 1 {
		t.Errorf("XOR accuracy = %f, want 1", acc)
	}
}

func TestTrainBCESeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var samples []Sample
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		y := 0.0
		if x[0]+x[1] > 0 {
			y = 1
		}
		samples = append(samples, Sample{X: x, Y: y})
	}
	m := MustMLP([]int{2, 6, 1}, ReLU, 11)
	m.TrainBCE(samples, TrainConfig{Epochs: 60, LearnRate: 0.02, BatchSize: 16, Seed: 3})
	if acc := m.Accuracy(samples); acc < 0.95 {
		t.Errorf("linear accuracy = %f, want ≥ 0.95", acc)
	}
}

func TestTrainTripletSeparates(t *testing.T) {
	// Positives cluster near (1,1), negatives near (-1,-1); ranking loss
	// should push scores apart.
	rng := rand.New(rand.NewSource(4))
	var triplets []Triplet
	mk := func(cx, cy float64) []float64 {
		return []float64{cx + rng.NormFloat64()*0.1, cy + rng.NormFloat64()*0.1}
	}
	for i := 0; i < 100; i++ {
		triplets = append(triplets, Triplet{Pos: mk(1, 1), Neg: mk(-1, -1)})
	}
	m := MustMLP([]int{2, 6, 1}, Tanh, 6)
	m.TrainTriplet(triplets, 1.0, TrainConfig{Epochs: 80, LearnRate: 0.02, BatchSize: 16, Seed: 5})
	pos := m.Score([]float64{1, 1})
	neg := m.Score([]float64{-1, -1})
	if pos <= neg+0.2 {
		t.Errorf("triplet training failed: pos=%f neg=%f", pos, neg)
	}
}

func TestTrainEmptyInputs(t *testing.T) {
	m := MustMLP([]int{2, 3, 1}, ReLU, 1)
	if l := m.TrainBCE(nil, DefaultTrainConfig()); l != 0 {
		t.Error("empty BCE training should return 0")
	}
	if l := m.TrainTriplet(nil, 1, DefaultTrainConfig()); l != 0 {
		t.Error("empty triplet training should return 0")
	}
	if m.Accuracy(nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestScoreRange(t *testing.T) {
	m := MustMLP([]int{3, 4, 1}, ReLU, 2)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		x := []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		s := m.Score(x)
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("Score out of range: %f", s)
		}
	}
}

func TestConcurrentInference(t *testing.T) {
	m := MustMLP([]int{4, 8, 1}, ReLU, 3)
	done := make(chan bool)
	for w := 0; w < 4; w++ {
		go func() {
			for i := 0; i < 100; i++ {
				m.Score([]float64{0.1, 0.2, 0.3, 0.4})
			}
			done <- true
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	m := MustMLP([]int{3, 4, 1}, Tanh, 5)
	x := []float64{0.3, -0.2, 0.9}
	want := m.Score(x)
	s := m.Snapshot()
	m2, err := FromSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Score(x); got != want {
		t.Errorf("restored score %f != %f", got, want)
	}
	// Mutating the snapshot must not affect the restored model.
	s.W[0][0] += 100
	if got := m2.Score(x); got != want {
		t.Error("snapshot aliases model weights")
	}
	// Shape mismatches fail.
	bad := m.Snapshot()
	bad.W[0] = bad.W[0][:1]
	if _, err := FromSnapshot(bad); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := FromSnapshot(Snapshot{Sizes: []int{2}}); err == nil {
		t.Error("degenerate sizes accepted")
	}
}
