package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"her"
	"her/internal/shard"
)

// slowServer builds a server whose matching backends hang far past any
// test deadline, for the 503 regression tests.
func slowServer(t *testing.T, d time.Duration) *Server {
	t.Helper()
	sys, _, _ := trainedSystem(t)
	srv := New(sys)
	srv.Deadline = d
	block := func() { time.Sleep(2 * time.Second) }
	srv.spairFn = func(string, int, her.VertexID) (bool, error) { block(); return false, nil }
	srv.vpairFn = func(string, int) ([]her.Pair, error) { block(); return nil, nil }
	srv.apairFn = func(int) ([]her.Pair, her.ParallelStats, error) {
		block()
		return nil, her.ParallelStats{}, nil
	}
	return srv
}

// TestDeadline503 is the slow-matcher regression: /spair, /vpair and
// /apair must answer 503 when the server deadline expires before the
// matcher returns, instead of hanging the connection.
func TestDeadline503(t *testing.T) {
	srv := slowServer(t, 15*time.Millisecond)
	for _, url := range []string{
		"/spair?rel=product&tuple=0&vertex=0",
		"/vpair?rel=product&tuple=0",
		"/apair",
	} {
		if code, body := get(t, srv, url); code != http.StatusServiceUnavailable {
			t.Errorf("%s under expired deadline = %d %v, want 503", url, code, body)
		}
	}
}

// TestTimeoutParam: timeout_ms can only tighten the server deadline,
// and malformed values are rejected up front.
func TestTimeoutParam(t *testing.T) {
	srv := slowServer(t, 0) // no server deadline: the parameter is the only bound
	url := "/vpair?rel=product&tuple=0&timeout_ms=15"
	if code, body := get(t, srv, url); code != http.StatusServiceUnavailable {
		t.Errorf("%s = %d %v, want 503", url, code, body)
	}
	for _, bad := range []string{"nope", "0", "-5"} {
		url := "/vpair?rel=product&tuple=0&timeout_ms=" + bad
		if code, _ := get(t, srv, url); code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", url, code)
		}
	}
	// A generous budget passes through to the backend unharmed.
	fast := New(slowSys(t))
	fast.Deadline = 5 * time.Second
	if code, _ := get(t, fast, "/vpair?rel=product&tuple=0&timeout_ms=5000"); code != http.StatusOK {
		t.Errorf("generous timeout = %d, want 200", code)
	}
}

func slowSys(t *testing.T) *her.System {
	t.Helper()
	sys, _, _ := trainedSystem(t)
	return sys
}

// TestWriteMatchErr pins the transport mapping of the matching-path
// failure modes: shed load → 429 + Retry-After, expired budget → 503.
func TestWriteMatchErr(t *testing.T) {
	rec := httptest.NewRecorder()
	writeMatchErr(rec, fmt.Errorf("gather: %w", shard.ErrOverloaded), http.StatusInternalServerError)
	if rec.Code != http.StatusTooManyRequests {
		t.Errorf("ErrOverloaded = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After hint")
	}
	rec = httptest.NewRecorder()
	writeMatchErr(rec, context.DeadlineExceeded, http.StatusInternalServerError)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("DeadlineExceeded = %d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	writeMatchErr(rec, errors.New("boom"), http.StatusNotFound)
	if rec.Code != http.StatusNotFound {
		t.Errorf("fallback = %d, want 404", rec.Code)
	}
}

// shardedPair builds a single-system server and a sharded server over
// identically trained systems.
func shardedPair(t *testing.T, shards int) (single, sharded *Server) {
	t.Helper()
	sys1, _, _ := trainedSystem(t)
	sys2, _, _ := trainedSystem(t)
	single = New(sys1)
	sharded, err := NewSharded(sys2, shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sharded.Close)
	return single, sharded
}

// TestShardedEquivalence: the sharded serving path answers /vpair and
// /apair byte-identically to the single-system path, across shard
// counts including ones exceeding |V| of the catalog graph.
func TestShardedEquivalence(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 50} {
		single, sharded := shardedPair(t, shards)
		for _, url := range []string{
			"/vpair?rel=product&tuple=0",
			"/vpair?rel=product&tuple=1",
			"/apair",
		} {
			codeS, bodyS := get(t, single, url)
			codeE, bodyE := get(t, sharded, url)
			if codeS != http.StatusOK || codeE != http.StatusOK {
				t.Fatalf("shards=%d %s: single %d, sharded %d", shards, url, codeS, codeE)
			}
			if fmt.Sprint(bodyS["matches"]) != fmt.Sprint(bodyE["matches"]) {
				t.Errorf("shards=%d %s diverges:\nsingle:  %v\nsharded: %v",
					shards, url, bodyS["matches"], bodyE["matches"])
			}
		}
		// /stats exposes the shard layout in sharded mode.
		_, stats := get(t, sharded, "/stats")
		if _, ok := stats["shard"]; !ok {
			t.Errorf("shards=%d: /stats missing shard section", shards)
		}
	}
}

// TestShardedStaleRead is the cache-invalidation regression: a /vpair
// result is cached, feedback flips the verdicts (bumping the system
// generation), and the next /vpair must reflect the new verdicts
// instead of serving the stale cached entry.
func TestShardedStaleRead(t *testing.T) {
	sys, p1, p2 := trainedSystem(t)
	srv, err := NewSharded(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	vpairVertices := func() map[int32]bool {
		t.Helper()
		code, body := get(t, srv, "/vpair?rel=product&tuple=0")
		if code != http.StatusOK {
			t.Fatalf("vpair = %d %v", code, body)
		}
		out := map[int32]bool{}
		for _, m := range body["matches"].([]interface{}) {
			out[int32(m.(map[string]interface{})["vertex"].(float64))] = true
		}
		return out
	}

	before := vpairVertices()
	if !before[int32(p1)] || before[int32(p2)] {
		t.Fatalf("baseline vpair = %v, want {%d}", before, p1)
	}
	// Ask again: this round is served from the generation-stamped cache.
	if again := vpairVertices(); !again[int32(p1)] {
		t.Fatalf("cached vpair lost the match: %v", again)
	}
	// Flip both verdicts through the feedback loop.
	payload := `[{"rel":"product","tuple":0,"vertex":` + itoa(p1) + `,"match":false},
	             {"rel":"product","tuple":0,"vertex":` + itoa(p2) + `,"match":true}]`
	req := httptest.NewRequest(http.MethodPost, "/feedback", strings.NewReader(payload))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("feedback = %d %s", rec.Code, rec.Body.String())
	}
	after := vpairVertices()
	if after[int32(p1)] {
		t.Error("stale read: refuted pair still served from cache")
	}
	if !after[int32(p2)] {
		t.Error("stale read: confirmed pair missing after feedback")
	}
}

// TestShardedIncrementalUpdate: AddGraphVertex/AddGraphEdge bump the
// generation, so a newly wired replica becomes visible through the
// sharded /vpair without restarting the engine.
func TestShardedIncrementalUpdate(t *testing.T) {
	sys, p1, _ := trainedSystem(t)
	srv, err := NewSharded(sys, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, srv, "/vpair?rel=product&tuple=0")
	if code != http.StatusOK || len(body["matches"].([]interface{})) != 1 {
		t.Fatalf("baseline vpair = %d %v", code, body)
	}
	gen0 := sys.Generation()

	// Wire an exact replica of tuple 0's entity into G.
	p := sys.AddGraphVertex("product")
	n := sys.AddGraphVertex("Aurora Trail Runner")
	c := sys.AddGraphVertex("red")
	if err := sys.AddGraphEdge(p, n, "productName"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddGraphEdge(p, c, "hasColor"); err != nil {
		t.Fatal(err)
	}
	if sys.Generation() == gen0 {
		t.Fatal("incremental updates did not bump the generation")
	}

	_, body = get(t, srv, "/vpair?rel=product&tuple=0")
	got := map[int32]bool{}
	for _, m := range body["matches"].([]interface{}) {
		got[int32(m.(map[string]interface{})["vertex"].(float64))] = true
	}
	if !got[int32(p1)] || !got[int32(p)] {
		t.Fatalf("post-update vpair = %v, want both %d and %d", got, p1, p)
	}
	if info := srv.Engine().Snapshot(); info.Generation != sys.Generation() {
		t.Errorf("engine generation %d, system %d: rebuild did not happen",
			info.Generation, sys.Generation())
	}
}

// TestShardedCacheSurvivesWrite is the delta-maintenance regression for
// the serving path: AddTuple extends G_D with a region no old verdict
// depends on, so a cached /vpair for an OLD tuple must survive the
// write — re-stamped by the delta sweep and served as a cache hit, not
// recomputed — while still answering exactly as before.
func TestShardedCacheSurvivesWrite(t *testing.T) {
	sys, p1, _ := trainedSystem(t)
	srv, err := NewSharded(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	vpair := func() map[int32]bool {
		t.Helper()
		code, body := get(t, srv, "/vpair?rel=product&tuple=0")
		if code != http.StatusOK {
			t.Fatalf("vpair = %d %v", code, body)
		}
		out := map[int32]bool{}
		for _, m := range body["matches"].([]interface{}) {
			out[int32(m.(map[string]interface{})["vertex"].(float64))] = true
		}
		return out
	}

	before := vpair()
	if !before[int32(p1)] {
		t.Fatalf("baseline vpair = %v, want %d", before, p1)
	}
	if _, err := sys.AddTuple("product", "Zephyr Canyon Clog 9", "mauve"); err != nil {
		t.Fatal(err)
	}
	pre := srv.Engine().Snapshot()
	after := vpair()
	post := srv.Engine().Snapshot()

	if !after[int32(p1)] || len(after) != len(before) {
		t.Fatalf("old tuple's vpair changed across an unrelated AddTuple: %v → %v", before, after)
	}
	if post.CacheSurvived <= pre.CacheSurvived {
		t.Fatalf("vpair entry did not survive the AddTuple sweep (survived %d → %d)",
			pre.CacheSurvived, post.CacheSurvived)
	}
	if post.FullRebuilds != pre.FullRebuilds {
		t.Fatalf("AddTuple forced a full engine rebuild (%d → %d); the delta path is dead",
			pre.FullRebuilds, post.FullRebuilds)
	}
	if post.DeltasApplied != pre.DeltasApplied+1 {
		t.Fatalf("deltasApplied %d → %d, want one in-place application",
			pre.DeltasApplied, post.DeltasApplied)
	}
}

// TestSeqAdmissionControl: expired sequential requests abandon their
// matcher goroutines, and MaxInflight bounds how many such goroutines
// (live or abandoned) can exist — once the slots are full of abandoned
// 2s matchers, the next request is shed with 429 + Retry-After instead
// of queueing another goroutine behind the System mutex.
func TestSeqAdmissionControl(t *testing.T) {
	srv := slowServer(t, 15*time.Millisecond)
	srv.MaxInflight = 2
	for i := 0; i < 2; i++ {
		if code, body := get(t, srv, "/vpair?rel=product&tuple=0"); code != http.StatusServiceUnavailable {
			t.Fatalf("request %d = %d %v, want 503", i, code, body)
		}
	}
	// Both slots are now held by abandoned matchers sleeping 2s.
	req := httptest.NewRequest(http.MethodGet, "/vpair?rel=product&tuple=0", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated sequential path = %d %s, want 429", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After hint")
	}
}
