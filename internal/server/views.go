package server

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"

	"her"
	"her/internal/shard"
)

// This file serves the hosted graph views (her/viewapi.go) over HTTP.
// The matching endpoints accept a view= query parameter addressing the
// query at a named view's extraction ("" and "direct" are the built-in
// canonical mapping; an unknown name is 404). Two endpoints are
// view-specific:
//
//	GET /views                 — list hosted views (name, rules, |V|, |E|, generation)
//	GET /extract?view=<name>   — the view's materialized graph as TSV
//
// In sharded mode every view present at construction gets its own
// shard.Engine over the view's ShardConfig — anchored to the view's
// generation counter and delta log — so /vpair?view=x scatter-gathers
// exactly like the direct view does. Views installed after NewSharded
// fall back to the sequential path.

// viewParam resolves the request's view= parameter to a handle; the
// empty value names the direct view. The her_view_requests_total
// counter attributes the request to the resolved view.
func (s *Server) viewParam(r *http.Request, op string) (*her.ViewHandle, error) {
	name := r.URL.Query().Get("view")
	vh, err := s.sys.View(name)
	if err != nil {
		return nil, err
	}
	s.reg.Counter(fmt.Sprintf(`her_view_requests_total{view=%q,op=%q}`, vh.Name(), op)).Inc()
	return vh, nil
}

// engineFor returns the shard engine serving a view (nil when the view
// has none — single-system mode, or a view installed after NewSharded).
func (s *Server) engineFor(viewName string) *shard.Engine {
	if viewName == her.DirectViewName {
		return s.eng
	}
	return s.viewEngs[viewName]
}

// extractReq keys the extract cache. The view name can never be elided:
// two views at the same generation are different graphs, so a key
// missing either field would serve one view's bytes for another.
//
//herlint:keyed extractKey
type extractReq struct {
	view string
	gen  uint64
}

// extractKey builds the extract-cache key from everything that
// determines the response bytes: the view identity and its mutation
// generation.
func extractKey(view string, gen uint64) extractReq {
	return extractReq{view: view, gen: gen}
}

// extractCache memoizes the most recent TSV rendering per server: one
// entry, keyed by (view, generation), is enough to absorb polling on a
// quiet system while any mutation or view switch naturally invalidates.
type extractCache struct {
	mu   sync.Mutex
	key  extractReq
	ok   bool
	data []byte
}

// handleViews lists the hosted views.
func (s *Server) handleViews(w http.ResponseWriter, _ *http.Request) {
	names := s.sys.ViewNames()
	infos := make([]her.ViewInfo, 0, len(names))
	for _, name := range names {
		vh, err := s.sys.View(name)
		if err != nil {
			continue // racing a concurrent removal is benign: skip
		}
		infos = append(infos, vh.Info())
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"count": len(infos),
		"views": infos,
	})
}

// handleExtract serves a view's materialized graph as TSV, memoized per
// (view, generation) so repeated polls of an unchanged view render once.
func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	vh, err := s.viewParam(r, "/extract")
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	k := extractKey(vh.Name(), vh.Generation())
	s.extract.mu.Lock()
	if s.extract.ok && s.extract.key == k {
		data := s.extract.data
		s.extract.mu.Unlock()
		writeTSV(w, data)
		return
	}
	s.extract.mu.Unlock()
	var buf bytes.Buffer
	if err := vh.WriteTSV(&buf); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	data := buf.Bytes()
	s.extract.mu.Lock()
	s.extract.key, s.extract.data, s.extract.ok = k, data, true
	s.extract.mu.Unlock()
	writeTSV(w, data)
}

func writeTSV(w http.ResponseWriter, data []byte) {
	w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
	_, _ = w.Write(data)
}

// viewStats assembles the per-view /stats section.
func (s *Server) viewStats() []map[string]interface{} {
	names := s.sys.ViewNames()
	out := make([]map[string]interface{}, 0, len(names))
	for _, name := range names {
		vh, err := s.sys.View(name)
		if err != nil {
			continue
		}
		info := vh.Info()
		entry := map[string]interface{}{
			"name":       info.Name,
			"rules":      info.Rules,
			"vertices":   info.Vertices,
			"edges":      info.Edges,
			"tuples":     info.Tuples,
			"generation": info.Generation,
			"sharded":    s.engineFor(name) != nil,
		}
		out = append(out, entry)
	}
	return out
}
