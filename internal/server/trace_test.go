package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"her"
)

// traceGet issues a GET and returns the status, the X-Request-ID the
// middleware assigned, and the raw body.
func traceGet(t *testing.T, h http.Handler, url string) (int, string, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Header().Get("X-Request-ID"), rec.Body.String()
}

// fetchTrace pulls one retained trace by request ID via the debug
// endpoint, i.e. the same JSON an operator would see.
func fetchTrace(t *testing.T, h http.Handler, id string) her.Trace {
	t.Helper()
	code, _, body := traceGet(t, h, "/debug/requests?id="+id)
	if code != http.StatusOK {
		t.Fatalf("/debug/requests?id=%s = %d: %s", id, code, body)
	}
	var tr her.Trace
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("bad trace JSON: %v (%s)", err, body)
	}
	return tr
}

func childNames(n her.SpanNode) []string {
	var out []string
	for _, c := range n.Children {
		out = append(out, c.Name)
	}
	return out
}

func findChild(n her.SpanNode, name string) (her.SpanNode, bool) {
	for _, c := range n.Children {
		if c.Name == name {
			return c, true
		}
	}
	return her.SpanNode{}, false
}

// TestTracedShardedVPairSpanTree is the acceptance shape of the PR: a
// traced sharded /vpair must attribute its wall time across the
// resolve/cache/scatter/gather(shard{queue_wait,compute})/merge/render
// child spans, and the direct children must sum to the root within
// tolerance — no large unattributed gap.
func TestTracedShardedVPairSpanTree(t *testing.T) {
	sys, _, _ := trainedSystem(t)
	srv, err := NewSharded(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, id, body := traceGet(t, srv, "/vpair?rel=product&tuple=0")
	if code != http.StatusOK {
		t.Fatalf("/vpair = %d: %s", code, body)
	}
	if !strings.HasPrefix(id, "req-") {
		t.Fatalf("X-Request-ID = %q", id)
	}
	tr := fetchTrace(t, srv, id)
	if tr.Op != "/vpair" || tr.Error != "" {
		t.Fatalf("trace = %+v", tr)
	}
	if tr.Root.Attrs["gen"] == "" {
		t.Errorf("root span missing gen attr: %v", tr.Root.Attrs)
	}

	for _, want := range []string{"resolve", "cache", "scatter", "gather", "merge", "render"} {
		if _, ok := findChild(tr.Root, want); !ok {
			t.Errorf("root missing %q child; children = %v", want, childNames(tr.Root))
		}
	}
	cache, _ := findChild(tr.Root, "cache")
	if cache.Attrs["cache"] != "miss" {
		t.Errorf("first request cache attr = %q, want miss", cache.Attrs["cache"])
	}
	gather, _ := findChild(tr.Root, "gather")
	shards := 0
	for _, c := range gather.Children {
		if c.Name != "shard" {
			continue
		}
		shards++
		if c.Attrs["shard"] == "" {
			t.Errorf("shard span missing shard attr: %v", c.Attrs)
		}
		for _, phase := range []string{"queue_wait", "compute"} {
			pc, ok := findChild(c, phase)
			if !ok {
				t.Fatalf("shard span missing %q child: %v", phase, childNames(c))
			}
			if pc.Millis < 0 || pc.Millis > c.Millis+0.001 {
				t.Errorf("%s = %.4fms exceeds its shard span %.4fms", phase, pc.Millis, c.Millis)
			}
		}
	}
	if shards != 2 {
		t.Errorf("gather holds %d shard spans, want 2", shards)
	}

	// The direct children must tile the root: their sum may trail the
	// root by parsing/dispatch slack but not by half the request, and
	// can never exceed it (children are measured inside the root).
	var sum float64
	for _, c := range tr.Root.Children {
		sum += c.Millis
	}
	if sum > tr.Root.Millis*1.05+0.05 {
		t.Errorf("children sum %.4fms exceeds root %.4fms", sum, tr.Root.Millis)
	}
	if sum < tr.Root.Millis*0.5 {
		t.Errorf("unattributed gap too large: children sum %.4fms of root %.4fms",
			sum, tr.Root.Millis)
	}

	// A repeat of the same request is a cache hit, visible in its trace.
	_, id2, _ := traceGet(t, srv, "/vpair?rel=product&tuple=0")
	tr2 := fetchTrace(t, srv, id2)
	cache2, ok := findChild(tr2.Root, "cache")
	if !ok || cache2.Attrs["cache"] != "hit" {
		t.Errorf("repeat request not a traced cache hit: %+v", tr2.Root)
	}
}

// TestTracedSequentialVPairPhases checks the sequential path links the
// matcher's ParaMatch phase spans (candgen, simulate) under the same
// root the middleware opened.
func TestTracedSequentialVPairPhases(t *testing.T) {
	sys, _, _ := trainedSystem(t)
	srv := New(sys)
	code, id, body := traceGet(t, srv, "/vpair?rel=product&tuple=0")
	if code != http.StatusOK {
		t.Fatalf("/vpair = %d: %s", code, body)
	}
	tr := fetchTrace(t, srv, id)
	for _, want := range []string{"resolve", "candgen", "simulate", "render"} {
		if _, ok := findChild(tr.Root, want); !ok {
			t.Errorf("sequential root missing %q; children = %v", want, childNames(tr.Root))
		}
	}
	cg, _ := findChild(tr.Root, "candgen")
	if cg.Attrs["candidates"] == "" {
		t.Errorf("candgen span missing candidates attr: %v", cg.Attrs)
	}
}

// TestErroredRequestRetained checks a failing request lands in the
// error ring with its status as the error message.
func TestErroredRequestRetained(t *testing.T) {
	sys, _, _ := trainedSystem(t)
	srv := New(sys)
	code, id, _ := traceGet(t, srv, "/vpair?rel=ghost&tuple=0")
	if code != http.StatusNotFound {
		t.Fatalf("ghost rel = %d", code)
	}
	tr := fetchTrace(t, srv, id)
	if tr.Error != "HTTP 404" || tr.Root.Error != "HTTP 404" {
		t.Errorf("errored trace = %+v", tr)
	}
}

// TestDebugRequestsListAndDisabled covers the list form and the
// disabled recorder.
func TestDebugRequestsListAndDisabled(t *testing.T) {
	sys, _, _ := trainedSystem(t)
	srv := New(sys)
	traceGet(t, srv, "/healthz")
	code, _, body := traceGet(t, srv, "/debug/requests")
	if code != http.StatusOK {
		t.Fatalf("/debug/requests = %d", code)
	}
	var list struct {
		Count  int         `json:"count"`
		Traces []her.Trace `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("bad list JSON: %v", err)
	}
	if list.Count < 1 || len(list.Traces) != list.Count {
		t.Errorf("count = %d, traces = %d", list.Count, len(list.Traces))
	}
	if code, _, _ := traceGet(t, srv, "/debug/requests?id=req-999999"); code != http.StatusNotFound {
		t.Errorf("unknown id = %d, want 404", code)
	}

	srv.Recorder = nil
	if code, _, _ := traceGet(t, srv, "/debug/requests"); code != http.StatusNotFound {
		t.Errorf("disabled recorder = %d, want 404", code)
	}
	// With recorder and logger both off, requests carry no ID at all.
	_, id, _ := traceGet(t, srv, "/healthz")
	if id != "" {
		t.Errorf("disabled tracing still assigns request IDs: %q", id)
	}
}

// TestRequestLog checks the structured request log line: one slog
// record per request with the documented fields.
func TestRequestLog(t *testing.T) {
	sys, _, _ := trainedSystem(t)
	srv := New(sys)
	var buf bytes.Buffer
	srv.Logger = slog.New(slog.NewTextHandler(&buf, nil))
	traceGet(t, srv, "/vpair?rel=product&tuple=0")
	line := buf.String()
	for _, want := range []string{"request_id=req-", "op=/vpair", "gen=", "status=200", "duration="} {
		if !strings.Contains(line, want) {
			t.Errorf("request log missing %q: %s", want, line)
		}
	}
}

// BenchmarkMiddlewareTracing pins the disabled-recorder overhead: with
// Recorder and Logger nil the serving path must not allocate spans or
// read extra clocks. Run with -bench to compare the two modes.
func BenchmarkMiddlewareTracing(b *testing.B) {
	sys, _, _, err := buildCatalog(her.Options{Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"disabled", false}, {"recorder", true}} {
		b.Run(mode.name, func(b *testing.B) {
			srv := New(sys)
			srv.vpairFn = func(string, int) ([]her.Pair, error) { return nil, nil }
			if !mode.enabled {
				srv.Recorder = nil
			}
			req := httptest.NewRequest(http.MethodGet, "/vpair?rel=product&tuple=0", nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
			}
		})
	}
}
