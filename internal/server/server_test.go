package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"her"
)

// trainedSystem builds the quickstart-style catalog system used across
// the handler tests.
func trainedSystem(t *testing.T) (*her.System, her.VertexID, her.VertexID) {
	t.Helper()
	return trainedSystemWithOpts(t, her.Options{Seed: 2})
}

// catalogModels caches the trained model snapshot: training the metric
// network and ranker dominates test time (especially under -race), and
// LoadModels restores identical decisions (pinned by TestSaveLoadModels
// in the root package), so each test restores the snapshot into a fresh
// system instead of retraining.
var catalogModels struct {
	once sync.Once
	blob []byte
	err  error
}

// buildCatalog builds the catalog system with the given Options and
// restores (training on first use) the cached model snapshot into it.
// Shared by the handler tests and the fuzz harness.
func buildCatalog(opts her.Options) (*her.System, her.VertexID, her.VertexID, error) {
	build := func() (*her.Database, *her.Graph, her.VertexID, her.VertexID, error) {
		schema, err := her.NewSchema("product", []string{"name", "color"}, "name")
		if err != nil {
			return nil, nil, 0, 0, err
		}
		db := her.NewDatabase(schema)
		db.Relation("product").MustInsert("Aurora Trail Runner 7", "red")
		db.Relation("product").MustInsert("Comet Road Cruiser 2", "blue")

		g := her.NewGraph()
		mk := func(name, color string) her.VertexID {
			p := g.AddVertex("product")
			g.MustAddEdge(p, g.AddVertex(name), "productName")
			g.MustAddEdge(p, g.AddVertex(color), "hasColor")
			return p
		}
		p1 := mk("Aurora Trail Runner", "red")
		p2 := mk("Comet Road Cruiser", "blue")
		return db, g, p1, p2, nil
	}

	catalogModels.once.Do(func() {
		fail := func(err error) { catalogModels.err = err }
		db, g, _, _, err := build()
		if err != nil {
			fail(err)
			return
		}
		ref, err := her.New(db, g, her.Options{Seed: 2})
		if err != nil {
			fail(err)
			return
		}
		pairs := []her.PathPair{
			{A: []string{"name"}, B: []string{"productName"}, Match: true},
			{A: []string{"color"}, B: []string{"hasColor"}, Match: true},
			{A: []string{"name"}, B: []string{"hasColor"}, Match: false},
			{A: []string{"color"}, B: []string{"productName"}, Match: false},
		}
		var training []her.PathPair
		for i := 0; i < 30; i++ {
			training = append(training, pairs...)
		}
		if err := ref.TrainPathModel(training, 0); err != nil {
			fail(err)
			return
		}
		if err := ref.TrainRanker(50, 120); err != nil {
			fail(err)
			return
		}
		if err := ref.SetThresholds(her.Thresholds{Sigma: 0.75, Delta: 0.9, K: 5}); err != nil {
			fail(err)
			return
		}
		var buf bytes.Buffer
		if err := ref.SaveModels(&buf); err != nil {
			fail(err)
			return
		}
		catalogModels.blob = buf.Bytes()
	})
	if catalogModels.err != nil {
		return nil, 0, 0, catalogModels.err
	}

	db, g, p1, p2, err := build()
	if err != nil {
		return nil, 0, 0, err
	}
	sys, err := her.New(db, g, opts)
	if err != nil {
		return nil, 0, 0, err
	}
	if err := sys.LoadModels(bytes.NewReader(catalogModels.blob)); err != nil {
		return nil, 0, 0, err
	}
	return sys, p1, p2, nil
}

// trainedSystemWithOpts is trainedSystem with caller-chosen Options
// (e.g. a metrics registry).
func trainedSystemWithOpts(t *testing.T, opts her.Options) (*her.System, her.VertexID, her.VertexID) {
	t.Helper()
	sys, p1, p2, err := buildCatalog(opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys, p1, p2
}

func get(t *testing.T, h http.Handler, url string) (int, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var body map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON from %s: %v (%s)", url, err, rec.Body.String())
	}
	return rec.Code, body
}

func TestHealthz(t *testing.T) {
	sys, _, _ := trainedSystem(t)
	code, body := get(t, New(sys), "/healthz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Errorf("healthz = %d %v", code, body)
	}
}

func TestSPairEndpoint(t *testing.T) {
	sys, p1, p2 := trainedSystem(t)
	srv := New(sys)
	code, body := get(t, srv, "/spair?rel=product&tuple=0&vertex="+itoa(p1))
	if code != http.StatusOK || body["match"] != true {
		t.Errorf("spair true case = %d %v", code, body)
	}
	code, body = get(t, srv, "/spair?rel=product&tuple=0&vertex="+itoa(p2))
	if code != http.StatusOK || body["match"] != false {
		t.Errorf("spair false case = %d %v", code, body)
	}
	// Errors.
	if code, _ := get(t, srv, "/spair?rel=product&tuple=zzz&vertex=0"); code != http.StatusBadRequest {
		t.Errorf("bad tuple = %d", code)
	}
	if code, _ := get(t, srv, "/spair?tuple=0&vertex=0"); code != http.StatusBadRequest {
		t.Errorf("missing rel = %d", code)
	}
	if code, _ := get(t, srv, "/spair?rel=ghost&tuple=0&vertex=0"); code != http.StatusNotFound {
		t.Errorf("unknown relation = %d", code)
	}
	// Out-of-range vertices must be rejected, not crash the matcher.
	if code, _ := get(t, srv, "/spair?rel=product&tuple=0&vertex=9999"); code != http.StatusNotFound {
		t.Errorf("out-of-range vertex = %d", code)
	}
	if code, _ := get(t, srv, "/spair?rel=product&tuple=0&vertex=-1"); code != http.StatusNotFound {
		t.Errorf("negative vertex = %d", code)
	}
}

func TestVPairEndpoint(t *testing.T) {
	sys, p1, _ := trainedSystem(t)
	code, body := get(t, New(sys), "/vpair?rel=product&tuple=0")
	if code != http.StatusOK {
		t.Fatalf("vpair = %d %v", code, body)
	}
	matches := body["matches"].([]interface{})
	if len(matches) != 1 {
		t.Fatalf("matches = %v", matches)
	}
	m := matches[0].(map[string]interface{})
	if int32(m["vertex"].(float64)) != int32(p1) {
		t.Errorf("wrong vertex: %v", m)
	}
}

func TestAPairEndpoint(t *testing.T) {
	sys, _, _ := trainedSystem(t)
	code, body := get(t, New(sys), "/apair?workers=2")
	if code != http.StatusOK {
		t.Fatalf("apair = %d %v", code, body)
	}
	if body["count"].(float64) != 2 {
		t.Errorf("count = %v", body["count"])
	}
	// Tuple labels are "relation/id" — pinned so the manual append
	// formatting (which replaced fmt.Sprintf) can't drift.
	for _, m := range body["matches"].([]interface{}) {
		label := m.(map[string]interface{})["tuple"].(string)
		if !regexp.MustCompile(`^[A-Za-z_]\w*/\d+$`).MatchString(label) {
			t.Errorf("tuple label %q not in relation/id form", label)
		}
	}
	if code, _ := get(t, New(sys), "/apair?workers=nope"); code != http.StatusBadRequest {
		t.Errorf("bad workers = %d", code)
	}
}

func TestExplainEndpoint(t *testing.T) {
	sys, p1, p2 := trainedSystem(t)
	srv := New(sys)
	code, body := get(t, srv, "/explain?rel=product&tuple=0&vertex="+itoa(p1))
	if code != http.StatusOK {
		t.Fatalf("explain = %d %v", code, body)
	}
	schema := body["schemaMatches"].(map[string]interface{})
	if schema["name"] != "productName" {
		t.Errorf("schema matches = %v", schema)
	}
	if code, _ := get(t, srv, "/explain?rel=product&tuple=0&vertex="+itoa(p2)); code != http.StatusNotFound {
		t.Errorf("non-match explain = %d", code)
	}
	if code, _ := get(t, srv, "/explain?rel=product&tuple=0&vertex=9999"); code != http.StatusNotFound {
		t.Errorf("out-of-range vertex explain = %d", code)
	}
}

func TestFeedbackEndpoint(t *testing.T) {
	sys, p1, p2 := trainedSystem(t)
	srv := New(sys)
	// Refute the true match, confirm the false one.
	payload := `[{"rel":"product","tuple":0,"vertex":` + itoa(p1) + `,"match":false},
	             {"rel":"product","tuple":0,"vertex":` + itoa(p2) + `,"match":true}]`
	req := httptest.NewRequest(http.MethodPost, "/feedback", strings.NewReader(payload))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("feedback = %d %s", rec.Code, rec.Body.String())
	}
	// The verdicts must now govern SPair.
	_, body := get(t, srv, "/spair?rel=product&tuple=0&vertex="+itoa(p1))
	if body["match"] != false {
		t.Error("refuted pair still matches")
	}
	_, body = get(t, srv, "/spair?rel=product&tuple=0&vertex="+itoa(p2))
	if body["match"] != true {
		t.Error("confirmed pair still rejected")
	}
	// GET is rejected.
	if code, _ := get(t, srv, "/feedback"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET feedback = %d", code)
	}
	// Out-of-range vertices in the payload are rejected.
	req = httptest.NewRequest(http.MethodPost, "/feedback",
		strings.NewReader(`[{"rel":"product","tuple":0,"vertex":9999,"match":true}]`))
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("out-of-range vertex feedback = %d", rec.Code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	sys, p1, _ := trainedSystem(t)
	srv := New(sys)
	get(t, srv, "/spair?rel=product&tuple=0&vertex="+itoa(p1))
	code, body := get(t, srv, "/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	th := body["thresholds"].(map[string]interface{})
	if th["k"].(float64) != 5 {
		t.Errorf("thresholds = %v", th)
	}
}

func itoa(v her.VertexID) string { return strconv.Itoa(int(v)) }
