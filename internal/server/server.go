// Package server exposes a trained HER System over HTTP as JSON
// endpoints — the deployment shape for the paper's real-time VPair use
// case (pay-as-you-go entity resolution) and the interactive feedback
// loop:
//
//	GET  /healthz
//	GET  /spair?rel=item&tuple=0&vertex=12
//	GET  /vpair?rel=item&tuple=0
//	GET  /apair?workers=4
//	GET  /explain?rel=item&tuple=0&vertex=12
//	POST /feedback     [{"rel":"item","tuple":0,"vertex":12,"match":true}]
//	GET  /stats
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"her"
)

// Server wraps a System with HTTP handlers.
type Server struct {
	sys *her.System
	mux *http.ServeMux
	// MaxAPairMatches caps the matches returned inline by /apair
	// (default 1000); the full count is always reported.
	MaxAPairMatches int
}

// New builds the handler around a trained system.
func New(sys *her.System) *Server {
	s := &Server{sys: sys, mux: http.NewServeMux(), MaxAPairMatches: 1000}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/spair", s.handleSPair)
	s.mux.HandleFunc("/vpair", s.handleVPair)
	s.mux.HandleFunc("/apair", s.handleAPair)
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/feedback", s.handleFeedback)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// pairParams parses rel/tuple(/vertex) query parameters.
func pairParams(r *http.Request, needVertex bool) (rel string, tuple int, vertex her.VertexID, err error) {
	rel = r.URL.Query().Get("rel")
	if rel == "" {
		return "", 0, 0, fmt.Errorf("missing rel parameter")
	}
	tuple, err = strconv.Atoi(r.URL.Query().Get("tuple"))
	if err != nil {
		return "", 0, 0, fmt.Errorf("bad tuple parameter: %v", err)
	}
	if needVertex {
		v, err := strconv.Atoi(r.URL.Query().Get("vertex"))
		if err != nil {
			return "", 0, 0, fmt.Errorf("bad vertex parameter: %v", err)
		}
		vertex = her.VertexID(v)
	}
	return rel, tuple, vertex, nil
}

func (s *Server) handleSPair(w http.ResponseWriter, r *http.Request) {
	rel, tuple, vertex, err := pairParams(r, true)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	match, err := s.sys.SPair(rel, tuple, vertex)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"rel": rel, "tuple": tuple, "vertex": vertex, "match": match,
	})
}

type matchJSON struct {
	Vertex int32  `json:"vertex"`
	Label  string `json:"label"`
}

func (s *Server) handleVPair(w http.ResponseWriter, r *http.Request) {
	rel, tuple, _, err := pairParams(r, false)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	matches, err := s.sys.VPair(rel, tuple)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	out := make([]matchJSON, 0, len(matches))
	for _, m := range matches {
		out = append(out, matchJSON{Vertex: int32(m.V), Label: s.sys.G.Label(m.V)})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"rel": rel, "tuple": tuple, "matches": out,
	})
}

func (s *Server) handleAPair(w http.ResponseWriter, r *http.Request) {
	workers := 1
	if q := r.URL.Query().Get("workers"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad workers parameter %q", q))
			return
		}
		workers = n
	}
	matches, stats, err := s.sys.APairParallel(workers)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	shown := matches
	if len(shown) > s.MaxAPairMatches {
		shown = shown[:s.MaxAPairMatches]
	}
	type pairJSON struct {
		Tuple  string `json:"tuple"`
		Vertex int32  `json:"vertex"`
	}
	out := make([]pairJSON, 0, len(shown))
	for _, m := range shown {
		label := ""
		if ref, ok := s.sys.Mapping.TupleOf(m.U); ok {
			label = fmt.Sprintf("%s/%d", ref.Relation, ref.TupleID)
		}
		out = append(out, pairJSON{Tuple: label, Vertex: int32(m.V)})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"count":   len(matches),
		"matches": out,
		"stats": map[string]int{
			"workers":        stats.Workers,
			"supersteps":     stats.Supersteps,
			"candidatePairs": stats.CandidatePairs,
		},
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	rel, tuple, vertex, err := pairParams(r, true)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	u, ok := s.sys.Mapping.VertexOf(rel, tuple)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown tuple %s/%d", rel, tuple))
		return
	}
	ex, err := s.sys.Explain(u, vertex)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	type lineageJSON struct {
		U string `json:"u"`
		V string `json:"v"`
	}
	var lineage []lineageJSON
	for _, p := range ex.Lineage {
		lineage = append(lineage, lineageJSON{U: s.sys.GD.Label(p.U), V: s.sys.G.Label(p.V)})
	}
	schema := map[string]string{}
	for _, sm := range ex.SchemaMatches {
		schema[sm.Attr] = sm.Rho.LabelString()
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"witnessSize":   len(ex.Witness),
		"lineage":       lineage,
		"schemaMatches": schema,
	})
}

// feedbackItem is one user verdict in a POST /feedback body.
type feedbackItem struct {
	Rel    string `json:"rel"`
	Tuple  int    `json:"tuple"`
	Vertex int32  `json:"vertex"`
	Match  bool   `json:"match"`
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var items []feedbackItem
	if err := json.NewDecoder(r.Body).Decode(&items); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad body: %v", err))
		return
	}
	var fb []her.Feedback
	for _, it := range items {
		u, ok := s.sys.Mapping.VertexOf(it.Rel, it.Tuple)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown tuple %s/%d", it.Rel, it.Tuple))
			return
		}
		fb = append(fb, her.Feedback{
			Pair:    her.Pair{U: u, V: her.VertexID(it.Vertex)},
			IsMatch: it.Match,
		})
	}
	s.sys.Refine(fb)
	writeJSON(w, http.StatusOK, map[string]int{"applied": len(fb), "overrides": s.sys.Overrides()})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.sys.Stats()
	th := s.sys.Thresholds()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"thresholds": map[string]interface{}{"sigma": th.Sigma, "delta": th.Delta, "k": th.K},
		"matcher": map[string]int{
			"calls": st.Calls, "cacheHits": st.CacheHits,
			"cleanups": st.Cleanups, "rechecks": st.Rechecks,
		},
	})
}
