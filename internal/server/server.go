// Package server exposes a trained HER System over HTTP as JSON
// endpoints — the deployment shape for the paper's real-time VPair use
// case (pay-as-you-go entity resolution) and the interactive feedback
// loop:
//
//	GET  /healthz
//	GET  /spair?rel=item&tuple=0&vertex=12
//	GET  /vpair?rel=item&tuple=0
//	GET  /apair?workers=4
//	GET  /explain?rel=item&tuple=0&vertex=12
//	POST /feedback     [{"rel":"item","tuple":0,"vertex":12,"match":true}]
//	GET  /stats
//	GET  /metrics      (Prometheus text exposition)
//
// The matching endpoints (/spair, /vpair, /apair) honor a server-level
// Deadline plus an optional timeout_ms query parameter (the smaller
// wins) and answer 503 when the budget expires before matching
// finishes. Because the sequential matcher cannot be interrupted, an
// expired request abandons its matcher goroutine; MaxInflight bounds
// how many sequential matches (live or abandoned) may exist at once and
// sheds the excess with 429 + Retry-After, mirroring the shard engine's
// admission control.
//
// NewSharded builds the server in sharded mode: /vpair and /apair are
// scatter-gathered across an internal/shard engine — partitioned G,
// halo-replicated fragments, per-shard workers with bounded queues and
// a generation-stamped result cache — instead of the single sequential
// matcher. When shard queues are full the request is shed with 429 and
// a Retry-After hint rather than queueing unbounded work. Writes are
// maintained incrementally: the engine replays the system's typed delta
// log against its private snapshots (halo-scoped fragment updates,
// vertex-scoped cache invalidation), so a write retires only the cached
// results it can actually affect and the rest keep serving warm.
//
// Every request passes through an instrumentation middleware that
// records per-endpoint request counts, status codes and latency
// histograms into the system's metrics registry (or a private one when
// the system was built without instrumentation), so /metrics always
// covers the serving path.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"her"
	"her/internal/obs"
	"her/internal/shard"
)

// Server wraps a System with HTTP handlers.
type Server struct {
	sys *her.System
	eng *shard.Engine // non-nil in sharded mode (NewSharded)
	// viewEngs holds one shard engine per named view present when
	// NewSharded built the server (views.go); nil in single-system mode.
	viewEngs map[string]*shard.Engine
	extract  extractCache // memoized GET /extract rendering (views.go)
	mux      *http.ServeMux
	reg      *obs.Registry
	// MaxAPairMatches caps the matches returned inline by /apair
	// (default 1000); the full count is always reported.
	MaxAPairMatches int
	// MaxWorkers bounds the workers query parameter of /apair (default
	// 32): a request may not spawn an arbitrary goroutine fleet.
	MaxWorkers int
	// Deadline bounds the matching work of one request (0 = unbounded).
	// The timeout_ms query parameter can only tighten it. Expired
	// requests answer 503.
	Deadline time.Duration
	// MaxInflight bounds concurrent sequential matches, including the
	// abandoned goroutines expired requests leave running (default 64):
	// under sustained load with Deadline shorter than match time they
	// would otherwise pile up without bound behind the System mutex.
	// Saturation sheds with 429 + Retry-After. Set before the first
	// request; the bound latches on first use.
	MaxInflight int
	// Recorder is the always-on flight recorder: every request gets an
	// ID and a root span, and the finished trace is retained when it is
	// among the op's slowest or it errored. New installs one with the
	// default capacities; set nil before serving to disable tracing
	// entirely (requests then pay only nil checks). Serve the retained
	// traces at GET /debug/requests.
	Recorder *obs.FlightRecorder
	// Logger, when set, emits one structured request log line per
	// request (request_id, op, gen, status, duration). Independent of
	// Recorder: either enables root-span tracing.
	Logger *slog.Logger

	reqSeq  atomic.Uint64 // request-ID sequence
	seqOnce sync.Once
	seqSem  chan struct{} // semaphore of MaxInflight sequential-match slots

	// Test seams: when non-nil they replace the matching backends so
	// tests can inject slow or failing matchers without training a
	// system. Production wiring leaves them nil.
	spairFn func(rel string, tuple int, v her.VertexID) (bool, error)
	vpairFn func(rel string, tuple int) ([]her.Pair, error)
	apairFn func(workers int) ([]her.Pair, her.ParallelStats, error)
}

// New builds the handler around a trained system. HTTP metrics land in
// the system's registry when it has one, so core/bsp and serving
// metrics share one /metrics page; otherwise a server-private registry
// still captures the HTTP side.
func New(sys *her.System) *Server {
	reg := sys.Metrics()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{sys: sys, mux: http.NewServeMux(), reg: reg, MaxAPairMatches: 1000, MaxWorkers: 32,
		Recorder: obs.NewFlightRecorder(0, 0)}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/spair", s.handleSPair)
	s.mux.HandleFunc("/vpair", s.handleVPair)
	s.mux.HandleFunc("/apair", s.handleAPair)
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/feedback", s.handleFeedback)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("/views", s.handleViews)
	s.mux.HandleFunc("/extract", s.handleExtract)
	return s
}

// NewSharded builds the server in sharded serving mode: /vpair and
// /apair route through a shard.Engine over the system's graphs.
//
// Read-your-writes semantics: a request that starts after a mutation
// returns never observes pre-mutation results. The engine keys its
// cache on the system's generation counter and, before reading the
// cache, replays the system's typed delta log against its private
// snapshots — incremental writes (AddTuple, AddGraphVertex,
// AddGraphEdge) update only the fragments whose halo regions contain
// the touched vertices and evict only the cached entries whose key
// vertices fall inside an affected halo; non-incremental changes
// (feedback, retraining, thresholds) poison the log and force a full
// rebuild. Either way no stale entry survives a write it depends on,
// while unaffected entries keep serving without recomputation.
// Call Close to stop the shard workers.
func NewSharded(sys *her.System, shards int) (*Server, error) {
	eng, err := shard.NewEngine(sys.ShardConfig(shards))
	if err != nil {
		return nil, err
	}
	s := New(sys)
	s.eng = eng
	// Every named view present now gets its own engine over the view's
	// ShardConfig — its own snapshots, generation anchor and delta log.
	for _, name := range sys.ViewNames() {
		if name == her.DirectViewName {
			continue
		}
		vh, err := sys.View(name)
		if err != nil {
			continue
		}
		ve, err := shard.NewEngine(vh.ShardConfig(shards))
		if err != nil {
			s.Close()
			return nil, err
		}
		if s.viewEngs == nil {
			s.viewEngs = make(map[string]*shard.Engine)
		}
		s.viewEngs[name] = ve
	}
	return s, nil
}

// Engine exposes the sharded engine (nil in single-system mode).
func (s *Server) Engine() *shard.Engine { return s.eng }

// Close stops the shard workers (direct and per-view); a no-op in
// single-system mode.
func (s *Server) Close() {
	if s.eng != nil {
		s.eng.Close()
	}
	for _, ve := range s.viewEngs {
		ve.Close()
	}
}

// Metrics returns the registry the server records HTTP metrics into.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// reqContext derives the request's matching budget from the server
// Deadline and the optional timeout_ms parameter; the smaller wins.
func (s *Server) reqContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.Deadline
	if q := r.URL.Query().Get("timeout_ms"); q != "" {
		ms, err := strconv.Atoi(q)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("bad timeout_ms parameter %q", q)
		}
		if qd := time.Duration(ms) * time.Millisecond; d == 0 || qd < d {
			d = qd
		}
	}
	if d <= 0 {
		return r.Context(), func() {}, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// seqSlots returns the sequential-match semaphore, sizing it from
// MaxInflight on first use.
func (s *Server) seqSlots() chan struct{} {
	s.seqOnce.Do(func() {
		n := s.MaxInflight
		if n <= 0 {
			n = 64
		}
		s.seqSem = make(chan struct{}, n)
	})
	return s.seqSem
}

// runSeq executes fn — a System call without context support — on its
// own goroutine and waits for the result or the context: the sequential
// matcher cannot be interrupted, so an expired request abandons the
// goroutine (it finishes in the background and its result is dropped).
// sem bounds how many such goroutines, live or abandoned, exist at once;
// when no slot is free the request is shed immediately with
// shard.ErrOverloaded (HTTP 429) instead of queueing behind the System
// mutex.
func runSeq[T any](ctx context.Context, sem chan struct{}, fn func() T) (T, error) {
	var zero T
	select {
	case sem <- struct{}{}:
	default:
		return zero, shard.ErrOverloaded
	}
	done := make(chan T, 1)
	go func() {
		defer func() { <-sem }()
		done <- fn()
	}()
	select {
	case v := <-done:
		return v, nil
	case <-ctx.Done():
		return zero, ctx.Err()
	}
}

// writeMatchErr maps matching-path failures onto transport semantics:
// shed load is 429 with a Retry-After hint, an expired budget is 503,
// anything else uses the endpoint's fallback status.
func writeMatchErr(w http.ResponseWriter, err error, fallback int) {
	switch {
	case errors.Is(err, shard.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, err)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		writeErr(w, http.StatusServiceUnavailable, err)
	default:
		writeErr(w, fallback, err)
	}
}

// knownEndpoints bounds the cardinality of the op label: paths outside
// this set are recorded as "other".
var knownEndpoints = map[string]bool{
	"/healthz": true, "/spair": true, "/vpair": true, "/apair": true,
	"/explain": true, "/feedback": true, "/stats": true, "/metrics": true,
	"/debug/requests": true, "/views": true, "/extract": true,
}

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler: the instrumentation middleware
// wrapping the mux. When tracing is on (Recorder or Logger set) it
// assigns the request an ID, installs a root span on the request
// context — every layer below picks it up via obs.SpanFrom — and, once
// the handler returns, records the finished trace and emits the
// structured request log line. With both off, a request pays two map
// lookups and two nil checks beyond the metrics it always paid.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	op := r.URL.Path
	if !knownEndpoints[op] {
		op = "other"
	}
	sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}

	var sp *obs.Span
	var id string
	gen := s.sys.Generation()
	if s.Recorder != nil || s.Logger != nil {
		id = fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
		sp = obs.StartSpan(op)
		sp.SetAttr("gen", strconv.FormatUint(gen, 10))
		sr.Header().Set("X-Request-ID", id)
		r = r.WithContext(obs.WithSpan(r.Context(), sp))
	}
	s.mux.ServeHTTP(sr, r)

	s.reg.Counter(fmt.Sprintf(`her_http_requests_total{op=%q,code="%d"}`,
		op, sr.status)).Inc()
	s.reg.Histogram(fmt.Sprintf(`her_http_request_seconds{op=%q,code="%d"}`,
		op, sr.status), obs.TimeBuckets).ObserveSince(t0)

	if sp != nil {
		var errMsg string
		if sr.status >= 400 {
			errMsg = fmt.Sprintf("HTTP %d", sr.status)
			sp.SetError(errors.New(errMsg))
		}
		sp.End()
		s.Recorder.Record(id, op, sp, errMsg)
		if s.Logger != nil {
			s.Logger.Info("request",
				"request_id", id,
				"op", op,
				"gen", gen,
				"status", sr.status,
				"duration", time.Since(t0))
		}
	}
}

// handleDebugRequests serves the flight recorder: every retained trace,
// or one trace by its request ID (?id=req-000042). 404 when tracing is
// disabled or the ID fell out of retention.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if s.Recorder == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("tracing disabled"))
		return
	}
	if id := r.URL.Query().Get("id"); id != "" {
		tr, ok := s.Recorder.ByID(id)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no retained trace %q", id))
			return
		}
		writeJSON(w, http.StatusOK, tr)
		return
	}
	traces := s.Recorder.Traces()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"count":  len(traces),
		"traces": traces,
	})
}

// handleMetrics serves the Prometheus text exposition of every metric
// recorded so far (HTTP, core matcher phases, BSP engine).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// pairParams parses rel/tuple(/vertex) query parameters.
func pairParams(r *http.Request, needVertex bool) (rel string, tuple int, vertex her.VertexID, err error) {
	rel = r.URL.Query().Get("rel")
	if rel == "" {
		return "", 0, 0, fmt.Errorf("missing rel parameter")
	}
	tuple, err = strconv.Atoi(r.URL.Query().Get("tuple"))
	if err != nil {
		return "", 0, 0, fmt.Errorf("bad tuple parameter: %v", err)
	}
	if needVertex {
		v, err := strconv.Atoi(r.URL.Query().Get("vertex"))
		if err != nil {
			return "", 0, 0, fmt.Errorf("bad vertex parameter: %v", err)
		}
		vertex = her.VertexID(v)
	}
	return rel, tuple, vertex, nil
}

//herlint:hot
func (s *Server) handleSPair(w http.ResponseWriter, r *http.Request) {
	rel, tuple, vertex, err := pairParams(r, true)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	vh, err := s.viewParam(r, "/spair")
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if !s.sys.GraphValid(vertex) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown vertex %d", vertex))
		return
	}
	ctx, cancel, err := s.reqContext(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	spair := s.spairFn
	if spair == nil {
		spair = vh.SPair
	}
	type res struct {
		match bool
		err   error
	}
	out, err := runSeq(ctx, s.seqSlots(), func() res {
		m, e := spair(rel, tuple, vertex)
		return res{match: m, err: e}
	})
	if err == nil {
		err = out.err
	}
	if err != nil {
		writeMatchErr(w, err, http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"rel": rel, "tuple": tuple, "vertex": vertex, "match": out.match,
	})
}

type matchJSON struct {
	Vertex int32  `json:"vertex"`
	Label  string `json:"label"`
}

// vpairMatches routes a VPair request to the configured backend: the
// test seam, the view's sharded engine, or the sequential view call
// wrapped in the deadline runner.
func (s *Server) vpairMatches(ctx context.Context, vh *her.ViewHandle, rel string, tuple int) ([]her.Pair, error) {
	if s.vpairFn != nil {
		type res struct {
			pairs []her.Pair
			err   error
		}
		out, err := runSeq(ctx, s.seqSlots(), func() res {
			p, e := s.vpairFn(rel, tuple)
			return res{pairs: p, err: e}
		})
		if err != nil {
			return nil, err
		}
		return out.pairs, out.err
	}
	sp := obs.SpanFrom(ctx)
	if eng := s.engineFor(vh.Name()); eng != nil {
		rsp := sp.Child("resolve")
		u, err := vh.TupleVertex(rel, tuple)
		rsp.End()
		if err != nil {
			return nil, err
		}
		return eng.VPair(ctx, u)
	}
	type res struct {
		pairs []her.Pair
		err   error
	}
	out, err := runSeq(ctx, s.seqSlots(), func() res {
		p, e := vh.VPairTraced(rel, tuple, sp)
		return res{pairs: p, err: e}
	})
	if err != nil {
		return nil, err
	}
	return out.pairs, out.err
}

//herlint:hot
func (s *Server) handleVPair(w http.ResponseWriter, r *http.Request) {
	rel, tuple, _, err := pairParams(r, false)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	vh, err := s.viewParam(r, "/vpair")
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	ctx, cancel, err := s.reqContext(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	matches, err := s.vpairMatches(ctx, vh, rel, tuple)
	if err != nil {
		writeMatchErr(w, err, http.StatusNotFound)
		return
	}
	rsp := obs.SpanFrom(ctx).Child("render")
	out := make([]matchJSON, 0, len(matches))
	for _, m := range matches {
		out = append(out, matchJSON{Vertex: int32(m.V), Label: s.sys.GraphLabel(m.V)})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"rel": rel, "tuple": tuple, "matches": out,
	})
	rsp.End()
}

//herlint:hot
func (s *Server) handleAPair(w http.ResponseWriter, r *http.Request) {
	workers := 1
	if q := r.URL.Query().Get("workers"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad workers parameter %q", q))
			return
		}
		if n > s.MaxWorkers {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("workers %d exceeds the limit of %d", n, s.MaxWorkers))
			return
		}
		workers = n
	}
	vh, err := s.viewParam(r, "/apair")
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	ctx, cancel, err := s.reqContext(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	var matches []her.Pair
	var statsOut interface{}
	switch {
	case s.apairFn == nil && !vh.IsDirect():
		// Named view: scatter-gather on the view's engine when it has
		// one, the view's sequential matcher otherwise. (The BSP workers
		// parameter applies only to the direct view's parallel engine.)
		if eng := s.engineFor(vh.Name()); eng != nil {
			matches, err = eng.APair(ctx, vh.SourceVertices())
			if err != nil {
				writeMatchErr(w, err, http.StatusInternalServerError)
				return
			}
			info := eng.Snapshot()
			statsOut = map[string]interface{}{
				"view":       vh.Name(),
				"shards":     info.Shards,
				"haloRadius": info.HaloRadius,
				"generation": info.Generation,
			}
			break
		}
		type res struct{ pairs []her.Pair }
		out, rErr := runSeq(ctx, s.seqSlots(), func() res {
			return res{pairs: vh.APair()}
		})
		if rErr != nil {
			writeMatchErr(w, rErr, http.StatusInternalServerError)
			return
		}
		matches = out.pairs
		statsOut = map[string]interface{}{"view": vh.Name(), "mode": "sequential"}
	case s.apairFn != nil || s.eng == nil:
		apair := s.apairFn
		if apair == nil {
			apair = func(n int) ([]her.Pair, her.ParallelStats, error) {
				return s.sys.APairParallel(n)
			}
		}
		type res struct {
			pairs []her.Pair
			stats her.ParallelStats
			err   error
		}
		out, rErr := runSeq(ctx, s.seqSlots(), func() res {
			p, st, e := apair(workers)
			return res{pairs: p, stats: st, err: e}
		})
		if rErr == nil {
			rErr = out.err
		}
		if rErr != nil {
			writeMatchErr(w, rErr, http.StatusInternalServerError)
			return
		}
		matches = out.pairs
		statsOut = map[string]int{
			"workers":        out.stats.Workers,
			"supersteps":     out.stats.Supersteps,
			"candidatePairs": out.stats.CandidatePairs,
		}
	default:
		// Sharded mode: the engine scatter-gathers over its fixed shard
		// workers; the workers parameter does not apply.
		matches, err = s.eng.APair(ctx, s.sys.SourceVertices())
		if err != nil {
			writeMatchErr(w, err, http.StatusInternalServerError)
			return
		}
		info := s.eng.Snapshot()
		statsOut = map[string]interface{}{
			"shards":     info.Shards,
			"haloRadius": info.HaloRadius,
			"generation": info.Generation,
		}
	}
	shown := matches
	if len(shown) > s.MaxAPairMatches {
		shown = shown[:s.MaxAPairMatches]
	}
	type pairJSON struct {
		Tuple  string `json:"tuple"`
		Vertex int32  `json:"vertex"`
	}
	out := make([]pairJSON, 0, len(shown))
	buf := make([]byte, 0, 64) // reused per row instead of Sprintf allocating twice
	for _, m := range shown {
		label := ""
		if ref, ok := vh.TupleOf(m.U); ok {
			buf = append(buf[:0], ref.Relation...)
			buf = append(buf, '/')
			buf = strconv.AppendInt(buf, int64(ref.TupleID), 10)
			label = string(buf)
		}
		out = append(out, pairJSON{Tuple: label, Vertex: int32(m.V)})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"count":   len(matches),
		"matches": out,
		"stats":   statsOut,
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	rel, tuple, vertex, err := pairParams(r, true)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	vh, err := s.viewParam(r, "/explain")
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if !s.sys.GraphValid(vertex) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown vertex %d", vertex))
		return
	}
	u, err := vh.TupleVertex(rel, tuple)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	ex, err := vh.Explain(u, vertex)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	type lineageJSON struct {
		U string `json:"u"`
		V string `json:"v"`
	}
	var lineage []lineageJSON
	for _, p := range ex.Lineage {
		lineage = append(lineage, lineageJSON{U: vh.GDLabel(p.U), V: s.sys.GraphLabel(p.V)})
	}
	schema := map[string]string{}
	for _, sm := range ex.SchemaMatches {
		schema[sm.Attr] = sm.Rho.LabelString()
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"witnessSize":   len(ex.Witness),
		"lineage":       lineage,
		"schemaMatches": schema,
	})
}

// feedbackItem is one user verdict in a POST /feedback body.
type feedbackItem struct {
	Rel    string `json:"rel"`
	Tuple  int    `json:"tuple"`
	Vertex int32  `json:"vertex"`
	Match  bool   `json:"match"`
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var items []feedbackItem
	if err := json.NewDecoder(r.Body).Decode(&items); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad body: %v", err))
		return
	}
	var fb []her.Feedback
	for _, it := range items {
		u, err := s.sys.TupleVertex(it.Rel, it.Tuple)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		if !s.sys.GraphValid(her.VertexID(it.Vertex)) {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown vertex %d", it.Vertex))
			return
		}
		fb = append(fb, her.Feedback{
			Pair:    her.Pair{U: u, V: her.VertexID(it.Vertex)},
			IsMatch: it.Match,
		})
	}
	s.sys.Refine(fb)
	writeJSON(w, http.StatusOK, map[string]int{"applied": len(fb), "overrides": s.sys.Overrides()})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.sys.Stats()
	th := s.sys.Thresholds()
	out := map[string]interface{}{
		"thresholds": map[string]interface{}{"sigma": th.Sigma, "delta": th.Delta, "k": th.K},
		"matcher": map[string]int{
			"calls": st.Calls, "cacheHits": st.CacheHits,
			"cleanups": st.Cleanups, "rechecks": st.Rechecks,
		},
	}
	if s.eng != nil {
		out["shard"] = s.eng.Snapshot()
	}
	out["views"] = s.viewStats()
	if ps, ok := s.sys.LastParallelStats(); ok {
		stepMillis := make([]float64, len(ps.SuperstepDurations))
		for i, d := range ps.SuperstepDurations {
			stepMillis[i] = float64(d) / float64(time.Millisecond)
		}
		out["parallel"] = map[string]interface{}{
			"workers":         ps.Workers,
			"supersteps":      ps.Supersteps,
			"requests":        ps.Requests,
			"invalidations":   ps.Invalidations,
			"candidatePairs":  ps.CandidatePairs,
			"perWorkerPairs":  ps.PerWorkerPairs,
			"perWorkerCalls":  ps.PerWorkerCalls,
			"calls":           ps.Calls,
			"superstepMillis": stepMillis,
			"wallMillis":      float64(ps.WallTime) / float64(time.Millisecond),
		}
	}
	writeJSON(w, http.StatusOK, out)
}
