// Package server exposes a trained HER System over HTTP as JSON
// endpoints — the deployment shape for the paper's real-time VPair use
// case (pay-as-you-go entity resolution) and the interactive feedback
// loop:
//
//	GET  /healthz
//	GET  /spair?rel=item&tuple=0&vertex=12
//	GET  /vpair?rel=item&tuple=0
//	GET  /apair?workers=4
//	GET  /explain?rel=item&tuple=0&vertex=12
//	POST /feedback     [{"rel":"item","tuple":0,"vertex":12,"match":true}]
//	GET  /stats
//	GET  /metrics      (Prometheus text exposition)
//
// Every request passes through an instrumentation middleware that
// records per-endpoint request counts, status codes and latency
// histograms into the system's metrics registry (or a private one when
// the system was built without instrumentation), so /metrics always
// covers the serving path.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"her"
	"her/internal/obs"
)

// Server wraps a System with HTTP handlers.
type Server struct {
	sys *her.System
	mux *http.ServeMux
	reg *obs.Registry
	// MaxAPairMatches caps the matches returned inline by /apair
	// (default 1000); the full count is always reported.
	MaxAPairMatches int
	// MaxWorkers bounds the workers query parameter of /apair (default
	// 32): a request may not spawn an arbitrary goroutine fleet.
	MaxWorkers int
}

// New builds the handler around a trained system. HTTP metrics land in
// the system's registry when it has one, so core/bsp and serving
// metrics share one /metrics page; otherwise a server-private registry
// still captures the HTTP side.
func New(sys *her.System) *Server {
	reg := sys.Metrics()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{sys: sys, mux: http.NewServeMux(), reg: reg, MaxAPairMatches: 1000, MaxWorkers: 32}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/spair", s.handleSPair)
	s.mux.HandleFunc("/vpair", s.handleVPair)
	s.mux.HandleFunc("/apair", s.handleAPair)
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/feedback", s.handleFeedback)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Metrics returns the registry the server records HTTP metrics into.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// knownEndpoints bounds the cardinality of the endpoint label: paths
// outside this set are recorded as "other".
var knownEndpoints = map[string]bool{
	"/healthz": true, "/spair": true, "/vpair": true, "/apair": true,
	"/explain": true, "/feedback": true, "/stats": true, "/metrics": true,
}

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler: the instrumentation middleware
// wrapping the mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sr, r)

	endpoint := r.URL.Path
	if !knownEndpoints[endpoint] {
		endpoint = "other"
	}
	s.reg.Counter(fmt.Sprintf(`her_http_requests_total{endpoint=%q,status="%d"}`,
		endpoint, sr.status)).Inc()
	s.reg.Histogram(fmt.Sprintf(`her_http_request_seconds{endpoint=%q}`, endpoint),
		nil).ObserveSince(t0)
}

// handleMetrics serves the Prometheus text exposition of every metric
// recorded so far (HTTP, core matcher phases, BSP engine).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// pairParams parses rel/tuple(/vertex) query parameters.
func pairParams(r *http.Request, needVertex bool) (rel string, tuple int, vertex her.VertexID, err error) {
	rel = r.URL.Query().Get("rel")
	if rel == "" {
		return "", 0, 0, fmt.Errorf("missing rel parameter")
	}
	tuple, err = strconv.Atoi(r.URL.Query().Get("tuple"))
	if err != nil {
		return "", 0, 0, fmt.Errorf("bad tuple parameter: %v", err)
	}
	if needVertex {
		v, err := strconv.Atoi(r.URL.Query().Get("vertex"))
		if err != nil {
			return "", 0, 0, fmt.Errorf("bad vertex parameter: %v", err)
		}
		vertex = her.VertexID(v)
	}
	return rel, tuple, vertex, nil
}

func (s *Server) handleSPair(w http.ResponseWriter, r *http.Request) {
	rel, tuple, vertex, err := pairParams(r, true)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if !s.sys.G.Valid(vertex) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown vertex %d", vertex))
		return
	}
	match, err := s.sys.SPair(rel, tuple, vertex)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"rel": rel, "tuple": tuple, "vertex": vertex, "match": match,
	})
}

type matchJSON struct {
	Vertex int32  `json:"vertex"`
	Label  string `json:"label"`
}

func (s *Server) handleVPair(w http.ResponseWriter, r *http.Request) {
	rel, tuple, _, err := pairParams(r, false)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	matches, err := s.sys.VPair(rel, tuple)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	out := make([]matchJSON, 0, len(matches))
	for _, m := range matches {
		out = append(out, matchJSON{Vertex: int32(m.V), Label: s.sys.G.Label(m.V)})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"rel": rel, "tuple": tuple, "matches": out,
	})
}

func (s *Server) handleAPair(w http.ResponseWriter, r *http.Request) {
	workers := 1
	if q := r.URL.Query().Get("workers"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad workers parameter %q", q))
			return
		}
		if n > s.MaxWorkers {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("workers %d exceeds the limit of %d", n, s.MaxWorkers))
			return
		}
		workers = n
	}
	matches, stats, err := s.sys.APairParallel(workers)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	shown := matches
	if len(shown) > s.MaxAPairMatches {
		shown = shown[:s.MaxAPairMatches]
	}
	type pairJSON struct {
		Tuple  string `json:"tuple"`
		Vertex int32  `json:"vertex"`
	}
	out := make([]pairJSON, 0, len(shown))
	for _, m := range shown {
		label := ""
		if ref, ok := s.sys.Mapping.TupleOf(m.U); ok {
			label = fmt.Sprintf("%s/%d", ref.Relation, ref.TupleID)
		}
		out = append(out, pairJSON{Tuple: label, Vertex: int32(m.V)})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"count":   len(matches),
		"matches": out,
		"stats": map[string]int{
			"workers":        stats.Workers,
			"supersteps":     stats.Supersteps,
			"candidatePairs": stats.CandidatePairs,
		},
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	rel, tuple, vertex, err := pairParams(r, true)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if !s.sys.G.Valid(vertex) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown vertex %d", vertex))
		return
	}
	u, ok := s.sys.Mapping.VertexOf(rel, tuple)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown tuple %s/%d", rel, tuple))
		return
	}
	ex, err := s.sys.Explain(u, vertex)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	type lineageJSON struct {
		U string `json:"u"`
		V string `json:"v"`
	}
	var lineage []lineageJSON
	for _, p := range ex.Lineage {
		lineage = append(lineage, lineageJSON{U: s.sys.GD.Label(p.U), V: s.sys.G.Label(p.V)})
	}
	schema := map[string]string{}
	for _, sm := range ex.SchemaMatches {
		schema[sm.Attr] = sm.Rho.LabelString()
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"witnessSize":   len(ex.Witness),
		"lineage":       lineage,
		"schemaMatches": schema,
	})
}

// feedbackItem is one user verdict in a POST /feedback body.
type feedbackItem struct {
	Rel    string `json:"rel"`
	Tuple  int    `json:"tuple"`
	Vertex int32  `json:"vertex"`
	Match  bool   `json:"match"`
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var items []feedbackItem
	if err := json.NewDecoder(r.Body).Decode(&items); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad body: %v", err))
		return
	}
	var fb []her.Feedback
	for _, it := range items {
		u, ok := s.sys.Mapping.VertexOf(it.Rel, it.Tuple)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown tuple %s/%d", it.Rel, it.Tuple))
			return
		}
		if !s.sys.G.Valid(her.VertexID(it.Vertex)) {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown vertex %d", it.Vertex))
			return
		}
		fb = append(fb, her.Feedback{
			Pair:    her.Pair{U: u, V: her.VertexID(it.Vertex)},
			IsMatch: it.Match,
		})
	}
	s.sys.Refine(fb)
	writeJSON(w, http.StatusOK, map[string]int{"applied": len(fb), "overrides": s.sys.Overrides()})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.sys.Stats()
	th := s.sys.Thresholds()
	out := map[string]interface{}{
		"thresholds": map[string]interface{}{"sigma": th.Sigma, "delta": th.Delta, "k": th.K},
		"matcher": map[string]int{
			"calls": st.Calls, "cacheHits": st.CacheHits,
			"cleanups": st.Cleanups, "rechecks": st.Rechecks,
		},
	}
	if ps, ok := s.sys.LastParallelStats(); ok {
		stepMillis := make([]float64, len(ps.SuperstepDurations))
		for i, d := range ps.SuperstepDurations {
			stepMillis[i] = float64(d) / float64(time.Millisecond)
		}
		out["parallel"] = map[string]interface{}{
			"workers":         ps.Workers,
			"supersteps":      ps.Supersteps,
			"requests":        ps.Requests,
			"invalidations":   ps.Invalidations,
			"candidatePairs":  ps.CandidatePairs,
			"perWorkerPairs":  ps.PerWorkerPairs,
			"perWorkerCalls":  ps.PerWorkerCalls,
			"calls":           ps.Calls,
			"superstepMillis": stepMillis,
			"wallMillis":      float64(ps.WallTime) / float64(time.Millisecond),
		}
	}
	writeJSON(w, http.StatusOK, out)
}
