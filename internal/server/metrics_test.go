package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"her"
)

// instrumentedSystem is trainedSystem with a metrics registry attached,
// so HTTP, core and (after /apair) BSP metrics share one exposition.
func instrumentedSystem(t *testing.T) (*her.System, her.VertexID) {
	t.Helper()
	sys, p1, _ := trainedSystemWithOpts(t, her.Options{Seed: 2, Metrics: her.NewMetrics()})
	return sys, p1
}

func getRaw(t *testing.T, h http.Handler, url string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestMetricsEndpoint(t *testing.T) {
	sys, p1 := instrumentedSystem(t)
	srv := New(sys)

	// Generate traffic across statuses and a parallel run.
	get(t, srv, "/spair?rel=product&tuple=0&vertex="+itoa(p1)) // 200
	get(t, srv, "/vpair?rel=product&tuple=0")                  // 200
	get(t, srv, "/spair?rel=product&tuple=zzz&vertex=0")       // 400
	get(t, srv, "/spair?rel=ghost&tuple=0&vertex=0")           // 404
	get(t, srv, "/apair?workers=2")                            // 200, BSP run

	code, body := getRaw(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE her_http_requests_total counter",
		`her_http_requests_total{op="/spair",code="200"} 1`,
		`her_http_requests_total{op="/spair",code="400"} 1`,
		`her_http_requests_total{op="/spair",code="404"} 1`,
		`her_http_requests_total{op="/vpair",code="200"} 1`,
		"# TYPE her_http_request_seconds histogram",
		`her_http_request_seconds_bucket{op="/vpair",code="200",le="+Inf"} 1`,
		`her_http_request_seconds_count{op="/vpair",code="200"} 1`,
		// Sub-millisecond resolution: the finest TimeBuckets bound shows.
		`her_http_request_seconds_bucket{op="/vpair",code="200",le="1e-06"}`,
		// Core phase metrics flow through the shared registry.
		"# TYPE her_core_paramatch_seconds histogram",
		"her_core_paramatch_calls_total",
		// BSP metrics from the /apair run.
		"# TYPE her_bsp_superstep_seconds histogram",
		`her_bsp_run_seconds_count{mode="bsp"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestMetricsWithoutSystemRegistry(t *testing.T) {
	// A system built without Options.Metrics still gets HTTP metrics
	// from the server's private registry.
	sys, _, _ := trainedSystem(t)
	srv := New(sys)
	get(t, srv, "/healthz")
	code, body := getRaw(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	if !strings.Contains(body, `her_http_requests_total{op="/healthz",code="200"} 1`) {
		t.Errorf("missing healthz sample:\n%s", body)
	}
	// No core metrics: the matcher has no registry.
	if strings.Contains(body, "her_core_paramatch_calls_total") {
		t.Error("core metrics leaked into a server-private registry")
	}
}

func TestMiddlewareBoundsEndpointCardinality(t *testing.T) {
	sys, _, _ := trainedSystem(t)
	srv := New(sys)
	getRaw(t, srv, "/totally/unknown/path-1")
	getRaw(t, srv, "/totally/unknown/path-2")
	_, body := getRaw(t, srv, "/metrics")
	if !strings.Contains(body, `her_http_requests_total{op="other",code="404"} 2`) {
		t.Errorf("unknown paths not folded into \"other\":\n%s", body)
	}
	if strings.Contains(body, "path-1") {
		t.Error("raw unknown path leaked into a metric label")
	}
}

func TestAPairWorkersBound(t *testing.T) {
	sys, _, _ := trainedSystem(t)
	srv := New(sys)
	if code, _ := get(t, srv, "/apair?workers=100000"); code != http.StatusBadRequest {
		t.Errorf("absurd workers accepted: %d", code)
	}
	if code, _ := get(t, srv, "/apair?workers=-3"); code != http.StatusBadRequest {
		t.Errorf("negative workers accepted: %d", code)
	}
	srv.MaxWorkers = 2
	if code, _ := get(t, srv, "/apair?workers=3"); code != http.StatusBadRequest {
		t.Errorf("workers above custom bound accepted: %d", code)
	}
	if code, _ := get(t, srv, "/apair?workers=2"); code != http.StatusOK {
		t.Errorf("workers at the bound rejected: %d", code)
	}
}

func TestStatsIncludesParallelRun(t *testing.T) {
	sys, _, _ := trainedSystem(t)
	srv := New(sys)
	// Before any parallel run the key is absent.
	_, body := get(t, srv, "/stats")
	if _, ok := body["parallel"]; ok {
		t.Error("parallel stats present before any parallel run")
	}
	get(t, srv, "/apair?workers=2")
	_, body = get(t, srv, "/stats")
	par, ok := body["parallel"].(map[string]interface{})
	if !ok {
		t.Fatalf("no parallel stats after /apair: %v", body)
	}
	if par["workers"].(float64) != 2 {
		t.Errorf("workers = %v", par["workers"])
	}
	if par["supersteps"].(float64) < 1 {
		t.Errorf("supersteps = %v", par["supersteps"])
	}
	if _, ok := par["perWorkerPairs"].([]interface{}); !ok {
		t.Errorf("perWorkerPairs = %v", par["perWorkerPairs"])
	}
	if par["wallMillis"].(float64) <= 0 {
		t.Errorf("wallMillis = %v", par["wallMillis"])
	}
}

func TestServerErrorPaths(t *testing.T) {
	sys, _, _ := trainedSystem(t)
	srv := New(sys)
	cases := []struct {
		url  string
		want int
	}{
		{"/vpair?rel=ghost&tuple=0", http.StatusNotFound},       // bad rel
		{"/vpair?rel=product&tuple=abc", http.StatusBadRequest}, // non-numeric tuple
		{"/vpair?tuple=0", http.StatusBadRequest},               // missing rel
		{"/explain?rel=product&tuple=nope&vertex=0", http.StatusBadRequest},
		{"/feedback", http.StatusMethodNotAllowed}, // GET on a POST endpoint
	}
	for _, c := range cases {
		if code, _ := get(t, srv, c.url); code != c.want {
			t.Errorf("GET %s = %d, want %d", c.url, code, c.want)
		}
	}
	// Malformed feedback body.
	req := httptest.NewRequest(http.MethodPost, "/feedback", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad feedback body = %d", rec.Code)
	}
	// Unknown tuple in feedback.
	req = httptest.NewRequest(http.MethodPost, "/feedback",
		strings.NewReader(`[{"rel":"ghost","tuple":9,"vertex":0,"match":true}]`))
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown feedback tuple = %d", rec.Code)
	}
}
