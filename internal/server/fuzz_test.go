package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"her"
)

// fuzzServer lazily builds one trained system per process, shared across
// fuzz iterations (training is far too expensive per input). Handlers
// must tolerate any request sequence, so cross-iteration state (e.g.
// feedback overrides) is part of the surface under test.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
	fuzzErr  error
)

func fuzzServer() (*Server, error) {
	fuzzOnce.Do(func() {
		sys, _, _, err := buildCatalog(her.Options{Seed: 2})
		if err != nil {
			fuzzErr = err
			return
		}
		fuzzSrv = New(sys)
	})
	return fuzzSrv, fuzzErr
}

var fuzzMethods = []string{
	http.MethodGet, http.MethodPost, http.MethodPut,
	http.MethodDelete, http.MethodHead,
}

// FuzzServeHTTP exercises the server's request-decoding surface: any
// method/target/body combination must produce an HTTP response — never a
// handler panic — and JSON responses must actually be JSON.
func FuzzServeHTTP(f *testing.F) {
	f.Add(uint8(0), "/healthz", []byte(""))
	f.Add(uint8(0), "/spair?rel=product&tuple=0&vertex=0", []byte(""))
	f.Add(uint8(0), "/spair?rel=product&tuple=0&vertex=9999", []byte(""))
	f.Add(uint8(0), "/spair?rel=product&tuple=-1&vertex=-1", []byte(""))
	f.Add(uint8(0), "/vpair?rel=product&tuple=0", []byte(""))
	f.Add(uint8(0), "/apair?workers=2", []byte(""))
	f.Add(uint8(0), "/apair?workers=100000", []byte(""))
	f.Add(uint8(0), "/explain?rel=product&tuple=0&vertex=0", []byte(""))
	f.Add(uint8(1), "/feedback", []byte(`[{"rel":"product","tuple":0,"vertex":0,"match":true}]`))
	f.Add(uint8(1), "/feedback", []byte(`[{"rel":"product","tuple":0,"vertex":-5,"match":true}]`))
	f.Add(uint8(1), "/feedback", []byte(`{"not":"a list"}`))
	f.Add(uint8(0), "/stats", []byte(""))
	f.Add(uint8(0), "/metrics", []byte(""))
	f.Add(uint8(3), "/nowhere?%zz=1", []byte("junk"))
	f.Fuzz(func(t *testing.T, methodIdx uint8, target string, body []byte) {
		srv, err := fuzzServer()
		if err != nil {
			t.Fatalf("building fuzz system: %v", err)
		}
		if !strings.HasPrefix(target, "/") {
			target = "/" + target
		}
		u, err := url.ParseRequestURI(target)
		if err != nil {
			return // not a parseable request target; nothing to serve
		}
		req := &http.Request{
			Method:     fuzzMethods[int(methodIdx)%len(fuzzMethods)],
			URL:        u,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     make(http.Header),
			Body:       io.NopCloser(bytes.NewReader(body)),
			Host:       "fuzz.test",
			RemoteAddr: "192.0.2.1:1234",
			RequestURI: target,
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code < 100 || rec.Code > 599 {
			t.Fatalf("%s %s: implausible status %d", req.Method, target, rec.Code)
		}
		ct := rec.Header().Get("Content-Type")
		if strings.Contains(ct, "application/json") && rec.Body.Len() > 0 {
			var v interface{}
			if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
				t.Fatalf("%s %s: Content-Type json but body is not: %v\n%s",
					req.Method, target, err, rec.Body.Bytes())
			}
		}
	})
}
