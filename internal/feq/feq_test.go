package feq

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{1, 1 + 1e-12, true},                  // ulp-scale noise
		{1, 1 + 1e-6, false},                  // a real gap
		{0.3, 0.1 + 0.2, true},                // the classic
		{1e12, 1e12 * (1 + 1e-12), true},      // relative scaling
		{1e12, 1e12 + 1, true},                // 1 part in 1e12
		{1e12, 1e12 * (1 + 1e-6), false},      // relative gap
		{math.Inf(1), math.Inf(1), true},      // equal infinities
		{math.Inf(1), math.Inf(-1), false},    // opposite infinities
		{math.Inf(1), math.MaxFloat64, false}, // inf vs finite
		{math.NaN(), math.NaN(), false},       // NaN never equal
		{math.NaN(), 0, false},
		{-0.0, 0.0, true},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEqTol(t *testing.T) {
	if !EqTol(1, 1.05, 0.1) {
		t.Error("EqTol(1, 1.05, 0.1) should hold")
	}
	if EqTol(1, 1.2, 0.1) {
		t.Error("EqTol(1, 1.2, 0.1) should not hold")
	}
	// Symmetry.
	if EqTol(1, 1.05, 0.1) != EqTol(1.05, 1, 0.1) {
		t.Error("EqTol is not symmetric")
	}
}
