// Package feq provides tolerance-based floating-point comparison — the
// sanctioned alternative to `==`/`!=` on computed float64 values.
//
// Exact equality on computed scores is one of the nondeterminism traps
// herlint (internal/lint, analyzer "floateq") guards against: two
// mathematically equal similarity scores can differ in their last ulp
// depending on evaluation order, and a `==` tie-break then silently
// changes ranking between otherwise-equivalent implementations. Call
// sites comparing computed floats use Eq/EqTol instead; comparisons
// against compile-time constants (sentinels like 0) remain exact and
// are not flagged.
package feq

import "math"

// Tol is the default comparison tolerance. It is far above the ulp
// noise of the double-precision score pipelines (embedding cosines,
// metric-network sigmoids) and far below any meaningful score gap.
const Tol = 1e-9

// Eq reports whether a and b are equal within the default tolerance.
func Eq(a, b float64) bool { return EqTol(a, b, Tol) }

// EqTol reports whether a and b are equal within tol, scaled by the
// larger magnitude once values leave [-1, 1]: |a-b| <= tol*max(1,|a|,|b|).
// NaN compares unequal to everything, including NaN; equal infinities
// compare equal.
func EqTol(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { //herlint:ignore floateq — the helper itself needs the exact case (infinities, exact hits)
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // an infinity only equals itself, handled above
	}
	scale := 1.0
	if aa := math.Abs(a); aa > scale {
		scale = aa
	}
	if ab := math.Abs(b); ab > scale {
		scale = ab
	}
	return math.Abs(a-b) <= tol*scale
}
