package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestTSVRoundTrip(t *testing.T) {
	g := New()
	a := g.AddVertex("plain")
	b := g.AddVertex("with\ttab")
	c := g.AddVertex("with\nnewline and \\backslash")
	g.MustAddEdge(a, b, "edge one")
	g.MustAddEdge(b, c, "e\t2")
	g.MustAddEdge(c, a, "e3")

	var buf bytes.Buffer
	if err := g.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("sizes differ: (%d,%d) vs (%d,%d)",
			got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for i := 0; i < g.NumVertices(); i++ {
		if got.Label(VID(i)) != g.Label(VID(i)) {
			t.Errorf("label %d: %q vs %q", i, got.Label(VID(i)), g.Label(VID(i)))
		}
		oe, ge := got.Out(VID(i)), g.Out(VID(i))
		if len(oe) != len(ge) {
			t.Fatalf("out-degree %d differs", i)
		}
		for j := range oe {
			if oe[j] != ge[j] {
				t.Errorf("edge %d/%d: %+v vs %+v", i, j, oe[j], ge[j])
			}
		}
	}
}

func TestTSVRoundTripProperty(t *testing.T) {
	prop := func(labels []string, edges []uint16) bool {
		if len(labels) == 0 {
			labels = []string{"x"}
		}
		if len(labels) > 12 {
			labels = labels[:12]
		}
		g := New()
		for _, l := range labels {
			g.AddVertex(l)
		}
		n := g.NumVertices()
		for _, e := range edges {
			g.MustAddEdge(VID(int(e>>8)%n), VID(int(e&0xff)%n), "e")
		}
		var buf bytes.Buffer
		if err := g.WriteTSV(&buf); err != nil {
			return false
		}
		got, err := ReadTSV(&buf)
		if err != nil {
			return false
		}
		if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
			return false
		}
		for i := 0; i < n; i++ {
			if got.Label(VID(i)) != g.Label(VID(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := []string{
		"v\t1\tlabel\n",           // out-of-order vertex id
		"v\tnope\tlabel\n",        // non-numeric id
		"v\t0\n",                  // missing field
		"e\t0\t1\tx\n",            // edge before vertices exist
		"x\t0\t1\n",               // unknown record
		"v\t0\ta\ne\t0\n",         // short edge line
		"v\t0\ta\ne\t0\tz\tlbl\n", // bad edge target
	}
	for _, c := range cases {
		if _, err := ReadTSV(strings.NewReader(c)); err == nil {
			t.Errorf("input %q should fail", c)
		}
	}
	// Comments and blank lines are fine.
	g, err := ReadTSV(strings.NewReader("# comment\n\nv\t0\ta\n"))
	if err != nil || g.NumVertices() != 1 {
		t.Errorf("comment handling broken: %v", err)
	}
}
