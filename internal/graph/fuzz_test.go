package graph

import (
	"bytes"
	"testing"
)

// FuzzReadTSV exercises the untrusted graph-TSV parse surface: arbitrary
// bytes must either fail with an error or produce a graph that survives
// a write/re-read round trip unchanged (escaping included).
func FuzzReadTSV(f *testing.F) {
	f.Add([]byte("v\t0\talpha\nv\t1\tbeta\ne\t0\t1\tx\n"))
	f.Add([]byte("v\t0\ttab\\there\nv\t1\tnew\\nline\ne\t0\t0\tself\n"))
	f.Add([]byte("# comment\n\nv\t0\tlone\n"))
	f.Add([]byte("e\t0\t1\tdangling\n"))
	f.Add([]byte("v\t5\tout of order\n"))
	f.Add([]byte("v\t0\n"))
	f.Add([]byte("v\t0\tback\\\\slash\nv\t1\t\\q\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadTSV(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		var buf bytes.Buffer
		if err := g.WriteTSV(&buf); err != nil {
			t.Fatalf("WriteTSV of accepted graph: %v", err)
		}
		g2, err := ReadTSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of serialized graph: %v\n%s", err, buf.Bytes())
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed size: %d/%d -> %d/%d",
				g.NumVertices(), g.NumEdges(), g2.NumVertices(), g2.NumEdges())
		}
		for i := 0; i < g.NumVertices(); i++ {
			v := VID(i)
			if g.Label(v) != g2.Label(v) {
				t.Fatalf("round trip changed label of %d: %q -> %q", i, g.Label(v), g2.Label(v))
			}
			out, out2 := g.Out(v), g2.Out(v)
			if len(out) != len(out2) {
				t.Fatalf("round trip changed out-degree of %d", i)
			}
			for j := range out {
				if out[j] != out2[j] {
					t.Fatalf("round trip changed edge %d/%d: %+v -> %+v", i, j, out[j], out2[j])
				}
			}
		}
	})
}
