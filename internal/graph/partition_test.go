package graph

import (
	"math/rand"
	"testing"
)

// randomGraph builds a seeded random graph with nv vertices and roughly
// 2·nv edges (self-loops and multi-edges allowed).
func randomGraph(seed int64, nv int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(nv)
	for i := 0; i < nv; i++ {
		g.AddVertex("v")
	}
	for i := 0; i < 2*nv; i++ {
		from := VID(rng.Intn(nv))
		to := VID(rng.Intn(nv))
		g.MustAddEdge(from, to, "e")
	}
	return g
}

// checkPartition asserts the PartitionEdgeCut contract on one (g, n)
// input: exactly n fragments in id order, every vertex owned exactly
// once, Of consistent with Owned, borders correct, empty fragments
// well-formed.
func checkPartition(t *testing.T, g *Graph, n int) *Partition {
	t.Helper()
	p, err := PartitionEdgeCut(g, n)
	if err != nil {
		t.Fatalf("PartitionEdgeCut(|V|=%d, n=%d): %v", g.NumVertices(), n, err)
	}
	if len(p.Fragments) != n {
		t.Fatalf("got %d fragments, want exactly %d", len(p.Fragments), n)
	}
	seen := make(map[VID]int)
	for i, f := range p.Fragments {
		if f.ID != i {
			t.Fatalf("fragment %d carries id %d: not in id order", i, f.ID)
		}
		for _, v := range f.Owned {
			if prev, dup := seen[v]; dup {
				t.Fatalf("vertex %d owned by fragments %d and %d", v, prev, i)
			}
			seen[v] = i
			if p.Of[v] != i {
				t.Fatalf("Of[%d] = %d, fragment %d claims it", v, p.Of[v], i)
			}
			if !f.Owner[v] {
				t.Fatalf("fragment %d: Owned vertex %d missing from Owner set", i, v)
			}
		}
		for _, b := range f.Border {
			if f.Owner[b] {
				t.Fatalf("fragment %d: border vertex %d is owned locally", i, b)
			}
		}
	}
	if len(seen) != g.NumVertices() {
		t.Fatalf("%d vertices assigned, want %d (total cover)", len(seen), g.NumVertices())
	}
	return p
}

// TestPartitionContractSweep sweeps seeded random graphs across
// fragment counts from 1 up to beyond |V|, asserting the full contract
// everywhere — in particular that n > |V| yields exactly n fragments
// with the surplus ones valid and empty. (TestPartitionProperty in
// graph_test.go quick-checks ownership totality on a different input
// distribution; this sweep pins the rest of the documented contract.)
func TestPartitionContractSweep(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		nv := 1 + int(seed)*3
		g := randomGraph(seed, nv)
		for _, n := range []int{1, 2, 3, nv, nv + 1, 2*nv + 5} {
			p := checkPartition(t, g, n)
			if n > nv {
				empty := 0
				for _, f := range p.Fragments {
					if len(f.Owned) == 0 {
						empty++
						if len(f.Border) != 0 || len(f.Owner) != 0 {
							t.Fatalf("empty fragment %d has border/owner residue", f.ID)
						}
					}
				}
				if empty != n-nv {
					t.Fatalf("n=%d over %d vertices: %d empty fragments, want %d",
						n, nv, empty, n-nv)
				}
			}
		}
	}
}

// TestPartitionDeterministic: the same graph partitions identically on
// every call — fragment order, owned order and border order included.
func TestPartitionDeterministic(t *testing.T) {
	g := randomGraph(42, 60)
	a, err := PartitionEdgeCut(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		b, err := PartitionEdgeCut(g, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Fragments {
			fa, fb := a.Fragments[i], b.Fragments[i]
			if len(fa.Owned) != len(fb.Owned) || len(fa.Border) != len(fb.Border) {
				t.Fatalf("fragment %d shape differs across runs", i)
			}
			for j := range fa.Owned {
				if fa.Owned[j] != fb.Owned[j] {
					t.Fatalf("fragment %d owned order differs at %d", i, j)
				}
			}
			for j := range fa.Border {
				if fa.Border[j] != fb.Border[j] {
					t.Fatalf("fragment %d border order differs at %d", i, j)
				}
			}
		}
	}
}

// TestPartitionEmptyGraph: zero vertices still yields n valid (empty)
// fragments.
func TestPartitionEmptyGraph(t *testing.T) {
	p := checkPartition(t, New(), 4)
	if p.CrossEdges() != 0 {
		t.Fatal("empty graph has cross edges")
	}
}

// TestPartitionRejectsNonPositive pins the only error case.
func TestPartitionRejectsNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := PartitionEdgeCut(New(1), n); err == nil {
			t.Errorf("PartitionEdgeCut(n=%d) accepted", n)
		}
	}
}
