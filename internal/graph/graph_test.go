package graph

import (
	"testing"
	"testing/quick"
)

// diamond builds: a→b, a→c, b→d, c→d, plus a self-contained leaf e.
func diamond(t *testing.T) (*Graph, []VID) {
	t.Helper()
	g := New()
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	c := g.AddVertex("c")
	d := g.AddVertex("d")
	e := g.AddVertex("e")
	g.MustAddEdge(a, b, "ab")
	g.MustAddEdge(a, c, "ac")
	g.MustAddEdge(b, d, "bd")
	g.MustAddEdge(c, d, "cd")
	return g, []VID{a, b, c, d, e}
}

func TestBasicAccessors(t *testing.T) {
	g, vs := diamond(t)
	a, b, _, d, e := vs[0], vs[1], vs[2], vs[3], vs[4]
	if g.NumVertices() != 5 || g.NumEdges() != 4 {
		t.Fatalf("size = (%d,%d)", g.NumVertices(), g.NumEdges())
	}
	if g.Size() != 9 {
		t.Errorf("Size = %d, want 9", g.Size())
	}
	if g.Label(a) != "a" {
		t.Errorf("Label(a) = %q", g.Label(a))
	}
	if g.OutDegree(a) != 2 || g.Degree(d) != 2 || g.Degree(b) != 2 {
		t.Error("degree accounting wrong")
	}
	if !g.IsLeaf(d) || !g.IsLeaf(e) || g.IsLeaf(a) {
		t.Error("leaf detection wrong")
	}
	if lbl, ok := g.FindEdge(a, b); !ok || lbl != "ab" {
		t.Errorf("FindEdge(a,b) = %q,%v", lbl, ok)
	}
	if _, ok := g.FindEdge(b, a); ok {
		t.Error("FindEdge should respect direction")
	}
	if err := g.AddEdge(a, VID(99), "x"); err == nil {
		t.Error("edge to invalid vertex should fail")
	}
	g.SetLabel(e, "e2")
	if g.Label(e) != "e2" {
		t.Error("SetLabel did not stick")
	}
}

func TestChildrenDistinct(t *testing.T) {
	g := New()
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	g.MustAddEdge(a, b, "x")
	g.MustAddEdge(a, b, "y") // parallel edge
	kids := g.Children(a)
	if len(kids) != 1 || kids[0] != b {
		t.Errorf("Children = %v", kids)
	}
	if g.NumEdges() != 2 {
		t.Errorf("parallel edges should both count: %d", g.NumEdges())
	}
}

func TestReachable(t *testing.T) {
	g, vs := diamond(t)
	a, d, e := vs[0], vs[3], vs[4]
	r := g.Reachable(a, 0)
	if len(r) != 3 || !r[d] || r[e] {
		t.Errorf("Reachable(a) = %v", r)
	}
	capped := g.Reachable(a, 2)
	if len(capped) != 2 {
		t.Errorf("capped Reachable = %v", capped)
	}
	// Cycle: reachable includes the start.
	c := New()
	x := c.AddVertex("x")
	y := c.AddVertex("y")
	c.MustAddEdge(x, y, "e")
	c.MustAddEdge(y, x, "e")
	if r := c.Reachable(x, 0); !r[x] || !r[y] {
		t.Errorf("cycle Reachable = %v", r)
	}
}

func TestVerticesByLabelAndSorted(t *testing.T) {
	g, vs := diamond(t)
	byLabel := g.VerticesByLabel()
	if len(byLabel["a"]) != 1 || byLabel["a"][0] != vs[0] {
		t.Errorf("byLabel[a] = %v", byLabel["a"])
	}
	order := g.SortedVertices()
	if len(order) != 5 {
		t.Fatalf("SortedVertices len = %d", len(order))
	}
	if order[0] != vs[4] { // e has degree 0
		t.Errorf("lowest-degree vertex should come first, got %v", order[0])
	}
	for i := 1; i < len(order); i++ {
		if g.Degree(order[i-1]) > g.Degree(order[i]) {
			t.Errorf("not sorted by degree at %d", i)
		}
	}
}

func TestPathOperations(t *testing.T) {
	g, vs := diamond(t)
	a, b, d := vs[0], vs[1], vs[3]
	p := SingleVertexPath(a)
	if p.Len() != 0 || p.Start() != a || p.End() != a {
		t.Fatal("single-vertex path wrong")
	}
	p2 := p.Extend(Edge{To: b, Label: "ab"}).Extend(Edge{To: d, Label: "bd"})
	if p2.Len() != 2 || p2.End() != d {
		t.Fatalf("extended path wrong: %+v", p2)
	}
	if p2.LabelString() != "ab bd" {
		t.Errorf("LabelString = %q", p2.LabelString())
	}
	if !p2.ValidIn(g) {
		t.Error("real path reported invalid")
	}
	bogus := Path{Vertices: []VID{a, d}, EdgeLabels: []string{"ad"}}
	if bogus.ValidIn(g) {
		t.Error("fake path reported valid")
	}
	if !p2.IsSimple() || !p2.Contains(b) || p2.Contains(vs[4]) {
		t.Error("simple/contains wrong")
	}
	pre := p2.Prefix(1)
	if pre.Len() != 1 || pre.End() != b {
		t.Errorf("Prefix(1) = %+v", pre)
	}
	if p2.Prefix(10).Len() != 2 {
		t.Error("over-long prefix should return whole path")
	}
	// Extend must not alias the original backing arrays.
	p3 := p.Extend(Edge{To: b, Label: "x"})
	p4 := p.Extend(Edge{To: d, Label: "y"})
	if p3.End() == p4.End() {
		t.Error("Extend aliasing detected")
	}
}

func TestSimplePathsEnumeration(t *testing.T) {
	g, vs := diamond(t)
	a := vs[0]
	var got []string
	g.SimplePaths(a, 3, func(p Path) bool {
		got = append(got, p.LabelString())
		return true
	})
	// Paths from a: ab, ab bd, ac, ac cd — all simple, length ≤ 3.
	if len(got) != 4 {
		t.Fatalf("SimplePaths found %d paths: %v", len(got), got)
	}
	// Early stop.
	count := 0
	g.SimplePaths(a, 3, func(p Path) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop did not work: %d", count)
	}
	// Cycles are not revisited.
	c := New()
	x := c.AddVertex("x")
	y := c.AddVertex("y")
	c.MustAddEdge(x, y, "e1")
	c.MustAddEdge(y, x, "e2")
	n := 0
	c.SimplePaths(x, 10, func(p Path) bool {
		if !p.IsSimple() {
			t.Errorf("non-simple path produced: %+v", p)
		}
		n++
		return true
	})
	if n != 1 {
		t.Errorf("cycle graph should yield 1 simple path, got %d", n)
	}
}

func TestPartitionEdgeCut(t *testing.T) {
	g, _ := diamond(t)
	for _, n := range []int{1, 2, 3, 5, 8} {
		p, err := PartitionEdgeCut(g, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Fragments) != n {
			t.Fatalf("fragments = %d, want %d", len(p.Fragments), n)
		}
		// Every vertex owned exactly once.
		owned := make(map[VID]int)
		for _, f := range p.Fragments {
			for _, v := range f.Owned {
				owned[v]++
				if p.Of[v] != f.ID {
					t.Errorf("Of[%d] = %d, fragment says %d", v, p.Of[v], f.ID)
				}
			}
		}
		if len(owned) != g.NumVertices() {
			t.Errorf("n=%d: owned %d vertices, want %d", n, len(owned), g.NumVertices())
		}
		for v, c := range owned {
			if c != 1 {
				t.Errorf("vertex %d owned %d times", v, c)
			}
		}
		// Border nodes are exactly the cross-edge targets not owned locally.
		for _, f := range p.Fragments {
			for _, b := range f.Border {
				if f.Owner[b] {
					t.Errorf("border node %d is owned by its own fragment", b)
				}
			}
		}
	}
	if _, err := PartitionEdgeCut(g, 0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestPartitionSingleFragmentNoCut(t *testing.T) {
	g, _ := diamond(t)
	p, err := PartitionEdgeCut(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.CrossEdges() != 0 {
		t.Errorf("single fragment has %d cross edges", p.CrossEdges())
	}
	if len(p.Fragments[0].Border) != 0 {
		t.Errorf("single fragment has border nodes: %v", p.Fragments[0].Border)
	}
}

func TestPartitionProperty(t *testing.T) {
	// For any small random graph and any n, ownership is a partition.
	prop := func(nv uint8, edges []uint16, nFrag uint8) bool {
		n := int(nv%20) + 1
		g := New()
		for i := 0; i < n; i++ {
			g.AddVertex("v")
		}
		for _, e := range edges {
			from := VID(int(e>>8) % n)
			to := VID(int(e&0xff) % n)
			g.MustAddEdge(from, to, "e")
		}
		k := int(nFrag%6) + 1
		p, err := PartitionEdgeCut(g, k)
		if err != nil {
			return false
		}
		total := 0
		for _, f := range p.Fragments {
			total += len(f.Owned)
		}
		return total == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestClone: the copy shares no memory with the original — mutations on
// either side (vertices, edges, labels) never reach the other. Serving
// engines rely on this to snapshot a live graph and read the snapshot
// without locks.
func TestClone(t *testing.T) {
	g := New()
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	g.MustAddEdge(a, b, "e")
	c := g.Clone()

	// Mutate the original heavily.
	g.SetLabel(a, "mutated")
	x := g.AddVertex("x")
	g.MustAddEdge(a, x, "e2")
	g.MustAddEdge(b, a, "back")

	if c.NumVertices() != 2 || c.NumEdges() != 1 {
		t.Fatalf("clone grew with the original: |V|=%d |E|=%d, want 2, 1", c.NumVertices(), c.NumEdges())
	}
	if c.Label(a) != "a" {
		t.Fatalf("clone label = %q, want %q", c.Label(a), "a")
	}
	if len(c.Out(a)) != 1 || c.Out(a)[0] != (Edge{To: b, Label: "e"}) {
		t.Fatalf("clone out-edges of a = %v", c.Out(a))
	}
	if len(c.In(a)) != 0 {
		t.Fatalf("clone in-edges of a = %v, want none", c.In(a))
	}

	// Mutate the clone; the original must not see it.
	c.MustAddEdge(b, a, "clone-only")
	c.SetLabel(b, "b2")
	if g.Label(b) != "b" {
		t.Fatalf("original label mutated via clone: %q", g.Label(b))
	}
	if len(g.Out(b)) != 1 { // only the "back" edge added above
		t.Fatalf("original out-edges of b = %v", g.Out(b))
	}
}
