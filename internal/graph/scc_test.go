package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSCCBasic(t *testing.T) {
	g := New()
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	c := g.AddVertex("c")
	d := g.AddVertex("d")
	// a↔b form one SCC; c→d is a DAG tail.
	g.MustAddEdge(a, b, "e")
	g.MustAddEdge(b, a, "e")
	g.MustAddEdge(b, c, "e")
	g.MustAddEdge(c, d, "e")
	comp, n := SCC(g)
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[a] != comp[b] {
		t.Error("a and b should share a component")
	}
	if comp[c] == comp[a] || comp[d] == comp[c] {
		t.Errorf("DAG vertices merged: %v", comp)
	}
	// Reverse topological: the sink d gets the smallest id.
	if comp[d] > comp[c] || comp[c] > comp[a] {
		t.Errorf("component order not reverse-topological: %v", comp)
	}
}

func TestSCCSelfLoopAndIsolated(t *testing.T) {
	g := New()
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	g.MustAddEdge(a, a, "self")
	comp, n := SCC(g)
	if n != 2 || comp[a] == comp[b] {
		t.Errorf("comp=%v n=%d", comp, n)
	}
}

// TestSCCAgainstReachability: u and v share a component iff they reach
// each other.
func TestSCCAgainstReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(8)
		g := New()
		for i := 0; i < n; i++ {
			g.AddVertex("v")
		}
		ne := rng.Intn(2 * n)
		for i := 0; i < ne; i++ {
			g.MustAddEdge(VID(rng.Intn(n)), VID(rng.Intn(n)), "e")
		}
		comp, _ := SCC(g)
		for u := 0; u < n; u++ {
			ru := g.Reachable(VID(u), 0)
			for v := 0; v < n; v++ {
				rv := g.Reachable(VID(v), 0)
				mutual := u == v || (ru[VID(v)] && rv[VID(u)])
				if (comp[u] == comp[v]) != mutual {
					t.Fatalf("trial %d: comp[%d]=%d comp[%d]=%d mutual=%v",
						trial, u, comp[u], v, comp[v], mutual)
				}
			}
		}
	}
}

func TestPartitionEdgeCutSCCKeepsComponentsWhole(t *testing.T) {
	prop := func(nv uint8, edges []uint16, nFrag uint8) bool {
		n := int(nv%15) + 2
		g := New()
		for i := 0; i < n; i++ {
			g.AddVertex("v")
		}
		for _, e := range edges {
			g.MustAddEdge(VID(int(e>>8)%n), VID(int(e&0xff)%n), "e")
		}
		k := int(nFrag%5) + 1
		p, err := PartitionEdgeCutSCC(g, k)
		if err != nil {
			return false
		}
		comp, _ := SCC(g)
		// Same component ⇒ same fragment.
		fragOf := map[int]int{}
		for v := 0; v < n; v++ {
			if f, ok := fragOf[comp[v]]; ok {
				if f != p.Of[v] {
					return false
				}
			} else {
				fragOf[comp[v]] = p.Of[v]
			}
		}
		// Ownership is a partition.
		total := 0
		for _, f := range p.Fragments {
			total += len(f.Owned)
		}
		return total == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPartitionEdgeCutSCCValidation(t *testing.T) {
	g := New()
	g.AddVertex("a")
	if _, err := PartitionEdgeCutSCC(g, 0); err == nil {
		t.Error("n=0 should fail")
	}
	p, err := PartitionEdgeCutSCC(g, 3)
	if err != nil || len(p.Fragments) != 3 {
		t.Errorf("singleton partition: %v %v", p, err)
	}
}
