package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTSV serializes the graph as a simple text format:
//
//	v<TAB>id<TAB>label
//	e<TAB>from<TAB>to<TAB>label
//
// Labels are escaped so tabs and newlines survive round trips.
func (g *Graph) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < g.NumVertices(); i++ {
		if _, err := fmt.Fprintf(bw, "v\t%d\t%s\n", i, escape(g.Label(VID(i)))); err != nil {
			return err
		}
	}
	for i := 0; i < g.NumVertices(); i++ {
		for _, e := range g.Out(VID(i)) {
			if _, err := fmt.Fprintf(bw, "e\t%d\t%d\t%s\n", i, e.To, escape(e.Label)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTSV parses the format written by WriteTSV. Vertex lines must
// appear in id order starting from 0.
func ReadTSV(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		switch parts[0] {
		case "v":
			if len(parts) != 3 {
				return nil, fmt.Errorf("graph: line %d: bad vertex line", lineNo)
			}
			id, err := strconv.Atoi(parts[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			if id != g.NumVertices() {
				return nil, fmt.Errorf("graph: line %d: vertex id %d out of order (expected %d)",
					lineNo, id, g.NumVertices())
			}
			g.AddVertex(unescape(parts[2]))
		case "e":
			if len(parts) != 4 {
				return nil, fmt.Errorf("graph: line %d: bad edge line", lineNo)
			}
			from, err1 := strconv.Atoi(parts[1])
			to, err2 := strconv.Atoi(parts[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge ids", lineNo)
			}
			if err := g.AddEdge(VID(from), VID(to), unescape(parts[3])); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, parts[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

func escape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\t", `\t`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

func unescape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case '\\':
				b.WriteByte('\\')
			default:
				b.WriteByte(s[i+1])
			}
			i++
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
