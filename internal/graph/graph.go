// Package graph implements the directed labeled graph substrate
// G = (V, E, L) of Section II: vertices and edges carry labels (vertex
// labels represent values/types, edge labels represent predicates), with
// adjacency queries, simple paths, and edge-cut partitioning for the BSP
// engine.
package graph

import (
	"fmt"
	"sort"
)

// VID identifies a vertex within one graph.
type VID int32

// NoVertex is the invalid vertex id.
const NoVertex VID = -1

// Edge is one outgoing edge: a labeled arc to a target vertex.
type Edge struct {
	To    VID
	Label string
}

// Graph is a directed labeled graph. The zero value is not usable; call New.
type Graph struct {
	labels []string
	out    [][]Edge
	in     [][]VID // reverse adjacency (sources only; labels live on out)
	nEdges int
}

// New creates an empty graph, optionally pre-sizing for n vertices.
func New(sizeHint ...int) *Graph {
	n := 0
	if len(sizeHint) > 0 {
		n = sizeHint[0]
	}
	return &Graph{
		labels: make([]string, 0, n),
		out:    make([][]Edge, 0, n),
		in:     make([][]VID, 0, n),
	}
}

// AddVertex appends a vertex with the given label and returns its id.
func (g *Graph) AddVertex(label string) VID {
	id := VID(len(g.labels))
	g.labels = append(g.labels, label)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddEdge adds a directed edge from → to with the given label.
func (g *Graph) AddEdge(from, to VID, label string) error {
	if !g.Valid(from) || !g.Valid(to) {
		return fmt.Errorf("graph: AddEdge(%d,%d): vertex out of range (n=%d)", from, to, len(g.labels))
	}
	g.out[from] = append(g.out[from], Edge{To: to, Label: label})
	g.in[to] = append(g.in[to], from)
	g.nEdges++
	return nil
}

// MustAddEdge is AddEdge that panics on error, for fixtures and generators.
func (g *Graph) MustAddEdge(from, to VID, label string) {
	if err := g.AddEdge(from, to, label); err != nil {
		panic(err)
	}
}

// Clone returns a deep copy of g: labels, adjacency and edge count share
// no memory with the original, so mutating either graph (AddVertex,
// AddEdge, SetLabel) never affects the other. Serving engines use it to
// snapshot a live graph under its owner's lock and then read the copy
// without any locking.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		labels: append([]string(nil), g.labels...),
		out:    make([][]Edge, len(g.out)),
		in:     make([][]VID, len(g.in)),
		nEdges: g.nEdges,
	}
	for i, es := range g.out {
		if len(es) > 0 {
			c.out[i] = append([]Edge(nil), es...)
		}
	}
	for i, vs := range g.in {
		if len(vs) > 0 {
			c.in[i] = append([]VID(nil), vs...)
		}
	}
	return c
}

// Valid reports whether v is a vertex of g.
func (g *Graph) Valid(v VID) bool { return v >= 0 && int(v) < len(g.labels) }

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.labels) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.nEdges }

// Size returns |V| + |E|, the measure the paper's complexity bounds use.
func (g *Graph) Size() int { return len(g.labels) + g.nEdges }

// Label returns the label of v.
func (g *Graph) Label(v VID) string { return g.labels[v] }

// SetLabel replaces the label of v.
func (g *Graph) SetLabel(v VID, label string) { g.labels[v] = label }

// Out returns the outgoing edges of v. The returned slice must not be
// modified.
func (g *Graph) Out(v VID) []Edge { return g.out[v] }

// In returns the source vertices of the incoming edges of v. The returned
// slice must not be modified.
func (g *Graph) In(v VID) []VID { return g.in[v] }

// OutDegree returns the number of outgoing edges (|ch(v)| in the paper).
func (g *Graph) OutDegree(v VID) int { return len(g.out[v]) }

// Degree returns the total degree of v.
func (g *Graph) Degree(v VID) int { return len(g.out[v]) + len(g.in[v]) }

// IsLeaf reports whether v has no children.
func (g *Graph) IsLeaf(v VID) bool { return len(g.out[v]) == 0 }

// Children returns the distinct child vertices of v in first-edge order.
func (g *Graph) Children(v VID) []VID {
	seen := make(map[VID]bool, len(g.out[v]))
	var kids []VID
	for _, e := range g.out[v] {
		if !seen[e.To] {
			seen[e.To] = true
			kids = append(kids, e.To)
		}
	}
	return kids
}

// FindEdge returns the label of an edge from → to, if one exists. When
// multiple parallel edges exist, the first is returned.
func (g *Graph) FindEdge(from, to VID) (string, bool) {
	for _, e := range g.out[from] {
		if e.To == to {
			return e.Label, true
		}
	}
	return "", false
}

// Reachable returns the set of vertices reachable from v (excluding v
// itself unless it lies on a cycle), capped at limit vertices; limit <= 0
// means unbounded.
func (g *Graph) Reachable(v VID, limit int) map[VID]bool {
	seen := make(map[VID]bool)
	stack := []VID{v}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.out[cur] {
			if !seen[e.To] {
				seen[e.To] = true
				if limit > 0 && len(seen) >= limit {
					return seen
				}
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// VerticesByLabel builds an exact-label lookup table.
func (g *Graph) VerticesByLabel() map[string][]VID {
	m := make(map[string][]VID)
	for i, l := range g.labels {
		m[l] = append(m[l], VID(i))
	}
	return m
}

// SortedVertices returns all vertex ids ordered by (total degree, id),
// the candidate-inspection order used by VParaMatch (Fig. 5, line 4).
func (g *Graph) SortedVertices() []VID {
	ids := make([]VID, len(g.labels))
	for i := range ids {
		ids[i] = VID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := g.Degree(ids[a]), g.Degree(ids[b])
		if da != db {
			return da < db
		}
		return ids[a] < ids[b]
	})
	return ids
}
