package graph

import "strings"

// Path is a simple path ρ = (v0, v1, ..., vl): a vertex list joined by
// edges, together with the labels of those edges. Len (the number of
// edges) is len(Vertices)-1 == len(EdgeLabels).
type Path struct {
	Vertices   []VID
	EdgeLabels []string
}

// SingleVertexPath returns the zero-length path at v.
func SingleVertexPath(v VID) Path {
	return Path{Vertices: []VID{v}}
}

// Len returns the number of edges on the path (len(ρ) in the paper).
func (p Path) Len() int { return len(p.EdgeLabels) }

// Start returns v0.
func (p Path) Start() VID { return p.Vertices[0] }

// End returns vl, the descendant the path leads to.
func (p Path) End() VID { return p.Vertices[len(p.Vertices)-1] }

// Extend returns a copy of p with one more hop appended.
func (p Path) Extend(e Edge) Path {
	vs := make([]VID, len(p.Vertices)+1)
	copy(vs, p.Vertices)
	vs[len(p.Vertices)] = e.To
	ls := make([]string, len(p.EdgeLabels)+1)
	copy(ls, p.EdgeLabels)
	ls[len(p.EdgeLabels)] = e.Label
	return Path{Vertices: vs, EdgeLabels: ls}
}

// Contains reports whether v already occurs on the path (cycle check for
// keeping paths simple).
func (p Path) Contains(v VID) bool {
	for _, u := range p.Vertices {
		if u == v {
			return true
		}
	}
	return false
}

// IsSimple reports whether no vertex repeats on the path.
func (p Path) IsSimple() bool {
	seen := make(map[VID]bool, len(p.Vertices))
	for _, v := range p.Vertices {
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// LabelString renders the edge-label sequence L(ρ) handed to M_ρ, e.g.
// "factorySite isIn isIn".
func (p Path) LabelString() string { return strings.Join(p.EdgeLabels, " ") }

// Prefix returns the prefix of p with the first n edges (n+1 vertices).
// Used by schema-match extraction (appendix D).
func (p Path) Prefix(n int) Path {
	if n >= p.Len() {
		return p
	}
	return Path{Vertices: p.Vertices[:n+1], EdgeLabels: p.EdgeLabels[:n]}
}

// ValidIn checks that p is an actual path of g: every consecutive pair is
// joined by an edge bearing the recorded label.
func (p Path) ValidIn(g *Graph) bool {
	if len(p.Vertices) == 0 || len(p.EdgeLabels) != len(p.Vertices)-1 {
		return false
	}
	for i := 0; i+1 < len(p.Vertices); i++ {
		found := false
		for _, e := range g.Out(p.Vertices[i]) {
			if e.To == p.Vertices[i+1] && e.Label == p.EdgeLabels[i] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// SimplePaths enumerates all simple paths from v of length in [1, maxLen],
// invoking fn for each. fn returning false stops the enumeration early.
// Exponential in the worst case; used only for training-data preparation
// and reference checking on small graphs.
func (g *Graph) SimplePaths(v VID, maxLen int, fn func(Path) bool) {
	var rec func(p Path) bool
	rec = func(p Path) bool {
		if p.Len() >= maxLen {
			return true
		}
		for _, e := range g.Out(p.End()) {
			if p.Contains(e.To) {
				continue
			}
			np := p.Extend(e)
			if !fn(np) {
				return false
			}
			if !rec(np) {
				return false
			}
		}
		return true
	}
	rec(SingleVertexPath(v))
}
