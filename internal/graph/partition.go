package graph

import "fmt"

// Fragment describes one edge-cut fragment F_i = (V_i ∪ O_i, E_i, L_i) of
// Section VI-B: V_i is the set of owned vertices, O_i the border nodes —
// vertices owned elsewhere that have incoming edges from V_i.
type Fragment struct {
	ID     int
	Owned  []VID        // V_i
	Border []VID        // O_i
	Owner  map[VID]bool // membership test for Owned
}

// Partition is an edge-cut partition of a graph into n fragments.
type Partition struct {
	Graph     *Graph
	Fragments []Fragment
	Of        []int // vertex → fragment id
}

// PartitionEdgeCut splits g into n fragments. Assignment is round-robin
// over a BFS order from each unvisited vertex, which keeps neighborhoods
// mostly co-located (a cheap stand-in for balanced edge partitioners such
// as Bourse et al., which the paper cites). Deterministic for a given graph.
//
// The partition is total and disjoint: every vertex is owned by exactly
// one fragment, and exactly n fragments are returned in id order even
// when n exceeds |V| — the surplus fragments are simply empty (Owned,
// Border and Owner all empty), which is a valid fragment consumers must
// tolerate. Callers that spread work one fragment per worker
// (internal/shard, the BSP engine) rely on both properties: a vertex is
// matched by exactly one worker, and repeated runs over the same graph
// produce the same fragment list — no map iteration or randomness is
// involved anywhere in the assignment.
func PartitionEdgeCut(g *Graph, n int) (*Partition, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: partition count must be positive, got %d", n)
	}
	nv := g.NumVertices()
	of := make([]int, nv)
	for i := range of {
		of[i] = -1
	}
	// Walk vertices in BFS order so neighborhoods land in contiguous
	// blocks, then chunk the order into n nearly equal fragments.
	order := make([]VID, 0, nv)
	visited := make([]bool, nv)
	for s := 0; s < nv; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue := []VID{VID(s)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, e := range g.Out(v) {
				if !visited[e.To] {
					visited[e.To] = true
					queue = append(queue, e.To)
				}
			}
		}
	}
	per := (nv + n - 1) / n
	if per == 0 {
		per = 1
	}
	for i, v := range order {
		f := i / per
		if f >= n {
			f = n - 1
		}
		of[v] = f
	}
	p := &Partition{Graph: g, Of: of, Fragments: make([]Fragment, n)}
	for i := range p.Fragments {
		p.Fragments[i] = Fragment{ID: i, Owner: make(map[VID]bool)}
	}
	for v := 0; v < nv; v++ {
		f := of[v]
		p.Fragments[f].Owned = append(p.Fragments[f].Owned, VID(v))
		p.Fragments[f].Owner[VID(v)] = true
	}
	// Border nodes: targets of cross-fragment edges.
	for v := 0; v < nv; v++ {
		f := of[v]
		for _, e := range g.Out(VID(v)) {
			if of[e.To] != f {
				frag := &p.Fragments[f]
				if !frag.Owner[e.To] && !containsVID(frag.Border, e.To) {
					frag.Border = append(frag.Border, e.To)
				}
			}
		}
	}
	return p, nil
}

func containsVID(s []VID, v VID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// FragmentOf returns the fragment owning v.
func (p *Partition) FragmentOf(v VID) int { return p.Of[v] }

// CrossEdges counts edges whose endpoints live in different fragments,
// the edge-cut cost.
func (p *Partition) CrossEdges() int {
	cut := 0
	for v := 0; v < p.Graph.NumVertices(); v++ {
		for _, e := range p.Graph.Out(VID(v)) {
			if p.Of[v] != p.Of[e.To] {
				cut++
			}
		}
	}
	return cut
}
