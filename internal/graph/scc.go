package graph

// SCC computes the strongly connected components of g with an iterative
// Tarjan algorithm, returning a component id per vertex (ids are dense,
// 0-based, in reverse topological order of the condensation) and the
// component count.
func SCC(g *Graph) ([]int, int) {
	n := g.NumVertices()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	stack := make([]VID, 0, n) // Tarjan stack holds each vertex at most once
	var count, next int

	type frame struct {
		v  VID
		ei int
	}
	for s := 0; s < n; s++ {
		if index[s] != -1 {
			continue
		}
		frames := []frame{{v: VID(s)}}
		index[s] = next
		low[s] = next
		next++
		stack = append(stack, VID(s))
		onStack[s] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			out := g.Out(f.v)
			if f.ei < len(out) {
				w := out[f.ei].To
				f.ei++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			// Post-order: pop the frame, fold low into the parent,
			// and emit a component at its root.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = count
					if w == v {
						break
					}
				}
				count++
			}
		}
	}
	return comp, count
}

// PartitionEdgeCutSCC partitions g into n fragments like
// PartitionEdgeCut, but never splits a strongly connected component
// across fragments. The BSP engines require this: two candidate pairs
// can only be mutually dependent when their G-side vertices share an
// SCC, so whole-SCC ownership keeps every coinductive cycle local to
// one worker and the cross-worker refinement converges to the greatest
// fixpoint ("special care is taken" in the paper's fragment assignment).
func PartitionEdgeCutSCC(g *Graph, n int) (*Partition, error) {
	if n <= 0 {
		return nil, errPartitionCount(n)
	}
	nv := g.NumVertices()
	comp, nComp := SCC(g)

	// Group vertices by component, then order components by the BFS
	// order of their first-visited vertex so neighborhoods stay
	// co-located.
	members := make([][]VID, nComp)
	for v := 0; v < nv; v++ {
		members[comp[v]] = append(members[comp[v]], VID(v))
	}
	visited := make([]bool, nv)
	compDone := make([]bool, nComp)
	compOrder := make([]int, 0, nComp)
	for s := 0; s < nv; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue := []VID{VID(s)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if c := comp[v]; !compDone[c] {
				compDone[c] = true
				compOrder = append(compOrder, c)
			}
			for _, e := range g.Out(v) {
				if !visited[e.To] {
					visited[e.To] = true
					queue = append(queue, e.To)
				}
			}
		}
	}

	of := make([]int, nv)
	per := (nv + n - 1) / n
	if per == 0 {
		per = 1
	}
	assigned, frag := 0, 0
	for _, c := range compOrder {
		if assigned >= per*(frag+1) && frag < n-1 {
			frag++
		}
		for _, v := range members[c] {
			of[v] = frag
		}
		assigned += len(members[c])
	}

	p := &Partition{Graph: g, Of: of, Fragments: make([]Fragment, n)}
	for i := range p.Fragments {
		p.Fragments[i] = Fragment{ID: i, Owner: make(map[VID]bool)}
	}
	for v := 0; v < nv; v++ {
		f := of[v]
		p.Fragments[f].Owned = append(p.Fragments[f].Owned, VID(v))
		p.Fragments[f].Owner[VID(v)] = true
	}
	for v := 0; v < nv; v++ {
		f := of[v]
		for _, e := range g.Out(VID(v)) {
			if of[e.To] != f {
				frag := &p.Fragments[f]
				if !frag.Owner[e.To] && !containsVID(frag.Border, e.To) {
					frag.Border = append(frag.Border, e.To)
				}
			}
		}
	}
	return p, nil
}

type errPartitionCount int

func (e errPartitionCount) Error() string {
	return "graph: partition count must be positive"
}
