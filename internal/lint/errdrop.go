package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// ErrDrop flags discarded error returns from the parse-shaped surfaces
// the fuzzers exercise: functions and methods named Read*, Parse*,
// Decode*, Convert*, Load*, or Unmarshal* (graph TSV, relational CSV,
// json2graph, gob model files, server request decoding). Dropping these
// errors is how a malformed input stops being a rejected request and
// becomes silently-wrong state — exactly the regressions the fuzz
// corpora were built to catch.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "forbid discarding the error from Read*/Parse*/Decode*/Convert*/Load*/Unmarshal* calls",
	Run:  runErrDrop,
}

var parseSurfaceRe = regexp.MustCompile(`^(Read|Parse|Decode|Convert|Load|Unmarshal)`)

func runErrDrop(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					if name, drops := p.parseCallDroppingError(call, -1); drops {
						p.Reportf(call.Pos(), "error from %s is discarded on a fuzzed parse surface; handle it or check it explicitly", name)
					}
				}
			case *ast.AssignStmt:
				if len(stmt.Rhs) != 1 {
					return true
				}
				call, ok := stmt.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				// The error is by convention the last result; flag when
				// its assignment target is the blank identifier.
				last := len(stmt.Lhs) - 1
				if id, ok := stmt.Lhs[last].(*ast.Ident); !ok || id.Name != "_" {
					return true
				}
				if name, drops := p.parseCallDroppingError(call, len(stmt.Lhs)); drops {
					p.Reportf(stmt.Pos(), "error from %s is assigned to _ on a fuzzed parse surface; handle it or check it explicitly", name)
				}
			}
			return true
		})
	}
}

// parseCallDroppingError reports whether call targets a parse-surface
// function whose final result is an error. nresults, when ≥ 0, must
// match the callee's result count (an assignment that takes fewer
// values than the callee returns does not compile, so this only guards
// against single-value weirdness).
func (p *Pass) parseCallDroppingError(call *ast.CallExpr, nresults int) (string, bool) {
	var ident *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		ident = fun
	case *ast.SelectorExpr:
		ident = fun.Sel
	default:
		return "", false
	}
	fn, ok := p.Pkg.Info.Uses[ident].(*types.Func)
	if !ok && p.Pkg.Info.Defs[ident] != nil {
		fn, ok = p.Pkg.Info.Defs[ident].(*types.Func)
	}
	if !ok || !parseSurfaceRe.MatchString(fn.Name()) {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	if nresults >= 0 && sig.Results().Len() != nresults {
		return "", false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !types.Identical(last, types.Universe.Lookup("error").Type()) {
		return "", false
	}
	return fn.Name(), true
}
