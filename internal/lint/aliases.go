package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// aliases.go is the lightweight alias pass shared by the dataflow
// analyzers (lockguard, atomicmix, snapleak). It resolves, per file,
// which single-assignment locals are stable pointer aliases of a longer
// access path (`st := e.cur` makes every later `st.x` an access of
// `e.cur.x`), and which locals hold freshly constructed, not-yet-shared
// objects (`e := &Engine{...}`) whose field accesses need no lock.
//
// The analysis is deliberately conservative in the lenient direction: a
// variable that is reassigned, address-taken, or bound by anything
// other than a plain single-value define resolves to an opaque root,
// and accesses through opaque roots are simply not checked.

// fileAliases holds the alias facts of one file.
type fileAliases struct {
	info *types.Info

	defRHS  map[types.Object]ast.Expr // single-define initializer
	tainted map[types.Object]bool     // reassigned / address-taken / loop-bound
	fresh   map[types.Object]bool     // initializer constructs a new object
	memo    map[types.Object]string   // resolved canonical paths
	inProg  map[types.Object]bool
}

// newFileAliases runs the collection pass over one file.
func newFileAliases(info *types.Info, f *ast.File) *fileAliases {
	a := &fileAliases{
		info:    info,
		defRHS:  make(map[types.Object]ast.Expr),
		tainted: make(map[types.Object]bool),
		fresh:   make(map[types.Object]bool),
		memo:    make(map[types.Object]string),
		inProg:  make(map[types.Object]bool),
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					a.recordDef(lhs, n.Rhs[i])
				}
			} else {
				for _, lhs := range n.Lhs {
					a.taintIdent(lhs)
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i, id := range n.Names {
					a.recordDef(id, n.Values[i])
				}
			} else {
				for _, id := range n.Names {
					a.taintIdent(id)
				}
			}
		case *ast.IncDecStmt:
			a.taintIdent(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				a.taintIdent(n.X)
			}
		case *ast.RangeStmt:
			// Loop variables rebind per iteration: never alias them.
			a.taintIdent(n.Key)
			a.taintIdent(n.Value)
		}
		return true
	})
	return a
}

// recordDef notes a candidate single-assignment define. A second define
// of the same object (impossible in Go) or a later taint wins over it.
func (a *fileAliases) recordDef(lhs ast.Expr, rhs ast.Expr) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := a.info.Defs[id]
	if obj == nil {
		// `x := ...` where x redeclares in the same scope: a plain use,
		// i.e. a reassignment.
		a.taintIdent(lhs)
		return
	}
	a.defRHS[obj] = rhs
}

func (a *fileAliases) taintIdent(e ast.Expr) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	if obj := a.info.ObjectOf(id); obj != nil {
		a.tainted[obj] = true
	}
}

// objRoot is the opaque canonical path of an object.
func objRoot(obj types.Object) string {
	return fmt.Sprintf("o%d", obj.Pos())
}

// pathOfObj resolves an identifier's canonical access path: its alias
// target when it is a stable pointer alias, its own opaque root
// otherwise. Returns "" only for nil objects.
func (a *fileAliases) pathOfObj(obj types.Object) string {
	if obj == nil {
		return ""
	}
	if p, ok := a.memo[obj]; ok {
		return p
	}
	p := a.resolve(obj)
	a.memo[obj] = p
	return p
}

func (a *fileAliases) resolve(obj types.Object) string {
	v, ok := obj.(*types.Var)
	if !ok || a.tainted[obj] || a.inProg[obj] {
		return objRoot(obj)
	}
	rhs, ok := a.defRHS[obj]
	if !ok {
		return objRoot(obj)
	}
	if isFreshExpr(rhs) {
		a.fresh[obj] = true
		return objRoot(obj)
	}
	// Only pointer-typed values alias: copying a struct value makes new
	// fields (and a new mutex), so `x := s` with a value type must keep
	// its own identity.
	if _, isPtr := v.Type().Underlying().(*types.Pointer); !isPtr {
		return objRoot(obj)
	}
	a.inProg[obj] = true
	p := a.exprPath(rhs)
	delete(a.inProg, obj)
	if p == "" {
		return objRoot(obj)
	}
	return p
}

// exprPath computes the canonical path of an expression, or "" when the
// expression has no stable path (calls, index expressions, unresolved
// roots).
func (a *fileAliases) exprPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		obj := a.info.ObjectOf(e)
		if obj == nil {
			return ""
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return ""
		}
		return a.pathOfObj(obj)
	case *ast.SelectorExpr:
		// Only field selections extend a path; package-qualified idents
		// and method values do not.
		if sel, ok := a.info.Selections[e]; !ok || sel == nil || sel.Kind() != types.FieldVal {
			return ""
		}
		base := a.exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return a.exprPath(e.X)
	case *ast.StarExpr:
		return a.exprPath(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return a.exprPath(e.X)
		}
	}
	return ""
}

// rootObj returns the root identifier object of a selector chain, or
// nil when the base is not a chain of field selections over an ident.
func (a *fileAliases) rootObj(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return a.info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// isFresh reports whether the expression's root local holds a freshly
// constructed object that no other goroutine can reach yet.
func (a *fileAliases) isFresh(e ast.Expr) bool {
	obj := a.rootObj(e)
	if obj == nil {
		return false
	}
	a.pathOfObj(obj) // force resolution, which records freshness
	return a.fresh[obj]
}

// isFreshExpr reports whether e constructs a brand-new object: a
// composite literal, its address, or new(T).
func isFreshExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, ok := e.X.(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		return ok && id.Name == "new"
	case *ast.ParenExpr:
		return isFreshExpr(e.X)
	}
	return false
}
