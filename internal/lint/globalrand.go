package lint

import (
	"go/ast"
	"go/types"
)

// GlobalRand forbids the package-level math/rand functions that draw
// from the process-global, unseedable-per-run source (Intn, Float64,
// Perm, Shuffle, Seed, ...). Every random stream in this repository is
// derived from an explicit int64 seed (her.Options.Seed, testkit
// workload seeds, embed corpus generation); a single global-source draw
// makes runs irreproducible. Constructors that build an explicitly
// seeded generator (rand.New, rand.NewSource, rand.NewZipf, and the
// v2 equivalents) are allowed.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid top-level math/rand functions; thread a rand.New(rand.NewSource(seed)) explicitly",
	Run:  runGlobalRand,
}

var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func runGlobalRand(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true // a method on an explicit *rand.Rand is fine
			}
			if randConstructors[fn.Name()] {
				return true
			}
			p.Reportf(sel.Pos(), "top-level %s.%s draws from the global source and breaks int64-seed reproducibility; thread rand.New(rand.NewSource(seed)) instead", path, fn.Name())
			return true
		})
	}
}
