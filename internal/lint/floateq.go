package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags ==/!= between two computed floating-point expressions.
// Exact equality on computed scores (similarities, losses, thresholds
// after arithmetic) is evaluation-order dependent: two mathematically
// equal values can differ in the last ulp, and a `==` tie-break then
// diverges between otherwise-equivalent implementations — breaking the
// ParaMatch/VPair/APair differential-equivalence contract. Comparisons
// where either side is a compile-time constant (sentinels such as 0)
// stay exact on purpose and are not flagged.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= between computed float expressions; use feq.Eq/feq.EqTol (her/internal/feq)",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, okx := p.Pkg.Info.Types[be.X]
			ty, oky := p.Pkg.Info.Types[be.Y]
			if !okx || !oky || !isFloat(tx.Type) || !isFloat(ty.Type) {
				return true
			}
			if tx.Value != nil || ty.Value != nil {
				return true // constant sentinel compare: exact by design
			}
			p.Reportf(be.OpPos, "%s between computed float values is evaluation-order dependent; use feq.Eq or feq.EqTol (her/internal/feq)", be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
