package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SnapLeak enforces the shard engine's snapshot-isolation contract: the
// live graphs hanging off a System (`s.G`, `s.GD` — the ones AddTuple/
// AddGraphVertex/AddGraphEdge mutate under the system lock) must never
// escape into the shard serving layer, which reads its graphs at
// request time without that lock. The only legal hand-off is a private
// copy: `s.G.Clone()`. The analyzer taints every expression reachable
// from a *Graph field of a System (including single-assignment local
// aliases) and reports taint flowing into a shard-package sink — a
// shard composite literal, a call into a shard package, or a store to a
// shard-declared struct field. Clone() calls produce fresh values and
// clear the taint.
var SnapLeak = &Analyzer{
	Name: "snapleak",
	Doc:  "System's live graphs must not escape into shard engine state except through Clone()",
	Run:  runSnapLeak,
}

func runSnapLeak(p *Pass) {
	for _, f := range p.Pkg.Files {
		sl := &snapLeak{p: p, taintedObjs: make(map[types.Object]string)}
		sl.collectAliases(f)
		sl.checkSinks(f)
	}
}

type snapLeak struct {
	p *Pass
	// taintedObjs maps local variables aliased to a live graph to the
	// source description ("System.G").
	taintedObjs map[types.Object]string
}

// collectAliases records locals bound to live graph expressions, in
// source order so chains (`g := s.G; h := g`) resolve.
func (sl *snapLeak) collectAliases(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			src, tainted := sl.liveGraphSource(as.Rhs[i])
			if !tainted {
				continue
			}
			if obj := sl.p.Pkg.Info.ObjectOf(id); obj != nil {
				sl.taintedObjs[obj] = src
			}
		}
		return true
	})
}

// liveGraphSource reports whether e evaluates to a live System graph,
// and which one.
func (sl *snapLeak) liveGraphSource(e ast.Expr) (string, bool) {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	switch e := e.(type) {
	case *ast.SelectorExpr:
		s, ok := sl.p.Pkg.Info.Selections[e]
		if !ok || s.Kind() != types.FieldVal {
			return "", false
		}
		v, ok := s.Obj().(*types.Var)
		if !ok || !isGraphPtr(v.Type()) {
			return "", false
		}
		if ownerName(s.Recv()) != "System" {
			return "", false
		}
		return "System." + v.Name(), true
	case *ast.Ident:
		obj := sl.p.Pkg.Info.ObjectOf(e)
		if obj == nil {
			return "", false
		}
		src, ok := sl.taintedObjs[obj]
		return src, ok
	}
	return "", false
}

// checkSinks reports tainted values reaching shard-package sinks.
func (sl *snapLeak) checkSinks(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			tv, ok := sl.p.Pkg.Info.Types[n]
			if !ok || !typeInShardPkg(tv.Type) {
				return true
			}
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if src, tainted := sl.liveGraphSource(v); tainted {
					sl.p.Reportf(v.Pos(), "live graph %s escapes into shard state; hand the engine a private %s.Clone() instead", src, src)
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(sl.p.Pkg.Info, n)
			if fn == nil || !isShardPkg(fn.Pkg()) {
				return true
			}
			for _, arg := range n.Args {
				if src, tainted := sl.liveGraphSource(arg); tainted {
					sl.p.Reportf(arg.Pos(), "live graph %s escapes into shard call %s; pass a private %s.Clone() instead", src, fn.Name(), src)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				s, ok := sl.p.Pkg.Info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					continue
				}
				fieldPkg := s.Obj().Pkg()
				if !isShardPkg(fieldPkg) {
					continue
				}
				if src, tainted := sl.liveGraphSource(n.Rhs[i]); tainted {
					sl.p.Reportf(n.Rhs[i].Pos(), "live graph %s stored into shard field %s; store a private %s.Clone() instead", src, s.Obj().Name(), src)
				}
			}
		}
		return true
	})
}

// isGraphPtr reports whether t is a pointer to a named type "Graph".
func isGraphPtr(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Graph"
}

// ownerName returns the name of the named struct type a selection's
// receiver resolves to, or "".
func ownerName(t types.Type) string {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// isShardPkg reports whether pkg is a shard serving package (its import
// path's last element is "shard").
func isShardPkg(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == "shard" || strings.HasSuffix(path, "/shard")
}

// typeInShardPkg reports whether t is declared in a shard package.
func typeInShardPkg(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && isShardPkg(named.Obj().Pkg())
}
